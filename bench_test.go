// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Section VI). Each benchmark runs a reduced-fidelity
// version of the corresponding experiment (fewer repetitions/steps than
// the CLI, which produces the full-fidelity CSVs via `radloc figure`
// and `radloc table`) and reports the figure's key quantities as
// custom benchmark metrics alongside the usual timing:
//
//	err_final   mean localization error at the final step (length units)
//	fp_final    mean false positives at the final step
//	fn_final    mean false negatives at the final step
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package radloc_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"radloc"
	"radloc/internal/rng"
)

// benchRun executes a scenario once per benchmark iteration and reports
// the final-step quality metrics.
func benchRun(b *testing.B, sc radloc.Scenario, reps int) radloc.Result {
	b.Helper()
	var res radloc.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = radloc.Run(sc, radloc.RunOptions{Seed: uint64(i + 1), Reps: reps, TrialWorkers: reps})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(res.MeanErr) - 1
	if !math.IsNaN(res.MeanErr[last]) {
		b.ReportMetric(res.MeanErr[last], "err_final")
	}
	b.ReportMetric(res.FalsePos[last], "fp_final")
	b.ReportMetric(res.FalseNeg[last], "fn_final")
	return res
}

// BenchmarkFig2NoFusionRange contrasts the filter with and without the
// fusion range (Fig. 2): without it, a single particle population is
// dragged between the two sources and the centroid's oscillation
// amplitude stays large.
func BenchmarkFig2NoFusionRange(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "fusion-range"
		if disable {
			name = "no-fusion-range"
		}
		b.Run(name, func(b *testing.B) {
			var spread float64
			for i := 0; i < b.N; i++ {
				sc := radloc.ScenarioA(50, false)
				cfg := radloc.LocalizerConfig(sc)
				cfg.DisableFusionRange = disable
				cfg.Seed = uint64(i + 1)
				loc, err := radloc.NewLocalizer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				stream := rng.NewNamed(uint64(i+1), "bench/fig2")
				// Track how far the centroid wanders over the last 10
				// steps: small when each source holds its own particle
				// cluster, large when the population sloshes.
				var minX, maxX float64 = math.Inf(1), math.Inf(-1)
				for step := 0; step < 20; step++ {
					for _, sen := range sc.Sensors {
						m := sen.Measure(stream, sc.Sources, nil, step)
						loc.Ingest(sen, m.CPM)
					}
					if step >= 10 {
						c := loc.Centroid()
						minX = math.Min(minX, c.Pos.X)
						maxX = math.Max(maxX, c.Pos.X)
					}
				}
				spread = maxX - minX
			}
			b.ReportMetric(spread, "centroid_wander")
		})
	}
}

// BenchmarkFig3TwoSources regenerates Fig. 3: two sources of 4, 10, 50
// and 100 µCi in Scenario A.
func BenchmarkFig3TwoSources(b *testing.B) {
	for _, strength := range []float64{4, 10, 50, 100} {
		b.Run(fmt.Sprintf("%guCi", strength), func(b *testing.B) {
			sc := radloc.ScenarioA(strength, false)
			sc.Params.TimeSteps = 30
			benchRun(b, sc, 2)
		})
	}
}

// BenchmarkFig5ThreeSources regenerates Fig. 5: three sources.
func BenchmarkFig5ThreeSources(b *testing.B) {
	for _, strength := range []float64{4, 10, 50, 100} {
		b.Run(fmt.Sprintf("%guCi", strength), func(b *testing.B) {
			sc := radloc.ScenarioAThree(strength)
			sc.Params.TimeSteps = 30
			benchRun(b, sc, 2)
		})
	}
}

// BenchmarkFig6Background regenerates Fig. 6: background sweep with two
// 10 µCi sources.
func BenchmarkFig6Background(b *testing.B) {
	for _, bg := range []float64{0, 5, 10, 50} {
		b.Run(fmt.Sprintf("%gcpm", bg), func(b *testing.B) {
			sc := radloc.ScenarioA(10, false).WithBackground(bg)
			sc.Params.TimeSteps = 30
			benchRun(b, sc, 2)
		})
	}
}

// BenchmarkFig7ScenarioB regenerates Fig. 7(a–d): the 196-sensor,
// 9-source Scenario B with and without obstacles.
func BenchmarkFig7ScenarioB(b *testing.B) {
	for _, obs := range []bool{false, true} {
		b.Run(obsName(obs), func(b *testing.B) {
			sc := radloc.ScenarioB(obs)
			sc.Params.TimeSteps = 12
			benchRun(b, sc, 1)
		})
	}
}

// BenchmarkFig7ScenarioC regenerates Fig. 7(e–h): Poisson sensor
// placement and out-of-order delivery.
func BenchmarkFig7ScenarioC(b *testing.B) {
	for _, obs := range []bool{false, true} {
		b.Run(obsName(obs), func(b *testing.B) {
			sc := radloc.ScenarioC(obs, 1)
			sc.Params.TimeSteps = 12
			benchRun(b, sc, 1)
		})
	}
}

// BenchmarkFig9aObstacleA regenerates Fig. 9(a): normalized error of
// Scenario A with the U-obstacle. The reported metric is the mean
// normalized error over the second half of the run (> 1 means the
// obstacle improved accuracy).
func BenchmarkFig9aObstacleA(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		opts := radloc.RunOptions{Seed: uint64(i + 1), Reps: 3, TrialWorkers: 3}
		scn := radloc.ScenarioA(10, false)
		sco := radloc.ScenarioA(10, true)
		scn.Params.TimeSteps = 20
		sco.Params.TimeSteps = 20
		rn, err := radloc.Run(scn, opts)
		if err != nil {
			b.Fatal(err)
		}
		ro, err := radloc.Run(sco, opts)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for t := 10; t < 20; t++ {
			if !math.IsNaN(rn.MeanErr[t]) && !math.IsNaN(ro.MeanErr[t]) && ro.MeanErr[t] > 0 {
				sum += rn.MeanErr[t] / ro.MeanErr[t]
				n++
			}
		}
		if n > 0 {
			norm = sum / float64(n)
		}
	}
	b.ReportMetric(norm, "norm_err")
}

// BenchmarkFig9bcNormalized regenerates Fig. 9(b,c): per-source
// obstacle benefit in Scenarios B and C. The metric is the fraction of
// sources whose accuracy the obstacles improved.
func BenchmarkFig9bcNormalized(b *testing.B) {
	for _, which := range []string{"B", "C"} {
		b.Run(which, func(b *testing.B) {
			var helped float64
			for i := 0; i < b.N; i++ {
				var scn, sco radloc.Scenario
				if which == "B" {
					scn, sco = radloc.ScenarioB(false), radloc.ScenarioB(true)
				} else {
					scn, sco = radloc.ScenarioC(false, 1), radloc.ScenarioC(true, 1)
				}
				scn.Params.TimeSteps = 12
				sco.Params.TimeSteps = 12
				opts := radloc.RunOptions{Seed: uint64(i + 1), Reps: 1}
				rn, err := radloc.Run(scn, opts)
				if err != nil {
					b.Fatal(err)
				}
				ro, err := radloc.Run(sco, opts)
				if err != nil {
					b.Fatal(err)
				}
				cnt := 0
				for s := range rn.ErrBySource {
					base := meanTail(rn.ErrBySource[s], 5)
					with := meanTail(ro.ErrBySource[s], 5)
					if !math.IsNaN(base) && !math.IsNaN(with) && base > with {
						cnt++
					}
				}
				helped = float64(cnt) / float64(len(rn.ErrBySource))
			}
			b.ReportMetric(helped, "frac_helped")
		})
	}
}

// BenchmarkTable1Runtime regenerates Table I: time per filter iteration
// for particle counts {2000, 5000, 15000} × sensor grids {36, 196},
// swept over mean-shift worker counts in place of the paper's two
// machines. sec/op of the inner loop is the table cell.
func BenchmarkTable1Runtime(b *testing.B) {
	workerSweep := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerSweep = append(workerSweep, n)
	}
	for _, particles := range []int{2000, 5000, 15000} {
		for _, sensors := range []int{36, 196} {
			for _, workers := range workerSweep {
				name := fmt.Sprintf("p%d-n%d-w%d", particles, sensors, workers)
				b.Run(name, func(b *testing.B) {
					sc := radloc.ScenarioA(50, false)
					if sensors > 36 {
						sc = radloc.ScenarioB(true)
					}
					sc.Params.NumParticles = particles
					cfg := radloc.LocalizerConfig(sc)
					cfg.Workers = workers
					cfg.Seed = 1
					loc, err := radloc.NewLocalizer(cfg)
					if err != nil {
						b.Fatal(err)
					}
					stream := rng.NewNamed(1, "bench/table1")
					// Warm the filter so particles are concentrated as
					// in the paper's steady-state timing.
					for step := 0; step < 2; step++ {
						for _, sen := range sc.Sensors {
							m := sen.Measure(stream, sc.Sources, sc.Obstacles, step)
							loc.Ingest(sen, m.CPM)
						}
					}
					b.ResetTimer()
					si := 0
					for i := 0; i < b.N; i++ {
						sen := sc.Sensors[si%len(sc.Sensors)]
						si++
						m := sen.Measure(stream, sc.Sources, sc.Obstacles, 2)
						loc.Ingest(sen, m.CPM)
						// One amortized estimation per sensor round, as
						// in Table I where mean-shift dominates.
						if si%len(sc.Sensors) == 0 {
							_ = loc.Estimates()
						}
					}
				})
			}
		}
	}
}

// BenchmarkAblationFusionRange sweeps the fusion range (DESIGN.md ABL1):
// too small starves the filter, too large couples distant sources, and
// disabled recovers the Fig. 2 failure.
func BenchmarkAblationFusionRange(b *testing.B) {
	for _, d := range []float64{14, 28, 56, math.Inf(1)} {
		name := fmt.Sprintf("d%g", d)
		if math.IsInf(d, 1) {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			var errFinal, fp float64
			for i := 0; i < b.N; i++ {
				sc := radloc.ScenarioA(50, false)
				cfg := radloc.LocalizerConfig(sc)
				cfg.Seed = uint64(i + 1)
				if math.IsInf(d, 1) {
					cfg.DisableFusionRange = true
				} else {
					cfg.FusionRange = d
				}
				loc, err := radloc.NewLocalizer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				stream := rng.NewNamed(uint64(i+1), "bench/abl1")
				for step := 0; step < 15; step++ {
					for _, sen := range sc.Sensors {
						m := sen.Measure(stream, sc.Sources, nil, step)
						loc.Ingest(sen, m.CPM)
					}
				}
				match := radloc.Match(loc.Estimates(), sc.Sources, 40)
				if e := match.MeanError(); !math.IsNaN(e) {
					errFinal = e
				}
				fp = float64(match.FalsePos)
			}
			b.ReportMetric(errFinal, "err_final")
			b.ReportMetric(fp, "fp_final")
		})
	}
}

// BenchmarkAblationEstimator contrasts mean-shift mode extraction with
// the traditional weighted-centroid estimate (DESIGN.md ABL2): the
// centroid lands between the two sources.
func BenchmarkAblationEstimator(b *testing.B) {
	for _, mode := range []string{"meanshift", "centroid"} {
		b.Run(mode, func(b *testing.B) {
			var errFinal float64
			for i := 0; i < b.N; i++ {
				sc := radloc.ScenarioA(50, false)
				cfg := radloc.LocalizerConfig(sc)
				cfg.Seed = uint64(i + 1)
				loc, err := radloc.NewLocalizer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				stream := rng.NewNamed(uint64(i+1), "bench/abl2")
				for step := 0; step < 10; step++ {
					for _, sen := range sc.Sensors {
						m := sen.Measure(stream, sc.Sources, nil, step)
						loc.Ingest(sen, m.CPM)
					}
				}
				if mode == "meanshift" {
					match := radloc.Match(loc.Estimates(), sc.Sources, 40)
					if e := match.MeanError(); !math.IsNaN(e) {
						errFinal = e
					}
				} else {
					c := loc.Centroid()
					errFinal = math.Min(c.Pos.Dist(sc.Sources[0].Pos), c.Pos.Dist(sc.Sources[1].Pos))
				}
			}
			b.ReportMetric(errFinal, "err_final")
		})
	}
}

// BenchmarkScalabilityK sweeps the number of sources K in the Scenario
// B layout (DESIGN.md: the paper's headline claim). Both the time per
// iteration (sec/op) and the final error must stay roughly flat in K —
// the constant-parameter-space property that separates this algorithm
// from the joint-state approaches whose cost explodes with K.
func BenchmarkScalabilityK(b *testing.B) {
	full := radloc.ScenarioB(false)
	for _, k := range []int{1, 3, 5, 7, 9} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			sc := full.WithSources(full.Sources[:k])
			sc.Params.TimeSteps = 10
			res := benchRun(b, sc, 1)
			_ = res
		})
	}
}

// BenchmarkBaselineMLE times the joint-MLE + BIC comparator on the same
// data volume the filter consumes in 3 time steps (DESIGN.md BASE1) —
// the cost that "does not scale beyond four sources".
func BenchmarkBaselineMLE(b *testing.B) {
	sc := radloc.ScenarioA(50, false)
	stream := rng.NewNamed(1, "bench/base1")
	var readings []radloc.Reading
	for step := 0; step < 3; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			readings = append(readings, radloc.Reading{Sensor: sen, CPM: m.CPM})
		}
	}
	var errFinal float64
	for i := 0; i < b.N; i++ {
		res, err := radloc.BaselineMLE(readings, radloc.MLEConfig{
			Bounds: sc.Bounds, KMax: 3, Starts: 8, Criterion: radloc.BIC,
		}, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, src := range sc.Sources {
			best := math.Inf(1)
			for _, e := range res.Sources {
				best = math.Min(best, e.Pos.Dist(src.Pos))
			}
			sum += best
		}
		errFinal = sum / float64(len(sc.Sources))
	}
	b.ReportMetric(errFinal, "err_final")
}

func obsName(obs bool) string {
	if obs {
		return "obstacles"
	}
	return "no-obstacles"
}

func meanTail(xs []float64, from int) float64 {
	var sum float64
	n := 0
	for i := from; i < len(xs); i++ {
		if !math.IsNaN(xs[i]) {
			sum += xs[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
