module radloc

go 1.22
