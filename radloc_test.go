package radloc_test

import (
	"math"
	"testing"

	"radloc"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// README's quick start does.
func TestPublicAPIEndToEnd(t *testing.T) {
	sc := radloc.ScenarioA(50, false)
	sc.Params.TimeSteps = 8
	res, err := radloc.Run(sc, radloc.RunOptions{Seed: 1, Reps: 2, TrialWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanErr) != 8 {
		t.Fatalf("MeanErr length = %d", len(res.MeanErr))
	}
	if last := res.MeanErr[7]; math.IsNaN(last) || last > 10 {
		t.Errorf("final error = %v", last)
	}
}

func TestPublicStreamingAPI(t *testing.T) {
	sc := radloc.ScenarioA(50, false)
	loc, err := radloc.NewLocalizer(radloc.LocalizerConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	// Drive the localizer with exact expected readings (no noise needed
	// for an API smoke test).
	for step := 0; step < 5; step++ {
		for _, sen := range sc.Sensors {
			cpm := int(math.Round(radloc.ExpectedCPM(sen.Pos, sen.Efficiency, sen.Background, sc.Sources, nil)))
			loc.Ingest(sen, cpm)
		}
	}
	ests := loc.Estimates()
	m := radloc.Match(ests, sc.Sources, 40)
	if m.FalseNeg != 0 {
		t.Errorf("noise-free streaming run missed sources: %+v (ests %v)", m, ests)
	}
}

func TestPublicScenarios(t *testing.T) {
	if n := len(radloc.ScenarioB(true).Sensors); n != 196 {
		t.Errorf("ScenarioB sensors = %d", n)
	}
	if n := len(radloc.ScenarioC(true, 1).Sensors); n != 195 {
		t.Errorf("ScenarioC sensors = %d", n)
	}
	if n := len(radloc.ScenarioAThree(10).Sources); n != 3 {
		t.Errorf("ScenarioAThree sources = %d", n)
	}
	if radloc.DefaultParams().FusionRange != 28 {
		t.Errorf("default fusion range = %v", radloc.DefaultParams().FusionRange)
	}
}

func TestPublicGeometryAndMaterials(t *testing.T) {
	r := radloc.NewRect(radloc.V(0, 0), radloc.V(10, 10))
	if r.Width() != 10 {
		t.Errorf("rect width = %v", r.Width())
	}
	poly, err := radloc.NewPolygon([]radloc.Vec{radloc.V(0, 0), radloc.V(4, 0), radloc.V(0, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if a := poly.Area(); math.Abs(a-8) > 1e-9 {
		t.Errorf("polygon area = %v", a)
	}
	mu, err := radloc.Lead.Mu()
	if err != nil || mu <= 0 {
		t.Errorf("lead µ = %v, %v", mu, err)
	}
}

func TestPublicDeliveryPlans(t *testing.T) {
	in := radloc.InOrderDelivery(5, 3)
	if len(in.Events) != 15 {
		t.Errorf("in-order events = %d", len(in.Events))
	}
	out := radloc.OutOfOrderDelivery(5, 3, 42, 0.5, 0.2)
	if len(out.Events) >= 15 || len(out.Events) == 0 {
		t.Errorf("out-of-order with drop kept %d/15", len(out.Events))
	}
}

func TestPublicBaselines(t *testing.T) {
	sc := radloc.ScenarioA(50, false)
	var readings []radloc.Reading
	for _, sen := range sc.Sensors {
		cpm := int(math.Round(radloc.ExpectedCPM(sen.Pos, sen.Efficiency, sen.Background, sc.Sources, nil)))
		readings = append(readings, radloc.Reading{Sensor: sen, CPM: cpm})
	}
	res, err := radloc.BaselineMLE(readings, radloc.MLEConfig{
		Bounds: sc.Bounds, KMax: 2, Starts: 8, Criterion: radloc.BIC,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Errorf("BaselineMLE selected K = %d, want 2", res.K)
	}
	grid, err := radloc.BaselineGrid(readings, radloc.GridConfig{Bounds: sc.Bounds})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Sources) == 0 {
		t.Error("BaselineGrid found nothing")
	}
}
