package main

// Decode-side copies of the daemon's wire shapes. The canonical
// encoders live unexported in internal/node; these tests exercise the
// daemon across a process (or run()) boundary, so they re-declare
// just the fields they assert on — a field the daemon stops emitting
// fails these tests by zero-value, which is the point.

import (
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
)

// measurementJSON is the ingest wire format.
type measurementJSON = httpingest.Measurement

// snapshotJSON mirrors the daemon's snapshot document.
type snapshotJSON struct {
	Ingested    uint64                `json:"ingested"`
	Rejected    uint64                `json:"rejected"`
	Refreshes   uint64                `json:"refreshes"`
	Quarantined int                   `json:"quarantined"`
	Malformed   uint64                `json:"malformed,omitempty"`
	Shed        uint64                `json:"shed,omitempty"`
	ZoneRefused uint64                `json:"zoneRefused,omitempty"`
	Journaled   uint64                `json:"journaled,omitempty"`
	Delivery    *fusion.DeliveryStats `json:"delivery,omitempty"`
	Estimates   []estimateJSON        `json:"estimates"`
	Tracks      []trackJSON           `json:"tracks,omitempty"`
}

type estimateJSON struct {
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
	Mass        float64 `json:"mass"`
}

type trackJSON struct {
	ID          int     `json:"id"`
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
	Hits        int     `json:"hits"`
}
