package main

// Flags-file tests: -config accepts either a scenario file (legacy)
// or a JSON object of flag values plus a "scenario" key. The
// round-trip criterion is behavioral: a daemon launched from a flags
// file must produce byte-identical pipe output to one launched with
// the equivalent command line, and an explicit command-line flag must
// beat the file's value for the same flag.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFlagsFile marshals a flags map next to a scenario deployment
// and returns the flags-file path.
func writeFlagsFile(t *testing.T, dir string, flags map[string]any) string {
	t.Helper()
	data, err := json.Marshal(flags)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "radlocd.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// pipeOutput runs the daemon in pipe mode over a fixed stream and
// returns everything it wrote to stdout.
func pipeOutput(t *testing.T, args []string, input string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(context.Background(), args, strings.NewReader(input), &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestFlagsFileRoundTrip(t *testing.T) {
	deploy, sc := writeDeployment(t)
	input := measurementsNDJSON(t, sc, 3)

	// The file supplies -seed and -report-every; "scenario" is a path
	// relative to the flags file itself.
	flagsPath := writeFlagsFile(t, filepath.Dir(deploy), map[string]any{
		"scenario":     filepath.Base(deploy),
		"seed":         5,
		"report-every": len(sc.Sensors) * 2,
	})

	want := pipeOutput(t, []string{
		"-config", deploy, "-seed", "5", "-report-every", "72",
	}, input)
	got := pipeOutput(t, []string{"-config", flagsPath}, input)
	if got != want {
		t.Errorf("flags file diverged from the equivalent command line:\nfile: %s\nargs: %s", got, want)
	}
	// Sanity: report-every actually took — 3 rounds at a 2-round
	// cadence is 1 interim snapshot + the final flush.
	if lines := strings.Count(strings.TrimSpace(got), "\n") + 1; lines != 2 {
		t.Errorf("snapshot lines = %d, want 2 (report-every from the file ignored?)", lines)
	}

	// An explicit command-line flag beats the file's value.
	want = pipeOutput(t, []string{
		"-config", deploy, "-seed", "2", "-report-every", "72",
	}, input)
	got = pipeOutput(t, []string{"-config", flagsPath, "-seed", "2"}, input)
	if got != want {
		t.Errorf("explicit -seed lost to the flags file:\nfile: %s\nargs: %s", got, want)
	}
}

// TestFlagsFileErrors pins the failure modes apart from the happy
// path: unknown keys, a missing scenario, nesting -config, and
// unparseable values must all fail with a pointed error instead of
// being half-applied.
func TestFlagsFileErrors(t *testing.T) {
	deploy, _ := writeDeployment(t)
	dir := filepath.Dir(deploy)
	cases := []struct {
		name  string
		flags map[string]any
		want  string
	}{
		{"unknown flag", map[string]any{"scenario": deploy, "sead": 5}, `unknown flag "sead"`},
		{"missing scenario", map[string]any{"seed": 5}, `missing "scenario"`},
		{"nested config", map[string]any{"scenario": deploy, "config": "x.json"}, "cannot set -config"},
		{"bad value type", map[string]any{"scenario": deploy, "seed": []int{1}}, "string, number or bool"},
		{"bad scenario type", map[string]any{"scenario": 7}, `"scenario" must be a path string`},
		{"unparseable value", map[string]any{"scenario": deploy, "seed": "not-a-number"}, `key "seed"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeFlagsFile(t, dir, tc.flags)
			var out bytes.Buffer
			err := run(context.Background(), []string{"-config", path}, strings.NewReader(""), &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestFlagsFileAbsoluteScenario: an absolute "scenario" path is used
// as-is, not re-anchored to the flags file's directory.
func TestFlagsFileAbsoluteScenario(t *testing.T) {
	deploy, sc := writeDeployment(t)
	flagsPath := writeFlagsFile(t, t.TempDir(), map[string]any{"scenario": deploy})
	input := measurementsNDJSON(t, sc, 1)
	out := pipeOutput(t, []string{"-config", flagsPath}, input)
	if !strings.Contains(out, `"ingested"`) {
		t.Fatalf("no snapshot produced: %q", out)
	}
}

// TestScenarioFileStillLegacy: a plain scenario file keeps its
// original -config meaning — sniffed by its "sensors"/"version" keys,
// never treated as a flags file.
func TestScenarioFileStillLegacy(t *testing.T) {
	deploy, _ := writeDeployment(t)
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	data, err := resolveConfigFile(fs, deploy)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(deploy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, raw) {
		t.Fatal("scenario file was rewritten by -config resolution")
	}
}
