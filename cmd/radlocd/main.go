// Command radlocd is the fusion-center daemon: it loads a sensor
// deployment from a JSON scenario file, then consumes measurements and
// serves source estimates, either over stdin/stdout pipes or over HTTP.
//
// Pipe mode (default):
//
//	radlocd -config deployment.json < measurements.ndjson
//
// reads newline-delimited JSON measurements {"sensorId":3,"cpm":17}
// from stdin and writes a JSON snapshot line after every -report-every
// measurements.
//
// HTTP mode:
//
//	radlocd -config deployment.json -listen 127.0.0.1:8080
//
// serves POST /measurements (a single measurement or an array),
// GET /snapshot, GET /sensors (per-sensor health), GET /healthz
// (liveness) and GET /readyz (readiness).
//
// Both modes are sharded into named zones, each a fusion engine of its
// own behind a single-writer event loop: POST /zones/{zone}/
// measurements (or a "zone" field on a pipe-mode record) routes a
// reading, GET /zones lists the live zones, and GET /zones/{zone}/
// {snapshot,stats,sensors,statez} read one zone. The classic unnamed
// routes alias the always-live default zone, so a pre-zone deployment
// keeps its exact behavior — including its WAL layout: the default
// zone's log stays at -wal-dir itself, named zones get
// -wal-dir/zones/<name>, and boot recovery replays every zone found
// on disk.
//
// SIGINT/SIGTERM shut either mode down gracefully: the pipe flushes a
// final snapshot line, the HTTP server drains in-flight requests and
// logs a final snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"radloc/internal/cluster"
	"radloc/internal/config"
	"radloc/internal/failover"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/scrub"
	"radloc/internal/sim"
	"radloc/internal/track"
	"radloc/internal/vfs"
	"radloc/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radlocd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("radlocd", flag.ContinueOnError)
	var (
		cfgPath     = fs.String("config", "", "JSON scenario file with the sensor deployment (required)")
		listen      = fs.String("listen", "", "HTTP listen address; empty = stdin/stdout pipe mode")
		reportEvery = fs.Int("report-every", 0, "pipe mode: snapshot after this many measurements (default: one sensor round)")
		seed        = fs.Uint64("seed", 1, "localizer random seed")
		weightW     = fs.Int("weight-workers", 0, "goroutines weighting one measurement's particle subset inside each zone's filter (0 = GOMAXPROCS; output is bit-identical for every value)")
		msWorkers   = fs.Int("ms-workers", 0, "goroutines climbing mean-shift starts per estimate refresh (0 = GOMAXPROCS)")
		withTracks  = fs.Bool("tracks", true, "maintain confirmed tracks over estimates")
		noHealth    = fs.Bool("no-health", false, "disable the per-sensor health monitor (trust every reading)")
		walDir      = fs.String("wal-dir", "", "durability directory for the write-ahead log and checkpoints; empty = durability off")
		fsyncMode   = fs.String("fsync", "batch", "WAL fsync policy: always (sync per record), batch (sync at checkpoints/shutdown) or never")
		ckptEvery   = fs.Int("checkpoint-every", 1000, "checkpoint the engine state every N journaled records (0 = only at shutdown)")
		walSegment  = fs.Int("wal-segment", 0, "rotate WAL segments after this many records (0 = the WAL's default); smaller segments scrub and prune in finer grain")
		queueCap    = fs.Int("queue", 4096, "pipe mode: bounded ingest queue capacity; overflow sheds the oldest reading per sensor")
		httpQueue   = fs.Int("http-queue", 64, "HTTP mode: admission queue depth; requests beyond it are shed with 429 + Retry-After")
		maxBody     = fs.Int64("max-body", 1<<20, "HTTP mode: request body byte bound (413 over it)")
		retryAfter  = fs.Duration("retry-after", time.Second, "HTTP mode: Retry-After hint on 429 responses")
		rate        = fs.Float64("rate", 0, "HTTP mode: per-sensor sustained readings/sec token-bucket rate limit (0 = off)")
		burst       = fs.Float64("burst", 0, "HTTP mode: per-sensor token-bucket burst (default 4×-rate)")
		readTO      = fs.Duration("read-timeout", 15*time.Second, "HTTP mode: server read timeout (slow-loris guard)")
		writeTO     = fs.Duration("write-timeout", 30*time.Second, "HTTP mode: server write timeout")
		idleTO      = fs.Duration("idle-timeout", 2*time.Minute, "HTTP mode: keep-alive idle connection timeout")
		pprofOn     = fs.Bool("pprof", false, "HTTP mode: serve net/http/pprof profiles under /debug/pprof/ (off by default)")
		maxZones    = fs.Int("max-zones", 64, "cap on concurrently live fusion zones; creating one more is refused (HTTP 503)")
		zoneMail    = fs.Int("zone-mailbox", 64, "per-zone mailbox depth in batches; a full mailbox sheds with 429 + Retry-After")
		zoneIdle    = fs.Duration("zone-idle", 0, "evict a named zone idle this long, after a final checkpoint (0 = never; the default zone is never evicted)")
		probeStor   = fs.Duration("storage-probe", time.Second, "how often a degraded zone re-tests its WAL for recovery (jittered ±20%; 0 = never, only organic writes recover)")
		scrubEvery  = fs.Duration("scrub-interval", 15*time.Minute, "integrity scrubber pacing: one cold WAL segment or checkpoint sweep per zone per interval (0 = scrubbing off)")
		clusterSelf = fs.String("cluster-self", "", "this node's base URL as peers reach it (e.g. http://10.0.0.1:8080); enables cluster mode (requires -listen)")
		clusterRts  = fs.String("cluster-routes", "", "JSON zone-to-node routing table; standby zones start replicating at boot")
		clusterTok  = fs.String("cluster-token", "", "bearer token guarding the /cluster endpoints and attached to outgoing replication pulls")
		replEvery   = fs.Duration("repl-interval", 500*time.Millisecond, "standby idle poll period between replication pulls")
		replBatch   = fs.Int("repl-batch", 4096, "max WAL records per replication pull")
		failoverOn  = fs.Bool("failover", false, "probe -cluster-peers and self-promote standby zones when their primary dies (requires -cluster-self)")
		peersCSV    = fs.String("cluster-peers", "", "comma-separated peer base URLs the failure detector probes")
		probeEvery  = fs.Duration("probe-interval", 2*time.Second, "failover: base peer probe period (jittered ±20%)")
		suspectN    = fs.Int("suspect-misses", 3, "failover: consecutive probe misses before a peer is suspected")
		holdDown    = fs.Duration("holddown", 10*time.Second, "failover: how long a suspected peer must stay unreachable before it is declared dead (flap damping)")
		maxPromLag  = fs.Uint64("max-promote-lag", 0, "failover: refuse unattended promotion when replication lag exceeds this many records (0 = must be fully caught up)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return fmt.Errorf("missing -config (a JSON scenario file; generate one with `radloc config emit A`)")
	}
	data, err := os.ReadFile(*cfgPath)
	if err != nil {
		return err
	}
	sc, err := config.LoadScenario(data)
	if err != nil {
		return err
	}

	// One registry for the whole process: filter stages, fusion engine,
	// WAL, checkpointer and HTTP ingest all register on it, and HTTP
	// mode serves it on GET /metrics. Registration is get-or-create, so
	// the recovery path rebuilding the engine reuses the same
	// collectors.
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg, time.Now())

	// build constructs one zone's engine. Every zone shares the
	// deployment, the seed and the feature flags; met is that zone's
	// labeled view of the process registry.
	build := func(j fusion.Journal, met *obs.Registry) (*fusion.Engine, error) {
		fcfg := fusion.Config{
			Localizer: sim.LocalizerConfig(sc),
			Sensors:   sc.Sensors,
			Health:    fusion.HealthConfig{Disabled: *noHealth},
			Journal:   j,
			Metrics:   met,
		}
		fcfg.Localizer.Seed = *seed
		fcfg.Localizer.Metrics = met
		fcfg.Localizer.WeightWorkers = *weightW
		fcfg.Localizer.Workers = *msWorkers
		if *withTracks {
			fcfg.Tracking = &track.Config{}
		}
		return fusion.NewEngine(fcfg)
	}

	pol := wal.FsyncNever
	if *walDir != "" {
		if pol, err = wal.ParseFsyncPolicy(*fsyncMode); err != nil {
			return err
		}
	}
	// All durability I/O goes through the observed filesystem, so real
	// disk faults (ENOSPC, EIO) land on radloc_storage_faults_total
	// exactly like injected ones do in the chaos tests.
	zs, err := newZoneSet(zoneSetOptions{
		WalRoot: *walDir, FS: vfs.Observe(vfs.OS{}, reg), Fsync: pol, CkptEvery: *ckptEvery,
		SegmentRecords: *walSegment,
		MaxZones:       *maxZones, Mailbox: *zoneMail, IdleAfter: *zoneIdle,
		Metrics: reg, Log: os.Stderr, Build: build,
	})
	if err != nil {
		return err
	}
	if *walDir != "" && *probeStor > 0 {
		// Degraded zones re-test their WAL on a jittered cadence so the
		// node exits read-only mode on its own once space frees, even
		// with every agent backed off.
		go zs.storageProbeLoop(ctx, *probeStor, *seed)
	}
	// Recovery at boot: the default zone plus every named zone with
	// state on disk, each from its own WAL directory — newest valid
	// checkpoint plus WAL suffix replay through the live ingest path.
	// Logged to stderr — stdout is the data channel in pipe mode.
	// /readyz stays 503 until this completes (and, in cluster mode,
	// until every standby zone has caught up at least once).
	var recovered atomic.Bool
	if err := zs.recoverZones(); err != nil {
		return err
	}
	recovered.Store(true)
	def := zs.defaultZone()
	engine, d := def.Engine(), zoneDurable(def)

	var node *cluster.Node
	if *clusterSelf != "" {
		if *listen == "" {
			return fmt.Errorf("-cluster-self requires -listen (replication is served over HTTP)")
		}
		var eps cluster.EpochStore = &cluster.MemEpochStore{}
		var rstore cluster.RouteStore
		if *walDir != "" {
			eps = &fileEpochStore{zs: zs}
			rstore = &fileRouteStore{dir: *walDir, fs: zs.fs, logw: os.Stderr}
		}
		node, err = cluster.NewNode(cluster.Options{
			Self:         *clusterSelf,
			Token:        *clusterTok,
			Resolver:     zs.clusterBackend,
			Epochs:       eps,
			RouteStore:   rstore,
			PullInterval: *replEvery,
			PullBatch:    *replBatch,
			Drop:         zs.manager.Drop,
			Metrics:      reg,
			Log:          log.New(os.Stderr, "", log.LstdFlags),
		})
		if err != nil {
			return err
		}
		defer node.Close()
		if *clusterRts != "" {
			rt, rerr := cluster.LoadRoutes(*clusterRts)
			if rerr != nil {
				return rerr
			}
			if err := node.SetRoutes(rt); err != nil {
				return err
			}
		}
		// The persisted learned table is applied after the static seed:
		// its entries carry epochs, so anything this node learned before
		// its last shutdown overrides a stale seed (highest epoch wins),
		// while a fresh seed for a brand-new zone still lands.
		if rstore != nil {
			learned, lerr := rstore.Load()
			if lerr != nil {
				return lerr
			}
			if len(learned.Zones) > 0 {
				node.LearnRoutes(learned)
			}
		}
		// The scrubber's repair-from-replica path goes through the node.
		zs.clusterNode = node
	}
	if *failoverOn {
		if node == nil {
			return fmt.Errorf("-failover requires -cluster-self (the failure detector acts on the cluster layer)")
		}
		peers := splitPeers(*peersCSV)
		if len(peers) == 0 {
			return fmt.Errorf("-failover requires -cluster-peers (who to probe)")
		}
		prom, perr := failover.New(failover.Options{
			Node:          node,
			Self:          *clusterSelf,
			Peers:         peers,
			Token:         *clusterTok,
			Interval:      *probeEvery,
			Suspect:       *suspectN,
			HoldDown:      *holdDown,
			MaxPromoteLag: *maxPromLag,
			Metrics:       reg,
			Log:           log.New(os.Stderr, "", log.LstdFlags),
		})
		if perr != nil {
			return perr
		}
		prom.Start()
		defer prom.Close()
		// Publish the detector's world-view on /cluster/status, so an
		// operator reads suspicion state instead of inferring it from
		// logs.
		node.SetPeersFunc(prom.PeerViews)
	}
	if *walDir != "" && *scrubEvery > 0 {
		scr, serr := scrub.New(scrub.Options{
			Targets:  zs.scrubTargets,
			Interval: *scrubEvery,
			RNG:      rng.NewNamed(uint64(*seed), "scrub"),
			Metrics:  reg,
			Log:      log.New(os.Stderr, "", log.LstdFlags),
		})
		if serr != nil {
			return serr
		}
		scr.Start()
		defer scr.Close()
	}
	if *zoneIdle > 0 {
		interval := *zoneIdle / 4
		if interval < time.Second {
			interval = time.Second
		}
		go zs.manager.Janitor(ctx, interval)
	}

	if *listen != "" {
		ing := newZonedIngest(zs.manager, httpingest.Options{
			QueueDepth: *httpQueue,
			MaxBody:    *maxBody,
			RetryAfter: *retryAfter,
			RatePerSec: *rate,
			Burst:      *burst,
			Metrics:    reg,
		})
		err = serveHTTP(ctx, *listen, serveConfig{
			Engine: engine, Durable: d, Ingest: ing, Zones: zs,
			Timeouts: httpTimeouts{Read: *readTO, Write: *writeTO, Idle: *idleTO},
			Metrics:  reg, Pprof: *pprofOn, Cluster: node,
			Ready: func() bool {
				return recovered.Load() && (node == nil || node.Ready())
			},
		}, stdout)
	} else {
		every := *reportEvery
		if every <= 0 {
			every = len(sc.Sensors)
		}
		err = servePipe(ctx, zs, stdin, stdout, every, *queueCap)
	}
	// Final checkpoints + WAL sync/close for every zone, even on a
	// serve error: what each engine applied is what the next boot
	// recovers.
	if cerr := zs.close(); err == nil {
		err = cerr
	}
	return err
}

// splitPeers parses the -cluster-peers list: comma-separated base
// URLs, blanks tolerated.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
