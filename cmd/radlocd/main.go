// Command radlocd is the fusion-center daemon: it loads a sensor
// deployment from a JSON scenario file, then consumes measurements and
// serves source estimates, either over stdin/stdout pipes or over HTTP.
//
// Pipe mode (default):
//
//	radlocd -config deployment.json < measurements.ndjson
//
// reads newline-delimited JSON measurements {"sensorId":3,"cpm":17}
// from stdin and writes a JSON snapshot line after every -report-every
// measurements.
//
// HTTP mode:
//
//	radlocd -config deployment.json -listen 127.0.0.1:8080
//
// serves POST /measurements (a single measurement or an array),
// GET /snapshot, GET /sensors (per-sensor health), GET /healthz
// (liveness) and GET /readyz (readiness).
//
// -config also accepts a flags file: a JSON object whose keys are
// flag names ({"listen":":8080","wal-dir":"/data","scenario":
// "deployment.json"}), with "scenario" naming the deployment file
// (resolved relative to the flags file). The two shapes are told
// apart by their keys — a scenario file carries "sensors"/"version" —
// and flags given explicitly on the command line always win over file
// values.
//
// Both modes are sharded into named zones, each a fusion engine of its
// own behind a single-writer event loop: POST /zones/{zone}/
// measurements (or a "zone" field on a pipe-mode record) routes a
// reading, GET /zones lists the live zones, and GET /zones/{zone}/
// {snapshot,stats,sensors,statez} read one zone. The classic unnamed
// routes alias the always-live default zone, so a pre-zone deployment
// keeps its exact behavior — including its WAL layout: the default
// zone's log stays at -wal-dir itself, named zones get
// -wal-dir/zones/<name>, and boot recovery replays every zone found
// on disk.
//
// SIGINT/SIGTERM shut either mode down gracefully: the pipe flushes a
// final snapshot line, the HTTP server drains in-flight requests and
// logs a final snapshot.
//
// The daemon itself lives in internal/node: main parses flags into a
// node.Config and calls node.Run. Embedders (and the chaos tests)
// build node.Nodes directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"radloc/internal/cluster"
	"radloc/internal/config"
	"radloc/internal/node"
	"radloc/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radlocd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("radlocd", flag.ContinueOnError)
	var (
		cfgPath     = fs.String("config", "", "JSON scenario file with the sensor deployment, or a JSON flags file with a \"scenario\" key (required)")
		listen      = fs.String("listen", "", "HTTP listen address; empty = stdin/stdout pipe mode")
		reportEvery = fs.Int("report-every", 0, "pipe mode: snapshot after this many measurements (default: one sensor round)")
		seed        = fs.Uint64("seed", 1, "localizer random seed")
		weightW     = fs.Int("weight-workers", 0, "goroutines weighting one measurement's particle subset inside each zone's filter (0 = GOMAXPROCS; output is bit-identical for every value)")
		msWorkers   = fs.Int("ms-workers", 0, "goroutines climbing mean-shift starts per estimate refresh (0 = GOMAXPROCS)")
		withTracks  = fs.Bool("tracks", true, "maintain confirmed tracks over estimates")
		noHealth    = fs.Bool("no-health", false, "disable the per-sensor health monitor (trust every reading)")
		walDir      = fs.String("wal-dir", "", "durability directory for the write-ahead log and checkpoints; empty = durability off")
		fsyncMode   = fs.String("fsync", "batch", "WAL fsync policy: always (sync per record), batch (sync at checkpoints/shutdown) or never")
		ckptEvery   = fs.Int("checkpoint-every", 1000, "checkpoint the engine state every N journaled records (0 = only at shutdown)")
		walSegment  = fs.Int("wal-segment", 0, "rotate WAL segments after this many records (0 = the WAL's default); smaller segments scrub and prune in finer grain")
		queueCap    = fs.Int("queue", 4096, "pipe mode: bounded ingest queue capacity; overflow sheds the oldest reading per sensor")
		httpQueue   = fs.Int("http-queue", 64, "HTTP mode: admission queue depth; requests beyond it are shed with 429 + Retry-After")
		maxBody     = fs.Int64("max-body", 1<<20, "HTTP mode: request body byte bound (413 over it)")
		retryAfter  = fs.Duration("retry-after", time.Second, "HTTP mode: Retry-After hint on 429 responses")
		rate        = fs.Float64("rate", 0, "HTTP mode: per-sensor sustained readings/sec token-bucket rate limit (0 = off)")
		burst       = fs.Float64("burst", 0, "HTTP mode: per-sensor token-bucket burst (default 4×-rate)")
		readTO      = fs.Duration("read-timeout", 15*time.Second, "HTTP mode: server read timeout (slow-loris guard)")
		writeTO     = fs.Duration("write-timeout", 30*time.Second, "HTTP mode: server write timeout")
		idleTO      = fs.Duration("idle-timeout", 2*time.Minute, "HTTP mode: keep-alive idle connection timeout")
		pprofOn     = fs.Bool("pprof", false, "HTTP mode: serve net/http/pprof profiles under /debug/pprof/ (off by default)")
		maxZones    = fs.Int("max-zones", 64, "cap on concurrently live fusion zones; creating one more is refused (HTTP 503)")
		zoneMail    = fs.Int("zone-mailbox", 64, "per-zone mailbox depth in batches; a full mailbox sheds with 429 + Retry-After")
		zoneIdle    = fs.Duration("zone-idle", 0, "evict a named zone idle this long, after a final checkpoint (0 = never; the default zone is never evicted)")
		probeStor   = fs.Duration("storage-probe", time.Second, "how often a degraded zone re-tests its WAL for recovery (jittered ±20%; 0 = never, only organic writes recover)")
		scrubEvery  = fs.Duration("scrub-interval", 15*time.Minute, "integrity scrubber pacing: one cold WAL segment or checkpoint sweep per zone per interval (0 = scrubbing off)")
		clusterSelf = fs.String("cluster-self", "", "this node's base URL as peers reach it (e.g. http://10.0.0.1:8080); enables cluster mode (requires -listen)")
		clusterRts  = fs.String("cluster-routes", "", "JSON zone-to-node routing table; standby zones start replicating at boot")
		clusterTok  = fs.String("cluster-token", "", "bearer token guarding the /cluster endpoints and attached to outgoing replication pulls")
		replEvery   = fs.Duration("repl-interval", 500*time.Millisecond, "standby idle poll period between replication pulls")
		replBatch   = fs.Int("repl-batch", 4096, "max WAL records per replication pull")
		failoverOn  = fs.Bool("failover", false, "probe -cluster-peers and self-promote standby zones when their primary dies (requires -cluster-self)")
		peersCSV    = fs.String("cluster-peers", "", "comma-separated peer base URLs the failure detector probes")
		probeEvery  = fs.Duration("probe-interval", 2*time.Second, "failover: base peer probe period (jittered ±20%)")
		suspectN    = fs.Int("suspect-misses", 3, "failover: consecutive probe misses before a peer is suspected")
		holdDown    = fs.Duration("holddown", 10*time.Second, "failover: how long a suspected peer must stay unreachable before it is declared dead (flap damping)")
		maxPromLag  = fs.Uint64("max-promote-lag", 0, "failover: refuse unattended promotion when replication lag exceeds this many records (0 = must be fully caught up)")
		readFanout  = fs.Bool("read-fanout", false, "forward /snapshot and /statez reads to a caught-up standby while this primary is under write load (requires cluster mode)")
		fanoutLag   = fs.Uint64("read-fanout-lag", 0, "read fan-out: highest standby replication lag, in records, still eligible to serve reads (0 = fully caught up)")
		fanoutLoad  = fs.Int("read-fanout-load", 1, "read fan-out: forward only while at least this many writes are in flight (0 = whenever a standby is eligible)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return fmt.Errorf("missing -config (a JSON scenario file; generate one with `radloc config emit A`)")
	}
	scenarioData, err := resolveConfigFile(fs, *cfgPath)
	if err != nil {
		return err
	}
	sc, err := config.LoadScenario(scenarioData)
	if err != nil {
		return err
	}

	pol := wal.FsyncNever
	if *walDir != "" {
		if pol, err = wal.ParseFsyncPolicy(*fsyncMode); err != nil {
			return err
		}
	}
	var seedRoutes *cluster.Routes
	if *clusterRts != "" {
		rt, rerr := cluster.LoadRoutes(*clusterRts)
		if rerr != nil {
			return rerr
		}
		seedRoutes = &rt
	}

	return node.Run(ctx, node.Config{
		Scenario:      sc,
		Seed:          *seed,
		WeightWorkers: *weightW,
		MSWorkers:     *msWorkers,
		NoTracks:      !*withTracks,
		NoHealth:      *noHealth,

		Listen:      *listen,
		ReportEvery: *reportEvery,
		PipeQueue:   *queueCap,

		WALDir:          *walDir,
		Fsync:           pol,
		CheckpointEvery: *ckptEvery,
		WALSegment:      *walSegment,
		StorageProbe:    *probeStor,
		ScrubInterval:   *scrubEvery,

		MaxZones:    *maxZones,
		ZoneMailbox: *zoneMail,
		ZoneIdle:    *zoneIdle,

		HTTPQueue:    *httpQueue,
		MaxBody:      *maxBody,
		RetryAfter:   *retryAfter,
		Rate:         *rate,
		Burst:        *burst,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		IdleTimeout:  *idleTO,
		Pprof:        *pprofOn,

		ClusterSelf:  *clusterSelf,
		ClusterToken: *clusterTok,
		SeedRoutes:   seedRoutes,
		ReplInterval: *replEvery,
		ReplBatch:    *replBatch,

		Failover:      *failoverOn,
		Peers:         splitPeers(*peersCSV),
		ProbeInterval: *probeEvery,
		SuspectMisses: *suspectN,
		HoldDown:      *holdDown,
		MaxPromoteLag: *maxPromLag,

		ReadFanout:        *readFanout,
		FanoutMaxLag:      *fanoutLag,
		FanoutMinInflight: *fanoutLoad,

		Log: os.Stderr,
	}, stdin, stdout)
}

// resolveConfigFile reads -config and returns the scenario JSON it
// leads to. Two shapes are accepted, told apart by their keys: a
// scenario file (the legacy meaning — carries "sensors" and
// "version") is returned as-is; anything else is a flags file, a JSON
// object whose keys are flag names plus "scenario" naming the
// deployment file, resolved relative to the flags file itself. File
// values apply only to flags not set explicitly on the command line —
// the command line always wins.
func resolveConfigFile(fs *flag.FlagSet, path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		// Not a JSON object at all: let the scenario loader produce its
		// own (better) error.
		return data, nil
	}
	if _, isScenario := keys["sensors"]; isScenario {
		return data, nil
	}
	if _, isScenario := keys["version"]; isScenario {
		return data, nil
	}

	// Flags file. Explicitly-set command-line flags win; collect them
	// before touching anything.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var scenarioPath string
	// Apply in sorted order so a bad file fails on the same key every
	// run.
	names := make([]string, 0, len(keys))
	for name := range keys {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == "scenario" {
			if err := json.Unmarshal(keys[name], &scenarioPath); err != nil {
				return nil, fmt.Errorf("flags file %s: \"scenario\" must be a path string: %v", path, err)
			}
			continue
		}
		if name == "config" {
			return nil, fmt.Errorf("flags file %s: a flags file cannot set -config (use \"scenario\" for the deployment)", path)
		}
		if fs.Lookup(name) == nil {
			return nil, fmt.Errorf("flags file %s: unknown flag %q (a scenario file would have \"sensors\"; a flags file's keys must be radlocd flag names)", path, name)
		}
		if explicit[name] {
			continue
		}
		var val any
		if err := json.Unmarshal(keys[name], &val); err != nil {
			return nil, fmt.Errorf("flags file %s: key %q: %v", path, name, err)
		}
		// flag.Set parses strings: JSON strings pass through (covering
		// durations like "500ms"), numbers and bools format naturally.
		var s string
		switch v := val.(type) {
		case string:
			s = v
		case bool:
			s = fmt.Sprintf("%v", v)
		case float64:
			// Integers round-trip exactly; %v would add an exponent for
			// large WAL offsets.
			if v == float64(int64(v)) {
				s = fmt.Sprintf("%d", int64(v))
			} else {
				s = fmt.Sprintf("%v", v)
			}
		default:
			return nil, fmt.Errorf("flags file %s: key %q: value must be a string, number or bool", path, name)
		}
		if err := fs.Set(name, s); err != nil {
			return nil, fmt.Errorf("flags file %s: key %q: %v", path, name, err)
		}
	}
	if scenarioPath == "" {
		return nil, fmt.Errorf("flags file %s: missing \"scenario\" (the deployment JSON the daemon loads)", path)
	}
	if !filepath.IsAbs(scenarioPath) {
		scenarioPath = filepath.Join(filepath.Dir(path), scenarioPath)
	}
	return os.ReadFile(scenarioPath)
}

// splitPeers parses the -cluster-peers list: comma-separated base
// URLs, blanks tolerated.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
