package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"radloc/internal/fusion"
)

// measurementJSON is the wire form of one reading.
type measurementJSON struct {
	SensorID int `json:"sensorId"`
	CPM      int `json:"cpm"`
}

// snapshotJSON is the wire form of the engine state.
type snapshotJSON struct {
	Ingested  uint64         `json:"ingested"`
	Rejected  uint64         `json:"rejected"`
	Estimates []estimateJSON `json:"estimates"`
	Tracks    []trackJSON    `json:"tracks,omitempty"`
}

type estimateJSON struct {
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
	Mass        float64 `json:"mass"`
}

type trackJSON struct {
	ID          int     `json:"id"`
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
	Hits        int     `json:"hits"`
}

func snapshotToJSON(s fusion.Snapshot) snapshotJSON {
	out := snapshotJSON{
		Ingested:  s.Ingested,
		Rejected:  s.Rejected,
		Estimates: make([]estimateJSON, 0, len(s.Estimates)),
	}
	for _, e := range s.Estimates {
		out.Estimates = append(out.Estimates, estimateJSON{
			X: e.Pos.X, Y: e.Pos.Y, StrengthUCi: e.Strength, Mass: e.Mass,
		})
	}
	for _, t := range s.Tracks {
		out.Tracks = append(out.Tracks, trackJSON{
			ID: t.ID, X: t.Pos.X, Y: t.Pos.Y, StrengthUCi: t.Strength, Hits: t.Hits,
		})
	}
	return out
}

// servePipe consumes NDJSON measurements from r, emitting a snapshot
// line every reportEvery measurements and a final one at EOF.
func servePipe(engine *fusion.Engine, r io.Reader, w io.Writer, reportEvery int) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(w)
	count := 0
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var m measurementJSON
		if err := json.Unmarshal(line, &m); err != nil {
			return fmt.Errorf("bad measurement line %q: %w", line, err)
		}
		// Unknown sensors and bad readings are counted but do not kill
		// the stream — field data is messy.
		_, _ = engine.Ingest(m.SensorID, m.CPM)
		count++
		if count%reportEvery == 0 {
			if err := enc.Encode(snapshotToJSON(engine.Snapshot())); err != nil {
				return err
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	engine.Refresh()
	return enc.Encode(snapshotToJSON(engine.Snapshot()))
}

// newMux builds the HTTP API.
func newMux(engine *fusion.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok: %d sensors registered\n", engine.Sensors())
	})
	started := time.Now()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		s := engine.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"uptimeSeconds": time.Since(started).Seconds(),
			"sensors":       engine.Sensors(),
			"ingested":      s.Ingested,
			"rejected":      s.Rejected,
			"estimates":     len(s.Estimates),
			"tracks":        len(s.Tracks),
		})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snapshotToJSON(engine.Snapshot()))
	})
	mux.HandleFunc("/measurements", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<22))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var batch []measurementJSON
		if err := json.Unmarshal(body, &batch); err != nil {
			var one measurementJSON
			if err := json.Unmarshal(body, &one); err != nil {
				http.Error(w, "want a measurement object or array", http.StatusBadRequest)
				return
			}
			batch = []measurementJSON{one}
		}
		accepted := 0
		for _, m := range batch {
			if _, err := engine.Ingest(m.SensorID, m.CPM); err == nil {
				accepted++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{
			"accepted": accepted,
			"rejected": len(batch) - accepted,
		})
	})
	return mux
}

// serveHTTP blocks serving the API on addr.
func serveHTTP(addr string, engine *fusion.Engine, logw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "radlocd: serving on http://%s (POST /measurements, GET /snapshot)\n", ln.Addr())
	srv := &http.Server{
		Handler:           newMux(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.Serve(ln)
}
