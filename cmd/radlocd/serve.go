package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"time"

	"radloc/internal/fusion"
)

// measurementJSON is the wire form of one reading.
type measurementJSON struct {
	SensorID int `json:"sensorId"`
	CPM      int `json:"cpm"`
}

// snapshotJSON is the wire form of the engine state.
type snapshotJSON struct {
	Ingested    uint64         `json:"ingested"`
	Rejected    uint64         `json:"rejected"`
	Refreshes   uint64         `json:"refreshes"`
	Quarantined int            `json:"quarantined"`
	Malformed   uint64         `json:"malformed,omitempty"` // pipe mode: unparseable lines skipped
	Estimates   []estimateJSON `json:"estimates"`
	Tracks      []trackJSON    `json:"tracks,omitempty"`
}

type estimateJSON struct {
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
	Mass        float64 `json:"mass"`
}

type trackJSON struct {
	ID          int     `json:"id"`
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
	Hits        int     `json:"hits"`
}

// sensorHealthJSON is the wire form of one sensor's health record.
type sensorHealthJSON struct {
	SensorID    int      `json:"sensorId"`
	Status      string   `json:"status"`
	LastZ       *float64 `json:"lastZ,omitempty"` // omitted until the monitor has scored a reading
	Seen        uint64   `json:"seen"`
	Dropped     uint64   `json:"dropped"`
	Quarantines int      `json:"quarantines"`
}

func healthToJSON(hs []fusion.SensorHealth) []sensorHealthJSON {
	out := make([]sensorHealthJSON, 0, len(hs))
	for _, h := range hs {
		rec := sensorHealthJSON{
			SensorID:    h.SensorID,
			Status:      h.Status.String(),
			Seen:        h.Seen,
			Dropped:     h.Dropped,
			Quarantines: h.Quarantines,
		}
		if !math.IsNaN(h.LastZ) {
			z := h.LastZ
			rec.LastZ = &z
		}
		out = append(out, rec)
	}
	return out
}

func snapshotToJSON(s fusion.Snapshot) snapshotJSON {
	out := snapshotJSON{
		Ingested:    s.Ingested,
		Rejected:    s.Rejected,
		Refreshes:   s.Refreshes,
		Quarantined: s.Quarantined,
		Estimates:   make([]estimateJSON, 0, len(s.Estimates)),
	}
	for _, e := range s.Estimates {
		out.Estimates = append(out.Estimates, estimateJSON{
			X: e.Pos.X, Y: e.Pos.Y, StrengthUCi: e.Strength, Mass: e.Mass,
		})
	}
	for _, t := range s.Tracks {
		out.Tracks = append(out.Tracks, trackJSON{
			ID: t.ID, X: t.Pos.X, Y: t.Pos.Y, StrengthUCi: t.Strength, Hits: t.Hits,
		})
	}
	return out
}

// servePipe consumes NDJSON measurements from r, emitting a snapshot
// line every reportEvery measurements and a final one at EOF or when
// ctx is cancelled (SIGINT/SIGTERM). Malformed lines are counted and
// skipped — field data is messy and one corrupt record must not kill
// the stream — as are unknown sensors and out-of-range readings.
func servePipe(ctx context.Context, engine *fusion.Engine, r io.Reader, w io.Writer, reportEvery int) error {
	lines := make(chan []byte)
	scanErr := make(chan error, 1)
	go func() {
		defer close(lines)
		scanner := bufio.NewScanner(r)
		scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for scanner.Scan() {
			// Copy: the scanner reuses its buffer across Scan calls.
			line := append([]byte(nil), scanner.Bytes()...)
			select {
			case lines <- line:
			case <-ctx.Done():
				scanErr <- nil
				return
			}
		}
		scanErr <- scanner.Err()
	}()

	enc := json.NewEncoder(w)
	count := 0
	var malformed uint64
	flush := func() error {
		s := snapshotToJSON(engine.Snapshot())
		s.Malformed = malformed
		return enc.Encode(s)
	}
	final := func() error {
		engine.Refresh()
		return flush()
	}
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: emit the final source picture and exit
			// cleanly.
			return final()
		case line, ok := <-lines:
			if !ok {
				if err := <-scanErr; err != nil {
					return err
				}
				return final()
			}
			if len(line) == 0 {
				continue
			}
			var m measurementJSON
			if err := json.Unmarshal(line, &m); err != nil {
				malformed++
				continue
			}
			// Unknown sensors, out-of-range CPM and quarantined readings
			// are counted by the engine but do not kill the stream.
			_, _ = engine.Ingest(m.SensorID, m.CPM)
			count++
			if count%reportEvery == 0 {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
}

// newMux builds the HTTP API.
func newMux(engine *fusion.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	// Liveness: the process is up and serving.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok: %d sensors registered\n", engine.Sensors())
	})
	// Readiness: the engine has recomputed estimates at least once, so
	// /snapshot serves a meaningful source picture. Distinct from
	// liveness so orchestrators don't route traffic to a fusion center
	// that has not yet seen a full sensor round.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s := engine.Snapshot()
		if s.Refreshes == 0 {
			http.Error(w, fmt.Sprintf("not ready: %d measurements ingested, no estimate refresh yet", s.Ingested),
				http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ready: %d refreshes over %d measurements\n", s.Refreshes, s.Ingested)
	})
	mux.HandleFunc("/sensors", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(healthToJSON(engine.Snapshot().Health))
	})
	started := time.Now()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		s := engine.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"uptimeSeconds": time.Since(started).Seconds(),
			"sensors":       engine.Sensors(),
			"ingested":      s.Ingested,
			"rejected":      s.Rejected,
			"refreshes":     s.Refreshes,
			"quarantined":   s.Quarantined,
			"estimates":     len(s.Estimates),
			"tracks":        len(s.Tracks),
		})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snapshotToJSON(engine.Snapshot()))
	})
	mux.HandleFunc("/measurements", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<22))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var batch []measurementJSON
		if err := json.Unmarshal(body, &batch); err != nil {
			var one measurementJSON
			if err := json.Unmarshal(body, &one); err != nil {
				http.Error(w, "want a measurement object or array", http.StatusBadRequest)
				return
			}
			batch = []measurementJSON{one}
		}
		accepted := 0
		for _, m := range batch {
			if _, err := engine.Ingest(m.SensorID, m.CPM); err == nil {
				accepted++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{
			"accepted": accepted,
			"rejected": len(batch) - accepted,
		})
	})
	return mux
}

// serveHTTP serves the API on addr until ctx is cancelled
// (SIGINT/SIGTERM), then shuts down gracefully — in-flight requests
// drain — and flushes a final snapshot line to logw.
func serveHTTP(ctx context.Context, addr string, engine *fusion.Engine, logw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "radlocd: serving on http://%s (POST /measurements, GET /snapshot /sensors /healthz /readyz)\n", ln.Addr())
	srv := &http.Server{
		Handler:           newMux(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		_ = srv.Close()
	}
	engine.Refresh()
	fmt.Fprintln(logw, "radlocd: shutting down, final snapshot:")
	return json.NewEncoder(logw).Encode(snapshotToJSON(engine.Snapshot()))
}
