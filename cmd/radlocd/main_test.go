package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"radloc/internal/config"
	"radloc/internal/rng"
	"radloc/internal/scenario"
)

// writeDeployment saves Scenario A (50 µCi) as a config file and
// returns its path plus the scenario.
func writeDeployment(t *testing.T) (string, scenario.Scenario) {
	t.Helper()
	sc := scenario.A(50, false)
	data, err := config.SaveScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "deploy.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, sc
}

// measurementsNDJSON renders `steps` rounds of readings.
func measurementsNDJSON(t *testing.T, sc scenario.Scenario, steps int) string {
	t.Helper()
	stream := rng.NewNamed(9, "radlocd-test/measure")
	var b strings.Builder
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			fmt.Fprintf(&b, `{"sensorId":%d,"cpm":%d}`+"\n", sen.ID, m.CPM)
		}
	}
	return b.String()
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, strings.NewReader(""), &out); err == nil {
		t.Error("missing -config accepted")
	}
	if err := run(context.Background(), []string{"-config", "/nope.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("unreadable config accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-config", bad}, strings.NewReader(""), &out); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPipeModeEndToEnd(t *testing.T) {
	path, sc := writeDeployment(t)
	input := measurementsNDJSON(t, sc, 6)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-config", path, "-seed", "2"}, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// One snapshot per sensor round plus the final flush.
	if len(lines) != 7 {
		t.Fatalf("snapshot lines = %d, want 7", len(lines))
	}
	var last snapshotJSON
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Ingested != uint64(6*len(sc.Sensors)) {
		t.Errorf("ingested = %d", last.Ingested)
	}
	if len(last.Estimates) == 0 {
		t.Fatal("no estimates in final snapshot")
	}
	found := 0
	for _, src := range sc.Sources {
		for _, e := range last.Estimates {
			dx, dy := e.X-src.Pos.X, e.Y-src.Pos.Y
			if dx*dx+dy*dy < 100 {
				found++
				break
			}
		}
	}
	if found != 2 {
		t.Errorf("daemon found %d/2 sources: %+v", found, last.Estimates)
	}
	if len(last.Tracks) < 2 {
		t.Errorf("confirmed tracks = %d, want ≥ 2", len(last.Tracks))
	}
}

// TestPipeModeSurvivesMessyStream: malformed lines, unknown sensors
// and out-of-range CPM are counted and skipped — field data is messy
// and one corrupt record must not kill the stream.
func TestPipeModeSurvivesMessyStream(t *testing.T) {
	path, sc := writeDeployment(t)
	input := "not json\n" +
		`{"sensorId":9999,"cpm":5}` + "\n" + // unknown sensor
		`{"sensorId":0,"cpm":-3}` + "\n" + // negative CPM
		`{"sensorId":0,"cpm":999999999}` + "\n" + // above the physical ceiling
		measurementsNDJSON(t, sc, 1)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-config", path}, strings.NewReader(input), &out); err != nil {
		t.Fatalf("messy stream killed the daemon: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	var last snapshotJSON
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Malformed != 1 {
		t.Errorf("malformed = %d, want 1", last.Malformed)
	}
	if last.Rejected != 3 {
		t.Errorf("rejected = %d, want 3 (unknown sensor + negative + absurd CPM)", last.Rejected)
	}
	if last.Ingested != uint64(len(sc.Sensors)) {
		t.Errorf("ingested = %d, want %d", last.Ingested, len(sc.Sensors))
	}
}

// lockedBuffer is a bytes.Buffer safe to poll while the daemon
// goroutine writes to it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Len()
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestPipeModeGracefulShutdown: cancelling the context (what SIGTERM
// does via signal.NotifyContext in main) while stdin is still open
// must flush a final snapshot and exit cleanly.
func TestPipeModeGracefulShutdown(t *testing.T) {
	path, sc := writeDeployment(t)
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	out := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-config", path}, pr, out)
	}()
	// Feed two clean rounds, then "send SIGTERM" with the pipe held open.
	if _, err := io.WriteString(pw, measurementsNDJSON(t, sc, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for out.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown not clean: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit after context cancellation")
	}
	pw.Close()
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	var last snapshotJSON
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("no final snapshot after shutdown: %v", err)
	}
	if last.Ingested == 0 {
		t.Error("final snapshot empty")
	}
}

func TestPipeModeSkipsUnknownSensors(t *testing.T) {
	path, sc := writeDeployment(t)
	input := `{"sensorId":9999,"cpm":5}` + "\n" + measurementsNDJSON(t, sc, 1)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-config", path}, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	var last snapshotJSON
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", last.Rejected)
	}
}
