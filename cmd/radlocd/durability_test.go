package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"radloc/internal/fusion"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/wal"
)

// seqMeasurementsNDJSON renders `steps` rounds of sequence-stamped
// readings (the full wire form: step + seq).
func seqMeasurementsNDJSON(t *testing.T, sc scenario.Scenario, steps int) []string {
	t.Helper()
	stream := rng.NewNamed(9, "radlocd-test/measure")
	var lines []string
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			lines = append(lines, fmt.Sprintf(`{"sensorId":%d,"cpm":%d,"step":%d,"seq":%d}`, sen.ID, m.CPM, step, step+1))
		}
	}
	return lines
}

// buildDaemon compiles the radlocd binary for exec-level crash tests.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "radlocd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build radlocd: %v\n%s", err, out)
	}
	return bin
}

func lastSnapshotLine(t *testing.T, output string) snapshotJSON {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(output), "\n")
	var snap snapshotJSON
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &snap); err != nil {
		t.Fatalf("last output line is not a snapshot: %v\n%s", err, output)
	}
	return snap
}

// filterState strips the delivery bookkeeping from a snapshot, leaving
// the fields that must be invariant under crash/redelivery/reordering.
func filterState(s snapshotJSON) snapshotJSON {
	s.Delivery = nil
	s.Journaled = 0
	s.Malformed = 0
	s.Shed = 0
	return s
}

// TestKillAndRecover is the headline durability criterion: SIGKILL the
// daemon mid-stream, restart it on the same WAL directory with
// at-least-once redelivery of the whole stream, and the final snapshot
// — estimates, ingested/rejected counters, tracks — must be identical
// to a never-interrupted run.
func TestKillAndRecover(t *testing.T) {
	bin := buildDaemon(t)
	deploy, sc := writeDeployment(t)
	lines := seqMeasurementsNDJSON(t, sc, 10)
	stream := strings.Join(lines, "\n") + "\n"
	args := func(dir string) []string {
		return []string{"-config", deploy, "-seed", "2", "-wal-dir", dir,
			"-fsync", "always", "-checkpoint-every", "100"}
	}

	// Reference: one uninterrupted run.
	refDir := filepath.Join(t.TempDir(), "wal-ref")
	ref := exec.Command(bin, args(refDir)...)
	ref.Stdin = strings.NewReader(stream)
	refOut, err := ref.Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := lastSnapshotLine(t, string(refOut))
	if want.Ingested != uint64(10*len(sc.Sensors)) {
		t.Fatalf("reference ingested %d", want.Ingested)
	}

	// Crash run: feed half the stream, SIGKILL once it has made
	// progress, leaving the WAL mid-round with no clean shutdown.
	crashDir := filepath.Join(t.TempDir(), "wal-crash")
	crash := exec.Command(bin, args(crashDir)...)
	stdin, err := crash.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var crashOut lockedBuffer
	crash.Stdout = &crashOut
	if err := crash.Start(); err != nil {
		t.Fatal(err)
	}
	// Feed 7 of 10 rounds: with the default reorder window (4) the
	// daemon journals rounds 1–3 and checkpoints past 100 records, so
	// the restart exercises checkpoint import AND WAL replay AND
	// redelivery dedup at once.
	part := 7 * len(sc.Sensors)
	if _, err := io.WriteString(stdin, strings.Join(lines[:part], "\n")+"\n"); err != nil {
		t.Fatal(err)
	}
	// Wait until it has visibly chewed through most of that (one
	// snapshot line per sensor round), then pull the plug.
	deadline := time.Now().Add(20 * time.Second)
	for strings.Count(crashOut.String(), "\n") < 5 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if crashOut.Len() == 0 {
		t.Fatal("daemon produced no snapshot before the kill window")
	}
	if err := crash.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	_ = crash.Wait()
	stdin.Close()

	// Recovery run: same WAL dir, the WHOLE stream redelivered
	// (at-least-once transport semantics) — dedup cursors shed what
	// recovery already has.
	rec := exec.Command(bin, args(crashDir)...)
	rec.Stdin = strings.NewReader(stream)
	var recErr bytes.Buffer
	rec.Stderr = &recErr
	recOut, err := rec.Output()
	if err != nil {
		t.Fatalf("recovery run: %v\n%s", err, recErr.String())
	}
	if !strings.Contains(recErr.String(), "durability on") {
		t.Errorf("no recovery report on stderr:\n%s", recErr.String())
	}
	got := lastSnapshotLine(t, string(recOut))
	if got.Delivery == nil || got.Delivery.Duplicates == 0 {
		t.Errorf("redelivery produced no duplicate suppression: %+v", got.Delivery)
	}
	if !reflect.DeepEqual(filterState(got), filterState(want)) {
		t.Fatalf("crash+recover+redeliver diverged from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestPipeDupReorderEquivalence runs the daemon end to end on a
// duplicated, shuffled-within-window delivery of a sequenced stream
// and demands the exact final snapshot of the clean in-order run.
func TestPipeDupReorderEquivalence(t *testing.T) {
	deploy, sc := writeDeployment(t)
	lines := seqMeasurementsNDJSON(t, sc, 6)

	var cleanOut bytes.Buffer
	if err := run(context.Background(), []string{"-config", deploy, "-seed", "2"},
		strings.NewReader(strings.Join(lines, "\n")+"\n"), &cleanOut); err != nil {
		t.Fatal(err)
	}
	want := lastSnapshotLine(t, cleanOut.String())

	doubled := make([]string, 0, 2*len(lines))
	for _, ln := range lines {
		doubled = append(doubled, ln, ln)
	}
	shuffle := rng.NewNamed(21, "radlocd-test/shuffle")
	const span = 12
	for i := range doubled {
		j := i + shuffle.IntN(span)
		if j >= len(doubled) {
			j = len(doubled) - 1
		}
		doubled[i], doubled[j] = doubled[j], doubled[i]
	}
	var messyOut bytes.Buffer
	if err := run(context.Background(), []string{"-config", deploy, "-seed", "2"},
		strings.NewReader(strings.Join(doubled, "\n")+"\n"), &messyOut); err != nil {
		t.Fatal(err)
	}
	got := lastSnapshotLine(t, messyOut.String())
	if got.Delivery == nil || got.Delivery.Duplicates != uint64(len(lines)) {
		t.Errorf("duplicate counter: %+v", got.Delivery)
	}
	if !reflect.DeepEqual(filterState(got), filterState(want)) {
		t.Fatalf("duplicated+shuffled delivery diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestConcurrentIngestShutdownDurability hammers the HTTP ingest from
// several goroutines, shuts down mid-flight (what SIGTERM does via
// signal.NotifyContext), and verifies the WAL and the final checkpoint
// agree with each other and with every acknowledged reading. Run under
// -race this also exercises the engine/journal/checkpointer locking.
func TestConcurrentIngestShutdownDurability(t *testing.T) {
	deploy, sc := writeDeployment(t)
	dir := filepath.Join(t.TempDir(), "wal")
	ctx, cancel := context.WithCancel(context.Background())
	out := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-config", deploy, "-listen", "127.0.0.1:0",
			"-wal-dir", dir, "-fsync", "batch", "-checkpoint-every", "40"},
			strings.NewReader(""), out)
	}()
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" && time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "http://") {
			s = s[strings.Index(s, "http://"):]
			url = strings.Fields(s)[0]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if url == "" {
		t.Fatalf("daemon never announced its address:\n%s", out.String())
	}

	const workers, rounds = 4, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := rng.NewNamed(uint64(100+w), "sigterm-test/measure")
			for step := 0; step < rounds; step++ {
				var batch []measurementJSON
				for _, sen := range sc.Sensors {
					if sen.ID%workers != w {
						continue
					}
					m := sen.Measure(stream, sc.Sources, nil, step)
					batch = append(batch, measurementJSON{SensorID: sen.ID, CPM: m.CPM, Step: step, Seq: uint64(step + 1)})
				}
				body, _ := json.Marshal(batch)
				resp, err := http.Post(url+"/measurements", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server shutting down under us is fine
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	cancel() // SIGTERM path: graceful drain, gate flush, final checkpoint
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown not clean: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit")
	}

	// The disk must be self-consistent: checkpoint present, aligned
	// with the WAL end, and the WAL replays without error.
	l, stats, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if stats.TruncatedRecords != 0 {
		t.Errorf("graceful shutdown left a torn tail: %+v", stats)
	}
	ck, ok, err := wal.LoadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("no final checkpoint: ok=%v err=%v", ok, err)
	}
	if ck.Applied != l.Offset() {
		t.Errorf("final checkpoint applied=%d, WAL offset=%d", ck.Applied, l.Offset())
	}
	var st fusion.EngineState
	if err := json.Unmarshal(ck.State, &st); err != nil {
		t.Fatalf("final checkpoint state unreadable: %v", err)
	}
	if st.Ingested == 0 || st.Journaled != ck.Applied {
		t.Errorf("checkpoint state inconsistent: ingested=%d journaled=%d applied=%d", st.Ingested, st.Journaled, ck.Applied)
	}
}

func TestRunRejectsBadFsyncPolicy(t *testing.T) {
	deploy, _ := writeDeployment(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-config", deploy, "-wal-dir", t.TempDir(), "-fsync", "sometimes"},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("bad fsync policy accepted: %v", err)
	}
}
