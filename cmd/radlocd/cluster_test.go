package main

// Cluster failover integration tests: two full daemon stacks (zone
// manager, per-zone WAL, fusion engines, /cluster endpoints, write
// fencing) wired over an in-process network. The headline criterion
// mirrors the single-node durability one: kill the primary without
// any shutdown flush, promote the standby, redeliver the stream
// at-least-once, and the promoted node's state must be bit-identical
// to a never-clustered, never-interrupted run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/transport"
	"radloc/internal/wal"
)

// clusterFabric maps in-process hosts to their daemon muxes.
type clusterFabric struct {
	mu    sync.Mutex
	hosts map[string]http.Handler
}

func newClusterFabric() *clusterFabric {
	return &clusterFabric{hosts: make(map[string]http.Handler)}
}

func (f *clusterFabric) add(host string, h http.Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hosts[host] = h
}

func (f *clusterFabric) handler(host string) http.Handler {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hosts[host]
}

// fabricLink is one participant's view of the network: its own cut
// set, so a replication path can be severed while client traffic to
// the same host keeps flowing (and vice versa).
type fabricLink struct {
	f    *clusterFabric
	mu   sync.Mutex
	down map[string]bool
}

func (f *clusterFabric) link() *fabricLink {
	return &fabricLink{f: f, down: make(map[string]bool)}
}

func (l *fabricLink) cut(host string, v bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down[host] = v
}

func (l *fabricLink) RoundTrip(req *http.Request) (*http.Response, error) {
	l.mu.Lock()
	down := l.down[req.URL.Host]
	l.mu.Unlock()
	h := l.f.handler(req.URL.Host)
	if h == nil || down {
		return nil, fmt.Errorf("fabric: host %q unreachable", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// clusterTestNode is one daemon's full stack. node is nil for the
// standalone (non-clustered) reference deployment.
type clusterTestNode struct {
	zs   *zoneSet
	node *cluster.Node
	mux  *http.ServeMux
	reg  *obs.Registry
	link *fabricLink
}

// clusterTestBuild is the engine constructor every cluster-test node
// shares — identical engines (same scenario, same seed) make state
// comparisons across nodes meaningful, and a crash-restart over a
// node's directory must use the same shape or checkpoints will not
// import.
func clusterTestBuild() func(fusion.Journal, *obs.Registry) (*fusion.Engine, error) {
	sc := scenario.A(50, false)
	return func(j fusion.Journal, met *obs.Registry) (*fusion.Engine, error) {
		fcfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors, Journal: j, Metrics: met}
		fcfg.Localizer.Seed = 3
		// A one-round reorder window keeps the WAL advancing as each
		// round lands, so replication lag and retention are exercised
		// with a 6-round stream (the default window of 4 would hold
		// most of it in the gate, journaling almost nothing).
		fcfg.ReorderWindow = 1
		return fusion.NewEngine(fcfg)
	}
}

// newClusterTestNode assembles the stack exactly as run() does:
// durable zone set, recovery, cluster node on the zone-set backend,
// fenced mux. Every node builds identical engines (same scenario,
// same seed), so state comparisons across nodes are meaningful.
func newClusterTestNode(t *testing.T, fab *clusterFabric, host string, routes *cluster.Routes) *clusterTestNode {
	t.Helper()
	return newClusterTestNodeAt(t, fab, host, routes, t.TempDir(), nil)
}

// newClusterTestNodeAt is newClusterTestNode with the WAL root and
// route store exposed, so a killed node can be resurrected over its
// own surviving state — the divergence-repair scenario.
func newClusterTestNodeAt(t *testing.T, fab *clusterFabric, host string, routes *cluster.Routes, walRoot string, rstore cluster.RouteStore) *clusterTestNode {
	t.Helper()
	reg := obs.NewRegistry()
	build := clusterTestBuild()
	zs, err := newZoneSet(zoneSetOptions{
		WalRoot: walRoot, Fsync: wal.FsyncNever, CkptEvery: 50, SegmentRecords: 16,
		MaxZones: 8, Mailbox: 64, Metrics: reg, Log: io.Discard, Build: build,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = zs.close() })
	if err := zs.recoverZones(); err != nil {
		t.Fatal(err)
	}

	n := &clusterTestNode{zs: zs, reg: reg, link: fab.link()}
	if routes != nil {
		n.node, err = cluster.NewNode(cluster.Options{
			Self:         "http://" + host,
			Resolver:     zs.clusterBackend,
			Epochs:       &fileEpochStore{zs: zs},
			RouteStore:   rstore,
			HTTP:         n.link,
			PullInterval: time.Millisecond,
			Drop:         zs.manager.Drop,
			Metrics:      reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.node.Close)
		// Same late wiring as run(): the scrubber's repair-from-replica
		// path reaches the cluster through the zone set.
		zs.clusterNode = n.node
		if err := n.node.SetRoutes(*routes); err != nil {
			t.Fatal(err)
		}
	}
	def := zs.defaultZone()
	n.mux = newMux(serveConfig{
		Engine: def.Engine(), Durable: zoneDurable(def), Zones: zs,
		Ingest:  newZonedIngest(zs.manager, httpingest.Options{QueueDepth: 256, Metrics: reg}),
		Metrics: reg, Cluster: n.node,
		Ready: func() bool { return n.node == nil || n.node.Ready() },
	})
	fab.add(host, n.mux)
	return n
}

// backend resolves the node's default-zone cluster backend.
func (n *clusterTestNode) backend(t *testing.T, zone string) cluster.Backend {
	t.Helper()
	b, err := n.zs.clusterBackend(zone)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// status fetches one zone's replication status row.
func (n *clusterTestNode) status(zone string) (cluster.ZoneStatus, bool) {
	for _, st := range n.node.Status() {
		if st.Zone == zone {
			return st, true
		}
	}
	return cluster.ZoneStatus{}, false
}

// newClusterClient builds a delivery agent aimed at url over its own
// fabric link, with redirect following live.
func newClusterClient(t *testing.T, fab *clusterFabric, url, name, zone string) *transport.Client {
	t.Helper()
	c, err := transport.NewClient(transport.Options{
		URL: url, Zone: zone, HTTP: fab.link(), Clock: clock.Real{},
		RNG:     rng.NewNamed(7, "cluster-test/"+name),
		Backoff: transport.Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond},
		Breaker: transport.BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sendRounds delivers readings one sensor-round per request.
func sendRounds(t *testing.T, c *transport.Client, readings []transport.Reading, perRound int) {
	t.Helper()
	for i := 0; i < len(readings); i += perRound {
		end := i + perRound
		if end > len(readings) {
			end = len(readings)
		}
		if err := c.Send(context.Background(), readings[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// normalizedState releases the engine's reorder-gate tail, refreshes,
// and renders the snapshot and health with the delivery counters
// zeroed — the bit-identical comparison form the chaos tests use.
func normalizedState(t *testing.T, eng *fusion.Engine) ([]byte, []byte) {
	t.Helper()
	if _, err := eng.FlushPending(); err != nil {
		t.Fatal(err)
	}
	eng.Refresh()
	s := eng.Snapshot()
	s.Delivery = fusion.DeliveryStats{}
	snap, err := json.Marshal(snapshotToJSON(s))
	if err != nil {
		t.Fatal(err)
	}
	health, err := json.Marshal(healthToJSON(s.Health))
	if err != nil {
		t.Fatal(err)
	}
	return snap, health
}

// httpStatus issues one request against a mux and returns the code.
func httpStatus(mux *http.ServeMux, method, url, body string) (*httptest.ResponseRecorder, int) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, url, rd)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec, rec.Code
}

// TestClusterFailoverBitIdentical is the headline cluster criterion:
// half the stream lands on the primary, the primary is killed with no
// shutdown flush of any kind, the standby is promoted, and the whole
// stream is redelivered to it at-least-once. The promoted node must
// end bit-identical to a standalone daemon that consumed the stream
// uninterrupted — replication plus the dedup gate lose nothing and
// double-apply nothing across a failover.
func TestClusterFailoverBitIdentical(t *testing.T) {
	fab := newClusterFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes)
	clean := newClusterTestNode(t, fab, "c", nil)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	half := (len(readings) / (2 * sensors)) * sensors // whole-round boundary

	// Reference: the same stream, one node, no interruptions.
	sendRounds(t, newClusterClient(t, fab, "http://c", "clean", ""), readings, sensors)
	wantSnap, wantHealth := normalizedState(t, clean.zs.defaultZone().Engine())

	// Primary takes the first half; the standby replicates it.
	sendRounds(t, newClusterClient(t, fab, "http://a", "pre-kill", ""), readings[:half], sensors)
	aBack := a.backend(t, "default")
	waitUntil(t, "standby catch-up before the kill", func() bool {
		st, ok := b.status("default")
		return ok && st.CaughtUp && b.backend(t, "default").Offset() == aBack.Offset()
	})

	// Kill the primary: sever it and abandon its zone set — no final
	// checkpoint, no gate flush, no WAL sync. Observationally SIGKILL.
	b.link.cut("a", true)

	epoch, err := b.node.Promote("default")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promote epoch = %d, want 2", epoch)
	}
	if _, code := httpStatus(b.mux, http.MethodGet, "http://b/readyz", ""); code != http.StatusOK {
		t.Fatalf("promoted node /readyz = %d, want 200", code)
	}

	// At-least-once redelivery of the whole stream to the new primary:
	// the sequence gate absorbs everything replication already applied.
	sendRounds(t, newClusterClient(t, fab, "http://b", "post-kill", ""), readings, sensors)

	gotSnap, gotHealth := normalizedState(t, b.zs.defaultZone().Engine())
	if !bytes.Equal(wantSnap, gotSnap) {
		t.Errorf("promoted standby diverged from clean run:\nclean:    %s\npromoted: %s", wantSnap, gotSnap)
	}
	if !bytes.Equal(wantHealth, gotHealth) {
		t.Errorf("promoted standby health diverged:\nclean:    %s\npromoted: %s", wantHealth, gotHealth)
	}

	// The dead primary stays fenced: a pull carrying the new epoch gets
	// 409 and forces it to step down, even if it limps back.
	b.link.cut("a", false)
	rec, code := httpStatus(a.mux, http.MethodGet, "http://a/cluster/wal/default?from=0&epoch=2", "")
	if code != http.StatusConflict {
		t.Fatalf("stale primary served a newer-epoch pull: HTTP %d: %s", code, rec.Body.String())
	}
	if _, code := httpStatus(a.mux, http.MethodPost, "http://a/measurements", `{"sensorId":0,"cpm":12}`); code != http.StatusServiceUnavailable {
		t.Fatalf("fenced old primary accepted a write: HTTP %d", code)
	}
}

// TestClusterStandbyRedirectsWrites drives a full loop through the
// routing layer: an agent aimed at the standby is 307'd to the
// primary, follows the redirect through its normal retry machinery,
// and the applied records replicate back to the very standby that
// bounced them.
func TestClusterStandbyRedirectsWrites(t *testing.T) {
	fab := newClusterFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes)

	// Raw request: the standby answers 307 with the primary's URL.
	rec, code := httpStatus(b.mux, http.MethodPost, "http://b/measurements", `[{"sensorId":0,"cpm":12,"step":0,"seq":1}]`)
	if code != http.StatusTemporaryRedirect {
		t.Fatalf("standby write = HTTP %d, want 307", code)
	}
	if loc := rec.Header().Get("Location"); loc != "http://a/measurements" {
		t.Fatalf("redirect Location = %q", loc)
	}

	// Agent aimed at the standby: delivery succeeds via the redirect.
	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	c := newClusterClient(t, fab, "http://b", "redirected", "")
	sendRounds(t, c, readings, sensors)
	st := c.Stats()
	if st.Redirects != 1 || st.Delivered != uint64(len(readings)) {
		t.Fatalf("client stats = %+v, want 1 redirect and full delivery", st)
	}

	aBack := a.backend(t, "default")
	if aBack.Offset() == 0 {
		t.Fatal("primary journaled nothing")
	}
	waitUntil(t, "replication back to the standby", func() bool {
		return b.backend(t, "default").Offset() == aBack.Offset()
	})
}

// scrapeGauge pulls one labeled gauge value off a node's /metrics.
func scrapeGauge(t *testing.T, mux *http.ServeMux, name string) (float64, bool) {
	t.Helper()
	rec, code := httpStatus(mux, http.MethodGet, "http://x/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics = HTTP %d", code)
	}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("unparseable metric line %q", line)
			}
			return v, true
		}
	}
	return 0, false
}

// TestClusterPartitionedStandbyDegrades pins the graceful-degradation
// contract: a partitioned standby keeps serving reads, reports itself
// unready and lagging (gauge and status), refuses writes (no split
// brain), and catches up cleanly after the heal — while the primary
// keeps accepting writes throughout.
func TestClusterPartitionedStandbyDegrades(t *testing.T) {
	fab := newClusterFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	agent := newClusterClient(t, fab, "http://a", "partition", "")
	sendRounds(t, agent, readings[:2*sensors], sensors)
	aBack := a.backend(t, "default")
	waitUntil(t, "initial catch-up", func() bool {
		return aBack.Offset() > 0 && b.backend(t, "default").Offset() == aBack.Offset()
	})
	waitUntil(t, "initial readiness", func() bool {
		_, code := httpStatus(b.mux, http.MethodGet, "http://b/readyz", "")
		return code == http.StatusOK
	})

	// Partition the standby's replication path only.
	offBefore := aBack.Offset()
	b.link.cut("a", true)
	waitUntil(t, "standby to notice the partition", func() bool {
		st, ok := b.status("default")
		return ok && !st.CaughtUp && st.LastError != ""
	})

	// Writes keep flowing to the primary through the partition.
	sendRounds(t, agent, readings[2*sensors:4*sensors], sensors)
	if got := aBack.Offset(); got <= offBefore {
		t.Fatalf("primary stopped journaling under partition (offset %d, was %d)", got, offBefore)
	}
	// The standby degrades honestly: unready, lag gauge climbing,
	// reads still served, writes still refused.
	if _, code := httpStatus(b.mux, http.MethodGet, "http://b/readyz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("partitioned standby /readyz = %d, want 503", code)
	}
	waitUntil(t, "lag gauge to rise", func() bool {
		v, ok := scrapeGauge(t, b.mux, "radloc_repl_lag_seconds")
		return ok && v > 0
	})
	if _, code := httpStatus(b.mux, http.MethodGet, "http://b/snapshot", ""); code != http.StatusOK {
		t.Fatalf("partitioned standby stopped serving reads")
	}
	if _, code := httpStatus(b.mux, http.MethodPost, "http://b/measurements", `[{"sensorId":1,"cpm":14}]`); code != http.StatusTemporaryRedirect {
		t.Fatalf("partitioned standby write = %d, want 307 (split brain guard)", code)
	}

	// Heal: the standby drains the backlog and is ready again.
	b.link.cut("a", false)
	waitUntil(t, "catch-up after heal", func() bool {
		st, ok := b.status("default")
		return ok && st.CaughtUp && b.backend(t, "default").Offset() == aBack.Offset()
	})
	waitUntil(t, "readiness after heal", func() bool {
		_, code := httpStatus(b.mux, http.MethodGet, "http://b/readyz", "")
		return code == http.StatusOK
	})
}

// TestClusterLiveMigration walks the migrate sequence the ctl command
// drives — replicate, catch up, drain, promote, release — for a named
// zone, with the source node alive throughout.
func TestClusterLiveMigration(t *testing.T) {
	fab := newClusterFabric()
	empty := cluster.Routes{}
	a := newClusterTestNode(t, fab, "a", &empty)
	b := newClusterTestNode(t, fab, "b", &empty)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	agent := newClusterClient(t, fab, "http://a", "migrate", "west")
	sendRounds(t, agent, readings[:3*sensors], sensors)
	aBack := a.backend(t, "west")
	if aBack.Offset() == 0 {
		t.Fatal("source journaled nothing")
	}

	// Step 1: target warms up against the live owner.
	if err := b.node.Replicate("west", "http://a"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "migration target catch-up", func() bool {
		st, ok := b.status("west")
		return ok && st.CaughtUp && b.backend(t, "west").Offset() == aBack.Offset()
	})

	// Step 2: drain the source; writes bounce with Retry-After so the
	// agent's retry machinery holds them instead of losing them.
	if err := a.node.SetDraining("west", true); err != nil {
		t.Fatal(err)
	}
	rec, code := httpStatus(a.mux, http.MethodPost, "http://a/zones/west/measurements", `[{"sensorId":2,"cpm":13}]`)
	if code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("draining write = HTTP %d (Retry-After %q), want 503 with hint", code, rec.Header().Get("Retry-After"))
	}
	head := aBack.Offset()
	waitUntil(t, "final records to reach the target", func() bool {
		return b.backend(t, "west").Offset() >= head
	})

	// Step 3: cut over.
	if _, err := b.node.Promote("west"); err != nil {
		t.Fatal(err)
	}
	if err := a.node.Release("west", "http://b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.zs.manager.Lookup("west"); ok {
		t.Fatal("released zone still live on the source")
	}

	// The source now redirects the zone's writes to the new owner, and
	// the agent follows without losing a reading.
	rec, code = httpStatus(a.mux, http.MethodPost, "http://a/zones/west/measurements", `[{"sensorId":2,"cpm":13,"step":3,"seq":4}]`)
	if code != http.StatusTemporaryRedirect || rec.Header().Get("Location") != "http://b/zones/west/measurements" {
		t.Fatalf("post-release write = HTTP %d Location %q", code, rec.Header().Get("Location"))
	}
	before := b.backend(t, "west").Offset()
	sendRounds(t, agent, readings[3*sensors:], sensors)
	if st := agent.Stats(); st.Redirects == 0 {
		t.Fatalf("agent never followed the migration redirect: %+v", st)
	}
	if got := b.backend(t, "west").Offset(); got <= before {
		t.Fatalf("new owner journaled nothing after cutover (offset %d)", got)
	}
}
