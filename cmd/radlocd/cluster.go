package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/wal"
	"radloc/internal/zone"
)

// zoneBackend implements cluster.Backend over one zone's engine and
// durability plumbing. Each cluster operation resolves a fresh
// backend through clusterBackend, so an evicted-and-recreated zone is
// always addressed through its live incarnation.
type zoneBackend struct {
	zs *zoneSet
	z  *zone.Zone
}

// clusterBackend is the cluster.BackendResolver: it routes through
// the zone manager, so a replication target instantiates (and
// recovers from its own WAL) exactly like a write target would.
func (zs *zoneSet) clusterBackend(name string) (cluster.Backend, error) {
	z, err := zs.manager.Get(name)
	if err != nil {
		return nil, err
	}
	return &zoneBackend{zs: zs, z: z}, nil
}

// Offset implements cluster.Backend: the WAL head when durability is
// on, the engine's journal counter otherwise (they advance in
// lockstep; without a log the counter is all there is).
func (b *zoneBackend) Offset() uint64 {
	if d := zoneDurable(b.z); d != nil {
		d.j.mu.Lock()
		defer d.j.mu.Unlock()
		return d.j.log.Offset()
	}
	return b.z.Engine().Snapshot().Journaled
}

// Oldest implements cluster.Backend. Without a log nothing historical
// is servable, so Oldest equals the head and any lagging replica is
// pushed onto the snapshot-bootstrap path.
func (b *zoneBackend) Oldest() uint64 {
	if d := zoneDurable(b.z); d != nil {
		d.j.mu.Lock()
		defer d.j.mu.Unlock()
		return d.j.log.Oldest()
	}
	return b.z.Engine().Snapshot().Journaled
}

// errStopRead is the sentinel ReadWAL uses to stop Replay at max
// records; it never escapes.
var errStopRead = fmt.Errorf("stop")

// ReadWAL implements cluster.Backend by streaming the zone's log.
func (b *zoneBackend) ReadWAL(from uint64, max int, fn func(off uint64, rec wal.Record) error) error {
	d := zoneDurable(b.z)
	if d == nil {
		if from >= b.Offset() {
			return nil
		}
		return cluster.ErrPruned
	}
	d.j.mu.Lock()
	defer d.j.mu.Unlock()
	if from < d.j.log.Oldest() {
		return cluster.ErrPruned
	}
	n := 0
	err := d.j.log.Replay(from, func(off uint64, rec wal.Record) error {
		if n >= max {
			return errStopRead
		}
		n++
		return fn(off, rec)
	})
	if err == errStopRead {
		return nil
	}
	return err
}

// SetRetainFloor implements cluster.Backend; a no-op without a log.
func (b *zoneBackend) SetRetainFloor(off uint64) {
	if d := zoneDurable(b.z); d != nil {
		d.j.mu.Lock()
		d.j.log.SetRetain(off)
		d.j.mu.Unlock()
	}
}

// ApplyRecords implements cluster.Backend: each replicated record is
// journaled (WAL order stays application order, same as the live
// write path) and then applied through the engine's replay entry —
// the exact code path boot recovery uses, which is what makes a
// caught-up standby bit-identical to its primary.
func (b *zoneBackend) ApplyRecords(recs []cluster.RecordAt) error {
	d := zoneDurable(b.z)
	eng := b.z.Engine()
	for _, ra := range recs {
		if cur := b.Offset(); ra.Off != cur {
			return fmt.Errorf("replication offset gap: got %d, local head %d", ra.Off, cur)
		}
		if d != nil {
			d.j.mu.Lock()
			_, err := d.j.log.Append(ra.Rec)
			d.j.mu.Unlock()
			if err != nil {
				return err
			}
		}
		eng.Replay(fusion.Meas{SensorID: ra.Rec.SensorID, CPM: ra.Rec.CPM, Step: ra.Rec.Step, Seq: ra.Rec.Seq})
	}
	if d != nil {
		d.maybeCheckpoint(b.zs.logw)
	}
	return nil
}

// ExportState implements cluster.Backend.
func (b *zoneBackend) ExportState() (json.RawMessage, uint64, error) {
	st, err := b.z.Engine().ExportState()
	if err != nil {
		return nil, 0, err
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return nil, 0, err
	}
	return blob, st.Journaled, nil
}

// Bootstrap implements cluster.Backend: import the shipped state,
// fast-forward the local log to the offset it covers, and checkpoint
// immediately so a crash right after recovers into the snapshot, not
// an empty zone.
func (b *zoneBackend) Bootstrap(state json.RawMessage, applied uint64) error {
	var st fusion.EngineState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("bootstrap state: %w", err)
	}
	eng := b.z.Engine()
	if err := eng.ImportState(st); err != nil {
		return err
	}
	d := zoneDurable(b.z)
	if d == nil {
		return nil
	}
	d.j.mu.Lock()
	err := d.j.log.AlignTo(applied)
	d.j.mu.Unlock()
	if err != nil {
		return err
	}
	return d.checkpoint()
}

// Checkpoint implements cluster.Backend; a no-op without durability.
func (b *zoneBackend) Checkpoint() error {
	if d := zoneDurable(b.z); d != nil {
		return d.checkpoint()
	}
	return nil
}

// epochFileName holds a zone's fencing epoch next to its WAL.
const epochFileName = "cluster-epoch.json"

// fileEpochStore persists per-zone fencing epochs in each zone's WAL
// directory, written atomically (tmp + rename) like checkpoints are.
// A node that was demoted and then restarts must not come back
// believing its old epoch.
type fileEpochStore struct {
	zs *zoneSet
}

// Load implements cluster.EpochStore; a missing file is epoch 0.
func (s *fileEpochStore) Load(zone string) (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(s.zs.zoneWalDir(zone), epochFileName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var v struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		// A torn epoch file must not block boot; treating it as epoch 0
		// is safe — the node rejoins humbly and adopts the cluster's
		// current epoch on first contact.
		fmt.Fprintf(s.zs.logw, "radlocd: ignoring corrupt %s for zone %q: %v\n", epochFileName, zone, err)
		return 0, nil
	}
	return v.Epoch, nil
}

// Save implements cluster.EpochStore.
func (s *fileEpochStore) Save(zone string, epoch uint64) error {
	dir := s.zs.zoneWalDir(zone)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blob, err := json.Marshal(struct {
		Epoch uint64 `json:"epoch"`
	}{epoch})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, epochFileName+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, epochFileName))
}
