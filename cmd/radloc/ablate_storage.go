package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sync"
	"syscall"
	"time"

	"radloc/internal/clock"
	"radloc/internal/eval"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/report"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/transport"
	"radloc/internal/vfs"
	"radloc/internal/wal"
)

// walSink journals every admitted reading into a WAL, the same
// write-ahead discipline radlocd's durable path uses — here on an
// injected faulty filesystem, so a failing append surfaces through
// fusion.JournalError as an HTTP 507 to the agent.
type walSink struct {
	mu  sync.Mutex
	log *wal.Log
}

// Append implements fusion.Journal.
func (s *walSink) Append(m fusion.Meas) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.log.Append(wal.Record{SensorID: m.SensorID, CPM: m.CPM, Step: m.Step, Seq: m.Seq})
	return err
}

// windowFaultRT opens and closes a disk-fault window on the server's
// filesystem keyed to virtual time: every request passing through
// first aligns the injector with the window, so a "30 s" outage is
// exact on the fake clock and costs microseconds of wall time.
type windowFaultRT struct {
	inner    http.RoundTripper
	clk      *clock.Fake
	faulty   *vfs.Faulty
	from, to time.Time
}

func (w *windowFaultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	now := w.clk.Now()
	if w.to.After(w.from) && !now.Before(w.from) && now.Before(w.to) {
		w.faulty.FailWrites(syscall.ENOSPC, false)
		w.faulty.FailSyncs(syscall.ENOSPC)
	} else {
		w.faulty.Heal()
	}
	return w.inner.RoundTrip(req)
}

// ablateStorage sweeps disk-fault conditions over Scenario A with the
// full durability pipeline engaged: agent spool → transport client →
// HTTP admission → fusion engine journaling into a WAL on a seeded
// faulty filesystem. An ENOSPC window turns every admission into a
// 507 + Retry-After, which the spooled agent rides out; flaky and
// torn writes fail individual appends, which the client retries and
// the sequence gate dedups. Each row then simulates a crash-restart:
// the WAL is reopened cold and replayed, and durable_frac compares
// what recovery finds against what the engine acknowledged — the
// no-acked-record-lost invariant. Every condition should hold
// delivered_frac and durable_frac at 1.0; the faults cost latency and
// 507 round-trips, never data.
func ablateStorage(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: storage faults (Scenario A; spooled agent vs faulty server disk; durable_frac = records surviving a crash-restart / records acknowledged)",
		"condition", "delivered_frac", "http_507", "faults_injected", "durable_frac", "mean_err")
	conds := []struct {
		name      string
		window    time.Duration
		writeProb float64
		torn      bool
	}{
		{"clean", 0, 0, false},
		{"enospc 10s", 10 * time.Second, 0, false},
		{"enospc 30s", 30 * time.Second, 0, false},
		{"flaky writes 5%", 0, 0.05, false},
		{"flaky+torn 5%", 0, 0.05, true},
	}
	for _, c := range conds {
		var fracSum, errSum, s507Sum, faultSum, durSum float64
		n := 0
		for rep := 0; rep < cf.reps; rep++ {
			res, err := runStorageTrial(c.window, c.writeProb, c.torn, cf.steps, cf.seed+uint64(rep))
			if err != nil {
				return err
			}
			fracSum += res.deliveredFrac
			s507Sum += float64(res.shed507)
			faultSum += float64(res.faults)
			durSum += res.durableFrac
			if !math.IsNaN(res.meanErr) {
				errSum += res.meanErr
				n++
			}
		}
		meanErr := math.NaN()
		if n > 0 {
			meanErr = errSum / float64(n)
		}
		reps := float64(cf.reps)
		if err := tb.AddRow(c.name, fracSum/reps, s507Sum/reps, faultSum/reps, durSum/reps, meanErr); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}

type storageTrialResult struct {
	deliveredFrac float64
	shed507       uint64
	faults        uint64
	durableFrac   float64
	meanErr       float64
}

// runStorageTrial delivers one sequenced Scenario A stream through a
// spooled transport client into a WAL-journaling ingest stack whose
// disk injects the given faults, then replays the WAL cold to score
// durability.
func runStorageTrial(window time.Duration, writeProb float64, torn bool, steps int, seed uint64) (storageTrialResult, error) {
	sc := scenario.A(50, false)
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))

	walDir, err := os.MkdirTemp("", "radloc-ablate-wal-*")
	if err != nil {
		return storageTrialResult{}, err
	}
	defer os.RemoveAll(walDir)
	fcfg := vfs.FaultConfig{Seed: seed, WriteErrProb: writeProb, WriteErr: syscall.EIO, Clock: clk}
	if torn {
		fcfg.TornWriteProb = writeProb
	}
	faulty := vfs.NewFaulty(nil, fcfg)
	log, _, err := wal.Open(walDir, wal.Options{FS: faulty})
	if err != nil {
		return storageTrialResult{}, err
	}
	sink := &walSink{log: log}

	ecfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors, Journal: sink}
	ecfg.Localizer.Seed = seed
	engine, err := fusion.NewEngine(ecfg)
	if err != nil {
		return storageTrialResult{}, err
	}
	ing := httpingest.New(engine, httpingest.Options{QueueDepth: 256, Clock: clk, RetryAfter: time.Second})

	// The window opens at t=0: the drain starts against a full disk,
	// backs off through 507 + Retry-After (each retry advances the fake
	// clock), and only once `window` of virtual time has passed does
	// the disk heal and the spool empty.
	start := clk.Now()
	rt := &windowFaultRT{
		inner: localRT{ing}, clk: clk, faulty: faulty,
		from: start, to: start.Add(window),
	}
	client, err := transport.NewClient(transport.Options{
		URL:       "http://fusion",
		HTTP:      rt,
		Clock:     clk,
		RNG:       rng.NewNamed(seed, "ablate/storage-jitter"),
		BatchSize: 12,
		Backoff:   transport.Backoff{Base: 100 * time.Millisecond, Cap: time.Second},
		Breaker:   transport.BreakerConfig{FailureThreshold: 4, Cooldown: 2 * time.Second},
	})
	if err != nil {
		return storageTrialResult{}, err
	}

	measure := rng.NewNamed(seed, "ablate/storage-measure")
	spoolDir, err := os.MkdirTemp("", "radloc-ablate-spool-*")
	if err != nil {
		return storageTrialResult{}, err
	}
	defer os.RemoveAll(spoolDir)
	sp, err := transport.OpenSpool(spoolDir, transport.SpoolOptions{})
	if err != nil {
		return storageTrialResult{}, err
	}
	defer sp.Close()
	total := 0
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(measure, sc.Sources, nil, step)
			if _, err := sp.Append(transport.Reading{
				SensorID: sen.ID, CPM: m.CPM, Step: step, Seq: uint64(step + 1),
			}); err != nil {
				return storageTrialResult{}, err
			}
			total++
		}
	}
	if _, err := client.Drain(context.Background(), sp); err != nil {
		return storageTrialResult{}, err
	}
	// A probabilistic write fault can land mid-flush; the gate keeps
	// the unjournaled remainder held, so retrying is lossless — the
	// same fight the daemon's degraded-mode probe wins in production.
	flushed := false
	for i := 0; i < 1000; i++ {
		if _, err := engine.FlushPending(); err == nil {
			flushed = true
			break
		}
	}
	if !flushed {
		return storageTrialResult{}, fmt.Errorf("flush never succeeded under fault rate %g", writeProb)
	}
	engine.Refresh()
	s := engine.Snapshot()
	match := eval.Match(s.Estimates, sc.Sources, sc.Params.MatchRadius)

	// Crash-restart: close the log (faults healed first, so the close
	// itself succeeds), reopen it cold on the real filesystem, and
	// count what replay recovers. Every journaled record must be there.
	faulty.Heal()
	stats := faulty.Stats()
	if err := log.Close(); err != nil {
		return storageTrialResult{}, err
	}
	relog, _, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		return storageTrialResult{}, err
	}
	var replayed uint64
	if err := relog.Replay(0, func(off uint64, rec wal.Record) error {
		replayed++
		return nil
	}); err != nil {
		return storageTrialResult{}, err
	}
	if err := relog.Close(); err != nil {
		return storageTrialResult{}, err
	}
	durable := 1.0
	if s.Journaled > 0 {
		durable = float64(replayed) / float64(s.Journaled)
	}
	if replayed < s.Journaled {
		return storageTrialResult{}, fmt.Errorf("acked records lost: journaled %d, recovered %d", s.Journaled, replayed)
	}
	return storageTrialResult{
		deliveredFrac: float64(s.Ingested) / float64(total),
		shed507:       ing.Stats().Shed507,
		faults:        stats.Writes + stats.Syncs + stats.Reads,
		durableFrac:   durable,
		meanErr:       match.MeanError(),
	}, nil
}
