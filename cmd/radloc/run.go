package main

import (
	"flag"
	"fmt"
	"io"
	"runtime"

	"radloc"
)

// runCmd executes a generic scenario run (`radloc run`).
func runCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	var (
		name      = fs.String("scenario", "A", "scenario: A, A3, B or C")
		strength  = fs.Float64("strength", 10, "source strength for scenario A/A3 (µCi)")
		obstacles = fs.Bool("obstacles", false, "include obstacles")
		bg        = fs.Float64("background", -1, "override background radiation (CPM); -1 keeps the scenario default")
		cfgFile   = fs.String("config", "", "load the scenario from a JSON file instead of -scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	var sc radloc.Scenario
	if *cfgFile != "" {
		sc, err = loadScenarioFile(*cfgFile)
		if err != nil {
			return err
		}
		if *bg >= 0 {
			sc = sc.WithBackground(*bg)
		}
		if cf.steps > 0 {
			sc.Params.TimeSteps = cf.steps
		}
		return executeRun(w, sc, cf)
	}
	switch *name {
	case "A", "a":
		sc = radloc.ScenarioA(*strength, *obstacles)
	case "A3", "a3":
		sc = radloc.ScenarioAThree(*strength)
	case "B", "b":
		sc = radloc.ScenarioB(*obstacles)
	case "C", "c":
		sc = radloc.ScenarioC(*obstacles, cf.seed)
	default:
		return fmt.Errorf("run: unknown scenario %q", *name)
	}
	if *bg >= 0 {
		sc = sc.WithBackground(*bg)
	}
	sc.Params.TimeSteps = cf.steps
	return executeRun(w, sc, cf)
}

// executeRun simulates sc and writes the step series plus the final
// estimates.
func executeRun(w io.Writer, sc radloc.Scenario, cf commonFlags) error {
	res, err := radloc.Run(sc, radloc.RunOptions{Seed: cf.seed, Reps: cf.reps, TrialWorkers: trialWorkers()})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# scenario %s, %d reps, seed %d\n", sc.Name, cf.reps, cf.seed)
	fmt.Fprintln(w, "label,step,"+errHeader(len(sc.Sources))+",false_pos,false_neg")
	writeStepSeries(w, sc.Name, res)

	fmt.Fprintf(w, "# final estimates of trial 0:\n")
	for _, e := range res.Trials[0].FinalEstimates {
		fmt.Fprintf(w, "#   %v\n", e)
	}
	return nil
}

// trialWorkers picks a trial-level parallelism that leaves headroom for
// the mean-shift workers inside each trial.
func trialWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		return 1
	}
	return n
}
