package main

// bench -core gate tests: the host-mismatch skip policy (pure
// decision) and the -check wiring around it — a baseline committed on
// different hardware must warn and skip, never fail CI; a matching
// host keeps the hard 20%-regression compare.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestCoreBenchHostMismatch(t *testing.T) {
	cases := []struct {
		name           string
		cpus, maxProcs int // committed report's
		hostCPUs       int
		hostMaxProcs   int
		want           string // "" = comparable; else substring of the reason
	}{
		{"identical host", 4, 4, 4, 4, ""},
		{"cpu count differs", 4, 4, 8, 8, "CPUs"},
		{"gomaxprocs capped", 4, 4, 4, 2, "GOMAXPROCS"},
		{"legacy report without gomaxprocs", 4, 0, 4, 2, ""},
		{"legacy report cpu mismatch still trips", 1, 0, 4, 4, "CPUs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			committed := &coreBenchReport{CPUs: tc.cpus, GoMaxProcs: tc.maxProcs}
			got := coreBenchHostMismatch(committed, tc.hostCPUs, tc.hostMaxProcs)
			if tc.want == "" && got != "" {
				t.Fatalf("comparable host judged mismatched: %q", got)
			}
			if tc.want != "" && !strings.Contains(got, tc.want) {
				t.Fatalf("reason %q does not mention %s", got, tc.want)
			}
		})
	}
}

// writeCoreBenchReport commits a minimal valid report for -check.
func writeCoreBenchReport(t *testing.T, r coreBenchReport) string {
	t.Helper()
	r.Schema = coreBenchSchema
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchCoreCheckSkipsOnCoreMismatch: a baseline recorded on a
// host with a different core count makes -check a warning, not a
// gate — and the skip happens before any benchmark runs (instant).
func TestBenchCoreCheckSkipsOnCoreMismatch(t *testing.T) {
	path := writeCoreBenchReport(t, coreBenchReport{
		CPUs:       runtime.NumCPU() + 1,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Current:    coreBenchNumbers{ReadingsPerSecMedian: 1e12},
	})
	var out bytes.Buffer
	if err := benchCore(200, 4, 1, 1, 1, 1, "", path, &out); err != nil {
		t.Fatalf("core-count mismatch failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "skipped") || !strings.Contains(out.String(), "CPUs") {
		t.Fatalf("skip warning missing: %q", out.String())
	}
}

// TestBenchCoreCheckMatchingHost: on matching hardware the hard
// compare still runs — an absurdly low committed median passes, an
// absurdly high one fails as a regression.
func TestBenchCoreCheckMatchingHost(t *testing.T) {
	host := coreBenchReport{CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}

	pass := host
	pass.Current = coreBenchNumbers{ReadingsPerSecMedian: 1}
	var out bytes.Buffer
	if err := benchCore(200, 4, 1, 1, 1, 1, "", writeCoreBenchReport(t, pass), &out); err != nil {
		t.Fatalf("trivial floor failed: %v", err)
	}
	if !strings.Contains(out.String(), "check ok") {
		t.Fatalf("no pass verdict: %q", out.String())
	}

	fail := host
	fail.Current = coreBenchNumbers{ReadingsPerSecMedian: 1e12}
	out.Reset()
	err := benchCore(200, 4, 1, 1, 1, 1, "", writeCoreBenchReport(t, fail), &out)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("regression not detected: %v", err)
	}
}

// TestBenchCoreReportRecordsParallelism: a fresh report carries the
// host's CPU count and GOMAXPROCS, so a future -check can judge
// comparability.
func TestBenchCoreReportRecordsParallelism(t *testing.T) {
	var out bytes.Buffer
	if err := benchCore(200, 4, 1, 1, 1, 1, "", "", &out); err != nil {
		t.Fatal(err)
	}
	var r coreBenchReport
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.CPUs != runtime.NumCPU() || r.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Fatalf("report parallelism = %d CPUs / GOMAXPROCS %d, host has %d / %d",
			r.CPUs, r.GoMaxProcs, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
}
