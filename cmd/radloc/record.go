package main

import (
	"flag"
	"fmt"
	"io"

	"radloc"
	"radloc/internal/replay"
)

// recordCmd writes a scenario's measurement stream as NDJSON — the
// input format of the radlocd daemon, so
//
//	radloc config emit A -out deploy.json
//	radloc record -scenario A -out stream.ndjson
//	radlocd -config deploy.json < stream.ndjson
//
// exercises the full deployment pipeline offline.
func recordCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	var (
		name      = fs.String("scenario", "A", "scenario: A, A3, B or C")
		strength  = fs.Float64("strength", 10, "source strength for A/A3 (µCi)")
		obstacles = fs.Bool("obstacles", false, "include obstacles")
		cfgFile   = fs.String("config", "", "load the scenario from a JSON file instead of -scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	var sc radloc.Scenario
	if *cfgFile != "" {
		sc, err = loadScenarioFile(*cfgFile)
		if err != nil {
			return err
		}
	} else {
		switch *name {
		case "A", "a":
			sc = radloc.ScenarioA(*strength, *obstacles)
		case "A3", "a3":
			sc = radloc.ScenarioAThree(*strength)
		case "B", "b":
			sc = radloc.ScenarioB(*obstacles)
		case "C", "c":
			sc = radloc.ScenarioC(*obstacles, cf.seed)
		default:
			return fmt.Errorf("record: unknown scenario %q", *name)
		}
	}
	sc.Params.TimeSteps = cf.steps

	n, err := replay.Write(w, sc, cf.seed)
	if err != nil {
		return err
	}
	if cf.out != "" {
		fmt.Fprintf(stdout, "recorded %d measurements to %s\n", n, cf.out)
	}
	return nil
}
