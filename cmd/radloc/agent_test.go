package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/transport"
)

func newAgentServer(t *testing.T) (*httptest.Server, *fusion.Engine, *httpingest.Handler) {
	t.Helper()
	sc := scenario.A(50, false)
	fcfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
	fcfg.Localizer.Seed = 3
	engine, err := fusion.NewEngine(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	ing := httpingest.New(engine, httpingest.Options{})
	srv := httptest.NewServer(ing)
	t.Cleanup(srv.Close)
	return srv, engine, ing
}

// streamNDJSON renders rounds of sequenced readings for the first few
// sensors of Scenario A, plus one malformed line.
func streamNDJSON(t *testing.T, sensors, rounds int) string {
	t.Helper()
	var b strings.Builder
	for seq := 1; seq <= rounds; seq++ {
		for id := 0; id < sensors; id++ {
			fmt.Fprintf(&b, `{"sensorId":%d,"cpm":20,"step":%d,"seq":%d}`+"\n", id, seq-1, seq)
		}
	}
	b.WriteString("not json\n")
	return b.String()
}

func TestAgentDeliversStream(t *testing.T) {
	srv, engine, ing := newAgentServer(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.ndjson")
	const sensors, rounds = 4, 6
	if err := os.WriteFile(path, []byte(streamNDJSON(t, sensors, rounds)), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := agentCmd([]string{
		"-url", srv.URL, "-in", path,
		"-spool", filepath.Join(dir, "spool"), "-batch", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	var sum agentSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("summary %q: %v", out.String(), err)
	}
	const total = sensors * rounds
	if sum.Delivery.Delivered != total {
		t.Errorf("delivered = %d, want %d", sum.Delivery.Delivered, total)
	}
	if sum.Malformed != 1 {
		t.Errorf("malformed = %d, want 1", sum.Malformed)
	}
	if sum.SpoolPending != 0 {
		t.Errorf("spool pending = %d, want 0", sum.SpoolPending)
	}
	// Agent and server accounting reconcile exactly.
	st := ing.Stats()
	if st.Accepted != sum.Delivery.AcceptedByServer || st.Accepted+st.Duplicates != sum.Delivery.Delivered {
		t.Errorf("server accepted %d dup %d vs agent delivered %d accepted %d",
			st.Accepted, st.Duplicates, sum.Delivery.Delivered, sum.Delivery.AcceptedByServer)
	}
	if _, err := engine.FlushPending(); err != nil {
		t.Fatal(err)
	}
	if got := engine.Snapshot().Ingested; got != total {
		t.Errorf("engine ingested = %d, want %d", got, total)
	}
}

// TestAgentResumesFromSpool kills delivery mid-stream (server down),
// leaves the readings spooled, then "restarts" the agent against a
// live server and shows the tail is delivered with nothing lost.
func TestAgentResumesFromSpool(t *testing.T) {
	srv, engine, _ := newAgentServer(t)
	dir := t.TempDir()
	spoolDir := filepath.Join(dir, "spool")

	// First run: the server is unreachable and attempts are capped, so
	// Send fails; the spool keeps everything.
	sp, err := transport.OpenSpool(spoolDir, transport.SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	down, err := transport.NewClient(transport.Options{
		URL:         "http://127.0.0.1:1", // nothing listens on port 1
		Clock:       clk,
		RNG:         rng.NewNamed(7, "agent-test"),
		BatchSize:   8,
		MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 12
	if _, err := pumpAgent(context.Background(), down, sp, strings.NewReader(streamNDJSON(t, 3, 4))); err != nil {
		t.Fatal(err)
	}
	// MaxAttempts exhausted ⇒ ErrGaveUp per batch, swallowed by the
	// pump; with a spool the readings are NOT acked away.
	if got := sp.Pending(); got != total {
		t.Fatalf("spool pending after dead server = %d, want %d", got, total)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Second run: same spool, live server, no new input.
	var out bytes.Buffer
	if err := agentCmd([]string{
		"-url", srv.URL, "-in", os.DevNull, "-spool", spoolDir, "-batch", "8",
	}, &out); err != nil {
		t.Fatal(err)
	}
	var sum agentSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Delivery.Delivered != total || sum.SpoolPending != 0 {
		t.Errorf("resume delivered %d pending %d, want %d and 0", sum.Delivery.Delivered, sum.SpoolPending, total)
	}
	if _, err := engine.FlushPending(); err != nil {
		t.Fatal(err)
	}
	if got := engine.Snapshot().Ingested; got != total {
		t.Errorf("engine ingested = %d, want %d", got, total)
	}
}
