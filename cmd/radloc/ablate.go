package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"time"

	"radloc"
	"radloc/internal/report"
	"radloc/internal/rng"
)

// ablateCmd runs the design-choice ablations of DESIGN.md
// (`radloc ablate <fusion-range|estimator|scale-k>`).
func ablateCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("ablate: want fusion-range, estimator or scale-k\n%s", usage)
	}
	which := args[0]
	fs := flag.NewFlagSet("ablate "+which, flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	switch which {
	case "fusion-range":
		return ablateFusionRange(w, cf)
	case "estimator":
		return ablateEstimator(w, cf)
	case "scale-k":
		return ablateScaleK(w, cf)
	default:
		return fmt.Errorf("ablate: unknown experiment %q", which)
	}
}

// ablateFusionRange sweeps d over the two-source Scenario A: too small
// fragments the population (false positives), too large couples the
// sources, disabled reproduces the Fig. 2 failure.
func ablateFusionRange(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: fusion range d (two 50 µCi sources, Scenario A)",
		"fusion_range", "mean_err", "false_pos", "false_neg")
	for _, d := range []float64{10, 14, 20, 28, 40, 56, math.Inf(1)} {
		var errSum, fpSum, fnSum float64
		n := 0
		for rep := 0; rep < cf.reps; rep++ {
			e, fp, fn, err := runFusionTrial(d, cf.steps, cf.seed+uint64(rep))
			if err != nil {
				return err
			}
			if !math.IsNaN(e) {
				errSum += e
				n++
			}
			fpSum += fp
			fnSum += fn
		}
		label := fmt.Sprintf("%g", d)
		if math.IsInf(d, 1) {
			label = "disabled"
		}
		meanErr := math.NaN()
		if n > 0 {
			meanErr = errSum / float64(n)
		}
		if err := tb.AddRow(label, meanErr, fpSum/float64(cf.reps), fnSum/float64(cf.reps)); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}

func runFusionTrial(d float64, steps int, seed uint64) (meanErr, fp, fn float64, err error) {
	sc := radloc.ScenarioA(50, false)
	cfg := radloc.LocalizerConfig(sc)
	cfg.Seed = seed
	if math.IsInf(d, 1) {
		cfg.DisableFusionRange = true
	} else {
		cfg.FusionRange = d
	}
	loc, err := radloc.NewLocalizer(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	stream := rng.NewNamed(seed, "ablate/fusion")
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			loc.Ingest(sen, m.CPM)
		}
	}
	match := radloc.Match(loc.Estimates(), sc.Sources, 40)
	return match.MeanError(), float64(match.FalsePos), float64(match.FalseNeg), nil
}

// ablateEstimator contrasts mean-shift mode extraction with the
// traditional weighted-centroid estimate.
func ablateEstimator(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: estimator (two 50 µCi sources; centroid = traditional particle filter)",
		"estimator", "mean_err")
	for _, mode := range []string{"mean-shift", "centroid"} {
		var errSum float64
		n := 0
		for rep := 0; rep < cf.reps; rep++ {
			seed := cf.seed + uint64(rep)
			sc := radloc.ScenarioA(50, false)
			cfg := radloc.LocalizerConfig(sc)
			cfg.Seed = seed
			loc, err := radloc.NewLocalizer(cfg)
			if err != nil {
				return err
			}
			stream := rng.NewNamed(seed, "ablate/estimator")
			for step := 0; step < cf.steps; step++ {
				for _, sen := range sc.Sensors {
					m := sen.Measure(stream, sc.Sources, nil, step)
					loc.Ingest(sen, m.CPM)
				}
			}
			var e float64
			if mode == "mean-shift" {
				e = radloc.Match(loc.Estimates(), sc.Sources, 40).MeanError()
			} else {
				c := loc.Centroid()
				e = math.Min(c.Pos.Dist(sc.Sources[0].Pos), c.Pos.Dist(sc.Sources[1].Pos))
			}
			if !math.IsNaN(e) {
				errSum += e
				n++
			}
		}
		meanErr := math.NaN()
		if n > 0 {
			meanErr = errSum / float64(n)
		}
		if err := tb.AddRow(mode, meanErr); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}

// ablateScaleK sweeps the source count K over the Scenario B layout:
// per-iteration cost and accuracy must stay flat in K — the paper's
// constant-parameter-space claim.
func ablateScaleK(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: source count K (Scenario B layout; flat time and error = the paper's scalability claim)",
		"sources", "mean_err", "false_pos", "false_neg", "sec_per_trial")
	full := radloc.ScenarioB(false)
	for _, k := range []int{1, 2, 3, 5, 7, 9} {
		sc := full.WithSources(full.Sources[:k])
		sc.Params.TimeSteps = cf.steps
		t0 := time.Now()
		res, err := radloc.Run(sc, radloc.RunOptions{Seed: cf.seed, Reps: cf.reps, TrialWorkers: trialWorkers()})
		if err != nil {
			return err
		}
		elapsed := time.Since(t0).Seconds() / float64(cf.reps)
		last := len(res.MeanErr) - 1
		if err := tb.AddRow(k, res.MeanErr[last], res.FalsePos[last], res.FalseNeg[last], elapsed); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}
