package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"time"

	"radloc"
	"radloc/internal/eval"
	"radloc/internal/faults"
	"radloc/internal/fusion"
	"radloc/internal/network"
	"radloc/internal/report"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
)

// ablateCmd runs the design-choice ablations of DESIGN.md
// (`radloc ablate <fusion-range|estimator|scale-k>`).
func ablateCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("ablate: want fusion-range, estimator, scale-k, faults, delivery, transport or storage\n%s", usage)
	}
	which := args[0]
	fs := flag.NewFlagSet("ablate "+which, flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	switch which {
	case "fusion-range":
		return ablateFusionRange(w, cf)
	case "estimator":
		return ablateEstimator(w, cf)
	case "scale-k":
		return ablateScaleK(w, cf)
	case "faults":
		return ablateFaults(w, cf)
	case "delivery":
		return ablateDelivery(w, cf)
	case "transport":
		return ablateTransport(w, cf)
	case "storage":
		return ablateStorage(w, cf)
	default:
		return fmt.Errorf("ablate: unknown experiment %q", which)
	}
}

// ablateFusionRange sweeps d over the two-source Scenario A: too small
// fragments the population (false positives), too large couples the
// sources, disabled reproduces the Fig. 2 failure.
func ablateFusionRange(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: fusion range d (two 50 µCi sources, Scenario A)",
		"fusion_range", "mean_err", "false_pos", "false_neg")
	for _, d := range []float64{10, 14, 20, 28, 40, 56, math.Inf(1)} {
		var errSum, fpSum, fnSum float64
		n := 0
		for rep := 0; rep < cf.reps; rep++ {
			e, fp, fn, err := runFusionTrial(d, cf.steps, cf.seed+uint64(rep))
			if err != nil {
				return err
			}
			if !math.IsNaN(e) {
				errSum += e
				n++
			}
			fpSum += fp
			fnSum += fn
		}
		label := fmt.Sprintf("%g", d)
		if math.IsInf(d, 1) {
			label = "disabled"
		}
		meanErr := math.NaN()
		if n > 0 {
			meanErr = errSum / float64(n)
		}
		if err := tb.AddRow(label, meanErr, fpSum/float64(cf.reps), fnSum/float64(cf.reps)); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}

func runFusionTrial(d float64, steps int, seed uint64) (meanErr, fp, fn float64, err error) {
	sc := radloc.ScenarioA(50, false)
	cfg := radloc.LocalizerConfig(sc)
	cfg.Seed = seed
	if math.IsInf(d, 1) {
		cfg.DisableFusionRange = true
	} else {
		cfg.FusionRange = d
	}
	loc, err := radloc.NewLocalizer(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	stream := rng.NewNamed(seed, "ablate/fusion")
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			loc.Ingest(sen, m.CPM)
		}
	}
	match := radloc.Match(loc.Estimates(), sc.Sources, 40)
	return match.MeanError(), float64(match.FalsePos), float64(match.FalseNeg), nil
}

// ablateEstimator contrasts mean-shift mode extraction with the
// traditional weighted-centroid estimate.
func ablateEstimator(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: estimator (two 50 µCi sources; centroid = traditional particle filter)",
		"estimator", "mean_err")
	for _, mode := range []string{"mean-shift", "centroid"} {
		var errSum float64
		n := 0
		for rep := 0; rep < cf.reps; rep++ {
			seed := cf.seed + uint64(rep)
			sc := radloc.ScenarioA(50, false)
			cfg := radloc.LocalizerConfig(sc)
			cfg.Seed = seed
			loc, err := radloc.NewLocalizer(cfg)
			if err != nil {
				return err
			}
			stream := rng.NewNamed(seed, "ablate/estimator")
			for step := 0; step < cf.steps; step++ {
				for _, sen := range sc.Sensors {
					m := sen.Measure(stream, sc.Sources, nil, step)
					loc.Ingest(sen, m.CPM)
				}
			}
			var e float64
			if mode == "mean-shift" {
				e = radloc.Match(loc.Estimates(), sc.Sources, 40).MeanError()
			} else {
				c := loc.Centroid()
				e = math.Min(c.Pos.Dist(sc.Sources[0].Pos), c.Pos.Dist(sc.Sources[1].Pos))
			}
			if !math.IsNaN(e) {
				errSum += e
				n++
			}
		}
		meanErr := math.NaN()
		if n > 0 {
			meanErr = errSum / float64(n)
		}
		if err := tb.AddRow(mode, meanErr); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}

// ablateScaleK sweeps the source count K over the Scenario B layout:
// per-iteration cost and accuracy must stay flat in K — the paper's
// constant-parameter-space claim.
func ablateScaleK(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: source count K (Scenario B layout; flat time and error = the paper's scalability claim)",
		"sources", "mean_err", "false_pos", "false_neg", "sec_per_trial")
	full := radloc.ScenarioB(false)
	for _, k := range []int{1, 2, 3, 5, 7, 9} {
		sc := full.WithSources(full.Sources[:k])
		sc.Params.TimeSteps = cf.steps
		t0 := time.Now()
		res, err := radloc.Run(sc, radloc.RunOptions{Seed: cf.seed, Reps: cf.reps, TrialWorkers: trialWorkers()})
		if err != nil {
			return err
		}
		elapsed := time.Since(t0).Seconds() / float64(cf.reps)
		last := len(res.MeanErr) - 1
		if err := tb.AddRow(k, res.MeanErr[last], res.FalsePos[last], res.FalseNeg[last], elapsed); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}

// ablateFaults sweeps the per-sensor fault probability p over Scenario
// A: each sensor is independently faulted (cycling through stuck-at,
// calibration drift and byzantine spoofing) and the identical corrupted
// stream is fed to a fusion engine with the health monitor enabled and
// one with it disabled. The gap between the two columns is the payoff
// of quarantine; at p = 0 they must coincide.
func ablateFaults(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: sensor fault probability p (Scenario A; stuck/drift/byzantine faults; defended = health monitor + quarantine)",
		"fault_prob", "defended_err", "undefended_err",
		"defended_fn", "undefended_fn", "mean_quarantined")
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		var dErrSum, uErrSum, dFNSum, uFNSum, qSum float64
		dN, uN := 0, 0
		for rep := 0; rep < cf.reps; rep++ {
			res, err := runFaultTrial(p, cf.steps, cf.seed+uint64(rep))
			if err != nil {
				return err
			}
			if !math.IsNaN(res.defendedErr) {
				dErrSum += res.defendedErr
				dN++
			}
			if !math.IsNaN(res.undefendedErr) {
				uErrSum += res.undefendedErr
				uN++
			}
			dFNSum += float64(res.defendedFN)
			uFNSum += float64(res.undefendedFN)
			qSum += float64(res.quarantined)
		}
		dErr, uErr := math.NaN(), math.NaN()
		if dN > 0 {
			dErr = dErrSum / float64(dN)
		}
		if uN > 0 {
			uErr = uErrSum / float64(uN)
		}
		reps := float64(cf.reps)
		if err := tb.AddRow(p, dErr, uErr, dFNSum/reps, uFNSum/reps, qSum/reps); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}

// ablateDelivery sweeps transport pathologies — at-least-once
// duplication, bounded reordering, silent drops — over Scenario A and
// feeds the identical corrupted wire stream to a fusion engine with
// the sequence gate engaged (sequenced ingest: per-sensor dedup +
// watermark reorder buffer) and one that trusts the transport (the
// paper's original assumption). The gated column should track the
// clean baseline; the ungated column pays for every duplicate and
// reordering with a distorted posterior.
func ablateDelivery(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: delivery faults (Scenario A; gated = seq dedup + reorder gate, ungated = trust the transport)",
		"condition", "gated_err", "ungated_err",
		"gated_fn", "ungated_fn", "dup_suppressed")
	conds := []struct {
		name      string
		dup, drop float64
		span      int
	}{
		{"clean", 0, 0, 0},
		{"dup 30%", 0.3, 0, 0},
		{"reorder span 8", 0, 0, 8},
		{"drop 10%", 0, 0.1, 0},
		{"dup+reorder+drop", 0.3, 0.1, 8},
	}
	for _, c := range conds {
		var gErrSum, uErrSum, gFNSum, uFNSum, dupSum float64
		gN, uN := 0, 0
		for rep := 0; rep < cf.reps; rep++ {
			res, err := runDeliveryTrial(c.dup, c.drop, c.span, cf.steps, cf.seed+uint64(rep))
			if err != nil {
				return err
			}
			if !math.IsNaN(res.gatedErr) {
				gErrSum += res.gatedErr
				gN++
			}
			if !math.IsNaN(res.ungatedErr) {
				uErrSum += res.ungatedErr
				uN++
			}
			gFNSum += float64(res.gatedFN)
			uFNSum += float64(res.ungatedFN)
			dupSum += float64(res.duplicates)
		}
		gErr, uErr := math.NaN(), math.NaN()
		if gN > 0 {
			gErr = gErrSum / float64(gN)
		}
		if uN > 0 {
			uErr = uErrSum / float64(uN)
		}
		reps := float64(cf.reps)
		if err := tb.AddRow(c.name, gErr, uErr, gFNSum/reps, uFNSum/reps, dupSum/reps); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}

type deliveryTrialResult struct {
	gatedErr, ungatedErr float64
	gatedFN, ungatedFN   int
	duplicates           uint64
}

// runDeliveryTrial corrupts one sequenced Scenario A stream with the
// given duplicate probability, drop probability and reorder span, and
// runs the identical wire stream through a gated and an ungated
// engine.
func runDeliveryTrial(dup, drop float64, span, steps int, seed uint64) (deliveryTrialResult, error) {
	sc := scenario.A(50, false)
	measure := rng.NewNamed(seed, "ablate/delivery-measure")
	var canonical []fusion.Meas
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(measure, sc.Sources, nil, step)
			canonical = append(canonical, fusion.Meas{SensorID: sen.ID, CPM: m.CPM, Step: step, Seq: uint64(step + 1)})
		}
	}
	transport := rng.NewNamed(seed, "ablate/delivery-net")
	wire := make([]fusion.Meas, 0, len(canonical))
	for _, m := range canonical {
		if transport.Float64() < drop {
			continue
		}
		wire = append(wire, m)
		if transport.Float64() < dup {
			wire = append(wire, m)
		}
	}
	for i := range wire {
		if span <= 0 {
			break
		}
		j := i + transport.IntN(span)
		if j >= len(wire) {
			j = len(wire) - 1
		}
		wire[i], wire[j] = wire[j], wire[i]
	}

	newEngine := func() (*fusion.Engine, error) {
		cfg := fusion.Config{
			Localizer: sim.LocalizerConfig(sc),
			Sensors:   sc.Sensors,
		}
		cfg.Localizer.Seed = seed
		return fusion.NewEngine(cfg)
	}
	gated, err := newEngine()
	if err != nil {
		return deliveryTrialResult{}, err
	}
	ungated, err := newEngine()
	if err != nil {
		return deliveryTrialResult{}, err
	}
	for _, m := range wire {
		// Dedup refusals and buffering are the point of the experiment.
		_, _ = gated.IngestSeq(m)
		_, _ = ungated.Ingest(m.SensorID, m.CPM)
	}
	if _, err := gated.FlushPending(); err != nil {
		return deliveryTrialResult{}, err
	}
	gated.Refresh()
	ungated.Refresh()

	gMatch := eval.Match(gated.Snapshot().Estimates, sc.Sources, sc.Params.MatchRadius)
	uMatch := eval.Match(ungated.Snapshot().Estimates, sc.Sources, sc.Params.MatchRadius)
	return deliveryTrialResult{
		gatedErr:   gMatch.MeanError(),
		ungatedErr: uMatch.MeanError(),
		gatedFN:    gMatch.FalseNeg,
		ungatedFN:  uMatch.FalseNeg,
		duplicates: gated.Snapshot().Delivery.Duplicates,
	}, nil
}

type faultTrialResult struct {
	defendedErr, undefendedErr float64
	defendedFN, undefendedFN   int
	quarantined                int
}

// runFaultTrial faults each Scenario A sensor with probability p and
// runs the same corrupted stream through a defended and an undefended
// fusion engine.
func runFaultTrial(p float64, steps int, seed uint64) (faultTrialResult, error) {
	sc := scenario.A(50, false)
	pick := rng.NewNamed(seed, "ablate/faults-pick")
	var specs []faults.Spec
	for i := range sc.Sensors {
		if pick.Float64() >= p {
			continue
		}
		// Faults set in after the filter's warm-up (a sensor degrading
		// mid-mission); instant-onset corruption would poison the
		// posterior both engines score against before it converges.
		switch len(specs) % 3 {
		case 0:
			specs = append(specs, faults.Spec{Sensor: i, Kind: faults.StuckAt, StuckCPM: 2000, StartStep: 6})
		case 1:
			specs = append(specs, faults.Spec{Sensor: i, Kind: faults.Drift, Gain: 0.5, StartStep: 8})
		case 2:
			specs = append(specs, faults.Spec{Sensor: i, Kind: faults.Byzantine, MaxCPM: 5000, StartStep: 6})
		}
	}
	inj, err := faults.NewInjector(len(sc.Sensors), seed, specs)
	if err != nil {
		return faultTrialResult{}, err
	}

	newEngine := func(disabled bool) (*fusion.Engine, error) {
		cfg := fusion.Config{
			Localizer: sim.LocalizerConfig(sc),
			Sensors:   sc.Sensors,
			Health:    fusion.HealthConfig{Disabled: disabled},
		}
		cfg.Localizer.Seed = seed
		return fusion.NewEngine(cfg)
	}
	defended, err := newEngine(false)
	if err != nil {
		return faultTrialResult{}, err
	}
	undefended, err := newEngine(true)
	if err != nil {
		return faultTrialResult{}, err
	}

	plan := network.InOrder(len(sc.Sensors), steps).Filter(func(ev network.Event) bool {
		return inj.Delivered(ev.SensorIndex, ev.EmitStep)
	})
	stream := rng.NewNamed(seed, "ablate/faults-measure")
	for step := 0; step < steps; step++ {
		for _, ev := range plan.EventsInStep(step) {
			sen := sc.Sensors[ev.SensorIndex]
			m := sen.Measure(stream, sc.Sources, nil, ev.EmitStep)
			cpm := inj.Transform(ev.SensorIndex, ev.EmitStep, m.CPM)
			// Quarantine refusals are the point of the experiment, not
			// an error.
			_, _ = defended.Ingest(sen.ID, cpm)
			_, _ = undefended.Ingest(sen.ID, cpm)
		}
	}
	defended.Refresh()
	undefended.Refresh()

	dMatch := eval.Match(defended.Snapshot().Estimates, sc.Sources, sc.Params.MatchRadius)
	uMatch := eval.Match(undefended.Snapshot().Estimates, sc.Sources, sc.Params.MatchRadius)
	return faultTrialResult{
		defendedErr:   dMatch.MeanError(),
		undefendedErr: uMatch.MeanError(),
		defendedFN:    dMatch.FalseNeg,
		undefendedFN:  uMatch.FalseNeg,
		quarantined:   len(defended.QuarantinedSensors()),
	}, nil
}
