package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"radloc/internal/core"
	"radloc/internal/fusion"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/sim"
)

// coreBenchSchema versions the BENCH_core.json layout so the CI gate
// refuses to compare incompatible reports.
const coreBenchSchema = "radloc-bench-core/1"

// coreBenchCheckSlack is the regression budget of the -check gate: a
// measured median readings/sec more than this fraction below the
// committed report's fails the run.
const coreBenchCheckSlack = 0.20

// coreBenchNumbers are the measured results of one bench -core
// configuration: N runs of the canonical task (one engine fed the
// scenario workload through Submit, estimates refreshed every sensor
// round), summarized by median so a single noisy run cannot skew the
// committed baseline.
type coreBenchNumbers struct {
	// Runs is the number of timed repetitions (the policy wants ≥ 5).
	Runs int `json:"runs"`
	// Readings is the number of measurements ingested per run.
	Readings int `json:"readings"`
	// ReadingsPerSecMedian is the median throughput across runs — the
	// headline number the CI gate compares.
	ReadingsPerSecMedian float64 `json:"readingsPerSecMedian"`
	// ReadingsPerSecMin is the slowest run's throughput.
	ReadingsPerSecMin float64 `json:"readingsPerSecMin"`
	// ReadingsPerSecMax is the fastest run's throughput.
	ReadingsPerSecMax float64 `json:"readingsPerSecMax"`
	// RunSeconds lists each run's wall-clock seconds, in run order.
	RunSeconds []float64 `json:"runSeconds"`
	// StageSecondsMedian is the median (across runs) of each filter
	// stage's total wall-clock seconds for the whole run, read from the
	// radloc_filter_stage_seconds histograms.
	StageSecondsMedian map[string]float64 `json:"stageSecondsMedian"`
}

// coreBenchReport is the machine-readable bench -core artifact
// (BENCH_core.json). Baseline carries the numbers of a previous report
// (-against), so before/after live in one committed file.
type coreBenchReport struct {
	// Schema identifies the report layout (coreBenchSchema).
	Schema string `json:"schema"`
	// Particles, Sensors, Steps, Seed, Workers pin the canonical task.
	Particles int    `json:"particles"`
	Sensors   int    `json:"sensors"`
	Steps     int    `json:"steps"`
	Seed      uint64 `json:"seed"`
	// Workers is the in-engine weighting worker bound the run used
	// (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// CPUs is runtime.NumCPU() on the measuring host — single-core
	// hosts cannot show worker-pool speedups, so read the numbers with
	// this in hand.
	CPUs int `json:"cpus"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) on the measuring host: the
	// scheduler parallelism the run actually had, which is what bounds
	// the worker pools when 0-valued worker flags default to it. The
	// -check gate compares baselines only between hosts where both this
	// and CPUs match; reports predating the field carry 0, which -check
	// treats as unknown (CPUs alone decides).
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Baseline is the previous report's measurement (the "before"),
	// copied verbatim by -against; null when no baseline was given.
	Baseline *coreBenchNumbers `json:"baseline,omitempty"`
	// BaselineNote records where the baseline numbers came from.
	BaselineNote string `json:"baselineNote,omitempty"`
	// Current is this run's measurement (the "after").
	Current coreBenchNumbers `json:"current"`
	// Speedup is Current over Baseline median throughput (0 when no
	// baseline).
	Speedup float64 `json:"speedup,omitempty"`
}

// benchCore runs the filter-core throughput benchmark: `runs` timed
// repetitions of the canonical task, each on a fresh engine and fresh
// metrics registry. againstPath, when non-empty, loads a previous
// report and embeds its Current numbers as this report's Baseline;
// checkPath, when non-empty, compares the measured median against the
// committed report and returns an error on a >20% regression instead
// of writing a report.
func benchCore(particles, sensors, steps, runs, workers int, seed uint64, againstPath, checkPath string, w io.Writer) error {
	if runs < 1 {
		return fmt.Errorf("bench: -runs %d < 1", runs)
	}
	sc := scenarioForSensors(sensors)
	sc.Params.NumParticles = particles

	// A baseline measured on a different core count is not comparable:
	// decide that before burning benchmark time, and skip the gate with
	// a warning instead of failing CI on hardware drift.
	var checkAgainst *coreBenchReport
	if checkPath != "" {
		committed, err := loadCoreBenchReport(checkPath)
		if err != nil {
			return err
		}
		if why := coreBenchHostMismatch(committed, runtime.NumCPU(), runtime.GOMAXPROCS(0)); why != "" {
			fmt.Fprintf(w, "bench -core check skipped: %s — rerun `radloc bench -core -out %s` on matching hardware to re-anchor the baseline\n", why, checkPath)
			return nil
		}
		checkAgainst = committed
	}

	// One precomputed batch stream shared by every run: the benchmark
	// times ingest + estimate refresh, not measurement synthesis.
	// Readings are unsequenced (seq 0) so they take the direct filter
	// path, and batches mirror the zones benchmark's framing.
	stream := rng.NewNamed(seed, "bench/core")
	const batchSize = 16
	var batches [][]fusion.Meas
	var cur []fusion.Meas
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, sc.Obstacles, step)
			cur = append(cur, fusion.Meas{SensorID: sen.ID, CPM: m.CPM, Step: step})
			if len(cur) == batchSize {
				batches = append(batches, cur)
				cur = nil
			}
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	readings := steps * len(sc.Sensors)

	oneRun := func() (float64, map[string]float64, error) {
		reg := obs.NewRegistry()
		cfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
		cfg.Localizer.Seed = seed
		cfg.Localizer.Metrics = reg
		cfg.Localizer.WeightWorkers = workers
		e, err := fusion.NewEngine(cfg)
		if err != nil {
			return 0, nil, err
		}
		ctx := context.Background()
		t0 := time.Now()
		for _, b := range batches {
			if _, err := e.Submit(ctx, b); err != nil {
				return 0, nil, err
			}
		}
		elapsed := time.Since(t0).Seconds()
		stages := make(map[string]float64, len(core.FilterStages))
		for _, stage := range core.FilterStages {
			stages[stage] = core.StageHistogram(reg, stage).Summary().Sum
		}
		return elapsed, stages, nil
	}

	// One untimed warmup run stabilizes the timed ones (page cache,
	// lazily built tables).
	if _, _, err := oneRun(); err != nil {
		return err
	}

	num := coreBenchNumbers{Runs: runs, Readings: readings}
	stageRuns := make(map[string][]float64, len(core.FilterStages))
	var rates []float64
	for r := 0; r < runs; r++ {
		elapsed, stages, err := oneRun()
		if err != nil {
			return err
		}
		num.RunSeconds = append(num.RunSeconds, elapsed)
		rates = append(rates, float64(readings)/elapsed)
		for s, v := range stages {
			stageRuns[s] = append(stageRuns[s], v)
		}
	}
	num.ReadingsPerSecMedian = median(rates)
	num.ReadingsPerSecMin = minOf(rates)
	num.ReadingsPerSecMax = maxOf(rates)
	num.StageSecondsMedian = make(map[string]float64, len(stageRuns))
	for s, vs := range stageRuns {
		num.StageSecondsMedian[s] = median(vs)
	}

	if checkAgainst != nil {
		committed := checkAgainst
		floor := committed.Current.ReadingsPerSecMedian * (1 - coreBenchCheckSlack)
		if num.ReadingsPerSecMedian < floor {
			return fmt.Errorf("bench: core regression: measured %.0f readings/sec < %.0f (committed %.0f − %d%% slack) — rerun `radloc bench -core -against %s -out %s` if the slowdown is intended",
				num.ReadingsPerSecMedian, floor, committed.Current.ReadingsPerSecMedian,
				int(coreBenchCheckSlack*100), checkPath, checkPath)
		}
		fmt.Fprintf(w, "bench -core check ok: %.0f readings/sec ≥ %.0f floor (committed %.0f, %d runs)\n",
			num.ReadingsPerSecMedian, floor, committed.Current.ReadingsPerSecMedian, runs)
		return nil
	}

	report := coreBenchReport{
		Schema:    coreBenchSchema,
		Particles: particles,
		Sensors:   len(sc.Sensors),
		Steps:     steps,
		Seed:      seed,
		Workers:    workers,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Current:    num,
	}
	if againstPath != "" {
		prev, err := loadCoreBenchReport(againstPath)
		if err != nil {
			return err
		}
		base := prev.Current
		report.Baseline = &base
		report.BaselineNote = prev.BaselineNote
		if report.BaselineNote == "" {
			report.BaselineNote = "previous bench -core report " + againstPath
		}
		if base.ReadingsPerSecMedian > 0 {
			report.Speedup = num.ReadingsPerSecMedian / base.ReadingsPerSecMedian
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// coreBenchHostMismatch reports why the current host's throughput
// cannot be compared against the committed report — a different CPU
// count, or a different GOMAXPROCS when the report records one — or
// "" when the hosts are comparable. Pure so the skip policy is
// testable without running a benchmark.
func coreBenchHostMismatch(committed *coreBenchReport, cpus, maxProcs int) string {
	if committed.CPUs != cpus {
		return fmt.Sprintf("baseline measured on %d CPUs, this host has %d", committed.CPUs, cpus)
	}
	if committed.GoMaxProcs != 0 && committed.GoMaxProcs != maxProcs {
		return fmt.Sprintf("baseline measured with GOMAXPROCS=%d, this run has %d", committed.GoMaxProcs, maxProcs)
	}
	return ""
}

// flagWasSet reports whether the named flag was passed explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// loadCoreBenchReport reads and schema-checks a bench -core report.
func loadCoreBenchReport(path string) (*coreBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r coreBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != coreBenchSchema {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, coreBenchSchema)
	}
	return &r, nil
}

// median returns the middle value of xs (mean of the middle two for
// even lengths). xs is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// minOf returns the smallest value of xs (0 for an empty slice).
func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// maxOf returns the largest value of xs (0 for an empty slice).
func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
