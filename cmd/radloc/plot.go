package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"radloc/internal/report"
)

// plotCmd converts a CSV produced by the figure/run commands into a
// gnuplot script or a Markdown table (`radloc plot <csv> -y col1,col2`).
func plotCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("plot: missing input CSV\n%s", usage)
	}
	path := args[0]
	fs := flag.NewFlagSet("plot", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	var (
		xCol    = fs.String("x", "step", "x-axis column")
		yCols   = fs.String("y", "", "comma-separated y columns (default: all err_* columns)")
		format  = fs.String("format", "gnuplot", "output format: gnuplot or markdown")
		labelEq = fs.String("where", "", "keep only rows whose first column equals this value")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	table, err := loadCSVTable(path, *labelEq)
	if err != nil {
		return err
	}

	switch *format {
	case "markdown":
		return table.WriteMarkdown(w)
	case "gnuplot":
		var series []report.GnuplotSeries
		if *yCols != "" {
			for _, c := range strings.Split(*yCols, ",") {
				series = append(series, report.GnuplotSeries{XColumn: *xCol, YColumn: strings.TrimSpace(c)})
			}
		} else {
			for _, c := range table.Columns {
				if strings.HasPrefix(c, "err_") {
					series = append(series, report.GnuplotSeries{XColumn: *xCol, YColumn: c})
				}
			}
		}
		if len(series) == 0 {
			return fmt.Errorf("plot: no y columns (use -y)")
		}
		return table.WriteGnuplot(w, series...)
	default:
		return fmt.Errorf("plot: unknown format %q", *format)
	}
}

// loadCSVTable reads one of our comment-prefixed CSVs into a report
// table, optionally filtering rows by the first column's value.
func loadCSVTable(path, labelEq string) (*report.Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var title string
	var table *report.Table
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if title == "" {
				title = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
			continue
		}
		cells := strings.Split(line, ",")
		if table == nil {
			table = report.NewTable(title, cells...)
			continue
		}
		if labelEq != "" && cells[0] != labelEq {
			continue
		}
		vals := make([]any, len(cells))
		for i, c := range cells {
			vals[i] = c
		}
		if err := table.AddRow(vals...); err != nil {
			return nil, fmt.Errorf("plot: %s: %w", path, err)
		}
	}
	if table == nil {
		return nil, fmt.Errorf("plot: %s holds no table", path)
	}
	return table, nil
}
