package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"radloc/internal/clock"
	"radloc/internal/eval"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/netchaos"
	"radloc/internal/report"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/transport"
)

// localRT serves HTTP requests in-process against a handler, so the
// full agent→server transport stack runs with no sockets and every
// fault comes from the seeded injector.
type localRT struct{ h http.Handler }

func (l localRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	l.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// ablateTransport sweeps network loss rate × hard-partition duration
// × spooling over Scenario A, delivering the measurement stream
// through the real transport client (retries, backoff, breaker),
// the deterministic fault injector and the real HTTP admission path
// into a fusion engine — all on one fake clock, so a "30 s" partition
// costs microseconds. The question each row answers: how much data
// survives the network, and what does the surviving fraction cost in
// localization error? With the spool the delivered fraction should
// pin to 1.0 regardless of the fault pattern (partitions cost
// latency, not data); without it, MaxAttempts bounds how long a batch
// is fought for and losses show up as error and missed sources.
func ablateTransport(w io.Writer, cf commonFlags) error {
	tb := report.NewTable(
		"Ablation: transport faults (Scenario A; spooled = store-and-forward + retry forever, unspooled = 3 attempts then drop)",
		"loss", "partition_s", "spool", "delivered_frac", "mean_err", "false_neg", "duplicates")
	for _, loss := range []float64{0, 0.3, 0.6} {
		for _, partition := range []time.Duration{0, 10 * time.Second, 30 * time.Second} {
			for _, spool := range []bool{true, false} {
				var fracSum, errSum, fnSum, dupSum float64
				n := 0
				for rep := 0; rep < cf.reps; rep++ {
					res, err := runTransportTrial(loss, partition, spool, cf.steps, cf.seed+uint64(rep))
					if err != nil {
						return err
					}
					fracSum += res.deliveredFrac
					fnSum += float64(res.falseNeg)
					dupSum += float64(res.duplicates)
					if !math.IsNaN(res.meanErr) {
						errSum += res.meanErr
						n++
					}
				}
				meanErr := math.NaN()
				if n > 0 {
					meanErr = errSum / float64(n)
				}
				reps := float64(cf.reps)
				label := "off"
				if spool {
					label = "on"
				}
				if err := tb.AddRow(loss, partition.Seconds(), label,
					fracSum/reps, meanErr, fnSum/reps, dupSum/reps); err != nil {
					return err
				}
			}
		}
	}
	return tb.WriteCSV(w)
}

type transportTrialResult struct {
	deliveredFrac float64
	meanErr       float64
	falseNeg      int
	duplicates    uint64
}

// runTransportTrial delivers one sequenced Scenario A stream through
// the fault injector into a live ingest handler and scores what the
// engine ends up with.
func runTransportTrial(loss float64, partition time.Duration, spool bool, steps int, seed uint64) (transportTrialResult, error) {
	sc := scenario.A(50, false)
	fcfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
	fcfg.Localizer.Seed = seed
	engine, err := fusion.NewEngine(fcfg)
	if err != nil {
		return transportTrialResult{}, err
	}
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ing := httpingest.New(engine, httpingest.Options{QueueDepth: 256, Clock: clk})

	ccfg := netchaos.Config{
		Seed:         seed,
		Clock:        clk,
		DropProb:     loss,
		RespDropProb: loss / 4, // a slice of the loss hits the ack path: duplicates
		Latency:      30 * time.Millisecond,
		Jitter:       15 * time.Millisecond,
	}
	if partition > 0 {
		ccfg.Partitions = []netchaos.Window{{From: 300 * time.Millisecond, To: 300*time.Millisecond + partition}}
	}
	rt := netchaos.New(localRT{ing}, ccfg)

	opts := transport.Options{
		URL:       "http://fusion",
		HTTP:      rt,
		Clock:     clk,
		RNG:       rng.NewNamed(seed, "ablate/transport-jitter"),
		BatchSize: 12,
		Backoff:   transport.Backoff{Base: 100 * time.Millisecond, Cap: time.Second},
		Breaker:   transport.BreakerConfig{FailureThreshold: 4, Cooldown: 2 * time.Second},
	}
	if !spool {
		opts.MaxAttempts = 3 // no backing store: bounded fight, then drop
	}
	client, err := transport.NewClient(opts)
	if err != nil {
		return transportTrialResult{}, err
	}

	measure := rng.NewNamed(seed, "ablate/transport-measure")
	var readings []transport.Reading
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(measure, sc.Sources, nil, step)
			readings = append(readings, transport.Reading{
				SensorID: sen.ID, CPM: m.CPM, Step: step, Seq: uint64(step + 1),
			})
		}
	}
	total := len(readings)

	ctx := context.Background()
	if spool {
		dir, err := os.MkdirTemp("", "radloc-ablate-spool-*")
		if err != nil {
			return transportTrialResult{}, err
		}
		defer os.RemoveAll(dir)
		sp, err := transport.OpenSpool(dir, transport.SpoolOptions{})
		if err != nil {
			return transportTrialResult{}, err
		}
		defer sp.Close()
		for _, m := range readings {
			if _, err := sp.Append(m); err != nil {
				return transportTrialResult{}, err
			}
		}
		if _, err := client.Drain(ctx, sp); err != nil {
			return transportTrialResult{}, err
		}
	} else {
		for i := 0; i < total; i += opts.BatchSize {
			end := i + opts.BatchSize
			if end > total {
				end = total
			}
			err := client.Send(ctx, readings[i:end])
			if errors.Is(err, transport.ErrGaveUp) || errors.Is(err, transport.ErrRefused) {
				continue // the batch is gone; that loss is the experiment
			}
			if err != nil {
				return transportTrialResult{}, err
			}
		}
	}

	if _, err := engine.FlushPending(); err != nil {
		return transportTrialResult{}, err
	}
	engine.Refresh()
	s := engine.Snapshot()
	match := eval.Match(s.Estimates, sc.Sources, sc.Params.MatchRadius)
	if s.Ingested > uint64(total) {
		return transportTrialResult{}, fmt.Errorf("double-apply: ingested %d of %d", s.Ingested, total)
	}
	return transportTrialResult{
		deliveredFrac: float64(s.Ingested) / float64(total),
		meanErr:       match.MeanError(),
		falseNeg:      match.FalseNeg,
		duplicates:    s.Delivery.Duplicates,
	}, nil
}
