package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// execute runs the CLI entry point into a buffer.
func execute(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestUsageAndErrors(t *testing.T) {
	if _, err := execute(t); err == nil {
		t.Error("no args: want usage error")
	}
	if _, err := execute(t, "bogus"); err == nil {
		t.Error("unknown command accepted")
	}
	out, err := execute(t, "help")
	if err != nil || !strings.Contains(out, "radloc figure") {
		t.Errorf("help output: %q, %v", out, err)
	}
	if _, err := execute(t, "figure"); err == nil {
		t.Error("figure without id accepted")
	}
	if _, err := execute(t, "figure", "99"); err == nil {
		t.Error("unknown figure accepted")
	}
	if _, err := execute(t, "table", "2"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := execute(t, "scenario"); err == nil {
		t.Error("scenario without name accepted")
	}
	if _, err := execute(t, "scenario", "Z"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := execute(t, "run", "-scenario", "Z"); err == nil {
		t.Error("unknown run scenario accepted")
	}
	if _, err := execute(t, "config"); err == nil {
		t.Error("config without subcommand accepted")
	}
}

func TestScenarioDump(t *testing.T) {
	out, err := execute(t, "scenario", "A")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "36 sensors, 2 sources, 1 obstacles") {
		t.Errorf("scenario A header wrong: %s", firstLine(out))
	}
	if strings.Count(out, "\nsensor,") != 36 {
		t.Errorf("sensor rows = %d", strings.Count(out, "\nsensor,"))
	}
	if strings.Count(out, "\nsource,") != 2 {
		t.Errorf("source rows = %d", strings.Count(out, "\nsource,"))
	}
	if !strings.Contains(out, "obstacle,1,") {
		t.Error("obstacle rows missing")
	}
}

func TestScenarioSVG(t *testing.T) {
	out, err := execute(t, "scenario", "B", "-svg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Errorf("not an SVG document: %s", firstLine(out))
	}
	if strings.Count(out, "<rect") != 197 { // 196 sensors + background
		t.Errorf("rects = %d, want 197", strings.Count(out, "<rect"))
	}
}

func TestRunSmall(t *testing.T) {
	out, err := execute(t, "run", "-scenario", "A", "-strength", "50", "-steps", "4", "-reps", "1", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "label,step,err_source1,err_source2,false_pos,false_neg") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "final estimates") {
		t.Error("final estimates missing")
	}
	rows := strings.Count(out, "\nA/50µCi,")
	if rows != 4 {
		t.Errorf("step rows = %d, want 4", rows)
	}
}

func TestRunWithBackgroundOverride(t *testing.T) {
	out, err := execute(t, "run", "-scenario", "A", "-strength", "50", "-background", "0", "-steps", "3", "-reps", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A/50µCi") {
		t.Errorf("unexpected output: %s", firstLine(out))
	}
}

func TestConfigEmitCheckRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")
	if _, err := execute(t, "config", "emit", "A", "-strength", "25", "-out", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"strengthUCi": 25`) {
		t.Error("emitted config missing strength")
	}
	out, err := execute(t, "config", "check", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ok: scenario") {
		t.Errorf("check output: %s", out)
	}
}

func TestRunFromConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")
	if _, err := execute(t, "config", "emit", "A", "-strength", "50", "-out", path); err != nil {
		t.Fatal(err)
	}
	out, err := execute(t, "run", "-config", path, "-steps", "3", "-reps", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "final estimates") {
		t.Errorf("config-driven run output:\n%s", firstLine(out))
	}
}

func TestConfigCheckRejectsBadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := execute(t, "config", "check", path); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := execute(t, "config", "check", filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFigure2Command(t *testing.T) {
	out, err := execute(t, "figure", "2", "-steps", "3", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no-fusion-range") || !strings.Contains(out, "fusion-range") {
		t.Error("both variants must appear")
	}
	if strings.Count(out, "\n") < 10 {
		t.Errorf("too few rows:\n%s", out)
	}
}

func TestFigure4Command(t *testing.T) {
	out, err := execute(t, "figure", "4", "-steps", "8", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "## after time step") != 4 {
		t.Errorf("snapshot count wrong:\n%s", firstLine(out))
	}
	if !strings.Contains(out, "O") {
		t.Error("sources not rendered")
	}
}

func TestOutFileFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	stdout, err := execute(t, "scenario", "A", "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != "" {
		t.Errorf("stdout not empty with -out: %q", firstLine(stdout))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "sensor,0,") {
		t.Error("output file content wrong")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
