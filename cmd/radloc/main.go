// Command radloc regenerates every table and figure of the paper's
// evaluation (Section VI) and exposes generic scenario runs.
//
// Usage:
//
//	radloc figure <2|3|4|5|6|7b|7c|9a|9bc> [flags]   regenerate a figure's data (CSV)
//	radloc table 1 [flags]                            Table I runtime sweep
//	radloc scenario <A|B|C> [flags]                   dump a deployment layout
//	radloc run [flags]                                generic scenario run
//
// Common flags: -reps N, -seed S, -steps T, -out FILE (default stdout).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radloc:", err)
		os.Exit(1)
	}
}

// commonFlags are shared by all subcommands.
type commonFlags struct {
	reps  int
	seed  uint64
	steps int
	out   string
}

func (c *commonFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&c.reps, "reps", 10, "repeated trials to average")
	fs.Uint64Var(&c.seed, "seed", 1, "root random seed")
	fs.IntVar(&c.steps, "steps", 30, "time steps (each sensor reports once per step)")
	fs.StringVar(&c.out, "out", "", "output file (default stdout)")
}

// open returns the output writer and a closer.
func (c *commonFlags) open(fallback io.Writer) (io.Writer, func() error, error) {
	if c.out == "" {
		return fallback, func() error { return nil }, nil
	}
	f, err := os.Create(c.out)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "figure":
		return figureCmd(args[1:], stdout)
	case "table":
		return tableCmd(args[1:], stdout)
	case "scenario":
		return scenarioCmd(args[1:], stdout)
	case "run":
		return runCmd(args[1:], stdout)
	case "config":
		return configCmd(args[1:], stdout)
	case "plot":
		return plotCmd(args[1:], stdout)
	case "ablate":
		return ablateCmd(args[1:], stdout)
	case "diagnose":
		return diagnoseCmd(args[1:], stdout)
	case "record":
		return recordCmd(args[1:], stdout)
	case "agent":
		return agentCmd(args[1:], stdout)
	case "ctl":
		return ctlCmd(args[1:], stdout)
	case "bench":
		return benchCmd(args[1:], stdout)
	case "help", "-h", "--help":
		printUsage(stdout)
		return nil
	default:
		return fmt.Errorf("unknown command %q\n%s", args[0], usage)
	}
}

const usage = `usage:
  radloc figure <2|3|4|5|6|7b|7c|9a|9bc> [flags]   regenerate a paper figure (CSV)
  radloc table 1 [flags]                            Table I runtime sweep
  radloc scenario <A|B|C> [flags]                   dump a layout (-svg for SVG)
  radloc run [flags]                                generic run (-config FILE for custom)
  radloc config emit <A|A3|B|C> [flags]             emit a scenario as editable JSON
  radloc config check <file>                        validate a JSON scenario
  radloc plot <csv> [-x col -y col1,col2 -format gnuplot|markdown]
  radloc ablate <fusion-range|estimator|scale-k|faults|delivery|transport|storage> [flags]
  radloc diagnose [-scenario A -obstacles] [flags]  posterior-predictive check
  radloc record [-scenario A | -config FILE] [flags]  NDJSON stream for radlocd
  radloc agent -url URL [-in FILE] [-spool DIR] [flags]  deliver NDJSON to radlocd with retries
  radloc ctl <status|routes|promote|drain|demote|migrate> [flags]  operate a radlocd cluster (failover, live migration)
  radloc bench [-particles N -sensors N -steps T -profile] [flags]  stage-latency profile (CSV + pprof)
flags: -reps N  -seed S  -steps T  -out FILE`

func usageError() error { return fmt.Errorf("%s", usage) }

func printUsage(w io.Writer) { fmt.Fprintln(w, usage) }
