package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"strings"

	"radloc"
	"radloc/internal/render"
	"radloc/internal/rng"
)

// figureCmd dispatches `radloc figure <id>`.
func figureCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("figure: missing id\n%s", usage)
	}
	id := args[0]
	fs := flag.NewFlagSet("figure "+id, flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	switch id {
	case "2":
		return figure2(w, cf)
	case "3":
		return figureStrengthSweep(w, cf, false)
	case "4":
		return figure4(w, cf)
	case "5":
		return figureStrengthSweep(w, cf, true)
	case "6":
		return figure6(w, cf)
	case "7b":
		return figure7(w, cf, "B")
	case "7c":
		return figure7(w, cf, "C")
	case "9a":
		return figure9a(w, cf)
	case "9bc":
		return figure9bc(w, cf)
	default:
		return fmt.Errorf("figure: unknown id %q (want 2, 3, 4, 5, 6, 7b, 7c, 9a, 9bc)", id)
	}
}

// figure2 reproduces Fig. 2: without the fusion range the particle
// population oscillates between the two sources as different sensors
// report. The CSV tracks the population centroid's distance to each
// source per iteration for both variants.
func figure2(w io.Writer, cf commonFlags) error {
	fmt.Fprintln(w, "# Fig. 2: particle centroid drift with vs without fusion range")
	fmt.Fprintln(w, "variant,iteration,centroid_x,centroid_y,dist_to_A,dist_to_B")

	for _, variant := range []struct {
		name    string
		disable bool
	}{{"fusion-range", false}, {"no-fusion-range", true}} {
		sc := radloc.ScenarioA(50, false)
		sc.Params.TimeSteps = cf.steps
		cfg := radloc.LocalizerConfig(sc)
		cfg.DisableFusionRange = variant.disable
		cfg.Seed = cf.seed
		loc, err := radloc.NewLocalizer(cfg)
		if err != nil {
			return err
		}
		stream := rng.NewNamed(cf.seed, "fig2/measure")
		srcA, srcB := sc.Sources[0], sc.Sources[1]
		iter := 0
		for step := 0; step < sc.Params.TimeSteps; step++ {
			for _, sen := range sc.Sensors {
				m := sen.Measure(stream, sc.Sources, nil, step)
				loc.Ingest(sen, m.CPM)
				iter++
				if iter%6 == 0 {
					c := loc.Centroid()
					fmt.Fprintf(w, "%s,%d,%.2f,%.2f,%.2f,%.2f\n",
						variant.name, iter, c.Pos.X, c.Pos.Y,
						c.Pos.Dist(srcA.Pos), c.Pos.Dist(srcB.Pos))
				}
			}
		}
	}
	return nil
}

// figureStrengthSweep reproduces Fig. 3 (two sources) or Fig. 5 (three
// sources): localization error per source and FP/FN counts per time
// step for source strengths 4, 10, 50, 100 µCi.
func figureStrengthSweep(w io.Writer, cf commonFlags, three bool) error {
	name := "Fig. 3 (two sources)"
	if three {
		name = "Fig. 5 (three sources)"
	}
	fmt.Fprintf(w, "# %s: error and FP/FN vs time step, background 5 CPM\n", name)
	fmt.Fprintln(w, "strength_uci,step,"+errHeader(map[bool]int{false: 2, true: 3}[three])+",false_pos,false_neg")

	for _, strength := range []float64{4, 10, 50, 100} {
		sc := radloc.ScenarioA(strength, false)
		if three {
			sc = radloc.ScenarioAThree(strength)
		}
		sc.Params.TimeSteps = cf.steps
		res, err := radloc.Run(sc, radloc.RunOptions{Seed: cf.seed, Reps: cf.reps, TrialWorkers: trialWorkers()})
		if err != nil {
			return err
		}
		writeStepSeries(w, fmt.Sprintf("%g", strength), res)
	}
	return nil
}

// figure4 reproduces Fig. 4: particle cloud snapshots over time,
// rendered as ASCII density maps plus estimates.
func figure4(w io.Writer, cf commonFlags) error {
	sc := radloc.ScenarioA(10, false)
	sc.Params.TimeSteps = cf.steps
	if sc.Params.TimeSteps < 8 {
		sc.Params.TimeSteps = 8
	}
	res, err := radloc.Run(sc, radloc.RunOptions{
		Seed:          cf.seed,
		Reps:          1,
		SnapshotSteps: []int{0, 2, 4, 6},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig. 4: particle progression (time steps 1, 3, 5, 7 of the paper = indices 0, 2, 4, 6)")
	for _, step := range []int{0, 2, 4, 6} {
		parts := res.Trials[0].Snapshots[step]
		fmt.Fprintf(w, "\n## after time step %d (%d particles)\n", step+1, len(parts))
		fmt.Fprint(w, renderParticles(sc, parts))
	}
	return nil
}

// figure6 reproduces Fig. 6: two 10 µCi sources under background
// radiation 0, 5, 10, 50 CPM.
func figure6(w io.Writer, cf commonFlags) error {
	fmt.Fprintln(w, "# Fig. 6: error and FP/FN vs time step under varying background, two 10 µCi sources")
	fmt.Fprintln(w, "background_cpm,step,"+errHeader(2)+",false_pos,false_neg")
	for _, bg := range []float64{0, 5, 10, 50} {
		sc := radloc.ScenarioA(10, false).WithBackground(bg)
		sc.Params.TimeSteps = cf.steps
		res, err := radloc.Run(sc, radloc.RunOptions{Seed: cf.seed, Reps: cf.reps, TrialWorkers: trialWorkers()})
		if err != nil {
			return err
		}
		writeStepSeries(w, fmt.Sprintf("%g", bg), res)
	}
	return nil
}

// figure7 reproduces Fig. 7: Scenario B or C with and without
// obstacles — per-source errors and FP/FN counts per step.
func figure7(w io.Writer, cf commonFlags, which string) error {
	fmt.Fprintf(w, "# Fig. 7: Scenario %s with and without obstacles\n", which)
	fmt.Fprintln(w, "obstacles,step,"+errHeader(9)+",false_pos,false_neg")
	for _, withObs := range []bool{false, true} {
		sc := radloc.ScenarioB(withObs)
		if which == "C" {
			sc = radloc.ScenarioC(withObs, cf.seed)
		}
		sc.Params.TimeSteps = cf.steps
		res, err := radloc.Run(sc, radloc.RunOptions{Seed: cf.seed, Reps: cf.reps, TrialWorkers: trialWorkers()})
		if err != nil {
			return err
		}
		writeStepSeries(w, fmt.Sprintf("%v", withObs), res)
	}
	return nil
}

// figure9a reproduces Fig. 9(a): per-step normalized localization error
// of Scenario A with the U-obstacle (error without obstacle ÷ error
// with obstacle; > 1 means the obstacle helps).
func figure9a(w io.Writer, cf commonFlags) error {
	without, with, err := runPair(radloc.ScenarioA(10, false), radloc.ScenarioA(10, true), cf)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig. 9(a): normalized localization error (no-obstacle / obstacle), two 10 µCi sources")
	fmt.Fprintln(w, "step,source1_norm,source2_norm")
	for t := 0; t < len(without.MeanErr); t++ {
		fmt.Fprintf(w, "%d,%s,%s\n", t,
			csvFloat(without.ErrBySource[0][t]/with.ErrBySource[0][t]),
			csvFloat(without.ErrBySource[1][t]/with.ErrBySource[1][t]))
	}
	return nil
}

// figure9bc reproduces Fig. 9(b,c): per-source normalized error for
// Scenarios B and C averaged over time steps 5–29.
func figure9bc(w io.Writer, cf commonFlags) error {
	fmt.Fprintln(w, "# Fig. 9(b,c): per-source normalized error (no-obstacle / obstacle), mean of steps 5..end")
	fmt.Fprintln(w, "scenario,source,normalized_error")
	for _, which := range []string{"B", "C"} {
		var base, obs radloc.Scenario
		if which == "B" {
			base, obs = radloc.ScenarioB(false), radloc.ScenarioB(true)
		} else {
			base, obs = radloc.ScenarioC(false, cf.seed), radloc.ScenarioC(true, cf.seed)
		}
		without, with, err := runPair(base, obs, cf)
		if err != nil {
			return err
		}
		for s := range without.ErrBySource {
			num := meanWindow(without.ErrBySource[s], 5)
			den := meanWindow(with.ErrBySource[s], 5)
			fmt.Fprintf(w, "%s,S%d,%s\n", which, s+1, csvFloat(num/den))
		}
	}
	return nil
}

// runPair runs the same layout without and with obstacles.
func runPair(base, obs radloc.Scenario, cf commonFlags) (radloc.Result, radloc.Result, error) {
	base.Params.TimeSteps = cf.steps
	obs.Params.TimeSteps = cf.steps
	opts := radloc.RunOptions{Seed: cf.seed, Reps: cf.reps, TrialWorkers: trialWorkers()}
	without, err := radloc.Run(base, opts)
	if err != nil {
		return radloc.Result{}, radloc.Result{}, err
	}
	with, err := radloc.Run(obs, opts)
	if err != nil {
		return radloc.Result{}, radloc.Result{}, err
	}
	return without, with, nil
}

// writeStepSeries emits one row per step: per-source mean errors then
// FP and FN means.
func writeStepSeries(w io.Writer, label string, res radloc.Result) {
	steps := len(res.MeanErr)
	for t := 0; t < steps; t++ {
		cols := make([]string, 0, len(res.ErrBySource)+3)
		cols = append(cols, label, fmt.Sprintf("%d", t))
		for s := range res.ErrBySource {
			cols = append(cols, csvFloat(res.ErrBySource[s][t]))
		}
		cols = append(cols, csvFloat(res.FalsePos[t]), csvFloat(res.FalseNeg[t]))
		fmt.Fprintln(w, strings.Join(cols, ","))
	}
}

func errHeader(n int) string {
	cols := make([]string, n)
	for i := range cols {
		cols[i] = fmt.Sprintf("err_source%d", i+1)
	}
	return strings.Join(cols, ",")
}

func csvFloat(v float64) string {
	if math.IsNaN(v) {
		return "NA"
	}
	return fmt.Sprintf("%.3f", v)
}

func meanWindow(xs []float64, from int) float64 {
	var sum float64
	n := 0
	for i := from; i < len(xs); i++ {
		if !math.IsNaN(xs[i]) {
			sum += xs[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// renderParticles draws an ASCII density map of the particle cloud with
// source (O), sensor (+) and estimate (X) markers.
func renderParticles(sc radloc.Scenario, parts []radloc.Particle) string {
	return render.ASCII(sc, parts, nil, render.ASCIIOptions{})
}
