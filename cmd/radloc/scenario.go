package main

import (
	"flag"
	"fmt"
	"io"

	"radloc"
)

// scenarioCmd dumps a deployment layout (`radloc scenario <A|B|C>`).
func scenarioCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("scenario: missing name (A, B or C)\n%s", usage)
	}
	name := args[0]
	fs := flag.NewFlagSet("scenario "+name, flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	obstacles := fs.Bool("obstacles", true, "include obstacles")
	svg := fs.Bool("svg", false, "emit an SVG layout drawing instead of CSV")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	var sc radloc.Scenario
	switch name {
	case "A", "a":
		sc = radloc.ScenarioA(10, *obstacles)
	case "B", "b":
		sc = radloc.ScenarioB(*obstacles)
	case "C", "c":
		sc = radloc.ScenarioC(*obstacles, cf.seed)
	default:
		return fmt.Errorf("scenario: unknown name %q (want A, B or C)", name)
	}
	if *svg {
		return writeSVG(w, sc)
	}
	return dumpScenario(w, sc)
}

func dumpScenario(w io.Writer, sc radloc.Scenario) error {
	fmt.Fprintf(w, "# scenario %s: %.0f×%.0f area, %d sensors, %d sources, %d obstacles\n",
		sc.Name, sc.Bounds.Width(), sc.Bounds.Height(),
		len(sc.Sensors), len(sc.Sources), len(sc.Obstacles))
	fmt.Fprintf(w, "# params: %d particles, fusion range %g, σ_N %g, %d steps\n",
		sc.Params.NumParticles, sc.Params.FusionRange, sc.Params.ResampleNoise, sc.Params.TimeSteps)

	fmt.Fprintln(w, "kind,id,x,y,value")
	for _, s := range sc.Sensors {
		fmt.Fprintf(w, "sensor,%d,%.2f,%.2f,%.4g\n", s.ID, s.Pos.X, s.Pos.Y, s.Background)
	}
	for i, s := range sc.Sources {
		fmt.Fprintf(w, "source,%d,%.2f,%.2f,%.4g\n", i+1, s.Pos.X, s.Pos.Y, s.Strength)
	}
	for i, o := range sc.Obstacles {
		for _, v := range o.Shape.Vertices() {
			fmt.Fprintf(w, "obstacle,%d,%.2f,%.2f,%.4g\n", i+1, v.X, v.Y, o.Mu)
		}
	}
	return nil
}
