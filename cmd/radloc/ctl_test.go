package main

// ctl command tests: the migrate sequence's drain rollback (a botched
// cutover must not leave the source stuck at 503), -from discovery
// through the routing table, and the operator-facing error paths —
// every failure must be one actionable line, not a stack of JSON.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fakeCtlNode fakes one radlocd node's /cluster surface with
// injectable failures and a drain-transition log.
type fakeCtlNode struct {
	mu            sync.Mutex
	self          string
	token         string // enforced on mutating verbs when non-empty
	draining      bool
	drainLog      []bool // every drain value received, in order
	promoteStatus int    // non-zero: promote fails with this HTTP status
	head          uint64
	applied       uint64
	caughtUp      bool
	routes        map[string]map[string]any
	released      bool
	srv           *httptest.Server
}

func newFakeCtlNode(t *testing.T, self string) *fakeCtlNode {
	t.Helper()
	n := &fakeCtlNode{self: self, routes: map[string]map[string]any{}}
	mux := http.NewServeMux()
	auth := func(w http.ResponseWriter, r *http.Request) bool {
		n.mu.Lock()
		tok := n.token
		n.mu.Unlock()
		if tok != "" && r.Header.Get("Authorization") != "Bearer "+tok {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return false
		}
		return true
	}
	mux.HandleFunc("GET /cluster/status", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		defer n.mu.Unlock()
		fmt.Fprintf(w, `{"self":%q,"zones":[{"zone":"west","role":"standby","epoch":1,"draining":%v,"head":%d,"applied":%d,"caughtUp":%v}]}`,
			n.self, n.draining, n.head, n.applied, n.caughtUp)
	})
	mux.HandleFunc("GET /cluster/routes", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		defer n.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"zones": n.routes})
	})
	mux.HandleFunc("POST /cluster/replicate/{zone}", func(w http.ResponseWriter, r *http.Request) {
		if !auth(w, r) {
			return
		}
		fmt.Fprint(w, "{}")
	})
	mux.HandleFunc("POST /cluster/drain/{zone}", func(w http.ResponseWriter, r *http.Request) {
		if !auth(w, r) {
			return
		}
		var body struct {
			Draining bool `json:"draining"`
		}
		json.NewDecoder(r.Body).Decode(&body)
		n.mu.Lock()
		n.draining = body.Draining
		n.drainLog = append(n.drainLog, body.Draining)
		head := n.head
		n.mu.Unlock()
		fmt.Fprintf(w, `{"draining":%v,"head":%d}`, body.Draining, head)
	})
	mux.HandleFunc("POST /cluster/promote/{zone}", func(w http.ResponseWriter, r *http.Request) {
		if !auth(w, r) {
			return
		}
		n.mu.Lock()
		status := n.promoteStatus
		n.mu.Unlock()
		if status != 0 {
			http.Error(w, "promote refused (injected)", status)
			return
		}
		fmt.Fprint(w, `{"epoch":2}`)
	})
	mux.HandleFunc("POST /cluster/release/{zone}", func(w http.ResponseWriter, r *http.Request) {
		if !auth(w, r) {
			return
		}
		n.mu.Lock()
		n.released = true
		n.mu.Unlock()
		fmt.Fprint(w, "{}")
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func (n *fakeCtlNode) drainHistory() []bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]bool(nil), n.drainLog...)
}

// TestCtlMigrateRollsBackDrainOnPromoteFailure is the failure-injection
// regression: the cutover fails after the source is already draining,
// and the drain must be lifted so the source keeps accepting writes.
func TestCtlMigrateRollsBackDrainOnPromoteFailure(t *testing.T) {
	src := newFakeCtlNode(t, "src")
	dst := newFakeCtlNode(t, "dst")
	src.head, dst.applied, dst.caughtUp = 10, 10, true
	dst.promoteStatus = http.StatusConflict // a newer epoch beat us to it

	var out strings.Builder
	err := ctlCmd([]string{"migrate", "-zone", "west",
		"-from", src.srv.URL, "-to", dst.srv.URL, "-timeout", "5s"}, &out)
	if err == nil || !strings.Contains(err.Error(), "promote") {
		t.Fatalf("err = %v, want a promote failure", err)
	}
	if got := src.drainHistory(); len(got) != 2 || !got[0] || got[1] {
		t.Fatalf("drain transitions = %v, want [true false] (set, then rolled back)", got)
	}
	if src.draining {
		t.Fatal("source left draining after the failed cutover")
	}
	if !strings.Contains(out.String(), "rollback: drain lifted") {
		t.Fatalf("no rollback notice in output:\n%s", out.String())
	}
}

// TestCtlMigrateRollsBackDrainOnTailTimeout pins the other failure
// window: the target never reaches the drain head, the wait times out,
// and the drain still rolls back.
func TestCtlMigrateRollsBackDrainOnTailTimeout(t *testing.T) {
	src := newFakeCtlNode(t, "src")
	dst := newFakeCtlNode(t, "dst")
	src.head, dst.applied, dst.caughtUp = 10, 3, true // stuck short of the head

	var out strings.Builder
	err := ctlCmd([]string{"migrate", "-zone", "west",
		"-from", src.srv.URL, "-to", dst.srv.URL, "-timeout", "600ms"}, &out)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want a tail-wait timeout", err)
	}
	if got := src.drainHistory(); len(got) != 2 || !got[0] || got[1] {
		t.Fatalf("drain transitions = %v, want [true false]", got)
	}
}

// TestCtlMigrateDiscoversPrimary runs the happy path with -from
// omitted: the source is learned from the target's routing table.
func TestCtlMigrateDiscoversPrimary(t *testing.T) {
	src := newFakeCtlNode(t, "src")
	dst := newFakeCtlNode(t, "dst")
	src.head, dst.applied, dst.caughtUp = 10, 10, true
	dst.routes["west"] = map[string]any{"primary": src.srv.URL, "epoch": 1}

	var out strings.Builder
	err := ctlCmd([]string{"migrate", "-zone", "west", "-to", dst.srv.URL, "-timeout", "5s"}, &out)
	if err != nil {
		t.Fatalf("migrate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "discovered primary "+src.srv.URL) {
		t.Fatalf("no discovery notice:\n%s", out.String())
	}
	if !src.released {
		t.Fatal("source never released the zone")
	}
	if src.draining != true {
		t.Fatal("source drain lifted on a successful cutover (release owns the hand-off)")
	}
}

// TestCtlErrorPaths pins the operator experience when things are
// misconfigured: every error is non-nil (non-zero exit through main)
// and a single actionable line.
func TestCtlErrorPaths(t *testing.T) {
	oneLine := func(t *testing.T, err error) {
		t.Helper()
		if err == nil {
			t.Fatal("expected an error")
		}
		if strings.Contains(err.Error(), "\n") {
			t.Fatalf("multi-line error: %q", err.Error())
		}
	}

	t.Run("unreachable node", func(t *testing.T) {
		dead := newFakeCtlNode(t, "dead")
		deadURL := dead.srv.URL
		dead.srv.Close()
		err := ctlCmd([]string{"status", "-url", deadURL}, &strings.Builder{})
		oneLine(t, err)
		if !strings.Contains(err.Error(), "refused") && !strings.Contains(err.Error(), "connect") {
			t.Fatalf("err = %v, want a connection failure", err)
		}
	})

	t.Run("wrong token", func(t *testing.T) {
		n := newFakeCtlNode(t, "guarded")
		n.token = "secret"
		err := ctlCmd([]string{"promote", "-zone", "west", "-url", n.srv.URL, "-token", "nope"}, &strings.Builder{})
		oneLine(t, err)
		if !strings.Contains(err.Error(), "401") {
			t.Fatalf("err = %v, want HTTP 401", err)
		}
	})

	t.Run("unknown zone on migrate discovery", func(t *testing.T) {
		dst := newFakeCtlNode(t, "dst") // empty routing table
		err := ctlCmd([]string{"migrate", "-zone", "nowhere", "-to", dst.srv.URL}, &strings.Builder{})
		oneLine(t, err)
		if !strings.Contains(err.Error(), `does not know zone "nowhere"`) ||
			!strings.Contains(err.Error(), "-from") {
			t.Fatalf("err = %v, want the pass--from hint", err)
		}
	})

	t.Run("unknown verb", func(t *testing.T) {
		err := ctlCmd([]string{"explode"}, &strings.Builder{})
		oneLine(t, err)
		if !strings.Contains(err.Error(), "routes") {
			t.Fatalf("err = %v, want the verb list including routes", err)
		}
	})

	t.Run("migrate to self", func(t *testing.T) {
		n := newFakeCtlNode(t, "n")
		n.routes["west"] = map[string]any{"primary": n.srv.URL, "epoch": 1}
		err := ctlCmd([]string{"migrate", "-zone", "west", "-to", n.srv.URL}, &strings.Builder{})
		oneLine(t, err)
		if !strings.Contains(err.Error(), "already owned") {
			t.Fatalf("err = %v, want already-owned refusal", err)
		}
	})
}

// TestCtlRoutesPrintsTable covers the routes verb end to end.
func TestCtlRoutesPrintsTable(t *testing.T) {
	n := newFakeCtlNode(t, "n")
	n.routes["west"] = map[string]any{"primary": "http://a", "standby": "http://b", "epoch": 3}
	n.routes["east"] = map[string]any{"primary": "http://b", "epoch": 1}

	var out strings.Builder
	if err := ctlCmd([]string{"routes", "-url", n.srv.URL}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"ZONE", "EPOCH", "west", "http://a", "http://b", "east", "3", "1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("routes output missing %q:\n%s", want, got)
		}
	}
	// Sorted by zone: east before west.
	if strings.Index(got, "east") > strings.Index(got, "west") {
		t.Fatalf("routes not sorted:\n%s", got)
	}
}
