package main

import (
	"strings"
	"testing"
)

// The figure commands are exercised end to end at minimum fidelity so
// the full-size CLI paths stay correct.

func TestFigure3Command(t *testing.T) {
	out, err := execute(t, "figure", "3", "-steps", "2", "-reps", "1", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strength_uci,step,err_source1,err_source2,false_pos,false_neg") {
		t.Errorf("header wrong: %s", firstLine(out))
	}
	for _, s := range []string{"\n4,0,", "\n10,0,", "\n50,0,", "\n100,0,"} {
		if !strings.Contains(out, s) {
			t.Errorf("missing strength sweep row %q", s)
		}
	}
	if n := strings.Count(out, "\n"); n != 2+4*2 {
		t.Errorf("row count = %d", n)
	}
}

func TestFigure5Command(t *testing.T) {
	out, err := execute(t, "figure", "5", "-steps", "2", "-reps", "1", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "err_source3") {
		t.Error("three-source header missing")
	}
	if !strings.Contains(out, "Fig. 5") {
		t.Error("figure label missing")
	}
}

func TestFigure6Command(t *testing.T) {
	out, err := execute(t, "figure", "6", "-steps", "2", "-reps", "1", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	for _, bg := range []string{"\n0,0,", "\n5,0,", "\n10,0,", "\n50,0,"} {
		if !strings.Contains(out, bg) {
			t.Errorf("missing background row %q", bg)
		}
	}
}

func TestFigure9aCommand(t *testing.T) {
	out, err := execute(t, "figure", "9a", "-steps", "2", "-reps", "1", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "step,source1_norm,source2_norm") {
		t.Errorf("header wrong: %s", out)
	}
	if strings.Count(out, "\n") != 2+2 {
		t.Errorf("row count wrong:\n%s", out)
	}
}

func TestFigure7bCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario B is slow")
	}
	out, err := execute(t, "figure", "7b", "-steps", "2", "-reps", "1", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "err_source9") {
		t.Error("nine-source header missing")
	}
	if !strings.Contains(out, "\nfalse,0,") || !strings.Contains(out, "\ntrue,0,") {
		t.Error("missing obstacle variants")
	}
}

func TestFigure7cCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario C is slow")
	}
	out, err := execute(t, "figure", "7c", "-steps", "2", "-reps", "1", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Scenario C") {
		t.Error("scenario C label missing")
	}
}

func TestFigure9bcCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("scenarios B and C are slow")
	}
	out, err := execute(t, "figure", "9bc", "-steps", "6", "-reps", "1", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "\nB,S") != 9 || strings.Count(out, "\nC,S") != 9 {
		t.Errorf("per-source rows wrong:\n%s", out)
	}
}

func TestTable1Command(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep is slow")
	}
	out, err := execute(t, "table", "1", "-timesteps", "1", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "particles,sensors,workers,sec_per_iteration") {
		t.Errorf("header wrong: %s", firstLine(out))
	}
	for _, combo := range []string{"\n2000,36,", "\n2000,196,", "\n5000,36,", "\n15000,196,"} {
		if !strings.Contains(out, combo) {
			t.Errorf("missing combination %q", combo)
		}
	}
	if _, err := execute(t, "table"); err == nil {
		t.Error("table without id accepted")
	}
}

func TestScenarioCDump(t *testing.T) {
	out, err := execute(t, "scenario", "C", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "195 sensors") {
		t.Errorf("scenario C header: %s", firstLine(out))
	}
}

func TestRunScenarioA3AndC(t *testing.T) {
	out, err := execute(t, "run", "-scenario", "A3", "-strength", "50", "-steps", "2", "-reps", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "err_source3") {
		t.Error("A3 should report three sources")
	}
	if testing.Short() {
		return
	}
	out, err = execute(t, "run", "-scenario", "C", "-obstacles", "-steps", "2", "-reps", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "err_source9") {
		t.Error("C should report nine sources")
	}
}
