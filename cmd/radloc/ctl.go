package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// ctlCmd is the cluster operator's tool: status, routes, promote,
// drain, demote, and the full migrate sequence against radlocd's
// /cluster endpoints.
func ctlCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: radloc ctl <status|routes|promote|drain|demote|migrate> [flags]")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("ctl "+verb, flag.ContinueOnError)
	var (
		urlFlag = fs.String("url", "http://127.0.0.1:8080", "node base URL the verb acts on")
		zone    = fs.String("zone", "default", "zone the verb acts on")
		token   = fs.String("token", "", "cluster bearer token")
		from    = fs.String("from", "", "migrate: the zone's current primary base URL (default: discovered from the target's routing table)")
		to      = fs.String("to", "", "migrate: the node taking the zone over")
		epoch   = fs.Uint64("epoch", 0, "demote: the epoch the demotion carries (must be >= the zone's current)")
		primary = fs.String("primary", "", "demote: primary URL the demoted node replicates from")
		timeout = fs.Duration("timeout", time.Minute, "bound on the whole operation")
		off     = fs.Bool("off", false, "drain: lift the drain instead of setting it")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	c := &ctlClient{http: http.DefaultClient, token: *token, deadline: time.Now().Add(*timeout)}

	switch verb {
	case "status":
		return c.status(stdout, *urlFlag)
	case "routes":
		return c.routes(stdout, *urlFlag)
	case "promote":
		var out struct {
			Epoch uint64 `json:"epoch"`
		}
		if err := c.post(*urlFlag, "/cluster/promote/"+url.PathEscape(*zone), nil, &out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "promoted %s on %s at epoch %d\n", *zone, *urlFlag, out.Epoch)
		return nil
	case "drain":
		body := map[string]bool{"draining": !*off}
		var out struct {
			Draining bool   `json:"draining"`
			Head     uint64 `json:"head"`
		}
		if err := c.post(*urlFlag, "/cluster/drain/"+url.PathEscape(*zone), body, &out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "zone %s on %s draining=%v head=%d\n", *zone, *urlFlag, out.Draining, out.Head)
		return nil
	case "demote":
		if *epoch == 0 {
			return fmt.Errorf("ctl demote: -epoch is required (and must be >= the zone's current epoch)")
		}
		body := map[string]any{"epoch": *epoch, "primary": *primary}
		if err := c.post(*urlFlag, "/cluster/demote/"+url.PathEscape(*zone), body, nil); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "demoted %s on %s to epoch %d\n", *zone, *urlFlag, *epoch)
		return nil
	case "migrate":
		if *to == "" {
			return fmt.Errorf("ctl migrate: -to is required (the node taking the zone over)")
		}
		src := *from
		if src == "" {
			// The learned routing table knows the zone's current owner;
			// asking the target saves the operator a lookup.
			var err error
			if src, err = c.discoverPrimary(*to, *zone); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "migrate: discovered primary %s for zone %s from %s\n", src, *zone, *to)
		}
		if src == *to {
			return fmt.Errorf("ctl migrate: zone %q is already owned by %s", *zone, *to)
		}
		return c.migrate(stdout, *zone, src, *to)
	default:
		return fmt.Errorf("ctl: unknown verb %q (want status, routes, promote, drain, demote or migrate)", verb)
	}
}

// ctlClient wraps the /cluster HTTP calls with the token and a
// deadline shared across a multi-step operation.
type ctlClient struct {
	http     *http.Client
	token    string
	deadline time.Time
}

func (c *ctlClient) do(req *http.Request, out any) error {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: HTTP %d: %s", req.Method, req.URL, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if out == nil || len(raw) == 0 {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func (c *ctlClient) get(base, path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, strings.TrimSuffix(base, "/")+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *ctlClient) post(base, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = strings.NewReader("{}")
	}
	req, err := http.NewRequest(http.MethodPost, strings.TrimSuffix(base, "/")+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// ctlStatus mirrors the /cluster/status payload.
type ctlStatus struct {
	Self  string `json:"self"`
	Zones []struct {
		Zone       string  `json:"zone"`
		Role       string  `json:"role"`
		Epoch      uint64  `json:"epoch"`
		Draining   bool    `json:"draining"`
		Primary    string  `json:"primary"`
		Head       uint64  `json:"head"`
		Applied    uint64  `json:"applied"`
		Acked      uint64  `json:"acked"`
		LagRecords uint64  `json:"lagRecords"`
		LagSeconds float64 `json:"lagSeconds"`
		CaughtUp   bool    `json:"caughtUp"`
		LastError  string  `json:"lastError"`
	} `json:"zones"`
	Peers []struct {
		URL               string  `json:"url"`
		Up                bool    `json:"up"`
		Misses            int     `json:"misses"`
		Dead              bool    `json:"dead"`
		LastProbe         string  `json:"lastProbe"`
		DownFor           float64 `json:"downForSeconds"`
		HoldDownRemaining float64 `json:"holdDownRemainingSeconds"`
	} `json:"peers"`
}

// status pretty-prints one node's per-zone replication posture.
func (c *ctlClient) status(w io.Writer, base string) error {
	var st ctlStatus
	if err := c.get(base, "/cluster/status", &st); err != nil {
		return err
	}
	fmt.Fprintf(w, "node %s\n", st.Self)
	fmt.Fprintf(w, "%-16s %-8s %6s %6s %9s %9s %6s %s\n", "ZONE", "ROLE", "EPOCH", "DRAIN", "HEAD", "LAG", "SYNCED", "NOTE")
	for _, z := range st.Zones {
		drain := "-"
		if z.Draining {
			drain = "yes"
		}
		lag := fmt.Sprintf("%d", z.LagRecords)
		if z.Role == "standby" && z.LagSeconds > 0 {
			lag = fmt.Sprintf("%d/%.1fs", z.LagRecords, z.LagSeconds)
		}
		synced := "-"
		if z.Role == "standby" {
			synced = fmt.Sprintf("%v", z.CaughtUp)
		}
		note := z.LastError
		if note == "" && z.Primary != "" {
			note = "primary=" + z.Primary
		}
		fmt.Fprintf(w, "%-16s %-8s %6d %6s %9d %9s %6s %s\n",
			z.Zone, z.Role, z.Epoch, drain, z.Head, lag, synced, note)
	}
	if len(st.Peers) > 0 {
		fmt.Fprintf(w, "\n%-28s %-6s %6s %9s %9s %s\n", "PEER", "STATE", "MISSES", "DOWN", "HOLDDOWN", "LAST PROBE")
		for _, p := range st.Peers {
			state := "up"
			switch {
			case p.Dead:
				state = "dead"
			case !p.Up:
				state = "down"
			}
			down, hold := "-", "-"
			if p.DownFor > 0 {
				down = fmt.Sprintf("%.1fs", p.DownFor)
			}
			if p.HoldDownRemaining > 0 {
				hold = fmt.Sprintf("%.1fs", p.HoldDownRemaining)
			}
			probe := p.LastProbe
			if probe == "" {
				probe = "-"
			}
			fmt.Fprintf(w, "%-28s %-6s %6d %9s %9s %s\n", p.URL, state, p.Misses, down, hold, probe)
		}
	}
	return nil
}

// ctlRoutes mirrors the /cluster/routes payload.
type ctlRoutes struct {
	Zones map[string]struct {
		Primary string `json:"primary"`
		Standby string `json:"standby"`
		Epoch   uint64 `json:"epoch"`
	} `json:"zones"`
}

// routes prints one node's learned routing table: who it believes owns
// each zone, at which fencing epoch.
func (c *ctlClient) routes(w io.Writer, base string) error {
	var r ctlRoutes
	if err := c.get(base, "/cluster/routes", &r); err != nil {
		return err
	}
	names := make([]string, 0, len(r.Zones))
	for name := range r.Zones {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-16s %6s %-28s %s\n", "ZONE", "EPOCH", "PRIMARY", "STANDBY")
	for _, name := range names {
		rt := r.Zones[name]
		standby := rt.Standby
		if standby == "" {
			standby = "-"
		}
		fmt.Fprintf(w, "%-16s %6d %-28s %s\n", name, rt.Epoch, rt.Primary, standby)
	}
	return nil
}

// discoverPrimary asks a node's routing table who owns the zone.
func (c *ctlClient) discoverPrimary(base, zone string) (string, error) {
	var r ctlRoutes
	if err := c.get(base, "/cluster/routes", &r); err != nil {
		return "", fmt.Errorf("ctl migrate: discovering the primary for %q: %w", zone, err)
	}
	rt, ok := r.Zones[zone]
	if !ok || rt.Primary == "" {
		return "", fmt.Errorf("ctl migrate: node %s does not know zone %q; pass -from explicitly", base, zone)
	}
	return rt.Primary, nil
}

// zoneOn fetches one zone's status row from a node.
func (c *ctlClient) zoneOn(base, zone string) (*ctlStatus, int, error) {
	var st ctlStatus
	if err := c.get(base, "/cluster/status", &st); err != nil {
		return nil, -1, err
	}
	for i, z := range st.Zones {
		if z.Zone == zone {
			return &st, i, nil
		}
	}
	return &st, -1, nil
}

// migrate runs the live-migration sequence: replicate to the target,
// wait for catch-up, drain the source, wait for the final records,
// promote the target, release the source. The source staying up
// through the drain is the happy path; if it dies mid-sequence the
// operator promotes the target by hand (`radloc ctl promote`) — the
// epoch bump fences the dead node out either way. A failure between
// the drain and the cutover rolls the drain back, so a botched
// migration leaves the source serving writes instead of stuck at 503.
func (c *ctlClient) migrate(w io.Writer, zone, from, to string) error {
	fmt.Fprintf(w, "migrate %s: %s -> %s\n", zone, from, to)
	if err := c.post(to, "/cluster/replicate/"+url.PathEscape(zone), map[string]string{"from": from}, nil); err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	fmt.Fprintf(w, "  replicating; waiting for catch-up\n")
	if err := c.waitSynced(zone, to); err != nil {
		return err
	}
	var dr struct {
		Head uint64 `json:"head"`
	}
	if err := c.post(from, "/cluster/drain/"+url.PathEscape(zone), map[string]bool{"draining": true}, &dr); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	undrain := func() {
		if err := c.post(from, "/cluster/drain/"+url.PathEscape(zone), map[string]bool{"draining": false}, nil); err != nil {
			fmt.Fprintf(w, "  rollback: lifting the drain on %s FAILED: %v\n    the zone refuses writes until `radloc ctl drain -off -url %s -zone %s` succeeds\n",
				from, err, from, zone)
			return
		}
		fmt.Fprintf(w, "  rollback: drain lifted on %s, writes flow to the old primary again\n", from)
	}
	fmt.Fprintf(w, "  source draining at head %d; waiting for the tail\n", dr.Head)
	if err := c.waitApplied(zone, to, dr.Head); err != nil {
		undrain()
		return err
	}
	var pr struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := c.post(to, "/cluster/promote/"+url.PathEscape(zone), nil, &pr); err != nil {
		undrain()
		return fmt.Errorf("promote: %w", err)
	}
	fmt.Fprintf(w, "  target promoted at epoch %d\n", pr.Epoch)
	// Best-effort: the old owner may already be gone; promotion has
	// fenced it regardless.
	if err := c.post(from, "/cluster/release/"+url.PathEscape(zone), map[string]string{"to": to}, nil); err != nil {
		fmt.Fprintf(w, "  release on %s failed (safe to ignore if the node is down): %v\n", from, err)
	} else {
		fmt.Fprintf(w, "  source released\n")
	}
	fmt.Fprintf(w, "migrated %s to %s\n", zone, to)
	return nil
}

// waitSynced polls the target until the zone reports caught-up.
func (c *ctlClient) waitSynced(zone, on string) error {
	for {
		st, i, err := c.zoneOn(on, zone)
		if err == nil && i >= 0 && st.Zones[i].CaughtUp {
			return nil
		}
		if time.Now().After(c.deadline) {
			return fmt.Errorf("timed out waiting for %s on %s to catch up", zone, on)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// waitApplied polls the target until its applied offset reaches head.
func (c *ctlClient) waitApplied(zone, on string, head uint64) error {
	for {
		st, i, err := c.zoneOn(on, zone)
		if err == nil && i >= 0 && st.Zones[i].Applied >= head {
			return nil
		}
		if time.Now().After(c.deadline) {
			return fmt.Errorf("timed out waiting for %s on %s to reach offset %d", zone, on, head)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
