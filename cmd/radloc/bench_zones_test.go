package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestParseZoneCounts(t *testing.T) {
	got, err := parseZoneCounts("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseZoneCounts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "two", "4,"} {
		if _, err := parseZoneCounts(bad); err == nil {
			t.Errorf("parseZoneCounts(%q) accepted", bad)
		}
	}
}

func TestBenchZonesReport(t *testing.T) {
	var out bytes.Buffer
	if err := benchCmd([]string{"-zones", "1,2", "-particles", "200", "-steps", "1", "-sensors", "16"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep zoneBenchReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bench -zones did not emit JSON: %v\n%s", err, out.String())
	}
	if len(rep.Results) != 2 || rep.Results[0].Zones != 1 || rep.Results[1].Zones != 2 {
		t.Fatalf("results = %+v", rep.Results)
	}
	for _, r := range rep.Results {
		if r.Readings != r.Zones*rep.Steps*rep.Sensors {
			t.Errorf("zones=%d readings = %d, want %d", r.Zones, r.Readings, r.Zones*rep.Steps*rep.Sensors)
		}
		if r.BaselineReadingsPerSec <= 0 || r.ShardedReadingsPerSec <= 0 {
			t.Errorf("zones=%d non-positive throughput: %+v", r.Zones, r)
		}
	}
}
