package main

import (
	"strings"
	"testing"
)

func TestAblateErrors(t *testing.T) {
	if _, err := execute(t, "ablate"); err == nil {
		t.Error("missing experiment accepted")
	}
	if _, err := execute(t, "ablate", "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAblateFusionRange(t *testing.T) {
	out, err := execute(t, "ablate", "fusion-range", "-steps", "2", "-reps", "1", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fusion_range,mean_err,false_pos,false_neg") {
		t.Errorf("header wrong:\n%s", firstLine(out))
	}
	for _, row := range []string{"\n10,", "\n28,", "\ndisabled,"} {
		if !strings.Contains(out, row) {
			t.Errorf("missing sweep row %q", row)
		}
	}
}

func TestAblateEstimator(t *testing.T) {
	out, err := execute(t, "ablate", "estimator", "-steps", "3", "-reps", "1", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\nmean-shift,") || !strings.Contains(out, "\ncentroid,") {
		t.Errorf("estimator rows missing:\n%s", out)
	}
}

func TestAblateScaleK(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario B sweep is slow")
	}
	out, err := execute(t, "ablate", "scale-k", "-steps", "2", "-reps", "1", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"\n1,", "\n5,", "\n9,"} {
		if !strings.Contains(out, row) {
			t.Errorf("missing K row %q:\n%s", row, out)
		}
	}
	if !strings.Contains(out, "sec_per_trial") {
		t.Error("timing column missing")
	}
}

func TestAblateFaults(t *testing.T) {
	out, err := execute(t, "ablate", "faults", "-steps", "8", "-reps", "1", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fault_prob,defended_err,undefended_err,defended_fn,undefended_fn,mean_quarantined") {
		t.Errorf("header wrong:\n%s", firstLine(out))
	}
	for _, row := range []string{"\n0.000,", "\n0.100,", "\n0.300,"} {
		if !strings.Contains(out, row) {
			t.Errorf("missing sweep row %q:\n%s", row, out)
		}
	}
	// At p = 0 no sensor is faulted, so both engines consume the
	// identical trusted stream and the columns must coincide.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "0.000,") {
			f := strings.Split(line, ",")
			if f[1] != f[2] {
				t.Errorf("p=0 columns differ: defended %s vs undefended %s", f[1], f[2])
			}
		}
	}
}

func TestAblateTransport(t *testing.T) {
	out, err := execute(t, "ablate", "transport", "-steps", "4", "-reps", "1", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "loss,partition_s,spool,delivered_frac,mean_err,false_neg,duplicates") {
		t.Errorf("header wrong:\n%s", firstLine(out))
	}
	// Spooled delivery must hand over every reading in every cell of
	// the sweep — partitions cost latency, never data.
	for _, line := range strings.Split(out, "\n") {
		f := strings.Split(line, ",")
		if len(f) < 4 || f[2] != "on" {
			continue
		}
		if f[3] != "1.000" {
			t.Errorf("spooled delivered_frac = %s in row %q, want 1.000", f[3], line)
		}
	}
	if !strings.Contains(out, ",off,") {
		t.Error("unspooled rows missing")
	}
}

func TestDiagnoseCommand(t *testing.T) {
	out, err := execute(t, "diagnose", "-scenario", "A", "-obstacles", "-steps", "8", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sensor,x,y,expected_cpm,observed_cpm,z") {
		t.Errorf("header missing:\n%s", firstLine(out))
	}
	if !strings.Contains(out, "RMS standardized residual") {
		t.Error("summary missing")
	}
	// With the hidden U-obstacle present, shadowed sensors must be found.
	if !strings.Contains(out, "read LESS") {
		t.Error("hidden obstacle not flagged")
	}
	if _, err := execute(t, "diagnose", "-scenario", "Z"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestDiagnoseCleanModel(t *testing.T) {
	out, err := execute(t, "diagnose", "-scenario", "A", "-obstacles=false", "-steps", "8", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no evidence of unmodeled obstacles") && strings.Count(out, "read LESS") > 0 {
		// A clean model should usually report no shadows; tolerate rare
		// statistical flags but require the happy-path text to exist in
		// at least the obstacle-free run most of the time.
		t.Logf("clean run flagged shadows (possible but rare):\n%s", out)
	}
}

func TestRecordCommand(t *testing.T) {
	out, err := execute(t, "record", "-scenario", "A", "-strength", "50", "-steps", "2", "-seed", "4")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 72 {
		t.Fatalf("lines = %d, want 72 (2 steps × 36 sensors)", len(lines))
	}
	if !strings.Contains(lines[0], `"sensorId":`) || !strings.Contains(lines[0], `"cpm":`) {
		t.Errorf("record format wrong: %s", lines[0])
	}
	if _, err := execute(t, "record", "-scenario", "Z"); err == nil {
		t.Error("unknown scenario accepted")
	}
}
