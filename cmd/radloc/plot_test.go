package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSampleCSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fig.csv")
	content := `# Sample figure
label,step,err_source1,err_source2,false_pos
10,0,5.0,6.0,2
10,1,2.0,3.0,1
50,0,4.0,4.5,3
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPlotGnuplotDefaults(t *testing.T) {
	path := writeSampleCSV(t)
	out, err := execute(t, "plot", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`set title "Sample figure"`,
		"$data << EOD",
		"err_source1",
		"err_source2",
		"with linespoints",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPlotWhereFilter(t *testing.T) {
	path := writeSampleCSV(t)
	out, err := execute(t, "plot", path, "-where", "10", "-format", "markdown")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "| 50 |") {
		t.Error("filter kept label-50 rows")
	}
	if !strings.Contains(out, "| 10 | 0 |") {
		t.Errorf("filtered rows missing:\n%s", out)
	}
}

func TestPlotExplicitColumns(t *testing.T) {
	path := writeSampleCSV(t)
	out, err := execute(t, "plot", path, "-y", "false_pos")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `title "false_pos"`) {
		t.Errorf("explicit column missing:\n%s", out)
	}
}

func TestPlotErrors(t *testing.T) {
	if _, err := execute(t, "plot"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := execute(t, "plot", "/nonexistent.csv"); err == nil {
		t.Error("unreadable file accepted")
	}
	path := writeSampleCSV(t)
	if _, err := execute(t, "plot", path, "-format", "pdf"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := execute(t, "plot", path, "-y", "bogus"); err == nil {
		t.Error("unknown column accepted")
	}
	// A CSV with no data lines.
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := execute(t, "plot", empty); err == nil {
		t.Error("empty csv accepted")
	}
}
