package main

import (
	"flag"
	"fmt"
	"io"
	"math"

	"radloc"
	"radloc/internal/diagnose"
	"radloc/internal/rng"
)

// diagnoseCmd runs a scenario, localizes, and then performs the
// posterior-predictive check: sensors whose counts the recovered
// sources cannot explain are reported, with strongly negative residuals
// marking the shadows of unmodeled obstacles
// (`radloc diagnose [-scenario A] [-obstacles]`).
func diagnoseCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	var (
		name      = fs.String("scenario", "A", "scenario: A, A3 or B")
		strength  = fs.Float64("strength", 50, "source strength for A/A3 (µCi)")
		obstacles = fs.Bool("obstacles", true, "include (hidden) obstacles in the ground truth")
		zThresh   = fs.Float64("z", 3, "|Z| threshold for flagging a sensor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	var sc radloc.Scenario
	switch *name {
	case "A", "a":
		sc = radloc.ScenarioA(*strength, *obstacles)
	case "A3", "a3":
		sc = radloc.ScenarioAThree(*strength)
	case "B", "b":
		sc = radloc.ScenarioB(*obstacles)
	default:
		return fmt.Errorf("diagnose: unknown scenario %q", *name)
	}
	sc.Params.TimeSteps = cf.steps

	// Run the localizer while aggregating per-sensor counts.
	loc, err := radloc.NewLocalizer(radloc.LocalizerConfig(sc))
	if err != nil {
		return err
	}
	stream := rng.NewNamed(cf.seed, "diagnose/measure")
	totals := make([]diagnose.Reading, len(sc.Sensors))
	for i, sen := range sc.Sensors {
		totals[i] = diagnose.Reading{Sensor: sen}
	}
	for step := 0; step < sc.Params.TimeSteps; step++ {
		for i, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, sc.Obstacles, step)
			loc.Ingest(sen, m.CPM)
			totals[i].TotalCPM += m.CPM
			totals[i].Count++
		}
	}
	ests := loc.Estimates()
	rep, err := radloc.Diagnose(totals, ests, *zThresh)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "# posterior-predictive check, scenario %s (%d steps)\n", sc.Name, sc.Params.TimeSteps)
	fmt.Fprintf(w, "# recovered %d sources; RMS standardized residual %.2f (≈1 means the free-space model explains the data)\n",
		len(ests), rep.RMSZ)
	for _, e := range ests {
		fmt.Fprintf(w, "#   %v\n", e)
	}
	fmt.Fprintln(w, "sensor,x,y,expected_cpm,observed_cpm,z")
	for _, r := range rep.Residuals {
		fmt.Fprintf(w, "%d,%.1f,%.1f,%.2f,%.2f,%.2f\n", r.SensorID, r.Pos.X, r.Pos.Y, r.Expected, r.Observed, r.Z)
	}
	shadowed := rep.ShadowedSensors(*zThresh)
	if len(shadowed) > 0 {
		fmt.Fprintf(w, "# %d sensors read LESS than the sources should produce — unmodeled shielding between them and a source:\n", len(shadowed))
		for _, r := range shadowed {
			fmt.Fprintf(w, "#   sensor %d at (%.0f,%.0f): expected %.1f, observed %.1f (Z=%.1f)\n",
				r.SensorID, r.Pos.X, r.Pos.Y, r.Expected, r.Observed, r.Z)
		}
	} else if !math.IsNaN(rep.RMSZ) {
		fmt.Fprintln(w, "# no shadowed sensors — no evidence of unmodeled obstacles")
	}
	return nil
}
