package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
	"strings"
	"time"

	"radloc"
	"radloc/internal/core"
	"radloc/internal/obs"
	"radloc/internal/rng"
)

// benchCmd profiles the filter on this host: it runs one timing
// configuration (the Table I layouts) with the localizer's per-stage
// instrumentation on and emits a CSV of stage latency quantiles read
// from the same radloc_filter_stage_seconds histograms radlocd serves
// on /metrics. With -profile it also writes CPU and heap profiles
// next to the result CSV for `go tool pprof`:
//
//	radloc bench -particles 5000 -sensors 36 -steps 10 -out bench.csv -profile
//	go tool pprof bench.cpu.pprof
//
// With -zones it instead benchmarks the sharded ingest runtime:
// for each zone count it drives the same workload through one shared
// engine (every feeder contending on its lock) and through that many
// single-writer zones, and emits a JSON throughput report:
//
//	radloc bench -zones 1,4,16 -particles 2000 -steps 6 -out BENCH_zones.json
//
// With -core it runs the filter-core throughput benchmark per the
// benchmarking policy (canonical task, N≥5 runs, machine-readable
// report) and emits BENCH_core.json; -against embeds a previous
// report's numbers as the before side, -check gates on regression
// against a committed report:
//
//	radloc bench -core -particles 2000 -steps 6 -runs 7 -out BENCH_core.json
//	radloc bench -core -check BENCH_core.json
func benchCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		particles = fs.Int("particles", 5000, "particle population size")
		sensors   = fs.Int("sensors", 36, "sensor count: ≤36 = scenario A layout, else scenario B (196)")
		steps     = fs.Int("steps", 10, "time steps (each sensor reports once per step)")
		seed      = fs.Uint64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "mean-shift worker count (0 = GOMAXPROCS)")
		out       = fs.String("out", "", "output CSV (default stdout); profiles are written next to it")
		profile   = fs.Bool("profile", false, "write CPU (<base>.cpu.pprof) and heap (<base>.heap.pprof) profiles")
		zones     = fs.String("zones", "", "comma-separated zone counts (e.g. 1,4,16): run the sharded-ingest throughput benchmark instead of the filter stage bench")
		coreBench = fs.Bool("core", false, "run the filter-core throughput benchmark (N timed runs of the canonical engine task) and emit a BENCH_core.json report")
		runs      = fs.Int("runs", 7, "with -core: timed repetitions of the canonical task (policy wants ≥5)")
		against   = fs.String("against", "", "with -core: previous report whose numbers become this report's baseline (before/after in one file)")
		check     = fs.String("check", "", "with -core: committed report to gate against — fail on a >20% median readings/sec regression, write no report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coreBench {
		// -core defaults match the zones benchmark's canonical cell so
		// the reports stay comparable; -particles/-steps keep their
		// stage-bench defaults unless set.
		p, st := *particles, *steps
		if !flagWasSet(fs, "particles") {
			p = 2000
		}
		if !flagWasSet(fs, "steps") {
			st = 6
		}
		w, closeFn, err := (&commonFlags{out: *out}).open(stdout)
		if err != nil {
			return err
		}
		defer func() { _ = closeFn() }()
		return benchCore(p, *sensors, st, *runs, *workers, *seed, *against, *check, w)
	}
	if *zones != "" {
		counts, err := parseZoneCounts(*zones)
		if err != nil {
			return err
		}
		w, closeFn, err := (&commonFlags{out: *out}).open(stdout)
		if err != nil {
			return err
		}
		defer func() { _ = closeFn() }()
		return benchZones(counts, *particles, *sensors, *steps, *seed, w)
	}

	sc := scenarioForSensors(*sensors)
	sc.Params.NumParticles = *particles
	reg := obs.NewRegistry()
	cfg := radloc.LocalizerConfig(sc)
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Metrics = reg
	loc, err := radloc.NewLocalizer(cfg)
	if err != nil {
		return err
	}

	base := "bench"
	if *out != "" {
		base = strings.TrimSuffix(*out, ".csv")
	}
	if *profile {
		f, err := os.Create(base + ".cpu.pprof")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := runtimepprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer runtimepprof.StopCPUProfile()
	}

	stream := rng.NewNamed(*seed, "bench/measure")
	t0 := time.Now()
	for step := 0; step < *steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, sc.Obstacles, step)
			loc.Ingest(sen, m.CPM)
		}
		_ = loc.Estimates()
	}
	elapsed := time.Since(t0)

	if *profile {
		runtime.GC() // flush unreachable allocations so the heap profile shows live bytes
		hf, err := os.Create(base + ".heap.pprof")
		if err != nil {
			return err
		}
		if err := runtimepprof.WriteHeapProfile(hf); err != nil {
			hf.Close()
			return err
		}
		if err := hf.Close(); err != nil {
			return err
		}
	}

	w, closeFn, err := (&commonFlags{out: *out}).open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()
	fmt.Fprintf(w, "# radloc bench: %d particles, %d sensors, %d steps, workers=%d, host %d CPUs, wall %.3fs\n",
		*particles, len(sc.Sensors), *steps, *workers, runtime.NumCPU(), elapsed.Seconds())
	fmt.Fprintln(w, "stage,count,total_seconds,mean_seconds,p50_seconds,p95_seconds,p99_seconds")
	for _, stage := range core.FilterStages {
		s := core.StageHistogram(reg, stage).Summary()
		mean := 0.0
		if s.Count > 0 {
			mean = s.Sum / float64(s.Count)
		}
		fmt.Fprintf(w, "%s,%d,%.6f,%.9f,%.9f,%.9f,%.9f\n",
			stage, s.Count, s.Sum, mean, s.P50, s.P95, s.P99)
	}
	return nil
}
