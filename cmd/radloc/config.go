package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"radloc"
	"radloc/internal/config"
	"radloc/internal/render"
)

// configCmd emits built-in scenarios as editable JSON and validates
// user-written files (`radloc config <emit|check> ...`).
func configCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("config: want `emit <A|A3|B|C>` or `check <file>`\n%s", usage)
	}
	switch args[0] {
	case "emit":
		return configEmit(args[1:], stdout)
	case "check":
		return configCheck(args[1:], stdout)
	default:
		return fmt.Errorf("config: unknown subcommand %q", args[0])
	}
}

func configEmit(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("config emit: missing scenario name (A, A3, B or C)")
	}
	name := args[0]
	fs := flag.NewFlagSet("config emit", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	strength := fs.Float64("strength", 10, "source strength for A/A3 (µCi)")
	obstacles := fs.Bool("obstacles", true, "include obstacles")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()

	var sc radloc.Scenario
	switch name {
	case "A", "a":
		sc = radloc.ScenarioA(*strength, *obstacles)
	case "A3", "a3":
		sc = radloc.ScenarioAThree(*strength)
	case "B", "b":
		sc = radloc.ScenarioB(*obstacles)
	case "C", "c":
		sc = radloc.ScenarioC(*obstacles, cf.seed)
	default:
		return fmt.Errorf("config emit: unknown scenario %q", name)
	}
	data, err := config.SaveScenario(sc)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

func configCheck(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("config check: missing file")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	sc, err := config.LoadScenario(data)
	if err != nil {
		return fmt.Errorf("config check: %w", err)
	}
	fmt.Fprintf(stdout, "ok: scenario %q — %d sensors, %d sources, %d obstacles, %d particles, %d steps\n",
		sc.Name, len(sc.Sensors), len(sc.Sources), len(sc.Obstacles),
		sc.Params.NumParticles, sc.Params.TimeSteps)
	return nil
}

// loadScenarioFile reads a JSON scenario from disk for `run -config`.
func loadScenarioFile(path string) (radloc.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return radloc.Scenario{}, err
	}
	return config.LoadScenario(data)
}

// writeSVG renders the layout of a scenario as SVG.
func writeSVG(w io.Writer, sc radloc.Scenario) error {
	_, err := io.WriteString(w, render.SVG(sc, nil, nil, render.SVGOptions{}))
	return err
}
