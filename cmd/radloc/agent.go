package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"radloc/internal/clock"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/transport"
	"radloc/internal/wal"
)

// agentCmd is the field side of the deployment pipeline: it tails an
// NDJSON measurement stream (a file or stdin — typically `radloc
// record` output or a real sensor's feed) and delivers it to a
// radlocd fusion center with retries, backoff, circuit breaking and
// optional on-disk store-and-forward:
//
//	radloc record -scenario A | radloc agent -url http://127.0.0.1:8080 -spool /var/spool/radloc
//
// With -zone the agent addresses a named fusion zone on a sharded
// server (POST /zones/{zone}/measurements); without it readings land
// in the server's default zone over the classic route.
//
// With -spool every reading is journaled before delivery, so a
// partition, a server restart or an agent crash costs nothing:
// undelivered readings are re-sent on reconnect or next start, and
// the server's sequence gate suppresses any redelivered prefix —
// exactly-once in effect over an at-least-once wire. Without -spool
// readings live only in memory and a batch is lost once its delivery
// attempts are exhausted.
//
// SIGUSR1 dumps the delivery counters to stderr mid-flight; the same
// summary is printed on exit.
func agentCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("agent", flag.ContinueOnError)
	var (
		url       = fs.String("url", "", "radlocd base URL, e.g. http://127.0.0.1:8080 (required)")
		zoneName  = fs.String("zone", "", "fusion zone to deliver into (empty = the server's default zone)")
		in        = fs.String("in", "", "NDJSON input file (default stdin)")
		spoolDir  = fs.String("spool", "", "store-and-forward spool directory (empty = in-memory only)")
		spoolMax  = fs.Int("spool-max", 1<<20, "spool capacity in readings; overflow sheds the newest")
		spoolMaxB = fs.Int64("max-spool-bytes", 0, "spool capacity in on-disk bytes (0 = unbounded); overflow sheds the OLDEST segments to protect the disk")
		fsync     = fs.String("fsync", "batch", "spool fsync policy: always, batch or never")
		batch     = fs.Int("batch", 64, "readings per POST")
		attemptTO = fs.Duration("attempt-timeout", 5*time.Second, "per-attempt request deadline")
		attempts  = fs.Int("max-attempts", 0, "delivery attempts per batch before dropping it (0 = retry forever)")
		base      = fs.Duration("backoff-base", 200*time.Millisecond, "retry backoff base delay")
		cap_      = fs.Duration("backoff-cap", 10*time.Second, "retry backoff ceiling")
		seed      = fs.Uint64("seed", 1, "backoff jitter seed")
		alts      = fs.String("alt-urls", "", "comma-separated alternate cluster node base URLs; when the endpoint stops answering, their /cluster/routes tables re-aim the agent at the zone's new primary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return errors.New("agent: missing -url (the radlocd base URL)")
	}

	// One registry for the whole agent: the client's delivery counters
	// and the spool's occupancy/WAL metrics land on it, and the SIGUSR1
	// dump reads the same collectors — a single source of truth.
	reg := obs.NewRegistry()
	client, err := transport.NewClient(transport.Options{
		URL:            *url,
		Zone:           *zoneName,
		Clock:          clock.Real{},
		RNG:            rng.NewNamed(*seed, "radloc/agent"),
		BatchSize:      *batch,
		AttemptTimeout: *attemptTO,
		MaxAttempts:    *attempts,
		Backoff:        transport.Backoff{Base: *base, Cap: *cap_},
		Metrics:        reg,
		AltURLs:        splitCSV(*alts),
	})
	if err != nil {
		return err
	}
	var sp *transport.Spool
	if *spoolDir != "" {
		pol, err := wal.ParseFsyncPolicy(*fsync)
		if err != nil {
			return err
		}
		sp, err = transport.OpenSpool(*spoolDir, transport.SpoolOptions{MaxPending: *spoolMax, MaxBytes: *spoolMaxB, Fsync: pol, Metrics: reg})
		if err != nil {
			return err
		}
		defer sp.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// SIGUSR1 → delivery counters on stderr, without disturbing the run.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-usr1:
				dumpAgentSummary(os.Stderr, client, sp, 0)
			case <-done:
				return
			}
		}
	}()

	// Open the input only after the signal handlers are live: opening a
	// FIFO blocks until a writer appears, and an agent parked there must
	// already answer SIGUSR1 instead of dying to it.
	input := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		input = f
	}

	malformed, err := pumpAgent(ctx, client, sp, input)
	dumpAgentSummary(stdout, client, sp, malformed)
	if errors.Is(err, context.Canceled) && sp != nil {
		// Interrupted with a spool: nothing is lost, the next start
		// resumes from the ack cursor.
		err = nil
	}
	return err
}

// splitCSV parses a comma-separated flag value, tolerating blanks.
func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// pumpAgent runs the read→deliver loop. With a spool every reading is
// journaled first and delivery drains the spool (including anything
// left over from a previous run); without one, readings batch in
// memory and are lost if their delivery fails permanently.
func pumpAgent(ctx context.Context, c *transport.Client, sp *transport.Spool, r io.Reader) (malformed uint64, err error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var buf []transport.Reading
	flush := func() error {
		if sp != nil {
			_, err := c.Drain(ctx, sp)
			if errors.Is(err, transport.ErrGaveUp) {
				// The batch stays spooled (never acked): keep reading
				// input and try again at the next drain — store-and-
				// forward means an unreachable server costs latency,
				// not data.
				err = nil
			}
			return err
		}
		if len(buf) == 0 {
			return nil
		}
		err := c.Send(ctx, buf)
		if errors.Is(err, transport.ErrRefused) || errors.Is(err, transport.ErrGaveUp) {
			err = nil // counted in Stats().Dropped; keep the stream moving
		}
		buf = buf[:0]
		return err
	}

	for scanner.Scan() {
		if err := ctx.Err(); err != nil {
			return malformed, err
		}
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var m transport.Reading
		if err := json.Unmarshal(line, &m); err != nil {
			malformed++
			continue
		}
		if sp != nil {
			if _, err := sp.Append(m); err != nil {
				return malformed, err
			}
			if sp.Pending() < c.BatchSize() {
				continue
			}
		} else {
			buf = append(buf, m)
			if len(buf) < c.BatchSize() {
				continue
			}
		}
		if err := flush(); err != nil {
			return malformed, err
		}
	}
	if err := scanner.Err(); err != nil {
		return malformed, err
	}
	return malformed, flush()
}

// agentSummary is the exit/SIGUSR1 report: the client's delivery
// counters plus the agent's own bookkeeping.
type agentSummary struct {
	Delivery     transport.Stats `json:"delivery"`
	Malformed    uint64          `json:"malformed,omitempty"`
	SpoolPending int             `json:"spoolPending,omitempty"`
	SpoolShed    uint64          `json:"spoolShed,omitempty"`
}

func dumpAgentSummary(w io.Writer, c *transport.Client, sp *transport.Spool, malformed uint64) {
	s := agentSummary{Delivery: c.Stats(), Malformed: malformed}
	if sp != nil {
		s.SpoolPending = sp.Pending()
		s.SpoolShed = sp.Shed()
	}
	blob, err := json.Marshal(s)
	if err != nil {
		fmt.Fprintln(w, "agent: summary:", err)
		return
	}
	fmt.Fprintln(w, string(blob))
}
