package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"radloc/internal/fusion"
	"radloc/internal/rng"
	"radloc/internal/sim"
	"radloc/internal/zone"
)

// zoneBenchResult is one row of the sharded-ingest benchmark: the
// same workload driven two ways — through one shared engine with
// every feeder contending on its lock (the pre-sharding daemon), and
// through N single-writer zones with one feeder each (the zone
// manager). Speedup is sharded over baseline throughput.
type zoneBenchResult struct {
	Zones                  int     `json:"zones"`
	Feeders                int     `json:"feeders"`
	Readings               int     `json:"readings"`
	BaselineSeconds        float64 `json:"baselineSeconds"`
	BaselineReadingsPerSec float64 `json:"baselineReadingsPerSec"`
	ShardedSeconds         float64 `json:"shardedSeconds"`
	ShardedReadingsPerSec  float64 `json:"shardedReadingsPerSec"`
	Speedup                float64 `json:"speedup"`
}

// zoneBenchReport is the whole benchmark run. CPUs matters when
// reading the numbers: the sharded speedup comes from zones applying
// batches in parallel, so it scales with cores — on a single-core
// host baseline and sharded serialize onto the same CPU and speedup
// sits near 1× regardless of zone count.
type zoneBenchReport struct {
	Particles int               `json:"particles"`
	Sensors   int               `json:"sensors"`
	Steps     int               `json:"steps"`
	CPUs      int               `json:"cpus"`
	Results   []zoneBenchResult `json:"results"`
}

// parseZoneCounts parses the -zones flag: comma-separated positive
// zone counts, e.g. "1,4,16".
func parseZoneCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bench: bad -zones entry %q (want positive integers, e.g. 1,4,16)", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// benchZones runs the sharded-ingest throughput comparison for each
// zone count and writes the report as indented JSON.
func benchZones(counts []int, particles, sensors, steps int, seed uint64, w io.Writer) error {
	sc := scenarioForSensors(sensors)
	sc.Params.NumParticles = particles
	build := func() (*fusion.Engine, error) {
		cfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
		cfg.Localizer.Seed = seed
		return fusion.NewEngine(cfg)
	}

	// One precomputed batch stream, shared by every feeder: the
	// benchmark times ingest, not measurement synthesis. Readings are
	// unsequenced (seq 0) so both sides take the direct filter path.
	stream := rng.NewNamed(seed, "bench/zones")
	const batchSize = 16
	var batches [][]fusion.Meas
	var cur []fusion.Meas
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, sc.Obstacles, step)
			cur = append(cur, fusion.Meas{SensorID: sen.ID, CPM: m.CPM, Step: step})
			if len(cur) == batchSize {
				batches = append(batches, cur)
				cur = nil
			}
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	perFeeder := steps * len(sc.Sensors)

	report := zoneBenchReport{
		Particles: particles, Sensors: len(sc.Sensors), Steps: steps,
		CPUs: runtime.NumCPU(),
	}
	for _, n := range counts {
		shared, err := build()
		if err != nil {
			return err
		}
		baseline := feedSharedEngine(shared, n, batches)

		man, err := zone.NewManager(zone.Options{
			Factory: func(name string) (zone.Resources, error) {
				e, err := build()
				if err != nil {
					return zone.Resources{}, err
				}
				return zone.Resources{Engine: e}, nil
			},
			MaxZones: n,
			Mailbox:  64,
		})
		if err != nil {
			return err
		}
		sharded, err := feedZonedEngines(man, n, batches)
		if cerr := man.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}

		total := n * perFeeder
		r := zoneBenchResult{
			Zones:           n,
			Feeders:         n,
			Readings:        total,
			BaselineSeconds: baseline.Seconds(),
			ShardedSeconds:  sharded.Seconds(),
		}
		r.BaselineReadingsPerSec = float64(total) / baseline.Seconds()
		r.ShardedReadingsPerSec = float64(total) / sharded.Seconds()
		r.Speedup = r.ShardedReadingsPerSec / r.BaselineReadingsPerSec
		report.Results = append(report.Results, r)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// feedSharedEngine is the single-mutex baseline: feeders goroutines
// all submit their batch stream to one engine, contending on its lock.
func feedSharedEngine(e *fusion.Engine, feeders int, batches [][]fusion.Meas) time.Duration {
	ctx := context.Background()
	var wg sync.WaitGroup
	t0 := time.Now()
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range batches {
				_, _ = e.Submit(ctx, b)
			}
		}()
	}
	wg.Wait()
	return time.Since(t0)
}

// feedZonedEngines is the sharded run: one feeder per zone, each
// submitting the same batch stream through the manager to its own
// single-writer zone. Submission is synchronous (one batch in flight
// per feeder), so the mailboxes never backpressure and the measured
// cost is the event-loop hop plus the uncontended engine work.
func feedZonedEngines(man *zone.Manager, feeders int, batches [][]fusion.Meas) (time.Duration, error) {
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, feeders)
	t0 := time.Now()
	for f := 0; f < feeders; f++ {
		name := fmt.Sprintf("z%d", f)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range batches {
				if _, err := man.Submit(ctx, name, b); err != nil {
					errs <- fmt.Errorf("zone %s: %w", name, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	return elapsed, <-errs
}
