package main

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"time"

	"radloc"
	"radloc/internal/rng"
)

// tableCmd dispatches `radloc table <n>`.
func tableCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 || args[0] != "1" {
		return fmt.Errorf("table: only table 1 exists in the paper\n%s", usage)
	}
	fs := flag.NewFlagSet("table 1", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	var steps int
	fs.IntVar(&steps, "timesteps", 3, "time steps to time (per configuration)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, closeFn, err := cf.open(stdout)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()
	return table1(w, cf, steps)
}

// table1 reproduces Table I: mean execution time per iteration for
// particle counts {2000, 5000, 15000} × sensor counts {36, 196},
// swept over worker counts in place of the paper's 4- and 24-core
// machines. An "iteration" is one measurement ingest; the estimation
// (mean-shift) cost is amortized per iteration as in the paper, where
// estimates are refreshed as measurements arrive.
func table1(w io.Writer, cf commonFlags, steps int) error {
	workerSweep := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerSweep = append(workerSweep, n)
	}
	fmt.Fprintf(w, "# Table I: mean execution time per iteration (seconds); host has %d CPUs\n", runtime.NumCPU())
	fmt.Fprintln(w, "particles,sensors,workers,sec_per_iteration,sec_ingest_only,sec_estimate_amortized")

	for _, particles := range []int{2000, 5000, 15000} {
		for _, sensors := range []int{36, 196} {
			for _, workers := range workerSweep {
				ingest, estimate, iters, err := timeConfig(particles, sensors, workers, steps, cf.seed)
				if err != nil {
					return err
				}
				perIter := (ingest + estimate) / time.Duration(iters)
				fmt.Fprintf(w, "%d,%d,%d,%.6f,%.6f,%.6f\n",
					particles, sensors, workers,
					perIter.Seconds(),
					(ingest / time.Duration(iters)).Seconds(),
					(estimate / time.Duration(iters)).Seconds(),
				)
			}
		}
	}
	return nil
}

// timeConfig runs one timing configuration and returns total ingest
// time, total estimation time, and the iteration count.
func timeConfig(particles, sensors, workers, steps int, seed uint64) (time.Duration, time.Duration, int, error) {
	sc := scenarioForSensors(sensors)
	sc.Params.NumParticles = particles
	cfg := radloc.LocalizerConfig(sc)
	cfg.Seed = seed
	cfg.Workers = workers
	loc, err := radloc.NewLocalizer(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	stream := rng.NewNamed(seed, "table1/measure")

	var ingest, estimate time.Duration
	iters := 0
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, sc.Obstacles, step)
			t0 := time.Now()
			loc.Ingest(sen, m.CPM)
			ingest += time.Since(t0)
			iters++
		}
		// The paper computes estimates each iteration; we refresh once
		// per sensor round and amortize (same asymptotic accounting,
		// dominated by mean-shift either way).
		t0 := time.Now()
		_ = loc.Estimates()
		estimate += time.Since(t0)
	}
	return ingest, estimate, iters, nil
}

// scenarioForSensors returns the paper's small (36-sensor) or large
// (196-sensor) timing layout.
func scenarioForSensors(sensors int) radloc.Scenario {
	if sensors <= 36 {
		return radloc.ScenarioA(50, false)
	}
	return radloc.ScenarioB(true)
}
