package radloc

import (
	"io"
	"time"

	"radloc/internal/config"
	"radloc/internal/core"
	"radloc/internal/deploy"
	"radloc/internal/detect"
	"radloc/internal/diagnose"
	"radloc/internal/eval"
	"radloc/internal/fusion"
	"radloc/internal/isotope"
	"radloc/internal/mobile"
	"radloc/internal/render"
	"radloc/internal/replay"
	"radloc/internal/rng"
	"radloc/internal/sensor"
	"radloc/internal/track"
)

// Movement models (the paper's F_movement prediction hook, Section V-B).
type (
	// MovementModel predicts a hypothesis' next state each iteration.
	MovementModel = core.MovementModel
	// RandomWalk diffuses positions with a per-iteration Gaussian.
	RandomWalk = core.RandomWalk
	// ConstantVelocity drifts positions by a fixed vector per iteration.
	ConstantVelocity = core.ConstantVelocity
)

// Detection (SPRT alarms that gate localization).
type (
	// SPRT is a per-sensor sequential presence test.
	SPRT = detect.SPRT
	// SPRTConfig parameterizes a sequential test.
	SPRTConfig = detect.Config
	// DetectionMonitor fuses per-sensor tests into a network alarm.
	DetectionMonitor = detect.Monitor
	// Decision is the state of a sequential test.
	Decision = detect.Decision
)

// Sequential-test decisions.
const (
	Undecided      = detect.Undecided
	SourcePresent  = detect.SourcePresent
	BackgroundOnly = detect.BackgroundOnly
)

// NewSPRT builds a per-sensor sequential presence test.
func NewSPRT(cfg SPRTConfig) (*SPRT, error) { return detect.NewSPRT(cfg) }

// NewDetectionMonitor builds one SPRT per sensor config; the alarm
// raises when quorum sensors decide SourcePresent.
func NewDetectionMonitor(cfgs []SPRTConfig, quorum int) (*DetectionMonitor, error) {
	return detect.NewMonitor(cfgs, quorum)
}

// Deployment utilities.

// KNearestFusionRanges derives per-sensor fusion ranges from local
// sensor density (factor × distance to the k-th nearest neighbour) —
// the paper's "within fusion range of a handful of sensors" rule for
// irregular deployments.
func KNearestFusionRanges(sensors []Sensor, k int, factor float64) ([]float64, error) {
	return deploy.KNearestRanges(sensors, k, factor)
}

// FusionRangeFunc adapts a per-sensor range table to the Config's
// FusionRangeFor hook.
func FusionRangeFunc(ranges []float64) func(sensorID int) float64 {
	return deploy.RangeFunc(ranges)
}

// CoverageStats quantifies how many sensors cover each point of the
// area under given fusion ranges.
type CoverageStats = deploy.CoverageStats

// FusionCoverage samples the bounds on a res×res lattice and reports
// covering-sensor statistics.
func FusionCoverage(sensors []Sensor, ranges []float64, bounds Rect, res int) CoverageStats {
	return deploy.Coverage(sensors, ranges, bounds, res)
}

// HexSensors places sensors on a hexagonal lattice.
func HexSensors(bounds Rect, spacing, efficiency, background float64) []Sensor {
	return deploy.HexGrid(bounds, spacing, efficiency, background)
}

// JitteredGridSensors perturbs a uniform grid by up to ±jitter per axis
// (deterministic in seed).
func JitteredGridSensors(bounds Rect, nx, ny int, jitter float64, seed uint64, efficiency, background float64) []Sensor {
	return deploy.JitteredGrid(bounds, nx, ny, jitter, rng.NewNamed(seed, "radloc/jittered-grid"), efficiency, background)
}

// PoissonSensors places n sensors uniformly at random (deterministic in
// seed) — the paper's Scenario C placement.
func PoissonSensors(bounds Rect, n int, seed uint64, efficiency, background float64) []Sensor {
	return sensor.PoissonField(bounds, n, rng.NewNamed(seed, "radloc/poisson-field"), efficiency, background)
}

// CalibrateSensor estimates a sensor's counting efficiency from
// repeated readings with a known check source (Section III's E_i).
func CalibrateSensor(readings []int, sensorPos Vec, background float64, known Source) (float64, error) {
	return sensor.Calibrate(readings, sensorPos, background, known)
}

// Rendering.

// RenderASCII draws a scenario and particle cloud as a terminal density
// map (sources 'O', estimates 'X', sensors '+').
func RenderASCII(sc Scenario, parts []Particle, ests []Estimate) string {
	return render.ASCII(sc, parts, ests, render.ASCIIOptions{})
}

// RenderSVG draws the scenario layout (plus optional particles and
// estimates) as a standalone SVG document.
func RenderSVG(sc Scenario, parts []Particle, ests []Estimate, showParticles bool) string {
	return render.SVG(sc, parts, ests, render.SVGOptions{ShowParticles: showParticles})
}

// Track management (persistent sources over the estimate stream).
type (
	// Track is one hypothesized persistent source.
	Track = track.Track
	// TrackConfig tunes association gating, smoothing, confirmation
	// and retirement.
	TrackConfig = track.Config
	// TrackManager associates per-step estimates into tracks.
	TrackManager = track.Manager
)

// NewTrackManager creates an M-of-N track manager over the localizer's
// per-step estimates: tracks confirm after ConfirmHits associations and
// retire after DropMisses consecutive misses, suppressing the transient
// false-positive flicker of raw mean-shift modes.
func NewTrackManager(cfg TrackConfig) *TrackManager { return track.NewManager(cfg) }

// SeededPrior builds a particle initializer that concentrates a
// fraction of the initial particles around the given centers (e.g. the
// sensors whose detection alarms fired) — the paper's Section V-A
// prior-knowledge initialization.
func SeededPrior(centers []Vec, sigma, seededFrac float64, bounds Rect, strengthMin, strengthMax float64) core.InitSampler {
	return core.SeededPrior(centers, sigma, seededFrac, bounds, strengthMin, strengthMax)
}

// Scenario files.

// SaveScenarioJSON renders a scenario as versioned, validated JSON.
func SaveScenarioJSON(sc Scenario) ([]byte, error) { return config.SaveScenario(sc) }

// LoadScenarioJSON parses and validates a JSON scenario.
func LoadScenarioJSON(data []byte) (Scenario, error) { return config.LoadScenario(data) }

// Mobile controlled search (after Ristic et al., the paper's ref [18]).
type (
	// MobilePlanner chooses surveyor waypoints from the particle
	// population: approach the probability mass, then orbit it for
	// parallax.
	MobilePlanner = mobile.Planner
)

// Posterior-predictive diagnostics.
type (
	// DiagnosticReading aggregates one sensor's observations for a
	// model check.
	DiagnosticReading = diagnose.Reading
	// DiagnosticReport scores how well the recovered sources explain
	// the data; strongly negative residuals are obstacle shadows.
	DiagnosticReport = diagnose.Report
	// Residual is one sensor's standardized model residual.
	Residual = diagnose.Residual
)

// Diagnose runs the posterior-predictive check of the recovered source
// estimates against aggregated sensor observations.
func Diagnose(readings []DiagnosticReading, estimates []Estimate, zThreshold float64) (DiagnosticReport, error) {
	return diagnose.Check(readings, estimates, zThreshold)
}

// Streaming fusion engine (the core of cmd/radlocd).
type (
	// FusionEngine is a concurrency-safe streaming localizer.
	FusionEngine = fusion.Engine
	// FusionConfig assembles a FusionEngine.
	FusionConfig = fusion.Config
	// FusionSnapshot is the engine's externally visible state.
	FusionSnapshot = fusion.Snapshot
)

// NewFusionEngine builds a thread-safe streaming engine over the
// localizer: many connections may Ingest concurrently, estimates are
// recomputed at a bounded rate, Snapshot is always safe.
func NewFusionEngine(cfg FusionConfig) (*FusionEngine, error) { return fusion.NewEngine(cfg) }

// Measurement streams on disk.

// RecordMeasurements writes a scenario's full measurement stream as
// newline-delimited JSON (the radlocd input format), through the
// scenario's delivery plan so out-of-order scenarios record in arrival
// order. Returns the number of records written.
func RecordMeasurements(w io.Writer, sc Scenario, seed uint64) (int, error) {
	return replay.Write(w, sc, seed)
}

// ReplayMeasurements feeds a recorded NDJSON stream into the localizer,
// resolving sensor IDs through the registry. Returns the number of
// measurements replayed.
func ReplayMeasurements(r io.Reader, registry []Sensor, loc *Localizer) (int, error) {
	return replay.Read(r, registry, loc)
}

// Operational latency metrics over per-step series.

// TimeToLock returns the first step from which the error series stays
// at or below threshold for the rest of the run, or -1.
func TimeToLock(errs []float64, threshold float64) int { return eval.TimeToLock(errs, threshold) }

// TimeToClear returns the first step from which a count series (FP or
// FN) stays at or below threshold for the rest of the run, or -1.
func TimeToClear(counts []float64, threshold float64) int {
	return eval.TimeToClear(counts, threshold)
}

// Availability returns the fraction of steps with error at or below
// threshold.
func Availability(errs []float64, threshold float64) float64 {
	return eval.Availability(errs, threshold)
}

// Nuclear data for realistic threat scenarios.
type (
	// Nuclide identifies a gamma-emitting isotope in the catalog.
	Nuclide = isotope.Isotope
	// NuclideInfo holds half-life and emission data.
	NuclideInfo = isotope.Info
)

// Catalogued isotopes from the RDD threat literature.
const (
	Cs137 = isotope.Cs137
	Co60  = isotope.Co60
	Ir192 = isotope.Ir192
	Am241 = isotope.Am241
)

// NuclideData returns an isotope's half-life and primary gamma line.
func NuclideData(n Nuclide) (NuclideInfo, error) { return isotope.Lookup(n) }

// DecayActivity returns the activity remaining after elapsed time:
// A(t) = A₀ · 2^(−t/T½).
func DecayActivity(initial float64, n Nuclide, elapsed time.Duration) (float64, error) {
	return isotope.Decay(initial, n, elapsed)
}

// AttenuationFor returns the linear attenuation coefficient of a
// material ("lead", "steel", "concrete", "water") at the isotope's
// primary line energy — the µ to give an Obstacle when the threat
// isotope is known, instead of the paper's fixed 1 MeV table.
func AttenuationFor(material string, n Nuclide) (float64, error) {
	return isotope.MuFor(material, n)
}
