// Unreliable network: drive the localizer directly through the
// streaming API with measurements that arrive out of order and 20%
// of which are lost — the wireless-sensor-network conditions of the
// paper's Scenario C. The algorithm needs no measurement ordering and
// simply skips missing data.
//
//	go run ./examples/unreliablenet
package main

import (
	"fmt"
	"log"

	"radloc"
	"radloc/internal/rng"
)

func main() {
	sc := radloc.ScenarioA(50, false)
	const steps = 10

	loc, err := radloc.NewLocalizer(radloc.LocalizerConfig(sc))
	if err != nil {
		log.Fatal(err)
	}

	// A delivery plan with heavy reordering (mean latency of 1.5 time
	// steps) and 20% message loss.
	plan := radloc.OutOfOrderDelivery(len(sc.Sensors), steps, 99, 1.5, 0.20)
	fmt.Printf("delivering %d of %d measurements (%.0f%% lost), reorder fraction %.2f\n\n",
		len(plan.Events), len(sc.Sensors)*steps,
		100*(1-float64(len(plan.Events))/float64(len(sc.Sensors)*steps)),
		plan.ReorderFraction())

	measure := rng.NewNamed(99, "unreliablenet/measure")
	for step := 0; step < steps; step++ {
		for _, ev := range plan.EventsInStep(step) {
			sen := sc.Sensors[ev.SensorIndex]
			m := sen.Measure(measure, sc.Sources, sc.Obstacles, ev.EmitStep)
			loc.Ingest(sen, m.CPM)
		}
		match := radloc.Match(loc.Estimates(), sc.Sources, 40)
		fmt.Printf("step %2d: mean error %5.2f  FP %d  FN %d\n",
			step, match.MeanError(), match.FalsePos, match.FalseNeg)
	}

	fmt.Println("\nfinal estimates:")
	for _, est := range loc.Estimates() {
		fmt.Printf("  %v\n", est)
	}
}
