// Tracking: a radiation source on a moving vehicle crosses the
// surveillance area while the filter — configured with the paper's
// F_movement prediction hook (Section V-B) as a random walk — keeps its
// estimate locked on.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"math"

	"radloc"
	"radloc/internal/rng"
)

func main() {
	sc := radloc.ScenarioA(100, false)
	cfg := radloc.LocalizerConfig(sc)
	cfg.Seed = 5
	// Prediction model: the source may move ~1 unit per iteration in
	// any direction.
	cfg.Movement = radloc.RandomWalk{Sigma: 1.0}
	loc, err := radloc.NewLocalizer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	measure := rng.NewNamed(5, "tracking/measure")
	pos := radloc.V(15, 25)
	vel := radloc.V(2.5, 1.8) // units per time step

	fmt.Println("step   true position     estimate          error")
	for step := 0; step < 25; step++ {
		truth := []radloc.Source{{Pos: pos, Strength: 100}}
		for _, sen := range sc.Sensors {
			m := sen.Measure(measure, truth, nil, step)
			loc.Ingest(sen, m.CPM)
		}
		best := radloc.Estimate{}
		bestD := math.Inf(1)
		for _, e := range loc.Estimates() {
			if d := e.Pos.Dist(pos); d < bestD {
				bestD, best = d, e
			}
		}
		if math.IsInf(bestD, 1) {
			fmt.Printf("%4d   (%5.1f, %5.1f)   — no estimate yet —\n", step, pos.X, pos.Y)
		} else {
			fmt.Printf("%4d   (%5.1f, %5.1f)   (%5.1f, %5.1f)     %5.2f\n",
				step, pos.X, pos.Y, best.Pos.X, best.Pos.Y, bestD)
		}
		pos = pos.Add(vel)
	}
}
