// Urban area: the paper's large Scenario B — 196 sensors watching a
// 260×260 district with NINE dirty bombs of 10–100 µCi hidden among
// three shielding walls the system knows nothing about. Demonstrates
// that (i) the filter's cost does not grow with the source count and
// (ii) unknown obstacles tend to HELP by isolating source signatures.
//
//	go run ./examples/urbanarea
package main

import (
	"fmt"
	"log"
	"math"

	"radloc"
)

func main() {
	withObs := radloc.ScenarioB(true)
	noObs := radloc.ScenarioB(false)
	// Trim the horizon so the example finishes in a few seconds.
	withObs.Params.TimeSteps = 12
	noObs.Params.TimeSteps = 12

	opts := radloc.RunOptions{Seed: 7, Reps: 2, TrialWorkers: 2}
	resObs, err := radloc.Run(withObs, opts)
	if err != nil {
		log.Fatal(err)
	}
	resNo, err := radloc.Run(noObs, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-source localization error at the final step (length units):")
	fmt.Println("  source  strength   no-obstacles  with-obstacles  obstacle effect")
	last := withObs.Params.TimeSteps - 1
	for s, src := range withObs.Sources {
		a := resNo.ErrBySource[s][last]
		b := resObs.ErrBySource[s][last]
		verdict := "≈ same"
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			verdict = "missed in one run"
		case a > 1.15*b:
			verdict = "obstacles HELP"
		case b > 1.15*a:
			verdict = "obstacles hurt"
		}
		fmt.Printf("  S%-3d    %5.0f µCi     %8.2f      %8.2f      %s\n",
			s+1, src.Strength, a, b, verdict)
	}

	fmt.Printf("\nfalse positives at final step: %.1f (no obs) vs %.1f (obs)\n",
		resNo.FalsePos[last], resObs.FalsePos[last])
	fmt.Printf("false negatives at final step: %.1f (no obs) vs %.1f (obs)\n",
		resNo.FalseNeg[last], resObs.FalseNeg[last])
}
