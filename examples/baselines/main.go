// Baselines: pit the paper's particle-filter + mean-shift localizer
// against the prior approaches it improves upon — joint MLE with BIC
// model selection (Morelande et al.) and grid decomposition (Cheng &
// Singh) — on the same two-source measurement set, reporting accuracy
// and wall-clock cost.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"radloc"
	"radloc/internal/rng"
)

func main() {
	sc := radloc.ScenarioA(50, false)
	const steps = 5

	// One shared measurement set.
	measure := rng.NewNamed(7, "baselines/measure")
	var readings []radloc.Reading
	byStep := make([][]radloc.Measurement, steps)
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(measure, sc.Sources, sc.Obstacles, step)
			readings = append(readings, radloc.Reading{Sensor: sen, CPM: m.CPM})
			byStep[step] = append(byStep[step], m)
		}
	}

	fmt.Printf("two true sources: %v and %v\n\n", sc.Sources[0], sc.Sources[1])

	// 1. This paper's algorithm (streaming).
	loc, err := radloc.NewLocalizer(radloc.LocalizerConfig(sc))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	for step := 0; step < steps; step++ {
		for i, m := range byStep[step] {
			loc.Ingest(sc.Sensors[i], m.CPM)
		}
	}
	ests := loc.Estimates()
	report("particle filter + mean-shift (this paper)", time.Since(t0), estimatesToSources(ests), sc)

	// 2. Joint MLE with BIC model selection.
	t0 = time.Now()
	mle, err := radloc.BaselineMLE(readings, radloc.MLEConfig{
		Bounds: sc.Bounds, KMax: 4, Criterion: radloc.BIC,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("joint MLE + BIC (selected K=%d)", mle.K), time.Since(t0), mle.Sources, sc)

	// 3. Grid decomposition.
	t0 = time.Now()
	grid, err := radloc.BaselineGrid(readings, radloc.GridConfig{Bounds: sc.Bounds})
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("grid decomposition (%d peaks)", len(grid.Sources)), time.Since(t0), grid.Sources, sc)

	// 4. A single-source method, to show why it is not enough.
	t0 = time.Now()
	moe, err := radloc.BaselineMoE(readings, radloc.SingleConfig{Bounds: sc.Bounds}, 7)
	if err != nil {
		log.Fatal(err)
	}
	report("mean-of-estimators (single-source!)", time.Since(t0), []radloc.Source{moe}, sc)
}

func estimatesToSources(ests []radloc.Estimate) []radloc.Source {
	out := make([]radloc.Source, len(ests))
	for i, e := range ests {
		out[i] = radloc.Source{Pos: e.Pos, Strength: e.Strength}
	}
	return out
}

func report(name string, took time.Duration, found []radloc.Source, sc radloc.Scenario) {
	fmt.Printf("%s — %v\n", name, took.Round(time.Millisecond))
	for _, src := range sc.Sources {
		best := math.Inf(1)
		for _, f := range found {
			best = math.Min(best, f.Pos.Dist(src.Pos))
		}
		fmt.Printf("  source at %v: nearest estimate %.2f units away\n", src.Pos, best)
	}
	fmt.Println()
}
