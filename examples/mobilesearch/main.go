// Mobile search: a surveyor with a vehicle-mounted detector sweeps an
// area covered only by a sparse 3×3 fixed grid. The planner drives
// toward the particle filter's probability mass and then orbits it for
// parallax — the controlled-search strategy of the paper's reference
// [18] — pinning the source far better than the fixed grid alone.
//
//	go run ./examples/mobilesearch
package main

import (
	"fmt"
	"log"
	"math"

	"radloc"
	"radloc/internal/rng"
)

func main() {
	bounds := radloc.NewRect(radloc.V(0, 0), radloc.V(100, 100))
	truth := []radloc.Source{{Pos: radloc.V(68, 37), Strength: 50}}
	fixed := radloc.GridSensors(bounds, 3, 3, 1e-4, 5)

	cfg := radloc.Config{Bounds: bounds, Seed: 9, FusionRange: 40}
	loc, err := radloc.NewLocalizer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	planner := radloc.MobilePlanner{Speed: 4, Bounds: bounds}
	if err := planner.Validate(); err != nil {
		log.Fatal(err)
	}

	stream := rng.NewNamed(9, "mobilesearch/measure")
	pos := radloc.V(5, 95) // surveyor starts in the far corner

	fmt.Println("step  surveyor position   best estimate error")
	var cloud []radloc.Particle // reused across steps — see AppendParticles
	for step := 0; step < 25; step++ {
		for _, sen := range fixed {
			m := sen.Measure(stream, truth, nil, step)
			loc.Ingest(sen, m.CPM)
		}
		surveyor := radloc.Sensor{ID: 100, Pos: pos, Efficiency: 1e-4, Background: 5}
		m := surveyor.Measure(stream, truth, nil, step)
		loc.Ingest(surveyor, m.CPM)
		cloud = loc.AppendParticles(cloud[:0])
		pos = planner.Next(pos, cloud)

		best := math.Inf(1)
		for _, e := range loc.Estimates() {
			best = math.Min(best, e.Pos.Dist(truth[0].Pos))
		}
		fmt.Printf("%4d  (%5.1f, %5.1f)      %6.2f\n", step, pos.X, pos.Y, best)
	}
	fmt.Printf("\ntrue source: %v\n", truth[0])
}
