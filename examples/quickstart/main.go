// Quickstart: localize two radiation sources with the paper's default
// Scenario A setup, then print the recovered source parameters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"radloc"
)

func main() {
	// Scenario A: a 100×100 surveillance area watched by a 6×6 sensor
	// grid (5 CPM background), with two 50 µCi sources at (47,71) and
	// (81,42) — the layout of the paper's Fig. 3.
	sc := radloc.ScenarioA(50, false)

	// Simulate 10 time steps (each sensor reports once per step),
	// averaged over 3 independent trials.
	res, err := radloc.Run(sc, radloc.RunOptions{Seed: 42, Reps: 3, TrialWorkers: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mean localization error per time step:")
	for t, e := range res.MeanErr {
		fmt.Printf("  step %2d: %5.2f length units  (FP %.1f, FN %.1f)\n",
			t, e, res.FalsePos[t], res.FalseNeg[t])
	}

	fmt.Println("\nfinal source estimates (trial 0):")
	for _, est := range res.Trials[0].FinalEstimates {
		fmt.Printf("  %v\n", est)
	}
	fmt.Println("\ntrue sources:")
	for _, src := range sc.Sources {
		fmt.Printf("  %v\n", src)
	}
}
