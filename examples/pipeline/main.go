// Pipeline: the full defense workflow the paper's introduction
// motivates — continuous SPRT monitoring detects that sources have
// appeared, the alarm triggers localization, and the localizer reports
// how many sources there are and where. Rendered live as ASCII maps.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"radloc"
	"radloc/internal/rng"
)

func main() {
	sc := radloc.ScenarioA(50, false)
	stream := rng.NewNamed(31, "pipeline/measure")

	// Phase 1 — detection: every sensor runs a sequential test for a
	// ≥ 5 CPM elevation over its background.
	cfgs := make([]radloc.SPRTConfig, len(sc.Sensors))
	for i, sen := range sc.Sensors {
		cfgs[i] = radloc.SPRTConfig{Background: sen.Background, MinElevation: 5}
	}
	monitor, err := radloc.NewDetectionMonitor(cfgs, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 1: monitoring (no sources yet)...")
	for step := 0; step < 3; step++ {
		for i, sen := range sc.Sensors {
			m := sen.Measure(stream, nil, nil, step)
			if alarmed, _ := monitor.Observe(i, m.CPM); alarmed {
				log.Fatal("false alarm on pure background")
			}
		}
	}
	fmt.Println("  3 quiet steps, no alarm — as expected")
	monitor.Reset()

	fmt.Println("\nphase 2: two dirty bombs appear...")
	alarmStep := -1
	for step := 0; alarmStep < 0 && step < 10; step++ {
		for i, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			if alarmed, _ := monitor.Observe(i, m.CPM); alarmed {
				alarmStep = step
				break
			}
		}
	}
	fmt.Printf("  ALARM raised at step %d by sensors %v\n", alarmStep, monitor.Triggered())

	fmt.Println("\nphase 3: localization...")
	loc, err := radloc.NewLocalizer(radloc.LocalizerConfig(sc))
	if err != nil {
		log.Fatal(err)
	}
	for step := 0; step < 8; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			loc.Ingest(sen, m.CPM)
		}
	}
	ests := loc.Estimates()
	fmt.Printf("  %d sources localized:\n", len(ests))
	for _, e := range ests {
		fmt.Printf("    %v\n", e)
	}

	fmt.Println("\nparticle map (O = true source, X = estimate, + = sensor):")
	fmt.Print(radloc.RenderASCII(sc, loc.Particles(), ests))
}
