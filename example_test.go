package radloc_test

import (
	"fmt"
	"math"

	"radloc"
)

// ExampleRun reproduces the paper's basic workflow: simulate Scenario A
// and read off whether both sources were found.
func ExampleRun() {
	sc := radloc.ScenarioA(50, false)
	sc.Params.TimeSteps = 8
	res, err := radloc.Run(sc, radloc.RunOptions{Seed: 42, Reps: 2, TrialWorkers: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	last := len(res.MeanErr) - 1
	fmt.Printf("sources found: %v\n", res.FalseNeg[last] == 0)
	fmt.Printf("error under 10 units: %v\n", res.MeanErr[last] < 10)
	// Output:
	// sources found: true
	// error under 10 units: true
}

// ExampleLocalizer_Ingest drives the filter directly with noise-free
// expected readings — the streaming API a real deployment uses.
func ExampleLocalizer_Ingest() {
	sc := radloc.ScenarioA(50, false)
	loc, err := radloc.NewLocalizer(radloc.LocalizerConfig(sc))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for step := 0; step < 5; step++ {
		for _, sen := range sc.Sensors {
			cpm := int(math.Round(radloc.ExpectedCPM(
				sen.Pos, sen.Efficiency, sen.Background, sc.Sources, nil)))
			loc.Ingest(sen, cpm)
		}
	}
	m := radloc.Match(loc.Estimates(), sc.Sources, 40)
	fmt.Printf("missed sources: %d\n", m.FalseNeg)
	// Output:
	// missed sources: 0
}

// ExampleMatch scores an estimate set against ground truth with the
// paper's 40-unit association rule.
func ExampleMatch() {
	estimates := []radloc.Estimate{
		{Pos: radloc.V(48, 70), Strength: 52, Mass: 0.5},
		{Pos: radloc.V(10, 10), Strength: 5, Mass: 0.05}, // spurious
	}
	sources := []radloc.Source{
		{Pos: radloc.V(47, 71), Strength: 50},
		{Pos: radloc.V(81, 42), Strength: 50},
	}
	m := radloc.Match(estimates, sources, 40)
	fmt.Printf("false positives: %d\n", m.FalsePos)
	fmt.Printf("false negatives: %d\n", m.FalseNeg)
	fmt.Printf("source 1 error: %.2f\n", m.Err[0])
	// Output:
	// false positives: 1
	// false negatives: 1
	// source 1 error: 1.41
}

// ExampleNewSPRT shows the detection stage: a sequential test decides
// whether a sensor's counts are background or source-elevated.
func ExampleNewSPRT() {
	test, err := radloc.NewSPRT(radloc.SPRTConfig{Background: 5, MinElevation: 10})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var d radloc.Decision
	for i := 0; i < 100 && d != radloc.SourcePresent; i++ {
		d = test.Observe(60) // well above background
	}
	fmt.Println(d)
	// Output:
	// source-present
}
