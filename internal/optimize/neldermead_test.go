package optimize

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/rng"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func TestNelderMeadSphere(t *testing.T) {
	r, err := NelderMead(Problem{F: sphere}, []float64{3, -4, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Error("did not converge on sphere")
	}
	for k, v := range r.X {
		if math.Abs(v) > 1e-3 {
			t.Errorf("x[%d] = %v, want ≈0", k, v)
		}
	}
	if r.F > 1e-6 {
		t.Errorf("f = %v", r.F)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	r, err := NelderMead(Problem{F: rosenbrock}, []float64{-1.2, 1}, Options{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-2 || math.Abs(r.X[1]-1) > 1e-2 {
		t.Errorf("rosenbrock minimum at %v, want (1,1)", r.X)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	// Unconstrained minimum at (−2, −2); box forces (0, 0).
	f := func(x []float64) float64 {
		return (x[0]+2)*(x[0]+2) + (x[1]+2)*(x[1]+2)
	}
	p := Problem{F: f, Lower: []float64{0, 0}, Upper: []float64{5, 5}}
	r, err := NelderMead(p, []float64{3, 3}, Options{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r.X {
		if v < -1e-12 || v > 5+1e-12 {
			t.Fatalf("x[%d] = %v violates bounds", k, v)
		}
	}
	if r.X[0] > 0.05 || r.X[1] > 0.05 {
		t.Errorf("constrained minimum at %v, want ≈(0,0)", r.X)
	}
}

func TestNelderMeadNaNObjective(t *testing.T) {
	// NaN regions are treated as +Inf, not propagated.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	r, err := NelderMead(Problem{F: f}, []float64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-3 {
		t.Errorf("minimum at %v, want 2", r.X[0])
	}
}

func TestNelderMeadErrors(t *testing.T) {
	if _, err := NelderMead(Problem{F: sphere}, nil, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("empty start: %v", err)
	}
	if _, err := NelderMead(Problem{}, []float64{1}, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("nil objective: %v", err)
	}
	p := Problem{F: sphere, Lower: []float64{0}}
	if _, err := NelderMead(p, []float64{1, 2}, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bounds mismatch: %v", err)
	}
}

func TestNelderMeadIterationBudget(t *testing.T) {
	evals := 0
	f := func(x []float64) float64 { evals++; return sphere(x) }
	r, err := NelderMead(Problem{F: f}, []float64{100, 100}, Options{MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged {
		t.Error("claimed convergence after 5 iterations from (100,100)")
	}
	if r.Iters != 5 {
		t.Errorf("iters = %d, want 5", r.Iters)
	}
}

func TestMultiStartFindsGlobalMinimum(t *testing.T) {
	// Double well: local minimum at x≈3, global at x≈−3 (deeper).
	f := func(x []float64) float64 {
		a := x[0] - 3
		b := x[0] + 3
		return math.Min(a*a, b*b-1)
	}
	p := Problem{F: f, Lower: []float64{-10}, Upper: []float64{10}}
	r, err := MultiStart(p, 20, rng.New(1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]+3) > 0.1 {
		t.Errorf("MultiStart found %v, want global minimum ≈ −3", r.X[0])
	}
}

func TestMultiStartRequiresBox(t *testing.T) {
	if _, err := MultiStart(Problem{F: sphere}, 5, rng.New(1, 1), Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("missing box: %v", err)
	}
}
