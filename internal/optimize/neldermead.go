// Package optimize provides the derivative-free minimizers the baseline
// estimators need: the Nelder–Mead downhill simplex with optional box
// constraints, and a multi-start wrapper for the multimodal likelihood
// surfaces that multi-source localization produces.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"radloc/internal/rng"
)

// Problem is an objective to minimize, optionally box-constrained.
// Lower/Upper may be nil (unconstrained) but must otherwise match the
// dimension of the start point; evaluation points are clamped into the
// box.
type Problem struct {
	F     func(x []float64) float64
	Lower []float64
	Upper []float64
}

// Options tune the simplex search; zero values select defaults.
type Options struct {
	MaxIter  int     // default 200·d
	TolF     float64 // spread of simplex values at convergence (default 1e-8)
	TolX     float64 // simplex diameter at convergence (default 1e-6)
	InitStep float64 // initial simplex edge length (default 1, or 5% of box)
}

// Result is the outcome of a minimization.
type Result struct {
	X         []float64
	F         float64
	Iters     int
	Converged bool
}

// ErrBadProblem reports an unusable problem definition.
var ErrBadProblem = errors.New("optimize: bad problem")

// NelderMead minimizes p.F starting from x0.
func NelderMead(p Problem, x0 []float64, opts Options) (Result, error) {
	d := len(x0)
	if d == 0 || p.F == nil {
		return Result{}, fmt.Errorf("%w: empty start or nil objective", ErrBadProblem)
	}
	if (p.Lower != nil && len(p.Lower) != d) || (p.Upper != nil && len(p.Upper) != d) {
		return Result{}, fmt.Errorf("%w: bounds dimension mismatch", ErrBadProblem)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200 * d
	}
	if opts.TolF <= 0 {
		opts.TolF = 1e-8
	}
	if opts.TolX <= 0 {
		opts.TolX = 1e-6
	}

	clamp := func(x []float64) {
		for i := range x {
			if p.Lower != nil && x[i] < p.Lower[i] {
				x[i] = p.Lower[i]
			}
			if p.Upper != nil && x[i] > p.Upper[i] {
				x[i] = p.Upper[i]
			}
		}
	}
	eval := func(x []float64) float64 {
		clamp(x)
		v := p.F(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	step := opts.InitStep
	if step <= 0 {
		step = 1
		if p.Lower != nil && p.Upper != nil {
			var span float64
			for i := range x0 {
				span += p.Upper[i] - p.Lower[i]
			}
			step = 0.05 * span / float64(d)
			if step <= 0 {
				step = 1
			}
		}
	}

	// Initial simplex: x0 plus a step along each axis.
	simplex := make([][]float64, d+1)
	values := make([]float64, d+1)
	for i := range simplex {
		v := make([]float64, d)
		copy(v, x0)
		if i > 0 {
			v[i-1] += step
		}
		simplex[i] = v
		values[i] = eval(v)
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	order := make([]int, d+1)
	centroid := make([]float64, d)
	trial := make([]float64, d)
	trial2 := make([]float64, d)

	var iters int
	for iters = 0; iters < opts.MaxIter; iters++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return values[order[a]] < values[order[b]] })
		best, worst, second := order[0], order[d], order[d-1]

		// Convergence: value spread and simplex size.
		if math.Abs(values[worst]-values[best]) < opts.TolF && simplexDiameter(simplex) < opts.TolX {
			return Result{X: simplex[best], F: values[best], Iters: iters, Converged: true}, nil
		}

		// Centroid of all but the worst.
		for k := range centroid {
			centroid[k] = 0
		}
		for _, i := range order[:d] {
			for k := 0; k < d; k++ {
				centroid[k] += simplex[i][k]
			}
		}
		for k := range centroid {
			centroid[k] /= float64(d)
		}

		// Reflect.
		for k := 0; k < d; k++ {
			trial[k] = centroid[k] + alpha*(centroid[k]-simplex[worst][k])
		}
		fr := eval(trial)
		switch {
		case fr < values[best]:
			// Expand.
			for k := 0; k < d; k++ {
				trial2[k] = centroid[k] + gamma*(trial[k]-centroid[k])
			}
			fe := eval(trial2)
			if fe < fr {
				copy(simplex[worst], trial2)
				values[worst] = fe
			} else {
				copy(simplex[worst], trial)
				values[worst] = fr
			}
		case fr < values[second]:
			copy(simplex[worst], trial)
			values[worst] = fr
		default:
			// Contract.
			for k := 0; k < d; k++ {
				trial2[k] = centroid[k] + rho*(simplex[worst][k]-centroid[k])
			}
			fc := eval(trial2)
			if fc < values[worst] {
				copy(simplex[worst], trial2)
				values[worst] = fc
			} else {
				// Shrink toward the best vertex.
				for _, i := range order[1:] {
					for k := 0; k < d; k++ {
						simplex[i][k] = simplex[best][k] + sigma*(simplex[i][k]-simplex[best][k])
					}
					values[i] = eval(simplex[i])
				}
			}
		}
	}

	bi := 0
	for i := 1; i <= d; i++ {
		if values[i] < values[bi] {
			bi = i
		}
	}
	return Result{X: simplex[bi], F: values[bi], Iters: iters, Converged: false}, nil
}

// MultiStart runs NelderMead from n random starts drawn uniformly from
// the problem's box (which must be fully specified) and returns the
// best result.
func MultiStart(p Problem, n int, stream *rng.Stream, opts Options) (Result, error) {
	if p.Lower == nil || p.Upper == nil || len(p.Lower) != len(p.Upper) || len(p.Lower) == 0 {
		return Result{}, fmt.Errorf("%w: MultiStart needs full box bounds", ErrBadProblem)
	}
	if n < 1 {
		n = 1
	}
	d := len(p.Lower)
	best := Result{F: math.Inf(1)}
	for run := 0; run < n; run++ {
		x0 := make([]float64, d)
		for k := 0; k < d; k++ {
			x0[k] = stream.Uniform(p.Lower[k], p.Upper[k])
		}
		r, err := NelderMead(p, x0, opts)
		if err != nil {
			return Result{}, err
		}
		if r.F < best.F {
			best = r
		}
	}
	return best, nil
}

func simplexDiameter(simplex [][]float64) float64 {
	var maxD float64
	for i := 1; i < len(simplex); i++ {
		var d2 float64
		for k := range simplex[i] {
			diff := simplex[i][k] - simplex[0][k]
			d2 += diff * diff
		}
		maxD = math.Max(maxD, math.Sqrt(d2))
	}
	return maxD
}
