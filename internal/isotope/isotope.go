// Package isotope provides the nuclear data behind realistic scenario
// construction: the gamma-emitting isotopes that plausible radiological
// dispersal devices would use, their photon energies and half-lives,
// and energy-dependent attenuation coefficients for shielding
// materials.
//
// The paper fixes the photon energy at 1 MeV ("Gamma ray with energy
// 1 MeV", footnote 1) and cites Hubbell's NSRDS-NBS 29 tables for µ;
// this package carries enough of those tables to evaluate µ at the
// actual line energies of specific isotopes, so scenarios can say
// "a Cs-137 source behind 5 cm of lead" instead of raw coefficients.
package isotope

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Isotope identifies a gamma-emitting nuclide.
type Isotope string

// Gamma-emitting isotopes commonly discussed in the RDD threat
// literature (cf. the paper's reference [25]).
const (
	Cs137 Isotope = "Cs-137" // medical/industrial sources; the canonical dirty-bomb isotope
	Co60  Isotope = "Co-60"  // sterilization and radiography sources
	Ir192 Isotope = "Ir-192" // industrial radiography
	Am241 Isotope = "Am-241" // smoke detectors, well logging
	Sr90  Isotope = "Sr-90"  // RTGs; beta emitter with weak bremsstrahlung, listed for completeness
)

// Info holds an isotope's decay and emission data.
type Info struct {
	// HalfLife of the nuclide.
	HalfLife time.Duration
	// PrimaryMeV is the dominant gamma line energy in MeV (an
	// intensity-weighted mean for multi-line emitters).
	PrimaryMeV float64
	// GammaPerDecay is the mean number of photons of the primary line
	// per decay.
	GammaPerDecay float64
}

// catalog holds the nuclide data (half-lives from standard charts).
var catalog = map[Isotope]Info{
	Cs137: {HalfLife: duration(30.08 * year), PrimaryMeV: 0.662, GammaPerDecay: 0.851},
	Co60:  {HalfLife: duration(5.27 * year), PrimaryMeV: 1.25, GammaPerDecay: 2.0},
	Ir192: {HalfLife: duration(73.8 * day), PrimaryMeV: 0.38, GammaPerDecay: 2.2},
	Am241: {HalfLife: duration(432.2 * year), PrimaryMeV: 0.0595, GammaPerDecay: 0.359},
	Sr90:  {HalfLife: duration(28.9 * year), PrimaryMeV: 0.001, GammaPerDecay: 0.0},
}

const (
	day  = 24 * float64(time.Hour)
	year = 365.25 * day
)

func duration(f float64) time.Duration { return time.Duration(f) }

// ErrUnknownIsotope is returned for nuclides outside the catalog.
var ErrUnknownIsotope = errors.New("isotope: unknown nuclide")

// Lookup returns an isotope's data.
func Lookup(i Isotope) (Info, error) {
	info, ok := catalog[i]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrUnknownIsotope, i)
	}
	return info, nil
}

// Isotopes lists the catalog, sorted.
func Isotopes() []Isotope {
	out := make([]Isotope, 0, len(catalog))
	for i := range catalog {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Decay returns the activity remaining after elapsed time from an
// initial activity (any unit; µCi in this repository):
// A(t) = A₀ · 2^(−t/T½).
func Decay(initial float64, i Isotope, elapsed time.Duration) (float64, error) {
	info, err := Lookup(i)
	if err != nil {
		return 0, err
	}
	if initial <= 0 || elapsed <= 0 {
		return math.Max(initial, 0), nil
	}
	return initial * math.Exp2(-float64(elapsed)/float64(info.HalfLife)), nil
}

// attenuationTable holds linear attenuation coefficients µ (cm⁻¹) at
// reference photon energies (MeV), derived from NSRDS-NBS 29 mass
// attenuation coefficients × nominal densities. Interpolation between
// rows is log-log, the standard practice for photon cross sections.
var attenuationTable = map[string][]muPoint{
	"lead": {
		{0.05, 91.3}, {0.1, 62.7}, {0.3, 4.60}, {0.662, 1.25},
		{1.0, 0.797}, {1.25, 0.665}, {2.0, 0.518}, {3.0, 0.477},
	},
	"steel": {
		{0.05, 15.2}, {0.1, 2.92}, {0.3, 0.865}, {0.662, 0.583},
		{1.0, 0.468}, {1.25, 0.417}, {2.0, 0.334}, {3.0, 0.285},
	},
	"concrete": {
		{0.05, 0.86}, {0.1, 0.419}, {0.3, 0.253}, {0.662, 0.182},
		{1.0, 0.149}, {1.25, 0.133}, {2.0, 0.105}, {3.0, 0.0853},
	},
	"water": {
		{0.05, 0.227}, {0.1, 0.171}, {0.3, 0.119}, {0.662, 0.0857},
		{1.0, 0.0707}, {1.25, 0.0632}, {2.0, 0.0494}, {3.0, 0.0397},
	},
}

type muPoint struct {
	energyMeV float64
	mu        float64
}

// ErrUnknownMaterial is returned for materials without an energy table.
var ErrUnknownMaterial = errors.New("isotope: no attenuation table for material")

// ErrEnergyRange is returned for energies outside the tabulated range.
var ErrEnergyRange = errors.New("isotope: energy outside tabulated range")

// MuAt returns the linear attenuation coefficient of the material at
// the given photon energy, log-log interpolated between table rows.
// Supported materials: lead, steel, concrete, water.
func MuAt(material string, energyMeV float64) (float64, error) {
	table, ok := attenuationTable[material]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownMaterial, material)
	}
	lo, hi := table[0], table[len(table)-1]
	if energyMeV < lo.energyMeV || energyMeV > hi.energyMeV {
		return 0, fmt.Errorf("%w: %v MeV not in [%v, %v]", ErrEnergyRange, energyMeV, lo.energyMeV, hi.energyMeV)
	}
	idx := sort.Search(len(table), func(i int) bool { return table[i].energyMeV >= energyMeV })
	if table[idx].energyMeV == energyMeV {
		return table[idx].mu, nil
	}
	a, b := table[idx-1], table[idx]
	t := (math.Log(energyMeV) - math.Log(a.energyMeV)) / (math.Log(b.energyMeV) - math.Log(a.energyMeV))
	return math.Exp(math.Log(a.mu)*(1-t) + math.Log(b.mu)*t), nil
}

// MuFor returns the attenuation coefficient of the material at the
// isotope's primary line energy — the value to assign to an
// Obstacle.Mu when the threat isotope is known.
func MuFor(material string, i Isotope) (float64, error) {
	info, err := Lookup(i)
	if err != nil {
		return 0, err
	}
	return MuAt(material, info.PrimaryMeV)
}

// HalvingThickness returns the material thickness (cm) that halves the
// isotope's primary-line intensity: ln2 / µ.
func HalvingThickness(material string, i Isotope) (float64, error) {
	mu, err := MuFor(material, i)
	if err != nil {
		return 0, err
	}
	return math.Ln2 / mu, nil
}
