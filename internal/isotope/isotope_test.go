package isotope

import (
	"errors"
	"math"
	"testing"
	"time"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLookup(t *testing.T) {
	info, err := Lookup(Cs137)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(info.PrimaryMeV, 0.662, 1e-9) {
		t.Errorf("Cs-137 line = %v", info.PrimaryMeV)
	}
	if info.HalfLife < 30*365*24*time.Hour || info.HalfLife > 31*365*24*time.Hour {
		t.Errorf("Cs-137 half-life = %v", info.HalfLife)
	}
	if _, err := Lookup("Pu-239"); !errors.Is(err, ErrUnknownIsotope) {
		t.Errorf("unknown isotope: %v", err)
	}
	if n := len(Isotopes()); n != 5 {
		t.Errorf("catalog size = %d", n)
	}
}

func TestDecay(t *testing.T) {
	info, _ := Lookup(Cs137)
	// One half-life → half the activity.
	got, err := Decay(100, Cs137, info.HalfLife)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 50, 1e-9) {
		t.Errorf("one half-life: %v, want 50", got)
	}
	// Two half-lives → a quarter.
	got, _ = Decay(100, Cs137, 2*info.HalfLife)
	if !almostEq(got, 25, 1e-9) {
		t.Errorf("two half-lives: %v, want 25", got)
	}
	// A surveillance hour of Cs-137 is essentially undecayed...
	got, _ = Decay(100, Cs137, time.Hour)
	if got < 99.999 {
		t.Errorf("hour of Cs-137: %v", got)
	}
	// ...but Ir-192 loses a visible fraction over a month.
	got, _ = Decay(100, Ir192, 30*24*time.Hour)
	if got > 80 || got < 70 {
		t.Errorf("month of Ir-192: %v, want ≈75", got)
	}
	// Degenerate inputs.
	if got, _ := Decay(-5, Cs137, time.Hour); got != 0 {
		t.Errorf("negative activity: %v", got)
	}
	if got, _ := Decay(100, Cs137, -time.Hour); got != 100 {
		t.Errorf("negative elapsed: %v", got)
	}
	if _, err := Decay(100, "Xx-1", time.Hour); err == nil {
		t.Error("unknown isotope accepted")
	}
}

func TestMuAtTablePointsAndInterpolation(t *testing.T) {
	// Exact table rows come back verbatim.
	mu, err := MuAt("lead", 1.0)
	if err != nil || !almostEq(mu, 0.797, 1e-9) {
		t.Errorf("lead @1MeV: %v, %v", mu, err)
	}
	// Interpolated values are monotone between neighbours (µ decreases
	// with energy in this range).
	lo, _ := MuAt("lead", 0.662)
	mid, err := MuAt("lead", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := MuAt("lead", 1.0)
	if !(mid < lo && mid > hi) {
		t.Errorf("interpolation not monotone: %v between %v and %v", mid, lo, hi)
	}
	// Errors.
	if _, err := MuAt("butter", 1.0); !errors.Is(err, ErrUnknownMaterial) {
		t.Errorf("unknown material: %v", err)
	}
	if _, err := MuAt("lead", 0.001); !errors.Is(err, ErrEnergyRange) {
		t.Errorf("energy too low: %v", err)
	}
	if _, err := MuAt("lead", 50); !errors.Is(err, ErrEnergyRange) {
		t.Errorf("energy too high: %v", err)
	}
}

func TestMuForIsotopes(t *testing.T) {
	// Cs-137 at 662 keV in lead: the classic 1.25 cm⁻¹.
	mu, err := MuFor("lead", Cs137)
	if err != nil || !almostEq(mu, 1.25, 0.01) {
		t.Errorf("lead vs Cs-137: %v, %v", mu, err)
	}
	// Co-60's harder 1.25 MeV photons penetrate lead more easily.
	muCo, err := MuFor("lead", Co60)
	if err != nil {
		t.Fatal(err)
	}
	if muCo >= mu {
		t.Errorf("Co-60 µ (%v) should be below Cs-137 µ (%v)", muCo, mu)
	}
	// Am-241's soft 60 keV photons are stopped dramatically faster.
	muAm, err := MuFor("lead", Am241)
	if err != nil {
		t.Fatal(err)
	}
	if muAm < 10*mu {
		t.Errorf("Am-241 µ (%v) should dwarf Cs-137 µ (%v)", muAm, mu)
	}
}

func TestHalvingThickness(t *testing.T) {
	// ~0.55 cm of lead halves Cs-137's line.
	ht, err := HalvingThickness("lead", Cs137)
	if err != nil {
		t.Fatal(err)
	}
	if ht < 0.4 || ht > 0.7 {
		t.Errorf("lead halving thickness for Cs-137 = %v cm", ht)
	}
	// Concrete needs far more.
	htC, err := HalvingThickness("concrete", Cs137)
	if err != nil {
		t.Fatal(err)
	}
	if htC < 5*ht {
		t.Errorf("concrete (%v) should need ≫ lead (%v)", htC, ht)
	}
	if _, err := HalvingThickness("lead", "Xx-1"); err == nil {
		t.Error("unknown isotope accepted")
	}
	// Sr-90's 1 keV placeholder energy is outside every table.
	if _, err := HalvingThickness("lead", Sr90); err == nil {
		t.Error("out-of-range energy accepted")
	}
}
