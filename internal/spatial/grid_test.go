package spatial

import (
	"sort"
	"testing"
	"testing/quick"

	"radloc/internal/geometry"
	"radloc/internal/rng"
)

func bounds100() geometry.Rect {
	return geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
}

func TestWithinRadiusMatchesBruteForce(t *testing.T) {
	s := rng.New(1, 2)
	pts := make([]geometry.Vec, 500)
	for i := range pts {
		pts[i] = geometry.V(s.Uniform(0, 100), s.Uniform(0, 100))
	}
	g := NewGrid(bounds100(), 10)
	g.Rebuild(pts)

	for trial := 0; trial < 50; trial++ {
		c := geometry.V(s.Uniform(-10, 110), s.Uniform(-10, 110))
		r := s.Uniform(0, 40)
		got := g.WithinRadius(c, r, nil)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if p.Dist2(c) <= r*r {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d hits, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: hit mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
		if n := g.CountWithinRadius(c, r); n != len(want) {
			t.Fatalf("trial %d: CountWithinRadius = %d, want %d", trial, n, len(want))
		}
	}
}

func TestOutOfBoundsPointsRetained(t *testing.T) {
	g := NewGrid(bounds100(), 10)
	pts := []geometry.Vec{
		geometry.V(-50, -50),
		geometry.V(150, 150),
		geometry.V(50, 50),
	}
	g.Rebuild(pts)
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	got := g.WithinRadius(geometry.V(-50, -50), 1, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("out-of-bounds point not found: %v", got)
	}
	got = g.WithinRadius(geometry.V(150, 150), 1, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("far out-of-bounds point not found: %v", got)
	}
}

func TestRebuildReplacesContents(t *testing.T) {
	g := NewGrid(bounds100(), 10)
	g.Rebuild([]geometry.Vec{geometry.V(10, 10)})
	g.Rebuild([]geometry.Vec{geometry.V(90, 90)})
	if got := g.WithinRadius(geometry.V(10, 10), 5, nil); len(got) != 0 {
		t.Errorf("stale point survived rebuild: %v", got)
	}
	if got := g.WithinRadius(geometry.V(90, 90), 5, nil); len(got) != 1 {
		t.Errorf("new point missing: %v", got)
	}
}

func TestEdgeCases(t *testing.T) {
	g := NewGrid(bounds100(), 10)
	g.Rebuild(nil)
	if g.Len() != 0 {
		t.Errorf("empty rebuild Len = %d", g.Len())
	}
	if got := g.WithinRadius(geometry.V(50, 50), 10, nil); len(got) != 0 {
		t.Errorf("query on empty grid: %v", got)
	}
	g.Rebuild([]geometry.Vec{geometry.V(50, 50)})
	if got := g.WithinRadius(geometry.V(50, 50), -1, nil); len(got) != 0 {
		t.Errorf("negative radius: %v", got)
	}
	if n := g.CountWithinRadius(geometry.V(50, 50), -1); n != 0 {
		t.Errorf("negative radius count: %d", n)
	}
	// Radius 0 finds exactly coincident points.
	if got := g.WithinRadius(geometry.V(50, 50), 0, nil); len(got) != 1 {
		t.Errorf("zero radius: %v", got)
	}
}

func TestDegenerateCellSizes(t *testing.T) {
	// Non-positive cell size falls back to a sane default.
	g := NewGrid(bounds100(), 0)
	if g.CellSize() <= 0 {
		t.Errorf("CellSize = %v", g.CellSize())
	}
	g.Rebuild([]geometry.Vec{geometry.V(1, 1), geometry.V(99, 99)})
	if got := g.WithinRadius(geometry.V(0, 0), 5, nil); len(got) != 1 {
		t.Errorf("fallback grid query: %v", got)
	}

	// A tiny cell size over a big area must not explode memory: the
	// constructor caps total cells.
	big := NewGrid(geometry.NewRect(geometry.V(0, 0), geometry.V(1e6, 1e6)), 1e-6)
	big.Rebuild([]geometry.Vec{geometry.V(5e5, 5e5)})
	if got := big.WithinRadius(geometry.V(5e5, 5e5), 1, nil); len(got) != 1 {
		t.Errorf("capped grid query: %v", got)
	}

	// Zero-area bounds still work.
	pt := NewGrid(geometry.NewRect(geometry.V(3, 3), geometry.V(3, 3)), 0)
	pt.Rebuild([]geometry.Vec{geometry.V(3, 3)})
	if got := pt.WithinRadius(geometry.V(3, 3), 1, nil); len(got) != 1 {
		t.Errorf("point-bounds grid query: %v", got)
	}
}

func TestDstReuse(t *testing.T) {
	g := NewGrid(bounds100(), 10)
	g.Rebuild([]geometry.Vec{geometry.V(10, 10), geometry.V(12, 10)})
	buf := make([]int, 0, 8)
	out := g.WithinRadius(geometry.V(11, 10), 5, buf)
	if len(out) != 2 {
		t.Fatalf("hits = %v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Error("WithinRadius did not reuse provided capacity")
	}
}

// Property: grid query equals brute force for random configurations.
func TestWithinRadiusProperty(t *testing.T) {
	f := func(seed uint64, n uint8, cx, cy uint16, rr uint8) bool {
		s := rng.New(seed, 99)
		pts := make([]geometry.Vec, int(n)%64+1)
		for i := range pts {
			pts[i] = geometry.V(s.Uniform(0, 100), s.Uniform(0, 100))
		}
		g := NewGrid(bounds100(), 7)
		g.Rebuild(pts)
		c := geometry.V(float64(cx%120)-10, float64(cy%120)-10)
		r := float64(rr % 50)
		got := g.WithinRadius(c, r, nil)
		want := 0
		for _, p := range pts {
			if p.Dist2(c) <= r*r {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWithinRadiusSortedMatchesUnsorted pins the sorted variant's
// contract: same membership as WithinRadius, always in ascending ID
// order, for every geometry the unsorted query handles.
func TestWithinRadiusSortedMatchesUnsorted(t *testing.T) {
	s := rng.New(9, 4)
	pts := make([]geometry.Vec, 700)
	for i := range pts {
		pts[i] = geometry.V(s.Uniform(-5, 105), s.Uniform(-5, 105))
	}
	g := NewGrid(bounds100(), 7)
	g.Rebuild(pts)

	for trial := 0; trial < 60; trial++ {
		c := geometry.V(s.Uniform(-10, 110), s.Uniform(-10, 110))
		r := s.Uniform(0, 50)
		plain := g.WithinRadius(c, r, nil)
		sorted := g.WithinRadiusSorted(c, r, nil)
		if !sort.IntsAreSorted(sorted) {
			t.Fatalf("trial %d: WithinRadiusSorted returned unsorted IDs", trial)
		}
		sort.Ints(plain)
		if len(plain) != len(sorted) {
			t.Fatalf("trial %d: sorted returned %d IDs, unsorted %d", trial, len(sorted), len(plain))
		}
		for i := range plain {
			if plain[i] != sorted[i] {
				t.Fatalf("trial %d: membership differs at %d: %d vs %d", trial, i, sorted[i], plain[i])
			}
		}
	}
}

// TestWithinRadiusSortedIndependentOfMoveHistory is the determinism
// property the filter's selection stage rests on: WithinRadius's
// bucket order depends on the sequence of Move calls (swap-remove
// reorders buckets), but the sorted variant must be a pure function
// of the current positions — identical results whether the grid got
// there by incremental moves or by one bulk Rebuild.
func TestWithinRadiusSortedIndependentOfMoveHistory(t *testing.T) {
	s := rng.New(3, 8)
	n := 400
	start := make([]geometry.Vec, n)
	for i := range start {
		start[i] = geometry.V(s.Uniform(0, 100), s.Uniform(0, 100))
	}
	final := make([]geometry.Vec, n)
	copy(final, start)

	moved := NewGrid(bounds100(), 9)
	moved.Rebuild(start)
	// Shuffle bucket order with a long, overlapping move history.
	for step := 0; step < 3000; step++ {
		id := s.IntN(n)
		final[id] = geometry.V(s.Uniform(0, 100), s.Uniform(0, 100))
		moved.Move(id, final[id])
	}

	rebuilt := NewGrid(bounds100(), 9)
	rebuilt.Rebuild(final)

	for trial := 0; trial < 40; trial++ {
		c := geometry.V(s.Uniform(0, 100), s.Uniform(0, 100))
		r := s.Uniform(1, 45)
		a := moved.WithinRadiusSorted(c, r, nil)
		b := rebuilt.WithinRadiusSorted(c, r, nil)
		if len(a) != len(b) {
			t.Fatalf("trial %d: moved grid found %d, rebuilt %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: ID %d vs %d at position %d", trial, a[i], b[i], i)
			}
		}
	}
}

// TestResetReusesGrid checks Reset re-dimensions a grid for new
// bounds/cell size and behaves exactly like a freshly built one.
func TestResetReusesGrid(t *testing.T) {
	s := rng.New(5, 6)
	g := NewGrid(bounds100(), 10)
	first := make([]geometry.Vec, 300)
	for i := range first {
		first[i] = geometry.V(s.Uniform(0, 100), s.Uniform(0, 100))
	}
	g.Rebuild(first)

	// Re-aim the same grid at a different region and scale.
	small := geometry.NewRect(geometry.V(-20, -20), geometry.V(20, 20))
	second := make([]geometry.Vec, 150)
	for i := range second {
		second[i] = geometry.V(s.Uniform(-20, 20), s.Uniform(-20, 20))
	}
	g.Reset(small, 3)
	g.Rebuild(second)

	fresh := NewGrid(small, 3)
	fresh.Rebuild(second)
	for trial := 0; trial < 30; trial++ {
		c := geometry.V(s.Uniform(-25, 25), s.Uniform(-25, 25))
		r := s.Uniform(0, 15)
		a := g.WithinRadiusSorted(c, r, nil)
		b := fresh.WithinRadiusSorted(c, r, nil)
		if len(a) != len(b) {
			t.Fatalf("trial %d: reset grid found %d, fresh %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: reset grid ID %d, fresh %d", trial, a[i], b[i])
			}
		}
	}
	if g.Len() != 150 || g.CellSize() != 3 {
		t.Fatalf("after Reset: Len %d CellSize %v, want 150 3", g.Len(), g.CellSize())
	}
}
