// Package spatial provides a uniform-grid index over 2-D points for the
// fusion-range queries at the heart of the particle filter: "which
// particles lie within distance d of sensor S?".
//
// The index stores integer item IDs; callers map IDs back to their own
// records. Rebuild cost is O(n), query cost is proportional to the
// number of cells the query disc overlaps plus the number of hits —
// far cheaper than the O(n) scan a naive filter performs per
// measurement once particles have concentrated.
package spatial

import (
	"math"

	"radloc/internal/geometry"
)

// Grid is a uniform spatial hash over a rectangular region. The zero
// value is not usable; construct with NewGrid.
type Grid struct {
	bounds   geometry.Rect
	cellSize float64
	nx, ny   int
	cells    [][]int32
	pos      []geometry.Vec // item id → position
}

// NewGrid creates an index over bounds with approximately the given
// cell size. cellSize is clamped so the grid has at least one and at
// most 1<<20 cells.
func NewGrid(bounds geometry.Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = math.Max(bounds.Width(), bounds.Height()) / 16
	}
	if cellSize <= 0 {
		cellSize = 1
	}
	// Grow the cell size until the cell count is bounded; the sizing
	// arithmetic stays in float64 so absurd inputs cannot overflow int.
	const maxCells = 1 << 20
	dims := func(cs float64) (int, int) {
		fx := math.Ceil(bounds.Width()/cs) + 1
		fy := math.Ceil(bounds.Height()/cs) + 1
		fx = math.Max(1, math.Min(fx, maxCells))
		fy = math.Max(1, math.Min(fy, maxCells))
		return int(fx), int(fy)
	}
	nx, ny := dims(cellSize)
	for float64(nx)*float64(ny) > maxCells {
		cellSize *= 2
		nx, ny = dims(cellSize)
	}
	return &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		nx:       nx,
		ny:       ny,
		cells:    make([][]int32, nx*ny),
	}
}

// Rebuild replaces the index contents with the given positions; item i
// is positions[i]. Positions outside the bounds are clamped into the
// border cells, so no point is ever lost.
func (g *Grid) Rebuild(positions []geometry.Vec) {
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
	g.pos = append(g.pos[:0], positions...)
	for i, p := range positions {
		c := g.cellIndex(p)
		g.cells[c] = append(g.cells[c], int32(i))
	}
}

// Len returns the number of indexed items.
func (g *Grid) Len() int { return len(g.pos) }

// CellSize returns the effective cell size.
func (g *Grid) CellSize() float64 { return g.cellSize }

// WithinRadius appends to dst the IDs of all items within radius r of
// center and returns the extended slice. Pass a reused dst to avoid
// allocation.
func (g *Grid) WithinRadius(center geometry.Vec, r float64, dst []int) []int {
	if r < 0 {
		return dst
	}
	r2 := r * r
	x0, y0 := g.cellCoords(geometry.V(center.X-r, center.Y-r))
	x1, y1 := g.cellCoords(geometry.V(center.X+r, center.Y+r))
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.cells[cy*g.nx+cx] {
				if g.pos[id].Dist2(center) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// CountWithinRadius returns the number of items within radius r of
// center without materializing the ID list.
func (g *Grid) CountWithinRadius(center geometry.Vec, r float64) int {
	if r < 0 {
		return 0
	}
	r2 := r * r
	x0, y0 := g.cellCoords(geometry.V(center.X-r, center.Y-r))
	x1, y1 := g.cellCoords(geometry.V(center.X+r, center.Y+r))
	n := 0
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.cells[cy*g.nx+cx] {
				if g.pos[id].Dist2(center) <= r2 {
					n++
				}
			}
		}
	}
	return n
}

func (g *Grid) cellCoords(p geometry.Vec) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	cx = clampInt(cx, 0, g.nx-1)
	cy = clampInt(cy, 0, g.ny-1)
	return cx, cy
}

func (g *Grid) cellIndex(p geometry.Vec) int {
	cx, cy := g.cellCoords(p)
	return cy*g.nx + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
