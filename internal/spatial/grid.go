// Package spatial provides a uniform-grid index over 2-D points for the
// fusion-range queries at the heart of the particle filter: "which
// particles lie within distance d of sensor S?".
//
// The index stores integer item IDs; callers map IDs back to their own
// records. Rebuild cost is O(n), query cost is proportional to the
// number of cells the query disc overlaps plus the number of hits —
// far cheaper than the O(n) scan a naive filter performs per
// measurement once particles have concentrated.
package spatial

import (
	"math"
	"math/bits"

	"radloc/internal/geometry"
)

// Grid is a uniform spatial hash over a rectangular region. The zero
// value is not usable; construct with NewGrid.
type Grid struct {
	bounds   geometry.Rect
	cellSize float64
	nx, ny   int
	cells    [][]int32
	pos      []geometry.Vec // item id → position
	cellOf   []int32        // item id → cell index, for O(1) Move
	hitBuf   []uint64       // WithinRadiusSorted hit bitset
}

// NewGrid creates an index over bounds with approximately the given
// cell size. cellSize is clamped so the grid has at least one and at
// most 1<<20 cells.
func NewGrid(bounds geometry.Rect, cellSize float64) *Grid {
	cellSize, nx, ny := gridDims(bounds, cellSize)
	return &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		nx:       nx,
		ny:       ny,
		cells:    make([][]int32, nx*ny),
	}
}

// gridDims resolves the effective cell size and grid dimensions for
// the given bounds: the cell size is defaulted from the extent when
// non-positive and grown until the cell count stays bounded. The
// sizing arithmetic stays in float64 so absurd inputs cannot overflow
// int.
func gridDims(bounds geometry.Rect, cellSize float64) (float64, int, int) {
	if cellSize <= 0 {
		cellSize = math.Max(bounds.Width(), bounds.Height()) / 16
	}
	if cellSize <= 0 {
		cellSize = 1
	}
	const maxCells = 1 << 20
	dims := func(cs float64) (int, int) {
		fx := math.Ceil(bounds.Width()/cs) + 1
		fy := math.Ceil(bounds.Height()/cs) + 1
		fx = math.Max(1, math.Min(fx, maxCells))
		fy = math.Max(1, math.Min(fy, maxCells))
		return int(fx), int(fy)
	}
	nx, ny := dims(cellSize)
	for float64(nx)*float64(ny) > maxCells {
		cellSize *= 2
		nx, ny = dims(cellSize)
	}
	return cellSize, nx, ny
}

// Rebuild replaces the index contents with the given positions; item i
// is positions[i]. Positions outside the bounds are clamped into the
// border cells, so no point is ever lost.
func (g *Grid) Rebuild(positions []geometry.Vec) {
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
	g.pos = append(g.pos[:0], positions...)
	if cap(g.cellOf) < len(positions) {
		g.cellOf = make([]int32, len(positions))
	}
	g.cellOf = g.cellOf[:len(positions)]
	for i, p := range positions {
		c := g.cellIndex(p)
		g.cells[c] = append(g.cells[c], int32(i))
		g.cellOf[i] = int32(c)
	}
}

// Move updates item id's position in place — the allocation-free
// alternative to a full Rebuild when only a few items changed, e.g.
// the particles a fusion disc selected. If the item stays in its cell
// the move is two stores; otherwise it is removed from the old cell's
// bucket (swap-remove, O(bucket)) and appended to the new one. id must
// be a valid index from the last Rebuild.
//
// A moved item's position within its bucket — and therefore the order
// WithinRadius reports IDs in — depends on the move history, not just
// the final positions. Callers that need an order independent of how
// the index got here must sort the query result.
func (g *Grid) Move(id int, p geometry.Vec) {
	g.pos[id] = p
	oldC := g.cellOf[id]
	newC := int32(g.cellIndex(p))
	if oldC == newC {
		return
	}
	bucket := g.cells[oldC]
	for i, v := range bucket {
		if v == int32(id) {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[oldC] = bucket[:len(bucket)-1]
			break
		}
	}
	g.cells[newC] = append(g.cells[newC], int32(id))
	g.cellOf[id] = newC
}

// Reset re-dimensions the grid for new bounds and cell size, reusing
// the existing bucket storage where possible, and empties it. It is
// the allocation-free (steady-state) alternative to NewGrid for
// callers that index fresh point sets of similar extent every round;
// follow it with Rebuild.
func (g *Grid) Reset(bounds geometry.Rect, cellSize float64) {
	g.bounds = bounds
	g.cellSize, g.nx, g.ny = gridDims(bounds, cellSize)
	want := g.nx * g.ny
	if cap(g.cells) < want {
		// Preserve the old buckets' capacity: move them into the grown
		// slice so steady-state Rebuild stays allocation-free.
		grown := make([][]int32, want)
		copy(grown, g.cells[:cap(g.cells)])
		g.cells = grown
	}
	g.cells = g.cells[:cap(g.cells)][:want]
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
	g.pos = g.pos[:0]
	g.cellOf = g.cellOf[:0]
}

// Len returns the number of indexed items.
func (g *Grid) Len() int { return len(g.pos) }

// CellSize returns the effective cell size.
func (g *Grid) CellSize() float64 { return g.cellSize }

// WithinRadius appends to dst the IDs of all items within radius r of
// center and returns the extended slice. Pass a reused dst to avoid
// allocation.
func (g *Grid) WithinRadius(center geometry.Vec, r float64, dst []int) []int {
	if r < 0 {
		return dst
	}
	r2 := r * r
	x0, y0 := g.cellCoords(geometry.V(center.X-r, center.Y-r))
	x1, y1 := g.cellCoords(geometry.V(center.X+r, center.Y+r))
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.cells[cy*g.nx+cx] {
				if g.pos[id].Dist2(center) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// WithinRadiusSorted is WithinRadius with the appended IDs in
// ascending order, independent of bucket order — and therefore of the
// Move history (see Move). It marks hits in an internal bitset and
// emits set bits in index order, costing O(hits + items/64) on top of
// the cell walk; callers whose results feed deterministic state (e.g.
// the particle filter's fusion-range selection) use this form.
func (g *Grid) WithinRadiusSorted(center geometry.Vec, r float64, dst []int) []int {
	if r < 0 {
		return dst
	}
	words := (len(g.pos) + 63) / 64
	if cap(g.hitBuf) < words {
		g.hitBuf = make([]uint64, words)
	}
	hits := g.hitBuf[:words]
	for i := range hits {
		hits[i] = 0
	}
	r2 := r * r
	x0, y0 := g.cellCoords(geometry.V(center.X-r, center.Y-r))
	x1, y1 := g.cellCoords(geometry.V(center.X+r, center.Y+r))
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.cells[cy*g.nx+cx] {
				if g.pos[id].Dist2(center) <= r2 {
					hits[id>>6] |= 1 << (uint(id) & 63)
				}
			}
		}
	}
	for w, word := range hits {
		base := w << 6
		for word != 0 {
			dst = append(dst, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return dst
}

// CountWithinRadius returns the number of items within radius r of
// center without materializing the ID list.
func (g *Grid) CountWithinRadius(center geometry.Vec, r float64) int {
	if r < 0 {
		return 0
	}
	r2 := r * r
	x0, y0 := g.cellCoords(geometry.V(center.X-r, center.Y-r))
	x1, y1 := g.cellCoords(geometry.V(center.X+r, center.Y+r))
	n := 0
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.cells[cy*g.nx+cx] {
				if g.pos[id].Dist2(center) <= r2 {
					n++
				}
			}
		}
	}
	return n
}

func (g *Grid) cellCoords(p geometry.Vec) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	cx = clampInt(cx, 0, g.nx-1)
	cy = clampInt(cy, 0, g.ny-1)
	return cx, cy
}

func (g *Grid) cellIndex(p geometry.Vec) int {
	cx, cy := g.cellCoords(p)
	return cy*g.nx + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
