package network

import (
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/rng"
)

func TestInOrderPlan(t *testing.T) {
	p := InOrder(4, 3)
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 12 {
		t.Fatalf("events = %d, want 12", len(p.Events))
	}
	// First four events are step 0 sensors 0..3 in order.
	for i := 0; i < 4; i++ {
		e := p.Events[i]
		if e.SensorIndex != i || e.EmitStep != 0 {
			t.Errorf("event %d = %+v", i, e)
		}
	}
	if p.ReorderFraction() != 0 {
		t.Errorf("in-order plan reorder fraction = %v", p.ReorderFraction())
	}
}

func TestInOrderDegenerate(t *testing.T) {
	if p := InOrder(0, 5); len(p.Events) != 0 {
		t.Errorf("zero sensors: %d events", len(p.Events))
	}
	if p := InOrder(5, 0); len(p.Events) != 0 || p.Steps != 0 {
		t.Errorf("zero steps: %+v", p)
	}
}

func TestEventsInStep(t *testing.T) {
	p := InOrder(6, 4)
	total := 0
	for step := 0; step < 4; step++ {
		evs := p.EventsInStep(step)
		if len(evs) != 6 {
			t.Errorf("step %d has %d events, want 6", step, len(evs))
		}
		for _, e := range evs {
			if e.EmitStep != step {
				t.Errorf("step %d got event emitted at %d", step, e.EmitStep)
			}
		}
		total += len(evs)
	}
	if total != len(p.Events) {
		t.Errorf("steps cover %d of %d events", total, len(p.Events))
	}
}

func TestOutOfOrderReordersAndCoversAllSteps(t *testing.T) {
	s := rng.New(11, 13)
	p := OutOfOrder(36, 10, s, Options{MeanLatency: 0.8})
	if err := p.Validate(36); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 360 {
		t.Fatalf("no-drop plan lost events: %d", len(p.Events))
	}
	if f := p.ReorderFraction(); f <= 0.05 {
		t.Errorf("out-of-order plan barely reordered: %v", f)
	}
	// All events are still delivered inside the plan horizon via the
	// final-step straggler rule.
	total := 0
	for step := 0; step < p.Steps; step++ {
		total += len(p.EventsInStep(step))
	}
	if total != len(p.Events) {
		t.Errorf("steps cover %d of %d events (stragglers lost)", total, len(p.Events))
	}
}

func TestOutOfOrderDrops(t *testing.T) {
	s := rng.New(3, 3)
	p := OutOfOrder(50, 10, s, Options{MeanLatency: 0.2, DropProb: 0.3})
	got := len(p.Events)
	if got >= 500 || got < 250 {
		t.Errorf("drop prob 0.3 kept %d/500 events", got)
	}
	// Clamp out-of-range drop probabilities.
	all := OutOfOrder(10, 2, rng.New(1, 1), Options{DropProb: 2})
	if len(all.Events) != 0 {
		t.Errorf("DropProb>1 should drop everything, kept %d", len(all.Events))
	}
	none := OutOfOrder(10, 2, rng.New(1, 1), Options{DropProb: -1})
	if len(none.Events) != 20 {
		t.Errorf("DropProb<0 should keep everything, kept %d", len(none.Events))
	}
}

func TestOutOfOrderDeterministic(t *testing.T) {
	p1 := OutOfOrder(20, 5, rng.New(9, 9), Options{MeanLatency: 0.5})
	p2 := OutOfOrder(20, 5, rng.New(9, 9), Options{MeanLatency: 0.5})
	if len(p1.Events) != len(p2.Events) {
		t.Fatal("plans differ in length")
	}
	for i := range p1.Events {
		if p1.Events[i] != p2.Events[i] {
			t.Fatalf("plans diverge at event %d", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := InOrder(4, 2)
	bad := p
	bad.Events = append([]Event(nil), p.Events...)
	bad.Events[3].SensorIndex = 99
	if err := bad.Validate(4); err == nil {
		t.Error("bad sensor index not caught")
	}
	bad.Events[3] = p.Events[3]
	bad.Events[5].Arrival = -1
	if err := bad.Validate(4); err == nil {
		t.Error("non-monotone arrival not caught")
	}
	bad.Events[5] = p.Events[5]
	bad.Events[2].EmitStep = 7
	if err := bad.Validate(4); err == nil {
		t.Error("emit step out of range not caught")
	}
}

func TestMultiHopLatencyGrowsWithDistance(t *testing.T) {
	// Sensors at 1, 3 and 9 hops from the sink.
	sensors := []geometry.Vec{
		geometry.V(5, 0),  // 1 hop at range 10
		geometry.V(25, 0), // 3 hops
		geometry.V(85, 0), // 9 hops
	}
	p := MultiHop(sensors, 40, rng.New(7, 7), MultiHopOptions{
		Sink:          geometry.V(0, 0),
		RadioRange:    10,
		PerHopLatency: 0.2,
	})
	if err := p.Validate(len(sensors)); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 3*40 {
		t.Fatalf("events = %d", len(p.Events))
	}
	// Mean latency per sensor must be ordered by hop count.
	var sum [3]float64
	var n [3]int
	for _, ev := range p.Events {
		sum[ev.SensorIndex] += ev.Arrival - float64(ev.EmitStep)
		n[ev.SensorIndex]++
	}
	l0, l1, l2 := sum[0]/float64(n[0]), sum[1]/float64(n[1]), sum[2]/float64(n[2])
	if !(l0 < l1 && l1 < l2) {
		t.Errorf("latencies not ordered by hops: %v %v %v", l0, l1, l2)
	}
}

func TestMultiHopDropsCompound(t *testing.T) {
	near := []geometry.Vec{geometry.V(5, 0)} // 1 hop
	far := []geometry.Vec{geometry.V(95, 0)} // 10 hops
	opts := MultiHopOptions{Sink: geometry.V(0, 0), RadioRange: 10, PerHopLatency: 0.1, DropPerHop: 0.1}
	pn := MultiHop(near, 400, rng.New(1, 1), opts)
	pf := MultiHop(far, 400, rng.New(1, 1), opts)
	// 1 hop keeps ~90%, 10 hops keep ~35%.
	if len(pn.Events) < 320 || len(pn.Events) > 390 {
		t.Errorf("near kept %d/400", len(pn.Events))
	}
	if len(pf.Events) > 200 || len(pf.Events) < 80 {
		t.Errorf("far kept %d/400", len(pf.Events))
	}
}

func TestMultiHopDegenerate(t *testing.T) {
	if p := MultiHop(nil, 5, rng.New(1, 1), MultiHopOptions{}); len(p.Events) != 0 {
		t.Errorf("no sensors: %d events", len(p.Events))
	}
	// Zero radio range falls back, drop ≥ 1 clamps (not everything lost
	// forever, but nearly).
	p := MultiHop([]geometry.Vec{geometry.V(0.5, 0)}, 10, rng.New(1, 1), MultiHopOptions{
		Sink: geometry.V(0, 0), RadioRange: 0, PerHopLatency: 0.1, DropPerHop: 5,
	})
	if err := p.Validate(1); err != nil {
		t.Fatal(err)
	}
}

func TestPlanFilter(t *testing.T) {
	p := InOrder(4, 3)
	// Knock sensor 2 out entirely (a dead sensor's delivery-level fault).
	q := p.Filter(func(e Event) bool { return e.SensorIndex != 2 })
	if len(q.Events) != 9 {
		t.Fatalf("filtered events = %d, want 9", len(q.Events))
	}
	if q.Steps != p.Steps {
		t.Errorf("filtered Steps = %d, want %d", q.Steps, p.Steps)
	}
	if err := q.Validate(4); err != nil {
		t.Fatal(err)
	}
	for _, e := range q.Events {
		if e.SensorIndex == 2 {
			t.Fatalf("sensor 2 survived the filter: %+v", e)
		}
	}
	// The original plan is untouched.
	if len(p.Events) != 12 {
		t.Errorf("Filter mutated the source plan: %d events", len(p.Events))
	}
	// Keep-all round-trips.
	if all := p.Filter(func(Event) bool { return true }); len(all.Events) != 12 {
		t.Errorf("keep-all filter dropped events: %d", len(all.Events))
	}
}
