// Package network simulates how sensor measurements reach the fusion
// center. The paper's algorithm deliberately consumes one measurement
// per iteration with no ordering requirement (Section V), which makes
// it robust to the delivery pathologies of multi-hop wireless sensor
// networks. This package produces delivery plans that exercise that
// robustness:
//
//   - InOrder: every sensor reports once per time step, in sensor-ID
//     order (the paper's Scenarios A and B).
//   - OutOfOrder: per-message random latency reorders deliveries across
//     step boundaries, and messages may be lost (Scenario C).
package network

import (
	"fmt"
	"math"
	"sort"

	"radloc/internal/geometry"
	"radloc/internal/rng"
)

// Event is one measurement delivery: sensor SensorIndex's reading taken
// at time step EmitStep arrives at time Arrival (in fractional time-step
// units).
type Event struct {
	SensorIndex int
	EmitStep    int
	Arrival     float64
}

// Plan is an ordered sequence of deliveries spanning Steps time steps.
type Plan struct {
	Events []Event
	Steps  int
}

// Validate checks internal consistency (monotone arrivals, sane
// indices). Useful in tests and when loading plans from configs.
func (p Plan) Validate(numSensors int) error {
	prev := -1.0
	for i, e := range p.Events {
		if e.SensorIndex < 0 || e.SensorIndex >= numSensors {
			return fmt.Errorf("network: event %d has sensor index %d out of [0,%d)", i, e.SensorIndex, numSensors)
		}
		if e.EmitStep < 0 || e.EmitStep >= p.Steps {
			return fmt.Errorf("network: event %d has emit step %d out of [0,%d)", i, e.EmitStep, p.Steps)
		}
		if e.Arrival < prev {
			return fmt.Errorf("network: event %d arrives at %v before predecessor %v", i, e.Arrival, prev)
		}
		prev = e.Arrival
	}
	return nil
}

// EventsInStep returns the (contiguous) events whose arrival lies in
// [step, step+1). Events arriving at or after Steps are folded into the
// final step so late stragglers are still processed.
func (p Plan) EventsInStep(step int) []Event {
	lo := sort.Search(len(p.Events), func(i int) bool {
		return p.Events[i].Arrival >= float64(step)
	})
	hiBound := float64(step + 1)
	if step == p.Steps-1 {
		hiBound = float64(p.Steps) + 1e18 // absorb stragglers
	}
	hi := sort.Search(len(p.Events), func(i int) bool {
		return p.Events[i].Arrival >= hiBound
	})
	return p.Events[lo:hi]
}

// Filter returns a copy of the plan keeping only the events for which
// keep returns true. Arrival order is preserved. This is the hook
// fault injectors use to knock delivery-level faults (dropouts, dead
// sensors) out of a schedule before it is replayed.
func (p Plan) Filter(keep func(Event) bool) Plan {
	out := Plan{Events: make([]Event, 0, len(p.Events)), Steps: p.Steps}
	for _, e := range p.Events {
		if keep(e) {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// InOrder builds the paper's default delivery plan: in each of steps
// time steps, every one of numSensors sensors delivers exactly one
// measurement, in index order.
func InOrder(numSensors, steps int) Plan {
	if numSensors < 1 || steps < 1 {
		return Plan{Steps: maxInt(steps, 0)}
	}
	events := make([]Event, 0, numSensors*steps)
	for t := 0; t < steps; t++ {
		for i := 0; i < numSensors; i++ {
			events = append(events, Event{
				SensorIndex: i,
				EmitStep:    t,
				Arrival:     float64(t) + float64(i)/float64(numSensors),
			})
		}
	}
	return Plan{Events: events, Steps: steps}
}

// Options configures OutOfOrder delivery.
type Options struct {
	// MeanLatency is the mean extra delay per message, in time-step
	// units, drawn from an exponential distribution. Zero means no
	// extra delay (but per-step emission order is still shuffled).
	MeanLatency float64
	// DropProb is the probability a message is lost entirely.
	DropProb float64
}

// OutOfOrder builds a Scenario-C-style plan: each sensor still emits
// once per step, but messages suffer random exponential latency
// (reordering them across steps) and may be dropped.
func OutOfOrder(numSensors, steps int, stream *rng.Stream, opts Options) Plan {
	if numSensors < 1 || steps < 1 {
		return Plan{Steps: maxInt(steps, 0)}
	}
	if opts.DropProb < 0 {
		opts.DropProb = 0
	}
	if opts.DropProb > 1 {
		opts.DropProb = 1
	}
	events := make([]Event, 0, numSensors*steps)
	for t := 0; t < steps; t++ {
		for i := 0; i < numSensors; i++ {
			if opts.DropProb > 0 && stream.Float64() < opts.DropProb {
				continue
			}
			emit := float64(t) + stream.Float64() // random slot within the step
			events = append(events, Event{
				SensorIndex: i,
				EmitStep:    t,
				Arrival:     emit + stream.Exponential(opts.MeanLatency),
			})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Arrival < events[b].Arrival })
	return Plan{Events: events, Steps: steps}
}

// MultiHopOptions configures hop-count-based delivery: the paper
// attributes network latency to "multi-hop wireless forwarding and
// signal interference" (Section V), so latency grows with each sensor's
// hop distance from the fusion center rather than being i.i.d.
type MultiHopOptions struct {
	// Sink is the fusion center's position.
	Sink geometry.Vec
	// RadioRange is one hop's reach (> 0).
	RadioRange float64
	// PerHopLatency is the mean extra delay per hop, in time-step
	// units; each hop also draws exponential jitter of the same mean.
	PerHopLatency float64
	// DropPerHop is the per-hop loss probability, compounded over the
	// route (clamped to [0, 1)).
	DropPerHop float64
}

// MultiHop builds a delivery plan where sensor i's messages take
// ceil(dist(i, sink)/RadioRange) hops, each adding deterministic plus
// exponential latency and an independent loss chance.
func MultiHop(sensors []geometry.Vec, steps int, stream *rng.Stream, opts MultiHopOptions) Plan {
	if len(sensors) < 1 || steps < 1 {
		return Plan{Steps: maxInt(steps, 0)}
	}
	if opts.RadioRange <= 0 {
		opts.RadioRange = 1
	}
	if opts.DropPerHop < 0 {
		opts.DropPerHop = 0
	}
	if opts.DropPerHop >= 1 {
		opts.DropPerHop = 0.999
	}
	hops := make([]int, len(sensors))
	for i, p := range sensors {
		h := int(math.Ceil(p.Dist(opts.Sink) / opts.RadioRange))
		if h < 1 {
			h = 1
		}
		hops[i] = h
	}
	events := make([]Event, 0, len(sensors)*steps)
	for t := 0; t < steps; t++ {
		for i := range sensors {
			dropped := false
			for h := 0; h < hops[i]; h++ {
				if opts.DropPerHop > 0 && stream.Float64() < opts.DropPerHop {
					dropped = true
					break
				}
			}
			if dropped {
				continue
			}
			latency := float64(hops[i])*opts.PerHopLatency +
				stream.Exponential(opts.PerHopLatency)
			events = append(events, Event{
				SensorIndex: i,
				EmitStep:    t,
				Arrival:     float64(t) + stream.Float64() + latency,
			})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Arrival < events[b].Arrival })
	return Plan{Events: events, Steps: steps}
}

// ReorderFraction reports the fraction of adjacent delivery pairs whose
// emit steps are inverted (a later-emitted message arriving first) — a
// simple scalar measure of how out-of-order a plan is.
func (p Plan) ReorderFraction() float64 {
	if len(p.Events) < 2 {
		return 0
	}
	inv := 0
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].EmitStep < p.Events[i-1].EmitStep {
			inv++
		}
	}
	return float64(inv) / float64(len(p.Events)-1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
