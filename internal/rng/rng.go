// Package rng provides the deterministic random-number streams used by
// the simulator and the particle filter.
//
// Every run of an experiment is driven by a single root seed; named
// sub-streams are derived from it so that, for example, the measurement
// noise of trial 7 is identical no matter how many goroutines execute
// the other trials. The generator is based on math/rand/v2's PCG but is
// wrapped so all domain-specific variates (Poisson, Gaussian,
// point-in-rect) live in one audited place.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random variate generator. It is NOT safe
// for concurrent use; derive one Stream per goroutine via Split.
type Stream struct {
	src *rand.Rand
	pcg *rand.PCG
}

// New returns a Stream seeded with the two words of seed material.
func New(seed1, seed2 uint64) *Stream {
	pcg := rand.NewPCG(seed1, seed2)
	return &Stream{src: rand.New(pcg), pcg: pcg}
}

// MarshalBinary captures the generator's exact position so a restored
// Stream continues the identical variate sequence — the foundation of
// checkpointed crash recovery, where "replay the WAL tail" is only
// sound if the filter's randomness resumes where it left off.
func (s *Stream) MarshalBinary() ([]byte, error) {
	return s.pcg.MarshalBinary()
}

// UnmarshalBinary restores a position captured by MarshalBinary.
func (s *Stream) UnmarshalBinary(data []byte) error {
	return s.pcg.UnmarshalBinary(data)
}

// NewNamed derives a stream from a root seed and a human-readable
// purpose label ("measurements", "particles/init", ...). Identical
// (seed, name) pairs always yield identical streams.
func NewNamed(seed uint64, name string) *Stream {
	h := fnv.New64a()
	// fnv Write never fails.
	_, _ = h.Write([]byte(name))
	return New(seed, h.Sum64())
}

// Split derives an independent child stream; the parent advances by two
// draws. Use it to hand one stream to each worker goroutine.
func (s *Stream) Split() *Stream {
	return New(s.src.Uint64(), s.src.Uint64())
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.src.Float64() }

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.src.Float64()
}

// IntN returns a uniform integer in [0, n). n must be positive.
func (s *Stream) IntN(n int) int { return s.src.IntN(n) }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.src.Perm(n) }

// Normal returns a Gaussian variate with the given mean and standard
// deviation (sigma ≥ 0; sigma = 0 returns mean).
func (s *Stream) Normal(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*s.src.NormFloat64()
}

// Poisson returns a Poisson variate with mean lambda.
//
// Small means use Knuth's product method; large means (λ > 30) use the
// PTRS transformed-rejection sampler of Hörmann (1993), which is O(1)
// and exact. Non-positive or non-finite lambda returns 0.
func (s *Stream) Poisson(lambda float64) int {
	switch {
	case !(lambda > 0) || math.IsInf(lambda, 0):
		return 0
	case lambda < 30:
		return s.poissonKnuth(lambda)
	default:
		return s.poissonPTRS(lambda)
	}
}

func (s *Stream) poissonKnuth(lambda float64) int {
	limit := math.Exp(-lambda)
	p := 1.0
	k := 0
	for {
		p *= s.src.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm.
func (s *Stream) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := s.src.Float64() - 0.5
		v := s.src.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}

// Exponential returns an exponential variate with the given mean
// (mean ≤ 0 returns 0).
func (s *Stream) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.src.ExpFloat64() * mean
}

// Shuffle randomly permutes n elements using the provided swap
// function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	s.src.Shuffle(n, swap)
}
