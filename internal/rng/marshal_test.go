package rng

import "testing"

// TestMarshalRoundTrip: a restored stream must continue the exact
// variate sequence of the original — the property checkpointed crash
// recovery rests on.
func TestMarshalRoundTrip(t *testing.T) {
	s := NewNamed(42, "marshal-test")
	// Burn a mixed prefix so the PCG is mid-sequence, not at a seed
	// boundary.
	for i := 0; i < 257; i++ {
		s.Float64()
		s.Normal(0, 1)
		s.Poisson(55)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewNamed(7, "different-seed-entirely")
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := s.Float64(), restored.Float64(); a != b {
			t.Fatalf("draw %d diverged: %v vs %v", i, a, b)
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	s := New(1, 2)
	if err := s.UnmarshalBinary([]byte("xx")); err == nil {
		t.Fatal("garbage accepted")
	}
}
