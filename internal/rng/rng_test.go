package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewNamed(42, "measurements")
	b := NewNamed(42, "measurements")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with identical (seed,name) diverged at draw %d", i)
		}
	}
}

func TestNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(42, "alpha")
	b := NewNamed(42, "beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("differently-named streams coincide on %d/100 draws", same)
	}
}

func TestSplitProducesDistinctStream(t *testing.T) {
	parent := New(1, 2)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Float64() == child.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split child matches parent on %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(7, 7)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(3, 9)
	const n = 200_000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.Normal(10, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ≈10", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ≈4", variance)
	}
	if got := s.Normal(5, 0); got != 5 {
		t.Errorf("sigma=0 returns %v, want mean", got)
	}
	if got := s.Normal(5, -1); got != 5 {
		t.Errorf("sigma<0 returns %v, want mean", got)
	}
}

func TestPoissonMoments(t *testing.T) {
	// Both the Knuth (small λ) and PTRS (large λ) paths must have the
	// right mean and variance (for Poisson, both equal λ).
	for _, lambda := range []float64{0.5, 4, 12, 29.5, 45, 300, 5000} {
		s := New(11, uint64(lambda*1000))
		const n = 100_000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			k := float64(s.Poisson(lambda))
			sum += k
			sum2 += k * k
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		tol := 4 * math.Sqrt(lambda/n) * math.Max(1, math.Sqrt(lambda))
		if math.Abs(mean-lambda) > math.Max(tol, 0.05) {
			t.Errorf("λ=%v: mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.1 {
			t.Errorf("λ=%v: variance = %v", lambda, variance)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	s := New(1, 1)
	if got := s.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
	if got := s.Poisson(math.NaN()); got != 0 {
		t.Errorf("Poisson(NaN) = %d, want 0", got)
	}
	if got := s.Poisson(math.Inf(1)); got != 0 {
		t.Errorf("Poisson(+Inf) = %d, want 0", got)
	}
}

func TestPoissonNeverNegative(t *testing.T) {
	s := New(5, 5)
	for _, lambda := range []float64{0.01, 1, 31, 1e4} {
		for i := 0; i < 10_000; i++ {
			if k := s.Poisson(lambda); k < 0 {
				t.Fatalf("negative Poisson draw %d at λ=%v", k, lambda)
			}
		}
	}
}

func TestExponential(t *testing.T) {
	s := New(13, 17)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		x := s.Exponential(3)
		if x < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Errorf("Exponential mean = %v, want ≈3", mean)
	}
	if got := s.Exponential(0); got != 0 {
		t.Errorf("Exponential(0) = %v, want 0", got)
	}
}

func TestPermAndShuffle(t *testing.T) {
	s := New(2, 4)
	p := s.Perm(10)
	seen := make(map[int]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	xs := []int{0, 1, 2, 3, 4, 5}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 15 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestIntN(t *testing.T) {
	s := New(9, 9)
	counts := make([]int, 5)
	for i := 0; i < 50_000; i++ {
		counts[s.IntN(5)]++
	}
	for i, c := range counts {
		if c < 8_000 || c > 12_000 {
			t.Errorf("IntN bucket %d heavily skewed: %d", i, c)
		}
	}
}
