package mobile

import (
	"container/heap"
	"math"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/radiation"
)

// AvoidingPlanner wraps a Planner with obstacle avoidance: when the
// straight line to the desired waypoint crosses an obstacle footprint,
// it plans a detour with A* over an occupancy grid — the motion-
// planning concern of the paper's references [19] and [20] (tracking
// with obstacle detection and avoidance).
type AvoidingPlanner struct {
	// Inner chooses the desired waypoint from the particles.
	Inner Planner
	// Obstacles are the footprints the surveyor must not enter.
	Obstacles []radiation.Obstacle
	// CellSize is the planning grid resolution (default Inner.Speed,
	// at least 1).
	CellSize float64
	// Clearance inflates obstacles by this margin (default CellSize/2).
	Clearance float64
}

// Validate checks the planner configuration.
func (p AvoidingPlanner) Validate() error {
	return p.Inner.Validate()
}

func (p AvoidingPlanner) cellSize() float64 {
	if p.CellSize > 0 {
		return p.CellSize
	}
	return math.Max(p.Inner.Speed, 1)
}

func (p AvoidingPlanner) clearance() float64 {
	if p.Clearance > 0 {
		return p.Clearance
	}
	return p.cellSize() / 2
}

// Next returns the surveyor's next position: the inner planner's move
// when its line of travel is collision-free, otherwise the first
// stretch of an A* detour toward the particle mass around the blocking
// obstacles.
func (p AvoidingPlanner) Next(cur geometry.Vec, parts []core.Particle) geometry.Vec {
	target, ok := massCenter(parts)
	if !ok {
		return cur
	}
	if !p.blockedSegment(cur, target) {
		want := p.Inner.Next(cur, parts)
		if !p.blockedSegment(cur, want) && !p.inside(want) {
			return want
		}
	}
	// The direct line is blocked: plan around the obstacles toward the
	// mass itself (not the one-step waypoint, which may sit inside the
	// wall between here and there).
	path := p.route(cur, target)
	if len(path) == 0 {
		// No route (target enclosed): hold position rather than clip
		// through walls.
		return cur
	}
	// Walk along the planned path up to Speed.
	budget := p.Inner.Speed
	pos := cur
	for _, wp := range path {
		d := pos.Dist(wp)
		if d >= budget {
			return pos.Lerp(wp, budget/d)
		}
		budget -= d
		pos = wp
	}
	return pos
}

// inside reports whether q lies within any (inflated) obstacle.
func (p AvoidingPlanner) inside(q geometry.Vec) bool {
	for i := range p.Obstacles {
		ob := &p.Obstacles[i]
		if ob.Shape.Bounds().Expand(p.clearance()).Contains(q) {
			if ob.Shape.Contains(q) {
				return true
			}
			// Near the boundary: respect the clearance margin.
			for _, e := range ob.Shape.Edges() {
				if e.DistTo(q) <= p.clearance() {
					return true
				}
			}
		}
	}
	return false
}

// blockedSegment reports whether the straight segment a→b crosses any
// obstacle.
func (p AvoidingPlanner) blockedSegment(a, b geometry.Vec) bool {
	s := geometry.Seg(a, b)
	for i := range p.Obstacles {
		if p.Obstacles[i].Shape.IntersectsSegment(s) {
			return true
		}
	}
	return false
}

// route plans an 8-connected A* path on the occupancy grid from `from`
// to `to`, returning intermediate waypoints (excluding `from`). An
// empty result means no route exists.
func (p AvoidingPlanner) route(from, to geometry.Vec) []geometry.Vec {
	b := p.Inner.Bounds
	cs := p.cellSize()
	nx := int(math.Ceil(b.Width()/cs)) + 1
	ny := int(math.Ceil(b.Height()/cs)) + 1
	if nx < 2 || ny < 2 || nx*ny > 1<<20 {
		return nil
	}
	center := func(cx, cy int) geometry.Vec {
		return geometry.V(b.Min.X+(float64(cx)+0.5)*cs, b.Min.Y+(float64(cy)+0.5)*cs)
	}
	cellOf := func(q geometry.Vec) (int, int) {
		cx := int((q.X - b.Min.X) / cs)
		cy := int((q.Y - b.Min.Y) / cs)
		return clampI(cx, 0, nx-1), clampI(cy, 0, ny-1)
	}

	blocked := make([]bool, nx*ny)
	for cy := 0; cy < ny; cy++ {
		for cx := 0; cx < nx; cx++ {
			blocked[cy*nx+cx] = p.inside(center(cx, cy))
		}
	}
	sx, sy := cellOf(from)
	tx, ty := cellOf(to)
	blocked[sy*nx+sx] = false // the surveyor's own cell is passable
	if blocked[ty*nx+tx] {
		// The desired waypoint sits inside an obstacle (e.g. the
		// particle mass centroid falls on a wall): aim for the nearest
		// free cell instead so the surveyor can still close in.
		ntx, nty, ok := nearestFree(blocked, nx, ny, tx, ty)
		if !ok {
			return nil
		}
		tx, ty = ntx, nty
		to = center(tx, ty)
	}

	const unvisited = math.MaxFloat64
	gScore := make([]float64, nx*ny)
	cameFrom := make([]int32, nx*ny)
	for i := range gScore {
		gScore[i] = unvisited
		cameFrom[i] = -1
	}
	h := func(cx, cy int) float64 {
		return math.Hypot(float64(cx-tx), float64(cy-ty))
	}
	start := sy*nx + sx
	goal := ty*nx + tx
	gScore[start] = 0
	pq := &nodeQueue{{idx: start, f: h(sx, sy)}}

	for pq.Len() > 0 {
		n := heap.Pop(pq).(node)
		if n.idx == goal {
			return p.reconstruct(cameFrom, goal, nx, center, to)
		}
		cx, cy := n.idx%nx, n.idx/nx
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				mx, my := cx+dx, cy+dy
				if mx < 0 || my < 0 || mx >= nx || my >= ny {
					continue
				}
				mi := my*nx + mx
				if blocked[mi] {
					continue
				}
				// Forbid diagonal corner cutting.
				if dx != 0 && dy != 0 &&
					(blocked[cy*nx+mx] || blocked[my*nx+cx]) {
					continue
				}
				step := 1.0
				if dx != 0 && dy != 0 {
					step = math.Sqrt2
				}
				g := gScore[n.idx] + step
				if g < gScore[mi] {
					gScore[mi] = g
					cameFrom[mi] = int32(n.idx)
					heap.Push(pq, node{idx: mi, f: g + h(mx, my)})
				}
			}
		}
	}
	return nil
}

// reconstruct walks cameFrom back from the goal and returns waypoints
// in travel order, ending at the exact target.
func (p AvoidingPlanner) reconstruct(cameFrom []int32, goal, nx int, center func(int, int) geometry.Vec, to geometry.Vec) []geometry.Vec {
	var rev []geometry.Vec
	for i := goal; i >= 0; i = int(cameFrom[i]) {
		rev = append(rev, center(i%nx, i/nx))
		if cameFrom[i] < 0 {
			break
		}
	}
	out := make([]geometry.Vec, 0, len(rev))
	for i := len(rev) - 2; i >= 0; i-- { // drop the start cell
		out = append(out, rev[i])
	}
	if len(out) == 0 {
		return []geometry.Vec{to}
	}
	out[len(out)-1] = to
	return out
}

// nearestFree breadth-first-searches outward from (tx, ty) for the
// closest unblocked cell.
func nearestFree(blocked []bool, nx, ny, tx, ty int) (int, int, bool) {
	type cell struct{ x, y int }
	seen := make(map[cell]bool, 64)
	queue := []cell{{tx, ty}}
	seen[cell{tx, ty}] = true
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if !blocked[c.y*nx+c.x] {
			return c.x, c.y, true
		}
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				m := cell{c.x + dx, c.y + dy}
				if m.x < 0 || m.y < 0 || m.x >= nx || m.y >= ny || seen[m] {
					continue
				}
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return 0, 0, false
}

type node struct {
	idx int
	f   float64
}

type nodeQueue []node

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(a, b int) bool { return q[a].f < q[b].f }
func (q nodeQueue) Swap(a, b int)      { q[a], q[b] = q[b], q[a] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(node)) }
func (q *nodeQueue) Pop() any          { old := *q; n := old[len(old)-1]; *q = old[:len(old)-1]; return n }

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
