package mobile

import (
	"testing"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func wallObstacle() radiation.Obstacle {
	// A vertical wall splitting the area, with a gap at the top.
	return radiation.Obstacle{
		Shape: geometry.NewRect(geometry.V(48, 0), geometry.V(52, 80)).Polygon(),
		Mu:    0.1,
		Name:  "wall",
	}
}

func avoider() AvoidingPlanner {
	return AvoidingPlanner{
		Inner:     Planner{Speed: 4, Bounds: bounds100()},
		Obstacles: []radiation.Obstacle{wallObstacle()},
		CellSize:  4,
	}
}

func TestAvoidingPlannerStraightWhenClear(t *testing.T) {
	p := avoider()
	parts := particlesAt(geometry.V(30, 80), 100, 1.0/100)
	cur := geometry.V(20, 20)
	next := p.Next(cur, parts)
	want := p.Inner.Next(cur, parts)
	if !next.Eq(want) {
		t.Errorf("clear path altered: %v vs inner %v", next, want)
	}
}

func TestAvoidingPlannerRoutesAroundWall(t *testing.T) {
	p := avoider()
	parts := particlesAt(geometry.V(80, 20), 200, 1.0/200)
	cur := geometry.V(20, 20)

	visited := []geometry.Vec{cur}
	for i := 0; i < 80; i++ {
		next := p.Next(cur, parts)
		if p.inside(next) {
			t.Fatalf("step %d entered an obstacle: %v", i, next)
		}
		if d := next.Dist(cur); d > p.Inner.Speed+1e-6 {
			t.Fatalf("step %d moved %v > speed", i, d)
		}
		cur = next
		visited = append(visited, cur)
		if cur.Dist(geometry.V(80, 20)) < 10 {
			break
		}
	}
	if cur.Dist(geometry.V(80, 20)) > 12 {
		t.Fatalf("never reached the far side; stopped at %v", cur)
	}
	// The detour must have gone over the wall's gap (y > 80 region) at
	// some point, since the wall blocks y ∈ [0,80].
	overGap := false
	for _, v := range visited {
		if v.X > 44 && v.X < 56 && v.Y > 78 {
			overGap = true
		}
	}
	if !overGap {
		t.Error("path crossed the wall without using the gap")
	}
}

func TestAvoidingPlannerHoldsWhenEnclosed(t *testing.T) {
	// Target completely walled in: the planner must hold position, not
	// clip through.
	box := radiation.Obstacle{
		Shape: geometry.MustPolygon([]geometry.Vec{
			geometry.V(60, 60), geometry.V(90, 60), geometry.V(90, 90), geometry.V(60, 90),
		}),
	}
	p := AvoidingPlanner{
		Inner:     Planner{Speed: 4, Bounds: bounds100()},
		Obstacles: []radiation.Obstacle{box},
		CellSize:  4,
	}
	parts := particlesAt(geometry.V(75, 75), 100, 1.0/100) // inside the box
	cur := geometry.V(20, 20)
	for i := 0; i < 40; i++ {
		next := p.Next(cur, parts)
		if p.inside(next) {
			t.Fatalf("entered the sealed box at step %d: %v", i, next)
		}
		cur = next
	}
}

func TestAvoidingPlannerValidate(t *testing.T) {
	bad := AvoidingPlanner{Inner: Planner{}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid inner planner accepted")
	}
	if err := avoider().Validate(); err != nil {
		t.Errorf("valid avoider rejected: %v", err)
	}
}

func TestAvoidingPlannerNoParticles(t *testing.T) {
	p := avoider()
	cur := geometry.V(10, 10)
	if next := p.Next(cur, nil); !next.Eq(cur) {
		t.Errorf("moved without particles: %v", next)
	}
}

func TestAvoidingPlannerEndToEndLocalization(t *testing.T) {
	// Full loop: source behind the wall; surveyor routes around it and
	// still pins the source. Uses the same fixed-grid + surveyor setup
	// as the basic planner test but with the wall in the way (also
	// shielding measurements).
	truth := []radiation.Source{{Pos: geometry.V(80, 30), Strength: 100}}
	obstacles := []radiation.Obstacle{wallObstacle()}
	loc, err := core.NewLocalizer(core.Config{
		Bounds: bounds100(), Seed: 12, Workers: 2, FusionRange: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed := sensor.Grid(bounds100(), 3, 3, sensor.DefaultEfficiency, 5)
	p := avoider()
	surveyor := geometry.V(10, 10)
	moved := 0
	for step := 0; step < 60; step++ {
		for _, sen := range fixed {
			loc.Ingest(sen, poissonAt(t, sen, truth, obstacles, step))
		}
		sen := sensorAt(100, surveyor)
		loc.Ingest(sen, poissonAt(t, sen, truth, obstacles, step))
		next := p.Next(surveyor, loc.Particles())
		if !next.Eq(surveyor) {
			moved++
		}
		surveyor = next
	}
	if moved < 20 {
		t.Errorf("surveyor barely moved (%d steps)", moved)
	}
	best := 1e18
	for _, e := range loc.Estimates() {
		if d := e.Pos.Dist(truth[0].Pos); d < best {
			best = d
		}
	}
	if best > 14 {
		t.Errorf("error %v after a 60-step survey", best)
	}
}

// sensorAt builds a standard test sensor.
func sensorAt(id int, pos geometry.Vec) sensor.Sensor {
	return sensor.Sensor{ID: id, Pos: pos, Efficiency: sensor.DefaultEfficiency, Background: 5}
}

// poissonAt draws one reading for the sensor under the given truth.
func poissonAt(t *testing.T, sen sensor.Sensor, truth []radiation.Source, obstacles []radiation.Obstacle, step int) int {
	t.Helper()
	if surveyStream == nil {
		surveyStream = rng.NewNamed(12, "mobile/avoid-e2e")
	}
	return sen.Measure(surveyStream, truth, obstacles, step).CPM
}

var surveyStream *rng.Stream
