// Package mobile implements a controlled search with a moving detector,
// after Ristic et al. [18] ("A controlled search for radioactive point
// sources", cited in Section II): a surveyor carries a radiation sensor
// through the area, each move chosen from the current particle
// population, and the same particle filter does detection and
// localization along the way.
//
// The planner is the classic greedy two-phase behaviour: while far from
// the filter's probability mass, drive toward it; once close, orbit it
// so consecutive readings triangulate the source instead of sampling
// the same bearing twice.
package mobile

import (
	"errors"
	"math"

	"radloc/internal/core"
	"radloc/internal/geometry"
)

// Planner chooses surveyor waypoints from particle populations.
type Planner struct {
	// Speed is the distance moved per filter iteration (> 0).
	Speed float64
	// Bounds clamps the trajectory.
	Bounds geometry.Rect
	// OrbitRadius is the stand-off distance at which the planner stops
	// approaching and starts circling (default 2 × Speed, at least 5).
	OrbitRadius float64
}

// ErrBadPlanner reports an unusable configuration.
var ErrBadPlanner = errors.New("mobile: bad planner")

// Validate checks the planner configuration.
func (p Planner) Validate() error {
	if p.Speed <= 0 {
		return errors.Join(ErrBadPlanner, errors.New("speed must be positive"))
	}
	if p.Bounds.Width() <= 0 || p.Bounds.Height() <= 0 {
		return errors.Join(ErrBadPlanner, errors.New("empty bounds"))
	}
	return nil
}

func (p Planner) orbitRadius() float64 {
	r := p.OrbitRadius
	if r <= 0 {
		r = math.Max(2*p.Speed, 5)
	}
	return r
}

// Next returns the surveyor's next position given the current particle
// population. With no usable particles the surveyor holds position.
func (p Planner) Next(cur geometry.Vec, parts []core.Particle) geometry.Vec {
	target, ok := massCenter(parts)
	if !ok {
		return cur
	}
	to := target.Sub(cur)
	dist := to.Norm()
	var step geometry.Vec
	if dist > p.orbitRadius() {
		// Approach phase.
		step = to.Unit().Scale(math.Min(p.Speed, dist-p.orbitRadius()/2))
	} else {
		// Orbit phase: move tangentially for parallax.
		step = to.Unit().Perp().Scale(p.Speed)
	}
	next := cur.Add(step)
	return geometry.V(
		math.Max(p.Bounds.Min.X, math.Min(p.Bounds.Max.X, next.X)),
		math.Max(p.Bounds.Min.Y, math.Min(p.Bounds.Max.Y, next.Y)),
	)
}

// massCenter is the weight-trimmed centroid of the particle positions:
// only particles at or above the median weight contribute, so the
// diffuse uniform tail does not drag the target to the area's middle.
func massCenter(parts []core.Particle) (geometry.Vec, bool) {
	if len(parts) == 0 {
		return geometry.Vec{}, false
	}
	// A hair of tolerance so a perfectly uniform population (where
	// rounding can push the mean an ulp above every weight) is not
	// entirely excluded.
	med := medianWeight(parts) * (1 - 1e-9)
	var sx, sy, sw float64
	for _, pt := range parts {
		if pt.Weight < med {
			continue
		}
		sx += pt.Weight * pt.Pos.X
		sy += pt.Weight * pt.Pos.Y
		sw += pt.Weight
	}
	if sw <= 0 {
		return geometry.Vec{}, false
	}
	return geometry.V(sx/sw, sy/sw), true
}

func medianWeight(parts []core.Particle) float64 {
	// A full sort is unnecessary: the weights are reset to near-uniform
	// within fusion discs each iteration, so the mean is a robust
	// stand-in for the median at a fraction of the cost.
	var sum float64
	for _, pt := range parts {
		sum += pt.Weight
	}
	return sum / float64(len(parts))
}
