package mobile

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func bounds100() geometry.Rect {
	return geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
}

func particlesAt(p geometry.Vec, n int, w float64) []core.Particle {
	out := make([]core.Particle, n)
	for i := range out {
		out[i] = core.Particle{Pos: p, Strength: 10, Weight: w}
	}
	return out
}

func TestPlannerValidate(t *testing.T) {
	if err := (Planner{Speed: 0, Bounds: bounds100()}).Validate(); !errors.Is(err, ErrBadPlanner) {
		t.Errorf("zero speed: %v", err)
	}
	if err := (Planner{Speed: 2}).Validate(); !errors.Is(err, ErrBadPlanner) {
		t.Errorf("empty bounds: %v", err)
	}
	if err := (Planner{Speed: 2, Bounds: bounds100()}).Validate(); err != nil {
		t.Errorf("valid planner rejected: %v", err)
	}
}

func TestNextApproachesMass(t *testing.T) {
	p := Planner{Speed: 3, Bounds: bounds100()}
	parts := particlesAt(geometry.V(80, 80), 100, 1.0/100)
	cur := geometry.V(10, 10)
	next := p.Next(cur, parts)
	if d := next.Dist(cur); d > 3+1e-9 {
		t.Errorf("moved %v > speed 3", d)
	}
	if next.Dist(geometry.V(80, 80)) >= cur.Dist(geometry.V(80, 80)) {
		t.Error("did not approach the mass")
	}
}

func TestNextOrbitsWhenClose(t *testing.T) {
	p := Planner{Speed: 3, Bounds: bounds100(), OrbitRadius: 8}
	target := geometry.V(50, 50)
	parts := particlesAt(target, 100, 1.0/100)
	cur := geometry.V(56, 50) // within orbit radius
	next := p.Next(cur, parts)
	// Orbit: distance to target roughly preserved, position changed.
	if next.Eq(cur) {
		t.Fatal("did not move in orbit phase")
	}
	d0, d1 := cur.Dist(target), next.Dist(target)
	if math.Abs(d1-d0) > 1.5 {
		t.Errorf("orbit radius drifted: %v → %v", d0, d1)
	}
}

func TestNextHoldsWithoutParticles(t *testing.T) {
	p := Planner{Speed: 3, Bounds: bounds100()}
	cur := geometry.V(20, 20)
	if next := p.Next(cur, nil); !next.Eq(cur) {
		t.Errorf("moved with no particles: %v", next)
	}
	// All-zero weights hold too.
	parts := particlesAt(geometry.V(80, 80), 10, 0)
	if next := p.Next(cur, parts); !next.Eq(cur) {
		t.Errorf("moved with zero-weight particles: %v", next)
	}
}

func TestNextStaysInBounds(t *testing.T) {
	p := Planner{Speed: 10, Bounds: bounds100()}
	parts := particlesAt(geometry.V(99, 99), 100, 1.0/100)
	cur := geometry.V(98, 98)
	for i := 0; i < 20; i++ {
		cur = p.Next(cur, parts)
		if !bounds100().Contains(cur) {
			t.Fatalf("left bounds: %v", cur)
		}
	}
}

// TestMobileSurveyLocalizes runs the full controlled search: a sparse
// 3×3 fixed grid cannot pin the source well, but adding one surveyor
// that drives toward and orbits the filter's mass nails it.
func TestMobileSurveyLocalizes(t *testing.T) {
	truth := []radiation.Source{{Pos: geometry.V(68, 37), Strength: 50}}
	fixed := sensor.Grid(bounds100(), 3, 3, sensor.DefaultEfficiency, 5)

	run := func(withMobile bool) float64 {
		cfg := core.Config{Bounds: bounds100(), Seed: 9, Workers: 2, FusionRange: 40}
		loc, err := core.NewLocalizer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stream := rng.NewNamed(9, "mobile/measure")
		planner := Planner{Speed: 4, Bounds: bounds100()}
		surveyorPos := geometry.V(5, 95)
		for step := 0; step < 25; step++ {
			for _, sen := range fixed {
				m := sen.Measure(stream, truth, nil, step)
				loc.Ingest(sen, m.CPM)
			}
			if withMobile {
				surveyor := sensor.Sensor{
					ID:         100,
					Pos:        surveyorPos,
					Efficiency: sensor.DefaultEfficiency,
					Background: 5,
				}
				m := surveyor.Measure(stream, truth, nil, step)
				loc.Ingest(surveyor, m.CPM)
				surveyorPos = planner.Next(surveyorPos, loc.Particles())
			}
		}
		best := math.Inf(1)
		for _, e := range loc.Estimates() {
			best = math.Min(best, e.Pos.Dist(truth[0].Pos))
		}
		return best
	}

	static := run(false)
	mobile := run(true)
	if math.IsInf(mobile, 1) || mobile > 6 {
		t.Errorf("mobile survey error = %v, want ≤ 6", mobile)
	}
	if !math.IsInf(static, 1) && mobile > static+2 {
		t.Errorf("mobile (%v) did not improve over static (%v)", mobile, static)
	}
}
