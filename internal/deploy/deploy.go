// Package deploy provides sensor-placement utilities and the
// fusion-range selection rule of Section V-B: "the value of d_i is
// selected such that a particle located at p is within the fusion range
// of a handful of sensors". For uniform grids the paper uses one global
// d (28 for spacing-20 grids); for irregular deployments — Scenario C's
// Poisson placement — per-sensor ranges derived from local sensor
// density keep the coverage multiplicity roughly constant.
package deploy

import (
	"errors"
	"math"
	"sort"

	"radloc/internal/geometry"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

// ErrTooFewSensors is returned when a range rule needs more sensors
// than provided.
var ErrTooFewSensors = errors.New("deploy: too few sensors")

// KNearestRanges returns a per-sensor fusion range equal to each
// sensor's distance to its k-th nearest neighbour, scaled by factor.
// With factor ≈ 1.4 (the paper's 28 over a spacing-20 grid) a point in
// the hull of the network falls within the fusion range of a "handful"
// of sensors regardless of local density.
func KNearestRanges(sensors []sensor.Sensor, k int, factor float64) ([]float64, error) {
	if k < 1 || len(sensors) <= k {
		return nil, ErrTooFewSensors
	}
	if factor <= 0 {
		factor = 1.4
	}
	out := make([]float64, len(sensors))
	dists := make([]float64, 0, len(sensors)-1)
	for i, si := range sensors {
		dists = dists[:0]
		for j, sj := range sensors {
			if i == j {
				continue
			}
			dists = append(dists, si.Pos.Dist(sj.Pos))
		}
		sort.Float64s(dists)
		out[i] = factor * dists[k-1]
	}
	return out, nil
}

// RangeFunc converts a per-sensor range table into the lookup the
// localizer configuration accepts. Sensor IDs outside the table fall
// back (return 0).
func RangeFunc(ranges []float64) func(sensorID int) float64 {
	return func(sensorID int) float64 {
		if sensorID < 0 || sensorID >= len(ranges) {
			return 0
		}
		return ranges[sensorID]
	}
}

// CoverageStats reports how many sensors cover the points of a uniform
// sample of the bounds under the given per-sensor ranges — the paper's
// "handful" criterion made measurable.
type CoverageStats struct {
	Mean float64
	Min  int
	Max  int
	// ZeroFraction is the fraction of sampled points covered by no
	// sensor at all (blind spots where new sources can only be found
	// via random injection).
	ZeroFraction float64
}

// Coverage samples bounds on a res×res lattice and counts covering
// sensors per point.
func Coverage(sensors []sensor.Sensor, ranges []float64, bounds geometry.Rect, res int) CoverageStats {
	if res < 2 {
		res = 2
	}
	stats := CoverageStats{Min: math.MaxInt}
	var total, zero int
	for iy := 0; iy < res; iy++ {
		for ix := 0; ix < res; ix++ {
			p := geometry.V(
				bounds.Min.X+bounds.Width()*float64(ix)/float64(res-1),
				bounds.Min.Y+bounds.Height()*float64(iy)/float64(res-1),
			)
			n := 0
			for i, s := range sensors {
				r := 0.0
				if i < len(ranges) {
					r = ranges[i]
				}
				if p.Dist2(s.Pos) <= r*r {
					n++
				}
			}
			total += n
			if n == 0 {
				zero++
			}
			if n < stats.Min {
				stats.Min = n
			}
			if n > stats.Max {
				stats.Max = n
			}
		}
	}
	samples := res * res
	stats.Mean = float64(total) / float64(samples)
	stats.ZeroFraction = float64(zero) / float64(samples)
	return stats
}

// HexGrid places sensors on a hexagonal lattice with the given spacing
// — the densest covering for a fixed sensor budget.
func HexGrid(bounds geometry.Rect, spacing float64, efficiency, background float64) []sensor.Sensor {
	if spacing <= 0 {
		return nil
	}
	var out []sensor.Sensor
	rowHeight := spacing * math.Sqrt(3) / 2
	id := 0
	for row := 0; ; row++ {
		y := bounds.Min.Y + float64(row)*rowHeight
		if y > bounds.Max.Y+1e-9 {
			break
		}
		offset := 0.0
		if row%2 == 1 {
			offset = spacing / 2
		}
		for col := 0; ; col++ {
			x := bounds.Min.X + offset + float64(col)*spacing
			if x > bounds.Max.X+1e-9 {
				break
			}
			out = append(out, sensor.Sensor{
				ID:         id,
				Pos:        geometry.V(x, y),
				Efficiency: efficiency,
				Background: background,
			})
			id++
		}
	}
	return out
}

// JitteredGrid perturbs a uniform nx×ny grid by uniform offsets up to
// ±jitter in each axis — a realistic "planned but imprecise"
// deployment.
func JitteredGrid(bounds geometry.Rect, nx, ny int, jitter float64, stream *rng.Stream, efficiency, background float64) []sensor.Sensor {
	base := sensor.Grid(bounds, nx, ny, efficiency, background)
	for i := range base {
		base[i].Pos = geometry.V(
			clamp(base[i].Pos.X+stream.Uniform(-jitter, jitter), bounds.Min.X, bounds.Max.X),
			clamp(base[i].Pos.Y+stream.Uniform(-jitter, jitter), bounds.Min.Y, bounds.Max.Y),
		)
	}
	return base
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
