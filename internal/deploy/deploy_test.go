package deploy

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func bounds100() geometry.Rect {
	return geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
}

func TestKNearestRangesUniformGrid(t *testing.T) {
	// On a spacing-20 grid every sensor's 1st neighbour is 20 away;
	// factor 1.4 reproduces the paper's d = 28.
	g := sensor.Grid(bounds100(), 6, 6, 1e-4, 5)
	ranges, err := KNearestRanges(g, 1, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		if math.Abs(r-28) > 1e-9 {
			t.Fatalf("sensor %d range = %v, want 28", i, r)
		}
	}
}

func TestKNearestRangesAdaptsToDensity(t *testing.T) {
	// Dense cluster + one remote sensor: the remote sensor must get a
	// much larger range.
	sensors := []sensor.Sensor{
		{ID: 0, Pos: geometry.V(10, 10)},
		{ID: 1, Pos: geometry.V(12, 10)},
		{ID: 2, Pos: geometry.V(10, 12)},
		{ID: 3, Pos: geometry.V(90, 90)},
	}
	ranges, err := KNearestRanges(sensors, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ranges[3] < 10*ranges[0] {
		t.Errorf("remote sensor range %v not ≫ cluster range %v", ranges[3], ranges[0])
	}
}

func TestKNearestRangesErrors(t *testing.T) {
	g := sensor.Grid(bounds100(), 2, 1, 1e-4, 5)
	if _, err := KNearestRanges(g, 2, 1); !errors.Is(err, ErrTooFewSensors) {
		t.Errorf("k ≥ n: %v", err)
	}
	if _, err := KNearestRanges(g, 0, 1); !errors.Is(err, ErrTooFewSensors) {
		t.Errorf("k = 0: %v", err)
	}
}

func TestRangeFunc(t *testing.T) {
	f := RangeFunc([]float64{5, 7})
	if f(0) != 5 || f(1) != 7 {
		t.Error("lookup wrong")
	}
	if f(-1) != 0 || f(2) != 0 {
		t.Error("out-of-range IDs must fall back to 0")
	}
}

func TestCoverage(t *testing.T) {
	g := sensor.Grid(bounds100(), 6, 6, 1e-4, 5)
	ranges, err := KNearestRanges(g, 1, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	stats := Coverage(g, ranges, bounds100(), 21)
	// The paper's "handful": with d=28 on a spacing-20 grid every point
	// is covered by several sensors and there are no blind spots.
	if stats.Min < 1 {
		t.Errorf("blind spots: min coverage %d", stats.Min)
	}
	if stats.Mean < 3 || stats.Mean > 9 {
		t.Errorf("mean coverage = %v, want a handful (3..9)", stats.Mean)
	}
	if stats.ZeroFraction != 0 {
		t.Errorf("zero fraction = %v", stats.ZeroFraction)
	}

	// With tiny ranges almost everything is uncovered.
	tiny := make([]float64, len(g))
	for i := range tiny {
		tiny[i] = 0.5
	}
	stats = Coverage(g, tiny, bounds100(), 21)
	if stats.ZeroFraction < 0.5 {
		t.Errorf("tiny ranges should leave blind spots: %v", stats.ZeroFraction)
	}
}

func TestHexGrid(t *testing.T) {
	hs := HexGrid(bounds100(), 20, 1e-4, 5)
	if len(hs) == 0 {
		t.Fatal("empty hex grid")
	}
	for _, s := range hs {
		if !bounds100().Contains(s.Pos) {
			t.Fatalf("sensor outside bounds: %v", s.Pos)
		}
	}
	// Odd rows are offset by spacing/2.
	var row0, row1 []float64
	for _, s := range hs {
		if math.Abs(s.Pos.Y-0) < 1e-9 {
			row0 = append(row0, s.Pos.X)
		}
		if math.Abs(s.Pos.Y-20*math.Sqrt(3)/2) < 1e-9 {
			row1 = append(row1, s.Pos.X)
		}
	}
	if len(row0) == 0 || len(row1) == 0 {
		t.Fatal("rows not found")
	}
	if math.Abs(row1[0]-row0[0]-10) > 1e-9 {
		t.Errorf("odd row offset = %v, want 10", row1[0]-row0[0])
	}
	if got := HexGrid(bounds100(), 0, 1e-4, 5); got != nil {
		t.Errorf("zero spacing: %v", got)
	}
}

func TestJitteredGrid(t *testing.T) {
	stream := rng.New(4, 4)
	js := JitteredGrid(bounds100(), 6, 6, 5, stream, 1e-4, 5)
	if len(js) != 36 {
		t.Fatalf("count = %d", len(js))
	}
	base := sensor.Grid(bounds100(), 6, 6, 1e-4, 5)
	moved := 0
	for i := range js {
		if !bounds100().Contains(js[i].Pos) {
			t.Fatalf("jittered sensor out of bounds: %v", js[i].Pos)
		}
		d := js[i].Pos.Dist(base[i].Pos)
		if d > 5*math.Sqrt2+1e-9 {
			t.Fatalf("sensor %d jittered too far: %v", i, d)
		}
		if d > 0 {
			moved++
		}
	}
	if moved < 30 {
		t.Errorf("only %d/36 sensors moved", moved)
	}
}
