// Package scenario assembles the deployment layouts evaluated in the
// paper: surveillance area, sensors, true sources, obstacles, and the
// algorithm parameters the paper fixes for each (fusion range, particle
// count, resampling noise).
//
// Scenario A: 100×100 area, 6×6 sensor grid, optional U-shaped obstacle
// (Fig. 8a). Scenario B: 260×260 area, 14×14 grid (196 sensors),
// 9 sources of 10–100 µCi and three obstacles of uneven thickness
// (Fig. 8b). Scenario C: Scenario B's sources/obstacles with 195
// sensors from a Poisson point process and out-of-order delivery
// (Fig. 8c). Obstacle coordinates are digitized approximately from
// Fig. 8 — see DESIGN.md §5.
package scenario

import (
	"fmt"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

// Params are the algorithm parameters the paper sets per scenario
// (Section VI).
type Params struct {
	NumParticles    int     // |P|
	FusionRange     float64 // d_i, identical for all sensors in grid layouts
	ResampleNoise   float64 // σ_N
	InjectionFrac   float64 // fraction of resampled particles replaced at random
	MaxStrength     float64 // upper bound of the strength prior, µCi
	TimeSteps       int     // simulation horizon T
	MatchRadius     float64 // estimate↔source association radius (40 in the paper)
	BandwidthXY     float64 // mean-shift kernel bandwidth in position
	BandwidthStr    float64 // mean-shift kernel bandwidth in strength
	ModeMassMin     float64 // minimum relative kernel mass to report a mode as a source
	MinSourceStr    float64 // minimum strength (µCi) for a mode to count as a source
	MaxSensorGap    float64 // suppress modes farther than this from every sensor (0 = off)
	MeanShiftStarts int     // number of mean-shift start points
}

// DefaultParams returns the paper's Scenario A parameter set.
func DefaultParams() Params {
	return Params{
		NumParticles:    2000,
		FusionRange:     28,
		ResampleNoise:   3.0,
		InjectionFrac:   0.05,
		MaxStrength:     200,
		TimeSteps:       30,
		MatchRadius:     40,
		BandwidthXY:     4,
		BandwidthStr:    30,
		ModeMassMin:     0.04,
		MinSourceStr:    2,
		MeanShiftStarts: 192,
	}
}

// Scenario is a complete experiment configuration.
type Scenario struct {
	Name      string
	Bounds    geometry.Rect
	Sensors   []sensor.Sensor
	Sources   []radiation.Source
	Obstacles []radiation.Obstacle
	Params    Params
	// OutOfOrder marks scenarios whose delivery plan should use random
	// latency (Scenario C).
	OutOfOrder bool
	// MeanLatency is the mean extra delivery delay in time-step units
	// when OutOfOrder is set.
	MeanLatency float64
}

// Validate checks that the scenario is internally consistent.
func (sc Scenario) Validate() error {
	if len(sc.Sensors) == 0 {
		return fmt.Errorf("scenario %q: no sensors", sc.Name)
	}
	if sc.Bounds.Width() <= 0 || sc.Bounds.Height() <= 0 {
		return fmt.Errorf("scenario %q: empty bounds", sc.Name)
	}
	if sc.Params.NumParticles < 1 {
		return fmt.Errorf("scenario %q: %d particles", sc.Name, sc.Params.NumParticles)
	}
	if sc.Params.FusionRange <= 0 {
		return fmt.Errorf("scenario %q: fusion range %v", sc.Name, sc.Params.FusionRange)
	}
	if sc.Params.TimeSteps < 1 {
		return fmt.Errorf("scenario %q: %d time steps", sc.Name, sc.Params.TimeSteps)
	}
	for i, src := range sc.Sources {
		if src.Strength <= 0 {
			return fmt.Errorf("scenario %q: source %d has strength %v", sc.Name, i, src.Strength)
		}
		if !sc.Bounds.Contains(src.Pos) {
			return fmt.Errorf("scenario %q: source %d at %v outside bounds", sc.Name, i, src.Pos)
		}
	}
	for i, sn := range sc.Sensors {
		if sn.Efficiency <= 0 {
			return fmt.Errorf("scenario %q: sensor %d efficiency %v", sc.Name, i, sn.Efficiency)
		}
	}
	return nil
}

// WithObstacles returns a copy of sc with the obstacle list replaced.
// Used to compare the same layout with and without shielding.
func (sc Scenario) WithObstacles(obs []radiation.Obstacle) Scenario {
	out := sc
	out.Obstacles = append([]radiation.Obstacle(nil), obs...)
	if len(obs) == 0 {
		out.Name += "/no-obstacles"
	}
	return out
}

// WithSources returns a copy of sc with the source list replaced.
func (sc Scenario) WithSources(srcs []radiation.Source) Scenario {
	out := sc
	out.Sources = append([]radiation.Source(nil), srcs...)
	return out
}

// WithBackground returns a copy of sc with every sensor's background
// rate set to cpm (the Fig. 6 sweep).
func (sc Scenario) WithBackground(cpm float64) Scenario {
	out := sc
	out.Sensors = append([]sensor.Sensor(nil), sc.Sensors...)
	for i := range out.Sensors {
		out.Sensors[i].Background = cpm
	}
	return out
}

// A returns the paper's Scenario A: 100×100 area, 36 grid sensors,
// background 5 CPM, two sources at (47,71) and (81,42) with the given
// strength (µCi). Pass withObstacle to add the U-shaped obstacle of
// Fig. 8(a).
func A(strength float64, withObstacle bool) Scenario {
	bounds := geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
	sc := Scenario{
		Name:    fmt.Sprintf("A/%gµCi", strength),
		Bounds:  bounds,
		Sensors: sensor.Grid(bounds, 6, 6, sensor.DefaultEfficiency, 5),
		Sources: []radiation.Source{
			{Pos: geometry.V(47, 71), Strength: strength},
			{Pos: geometry.V(81, 42), Strength: strength},
		},
		Params: DefaultParams(),
	}
	if withObstacle {
		sc.Name += "/obstacle"
		sc.Obstacles = []radiation.Obstacle{UObstacle()}
	}
	return sc
}

// AThreeSources returns the three-source variant of Scenario A used in
// Fig. 5: sources at (87,89), (37,14), (55,51).
func AThreeSources(strength float64) Scenario {
	sc := A(strength, false)
	sc.Name = fmt.Sprintf("A3/%gµCi", strength)
	sc.Sources = []radiation.Source{
		{Pos: geometry.V(87, 89), Strength: strength},
		{Pos: geometry.V(37, 14), Strength: strength},
		{Pos: geometry.V(55, 51), Strength: strength},
	}
	return sc
}

// UObstacle is the U-shaped obstacle in the middle of Scenario A
// (Fig. 8a): wall thickness 2 length units, attenuation µ = 0.0693
// (half-intensity per 10 units). The U opens upward and sits between
// the two sources.
func UObstacle() radiation.Obstacle {
	const th = 2.0
	// Footprint roughly centered in the area: x ∈ [40,72], y ∈ [30,62].
	return radiation.Obstacle{
		Name: "U",
		Mu:   radiation.PaperObstacle.MustMu(),
		Shape: geometry.MustPolygon([]geometry.Vec{
			geometry.V(40, 30), geometry.V(72, 30), geometry.V(72, 62),
			geometry.V(72-th, 62), geometry.V(72-th, 30+th),
			geometry.V(40+th, 30+th), geometry.V(40+th, 62), geometry.V(40, 62),
		}),
	}
}

// bSources are the nine sources of Scenarios B and C (positions
// digitized from Fig. 8b; strengths non-uniform in 10–100 µCi as the
// paper specifies).
func bSources() []radiation.Source {
	return []radiation.Source{
		{Pos: geometry.V(40, 225), Strength: 30},   // S1
		{Pos: geometry.V(70, 180), Strength: 10},   // S2
		{Pos: geometry.V(150, 185), Strength: 20},  // S3
		{Pos: geometry.V(230, 230), Strength: 100}, // S4
		{Pos: geometry.V(130, 130), Strength: 40},  // S5
		{Pos: geometry.V(55, 60), Strength: 15},    // S6
		{Pos: geometry.V(200, 140), Strength: 60},  // S7
		{Pos: geometry.V(225, 55), Strength: 25},   // S8
		{Pos: geometry.V(130, 30), Strength: 80},   // S9
	}
}

// bObstacles are the three uneven-thickness obstacles of Scenarios B
// and C. They are placed near S2/S3, S5/S6 and S7/S9 so that (as in
// Fig. 9c) most nearby sources gain isolation while S5 — boxed in
// between the second obstacle and its nearest sensors — can lose
// accuracy.
func bObstacles() []radiation.Obstacle {
	mu := radiation.PaperObstacle.MustMu()
	return []radiation.Obstacle{
		{
			Name: "B1", Mu: mu,
			// L-shaped wall separating S2 from S3, thicker at the base.
			Shape: geometry.MustPolygon([]geometry.Vec{
				geometry.V(100, 160), geometry.V(106, 160), geometry.V(106, 206),
				geometry.V(130, 206), geometry.V(130, 212), geometry.V(100, 212),
			}),
		},
		{
			Name: "B2", Mu: 1.5 * mu,
			// Slab between S5 and S6, uneven thickness (tapered).
			Shape: geometry.MustPolygon([]geometry.Vec{
				geometry.V(80, 90), geometry.V(150, 98), geometry.V(150, 106),
				geometry.V(80, 96),
			}),
		},
		{
			Name: "B3", Mu: mu,
			// Vertical wall between S7/S8 and S9.
			Shape: geometry.MustPolygon([]geometry.Vec{
				geometry.V(172, 40), geometry.V(176, 40), geometry.V(178, 120),
				geometry.V(172, 120),
			}),
		},
	}
}

// B returns the paper's Scenario B: 260×260 area, 14×14 = 196 grid
// sensors, 9 sources, 3 obstacles, 15 000 particles.
func B(withObstacles bool) Scenario {
	bounds := geometry.NewRect(geometry.V(0, 0), geometry.V(260, 260))
	p := DefaultParams()
	p.NumParticles = 15000
	p.MeanShiftStarts = 384
	// Nine sources split the particle mass nine ways in a 6.8× larger
	// area, so a single mode holds less relative mass than in Scenario
	// A; the strength floor rises instead to keep false positives down.
	p.ModeMassMin = 0.02
	p.MinSourceStr = 4
	sc := Scenario{
		Name:    "B",
		Bounds:  bounds,
		Sensors: sensor.Grid(bounds, 14, 14, sensor.DefaultEfficiency, 5),
		Sources: bSources(),
		Params:  p,
	}
	if withObstacles {
		sc.Obstacles = bObstacles()
	} else {
		sc.Name += "/no-obstacles"
	}
	return sc
}

// C returns the paper's Scenario C: Scenario B's sources and obstacles
// with 195 sensors placed by a Poisson point process (seeded so the
// layout is reproducible) and out-of-order measurement delivery.
func C(withObstacles bool, layoutSeed uint64) Scenario {
	sc := B(withObstacles)
	sc.Name = "C"
	if !withObstacles {
		sc.Name += "/no-obstacles"
	}
	stream := rng.NewNamed(layoutSeed, "scenario-c/sensor-layout")
	sc.Sensors = sensor.PoissonField(sc.Bounds, 195, stream, sensor.DefaultEfficiency, 5)
	sc.OutOfOrder = true
	sc.MeanLatency = 0.5
	// Random placement leaves pockets no sensor can see into; modes
	// there are unverifiable strong-far/weak-near ambiguities, so the
	// observability filter suppresses them (grid layouts have no such
	// pockets and keep the filter off).
	sc.Params.MaxSensorGap = 18
	return sc
}
