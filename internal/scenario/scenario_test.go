package scenario

import (
	"strings"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/sensor"
)

func TestScenarioAValid(t *testing.T) {
	for _, strength := range []float64{4, 10, 50, 100} {
		for _, obs := range []bool{false, true} {
			sc := A(strength, obs)
			if err := sc.Validate(); err != nil {
				t.Errorf("A(%v,%v): %v", strength, obs, err)
			}
			if len(sc.Sensors) != 36 {
				t.Errorf("A sensors = %d, want 36", len(sc.Sensors))
			}
			if len(sc.Sources) != 2 {
				t.Errorf("A sources = %d, want 2", len(sc.Sources))
			}
			if obs != (len(sc.Obstacles) == 1) {
				t.Errorf("A obstacles = %d with obs=%v", len(sc.Obstacles), obs)
			}
		}
	}
	sc := A(10, false)
	if !sc.Sources[0].Pos.Eq(geometry.V(47, 71)) || !sc.Sources[1].Pos.Eq(geometry.V(81, 42)) {
		t.Errorf("A source positions differ from the paper: %v", sc.Sources)
	}
	if sc.Params.FusionRange != 28 || sc.Params.ResampleNoise != 3.0 {
		t.Errorf("A params differ from the paper: %+v", sc.Params)
	}
}

func TestScenarioAThreeSources(t *testing.T) {
	sc := AThreeSources(50)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []geometry.Vec{geometry.V(87, 89), geometry.V(37, 14), geometry.V(55, 51)}
	if len(sc.Sources) != 3 {
		t.Fatalf("sources = %d", len(sc.Sources))
	}
	for i, w := range want {
		if !sc.Sources[i].Pos.Eq(w) {
			t.Errorf("source %d at %v, want %v", i, sc.Sources[i].Pos, w)
		}
	}
}

func TestUObstacleShieldsBetweenSources(t *testing.T) {
	sc := A(10, true)
	u := sc.Obstacles[0]
	// The ray between the two sources must pass through obstacle
	// material (that is the isolation mechanism the paper describes).
	ray := geometry.Seg(sc.Sources[0].Pos, sc.Sources[1].Pos)
	if l := u.Shape.ChordLength(ray); l <= 0 {
		t.Errorf("U obstacle does not intersect the inter-source ray (chord %v)", l)
	}
	// And the shielding must actually reduce intensity at the far
	// source's position.
	free := radiation.FreeSpaceIntensity(sc.Sources[1].Pos, sc.Sources[0])
	shielded := radiation.Intensity(sc.Sources[1].Pos, sc.Sources[0], sc.Obstacles)
	if shielded >= free {
		t.Errorf("shielded %v ≥ free %v", shielded, free)
	}
}

func TestScenarioBValid(t *testing.T) {
	sc := B(true)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Sensors) != 196 {
		t.Errorf("B sensors = %d, want 196", len(sc.Sensors))
	}
	if len(sc.Sources) != 9 {
		t.Errorf("B sources = %d, want 9", len(sc.Sources))
	}
	if len(sc.Obstacles) != 3 {
		t.Errorf("B obstacles = %d, want 3", len(sc.Obstacles))
	}
	if sc.Params.NumParticles != 15000 {
		t.Errorf("B particles = %d, want 15000", sc.Params.NumParticles)
	}
	for i, src := range sc.Sources {
		if src.Strength < 10 || src.Strength > 100 {
			t.Errorf("B source %d strength %v outside 10–100", i, src.Strength)
		}
	}
	plain := B(false)
	if len(plain.Obstacles) != 0 || !strings.Contains(plain.Name, "no-obstacles") {
		t.Errorf("B(false) = %q with %d obstacles", plain.Name, len(plain.Obstacles))
	}
}

func TestScenarioCValid(t *testing.T) {
	sc := C(true, 1)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Sensors) != 195 {
		t.Errorf("C sensors = %d, want 195", len(sc.Sensors))
	}
	if !sc.OutOfOrder || sc.MeanLatency <= 0 {
		t.Errorf("C delivery config: outOfOrder=%v latency=%v", sc.OutOfOrder, sc.MeanLatency)
	}
	// Layout is deterministic in the seed.
	sc2 := C(true, 1)
	for i := range sc.Sensors {
		if !sc.Sensors[i].Pos.Eq(sc2.Sensors[i].Pos) {
			t.Fatal("Scenario C layout not reproducible")
		}
	}
	sc3 := C(true, 2)
	identical := true
	for i := range sc.Sensors {
		if !sc.Sensors[i].Pos.Eq(sc3.Sensors[i].Pos) {
			identical = false
			break
		}
	}
	if identical {
		t.Error("different layout seeds produced identical Scenario C layouts")
	}
}

func TestWithModifiers(t *testing.T) {
	sc := A(10, true)

	noObs := sc.WithObstacles(nil)
	if len(noObs.Obstacles) != 0 {
		t.Error("WithObstacles(nil) kept obstacles")
	}
	if len(sc.Obstacles) != 1 {
		t.Error("WithObstacles mutated the receiver")
	}

	bg := sc.WithBackground(50)
	for _, s := range bg.Sensors {
		if s.Background != 50 {
			t.Fatalf("WithBackground: sensor background %v", s.Background)
		}
	}
	if sc.Sensors[0].Background != 5 {
		t.Error("WithBackground mutated the receiver")
	}

	srcs := []radiation.Source{{Pos: geometry.V(10, 10), Strength: 7}}
	one := sc.WithSources(srcs)
	if len(one.Sources) != 1 || len(sc.Sources) != 2 {
		t.Error("WithSources wrong")
	}
	srcs[0].Strength = 99
	if one.Sources[0].Strength == 99 {
		t.Error("WithSources shares caller slice")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	base := A(10, false)

	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no-sensors", func(s *Scenario) { s.Sensors = nil }},
		{"zero-particles", func(s *Scenario) { s.Params.NumParticles = 0 }},
		{"bad-fusion-range", func(s *Scenario) { s.Params.FusionRange = 0 }},
		{"zero-steps", func(s *Scenario) { s.Params.TimeSteps = 0 }},
		{"negative-strength", func(s *Scenario) { s.Sources[0].Strength = -1 }},
		{"source-outside", func(s *Scenario) { s.Sources[0].Pos = geometry.V(500, 500) }},
		{"bad-efficiency", func(s *Scenario) { s.Sensors[0].Efficiency = 0 }},
		{"empty-bounds", func(s *Scenario) { s.Bounds = geometry.NewRect(geometry.V(0, 0), geometry.V(0, 0)) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := base
			sc.Sensors = append([]sensor.Sensor(nil), base.Sensors...)
			sc.Sources = append([]radiation.Source(nil), base.Sources...)
			tt.mutate(&sc)
			if err := sc.Validate(); err == nil {
				t.Error("Validate accepted a bad config")
			}
		})
	}
}
