package replay

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"radloc/internal/core"
	"radloc/internal/eval"
	"radloc/internal/scenario"
	"radloc/internal/sim"
)

func TestWriteProducesFullStream(t *testing.T) {
	sc := scenario.A(50, false)
	sc.Params.TimeSteps = 4
	var buf bytes.Buffer
	n, err := Write(&buf, sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4*36 {
		t.Fatalf("records = %d, want 144", n)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != n {
		t.Fatalf("lines = %d, want %d", lines, n)
	}
	if !strings.Contains(buf.String(), `"sensorId":`) {
		t.Error("JSON fields missing")
	}
}

func TestWriteDeterministic(t *testing.T) {
	sc := scenario.A(10, false)
	sc.Params.TimeSteps = 3
	var a, b bytes.Buffer
	if _, err := Write(&a, sc, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(&b, sc, 7); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("identical seeds produced different streams")
	}
	var c bytes.Buffer
	if _, err := Write(&c, sc, 8); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical streams")
	}
}

func TestWriteRejectsInvalidScenario(t *testing.T) {
	sc := scenario.A(10, false)
	sc.Sensors = nil
	if _, err := Write(&bytes.Buffer{}, sc, 1); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestRoundTripLocalizes(t *testing.T) {
	sc := scenario.A(50, false)
	sc.Params.TimeSteps = 8
	var buf bytes.Buffer
	if _, err := Write(&buf, sc, 3); err != nil {
		t.Fatal(err)
	}

	cfg := sim.LocalizerConfig(sc)
	cfg.Seed = 3
	loc, err := core.NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Read(&buf, sc.Sensors, loc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8*36 {
		t.Fatalf("replayed %d records", n)
	}
	m := eval.Match(loc.Estimates(), sc.Sources, 40)
	if m.FalseNeg != 0 {
		t.Errorf("replayed stream missed sources: %+v", m)
	}
}

func TestReadErrors(t *testing.T) {
	sc := scenario.A(10, false)
	loc, err := core.NewLocalizer(sim.LocalizerConfig(sc))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Read(strings.NewReader("garbage\n"), sc.Sensors, loc); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := Read(strings.NewReader(`{"sensorId":999,"cpm":5}`+"\n"), sc.Sensors, loc); err == nil {
		t.Error("unknown sensor accepted")
	}
	if _, err := Read(strings.NewReader(`{"sensorId":0,"cpm":-5}`+"\n"), sc.Sensors, loc); err == nil {
		t.Error("negative CPM accepted")
	}
	// Blank lines are skipped, not errors.
	n, err := Read(strings.NewReader("\n\n"), sc.Sensors, loc)
	if err != nil || n != 0 {
		t.Errorf("blank-only stream: %d, %v", n, err)
	}
}

func TestOutOfOrderScenarioRecordsArrivalOrder(t *testing.T) {
	sc := scenario.C(false, 1)
	sc.Params.TimeSteps = 2
	var buf bytes.Buffer
	n, err := Write(&buf, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*len(sc.Sensors) {
		t.Fatalf("records = %d", n)
	}
	// Steps must appear out of order somewhere (arrival order ≠
	// emission order under random latency).
	var steps []int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		steps = append(steps, rec.Step)
	}
	inversions := 0
	for i := 1; i < len(steps); i++ {
		if steps[i] < steps[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("out-of-order scenario recorded perfectly ordered steps")
	}
}
