// Package replay records measurement streams to newline-delimited JSON
// and replays them later — the bridge between simulation and the
// radlocd daemon, and the debugging workflow for field data: capture
// once, re-run the localizer against the identical stream as many
// times as needed.
package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"radloc/internal/network"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sensor"
)

// Record is one serialized measurement.
type Record struct {
	SensorID int `json:"sensorId"`
	CPM      int `json:"cpm"`
	// Step is the time step at which the reading was taken (emission
	// time, not delivery time).
	Step int `json:"step"`
	// Seq is the per-sensor monotone sequence number (Step+1 — sensors
	// report in rounds, so the k-th reading of every sensor carries
	// seq k). It lets an at-least-once consumer deduplicate redelivery
	// and restore canonical order after transport reordering; 0 in
	// streams recorded before sequencing existed.
	Seq uint64 `json:"seq,omitempty"`
}

// ErrTruncated is returned when a stream ends mid-record.
var ErrTruncated = errors.New("replay: truncated stream")

// Write generates a scenario's full measurement stream — through its
// delivery plan, so out-of-order scenarios record in arrival order —
// and writes it as NDJSON.
func Write(w io.Writer, sc scenario.Scenario, seed uint64) (int, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	var plan network.Plan
	steps := sc.Params.TimeSteps
	if sc.OutOfOrder {
		plan = network.OutOfOrder(len(sc.Sensors), steps, rng.NewNamed(seed, "replay/delivery"), network.Options{
			MeanLatency: sc.MeanLatency,
		})
	} else {
		plan = network.InOrder(len(sc.Sensors), steps)
	}
	measure := rng.NewNamed(seed, "replay/measure")
	enc := json.NewEncoder(w)
	n := 0
	for step := 0; step < steps; step++ {
		for _, ev := range plan.EventsInStep(step) {
			sen := sc.Sensors[ev.SensorIndex]
			m := sen.Measure(measure, sc.Sources, sc.Obstacles, ev.EmitStep)
			if err := enc.Encode(Record{SensorID: sen.ID, CPM: m.CPM, Step: ev.EmitStep, Seq: uint64(ev.EmitStep) + 1}); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// Ingester consumes replayed measurements (satisfied by
// *core.Localizer via an adapter, or any custom sink).
type Ingester interface {
	Ingest(sen sensor.Sensor, cpm int)
}

// Read replays an NDJSON stream into the ingester, resolving sensor
// IDs through the registry. Unknown sensor IDs abort with an error
// (replay data and deployment must agree). Returns the number of
// measurements replayed.
func Read(r io.Reader, registry []sensor.Sensor, sink Ingester) (int, error) {
	byID := make(map[int]sensor.Sensor, len(registry))
	for _, s := range registry {
		byID[s.ID] = s
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return n, fmt.Errorf("replay: line %d: %w", n+1, err)
		}
		sen, ok := byID[rec.SensorID]
		if !ok {
			return n, fmt.Errorf("replay: line %d: unknown sensor %d", n+1, rec.SensorID)
		}
		if rec.CPM < 0 {
			return n, fmt.Errorf("replay: line %d: negative CPM %d", n+1, rec.CPM)
		}
		sink.Ingest(sen, rec.CPM)
		n++
	}
	if err := scanner.Err(); err != nil {
		return n, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return n, nil
}
