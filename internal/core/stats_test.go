package core

import (
	"math"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/sensor"
)

func TestStatsFreshLocalizer(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Iterations != 0 || s.LastSubsetSize != 0 || s.MeanSubsetSize != 0 || s.EmptyIterations != 0 {
		t.Errorf("fresh stats: %+v", s)
	}
	// Uniform weights: ESS equals the population size.
	if math.Abs(s.EffectiveSampleSize-2000) > 1 {
		t.Errorf("fresh ESS = %v, want ≈2000", s.EffectiveSampleSize)
	}
	if s.SensorsSeen != 0 {
		t.Errorf("SensorsSeen = %d without MaxSensorGap", s.SensorsSeen)
	}
}

func TestStatsTrackIterations(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSensorGap = 50
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inRange := sensor.Sensor{ID: 0, Pos: geometry.V(50, 50), Efficiency: 1e-4, Background: 5}
	outOfArea := sensor.Sensor{ID: 1, Pos: geometry.V(-500, -500), Efficiency: 1e-4, Background: 5}

	l.Ingest(inRange, 5)
	s := l.Stats()
	if s.Iterations != 1 || s.LastSubsetSize == 0 || s.EmptyIterations != 0 {
		t.Errorf("after one in-range ingest: %+v", s)
	}
	first := s.LastSubsetSize

	l.Ingest(outOfArea, 5)
	s = l.Stats()
	if s.Iterations != 2 || s.LastSubsetSize != 0 || s.EmptyIterations != 1 {
		t.Errorf("after empty-disc ingest: %+v", s)
	}
	if want := float64(first) / 2; math.Abs(s.MeanSubsetSize-want) > 1e-9 {
		t.Errorf("MeanSubsetSize = %v, want %v", s.MeanSubsetSize, want)
	}
	if s.SensorsSeen != 2 {
		t.Errorf("SensorsSeen = %d, want 2", s.SensorsSeen)
	}
}

// TestStatsSubsetShrinksAfterConvergence: the paper's efficiency story —
// once particles concentrate at the sources, most fusion discs capture
// few particles, so the mean subset size drops well below the uniform
// expectation.
func TestStatsSubsetShrinks(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := []radiation.Source{{Pos: geometry.V(47, 71), Strength: 100}}
	runSteps(t, l, truth, nil, 10, 31)

	// Uniform expectation: disc area fraction × N ≈ π·28²/10⁴ × 2000 ≈ 430
	// (boundary effects push it lower). After convergence, a sensor far
	// from the source should capture almost nothing.
	far := sensor.Sensor{ID: 99, Pos: geometry.V(5, 5), Efficiency: 1e-4, Background: 5}
	l.Ingest(far, 5)
	s := l.Stats()
	if s.LastSubsetSize > 300 {
		t.Errorf("far-sensor subset = %d after convergence, want small", s.LastSubsetSize)
	}
	if s.EffectiveSampleSize < 100 {
		t.Errorf("ESS collapsed to %v", s.EffectiveSampleSize)
	}
}
