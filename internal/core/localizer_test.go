package core

import (
	"math"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func bounds100() geometry.Rect {
	return geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
}

func testConfig() Config {
	return Config{Bounds: bounds100(), Seed: 1, Workers: 2}
}

// runSteps feeds the localizer `steps` full rounds of in-order
// measurements from a 6×6 grid observing the given sources.
func runSteps(t *testing.T, l *Localizer, sources []radiation.Source, obstacles []radiation.Obstacle, steps int, seed uint64) []sensor.Sensor {
	t.Helper()
	sensors := sensor.Grid(bounds100(), 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(seed, "test/measurements")
	for step := 0; step < steps; step++ {
		for _, sen := range sensors {
			m := sen.Measure(stream, sources, obstacles, step)
			l.Ingest(sen, m.CPM)
		}
	}
	return sensors
}

func nearestEstimate(ests []Estimate, p geometry.Vec) (Estimate, float64) {
	best := math.Inf(1)
	var bestE Estimate
	for _, e := range ests {
		if d := e.Pos.Dist(p); d < best {
			best = d
			bestE = e
		}
	}
	return bestE, best
}

func TestNewLocalizerValidation(t *testing.T) {
	if _, err := NewLocalizer(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := testConfig()
	bad.InjectionFrac = 1.5
	if _, err := NewLocalizer(bad); err == nil {
		t.Error("InjectionFrac > 1 accepted")
	}
	bad = testConfig()
	bad.StrengthMin = 50
	bad.StrengthMax = 10
	if _, err := NewLocalizer(bad); err == nil {
		t.Error("inverted strength prior accepted")
	}
	bad = testConfig()
	bad.ModeMassMin = 1.0
	if _, err := NewLocalizer(bad); err == nil {
		t.Error("ModeMassMin = 1 accepted")
	}
}

func TestInitialParticlesUniform(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps := l.Particles()
	if len(ps) != 2000 {
		t.Fatalf("particles = %d, want default 2000", len(ps))
	}
	var quad [4]int
	for _, p := range ps {
		if !bounds100().Contains(p.Pos) {
			t.Fatalf("particle outside bounds: %v", p.Pos)
		}
		if p.Strength < 0.1 || p.Strength > 200 {
			t.Fatalf("strength outside prior: %v", p.Strength)
		}
		if math.Abs(p.Weight-1.0/2000) > 1e-12 {
			t.Fatalf("initial weight = %v", p.Weight)
		}
		qi := 0
		if p.Pos.X > 50 {
			qi++
		}
		if p.Pos.Y > 50 {
			qi += 2
		}
		quad[qi]++
	}
	for q, n := range quad {
		if n < 350 || n > 650 {
			t.Errorf("quadrant %d holds %d/2000 particles — not uniform", q, n)
		}
	}
}

func TestSingleSourceConverges(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := []radiation.Source{{Pos: geometry.V(62, 38), Strength: 50}}
	runSteps(t, l, truth, nil, 10, 7)

	ests := l.Estimates()
	if len(ests) == 0 {
		t.Fatal("no estimates after 10 steps")
	}
	e, d := nearestEstimate(ests, truth[0].Pos)
	if d > 6 {
		t.Errorf("localization error %v > 6 (estimate %v)", d, e)
	}
	if e.Strength < 15 || e.Strength > 150 {
		t.Errorf("strength estimate %v wildly off 50", e.Strength)
	}
	// The dominant mode must be the true source; a couple of weak
	// spurious modes (the paper's early false positives) are expected.
	if !ests[0].Pos.Eq(e.Pos) {
		t.Errorf("dominant mode %v is not the source (source mode %v)", ests[0], e)
	}
	if len(ests) > 5 {
		t.Errorf("%d estimates for a single source: %v", len(ests), ests)
	}
}

func TestTwoSourcesResolved(t *testing.T) {
	cfg := testConfig()
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	runSteps(t, l, truth, nil, 12, 3)

	ests := l.Estimates()
	if len(ests) < 2 {
		t.Fatalf("estimates = %v, want ≥ 2 modes", ests)
	}
	for _, src := range truth {
		if _, d := nearestEstimate(ests, src.Pos); d > 8 {
			t.Errorf("source at %v localized with error %v", src.Pos, d)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	truth := []radiation.Source{{Pos: geometry.V(30, 30), Strength: 20}}
	run := func() []Estimate {
		l, err := NewLocalizer(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		runSteps(t, l, truth, nil, 5, 11)
		return l.Estimates()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a {
		if !a[i].Pos.Eq(b[i].Pos) || a[i].Strength != b[i].Strength {
			t.Fatalf("estimate %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFusionRangeLimitsUpdates(t *testing.T) {
	cfg := testConfig()
	cfg.InjectionFrac = -1 // sentinel below: use explicit zero
	cfg.InjectionFrac = 0.000001
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := l.Particles()
	sen := sensor.Sensor{ID: 0, Pos: geometry.V(10, 10), Efficiency: 1e-4, Background: 5}
	l.Ingest(sen, 5)
	after := l.Particles()

	moved := 0
	for i := range before {
		far := before[i].Pos.Dist(sen.Pos) > l.Config().FusionRange
		changed := !before[i].Pos.Eq(after[i].Pos) || before[i].Strength != after[i].Strength
		if far && changed {
			t.Fatalf("particle %d outside fusion range changed: %v → %v", i, before[i], after[i])
		}
		if changed {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no particle inside the fusion range changed")
	}
}

func TestDisableFusionRangeUpdatesEverything(t *testing.T) {
	cfg := testConfig()
	cfg.DisableFusionRange = true
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sen := sensor.Sensor{ID: 0, Pos: geometry.V(10, 10), Efficiency: 1e-4, Background: 5}
	// A strong reading at one corner must be able to drag far particles
	// (the Fig. 2 failure mode the fusion range prevents).
	before := l.Particles()
	for i := 0; i < 40; i++ {
		l.Ingest(sen, 400)
	}
	after := l.Particles()
	changedFar := 0
	for i := range before {
		if before[i].Pos.Dist(sen.Pos) > 28 && !before[i].Pos.Eq(after[i].Pos) {
			changedFar++
		}
	}
	if changedFar == 0 {
		t.Error("no far particle changed with the fusion range disabled")
	}
}

func TestEmptyFusionDiscIsNoOp(t *testing.T) {
	cfg := testConfig()
	cfg.FusionRange = 1 // tiny: a sensor at a corner with no particles within 1 unit is likely
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a spot with no particles within range 1.
	probe := geometry.V(-0.5, -0.5) // outside bounds but valid sensor location
	before := l.Particles()
	l.Ingest(sensor.Sensor{ID: 0, Pos: probe, Efficiency: 1e-4, Background: 5}, 5)
	after := l.Particles()
	for i := range before {
		if before[i] != after[i] {
			// Only acceptable if the particle really was within range.
			if before[i].Pos.Dist(probe) > 1 {
				t.Fatalf("no-op iteration mutated particle %d", i)
			}
		}
	}
}

func TestWeightsConserved(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := []radiation.Source{{Pos: geometry.V(50, 50), Strength: 100}}
	runSteps(t, l, truth, nil, 3, 9)
	var sum float64
	for _, p := range l.Particles() {
		if p.Weight < 0 || math.IsNaN(p.Weight) {
			t.Fatalf("invalid weight %v", p.Weight)
		}
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("total mass = %v, want 1 (mass-preserving resampling)", sum)
	}
}

func TestParticlesStayInBounds(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := []radiation.Source{{Pos: geometry.V(2, 97), Strength: 100}} // near a corner
	runSteps(t, l, truth, nil, 8, 5)
	for i, p := range l.Particles() {
		if !bounds100().Contains(p.Pos) {
			t.Fatalf("particle %d escaped bounds: %v", i, p.Pos)
		}
		if p.Strength < 0.1-1e-9 || p.Strength > 200+1e-9 {
			t.Fatalf("particle %d strength outside prior: %v", i, p.Strength)
		}
	}
}

func TestNoSourcesYieldsNoConfidentEstimates(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSteps(t, l, nil, nil, 12, 13)
	ests := l.Estimates()
	// Background-only readings: surviving hypotheses are weak; the
	// MinSourceStrength filter must suppress them (at most a stray one).
	if len(ests) > 1 {
		t.Errorf("background-only run produced %d estimates: %v", len(ests), ests)
	}
}

func TestCentroidFallsBetweenTwoSources(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	runSteps(t, l, truth, nil, 10, 17)
	c := l.Centroid()
	d0 := c.Pos.Dist(truth[0].Pos)
	d1 := c.Pos.Dist(truth[1].Pos)
	// The motivating failure: the weighted centroid cannot resolve two
	// sources — it sits well away from both.
	if d0 < 8 || d1 < 8 {
		t.Errorf("centroid %v unexpectedly close to a source (%v, %v)", c.Pos, d0, d1)
	}
}

func TestFusionRangeForOverride(t *testing.T) {
	cfg := testConfig()
	cfg.FusionRangeFor = func(sensorID int) float64 {
		if sensorID == 1 {
			return 5
		}
		return 0 // fall back
	}
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.cfg.fusionRangeOf(1); got != 5 {
		t.Errorf("override = %v, want 5", got)
	}
	if got := l.cfg.fusionRangeOf(2); got != 28 {
		t.Errorf("fallback = %v, want 28", got)
	}
}

func TestIterationsCount(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sen := sensor.Sensor{ID: 0, Pos: geometry.V(50, 50), Efficiency: 1e-4, Background: 5}
	for i := 0; i < 7; i++ {
		l.Ingest(sen, 5)
	}
	if l.Iterations() != 7 {
		t.Errorf("Iterations = %d, want 7", l.Iterations())
	}
}

func TestAppendParticlesReuse(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sen := sensor.Sensor{ID: 0, Pos: geometry.V(50, 50), Efficiency: 1e-4, Background: 5}
	for i := 0; i < 5; i++ {
		l.Ingest(sen, 40)
	}

	want := l.Particles()
	buf := l.AppendParticles(nil)
	if len(buf) != len(want) {
		t.Fatalf("AppendParticles len = %d, want %d", len(buf), len(want))
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("particle %d differs: %+v vs %+v", i, buf[i], want[i])
		}
	}

	// Re-slicing to zero length reuses the grown buffer: no new backing
	// array, identical contents.
	before := &buf[0]
	buf = l.AppendParticles(buf[:0])
	if &buf[0] != before {
		t.Error("AppendParticles reallocated a buffer that was already large enough")
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("reused buffer particle %d differs", i)
		}
	}

	// Appending preserves an existing prefix.
	prefix := []Particle{{Strength: -1}}
	out := l.AppendParticles(prefix)
	if len(out) != 1+len(want) || out[0].Strength != -1 {
		t.Fatalf("prefix not preserved: len=%d first=%+v", len(out), out[0])
	}
}
