package core

import (
	"math"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func TestRandomWalkMove(t *testing.T) {
	stream := rng.New(1, 1)
	rw := RandomWalk{Sigma: 2}
	moved := 0
	for i := 0; i < 100; i++ {
		p, s := rw.Move(geometry.V(50, 50), 10, stream)
		if s != 10 {
			t.Fatalf("random walk changed strength: %v", s)
		}
		if !p.Eq(geometry.V(50, 50)) {
			moved++
		}
	}
	if moved < 95 {
		t.Errorf("random walk barely moves: %d/100", moved)
	}
	// Zero sigma is the identity.
	p, s := RandomWalk{}.Move(geometry.V(1, 2), 3, stream)
	if !p.Eq(geometry.V(1, 2)) || s != 3 {
		t.Errorf("zero-sigma walk moved: %v %v", p, s)
	}
}

func TestConstantVelocityMove(t *testing.T) {
	stream := rng.New(2, 2)
	cv := ConstantVelocity{V: geometry.V(1, -0.5)}
	p, s := cv.Move(geometry.V(10, 10), 7, stream)
	if !p.Eq(geometry.V(11, 9.5)) || s != 7 {
		t.Errorf("constant velocity: %v %v", p, s)
	}
}

func TestMovementFuncAdapter(t *testing.T) {
	var m MovementModel = MovementFunc(func(p geometry.Vec, s float64, _ *rng.Stream) (geometry.Vec, float64) {
		return p.Add(geometry.V(5, 0)), s * 2
	})
	p, s := m.Move(geometry.V(0, 0), 3, nil)
	if !p.Eq(geometry.V(5, 0)) || s != 6 {
		t.Errorf("adapter: %v %v", p, s)
	}
}

// TestTracksMovingSource drives a source across the area; the filter
// with a random-walk movement model must keep its estimate near the
// moving truth.
func TestTracksMovingSource(t *testing.T) {
	cfg := testConfig()
	cfg.Movement = RandomWalk{Sigma: 1.0}
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sensors := sensor.Grid(bounds100(), 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(21, "moving/measure")

	pos := geometry.V(20, 30)
	vel := geometry.V(1.5, 1.0) // per time step
	var lastErr float64 = math.NaN()
	for step := 0; step < 25; step++ {
		truth := []radiation.Source{{Pos: pos, Strength: 100}}
		for _, sen := range sensors {
			m := sen.Measure(stream, truth, nil, step)
			l.Ingest(sen, m.CPM)
		}
		if step >= 5 {
			ests := l.Estimates()
			if len(ests) == 0 {
				t.Fatalf("step %d: no estimates while tracking", step)
			}
			_, d := nearestEstimate(ests, pos)
			lastErr = d
			if d > 15 {
				t.Fatalf("step %d: tracking error %v (truth at %v)", step, d, pos)
			}
		}
		pos = pos.Add(vel)
	}
	if lastErr > 8 {
		t.Errorf("final tracking error %v, want ≤ 8", lastErr)
	}
}

// TestMovementOnlyAppliedWithinFusionRange: particles outside the
// fusion disc must not be moved by the prediction step.
func TestMovementOnlyAppliedWithinFusionRange(t *testing.T) {
	cfg := testConfig()
	cfg.Movement = RandomWalk{Sigma: 5}
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sen := sensor.Sensor{ID: 0, Pos: geometry.V(10, 10), Efficiency: 1e-4, Background: 5}
	before := l.Particles()
	l.Ingest(sen, 5)
	after := l.Particles()
	for i := range before {
		if before[i].Pos.Dist(sen.Pos) > l.Config().FusionRange {
			if !before[i].Pos.Eq(after[i].Pos) {
				t.Fatalf("particle %d outside fusion range was moved", i)
			}
		}
	}
}
