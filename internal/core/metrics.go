package core

import (
	"time"

	"radloc/internal/obs"
)

// filterMetrics is the localizer's registry wiring: one histogram per
// filter stage plus population-health gauges. A nil *filterMetrics is
// the "instrumentation off" state — every method is nil-receiver safe
// so the hot path pays a single branch, no timer reads.
type filterMetrics struct {
	selectH, predictH, weightH, resampleH, estimateH *obs.Histogram

	iterations *obs.Counter
	empty      *obs.Counter
	ess        *obs.Gauge
	subset     *obs.Gauge
	particles  *obs.Gauge
}

// FilterStages lists the stage labels of the
// radloc_filter_stage_seconds histogram family in pipeline order:
// select (fusion-range particle selection, Eq. 5), predict (movement
// model), weight (Poisson reweighting), resample (systematic
// resampling + injection), estimate (mean-shift mode recovery).
var FilterStages = []string{"select", "predict", "weight", "resample", "estimate"}

// StageHistogram returns the named stage's timing histogram on r,
// registering the family if it is not there yet. Registration is
// get-or-create, so tools reading a registry a Localizer recorded
// into (e.g. `radloc bench`) get the same collectors the filter
// observed into.
func StageHistogram(r *obs.Registry, stage string) *obs.Histogram {
	f := r.HistogramFamily("radloc_filter_stage_seconds",
		"Wall-clock seconds per filter stage, per measurement ingest (select = fusion-range particle selection, predict = movement model, weight = Poisson reweighting, resample = systematic resampling + injection, estimate = mean-shift mode recovery).",
		obs.DefBuckets, "stage")
	return f.With(stage)
}

// newFilterMetrics registers the filter families on r (nil r → nil
// metrics, instrumentation off).
func newFilterMetrics(r *obs.Registry) *filterMetrics {
	if r == nil {
		return nil
	}
	return &filterMetrics{
		selectH:   StageHistogram(r, "select"),
		predictH:  StageHistogram(r, "predict"),
		weightH:   StageHistogram(r, "weight"),
		resampleH: StageHistogram(r, "resample"),
		estimateH: StageHistogram(r, "estimate"),
		iterations: r.Counter("radloc_filter_iterations_total",
			"Measurements ingested by the particle filter."),
		empty: r.Counter("radloc_filter_empty_subset_total",
			"Ingests whose fusion disc captured no particles (Eq. 5 returned the null set)."),
		ess: r.Gauge("radloc_filter_effective_sample_size",
			"Kish effective sample size of the particle weights at the last estimate refresh."),
		subset: r.Gauge("radloc_filter_last_subset_size",
			"Particles captured by the most recent fusion disc."),
		particles: r.Gauge("radloc_filter_particles",
			"Particle population size."),
	}
}

// now starts a stage timer; the zero time when instrumentation is off.
func (m *filterMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// lap records the elapsed stage time into h and restarts the timer.
func (m *filterMetrics) lap(h *obs.Histogram, t0 time.Time) time.Time {
	if m == nil {
		return t0
	}
	now := time.Now()
	h.Observe(now.Sub(t0).Seconds())
	return now
}

// ingest counts one filter iteration and its subset size.
func (m *filterMetrics) ingest(subset int) {
	if m == nil {
		return
	}
	m.iterations.Inc()
	m.subset.Set(float64(subset))
	if subset == 0 {
		m.empty.Inc()
	}
}

// estimated records population health at an estimate refresh.
func (m *filterMetrics) estimated(ess float64, particles int, t0 time.Time) {
	if m == nil {
		return
	}
	m.estimateH.Observe(time.Since(t0).Seconds())
	m.ess.Set(ess)
	m.particles.Set(float64(particles))
}
