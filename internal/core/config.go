// Package core implements the paper's primary contribution: the hybrid
// particle-filter + mean-shift localizer for an unknown number of
// radiation sources (Section V).
//
// One particle hypothesizes ONE source ⟨x, y, strength⟩, so the state
// dimension never grows with the source count. A measurement from
// sensor S only updates the particles within S's fusion range (Eq. 5);
// the untouched remainder keeps tracking other sources. Source
// parameters are recovered as the modes of the weighted kernel density
// over particles via mean-shift (Eq. 6–7), which simultaneously yields
// the number of sources — no a-priori K and no AIC/BIC model selection.
//
// The likelihood is obstacle-agnostic: expected sensor readings assume
// free space, because obstacle shapes and attenuation coefficients are
// unknown to the system. Obstacles only shape the true measurements.
package core

import (
	"fmt"
	"runtime"

	"radloc/internal/geometry"
	"radloc/internal/obs"
)

// Config parameterizes a Localizer. NewLocalizer rejects invalid
// configurations; zero values marked "default" are filled in.
type Config struct {
	// Bounds is the surveillance area A over which particles live.
	Bounds geometry.Rect
	// NumParticles is |P| (default 2000).
	NumParticles int
	// FusionRange is d_i of Eq. (5): a measurement from sensor S only
	// updates particles within this distance of S (default 28). Set
	// DisableFusionRange to recover the classic single-population
	// particle filter the paper's Fig. 2 shows failing with multiple
	// sources.
	FusionRange float64
	// DisableFusionRange turns the range gate off: every measurement
	// updates the whole population (the single-population baseline).
	DisableFusionRange bool
	// FusionRangeFor optionally overrides FusionRange per sensor ID
	// (e.g. for irregular deployments); return ≤ 0 to fall back to
	// FusionRange.
	FusionRangeFor func(sensorID int) float64

	// ResampleNoise is σ_N, the standard deviation of the zero-mean
	// Gaussian position jitter added to duplicated particles during
	// resampling (default 3).
	ResampleNoise float64
	// StrengthNoise is the jitter applied to duplicated particles'
	// strength. Default: ResampleNoise × StrengthMax / 200.
	StrengthNoise float64
	// InjectionFrac is the fraction of resampled particles replaced by
	// fresh uniform hypotheses, keeping the filter receptive to sources
	// appearing in depleted areas (default 0.05).
	InjectionFrac float64

	// StrengthMin is the lower bound of the strength prior in µCi
	// (default 0.1).
	StrengthMin float64
	// StrengthMax is the upper bound of the strength prior in µCi
	// (default 200).
	StrengthMax float64

	// BandwidthXY is the mean-shift kernel bandwidth for the position
	// coordinates (default 4).
	BandwidthXY float64
	// BandwidthStr is the mean-shift kernel bandwidth for the strength
	// coordinate (default 30).
	BandwidthStr float64
	// ModeMassMin is the minimum fraction of total particle mass a
	// density mode must capture to be reported as a source (default
	// 0.04).
	ModeMassMin float64
	// MinSourceStrength suppresses modes whose strength estimate is
	// below this value — particles in source-free regions converge to
	// near-zero-strength hypotheses, which are not sources (default 2).
	MinSourceStrength float64
	// MaxSensorGap, when positive, suppresses modes farther than this
	// from every sensor the filter has ingested measurements from. In
	// irregular deployments (Scenario C) the area >MaxSensorGap from
	// all sensors is exactly where the strong-far/weak-near ambiguity
	// the paper describes cannot be resolved, so hypotheses there are
	// unverifiable; 0 disables the filter (grid deployments have no
	// such pockets).
	MaxSensorGap float64
	// MeanShiftStarts is the number of mean-shift start points sampled
	// from the particle population per estimation (default 192).
	MeanShiftStarts int

	// Movement is the paper's F_movement prediction hook (Section V-B):
	// selected particles are passed through it before weighting. nil
	// means static sources.
	Movement MovementModel

	// Init overrides the uniform particle initialization with a prior
	// distribution (Section V-A); see SeededPrior. nil means uniform.
	Init InitSampler

	// Workers bounds the mean-shift worker goroutines (default
	// runtime.GOMAXPROCS(0)). The paper's Table I measures exactly this
	// parallelism.
	Workers int

	// WeightWorkers bounds the goroutines the weighting stage fans the
	// particle subset out to within one Ingest call (default
	// runtime.GOMAXPROCS(0); 1 keeps weighting on the calling
	// goroutine). The subset is split into fixed-size chunks whose
	// boundaries and reduction order do not depend on this value, so a
	// run's output — including ExportState — is bit-identical for every
	// WeightWorkers setting; only wall-clock changes. Small subsets are
	// always weighted inline: the pool only engages when a chunk's work
	// amortizes the goroutine handoff.
	WeightWorkers int

	// Seed drives all of the localizer's internal randomness (particle
	// init, resampling, jitter, injection). Runs with equal seeds and
	// equal measurement sequences are identical.
	Seed uint64

	// Metrics, when non-nil, receives the filter's runtime telemetry:
	// per-stage wall-clock histograms (radloc_filter_stage_seconds),
	// iteration counters, and population-health gauges. nil disables
	// instrumentation entirely — the hot path pays one branch and no
	// clock reads. Metrics never influence the filter's output.
	Metrics *obs.Registry
}

// withDefaults returns cfg with unset fields filled in.
func (c Config) withDefaults() Config {
	if c.NumParticles == 0 {
		c.NumParticles = 2000
	}
	if c.FusionRange == 0 {
		c.FusionRange = 28
	}
	if c.ResampleNoise == 0 {
		c.ResampleNoise = 3
	}
	if c.StrengthMin == 0 {
		c.StrengthMin = 0.1
	}
	if c.StrengthMax == 0 {
		c.StrengthMax = 200
	}
	if c.StrengthNoise == 0 {
		c.StrengthNoise = c.ResampleNoise * c.StrengthMax / 200
	}
	if c.InjectionFrac == 0 {
		c.InjectionFrac = 0.05
	}
	if c.BandwidthXY == 0 {
		c.BandwidthXY = 4
	}
	if c.BandwidthStr == 0 {
		c.BandwidthStr = 30
	}
	if c.ModeMassMin == 0 {
		c.ModeMassMin = 0.04
	}
	if c.MinSourceStrength == 0 {
		c.MinSourceStrength = 2
	}
	if c.MeanShiftStarts == 0 {
		c.MeanShiftStarts = 192
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WeightWorkers == 0 {
		c.WeightWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// validate rejects configurations that cannot work. It runs after
// defaulting.
func (c Config) validate() error {
	if c.Bounds.Width() <= 0 || c.Bounds.Height() <= 0 {
		return fmt.Errorf("core: empty bounds %+v", c.Bounds)
	}
	if c.NumParticles < 1 {
		return fmt.Errorf("core: NumParticles = %d", c.NumParticles)
	}
	if c.FusionRange <= 0 {
		return fmt.Errorf("core: FusionRange = %v", c.FusionRange)
	}
	if c.ResampleNoise < 0 || c.StrengthNoise < 0 {
		return fmt.Errorf("core: negative resampling noise (%v, %v)", c.ResampleNoise, c.StrengthNoise)
	}
	if c.InjectionFrac < 0 || c.InjectionFrac > 1 {
		return fmt.Errorf("core: InjectionFrac = %v", c.InjectionFrac)
	}
	if c.StrengthMin <= 0 || c.StrengthMax <= c.StrengthMin {
		return fmt.Errorf("core: strength prior [%v, %v]", c.StrengthMin, c.StrengthMax)
	}
	if c.BandwidthXY <= 0 || c.BandwidthStr <= 0 {
		return fmt.Errorf("core: bandwidths (%v, %v)", c.BandwidthXY, c.BandwidthStr)
	}
	if c.ModeMassMin < 0 || c.ModeMassMin >= 1 {
		return fmt.Errorf("core: ModeMassMin = %v", c.ModeMassMin)
	}
	if c.MeanShiftStarts < 1 {
		return fmt.Errorf("core: MeanShiftStarts = %d", c.MeanShiftStarts)
	}
	if c.Workers < 1 {
		return fmt.Errorf("core: Workers = %d", c.Workers)
	}
	if c.WeightWorkers < 1 {
		return fmt.Errorf("core: WeightWorkers = %d", c.WeightWorkers)
	}
	return nil
}

// fusionRangeOf resolves the fusion range for a sensor.
func (c Config) fusionRangeOf(sensorID int) float64 {
	if c.FusionRangeFor != nil {
		if d := c.FusionRangeFor(sensorID); d > 0 {
			return d
		}
	}
	return c.FusionRange
}
