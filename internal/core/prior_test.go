package core

import (
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
)

func TestSeededPriorConcentratesParticles(t *testing.T) {
	cfg := testConfig()
	center := geometry.V(47, 71)
	cfg.Init = SeededPrior([]geometry.Vec{center}, 8, 0.8, cfg.Bounds, 0.1, 200)
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	near := 0
	for _, p := range l.Particles() {
		if !bounds100().Contains(p.Pos) {
			t.Fatalf("seeded particle out of bounds: %v", p.Pos)
		}
		if p.Strength < 0.1 || p.Strength > 200 {
			t.Fatalf("seeded strength out of prior: %v", p.Strength)
		}
		if p.Pos.Dist(center) < 20 {
			near++
		}
	}
	// ~80% seeded with σ=8 → most of those within 20 of the center;
	// uniform would put only ~12% there.
	if near < 1000 {
		t.Errorf("only %d/2000 particles near the prior center", near)
	}
}

func TestSeededPriorEmptyCentersIsUniform(t *testing.T) {
	cfg := testConfig()
	cfg.Init = SeededPrior(nil, 8, 0.8, cfg.Bounds, 0.1, 200)
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var quad [4]int
	for _, p := range l.Particles() {
		qi := 0
		if p.Pos.X > 50 {
			qi++
		}
		if p.Pos.Y > 50 {
			qi += 2
		}
		quad[qi]++
	}
	for q, n := range quad {
		if n < 350 || n > 650 {
			t.Errorf("quadrant %d holds %d/2000 — not uniform", q, n)
		}
	}
}

func TestSeededPriorClampsDegenerateArgs(t *testing.T) {
	s := rng.New(1, 1)
	b := bounds100()
	// Negative fraction and sigma fall back to sane values.
	f := SeededPrior([]geometry.Vec{geometry.V(50, 50)}, -1, -2, b, 0.1, 200)
	pos, str := f(s)
	if str < 0.1 || str > 200 {
		t.Errorf("strength %v", str)
	}
	_ = pos
	// Fraction > 1 clamps to all-seeded.
	f = SeededPrior([]geometry.Vec{geometry.V(50, 50)}, 5, 7, b, 0.1, 200)
	for i := 0; i < 50; i++ {
		p, _ := f(s)
		if p.Dist(geometry.V(50, 50)) > 40 {
			t.Fatalf("all-seeded draw far from center: %v", p)
		}
	}
}

// TestSeededPriorSpeedsConvergence: with particles seeded near the true
// sources (as the SPRT trigger locations would provide), the first-step
// estimate is already accurate — the paper's stated benefit.
func TestSeededPriorSpeedsConvergence(t *testing.T) {
	truth := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	firstStepErr := func(seeded bool) float64 {
		cfg := testConfig()
		if seeded {
			cfg.Init = SeededPrior(
				[]geometry.Vec{geometry.V(40, 70), geometry.V(80, 40)}, // approx trigger locations
				10, 0.7, cfg.Bounds, 0.1, 200)
		}
		l, err := NewLocalizer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runSteps(t, l, truth, nil, 1, 23)
		ests := l.Estimates()
		var worst float64
		for _, src := range truth {
			_, d := nearestEstimate(ests, src.Pos)
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	seeded := firstStepErr(true)
	if seeded > 8 {
		t.Errorf("seeded first-step worst error = %v, want ≤ 8", seeded)
	}
}
