package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

// runWorkload drives one localizer through a fixed measurement and
// estimate-refresh schedule and returns its exported state and the
// estimates of the final refresh. Every configuration under test must
// consume the identical schedule: Estimates draws start samples from
// the localizer's RNG stream, so refresh points are part of the
// deterministic trace.
func runWorkload(t *testing.T, cfg Config, steps int) (State, []Estimate) {
	t.Helper()
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sources := []radiation.Source{
		{Pos: geometry.V(30, 60), Strength: 40},
		{Pos: geometry.V(75, 25), Strength: 25},
	}
	sensors := sensor.Grid(bounds100(), 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(99, "test/ww-measurements")
	var ests []Estimate
	for step := 0; step < steps; step++ {
		for _, sen := range sensors {
			m := sen.Measure(stream, sources, nil, step)
			l.Ingest(sen, m.CPM)
		}
		ests = l.Estimates()
	}
	st, err := l.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return st, ests
}

// TestExportStateBitIdenticalAcrossWorkerCounts is the tentpole's
// determinism invariant: the weighting worker pool and the mean-shift
// worker pool change wall-clock only, never output. Run the identical
// workload under several (WeightWorkers, Workers) settings and demand
// byte-for-byte equal exported state and equal estimates. Run with
// -race to also exercise the pools' memory discipline.
func TestExportStateBitIdenticalAcrossWorkerCounts(t *testing.T) {
	base := testConfig()
	base.NumParticles = 1500 // > 2 chunks so the pool actually engages

	type variant struct{ weightWorkers, msWorkers int }
	variants := []variant{{1, 1}, {2, 3}, {5, 2}, {16, 8}}

	var refState []byte
	var refEsts []Estimate
	for i, v := range variants {
		cfg := base
		cfg.WeightWorkers = v.weightWorkers
		cfg.Workers = v.msWorkers
		st, ests := runWorkload(t, cfg, 6)
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refState, refEsts = blob, ests
			continue
		}
		if !bytes.Equal(blob, refState) {
			t.Errorf("workers=%+v: exported state differs from workers=%+v", v, variants[0])
		}
		if fmt.Sprint(ests) != fmt.Sprint(refEsts) {
			t.Errorf("workers=%+v: estimates differ: %v vs %v", v, ests, refEsts)
		}
	}
}

// TestIngestSteadyStateAllocationFree pins the rewrite's allocation
// contract: once the scratch buffers have grown to the workload, the
// per-reading path (select → predict → weight → resample) allocates
// nothing. Inline weighting is the measured configuration — the pooled
// path necessarily allocates its worker goroutines.
func TestIngestSteadyStateAllocationFree(t *testing.T) {
	cfg := testConfig()
	cfg.WeightWorkers = 1
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sources := []radiation.Source{{Pos: geometry.V(40, 55), Strength: 30}}
	sensors := sensor.Grid(bounds100(), 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(7, "test/alloc-measurements")

	// Warm up: grow every scratch buffer and converge the population.
	for step := 0; step < 4; step++ {
		for _, sen := range sensors {
			m := sen.Measure(stream, sources, nil, step)
			l.Ingest(sen, m.CPM)
		}
	}

	// Pre-render the measured readings so the closure under
	// AllocsPerRun runs the ingest path and nothing else.
	type reading struct {
		sen sensor.Sensor
		cpm int
	}
	var readings []reading
	for step := 4; step < 10; step++ {
		for _, sen := range sensors {
			m := sen.Measure(stream, sources, nil, step)
			readings = append(readings, reading{sen, m.CPM})
		}
	}
	idx := 0
	allocs := testing.AllocsPerRun(200, func() {
		r := readings[idx%len(readings)]
		idx++
		l.Ingest(r.sen, r.cpm)
	})
	if allocs > 0 {
		t.Errorf("steady-state Ingest allocates %.1f objects per reading, want 0", allocs)
	}
}

// TestMovementFusedMatchesSplit verifies the fused predict+weight path
// (taken when weighting runs inline) produces the same trace as the
// pooled configuration, which must split the RNG-drawing movement pass
// from the parallel weighting: with a movement model installed the two
// code paths differ, but their outputs may not.
func TestMovementFusedMatchesSplit(t *testing.T) {
	base := testConfig()
	base.NumParticles = 1500
	base.Movement = RandomWalk{Sigma: 0.5}

	cfg1 := base
	cfg1.WeightWorkers = 1 // fused predict+weight
	st1, _ := runWorkload(t, cfg1, 4)

	cfg2 := base
	cfg2.WeightWorkers = 4 // sequential predict, pooled weight
	st2, _ := runWorkload(t, cfg2, 4)

	b1, err := json.Marshal(st1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("fused and split predict+weight paths diverged")
	}
}
