package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func stateTestConfig() Config {
	return Config{
		Bounds:       geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100)),
		NumParticles: 400,
		MaxSensorGap: 40,
		Seed:         11,
	}
}

func stateTestSensors() []sensor.Sensor {
	var out []sensor.Sensor
	id := 0
	for x := 10.0; x < 100; x += 30 {
		for y := 10.0; y < 100; y += 30 {
			out = append(out, sensor.Sensor{ID: id, Pos: geometry.V(x, y), Efficiency: 1, Background: 30})
			id++
		}
	}
	return out
}

// TestStateRoundTripDeterminism is the recovery invariant at the
// localizer level: ingest K measurements, export, import into a fresh
// localizer, continue both with the identical suffix — the particle
// populations and estimates must match exactly.
func TestStateRoundTripDeterminism(t *testing.T) {
	sens := stateTestSensors()
	sources := []radiation.Source{{Pos: geometry.V(30, 60), Strength: 50}}
	measure := rng.NewNamed(3, "core-state/measure")
	type reading struct {
		sen sensor.Sensor
		cpm int
	}
	var readings []reading
	for step := 0; step < 12; step++ {
		for _, sen := range sens {
			m := sen.Measure(measure, sources, nil, step)
			readings = append(readings, reading{sen, m.CPM})
		}
	}

	orig, err := NewLocalizer(stateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	split := len(readings) / 2
	for _, r := range readings[:split] {
		orig.Ingest(r.sen, r.cpm)
	}
	st, err := orig.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// Through JSON, as a checkpoint would store it.
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 State
	if err := json.Unmarshal(blob, &st2); err != nil {
		t.Fatal(err)
	}

	restored, err := NewLocalizer(stateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ImportState(st2); err != nil {
		t.Fatal(err)
	}

	for _, r := range readings[split:] {
		orig.Ingest(r.sen, r.cpm)
		restored.Ingest(r.sen, r.cpm)
	}
	if orig.Iterations() != restored.Iterations() {
		t.Fatalf("iterations diverged: %d vs %d", orig.Iterations(), restored.Iterations())
	}
	a, b := orig.Particles(), restored.Particles()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("particle populations diverged after state round-trip")
	}
	ea, eb := orig.Estimates(), restored.Estimates()
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("estimates diverged: %v vs %v", ea, eb)
	}
}

func TestImportStateRejectsMismatch(t *testing.T) {
	l, err := NewLocalizer(stateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := l.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	cfg := stateTestConfig()
	cfg.NumParticles = 10
	small, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.ImportState(st); err == nil {
		t.Fatal("particle-count mismatch accepted")
	}

	bad := st
	bad.Xs = append([]float64(nil), st.Xs...)
	bad.Xs[3] = nan()
	if err := l.ImportState(bad); err == nil {
		t.Fatal("NaN particle accepted")
	}

	badRNG := st
	badRNG.RNG = []byte("nope")
	if err := l.ImportState(badRNG); err == nil {
		t.Fatal("corrupt RNG state accepted")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
