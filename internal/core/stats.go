package core

// Stats summarizes the filter's runtime behaviour for monitoring and
// tuning.
type Stats struct {
	// Iterations is the number of measurements ingested.
	Iterations int
	// LastSubsetSize is |P''| of the most recent iteration — how many
	// particles the last fusion disc captured (0 if the last
	// measurement found no particles in range).
	LastSubsetSize int
	// MeanSubsetSize is the running mean of |P''| over all iterations.
	// The paper's efficiency argument rests on this being a small
	// fraction of the population once particles concentrate.
	MeanSubsetSize float64
	// EmptyIterations counts measurements whose fusion disc contained
	// no particles (Eq. 5 returned the null set).
	EmptyIterations int
	// EffectiveSampleSize is Kish's (Σw)²/Σw² over the current weights:
	// near NumParticles for healthy diversity, collapsing toward 1 on
	// degeneracy — the failure resampling exists to prevent (V-E).
	EffectiveSampleSize float64
	// SensorsSeen is the number of distinct sensors heard from (only
	// tracked when MaxSensorGap is enabled; otherwise 0).
	SensorsSeen int
}

// Stats returns the current runtime statistics.
func (l *Localizer) Stats() Stats {
	s := Stats{
		Iterations:      l.iter,
		LastSubsetSize:  l.lastSubset,
		EmptyIterations: l.emptyIters,
		SensorsSeen:     len(l.sensorPos),
	}
	if l.iter > 0 {
		s.MeanSubsetSize = float64(l.subsetTotal) / float64(l.iter)
	}
	var sum, sum2 float64
	for _, w := range l.ws {
		if w > 0 {
			sum += w
			sum2 += w * w
		}
	}
	if sum2 > 0 {
		s.EffectiveSampleSize = sum * sum / sum2
	}
	return s
}
