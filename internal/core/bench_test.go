package core

import (
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

// warmLocalizer returns a localizer that has converged on two sources,
// matching the steady state the paper times.
func warmLocalizer(b *testing.B, particles int) (*Localizer, []sensor.Sensor, []radiation.Source, *rng.Stream) {
	b.Helper()
	cfg := Config{
		Bounds:       geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100)),
		NumParticles: particles,
		Seed:         1,
	}
	l, err := NewLocalizer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sources := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	sensors := sensor.Grid(cfg.Bounds, 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(1, "bench/core")
	for step := 0; step < 3; step++ {
		for _, sen := range sensors {
			m := sen.Measure(stream, sources, nil, step)
			l.Ingest(sen, m.CPM)
		}
	}
	return l, sensors, sources, stream
}

func BenchmarkIngest(b *testing.B) {
	for _, particles := range []int{2000, 15000} {
		b.Run(benchName(particles), func(b *testing.B) {
			l, sensors, sources, stream := warmLocalizer(b, particles)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sen := sensors[i%len(sensors)]
				m := sen.Measure(stream, sources, nil, 3)
				l.Ingest(sen, m.CPM)
			}
		})
	}
}

func BenchmarkEstimates(b *testing.B) {
	for _, particles := range []int{2000, 15000} {
		b.Run(benchName(particles), func(b *testing.B) {
			l, _, _, _ := warmLocalizer(b, particles)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = l.Estimates()
			}
		})
	}
}

func BenchmarkParticlesSnapshot(b *testing.B) {
	l, _, _, _ := warmLocalizer(b, 15000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Particles()
	}
}

func BenchmarkAppendParticles(b *testing.B) {
	l, _, _, _ := warmLocalizer(b, 15000)
	var buf []Particle
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = l.AppendParticles(buf[:0])
	}
	_ = buf
}

func benchName(particles int) string {
	if particles >= 1000 {
		return "p" + itoa(particles/1000) + "k"
	}
	return "p" + itoa(particles)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
