package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"radloc/internal/geometry"
	"radloc/internal/meanshift"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
	"radloc/internal/spatial"
	"radloc/internal/stat"
)

// Particle is one hypothesis about a single source's parameters.
type Particle struct {
	Pos      geometry.Vec // hypothesized source position
	Strength float64      // hypothesized source strength, µCi
	Weight   float64      // normalized importance weight
}

// Estimate is one recovered source: a mode of the particle density.
type Estimate struct {
	Pos      geometry.Vec // estimated source position
	Strength float64      // µCi
	Mass     float64      // fraction of total particle mass attributed to this mode
	Starts   int          // mean-shift starts that converged here (diagnostic)
}

// String implements fmt.Stringer.
func (e Estimate) String() string {
	return fmt.Sprintf("est %.4g µCi at %v (mass %.3f)", e.Strength, e.Pos, e.Mass)
}

// weightChunkSize is the fixed granularity the weighting stage splits
// the selected subset into. Chunk boundaries — and with them the
// floating-point reduction order of the per-chunk partial sums — are a
// function of the subset size only, never of Config.WeightWorkers, so
// every worker count produces bit-identical filter state (see
// DESIGN.md §11).
const weightChunkSize = 512

// Localizer is the hybrid particle-filter + mean-shift estimator. It is
// not safe for concurrent use; the weighting and mean-shift stages
// parallelize internally.
type Localizer struct {
	cfg Config

	// Particle state, struct-of-arrays for cache-friendly weighting.
	// lws caches log(ws): weights only change wholesale at resampling,
	// so the weighting stage reads a precomputed log instead of paying
	// math.Log per particle per reading.
	xs, ys, ss, ws, lws []float64

	grid      *spatial.Grid
	gridDirty bool

	met *filterMetrics // nil when Config.Metrics is nil

	stream *rng.Stream
	iter   int

	// Runtime statistics (see Stats).
	lastSubset  int
	subsetTotal int64
	emptyIters  int

	// sensorPos records the position of every sensor heard from, for
	// the MaxSensorGap observability filter.
	sensorPos map[int]geometry.Vec

	// Scratch buffers reused across iterations: the steady-state
	// ingest path allocates nothing.
	idsBuf    []int
	logBuf    []float64
	cdfBuf    []float64
	pickBuf   []int32
	posBuf    []geometry.Vec
	sxBuf     []float64 // resample survivors, x
	syBuf     []float64 // resample survivors, y
	ssBuf     []float64 // resample survivors, strength
	chunkMax  []float64 // per-chunk max log-posterior partials
	chunkMass []float64 // per-chunk prior-mass partials

	// Estimation scratch (refresh path, not per-reading).
	searcher  *meanshift.Searcher
	ptsBuf    []float64
	wtsBuf    []float64
	startsBuf []float64
}

// NewLocalizer creates a localizer with uniformly random particles
// (Section V-A: no prior knowledge of source locations or strengths).
func NewLocalizer(cfg Config) (*Localizer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l := &Localizer{
		cfg:    cfg,
		met:    newFilterMetrics(cfg.Metrics),
		stream: rng.NewNamed(cfg.Seed, "core/localizer"),
	}
	n := cfg.NumParticles
	l.xs = make([]float64, n)
	l.ys = make([]float64, n)
	l.ss = make([]float64, n)
	l.ws = make([]float64, n)
	l.lws = make([]float64, n)
	w0 := 1 / float64(n)
	lw0 := math.Log(w0)
	for i := 0; i < n; i++ {
		if cfg.Init != nil {
			pos, s := cfg.Init(l.stream)
			l.xs[i] = clampF(pos.X, cfg.Bounds.Min.X, cfg.Bounds.Max.X)
			l.ys[i] = clampF(pos.Y, cfg.Bounds.Min.Y, cfg.Bounds.Max.Y)
			l.ss[i] = clampF(s, cfg.StrengthMin, cfg.StrengthMax)
		} else {
			l.xs[i] = l.stream.Uniform(cfg.Bounds.Min.X, cfg.Bounds.Max.X)
			l.ys[i] = l.stream.Uniform(cfg.Bounds.Min.Y, cfg.Bounds.Max.Y)
			l.ss[i] = l.stream.Uniform(cfg.StrengthMin, cfg.StrengthMax)
		}
		l.ws[i] = w0
		l.lws[i] = lw0
	}
	l.grid = spatial.NewGrid(cfg.Bounds, cfg.FusionRange/2)
	l.gridDirty = true
	l.posBuf = make([]geometry.Vec, n)
	l.logBuf = make([]float64, 0, n)
	l.cdfBuf = make([]float64, 0, n)
	l.pickBuf = make([]int32, 0, n)
	l.sxBuf = make([]float64, n)
	l.syBuf = make([]float64, n)
	l.ssBuf = make([]float64, n)
	nChunks := (n + weightChunkSize - 1) / weightChunkSize
	l.chunkMax = make([]float64, nChunks)
	l.chunkMass = make([]float64, nChunks)
	searcher, err := meanshift.NewSearcher(meanshift.Config{
		Bandwidth: []float64{cfg.BandwidthXY, cfg.BandwidthXY, cfg.BandwidthStr},
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	l.searcher = searcher
	l.ptsBuf = make([]float64, 0, 3*n)
	l.wtsBuf = make([]float64, 0, n)
	l.startsBuf = make([]float64, 0, 3*cfg.MeanShiftStarts)
	if cfg.MaxSensorGap > 0 {
		l.sensorPos = make(map[int]geometry.Vec)
	}
	return l, nil
}

// Config returns the effective (defaulted) configuration.
func (l *Localizer) Config() Config { return l.cfg }

// Iterations returns the number of measurements ingested so far.
func (l *Localizer) Iterations() int { return l.iter }

// Particles returns a copy of the current particle population. Hot
// loops that read the population every step should use AppendParticles
// with a reused buffer instead — this convenience form allocates a
// fresh slice per call.
func (l *Localizer) Particles() []Particle {
	return l.AppendParticles(make([]Particle, 0, len(l.xs)))
}

// AppendParticles appends the current particle population to dst and
// returns the extended slice — the allocation-free way to sample the
// population every step: pass the previous call's result re-sliced to
// zero length (buf = l.AppendParticles(buf[:0])) and the buffer is
// reused once it has grown to the population size.
func (l *Localizer) AppendParticles(dst []Particle) []Particle {
	for i := range l.xs {
		dst = append(dst, Particle{
			Pos:      geometry.V(l.xs[i], l.ys[i]),
			Strength: l.ss[i],
			Weight:   l.ws[i],
		})
	}
	return dst
}

// Ingest performs one filter iteration with a single measurement
// (Section V-B,C,E): select the particles within the sensor's fusion
// range, reweight them by the Poisson likelihood of the observed CPM,
// resample them (with jitter on duplicates), and re-inject a small
// fraction of random particles.
//
// The steady-state path is allocation-free: every stage works in
// scratch buffers sized to the particle population at construction,
// and the spatial index is updated incrementally instead of rebuilt
// (see DESIGN.md §11 for the full performance model).
func (l *Localizer) Ingest(sen sensor.Sensor, cpm int) {
	l.iter++
	if l.sensorPos != nil {
		l.sensorPos[sen.ID] = sen.Pos
	}
	t0 := l.met.now()
	ids := l.selectParticles(sen)
	if l.met != nil {
		t0 = l.met.lap(l.met.selectH, t0)
	}
	l.lastSubset = len(ids)
	l.subsetTotal += int64(len(ids))
	l.met.ingest(len(ids))
	if len(ids) == 0 {
		l.emptyIters++
		return
	}

	// Prediction (V-B): P'' = F_movement(P'); identity for static
	// sources. When weighting runs inline (one chunk's worth of work or
	// WeightWorkers = 1) the prediction is fused into the weighting
	// loop — one pass over the subset instead of two — and its cost is
	// charged to the weight stage. A parallel weighting pass forces the
	// split: the movement model draws from the localizer's single RNG
	// stream, so it must run sequentially before the fan-out.
	fused := l.cfg.Movement != nil && !l.parallelWeighting(len(ids))
	if l.cfg.Movement != nil && !fused {
		l.applyMovement(ids)
	}
	if l.met != nil {
		t0 = l.met.lap(l.met.predictH, t0)
	}

	// Weighting (V-C): posterior ∝ prior × Poisson(cpm | λ(particle)).
	// Log-space with max-shift keeps the arithmetic finite even when
	// the counts are large.
	cum, priorMass := l.weigh(sen, cpm, ids, fused)
	if l.met != nil {
		t0 = l.met.lap(l.met.weightH, t0)
	}
	l.resample(ids, cum, priorMass)
	if l.met != nil {
		l.met.lap(l.met.resampleH, t0)
	}
}

// parallelWeighting reports whether the weighting stage will fan out
// to worker goroutines for a subset of k particles: only when the
// configuration allows more than one worker and the subset spans more
// than one chunk (a single chunk cannot amortize the handoff).
func (l *Localizer) parallelWeighting(k int) bool {
	return l.cfg.WeightWorkers > 1 && k > weightChunkSize
}

// weigh computes the log-posterior of every selected particle, reduces
// the result to a cumulative selection distribution in cdfBuf, and
// returns the distribution's total mass together with the subset's
// prior mass share.
//
// The subset is processed in fixed-size chunks. Each chunk fills its
// disjoint logBuf range and produces (max, mass) partials; partials
// combine in chunk order. The chunking is identical whether chunks run
// on the calling goroutine or on WeightWorkers goroutines, which is
// what makes the result — and all downstream filter state —
// bit-identical across worker counts.
func (l *Localizer) weigh(sen sensor.Sensor, cpm int, ids []int, fused bool) (cum, priorMass float64) {
	k := len(ids)
	l.logBuf = l.logBuf[:k]
	l.cdfBuf = l.cdfBuf[:k]
	nChunks := (k + weightChunkSize - 1) / weightChunkSize
	chunkMax := l.chunkMax[:nChunks]
	chunkMass := l.chunkMass[:nChunks]

	// Per-reading constants, hoisted out of the particle loop: the
	// calibration factor of Eq. (4) and — the big one — the Poisson
	// log-factorial term, which depends only on the observed count and
	// which the seed implementation recomputed per particle via
	// math.Lgamma.
	effC := radiation.CPMPerMicroCurie * sen.Efficiency
	bg := sen.Background
	kf := float64(cpm)
	lgk := stat.LogFactorial(cpm)

	// The fused (movement-in-loop) variant draws from the shared RNG
	// stream, so it only ever runs inline; parallelWeighting gates it.
	// The inline path calls the chunk method directly — a closure here
	// would escape through the pool path and put two heap allocations
	// on every reading.
	if l.parallelWeighting(k) {
		l.runChunks(nChunks, func(c int) {
			l.weightChunk(c, ids, sen, cpm, kf, lgk, effC, bg, fused)
		})
	} else {
		for c := 0; c < nChunks; c++ {
			l.weightChunk(c, ids, sen, cpm, kf, lgk, effC, bg, fused)
		}
	}

	maxLog := math.Inf(-1)
	priorMass = 0
	for c := range chunkMax {
		if chunkMax[c] > maxLog {
			maxLog = chunkMax[c]
		}
		priorMass += chunkMass[c]
	}
	if priorMass <= 0 {
		// The whole neighbourhood is massless; revive it uniformly so
		// resampling below is well defined.
		priorMass = float64(k) / float64(len(l.ws))
		for i := range l.logBuf {
			l.logBuf[i] = 0
		}
		maxLog = 0
	}

	// Posterior selection probabilities within the subset: exponentiate
	// (chunked, element-wise, so worker counts cannot change the
	// values), then a sequential prefix sum builds the cdf.
	if math.IsInf(maxLog, -1) {
		// Nothing in the subset can explain the reading at all; fall
		// back to uniform selection so diversity survives.
		return uniformCDF(l.cdfBuf), priorMass
	}
	if l.parallelWeighting(k) {
		l.runChunks(nChunks, func(c int) {
			l.expChunk(c, k, maxLog)
		})
	} else {
		for c := 0; c < nChunks; c++ {
			l.expChunk(c, k, maxLog)
		}
	}
	cum = 0
	for i := range l.cdfBuf {
		cum += l.cdfBuf[i]
		l.cdfBuf[i] = cum
	}
	if cum <= 0 {
		return uniformCDF(l.cdfBuf), priorMass
	}
	return cum, priorMass
}

// weightChunk scores chunk c of the selected subset: it fills the
// chunk's logBuf range with per-particle log-posteriors and records the
// chunk's (max log, prior mass) partials. With fused set (inline
// execution only) the movement model runs on each particle first, so
// prediction and weighting make one pass over the subset.
func (l *Localizer) weightChunk(c int, ids []int, sen sensor.Sensor, cpm int, kf, lgk, effC, bg float64, fused bool) {
	lo := c * weightChunkSize
	hi := lo + weightChunkSize
	if hi > len(ids) {
		hi = len(ids)
	}
	cMax := math.Inf(-1)
	var cMass float64
	for i := lo; i < hi; i++ {
		id := ids[i]
		if fused {
			pos, s := l.cfg.Movement.Move(geometry.V(l.xs[id], l.ys[id]), l.ss[id], l.stream)
			l.xs[id] = l.clampX(pos.X)
			l.ys[id] = l.clampY(pos.Y)
			l.ss[id] = l.clampS(s)
		}
		dx := sen.Pos.X - l.xs[id]
		dy := sen.Pos.Y - l.ys[id]
		lambda := effC*(l.ss[id]/(1+dx*dx+dy*dy)) + bg
		var ll float64
		switch {
		case cpm >= 0 && lambda > 0:
			ll = kf*math.Log(lambda) - lambda - lgk + l.lws[id]
		case cpm == 0 && lambda == 0:
			ll = l.lws[id]
		default:
			ll = math.Inf(-1)
		}
		l.logBuf[i] = ll
		if ll > cMax {
			cMax = ll
		}
		cMass += l.ws[id]
	}
	l.chunkMax[c] = cMax
	l.chunkMass[c] = cMass
}

// expChunk exponentiates chunk c of logBuf into cdfBuf (element-wise,
// so chunk scheduling cannot change the values).
func (l *Localizer) expChunk(c, k int, maxLog float64) {
	lo := c * weightChunkSize
	hi := lo + weightChunkSize
	if hi > k {
		hi = k
	}
	for i := lo; i < hi; i++ {
		l.cdfBuf[i] = math.Exp(l.logBuf[i] - maxLog)
	}
}

// uniformCDF overwrites cdf with the uniform cumulative distribution
// 1, 2, ..., len(cdf) and returns its total.
func uniformCDF(cdf []float64) float64 {
	var cum float64
	for i := range cdf {
		cum++
		cdf[i] = cum
	}
	return cum
}

// runChunks executes fn(c) for every chunk index. Chunks run on the
// calling goroutine unless the worker pool is engaged (WeightWorkers >
// 1 and more than one chunk), in which case min(WeightWorkers, chunks)
// goroutines drain the chunk indices. fn must write only to its
// chunk's disjoint state; the chunk decomposition itself never depends
// on the worker count.
func (l *Localizer) runChunks(nChunks int, fn func(c int)) {
	workers := l.cfg.WeightWorkers
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		for c := 0; c < nChunks; c++ {
			fn(c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
}

// selectParticles implements Eq. (5): P' = {p : ‖S_i − p‖ ≤ d_i}. With
// the fusion range disabled every particle is selected (the classic
// formulation of Fig. 2).
func (l *Localizer) selectParticles(sen sensor.Sensor) []int {
	if l.cfg.DisableFusionRange {
		l.idsBuf = l.idsBuf[:0]
		for i := range l.xs {
			l.idsBuf = append(l.idsBuf, i)
		}
		return l.idsBuf
	}
	if l.gridDirty {
		for i := range l.xs {
			l.posBuf[i] = geometry.V(l.xs[i], l.ys[i])
		}
		l.grid.Rebuild(l.posBuf)
		l.gridDirty = false
	}
	d := l.cfg.fusionRangeOf(sen.ID)
	// The sorted form keeps selection — and the floating-point order of
	// everything downstream — a pure function of the particle state:
	// incremental Move updates leave the grid's bucket order dependent
	// on update history, which an ExportState/ImportState round trip
	// (canonical Rebuild) could not reproduce.
	l.idsBuf = l.grid.WithinRadiusSorted(sen.Pos, d, l.idsBuf[:0])
	return l.idsBuf
}

// resample draws len(ids) survivors from the subset via systematic
// resampling over the cumulative posterior cdfBuf (total mass cum),
// jitters duplicates (V-E), injects fresh random particles, and
// restores the subset's prior mass share uniformly across survivors —
// the "uniform weights" reset of Section V-E, which keeps the selective
// update from starving untouched regions. Survivors materialize into
// reused scratch arrays and the spatial index is moved incrementally:
// the stage allocates nothing and the index never pays a full rebuild
// for a partial update.
func (l *Localizer) resample(ids []int, cum, priorMass float64) {
	n := len(ids)
	l.pickBuf = l.pickBuf[:0]
	step := cum / float64(n)
	u := l.stream.Float64() * step
	j := 0
	for k := 0; k < n; k++ {
		target := u + float64(k)*step
		for j < n-1 && l.cdfBuf[j] < target {
			j++
		}
		l.pickBuf = append(l.pickBuf, int32(j))
	}

	// Materialize survivors into scratch. pickBuf is sorted, so a
	// duplicate is any pick equal to its predecessor; the first copy
	// keeps the exact parameters, later copies are jittered. The
	// two-phase copy (gather, then write back) keeps later picks from
	// reading slots an earlier write already clobbered.
	sx, sy, ss := l.sxBuf[:n], l.syBuf[:n], l.ssBuf[:n]
	for k := 0; k < n; k++ {
		src := ids[l.pickBuf[k]]
		x, y, s := l.xs[src], l.ys[src], l.ss[src]
		if k > 0 && l.pickBuf[k] == l.pickBuf[k-1] {
			x = l.clampX(x + l.stream.Normal(0, l.cfg.ResampleNoise))
			y = l.clampY(y + l.stream.Normal(0, l.cfg.ResampleNoise))
			s = l.clampS(s + l.stream.Normal(0, l.cfg.StrengthNoise))
		}
		sx[k], sy[k], ss[k] = x, y, s
	}

	// Random injection (V-E): provision for sources appearing in areas
	// the filter has written off.
	inject := int(math.Ceil(l.cfg.InjectionFrac * float64(n)))
	if l.cfg.InjectionFrac == 0 {
		inject = 0
	}
	for k := 0; k < inject; k++ {
		at := l.stream.IntN(n)
		sx[at] = l.stream.Uniform(l.cfg.Bounds.Min.X, l.cfg.Bounds.Max.X)
		sy[at] = l.stream.Uniform(l.cfg.Bounds.Min.Y, l.cfg.Bounds.Max.Y)
		ss[at] = l.stream.Uniform(l.cfg.StrengthMin, l.cfg.StrengthMax)
	}

	w := priorMass / float64(n)
	lw := math.Inf(-1)
	if w > 0 {
		lw = math.Log(w)
	}
	// Keep the spatial index fresh incrementally while the subset is a
	// small fraction of the population (the paper's steady state, where
	// per-item Move beats re-hashing everything); for bulk updates a
	// single lazy Rebuild at the next selection is cheaper than n/4+
	// bucket edits.
	liveGrid := !l.gridDirty && !l.cfg.DisableFusionRange
	if liveGrid && n > len(l.xs)/4 {
		liveGrid = false
		l.gridDirty = true
	}
	for k := 0; k < n; k++ {
		id := ids[k]
		l.xs[id] = sx[k]
		l.ys[id] = sy[k]
		l.ss[id] = ss[k]
		l.ws[id] = w
		l.lws[id] = lw
		if liveGrid {
			l.grid.Move(id, geometry.V(sx[k], sy[k]))
		}
	}
}

func clampF(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

func (l *Localizer) clampX(x float64) float64 {
	return math.Max(l.cfg.Bounds.Min.X, math.Min(l.cfg.Bounds.Max.X, x))
}

func (l *Localizer) clampY(y float64) float64 {
	return math.Max(l.cfg.Bounds.Min.Y, math.Min(l.cfg.Bounds.Max.Y, y))
}

func (l *Localizer) clampS(s float64) float64 {
	return math.Max(l.cfg.StrengthMin, math.Min(l.cfg.StrengthMax, s))
}

// Estimates recovers the current source estimates (Section V-D): run
// mean-shift from weighted-sampled starts over the particle density in
// (x, y, strength) space, merge converged modes, and report the modes
// that hold enough mass and plausible strength. The search runs on the
// localizer's reusable meanshift.Searcher, so a steady-state estimate
// refresh touches only long-lived scratch.
func (l *Localizer) Estimates() []Estimate {
	t0 := l.met.now()
	n := len(l.xs)
	points := l.ptsBuf[:0]
	weights := l.wtsBuf[:0]
	var total, total2 float64
	for i := 0; i < n; i++ {
		if l.ws[i] <= 0 {
			continue
		}
		points = append(points, l.xs[i], l.ys[i], l.ss[i])
		weights = append(weights, l.ws[i])
		total += l.ws[i]
		total2 += l.ws[i] * l.ws[i]
	}
	l.ptsBuf, l.wtsBuf = points, weights
	ess := 0.0
	if total2 > 0 {
		ess = total * total / total2
	}
	defer l.met.estimated(ess, n, t0)
	if total <= 0 {
		return nil
	}

	starts := l.sampleStarts(points, weights, total)
	modes, err := l.searcher.FindModes(points, weights, starts)
	if err != nil {
		// Only reachable through an internal inconsistency; surface
		// loudly in tests rather than corrupt results.
		panic(fmt.Sprintf("core: mean-shift failed: %v", err))
	}
	if len(modes) == 0 {
		return nil
	}
	mass, err := l.searcher.AssignMass(modes, points, weights, 3)
	if err != nil {
		panic(fmt.Sprintf("core: mass assignment failed: %v", err))
	}

	var out []Estimate
	for i, m := range modes {
		frac := mass[i] / total
		if frac < l.cfg.ModeMassMin {
			continue
		}
		if m.Point[2] < l.cfg.MinSourceStrength {
			continue
		}
		if !l.observable(geometry.V(m.Point[0], m.Point[1])) {
			continue
		}
		out = append(out, Estimate{
			Pos:      geometry.V(m.Point[0], m.Point[1]),
			Strength: m.Point[2],
			Mass:     frac,
			Starts:   m.Starts,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Mass > out[b].Mass })
	return out
}

// observable reports whether a mode location lies within MaxSensorGap
// of any sensor the filter has heard from. With the filter disabled, or
// before any sensor has reported, everything is observable.
func (l *Localizer) observable(p geometry.Vec) bool {
	if l.cfg.MaxSensorGap <= 0 || len(l.sensorPos) == 0 {
		return true
	}
	gap2 := l.cfg.MaxSensorGap * l.cfg.MaxSensorGap
	for _, sp := range l.sensorPos {
		if sp.Dist2(p) <= gap2 {
			return true
		}
	}
	return false
}

// sampleStarts draws MeanShiftStarts start points from the particle
// population by systematic weighted sampling, so starts concentrate
// where the mass is while still covering diffuse regions early on. The
// starts land in a reused scratch buffer.
func (l *Localizer) sampleStarts(points, weights []float64, total float64) []float64 {
	m := l.cfg.MeanShiftStarts
	n := len(weights)
	if n == 0 {
		return nil
	}
	starts := l.startsBuf[:0]
	step := total / float64(m)
	u := l.stream.Float64() * step
	var cum float64
	j := 0
	for k := 0; k < m; k++ {
		target := u + float64(k)*step
		for j < n-1 && cum+weights[j] < target {
			cum += weights[j]
			j++
		}
		starts = append(starts, points[3*j], points[3*j+1], points[3*j+2])
	}
	l.startsBuf = starts
	return starts
}

// Centroid returns the weighted centroid of the whole population — the
// traditional particle-filter point estimate. With multiple sources it
// lands between them (Section V-D's motivating failure); it is exposed
// for the estimator ablation benchmark.
func (l *Localizer) Centroid() Estimate {
	var sx, sy, ss, sw float64
	for i := range l.xs {
		w := l.ws[i]
		sx += w * l.xs[i]
		sy += w * l.ys[i]
		ss += w * l.ss[i]
		sw += w
	}
	if sw <= 0 {
		return Estimate{}
	}
	return Estimate{
		Pos:      geometry.V(sx/sw, sy/sw),
		Strength: ss / sw,
		Mass:     1,
	}
}
