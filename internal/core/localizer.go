package core

import (
	"fmt"
	"math"
	"sort"

	"radloc/internal/geometry"
	"radloc/internal/meanshift"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
	"radloc/internal/spatial"
	"radloc/internal/stat"
)

// Particle is one hypothesis about a single source's parameters.
type Particle struct {
	Pos      geometry.Vec // hypothesized source position
	Strength float64      // hypothesized source strength, µCi
	Weight   float64      // normalized importance weight
}

// Estimate is one recovered source: a mode of the particle density.
type Estimate struct {
	Pos      geometry.Vec // estimated source position
	Strength float64      // µCi
	Mass     float64      // fraction of total particle mass attributed to this mode
	Starts   int          // mean-shift starts that converged here (diagnostic)
}

// String implements fmt.Stringer.
func (e Estimate) String() string {
	return fmt.Sprintf("est %.4g µCi at %v (mass %.3f)", e.Strength, e.Pos, e.Mass)
}

// Localizer is the hybrid particle-filter + mean-shift estimator. It is
// not safe for concurrent use; the mean-shift stage parallelizes
// internally.
type Localizer struct {
	cfg Config

	// Particle state, struct-of-arrays for cache-friendly weighting.
	xs, ys, ss, ws []float64

	grid      *spatial.Grid
	gridDirty bool

	met *filterMetrics // nil when Config.Metrics is nil

	stream *rng.Stream
	iter   int

	// Runtime statistics (see Stats).
	lastSubset  int
	subsetTotal int64
	emptyIters  int

	// sensorPos records the position of every sensor heard from, for
	// the MaxSensorGap observability filter.
	sensorPos map[int]geometry.Vec

	// Scratch buffers reused across iterations.
	idsBuf  []int
	logBuf  []float64
	cdfBuf  []float64
	pickBuf []int32
	posBuf  []geometry.Vec
}

// NewLocalizer creates a localizer with uniformly random particles
// (Section V-A: no prior knowledge of source locations or strengths).
func NewLocalizer(cfg Config) (*Localizer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l := &Localizer{
		cfg:    cfg,
		met:    newFilterMetrics(cfg.Metrics),
		stream: rng.NewNamed(cfg.Seed, "core/localizer"),
	}
	n := cfg.NumParticles
	l.xs = make([]float64, n)
	l.ys = make([]float64, n)
	l.ss = make([]float64, n)
	l.ws = make([]float64, n)
	for i := 0; i < n; i++ {
		if cfg.Init != nil {
			pos, s := cfg.Init(l.stream)
			l.xs[i] = clampF(pos.X, cfg.Bounds.Min.X, cfg.Bounds.Max.X)
			l.ys[i] = clampF(pos.Y, cfg.Bounds.Min.Y, cfg.Bounds.Max.Y)
			l.ss[i] = clampF(s, cfg.StrengthMin, cfg.StrengthMax)
		} else {
			l.xs[i] = l.stream.Uniform(cfg.Bounds.Min.X, cfg.Bounds.Max.X)
			l.ys[i] = l.stream.Uniform(cfg.Bounds.Min.Y, cfg.Bounds.Max.Y)
			l.ss[i] = l.stream.Uniform(cfg.StrengthMin, cfg.StrengthMax)
		}
		l.ws[i] = 1 / float64(n)
	}
	l.grid = spatial.NewGrid(cfg.Bounds, cfg.FusionRange/2)
	l.gridDirty = true
	l.posBuf = make([]geometry.Vec, n)
	if cfg.MaxSensorGap > 0 {
		l.sensorPos = make(map[int]geometry.Vec)
	}
	return l, nil
}

// Config returns the effective (defaulted) configuration.
func (l *Localizer) Config() Config { return l.cfg }

// Iterations returns the number of measurements ingested so far.
func (l *Localizer) Iterations() int { return l.iter }

// Particles returns a copy of the current particle population. Hot
// loops that read the population every step should use AppendParticles
// with a reused buffer instead — this convenience form allocates a
// fresh slice per call.
func (l *Localizer) Particles() []Particle {
	return l.AppendParticles(make([]Particle, 0, len(l.xs)))
}

// AppendParticles appends the current particle population to dst and
// returns the extended slice — the allocation-free way to sample the
// population every step: pass the previous call's result re-sliced to
// zero length (buf = l.AppendParticles(buf[:0])) and the buffer is
// reused once it has grown to the population size.
func (l *Localizer) AppendParticles(dst []Particle) []Particle {
	for i := range l.xs {
		dst = append(dst, Particle{
			Pos:      geometry.V(l.xs[i], l.ys[i]),
			Strength: l.ss[i],
			Weight:   l.ws[i],
		})
	}
	return dst
}

// Ingest performs one filter iteration with a single measurement
// (Section V-B,C,E): select the particles within the sensor's fusion
// range, reweight them by the Poisson likelihood of the observed CPM,
// resample them (with jitter on duplicates), and re-inject a small
// fraction of random particles.
func (l *Localizer) Ingest(sen sensor.Sensor, cpm int) {
	l.iter++
	if l.sensorPos != nil {
		l.sensorPos[sen.ID] = sen.Pos
	}
	t0 := l.met.now()
	ids := l.selectParticles(sen)
	if l.met != nil {
		t0 = l.met.lap(l.met.selectH, t0)
	}
	l.lastSubset = len(ids)
	l.subsetTotal += int64(len(ids))
	l.met.ingest(len(ids))
	if len(ids) == 0 {
		l.emptyIters++
		return
	}

	// Prediction (V-B): P'' = F_movement(P'); identity for static
	// sources.
	l.applyMovement(ids)
	if l.met != nil {
		t0 = l.met.lap(l.met.predictH, t0)
	}

	// Weighting (V-C): posterior ∝ prior × Poisson(cpm | λ(particle)).
	// Log-space with max-shift keeps the arithmetic finite even when
	// the counts are large.
	l.logBuf = l.logBuf[:0]
	maxLog := math.Inf(-1)
	var priorMass float64
	for _, id := range ids {
		hyp := radiation.Source{Pos: geometry.V(l.xs[id], l.ys[id]), Strength: l.ss[id]}
		lambda := radiation.ExpectedCPMSingle(sen.Pos, sen.Efficiency, sen.Background, hyp)
		ll := stat.PoissonLogPMF(cpm, lambda)
		if l.ws[id] > 0 {
			ll += math.Log(l.ws[id])
		} else {
			ll = math.Inf(-1)
		}
		l.logBuf = append(l.logBuf, ll)
		if ll > maxLog {
			maxLog = ll
		}
		priorMass += l.ws[id]
	}
	if priorMass <= 0 {
		// The whole neighbourhood is massless; revive it uniformly so
		// resampling below is well defined.
		priorMass = float64(len(ids)) / float64(len(l.ws))
		for i := range l.logBuf {
			l.logBuf[i] = 0
		}
		maxLog = 0
	}

	// Posterior selection probabilities within the subset.
	l.cdfBuf = l.cdfBuf[:0]
	var cum float64
	if math.IsInf(maxLog, -1) {
		// Nothing in the subset can explain the reading at all; fall
		// back to uniform selection so diversity survives.
		for range ids {
			cum++
			l.cdfBuf = append(l.cdfBuf, cum)
		}
	} else {
		for _, ll := range l.logBuf {
			w := math.Exp(ll - maxLog)
			cum += w
			l.cdfBuf = append(l.cdfBuf, cum)
		}
		if cum <= 0 {
			l.cdfBuf = l.cdfBuf[:0]
			cum = 0
			for range ids {
				cum++
				l.cdfBuf = append(l.cdfBuf, cum)
			}
		}
	}

	if l.met != nil {
		t0 = l.met.lap(l.met.weightH, t0)
	}
	l.resample(ids, cum, priorMass)
	if l.met != nil {
		l.met.lap(l.met.resampleH, t0)
	}
	l.gridDirty = true
}

// selectParticles implements Eq. (5): P' = {p : ‖S_i − p‖ ≤ d_i}. With
// the fusion range disabled every particle is selected (the classic
// formulation of Fig. 2).
func (l *Localizer) selectParticles(sen sensor.Sensor) []int {
	if l.cfg.DisableFusionRange {
		l.idsBuf = l.idsBuf[:0]
		for i := range l.xs {
			l.idsBuf = append(l.idsBuf, i)
		}
		return l.idsBuf
	}
	if l.gridDirty {
		for i := range l.xs {
			l.posBuf[i] = geometry.V(l.xs[i], l.ys[i])
		}
		l.grid.Rebuild(l.posBuf)
		l.gridDirty = false
	}
	d := l.cfg.fusionRangeOf(sen.ID)
	l.idsBuf = l.grid.WithinRadius(sen.Pos, d, l.idsBuf[:0])
	return l.idsBuf
}

// resample draws len(ids) survivors from the subset via systematic
// resampling over the cumulative posterior cdfBuf (total mass cum),
// jitters duplicates (V-E), injects fresh random particles, and
// restores the subset's prior mass share uniformly across survivors —
// the "uniform weights" reset of Section V-E, which keeps the selective
// update from starving untouched regions.
func (l *Localizer) resample(ids []int, cum, priorMass float64) {
	n := len(ids)
	l.pickBuf = l.pickBuf[:0]
	step := cum / float64(n)
	u := l.stream.Float64() * step
	j := 0
	for k := 0; k < n; k++ {
		target := u + float64(k)*step
		for j < n-1 && l.cdfBuf[j] < target {
			j++
		}
		l.pickBuf = append(l.pickBuf, int32(j))
	}

	// Materialize survivors. pickBuf is sorted, so a duplicate is any
	// pick equal to its predecessor; the first copy keeps the exact
	// parameters, later copies are jittered.
	type survivor struct{ x, y, s float64 }
	survivors := make([]survivor, n)
	for k := 0; k < n; k++ {
		src := ids[l.pickBuf[k]]
		sv := survivor{x: l.xs[src], y: l.ys[src], s: l.ss[src]}
		if k > 0 && l.pickBuf[k] == l.pickBuf[k-1] {
			sv.x = l.clampX(sv.x + l.stream.Normal(0, l.cfg.ResampleNoise))
			sv.y = l.clampY(sv.y + l.stream.Normal(0, l.cfg.ResampleNoise))
			sv.s = l.clampS(sv.s + l.stream.Normal(0, l.cfg.StrengthNoise))
		}
		survivors[k] = sv
	}

	// Random injection (V-E): provision for sources appearing in areas
	// the filter has written off.
	inject := int(math.Ceil(l.cfg.InjectionFrac * float64(n)))
	if l.cfg.InjectionFrac == 0 {
		inject = 0
	}
	for k := 0; k < inject; k++ {
		at := l.stream.IntN(n)
		survivors[at] = survivor{
			x: l.stream.Uniform(l.cfg.Bounds.Min.X, l.cfg.Bounds.Max.X),
			y: l.stream.Uniform(l.cfg.Bounds.Min.Y, l.cfg.Bounds.Max.Y),
			s: l.stream.Uniform(l.cfg.StrengthMin, l.cfg.StrengthMax),
		}
	}

	w := priorMass / float64(n)
	for k, sv := range survivors {
		id := ids[k]
		l.xs[id] = sv.x
		l.ys[id] = sv.y
		l.ss[id] = sv.s
		l.ws[id] = w
	}
}

func clampF(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

func (l *Localizer) clampX(x float64) float64 {
	return math.Max(l.cfg.Bounds.Min.X, math.Min(l.cfg.Bounds.Max.X, x))
}

func (l *Localizer) clampY(y float64) float64 {
	return math.Max(l.cfg.Bounds.Min.Y, math.Min(l.cfg.Bounds.Max.Y, y))
}

func (l *Localizer) clampS(s float64) float64 {
	return math.Max(l.cfg.StrengthMin, math.Min(l.cfg.StrengthMax, s))
}

// Estimates recovers the current source estimates (Section V-D): run
// mean-shift from weighted-sampled starts over the particle density in
// (x, y, strength) space, merge converged modes, and report the modes
// that hold enough mass and plausible strength.
func (l *Localizer) Estimates() []Estimate {
	t0 := l.met.now()
	n := len(l.xs)
	points := make([]float64, 0, 3*n)
	weights := make([]float64, 0, n)
	var total, total2 float64
	for i := 0; i < n; i++ {
		if l.ws[i] <= 0 {
			continue
		}
		points = append(points, l.xs[i], l.ys[i], l.ss[i])
		weights = append(weights, l.ws[i])
		total += l.ws[i]
		total2 += l.ws[i] * l.ws[i]
	}
	ess := 0.0
	if total2 > 0 {
		ess = total * total / total2
	}
	defer l.met.estimated(ess, n, t0)
	if total <= 0 {
		return nil
	}

	starts := l.sampleStarts(points, weights, total)
	cfg := meanshift.Config{
		Bandwidth: []float64{l.cfg.BandwidthXY, l.cfg.BandwidthXY, l.cfg.BandwidthStr},
		Workers:   l.cfg.Workers,
	}
	modes, err := meanshift.FindModes(cfg, points, weights, starts)
	if err != nil {
		// Only reachable through an internal inconsistency; surface
		// loudly in tests rather than corrupt results.
		panic(fmt.Sprintf("core: mean-shift failed: %v", err))
	}
	if len(modes) == 0 {
		return nil
	}
	mass, err := meanshift.AssignMass(cfg, modes, points, weights, 3)
	if err != nil {
		panic(fmt.Sprintf("core: mass assignment failed: %v", err))
	}

	var out []Estimate
	for i, m := range modes {
		frac := mass[i] / total
		if frac < l.cfg.ModeMassMin {
			continue
		}
		if m.Point[2] < l.cfg.MinSourceStrength {
			continue
		}
		if !l.observable(geometry.V(m.Point[0], m.Point[1])) {
			continue
		}
		out = append(out, Estimate{
			Pos:      geometry.V(m.Point[0], m.Point[1]),
			Strength: m.Point[2],
			Mass:     frac,
			Starts:   m.Starts,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Mass > out[b].Mass })
	return out
}

// observable reports whether a mode location lies within MaxSensorGap
// of any sensor the filter has heard from. With the filter disabled, or
// before any sensor has reported, everything is observable.
func (l *Localizer) observable(p geometry.Vec) bool {
	if l.cfg.MaxSensorGap <= 0 || len(l.sensorPos) == 0 {
		return true
	}
	gap2 := l.cfg.MaxSensorGap * l.cfg.MaxSensorGap
	for _, sp := range l.sensorPos {
		if sp.Dist2(p) <= gap2 {
			return true
		}
	}
	return false
}

// sampleStarts draws MeanShiftStarts start points from the particle
// population by systematic weighted sampling, so starts concentrate
// where the mass is while still covering diffuse regions early on.
func (l *Localizer) sampleStarts(points, weights []float64, total float64) []float64 {
	m := l.cfg.MeanShiftStarts
	n := len(weights)
	if n == 0 {
		return nil
	}
	starts := make([]float64, 0, 3*m)
	step := total / float64(m)
	u := l.stream.Float64() * step
	var cum float64
	j := 0
	for k := 0; k < m; k++ {
		target := u + float64(k)*step
		for j < n-1 && cum+weights[j] < target {
			cum += weights[j]
			j++
		}
		starts = append(starts, points[3*j], points[3*j+1], points[3*j+2])
	}
	return starts
}

// Centroid returns the weighted centroid of the whole population — the
// traditional particle-filter point estimate. With multiple sources it
// lands between them (Section V-D's motivating failure); it is exposed
// for the estimator ablation benchmark.
func (l *Localizer) Centroid() Estimate {
	var sx, sy, ss, sw float64
	for i := range l.xs {
		w := l.ws[i]
		sx += w * l.xs[i]
		sy += w * l.ys[i]
		ss += w * l.ss[i]
		sw += w
	}
	if sw <= 0 {
		return Estimate{}
	}
	return Estimate{
		Pos:      geometry.V(sx/sw, sy/sw),
		Strength: ss / sw,
		Mass:     1,
	}
}
