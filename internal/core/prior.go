package core

import (
	"radloc/internal/geometry"
	"radloc/internal/rng"
)

// InitSampler draws one initial particle hypothesis. Section V-A: the
// uniform initialization is used "because we do not assume any a priori
// knowledge about the location or strength of the source. If prior
// knowledge is available, the particles can be initialized according to
// the pre-existing distribution. Doing so will reduce the number of
// iterations required to obtain accurate estimates."
type InitSampler func(stream *rng.Stream) (pos geometry.Vec, strength float64)

// SeededPrior builds an InitSampler that concentrates a fraction of the
// initial particles around the given centers (e.g. the sensors whose
// SPRT alarms triggered localization) with Gaussian spread sigma, and
// spreads the remainder uniformly so undiscovered sources are still
// reachable. Strengths stay uniform over the prior range in both
// components. Out-of-bounds draws are clamped by the localizer.
//
// An empty center list yields the uniform prior.
func SeededPrior(centers []geometry.Vec, sigma, seededFrac float64, bounds geometry.Rect, strengthMin, strengthMax float64) InitSampler {
	if seededFrac < 0 {
		seededFrac = 0
	}
	if seededFrac > 1 {
		seededFrac = 1
	}
	if sigma <= 0 {
		sigma = 10
	}
	return func(stream *rng.Stream) (geometry.Vec, float64) {
		s := stream.Uniform(strengthMin, strengthMax)
		if len(centers) == 0 || stream.Float64() >= seededFrac {
			return geometry.V(
				stream.Uniform(bounds.Min.X, bounds.Max.X),
				stream.Uniform(bounds.Min.Y, bounds.Max.Y),
			), s
		}
		c := centers[stream.IntN(len(centers))]
		return geometry.V(
			stream.Normal(c.X, sigma),
			stream.Normal(c.Y, sigma),
		), s
	}
}
