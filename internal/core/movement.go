package core

import (
	"radloc/internal/geometry"
	"radloc/internal/rng"
)

// MovementModel is the paper's F_movement : A → A prediction hook
// (Section V-B). At each iteration the particles selected by the fusion
// range are passed through the model before weighting, letting the
// filter track non-static sources. A nil model means static sources
// (P” = P', the paper's default).
//
// Implementations receive the localizer's random stream so runs remain
// deterministic for a given seed.
type MovementModel interface {
	// Move predicts one hypothesis' next state.
	Move(pos geometry.Vec, strength float64, stream *rng.Stream) (geometry.Vec, float64)
}

// MovementFunc adapts a function to the MovementModel interface.
type MovementFunc func(pos geometry.Vec, strength float64, stream *rng.Stream) (geometry.Vec, float64)

// Move implements MovementModel.
func (f MovementFunc) Move(pos geometry.Vec, strength float64, stream *rng.Stream) (geometry.Vec, float64) {
	return f(pos, strength, stream)
}

// RandomWalk is the standard diffusion prediction for targets with
// unknown motion: position jitters by a zero-mean Gaussian with the
// given per-iteration standard deviation. Strength is left unchanged
// (radioactive decay is negligible on surveillance time scales).
type RandomWalk struct {
	Sigma float64 // per-iteration position jitter σ; ≤ 0 disables movement
}

var _ MovementModel = RandomWalk{}

// Move implements MovementModel.
func (r RandomWalk) Move(pos geometry.Vec, strength float64, stream *rng.Stream) (geometry.Vec, float64) {
	if r.Sigma <= 0 {
		return pos, strength
	}
	return geometry.V(
		pos.X+stream.Normal(0, r.Sigma),
		pos.Y+stream.Normal(0, r.Sigma),
	), strength
}

// ConstantVelocity predicts a drift of V length units per iteration —
// usable when the transport direction of a source (e.g. a vehicle on a
// known road) is approximately known — plus optional diffusion.
type ConstantVelocity struct {
	V     geometry.Vec // drift per iteration
	Sigma float64      // optional diffusion σ on top of the drift
}

var _ MovementModel = ConstantVelocity{}

// Move implements MovementModel.
func (c ConstantVelocity) Move(pos geometry.Vec, strength float64, stream *rng.Stream) (geometry.Vec, float64) {
	p := pos.Add(c.V)
	if c.Sigma > 0 {
		p = geometry.V(p.X+stream.Normal(0, c.Sigma), p.Y+stream.Normal(0, c.Sigma))
	}
	return p, strength
}

// applyMovement runs the configured movement model over the selected
// particles (the prediction step producing P” from P').
func (l *Localizer) applyMovement(ids []int) {
	if l.cfg.Movement == nil {
		return
	}
	for _, id := range ids {
		pos, s := l.cfg.Movement.Move(geometry.V(l.xs[id], l.ys[id]), l.ss[id], l.stream)
		l.xs[id] = l.clampX(pos.X)
		l.ys[id] = l.clampY(pos.Y)
		l.ss[id] = l.clampS(s)
	}
}
