package core

import (
	"math"
	"testing"
	"testing/quick"

	"radloc/internal/geometry"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func TestObservableDisabledByDefault(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !l.observable(geometry.V(1e6, 1e6)) {
		t.Error("filter disabled but point not observable")
	}
}

func TestObservableBeforeAnySensor(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSensorGap = 10
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No measurements yet: everything observable (no data to argue
	// otherwise).
	if !l.observable(geometry.V(50, 50)) {
		t.Error("point not observable before any sensor reported")
	}
}

func TestObservableTracksSeenSensors(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSensorGap = 10
	l, err := NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Ingest(sensor.Sensor{ID: 0, Pos: geometry.V(20, 20), Efficiency: 1e-4, Background: 5}, 5)
	if !l.observable(geometry.V(25, 20)) {
		t.Error("point within gap of a seen sensor not observable")
	}
	if l.observable(geometry.V(80, 80)) {
		t.Error("point far from every seen sensor observable")
	}
	l.Ingest(sensor.Sensor{ID: 1, Pos: geometry.V(80, 82), Efficiency: 1e-4, Background: 5}, 5)
	if !l.observable(geometry.V(80, 80)) {
		t.Error("point near newly seen sensor still unobservable")
	}
}

// TestMaxSensorGapSuppressesDesertEstimates: sensors cover only the
// left half; a fake strong cluster of particles in the uncovered right
// half must not be reported with the filter on.
func TestMaxSensorGapSuppressesDesertEstimates(t *testing.T) {
	run := func(gap float64) int {
		cfg := testConfig()
		cfg.MaxSensorGap = gap
		l, err := NewLocalizer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Sensors on the left edge only.
		sensors := []sensor.Sensor{
			{ID: 0, Pos: geometry.V(10, 30), Efficiency: 1e-4, Background: 5},
			{ID: 1, Pos: geometry.V(10, 70), Efficiency: 1e-4, Background: 5},
		}
		for step := 0; step < 3; step++ {
			for _, sen := range sensors {
				l.Ingest(sen, 5)
			}
		}
		// Forge a dense cluster far from the sensors.
		for i := 0; i < 400; i++ {
			l.xs[i] = 90 + l.stream.Uniform(-1, 1)
			l.ys[i] = 50 + l.stream.Uniform(-1, 1)
			l.ss[i] = 50
			l.ws[i] = 1.0 / 400
		}
		desert := 0
		for _, e := range l.Estimates() {
			if e.Pos.X > 60 {
				desert++
			}
		}
		return desert
	}
	if got := run(15); got != 0 {
		t.Errorf("observability filter on: %d desert estimates", got)
	}
	if got := run(0); got == 0 {
		t.Error("filter off: expected the forged desert cluster to be reported")
	}
}

// Property: total particle mass stays 1 under arbitrary measurement
// sequences (mass-preserving resampling), and particles stay in bounds.
func TestIngestInvariantsProperty(t *testing.T) {
	cfg := testConfig()
	cfg.NumParticles = 300
	f := func(seed uint64, readings []uint16) bool {
		l, err := NewLocalizer(cfg)
		if err != nil {
			return false
		}
		stream := rng.New(seed, 1)
		for _, r := range readings {
			sen := sensor.Sensor{
				ID:         int(r % 7),
				Pos:        geometry.V(stream.Uniform(-10, 110), stream.Uniform(-10, 110)),
				Efficiency: 1e-4,
				Background: 5,
			}
			l.Ingest(sen, int(r%2000))
		}
		var sum float64
		for _, p := range l.Particles() {
			if p.Weight < 0 || math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0) {
				return false
			}
			if !cfg.Bounds.Contains(p.Pos) {
				return false
			}
			if p.Strength < 0.1-1e-9 || p.Strength > 200+1e-9 {
				return false
			}
			sum += p.Weight
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Estimates never reports more modes than MeanShiftStarts and
// never reports NaN positions.
func TestEstimatesSanityProperty(t *testing.T) {
	cfg := testConfig()
	cfg.NumParticles = 400
	cfg.MeanShiftStarts = 32
	f := func(seed uint64) bool {
		l, err := NewLocalizer(cfg)
		if err != nil {
			return false
		}
		stream := rng.New(seed, 2)
		for i := 0; i < 30; i++ {
			sen := sensor.Sensor{
				ID:         i % 5,
				Pos:        geometry.V(stream.Uniform(0, 100), stream.Uniform(0, 100)),
				Efficiency: 1e-4,
				Background: 5,
			}
			l.Ingest(sen, stream.IntN(500))
		}
		ests := l.Estimates()
		if len(ests) > 32 {
			return false
		}
		for _, e := range ests {
			if math.IsNaN(e.Pos.X) || math.IsNaN(e.Pos.Y) || math.IsNaN(e.Strength) {
				return false
			}
			if e.Mass < 0 || e.Mass > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
