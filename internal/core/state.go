package core

import (
	"fmt"
	"math"
	"sort"

	"radloc/internal/geometry"
)

// State is a serializable snapshot of a Localizer, sufficient to
// resume filtering with bit-identical behavior: the particle
// population, the RNG position, the iteration counters and the
// sensor-position registry. The configuration is NOT part of the
// state — the importing localizer must be built with the same Config,
// which ImportState cross-checks where it can.
type State struct {
	Iter        int       `json:"iter"`        // completed filter iterations
	Xs          []float64 `json:"xs"`          // particle x coordinates
	Ys          []float64 `json:"ys"`          // particle y coordinates
	Ss          []float64 `json:"ss"`          // particle strengths, µCi
	Ws          []float64 `json:"ws"`          // particle importance weights
	RNG         []byte    `json:"rng"`         // serialized RNG position
	LastSubset  int       `json:"lastSubset"`  // in-range subset size of the last iteration
	SubsetTotal int64     `json:"subsetTotal"` // cumulative in-range subset size across iterations
	EmptyIters  int       `json:"emptyIters"`  // iterations whose fusion-range subset was empty
	// SensorPos lists the sensors heard from, sorted by ID, for the
	// MaxSensorGap observability filter.
	SensorPos []SensorPos `json:"sensorPos,omitempty"`
}

// SensorPos is one heard-from sensor's position.
type SensorPos struct {
	ID int     `json:"id"` // sensor ID
	X  float64 `json:"x"`  // sensor x coordinate
	Y  float64 `json:"y"`  // sensor y coordinate
}

// ExportState captures the localizer's resumable state.
func (l *Localizer) ExportState() (State, error) {
	rngState, err := l.stream.MarshalBinary()
	if err != nil {
		return State{}, fmt.Errorf("core: marshal rng: %w", err)
	}
	st := State{
		Iter:        l.iter,
		Xs:          append([]float64(nil), l.xs...),
		Ys:          append([]float64(nil), l.ys...),
		Ss:          append([]float64(nil), l.ss...),
		Ws:          append([]float64(nil), l.ws...),
		RNG:         rngState,
		LastSubset:  l.lastSubset,
		SubsetTotal: l.subsetTotal,
		EmptyIters:  l.emptyIters,
	}
	for id, pos := range l.sensorPos {
		st.SensorPos = append(st.SensorPos, SensorPos{ID: id, X: pos.X, Y: pos.Y})
	}
	sort.Slice(st.SensorPos, func(a, b int) bool { return st.SensorPos[a].ID < st.SensorPos[b].ID })
	return st, nil
}

// ImportState restores a snapshot captured by ExportState. The
// localizer must have been constructed with the same Config the
// exporter used; a mismatched particle count is rejected.
func (l *Localizer) ImportState(st State) error {
	n := l.cfg.NumParticles
	if len(st.Xs) != n || len(st.Ys) != n || len(st.Ss) != n || len(st.Ws) != n {
		return fmt.Errorf("core: state has %d/%d/%d/%d particles, config wants %d",
			len(st.Xs), len(st.Ys), len(st.Ss), len(st.Ws), n)
	}
	for i := 0; i < n; i++ {
		for _, v := range [4]float64{st.Xs[i], st.Ys[i], st.Ss[i], st.Ws[i]} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: non-finite particle state at index %d", i)
			}
		}
	}
	if err := l.stream.UnmarshalBinary(st.RNG); err != nil {
		return fmt.Errorf("core: restore rng: %w", err)
	}
	copy(l.xs, st.Xs)
	copy(l.ys, st.Ys)
	copy(l.ss, st.Ss)
	copy(l.ws, st.Ws)
	for i, w := range l.ws {
		if w > 0 {
			l.lws[i] = math.Log(w)
		} else {
			l.lws[i] = math.Inf(-1)
		}
	}
	l.iter = st.Iter
	l.lastSubset = st.LastSubset
	l.subsetTotal = st.SubsetTotal
	l.emptyIters = st.EmptyIters
	if len(st.SensorPos) > 0 && l.sensorPos == nil {
		l.sensorPos = make(map[int]geometry.Vec, len(st.SensorPos))
	}
	for id := range l.sensorPos {
		delete(l.sensorPos, id)
	}
	for _, sp := range st.SensorPos {
		l.sensorPos[sp.ID] = geometry.V(sp.X, sp.Y)
	}
	l.gridDirty = true
	return nil
}
