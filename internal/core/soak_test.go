package core

import (
	"math"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

// TestNewSourceDetectedAfterConvergence exercises Section V-E's
// provision: after the filter has converged on one source (and emptied
// the rest of the area of particles), a NEW source appearing elsewhere
// must still be detected thanks to the 5% random injection.
func TestNewSourceDetectedAfterConvergence(t *testing.T) {
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sensors := sensor.Grid(bounds100(), 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(33, "soak/new-source")

	first := radiation.Source{Pos: geometry.V(25, 70), Strength: 60}
	second := radiation.Source{Pos: geometry.V(75, 20), Strength: 60}

	// Phase 1: long convergence on the first source alone.
	for step := 0; step < 15; step++ {
		for _, sen := range sensors {
			m := sen.Measure(stream, []radiation.Source{first}, nil, step)
			l.Ingest(sen, m.CPM)
		}
	}
	if _, d := nearestEstimate(l.Estimates(), first.Pos); d > 6 {
		t.Fatalf("phase 1 did not converge: %v", d)
	}
	// The area around the future second source should be depleted now.
	depleted := 0
	for _, p := range l.Particles() {
		if p.Pos.Dist(second.Pos) < 15 {
			depleted++
		}
	}
	if depleted > 400 {
		t.Logf("note: %d particles still near the future source", depleted)
	}

	// Phase 2: the second source appears.
	found := -1
	for step := 15; step < 40; step++ {
		truth := []radiation.Source{first, second}
		for _, sen := range sensors {
			m := sen.Measure(stream, truth, nil, step)
			l.Ingest(sen, m.CPM)
		}
		if _, d := nearestEstimate(l.Estimates(), second.Pos); d <= 6 {
			found = step
			break
		}
	}
	if found < 0 {
		t.Fatal("new source never detected after convergence")
	}
	if found > 25 {
		t.Errorf("new source took until step %d (appeared at 15), want quick detection", found)
	}
	// The first source must not have been lost in the process.
	if _, d := nearestEstimate(l.Estimates(), first.Pos); d > 6 {
		t.Errorf("first source lost while acquiring the second: %v", d)
	}
}

// TestSoakLongRunStability runs 120 steps and checks the invariants
// that keep a long-lived deployment healthy: conserved mass, bounded
// error, diversity (ESS) never collapsing.
func TestSoakLongRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	l, err := NewLocalizer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sensors := sensor.Grid(bounds100(), 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(34, "soak/long")
	truth := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	for step := 0; step < 120; step++ {
		for _, sen := range sensors {
			m := sen.Measure(stream, truth, nil, step)
			l.Ingest(sen, m.CPM)
		}
		if step%10 != 9 {
			continue
		}
		var mass float64
		for _, p := range l.Particles() {
			mass += p.Weight
		}
		if math.Abs(mass-1) > 1e-6 {
			t.Fatalf("step %d: mass drifted to %v", step, mass)
		}
		s := l.Stats()
		if s.EffectiveSampleSize < 100 {
			t.Fatalf("step %d: ESS collapsed to %v", step, s.EffectiveSampleSize)
		}
		if step >= 19 {
			ests := l.Estimates()
			for _, src := range truth {
				if _, d := nearestEstimate(ests, src.Pos); d > 10 {
					t.Fatalf("step %d: source %v error %v", step, src.Pos, d)
				}
			}
		}
	}
}
