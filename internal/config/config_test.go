package config

import (
	"errors"
	"strings"
	"testing"

	"radloc/internal/scenario"
)

func TestRoundTripScenarioA(t *testing.T) {
	orig := scenario.A(10, true)
	data, err := SaveScenario(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Errorf("name: %q vs %q", back.Name, orig.Name)
	}
	if len(back.Sensors) != len(orig.Sensors) {
		t.Fatalf("sensors: %d vs %d", len(back.Sensors), len(orig.Sensors))
	}
	for i := range back.Sensors {
		if !back.Sensors[i].Pos.Eq(orig.Sensors[i].Pos) ||
			back.Sensors[i].Efficiency != orig.Sensors[i].Efficiency ||
			back.Sensors[i].Background != orig.Sensors[i].Background {
			t.Fatalf("sensor %d differs: %+v vs %+v", i, back.Sensors[i], orig.Sensors[i])
		}
	}
	if len(back.Sources) != 2 || back.Sources[0].Strength != 10 {
		t.Fatalf("sources: %+v", back.Sources)
	}
	if len(back.Obstacles) != 1 {
		t.Fatalf("obstacles: %d", len(back.Obstacles))
	}
	if back.Obstacles[0].Mu != orig.Obstacles[0].Mu {
		t.Errorf("obstacle µ: %v vs %v", back.Obstacles[0].Mu, orig.Obstacles[0].Mu)
	}
	if got, want := back.Obstacles[0].Shape.Area(), orig.Obstacles[0].Shape.Area(); got != want {
		t.Errorf("obstacle area: %v vs %v", got, want)
	}
	if back.Params != orig.Params {
		t.Errorf("params: %+v vs %+v", back.Params, orig.Params)
	}
}

func TestRoundTripScenarioC(t *testing.T) {
	orig := scenario.C(true, 7)
	data, err := SaveScenario(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.OutOfOrder || back.MeanLatency != orig.MeanLatency {
		t.Errorf("delivery config lost: %v %v", back.OutOfOrder, back.MeanLatency)
	}
	if len(back.Sensors) != 195 {
		t.Errorf("sensors = %d", len(back.Sensors))
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	data, err := SaveScenario(scenario.A(10, false))
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if _, err := LoadScenario([]byte(mangled)); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadScenario([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadScenario([]byte(`{"version":1}`)); err == nil {
		t.Error("empty scenario accepted (no sensors)")
	}
}

func TestMaterialNameResolution(t *testing.T) {
	f := FromScenario(scenario.A(10, false))
	f.Obstacles = []ObstacleJSON{{
		Material: "concrete",
		Ring:     [][]float64{{10, 10}, {20, 10}, {20, 20}, {10, 20}},
	}}
	sc, err := f.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Obstacles[0].Mu <= 0.1 || sc.Obstacles[0].Mu >= 0.2 {
		t.Errorf("concrete µ = %v", sc.Obstacles[0].Mu)
	}

	f.Obstacles[0].Material = "unobtainium"
	if _, err := f.ToScenario(); err == nil {
		t.Error("unknown material accepted")
	}

	f.Obstacles[0].Material = "lead"
	f.Obstacles[0].Mu = 0.123 // conflicts with lead's table value
	if _, err := f.ToScenario(); err == nil {
		t.Error("conflicting material and µ accepted")
	}
}

func TestObstacleRingValidation(t *testing.T) {
	f := FromScenario(scenario.A(10, false))
	f.Obstacles = []ObstacleJSON{{Mu: 0.1, Ring: [][]float64{{1, 2, 3}}}}
	if _, err := f.ToScenario(); err == nil {
		t.Error("3-coordinate ring point accepted")
	}
	f.Obstacles = []ObstacleJSON{{Mu: 0.1, Ring: [][]float64{{0, 0}, {1, 1}}}}
	if _, err := f.ToScenario(); err == nil {
		t.Error("degenerate ring accepted")
	}
	f.Obstacles = []ObstacleJSON{{Mu: -1, Ring: [][]float64{{0, 0}, {1, 0}, {0, 1}}}}
	if _, err := f.ToScenario(); err == nil {
		t.Error("negative µ accepted")
	}
}

func TestJSONIsHumanOrdered(t *testing.T) {
	data, err := SaveScenario(scenario.A(10, false))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, key := range []string{`"version"`, `"bounds"`, `"sensors"`, `"params"`, `"fusionRange"`} {
		if !strings.Contains(s, key) {
			t.Errorf("serialized config missing %s", key)
		}
	}
}
