// Package config serializes scenarios to and from JSON so deployments
// can be described in files rather than code: sensor positions surveyed
// in the field, suspected source priors, known obstacle footprints, and
// the algorithm parameters. The format is versioned and validated on
// load.
package config

import (
	"encoding/json"
	"errors"
	"fmt"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/scenario"
	"radloc/internal/sensor"
)

// Version is the current config schema version.
const Version = 1

// ErrVersion is returned for configs with an unsupported version.
var ErrVersion = errors.New("config: unsupported version")

// File is the on-disk scenario description.
type File struct {
	Version   int            `json:"version"`
	Name      string         `json:"name"`
	Bounds    RectJSON       `json:"bounds"`
	Sensors   []SensorJSON   `json:"sensors"`
	Sources   []SourceJSON   `json:"sources,omitempty"`
	Obstacles []ObstacleJSON `json:"obstacles,omitempty"`
	Params    ParamsJSON     `json:"params"`
	// OutOfOrder enables random-latency delivery; MeanLatencySteps is
	// the mean extra delay in time-step units.
	OutOfOrder       bool    `json:"outOfOrder,omitempty"`
	MeanLatencySteps float64 `json:"meanLatencySteps,omitempty"`
}

// RectJSON is an axis-aligned rectangle.
type RectJSON struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

// SensorJSON is one sensor.
type SensorJSON struct {
	ID         int     `json:"id"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	Efficiency float64 `json:"efficiency"`
	Background float64 `json:"backgroundCPM"`
}

// SourceJSON is one true source (for simulation configs).
type SourceJSON struct {
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
}

// ObstacleJSON is one obstacle: a polygon ring plus either a material
// name or an explicit attenuation coefficient.
type ObstacleJSON struct {
	Name     string      `json:"name,omitempty"`
	Material string      `json:"material,omitempty"`
	Mu       float64     `json:"mu,omitempty"`
	Ring     [][]float64 `json:"ring"`
}

// ParamsJSON mirrors scenario.Params.
type ParamsJSON struct {
	NumParticles    int     `json:"numParticles"`
	FusionRange     float64 `json:"fusionRange"`
	ResampleNoise   float64 `json:"resampleNoise"`
	InjectionFrac   float64 `json:"injectionFrac"`
	MaxStrengthUCi  float64 `json:"maxStrengthUCi"`
	TimeSteps       int     `json:"timeSteps"`
	MatchRadius     float64 `json:"matchRadius"`
	BandwidthXY     float64 `json:"bandwidthXY"`
	BandwidthStr    float64 `json:"bandwidthStr"`
	ModeMassMin     float64 `json:"modeMassMin"`
	MinSourceStrUCi float64 `json:"minSourceStrengthUCi"`
	MaxSensorGap    float64 `json:"maxSensorGap,omitempty"`
	MeanShiftStarts int     `json:"meanShiftStarts"`
}

// FromScenario converts a scenario into its file form.
func FromScenario(sc scenario.Scenario) File {
	f := File{
		Version: Version,
		Name:    sc.Name,
		Bounds: RectJSON{
			MinX: sc.Bounds.Min.X, MinY: sc.Bounds.Min.Y,
			MaxX: sc.Bounds.Max.X, MaxY: sc.Bounds.Max.Y,
		},
		Params: ParamsJSON{
			NumParticles:    sc.Params.NumParticles,
			FusionRange:     sc.Params.FusionRange,
			ResampleNoise:   sc.Params.ResampleNoise,
			InjectionFrac:   sc.Params.InjectionFrac,
			MaxStrengthUCi:  sc.Params.MaxStrength,
			TimeSteps:       sc.Params.TimeSteps,
			MatchRadius:     sc.Params.MatchRadius,
			BandwidthXY:     sc.Params.BandwidthXY,
			BandwidthStr:    sc.Params.BandwidthStr,
			ModeMassMin:     sc.Params.ModeMassMin,
			MinSourceStrUCi: sc.Params.MinSourceStr,
			MaxSensorGap:    sc.Params.MaxSensorGap,
			MeanShiftStarts: sc.Params.MeanShiftStarts,
		},
		OutOfOrder:       sc.OutOfOrder,
		MeanLatencySteps: sc.MeanLatency,
	}
	for _, s := range sc.Sensors {
		f.Sensors = append(f.Sensors, SensorJSON{
			ID: s.ID, X: s.Pos.X, Y: s.Pos.Y,
			Efficiency: s.Efficiency, Background: s.Background,
		})
	}
	for _, s := range sc.Sources {
		f.Sources = append(f.Sources, SourceJSON{X: s.Pos.X, Y: s.Pos.Y, StrengthUCi: s.Strength})
	}
	for _, o := range sc.Obstacles {
		oj := ObstacleJSON{Name: o.Name, Mu: o.Mu}
		for _, v := range o.Shape.Vertices() {
			oj.Ring = append(oj.Ring, []float64{v.X, v.Y})
		}
		f.Obstacles = append(f.Obstacles, oj)
	}
	return f
}

// ToScenario converts a file into a validated scenario.
func (f File) ToScenario() (scenario.Scenario, error) {
	if f.Version != Version {
		return scenario.Scenario{}, fmt.Errorf("%w: %d (want %d)", ErrVersion, f.Version, Version)
	}
	sc := scenario.Scenario{
		Name: f.Name,
		Bounds: geometry.NewRect(
			geometry.V(f.Bounds.MinX, f.Bounds.MinY),
			geometry.V(f.Bounds.MaxX, f.Bounds.MaxY),
		),
		Params: scenario.Params{
			NumParticles:    f.Params.NumParticles,
			FusionRange:     f.Params.FusionRange,
			ResampleNoise:   f.Params.ResampleNoise,
			InjectionFrac:   f.Params.InjectionFrac,
			MaxStrength:     f.Params.MaxStrengthUCi,
			TimeSteps:       f.Params.TimeSteps,
			MatchRadius:     f.Params.MatchRadius,
			BandwidthXY:     f.Params.BandwidthXY,
			BandwidthStr:    f.Params.BandwidthStr,
			ModeMassMin:     f.Params.ModeMassMin,
			MinSourceStr:    f.Params.MinSourceStrUCi,
			MaxSensorGap:    f.Params.MaxSensorGap,
			MeanShiftStarts: f.Params.MeanShiftStarts,
		},
		OutOfOrder:  f.OutOfOrder,
		MeanLatency: f.MeanLatencySteps,
	}
	for _, s := range f.Sensors {
		sc.Sensors = append(sc.Sensors, sensor.Sensor{
			ID:         s.ID,
			Pos:        geometry.V(s.X, s.Y),
			Efficiency: s.Efficiency,
			Background: s.Background,
		})
	}
	for _, s := range f.Sources {
		sc.Sources = append(sc.Sources, radiation.Source{
			Pos:      geometry.V(s.X, s.Y),
			Strength: s.StrengthUCi,
		})
	}
	for i, o := range f.Obstacles {
		ob, err := o.toObstacle()
		if err != nil {
			return scenario.Scenario{}, fmt.Errorf("config: obstacle %d: %w", i, err)
		}
		sc.Obstacles = append(sc.Obstacles, ob)
	}
	if err := sc.Validate(); err != nil {
		return scenario.Scenario{}, err
	}
	return sc, nil
}

func (o ObstacleJSON) toObstacle() (radiation.Obstacle, error) {
	mu := o.Mu
	if o.Material != "" {
		m, err := radiation.Material(o.Material).Mu()
		if err != nil {
			return radiation.Obstacle{}, err
		}
		if mu != 0 && mu != m {
			return radiation.Obstacle{}, fmt.Errorf("both material %q (µ=%v) and explicit µ=%v given", o.Material, m, mu)
		}
		mu = m
	}
	if mu < 0 {
		return radiation.Obstacle{}, fmt.Errorf("negative µ %v", mu)
	}
	ring := make([]geometry.Vec, 0, len(o.Ring))
	for _, pt := range o.Ring {
		if len(pt) != 2 {
			return radiation.Obstacle{}, fmt.Errorf("ring point has %d coordinates", len(pt))
		}
		ring = append(ring, geometry.V(pt[0], pt[1]))
	}
	poly, err := geometry.NewPolygon(ring)
	if err != nil {
		return radiation.Obstacle{}, err
	}
	return radiation.Obstacle{Name: o.Name, Mu: mu, Shape: poly}, nil
}

// Marshal renders the file as indented JSON.
func Marshal(f File) ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// Unmarshal parses JSON into a File (without scenario validation; call
// ToScenario for that).
func Unmarshal(data []byte) (File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("config: %w", err)
	}
	return f, nil
}

// LoadScenario parses and validates a JSON scenario in one step.
func LoadScenario(data []byte) (scenario.Scenario, error) {
	f, err := Unmarshal(data)
	if err != nil {
		return scenario.Scenario{}, err
	}
	return f.ToScenario()
}

// SaveScenario renders a scenario as JSON.
func SaveScenario(sc scenario.Scenario) ([]byte, error) {
	return Marshal(FromScenario(sc))
}
