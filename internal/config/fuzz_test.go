package config

import (
	"testing"

	"radloc/internal/scenario"
)

// FuzzLoadScenario feeds arbitrary bytes to the JSON loader: it must
// never panic, and whenever it accepts an input, the resulting scenario
// must re-serialize and re-load to an equally valid scenario.
func FuzzLoadScenario(f *testing.F) {
	if seed, err := SaveScenario(scenario.A(10, true)); err == nil {
		f.Add(seed)
	}
	if seed, err := SaveScenario(scenario.C(true, 1)); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"sensors":[{"id":0,"x":1e308,"y":-1e308,"efficiency":1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := LoadScenario(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted scenarios must survive a round trip.
		out, err := SaveScenario(sc)
		if err != nil {
			t.Fatalf("accepted scenario failed to save: %v", err)
		}
		if _, err := LoadScenario(out); err != nil {
			t.Fatalf("round-tripped scenario failed to load: %v", err)
		}
	})
}
