package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// hopRT answers 307 with a Location for URLs in loc (keyed by the
// full request URL) and accepts everything else.
type hopRT struct {
	mu   sync.Mutex
	urls []string
	loc  map[string]string
}

func (h *hopRT) RoundTrip(req *http.Request) (*http.Response, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	u := req.URL.String()
	h.urls = append(h.urls, u)
	if loc, ok := h.loc[u]; ok {
		hdr := http.Header{}
		hdr.Set("Location", loc)
		return &http.Response{
			StatusCode: http.StatusTemporaryRedirect,
			Header:     hdr,
			Body:       io.NopCloser(strings.NewReader("")),
		}, nil
	}
	var batch []Reading
	body, _ := io.ReadAll(req.Body)
	_ = json.Unmarshal(body, &batch)
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader(fmt.Sprintf(`{"accepted":%d}`, len(batch)))),
	}, nil
}

func (h *hopRT) seen() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.urls...)
}

func TestClientFollowsRedirectSticky(t *testing.T) {
	rt := &hopRT{loc: map[string]string{
		"http://old.test/measurements": "http://new.test/measurements",
	}}
	c, clk := newTestClient(t, rt, func(o *Options) { o.URL = "http://old.test" })
	if err := c.Send(context.Background(), batchOf(3)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Redirects != 1 || st.Delivered != 3 || st.Attempts != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if len(clk.Slept()) != 0 {
		t.Fatalf("redirect slept instead of retrying immediately: %v", clk.Slept())
	}
	if got := c.Endpoint(); got != "http://new.test/measurements" {
		t.Fatalf("endpoint = %q", got)
	}

	// Sticky: the next batch goes straight to the new owner.
	if err := c.Send(context.Background(), batchOf(2)); err != nil {
		t.Fatal(err)
	}
	urls := rt.seen()
	if urls[len(urls)-1] != "http://new.test/measurements" {
		t.Fatalf("second batch posted to %q", urls[len(urls)-1])
	}
	if st := c.Stats(); st.Redirects != 1 {
		t.Fatalf("second batch redirected again: %+v", st)
	}
}

func TestClientResolvesRelativeRedirect(t *testing.T) {
	rt := &hopRT{loc: map[string]string{
		"http://old.test/measurements": "/zones/z2/measurements",
	}}
	c, _ := newTestClient(t, rt, func(o *Options) { o.URL = "http://old.test" })
	if err := c.Send(context.Background(), batchOf(1)); err != nil {
		t.Fatal(err)
	}
	if got := c.Endpoint(); got != "http://old.test/zones/z2/measurements" {
		t.Fatalf("endpoint = %q", got)
	}
}

func TestClientRedirectLoopRefused(t *testing.T) {
	rt := &hopRT{loc: map[string]string{
		"http://a.test/measurements": "http://b.test/measurements",
		"http://b.test/measurements": "http://a.test/measurements",
	}}
	c, _ := newTestClient(t, rt, func(o *Options) { o.URL = "http://a.test" })
	err := c.Send(context.Background(), batchOf(4))
	if !errors.Is(err, ErrRefused) || !strings.Contains(err.Error(), "redirect loop") {
		t.Fatalf("err = %v, want redirect-loop ErrRefused", err)
	}
	if st := c.Stats(); st.Dropped != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientRedirectWithoutLocationRefused(t *testing.T) {
	rt := &scriptRT{script: []rtStep{{status: http.StatusTemporaryRedirect}}}
	c, _ := newTestClient(t, rt, nil)
	if err := c.Send(context.Background(), batchOf(2)); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}
