package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"radloc/internal/obs"
	"radloc/internal/wal"
)

// Reading is one sensor measurement on the wire — field-compatible
// with the daemon's POST /measurements JSON and the replay recorder's
// NDJSON. Seq is the per-sensor monotone sequence number the fusion
// engine dedups redelivery on; 0 means unsequenced (the server applies
// it blindly, so redelivery of a seq-0 reading double-counts — spooled
// pipelines should always sequence).
type Reading struct {
	SensorID int    `json:"sensorId"`       // deployment index of the reporting sensor
	CPM      int    `json:"cpm"`            // Geiger counts per minute for this interval
	Step     int    `json:"step,omitempty"` // discrete time step of the reading
	Seq      uint64 `json:"seq,omitempty"`  // per-sensor monotone sequence number; 0 = unsequenced
}

// SpoolOptions tunes a Spool.
type SpoolOptions struct {
	// MaxPending bounds the number of undelivered readings held on
	// disk (default 1<<20). When full, new readings are shed (oldest
	// data is closest to delivery, so the newest is dropped) and
	// counted.
	MaxPending int
	// MaxBytes bounds the spool's on-disk size (0 = unbounded). When
	// an append pushes past it, whole OLDEST sealed segments are
	// dropped until the spool fits again — the opposite end from the
	// MaxPending bound, because a byte bound exists to protect the
	// disk: the newest readings are the ones still worth delivering,
	// and the oldest are closest to being obsolete anyway. Undelivered
	// readings lost this way are counted as shed.
	MaxBytes int64
	// Fsync is the WAL durability policy (default FsyncBatch: a crash
	// can lose the last unsynced tail, which the source re-reads or
	// the operator replays; FsyncAlways survives power loss per
	// reading).
	Fsync wal.FsyncPolicy
	// SegmentRecords is the WAL segment rotation size (default 512 —
	// small segments so acknowledged data is pruned promptly).
	SegmentRecords int
	// Metrics, when non-nil, receives the spool's occupancy gauges
	// (radloc_agent_spool_*) and the underlying WAL's counters and
	// fsync timings (radloc_wal_*). nil disables instrumentation.
	Metrics *obs.Registry
}

func (o SpoolOptions) withDefaults() SpoolOptions {
	if o.MaxPending <= 0 {
		o.MaxPending = 1 << 20
	}
	if o.SegmentRecords <= 0 {
		o.SegmentRecords = 512
	}
	return o
}

// Spool is the agent's bounded store-and-forward buffer: an on-disk
// queue of readings built on the WAL's segment primitives, plus a
// persisted acknowledgement cursor. Readings are appended as they are
// produced, read back in batches for delivery, and acknowledged once
// the fusion center has accepted them; acknowledged segments are
// pruned. Reopening the directory resumes exactly where the previous
// process stopped — delivered-but-unacknowledged readings are sent
// again, and the server's sequence gate dedups them. Safe for
// concurrent use.
type Spool struct {
	mu    sync.Mutex
	log   *wal.Log
	dir   string
	opts  SpoolOptions
	acked uint64 // readings ≤ acked-1 (offsets < acked) are delivered
	shed  uint64
}

const cursorFile = "cursor.json"

type cursorJSON struct {
	Acked uint64 `json:"acked"`
}

// OpenSpool opens (creating if needed) the spool directory and
// positions it after the last acknowledged reading.
func OpenSpool(dir string, opts SpoolOptions) (*Spool, error) {
	opts = opts.withDefaults()
	l, _, err := wal.Open(dir, wal.Options{Fsync: opts.Fsync, SegmentRecords: opts.SegmentRecords, Metrics: opts.Metrics})
	if err != nil {
		return nil, fmt.Errorf("transport: open spool %s: %w", dir, err)
	}
	s := &Spool{log: l, dir: dir, opts: opts}
	data, err := os.ReadFile(filepath.Join(dir, cursorFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh spool: nothing acknowledged yet.
	case err != nil:
		l.Close()
		return nil, err
	default:
		var c cursorJSON
		if jerr := json.Unmarshal(data, &c); jerr == nil {
			s.acked = c.Acked
		}
		// A corrupt cursor file degrades to acked=0: everything is
		// redelivered and the server dedups — safe, just chatty.
	}
	if s.acked > l.Offset() {
		// Cursor ahead of a truncated log: nothing pending.
		s.acked = l.Offset()
	}
	RegisterSpoolMetrics(opts.Metrics, s)
	return s, nil
}

// Append queues one reading. It returns false (and counts a shed)
// when the pending bound is hit; the byte bound sheds oldest segments
// after the append instead (see SpoolOptions.MaxBytes), so Append
// still reports true — the offered reading itself was kept.
func (s *Spool) Append(r Reading) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(s.log.Offset()-s.acked) >= s.opts.MaxPending {
		s.shed++
		return false, nil
	}
	_, err := s.log.Append(wal.Record{SensorID: r.SensorID, CPM: r.CPM, Step: r.Step, Seq: r.Seq})
	if err != nil {
		return false, err
	}
	if s.opts.MaxBytes > 0 {
		if err := s.shedToBytesLocked(); err != nil {
			return true, err
		}
	}
	return true, nil
}

// shedToBytesLocked drops oldest sealed segments until the spool fits
// MaxBytes (or only the active tail remains). Undelivered records in
// a dropped segment count as shed; already-acknowledged ones were due
// for pruning anyway. The in-memory cursor advances past the dropped
// range so Pending stays honest — the persisted cursor file is left
// alone (it only ever lags, which is safe: the data is gone either
// way and redelivery of nothing costs nothing). Callers hold s.mu.
func (s *Spool) shedToBytesLocked() error {
	for s.log.SizeBytes() > s.opts.MaxBytes {
		start, end, ok, err := s.log.DropOldest()
		if err != nil {
			return err
		}
		if !ok {
			return nil // only the tail left; the bound is best-effort
		}
		lo := start
		if s.acked > lo {
			lo = s.acked
		}
		if end > lo {
			s.shed += end - lo
		}
		if s.acked < end {
			s.acked = end
		}
	}
	return nil
}

// SizeBytes reports the spool's current on-disk payload size.
func (s *Spool) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.SizeBytes()
}

// Pending returns the number of undelivered readings.
func (s *Spool) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.log.Offset() - s.acked)
}

// Shed returns how many readings the bound discarded.
func (s *Spool) Shed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

// errStopReplay stops the WAL scan once a batch is full.
var errStopReplay = errors.New("stop")

// Next returns up to max undelivered readings in append order, plus
// the cursor value to Ack once they are delivered. An empty batch
// means the spool is drained.
func (s *Spool) Next(max int) ([]Reading, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if max <= 0 {
		max = 1
	}
	var batch []Reading
	next := s.acked
	err := s.log.Replay(s.acked, func(off uint64, rec wal.Record) error {
		batch = append(batch, Reading{SensorID: rec.SensorID, CPM: rec.CPM, Step: rec.Step, Seq: rec.Seq})
		next = off + 1
		if len(batch) >= max {
			return errStopReplay
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		return nil, s.acked, err
	}
	return batch, next, nil
}

// Ack marks every reading below upto as delivered, persists the
// cursor atomically (tmp + rename), and prunes fully-acknowledged
// segments. Crash between delivery and Ack means redelivery — the
// at-least-once half of the contract; the server's dedup supplies the
// other half.
func (s *Spool) Ack(upto uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if upto <= s.acked {
		return nil
	}
	if off := s.log.Offset(); upto > off {
		upto = off
	}
	blob, err := json.Marshal(cursorJSON{Acked: upto})
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, cursorFile+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, cursorFile)); err != nil {
		return err
	}
	s.acked = upto
	return s.log.Prune(upto)
}

// Acked returns the persisted cursor: readings below it are known
// delivered.
func (s *Spool) Acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Close syncs and closes the underlying log.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}
