package transport

import (
	"os"
	"path/filepath"
	"testing"
)

func reading(i int) Reading {
	return Reading{SensorID: i % 7, CPM: 10 + i, Step: i / 7, Seq: uint64(i/7) + 1}
}

func TestSpoolAppendNextAck(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for i := 0; i < 10; i++ {
		if ok, err := sp.Append(reading(i)); err != nil || !ok {
			t.Fatalf("append %d: ok=%v err=%v", i, ok, err)
		}
	}
	if sp.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", sp.Pending())
	}
	batch, upto, err := sp.Next(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 || upto != 4 {
		t.Fatalf("Next(4) = %d readings, cursor %d", len(batch), upto)
	}
	for i, r := range batch {
		if r != reading(i) {
			t.Fatalf("reading %d = %+v, want %+v", i, r, reading(i))
		}
	}
	// Un-acked reads repeat (at-least-once).
	again, _, err := sp.Next(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 4 || again[0] != batch[0] {
		t.Fatal("unacked batch did not repeat")
	}
	if err := sp.Ack(upto); err != nil {
		t.Fatal(err)
	}
	if sp.Pending() != 6 {
		t.Fatalf("pending after ack = %d, want 6", sp.Pending())
	}
	rest, upto, err := sp.Next(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 6 || rest[0] != reading(4) || upto != 10 {
		t.Fatalf("rest = %d readings starting %+v, cursor %d", len(rest), rest[0], upto)
	}
}

// TestSpoolSurvivesReopen: restart resumes at the persisted cursor,
// redelivering the delivered-but-unacked tail.
func TestSpoolSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, SpoolOptions{SegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := sp.Append(reading(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Ack(9); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	sp2, err := OpenSpool(dir, SpoolOptions{SegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if sp2.Acked() != 9 {
		t.Fatalf("reopened cursor = %d, want 9", sp2.Acked())
	}
	if sp2.Pending() != 11 {
		t.Fatalf("reopened pending = %d, want 11", sp2.Pending())
	}
	batch, upto, err := sp2.Next(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 11 || batch[0] != reading(9) || upto != 20 {
		t.Fatalf("reopened Next = %d readings starting %+v", len(batch), batch[0])
	}
	// New appends continue the offset sequence.
	if _, err := sp2.Append(reading(20)); err != nil {
		t.Fatal(err)
	}
	if sp2.Pending() != 12 {
		t.Fatalf("pending after append = %d", sp2.Pending())
	}
}

// TestSpoolBoundSheds: the pending bound drops the newest reading and
// counts it.
func TestSpoolBoundSheds(t *testing.T) {
	sp, err := OpenSpool(t.TempDir(), SpoolOptions{MaxPending: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	accepted := 0
	for i := 0; i < 8; i++ {
		ok, err := sp.Append(reading(i))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	if accepted != 5 || sp.Shed() != 3 {
		t.Fatalf("accepted %d shed %d, want 5/3", accepted, sp.Shed())
	}
	// Acking frees capacity.
	if err := sp.Ack(2); err != nil {
		t.Fatal(err)
	}
	if ok, _ := sp.Append(reading(8)); !ok {
		t.Fatal("append refused after ack freed capacity")
	}
}

// TestSpoolAckPrunesSegments: fully-acknowledged segments disappear
// from disk.
func TestSpoolAckPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, SpoolOptions{SegmentRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for i := 0; i < 10; i++ {
		if _, err := sp.Append(reading(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Ack(8); err != nil {
		t.Fatal(err)
	}
	// Everything below offset 8 is prunable; the remaining data must
	// still read back.
	batch, _, err := sp.Next(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0] != reading(8) {
		t.Fatalf("post-prune Next = %+v", batch)
	}
}

func TestSpoolCorruptCursorDegradesToRedelivery(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sp.Append(reading(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Ack(2); err != nil {
		t.Fatal(err)
	}
	sp.Close()
	// Corrupt the cursor; reopen must fall back to redelivering from 0
	// (not fail, not skip data).
	if err := os.WriteFile(filepath.Join(dir, cursorFile), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	sp2, err := OpenSpool(dir, SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if sp2.Acked() != 0 {
		t.Fatalf("corrupt cursor read as %d", sp2.Acked())
	}
}

func TestSpoolByteBoundShedsOldest(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the byte bound has sealed segments to drop.
	sp, err := OpenSpool(dir, SpoolOptions{SegmentRecords: 8, MaxBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for i := 0; i < 64; i++ {
		if ok, err := sp.Append(reading(i)); err != nil || !ok {
			t.Fatalf("append %d: ok=%v err=%v", i, ok, err)
		}
	}
	if got := sp.SizeBytes(); got > 600+200 {
		// One tail segment may exceed the bound; wholesale growth must not.
		t.Fatalf("spool holds %d bytes, want ~<= 600 plus one segment", got)
	}
	if sp.Shed() == 0 {
		t.Fatal("byte bound never shed")
	}
	// The survivors are the NEWEST readings, contiguous to the end.
	batch, upto, err := sp.Next(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 || upto != 64 {
		t.Fatalf("Next = %d readings, cursor %d", len(batch), upto)
	}
	if want := reading(64 - len(batch)); batch[0] != want {
		t.Fatalf("oldest survivor = %+v, want %+v", batch[0], want)
	}
	if last := batch[len(batch)-1]; last != reading(63) {
		t.Fatalf("newest survivor = %+v, want %+v", last, reading(63))
	}
	if int(sp.Shed())+len(batch) != 64 {
		t.Fatalf("shed %d + pending %d != 64", sp.Shed(), len(batch))
	}
	if sp.Pending() != len(batch) {
		t.Fatalf("Pending = %d, want %d", sp.Pending(), len(batch))
	}
}
