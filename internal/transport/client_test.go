package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/rng"
)

// scriptRT replays a scripted sequence of responses; after the script
// is exhausted every request succeeds. A step is either an HTTP status
// (with optional Retry-After) or a transport error.
type scriptRT struct {
	mu       sync.Mutex
	script   []rtStep
	got      []int // readings per request actually received
	served   int
	lastHdr  http.Header
	lastPath string
}

type rtStep struct {
	status     int
	retryAfter string
	err        error
}

func (s *scriptRT) RoundTrip(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var batch []Reading
	body, _ := io.ReadAll(req.Body)
	_ = json.Unmarshal(body, &batch)
	s.got = append(s.got, len(batch))
	s.lastHdr = req.Header.Clone()
	s.lastPath = req.URL.Path
	step := rtStep{status: http.StatusOK}
	if s.served < len(s.script) {
		step = s.script[s.served]
	}
	s.served++
	if step.err != nil {
		return nil, step.err
	}
	hdr := http.Header{}
	if step.retryAfter != "" {
		hdr.Set("Retry-After", step.retryAfter)
	}
	respBody := "{}"
	if step.status == http.StatusOK {
		respBody = fmt.Sprintf(`{"accepted":%d}`, len(batch))
	}
	return &http.Response{
		StatusCode: step.status,
		Header:     hdr,
		Body:       io.NopCloser(strings.NewReader(respBody)),
	}, nil
}

func newTestClient(t *testing.T, rt http.RoundTripper, mut func(*Options)) (*Client, *clock.Fake) {
	t.Helper()
	clk := clock.NewFake(time.Unix(0, 0))
	opts := Options{
		URL:     "http://fusion.test",
		HTTP:    rt,
		Clock:   clk,
		RNG:     rng.NewNamed(11, "client-test"),
		Backoff: Backoff{Base: 100 * time.Millisecond, Cap: time.Second},
		Breaker: BreakerConfig{FailureThreshold: 3, Cooldown: 2 * time.Second},
	}
	if mut != nil {
		mut(&opts)
	}
	c, err := NewClient(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, clk
}

func batchOf(n int) []Reading {
	b := make([]Reading, n)
	for i := range b {
		b[i] = reading(i)
	}
	return b
}

func TestClientDeliversFirstTry(t *testing.T) {
	rt := &scriptRT{}
	c, clk := newTestClient(t, rt, nil)
	if err := c.Send(context.Background(), batchOf(5)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Delivered != 5 || st.AcceptedByServer != 5 || st.Attempts != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(clk.Slept()) != 0 {
		t.Errorf("clean delivery slept: %v", clk.Slept())
	}
	if ct := rt.lastHdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestClientRetriesNetErrors(t *testing.T) {
	rt := &scriptRT{script: []rtStep{
		{err: errors.New("connection reset")},
		{err: errors.New("connection reset")},
		{status: http.StatusBadGateway},
	}}
	c, clk := newTestClient(t, rt, func(o *Options) {
		// Keep the breaker out of this test: pure backoff behavior.
		o.Breaker = BreakerConfig{FailureThreshold: 10}
	})
	if err := c.Send(context.Background(), batchOf(3)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Attempts != 4 || st.Retries != 3 || st.NetErrors != 2 || st.ServerErrors != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Delivered != 3 {
		t.Errorf("delivered = %d", st.Delivered)
	}
	if got := len(clk.Slept()); got != 3 {
		t.Errorf("backoff sleeps = %d, want 3", got)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	rt := &scriptRT{script: []rtStep{{status: http.StatusTooManyRequests, retryAfter: "7"}}}
	c, clk := newTestClient(t, rt, nil)
	if err := c.Send(context.Background(), batchOf(2)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Backpressure429 != 1 || st.RetryAfterHonored != 1 {
		t.Errorf("stats = %+v", st)
	}
	slept := clk.Slept()
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Errorf("slept %v, want exactly the 7s Retry-After", slept)
	}
}

func TestClientCapsRetryAfter(t *testing.T) {
	rt := &scriptRT{script: []rtStep{{status: http.StatusTooManyRequests, retryAfter: "3600"}}}
	c, clk := newTestClient(t, rt, func(o *Options) { o.MaxRetryAfter = 10 * time.Second })
	if err := c.Send(context.Background(), batchOf(1)); err != nil {
		t.Fatal(err)
	}
	if slept := clk.Slept(); len(slept) != 1 || slept[0] != 10*time.Second {
		t.Errorf("slept %v, want capped 10s", slept)
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	rt := &scriptRT{script: []rtStep{
		{err: errors.New("down")}, {err: errors.New("down")}, {err: errors.New("down")},
		{err: errors.New("down")}, {err: errors.New("down")},
	}}
	c, _ := newTestClient(t, rt, func(o *Options) { o.MaxAttempts = 3 })
	err := c.Send(context.Background(), batchOf(4))
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("err = %v, want ErrGaveUp", err)
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Dropped != 4 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClientPermanent4xxRefuses(t *testing.T) {
	rt := &scriptRT{script: []rtStep{{status: http.StatusBadRequest}}}
	c, _ := newTestClient(t, rt, nil)
	err := c.Send(context.Background(), batchOf(2))
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if st := c.Stats(); st.Dropped != 2 || st.Attempts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestClient413SplitsBatch: an oversized batch is halved recursively
// until the server accepts the pieces.
func TestClient413SplitsBatch(t *testing.T) {
	rt := &scriptRT{script: []rtStep{
		{status: http.StatusRequestEntityTooLarge}, // 8 readings
		{status: http.StatusOK},                    // first 4
		{status: http.StatusRequestEntityTooLarge}, // second 4
		{status: http.StatusOK},                    // 2
		{status: http.StatusOK},                    // 2
	}}
	c, _ := newTestClient(t, rt, nil)
	if err := c.Send(context.Background(), batchOf(8)); err != nil {
		t.Fatal(err)
	}
	if got := rt.got; len(got) != 5 || got[0] != 8 || got[1] != 4 || got[2] != 4 || got[3] != 2 || got[4] != 2 {
		t.Errorf("request sizes = %v", rt.got)
	}
	st := c.Stats()
	if st.Delivered != 8 || st.Oversized413 != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestClientBreakerShortCircuits: persistent failure trips the breaker
// and subsequent work waits out the cooldown instead of hitting the
// network.
func TestClientBreakerShortCircuits(t *testing.T) {
	fails := make([]rtStep, 3)
	for i := range fails {
		fails[i] = rtStep{err: errors.New("down")}
	}
	rt := &scriptRT{script: fails}
	c, clk := newTestClient(t, rt, func(o *Options) {
		o.Breaker = BreakerConfig{FailureThreshold: 3, Cooldown: 2 * time.Second}
	})
	if err := c.Send(context.Background(), batchOf(1)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.BreakerOpens != 1 {
		t.Errorf("breaker opens = %d, want 1", st.BreakerOpens)
	}
	if st.BreakerShortCircuits == 0 {
		t.Error("no short circuits despite an open breaker")
	}
	// The breaker held requests until the cooldown elapsed.
	var total time.Duration
	for _, d := range clk.Slept() {
		total += d
	}
	if total < 2*time.Second {
		t.Errorf("total slept %v, want ≥ cooldown", total)
	}
	if rt.served != 4 {
		t.Errorf("requests actually sent = %d, want 4 (3 failures + 1 probe)", rt.served)
	}
}

// TestClientDeterministicSchedule: two clients with identical seeds
// against identical failure scripts sleep the identical schedule —
// no wall clock, no global rand.
func TestClientDeterministicSchedule(t *testing.T) {
	run := func() []time.Duration {
		rt := &scriptRT{script: []rtStep{
			{err: errors.New("down")},
			{status: http.StatusBadGateway},
			{status: http.StatusTooManyRequests, retryAfter: "3"},
			{err: errors.New("down")},
		}}
		c, clk := newTestClient(t, rt, nil)
		if err := c.Send(context.Background(), batchOf(6)); err != nil {
			t.Fatal(err)
		}
		return clk.Slept()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedules %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sleep %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClientContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt := &scriptRT{}
	c, _ := newTestClient(t, rt, nil)
	if err := c.Send(ctx, batchOf(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestClientDrainSpool: Drain delivers everything pending in batch
// order and acknowledges as it goes.
func TestClientDrainSpool(t *testing.T) {
	sp, err := OpenSpool(t.TempDir(), SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for i := 0; i < 10; i++ {
		if _, err := sp.Append(reading(i)); err != nil {
			t.Fatal(err)
		}
	}
	rt := &scriptRT{script: []rtStep{{err: errors.New("flaky start")}}}
	c, _ := newTestClient(t, rt, func(o *Options) { o.BatchSize = 4 })
	refused, err := c.Drain(context.Background(), sp)
	if err != nil || refused != 0 {
		t.Fatalf("drain: refused=%d err=%v", refused, err)
	}
	if sp.Pending() != 0 || sp.Acked() != 10 {
		t.Fatalf("pending=%d acked=%d after drain", sp.Pending(), sp.Acked())
	}
	if st := c.Stats(); st.Delivered != 10 {
		t.Errorf("delivered = %d", st.Delivered)
	}
}

func TestClientZoneRoute(t *testing.T) {
	rt := &scriptRT{}
	c, _ := newTestClient(t, rt, nil)
	if err := c.Send(context.Background(), batchOf(1)); err != nil {
		t.Fatal(err)
	}
	if rt.lastPath != "/measurements" {
		t.Fatalf("default path = %q, want /measurements", rt.lastPath)
	}

	rt = &scriptRT{}
	c, _ = newTestClient(t, rt, func(o *Options) { o.Zone = "east-7" })
	if err := c.Send(context.Background(), batchOf(1)); err != nil {
		t.Fatal(err)
	}
	if rt.lastPath != "/zones/east-7/measurements" {
		t.Fatalf("zoned path = %q, want /zones/east-7/measurements", rt.lastPath)
	}

	if _, err := NewClient(Options{
		URL: "http://fusion.test", Zone: "Bad Zone",
		Clock: clock.NewFake(time.Unix(0, 0)), RNG: rng.NewNamed(1, "zone-test"),
	}); err == nil {
		t.Fatal("bad zone name accepted")
	}
}
