package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/zone"
)

// Options assembles a Client.
type Options struct {
	// URL is the radlocd base URL (e.g. http://127.0.0.1:8080); the
	// client posts to URL + "/measurements", or the zone-scoped route
	// when Zone is set. Required.
	URL string
	// Zone, when non-empty, addresses a named fusion zone: batches
	// post to URL + "/zones/" + Zone + "/measurements". Empty keeps
	// the legacy route, which the server treats as the default zone.
	Zone string
	// HTTP performs the requests (default http.DefaultTransport).
	// Inject a netchaos.RoundTripper to test the failure paths.
	HTTP http.RoundTripper
	// Clock is the time source. Required (pass clock.Real{} outside
	// tests) — the client itself never reads the wall clock.
	Clock clock.Clock
	// RNG drives the backoff jitter. Required — the client never
	// touches global rand.
	RNG *rng.Stream
	// BatchSize is the max readings per request (default 64).
	BatchSize int
	// AttemptTimeout bounds each individual HTTP attempt (default 5s).
	AttemptTimeout time.Duration
	// MaxAttempts bounds delivery attempts per batch; 0 means retry
	// forever (the right choice when a Spool holds the data).
	MaxAttempts int
	// Backoff tunes the retry delays.
	Backoff Backoff
	// Breaker tunes the circuit breaker.
	Breaker BreakerConfig
	// MaxRetryAfter caps how long a server Retry-After is honored
	// (default 30s) — a misconfigured server must not park the agent
	// for an hour.
	MaxRetryAfter time.Duration
	// Metrics, when non-nil, is the registry the delivery counters
	// live on (radloc_agent_*). The counters ARE the client's
	// accounting — Stats() reads them — so every surface that reports
	// delivery agrees. nil gets a private registry.
	Metrics *obs.Registry
	// AltURLs are alternate cluster-node base URLs consulted when the
	// endpoint stops answering at the transport level: the client asks
	// each one's /cluster/routes who owns its zone now and re-aims
	// itself at the learned primary. A 307 can only come from a node
	// that is alive; rediscovery covers the node that crashed instead.
	AltURLs []string
	// RediscoverAfter is how many consecutive transport-level failures
	// trigger a routes lookup against AltURLs (default 3).
	RediscoverAfter int
}

// Stats counts the client's delivery work. All fields are monotone.
type Stats struct {
	// Delivered counts readings acknowledged by a 2xx response.
	Delivered uint64 `json:"delivered"`
	// AcceptedByServer counts readings the server reported as newly
	// applied inside a 2xx acknowledgement.
	AcceptedByServer uint64 `json:"acceptedByServer"`
	// DuplicateByServer counts readings the server's sequence gate
	// suppressed as already-seen — redelivery doing its job.
	DuplicateByServer uint64 `json:"duplicateByServer"`
	// RejectedByServer counts readings the server refused item-wise
	// inside an otherwise successful response.
	RejectedByServer uint64 `json:"rejectedByServer"`
	// Dropped counts readings given up on: MaxAttempts exhausted or a
	// permanent 4xx refusal.
	Dropped uint64 `json:"dropped"`
	// Attempts counts HTTP requests issued.
	Attempts uint64 `json:"attempts"`
	// Retries counts attempts after the first for a batch.
	Retries uint64 `json:"retries"`
	// Backpressure429 counts 429 responses from the server.
	Backpressure429 uint64 `json:"backpressure429"`
	// RetryAfterHonored counts 429s carrying a Retry-After the client
	// actually slept on.
	RetryAfterHonored uint64 `json:"retryAfterHonored"`
	// ServerErrors counts 5xx responses.
	ServerErrors uint64 `json:"serverErrors"`
	// NetErrors counts transport-level failures (dial/reset/drop).
	NetErrors uint64 `json:"netErrors"`
	// BreakerOpens counts circuit-breaker trips.
	BreakerOpens uint64 `json:"breakerOpens"`
	// BreakerShortCircuits counts attempts refused locally while the
	// breaker was open.
	BreakerShortCircuits uint64 `json:"breakerShortCircuits"`
	// Oversized413 counts 413 responses (the client halves and
	// re-sends).
	Oversized413 uint64 `json:"oversized413"`
	// Redirects counts 307/308 responses followed to a new endpoint —
	// a cluster moved the zone and the client re-aimed itself.
	Redirects uint64 `json:"redirects"`
	// Rediscoveries counts endpoint moves learned from an alternate
	// node's routing table after the configured endpoint went dark.
	Rediscoveries uint64 `json:"rediscoveries"`
}

// maxRedirects bounds how many 307/308 hops one Send follows before
// declaring a routing loop.
const maxRedirects = 8

// ErrGaveUp is returned when MaxAttempts is exhausted for a batch.
var ErrGaveUp = errors.New("transport: delivery attempts exhausted")

// ErrRefused is returned when the server permanently refuses a batch
// (non-retryable 4xx); retrying would refuse identically.
var ErrRefused = errors.New("transport: server refused batch")

// Client delivers batches of readings to a radlocd fusion center with
// retries, backoff, circuit breaking and backpressure honoring. Safe
// for concurrent use, though delivery order across concurrent Send
// calls is then unspecified — the agent delivers sequentially so the
// reorder gate sees an in-order stream.
type Client struct {
	opts    Options
	breaker *Breaker
	met     *clientMetrics

	mu       sync.Mutex // guards rng draws, the endpoint and netFails
	rng      *rng.Stream
	endpoint string // resolved measurements URL; sticky across redirects
	netFails int    // consecutive transport-level failures, for rediscovery
}

// NewClient validates opts and builds a Client.
func NewClient(opts Options) (*Client, error) {
	if opts.URL == "" {
		return nil, errors.New("transport: missing URL")
	}
	if opts.Clock == nil {
		return nil, errors.New("transport: missing Clock (use clock.Real{})")
	}
	if opts.RNG == nil {
		return nil, errors.New("transport: missing RNG stream")
	}
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultTransport
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 5 * time.Second
	}
	if opts.MaxRetryAfter <= 0 {
		opts.MaxRetryAfter = 30 * time.Second
	}
	if opts.RediscoverAfter <= 0 {
		opts.RediscoverAfter = defaultRediscoverAfter
	}
	opts.URL = strings.TrimSuffix(opts.URL, "/")
	if opts.Zone != "" {
		if err := zone.ValidateName(opts.Zone); err != nil {
			return nil, fmt.Errorf("transport: %w", err)
		}
	}
	endpoint := measurementsURL(opts.URL, opts.Zone)
	breaker := NewBreaker(opts.Breaker, opts.Clock)
	return &Client{
		opts:     opts,
		endpoint: endpoint,
		breaker:  breaker,
		met:      newClientMetrics(opts.Metrics, breaker),
		rng:      opts.RNG,
	}, nil
}

// Endpoint returns the URL batches currently post to — the configured
// one until a 307/308 re-aims the client at a new zone owner.
func (c *Client) Endpoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoint
}

// setEndpoint re-aims the client after a redirect, resolving loc
// against the current endpoint (relative Locations work).
func (c *Client) setEndpoint(loc string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	base, err := url.Parse(c.endpoint)
	if err != nil {
		return err
	}
	ref, err := url.Parse(loc)
	if err != nil {
		return err
	}
	c.endpoint = base.ResolveReference(ref).String()
	return nil
}

// Stats assembles the wire-format delivery counters from the registry
// collectors — the same numbers a scrape of Options.Metrics renders.
func (c *Client) Stats() Stats {
	m := c.met
	return Stats{
		Delivered:            m.delivered.Value(),
		AcceptedByServer:     m.acceptedByServer.Value(),
		DuplicateByServer:    m.duplicateByServer.Value(),
		RejectedByServer:     m.rejectedByServer.Value(),
		Dropped:              m.dropped.Value(),
		Attempts:             m.attempts.Value(),
		Retries:              m.retries.Value(),
		Backpressure429:      m.backpressure429.Value(),
		RetryAfterHonored:    m.retryAfterHonored.Value(),
		ServerErrors:         m.serverErrors.Value(),
		NetErrors:            m.netErrors.Value(),
		BreakerOpens:         c.breaker.Opens(),
		BreakerShortCircuits: m.breakerShortCircuits.Value(),
		Oversized413:         m.oversized413.Value(),
		Redirects:            m.redirects.Value(),
		Rediscoveries:        m.rediscoveries.Value(),
	}
}

// BatchSize returns the configured batch size (the agent sizes its
// spool reads with it).
func (c *Client) BatchSize() int { return c.opts.BatchSize }

// ack is the server's 2xx response body.
type ack struct {
	Accepted  int `json:"accepted"`
	Duplicate int `json:"duplicate"`
	Rejected  int `json:"rejected"`
}

// attemptResult classifies one HTTP attempt.
type attemptResult struct {
	ok         bool // 2xx
	throttled  bool // 429 (or 503 with Retry-After): server alive, shedding
	oversized  bool // 413: halve the batch
	permanent  bool // other 4xx: retrying cannot help
	retryAfter time.Duration
	status     int
	ack        ack
	err        error
	redirect   string // 307/308 Location: the zone's new owner
}

// Send delivers one batch, blocking through retries until the server
// acknowledges it, the context is cancelled, MaxAttempts is exhausted
// (ErrGaveUp) or the server permanently refuses it (ErrRefused). A
// nil error means every reading in the batch reached the fusion
// engine's ingest gate at least once.
func (c *Client) Send(ctx context.Context, batch []Reading) error {
	if len(batch) == 0 {
		return nil
	}
	attempts, redirects := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok, wait := c.breaker.Allow()
		if !ok {
			c.met.breakerShortCircuits.Inc()
			c.opts.Clock.Sleep(wait)
			continue
		}
		t0 := c.opts.Clock.Now()
		res := c.attempt(ctx, batch)
		c.met.observeAttempt(c.opts.Clock.Now().Sub(t0))
		attempts++
		c.met.attempts.Inc()
		if attempts > 1 {
			c.met.retries.Inc()
		}
		if res.err == nil {
			c.resetNetFailure() // any HTTP response means the endpoint lives
		}
		if res.redirect != "" {
			// The zone's ownership moved (migration or failover): re-aim
			// the endpoint and retry immediately — sticky, so the whole
			// rest of the stream goes straight to the new owner. Bounded
			// in case two nodes misconfigured into pointing at each other.
			c.breaker.Success()
			redirects++
			if redirects > maxRedirects {
				c.met.dropped.Add(uint64(len(batch)))
				return fmt.Errorf("%w: redirect loop (%d redirects)", ErrRefused, redirects)
			}
			if err := c.setEndpoint(res.redirect); err != nil {
				c.met.dropped.Add(uint64(len(batch)))
				return fmt.Errorf("%w: bad redirect %q: %v", ErrRefused, res.redirect, err)
			}
			c.met.redirects.Inc()
			continue
		}
		switch {
		case res.ok:
			c.breaker.Success()
			c.met.delivered.Add(uint64(len(batch)))
			c.met.acceptedByServer.Add(uint64(res.ack.Accepted))
			c.met.duplicateByServer.Add(uint64(res.ack.Duplicate))
			c.met.rejectedByServer.Add(uint64(res.ack.Rejected))
			return nil
		case res.oversized:
			c.breaker.Success()
			c.met.oversized413.Inc()
			if len(batch) == 1 {
				c.met.dropped.Inc()
				return fmt.Errorf("%w: single reading over the server's body limit", ErrRefused)
			}
			// The server bounds bodies tighter than our batch size:
			// halve and deliver both sides through the same machinery.
			half := len(batch) / 2
			if err := c.Send(ctx, batch[:half]); err != nil {
				return err
			}
			return c.Send(ctx, batch[half:])
		case res.permanent:
			c.breaker.Success() // the server answered; transport is fine
			c.met.dropped.Add(uint64(len(batch)))
			return fmt.Errorf("%w: HTTP %d", ErrRefused, res.status)
		case res.throttled:
			c.breaker.Success() // alive and explicitly shedding
			c.met.backpressure429.Inc()
			delay := c.backoffDelay(attempts - 1)
			if res.retryAfter > 0 {
				c.met.retryAfterHonored.Inc()
				if res.retryAfter > delay {
					delay = res.retryAfter
				}
				if delay > c.opts.MaxRetryAfter {
					delay = c.opts.MaxRetryAfter
				}
			}
			c.opts.Clock.Sleep(delay)
		default:
			c.breaker.Failure()
			if res.err != nil {
				c.met.netErrors.Inc()
				if c.noteNetFailure() && c.rediscover(ctx) {
					// The zone's owner moved while its old address is dark:
					// go straight at the learned primary, no backoff.
					continue
				}
			} else {
				c.met.serverErrors.Inc()
			}
			c.opts.Clock.Sleep(c.backoffDelay(attempts - 1))
		}
		if c.opts.MaxAttempts > 0 && attempts >= c.opts.MaxAttempts {
			c.met.dropped.Add(uint64(len(batch)))
			return fmt.Errorf("%w after %d attempts", ErrGaveUp, attempts)
		}
	}
}

// attempt performs one HTTP POST under the per-attempt deadline.
func (c *Client) attempt(ctx context.Context, batch []Reading) attemptResult {
	body, err := json.Marshal(batch)
	if err != nil {
		return attemptResult{permanent: true, err: err}
	}
	actx, cancel := c.opts.Clock.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.Endpoint(), bytes.NewReader(body))
	if err != nil {
		return attemptResult{permanent: true, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.HTTP.RoundTrip(req)
	if err != nil {
		return attemptResult{err: err}
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	res := attemptResult{status: resp.StatusCode}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		res.ok = true
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&res.ack)
	case resp.StatusCode == http.StatusTooManyRequests:
		res.throttled = true
		res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.opts.Clock.Now())
	case resp.StatusCode == http.StatusRequestEntityTooLarge:
		res.oversized = true
	case resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect:
		if loc := resp.Header.Get("Location"); loc != "" {
			res.redirect = loc
		} else {
			res.permanent = true
		}
	case resp.StatusCode == http.StatusServiceUnavailable ||
		resp.StatusCode == http.StatusInsufficientStorage:
		// 503 and 507 are retryable; honor Retry-After when present but
		// treat them as failures for the breaker (the server is not
		// taking writes). 507 is the server's storage-degraded signal —
		// the batch was refused for the disk's sake, not the data's, so
		// the spooled copy must be held for redelivery.
		res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.opts.Clock.Now())
		if res.retryAfter > 0 {
			res.throttled = true
		}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		res.permanent = true
	}
	return res
}

// parseRetryAfter reads a Retry-After header: delay-seconds or an
// HTTP date (evaluated against the injected clock's now).
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

func (c *Client) backoffDelay(retry int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.Backoff.Delay(retry, c.rng)
}

// Drain delivers everything currently pending in the spool, batch by
// batch, acknowledging after each delivered batch. It stops at an
// empty spool, a cancelled context, or a delivery error; permanently
// refused batches (ErrRefused) are acknowledged anyway — redelivering
// them forever would wedge the queue — and reported via the returned
// count of readings given up on.
func (c *Client) Drain(ctx context.Context, sp *Spool) (refused uint64, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return refused, err
		}
		batch, upto, err := sp.Next(c.opts.BatchSize)
		if err != nil {
			return refused, err
		}
		if len(batch) == 0 {
			return refused, nil
		}
		if err := c.Send(ctx, batch); err != nil {
			if errors.Is(err, ErrRefused) {
				refused += uint64(len(batch))
			} else {
				return refused, err
			}
		}
		if err := sp.Ack(upto); err != nil {
			return refused, err
		}
	}
}
