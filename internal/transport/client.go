package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/rng"
)

// Options assembles a Client.
type Options struct {
	// URL is the radlocd base URL (e.g. http://127.0.0.1:8080); the
	// client posts to URL + "/measurements". Required.
	URL string
	// HTTP performs the requests (default http.DefaultTransport).
	// Inject a netchaos.RoundTripper to test the failure paths.
	HTTP http.RoundTripper
	// Clock is the time source. Required (pass clock.Real{} outside
	// tests) — the client itself never reads the wall clock.
	Clock clock.Clock
	// RNG drives the backoff jitter. Required — the client never
	// touches global rand.
	RNG *rng.Stream
	// BatchSize is the max readings per request (default 64).
	BatchSize int
	// AttemptTimeout bounds each individual HTTP attempt (default 5s).
	AttemptTimeout time.Duration
	// MaxAttempts bounds delivery attempts per batch; 0 means retry
	// forever (the right choice when a Spool holds the data).
	MaxAttempts int
	// Backoff tunes the retry delays.
	Backoff Backoff
	// Breaker tunes the circuit breaker.
	Breaker BreakerConfig
	// MaxRetryAfter caps how long a server Retry-After is honored
	// (default 30s) — a misconfigured server must not park the agent
	// for an hour.
	MaxRetryAfter time.Duration
}

// Stats counts the client's delivery work. All fields are monotone.
type Stats struct {
	// Delivered counts readings acknowledged by a 2xx response.
	Delivered uint64 `json:"delivered"`
	// AcceptedByServer / DuplicateByServer / RejectedByServer break a
	// 2xx acknowledgement down by the server's own accounting (dedup
	// suppressions show up as duplicates — redelivery doing its job).
	AcceptedByServer  uint64 `json:"acceptedByServer"`
	DuplicateByServer uint64 `json:"duplicateByServer"`
	RejectedByServer  uint64 `json:"rejectedByServer"`
	// Dropped counts readings given up on: MaxAttempts exhausted or a
	// permanent 4xx refusal.
	Dropped uint64 `json:"dropped"`
	// Attempts counts HTTP requests issued; Retries those after the
	// first per batch.
	Attempts uint64 `json:"attempts"`
	Retries  uint64 `json:"retries"`
	// Backpressure429 counts 429 responses; RetryAfterHonored those
	// that carried a Retry-After the client slept on.
	Backpressure429   uint64 `json:"backpressure429"`
	RetryAfterHonored uint64 `json:"retryAfterHonored"`
	// ServerErrors counts 5xx responses, NetErrors transport-level
	// failures (dial/reset/drop).
	ServerErrors uint64 `json:"serverErrors"`
	NetErrors    uint64 `json:"netErrors"`
	// BreakerOpens counts breaker trips; BreakerShortCircuits attempts
	// refused locally while the breaker was open.
	BreakerOpens         uint64 `json:"breakerOpens"`
	BreakerShortCircuits uint64 `json:"breakerShortCircuits"`
	// Oversized413 counts 413 responses (the client halves and
	// re-sends).
	Oversized413 uint64 `json:"oversized413"`
}

// ErrGaveUp is returned when MaxAttempts is exhausted for a batch.
var ErrGaveUp = errors.New("transport: delivery attempts exhausted")

// ErrRefused is returned when the server permanently refuses a batch
// (non-retryable 4xx); retrying would refuse identically.
var ErrRefused = errors.New("transport: server refused batch")

// Client delivers batches of readings to a radlocd fusion center with
// retries, backoff, circuit breaking and backpressure honoring. Safe
// for concurrent use, though delivery order across concurrent Send
// calls is then unspecified — the agent delivers sequentially so the
// reorder gate sees an in-order stream.
type Client struct {
	opts    Options
	breaker *Breaker

	mu    sync.Mutex // guards rng draws and stats
	rng   *rng.Stream
	stats Stats
}

// NewClient validates opts and builds a Client.
func NewClient(opts Options) (*Client, error) {
	if opts.URL == "" {
		return nil, errors.New("transport: missing URL")
	}
	if opts.Clock == nil {
		return nil, errors.New("transport: missing Clock (use clock.Real{})")
	}
	if opts.RNG == nil {
		return nil, errors.New("transport: missing RNG stream")
	}
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultTransport
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 5 * time.Second
	}
	if opts.MaxRetryAfter <= 0 {
		opts.MaxRetryAfter = 30 * time.Second
	}
	opts.URL = strings.TrimSuffix(opts.URL, "/")
	return &Client{
		opts:    opts,
		breaker: NewBreaker(opts.Breaker, opts.Clock),
		rng:     opts.RNG,
	}, nil
}

// Stats returns a copy of the delivery counters, including breaker
// trips.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	s.BreakerOpens = c.breaker.Opens()
	return s
}

// BatchSize returns the configured batch size (the agent sizes its
// spool reads with it).
func (c *Client) BatchSize() int { return c.opts.BatchSize }

// ack is the server's 2xx response body.
type ack struct {
	Accepted  int `json:"accepted"`
	Duplicate int `json:"duplicate"`
	Rejected  int `json:"rejected"`
}

// attemptResult classifies one HTTP attempt.
type attemptResult struct {
	ok         bool // 2xx
	throttled  bool // 429 (or 503 with Retry-After): server alive, shedding
	oversized  bool // 413: halve the batch
	permanent  bool // other 4xx: retrying cannot help
	retryAfter time.Duration
	status     int
	ack        ack
	err        error
}

// Send delivers one batch, blocking through retries until the server
// acknowledges it, the context is cancelled, MaxAttempts is exhausted
// (ErrGaveUp) or the server permanently refuses it (ErrRefused). A
// nil error means every reading in the batch reached the fusion
// engine's ingest gate at least once.
func (c *Client) Send(ctx context.Context, batch []Reading) error {
	if len(batch) == 0 {
		return nil
	}
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok, wait := c.breaker.Allow()
		if !ok {
			c.count(func(s *Stats) { s.BreakerShortCircuits++ })
			c.opts.Clock.Sleep(wait)
			continue
		}
		res := c.attempt(ctx, batch)
		attempts++
		c.count(func(s *Stats) {
			s.Attempts++
			if attempts > 1 {
				s.Retries++
			}
		})
		switch {
		case res.ok:
			c.breaker.Success()
			c.count(func(s *Stats) {
				s.Delivered += uint64(len(batch))
				s.AcceptedByServer += uint64(res.ack.Accepted)
				s.DuplicateByServer += uint64(res.ack.Duplicate)
				s.RejectedByServer += uint64(res.ack.Rejected)
			})
			return nil
		case res.oversized:
			c.breaker.Success()
			c.count(func(s *Stats) { s.Oversized413++ })
			if len(batch) == 1 {
				c.count(func(s *Stats) { s.Dropped++ })
				return fmt.Errorf("%w: single reading over the server's body limit", ErrRefused)
			}
			// The server bounds bodies tighter than our batch size:
			// halve and deliver both sides through the same machinery.
			half := len(batch) / 2
			if err := c.Send(ctx, batch[:half]); err != nil {
				return err
			}
			return c.Send(ctx, batch[half:])
		case res.permanent:
			c.breaker.Success() // the server answered; transport is fine
			c.count(func(s *Stats) { s.Dropped += uint64(len(batch)) })
			return fmt.Errorf("%w: HTTP %d", ErrRefused, res.status)
		case res.throttled:
			c.breaker.Success() // alive and explicitly shedding
			c.count(func(s *Stats) { s.Backpressure429++ })
			delay := c.backoffDelay(attempts - 1)
			if res.retryAfter > 0 {
				c.count(func(s *Stats) { s.RetryAfterHonored++ })
				if res.retryAfter > delay {
					delay = res.retryAfter
				}
				if delay > c.opts.MaxRetryAfter {
					delay = c.opts.MaxRetryAfter
				}
			}
			c.opts.Clock.Sleep(delay)
		default:
			c.breaker.Failure()
			c.count(func(s *Stats) {
				if res.err != nil {
					s.NetErrors++
				} else {
					s.ServerErrors++
				}
			})
			c.opts.Clock.Sleep(c.backoffDelay(attempts - 1))
		}
		if c.opts.MaxAttempts > 0 && attempts >= c.opts.MaxAttempts {
			c.count(func(s *Stats) { s.Dropped += uint64(len(batch)) })
			return fmt.Errorf("%w after %d attempts", ErrGaveUp, attempts)
		}
	}
}

// attempt performs one HTTP POST under the per-attempt deadline.
func (c *Client) attempt(ctx context.Context, batch []Reading) attemptResult {
	body, err := json.Marshal(batch)
	if err != nil {
		return attemptResult{permanent: true, err: err}
	}
	actx, cancel := c.opts.Clock.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.opts.URL+"/measurements", bytes.NewReader(body))
	if err != nil {
		return attemptResult{permanent: true, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.HTTP.RoundTrip(req)
	if err != nil {
		return attemptResult{err: err}
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	res := attemptResult{status: resp.StatusCode}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		res.ok = true
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&res.ack)
	case resp.StatusCode == http.StatusTooManyRequests:
		res.throttled = true
		res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.opts.Clock.Now())
	case resp.StatusCode == http.StatusRequestEntityTooLarge:
		res.oversized = true
	case resp.StatusCode == http.StatusServiceUnavailable:
		// 503 is retryable; honor Retry-After when present but treat
		// it as a failure for the breaker (the server is not serving).
		res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.opts.Clock.Now())
		if res.retryAfter > 0 {
			res.throttled = true
		}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		res.permanent = true
	}
	return res
}

// parseRetryAfter reads a Retry-After header: delay-seconds or an
// HTTP date (evaluated against the injected clock's now).
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

func (c *Client) backoffDelay(retry int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.Backoff.Delay(retry, c.rng)
}

func (c *Client) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Drain delivers everything currently pending in the spool, batch by
// batch, acknowledging after each delivered batch. It stops at an
// empty spool, a cancelled context, or a delivery error; permanently
// refused batches (ErrRefused) are acknowledged anyway — redelivering
// them forever would wedge the queue — and reported via the returned
// count of readings given up on.
func (c *Client) Drain(ctx context.Context, sp *Spool) (refused uint64, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return refused, err
		}
		batch, upto, err := sp.Next(c.opts.BatchSize)
		if err != nil {
			return refused, err
		}
		if len(batch) == 0 {
			return refused, nil
		}
		if err := c.Send(ctx, batch); err != nil {
			if errors.Is(err, ErrRefused) {
				refused += uint64(len(batch))
			} else {
				return refused, err
			}
		}
		if err := sp.Ack(upto); err != nil {
			return refused, err
		}
	}
}
