// Package transport is the sensor side of the reliable delivery
// layer: an HTTP client that batches readings, retries with capped
// exponential backoff and full jitter, trips a circuit breaker on
// persistent failure, honors server Retry-After backpressure, and —
// with a Spool — stores readings on disk until the fusion center has
// acknowledged them, so a process restart or a long partition loses
// nothing.
//
// Every reading carries the per-sensor sequence number the fusion
// engine's IngestSeq gate dedups on, so at-least-once redelivery by
// this package composes into exactly-once-in-effect end to end.
//
// Determinism contract: nothing in this package reads the wall clock
// or the global rand — all time flows through an injected clock.Clock
// and all randomness through an injected *rng.Stream, so a test (or an
// incident reconstruction) can replay the exact retry schedule.
package transport

import (
	"time"

	"radloc/internal/rng"
)

// Backoff computes capped exponential retry delays with full jitter
// (the AWS architecture-blog recipe: sleep = uniform(0, min(cap,
// base·2^attempt))). Full jitter desynchronizes a fleet of agents
// that all saw the same failure, so the fusion center is not hit by a
// synchronized retry wave the moment a partition heals.
type Backoff struct {
	// Base is the pre-jitter delay of attempt 0 (default 200ms).
	Base time.Duration
	// Cap bounds the pre-jitter delay (default 10s).
	Cap time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 200 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 10 * time.Second
	}
	return b
}

// Delay returns the sleep before retry number attempt (0-based),
// drawing the jitter from r.
func (b Backoff) Delay(attempt int, r *rng.Stream) time.Duration {
	b = b.withDefaults()
	ceil := b.Cap
	// Avoid shifting past the cap (or past 63 bits) before comparing.
	if attempt < 63 {
		if exp := b.Base << uint(attempt); exp > 0 && exp < ceil {
			ceil = exp
		}
	}
	return time.Duration(r.Float64() * float64(ceil))
}
