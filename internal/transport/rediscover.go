package transport

// Route rediscovery: 307 redirects re-aim the client when the node it
// talks to is alive to send one, but a crashed primary sends nothing —
// the agent would hammer a dead address forever. When the endpoint
// stops answering at the transport level for RediscoverAfter
// consecutive attempts, the client asks each alternate node's open
// /cluster/routes endpoint who owns its zone now and re-aims itself at
// the learned primary. The decode is a minimal local struct, not a
// cluster-package import — the agent side stays dependency-light and
// tolerant of fields it does not know.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
)

// defaultRediscoverAfter is the consecutive transport-failure count
// that triggers a routes lookup when Options.RediscoverAfter is unset.
const defaultRediscoverAfter = 3

// measurementsURL builds the ingest endpoint for a node base URL.
func measurementsURL(base, zone string) string {
	base = strings.TrimSuffix(base, "/")
	if zone != "" {
		return base + "/zones/" + zone + "/measurements"
	}
	return base + "/measurements"
}

// noteNetFailure counts one transport-level failure and reports
// whether the rediscovery threshold was just crossed.
func (c *Client) noteNetFailure() bool {
	if len(c.opts.AltURLs) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.netFails++
	return c.netFails >= c.opts.RediscoverAfter && c.netFails%c.opts.RediscoverAfter == 0
}

// resetNetFailure clears the consecutive-failure counter — any HTTP
// response from the endpoint means it is not dead.
func (c *Client) resetNetFailure() {
	c.mu.Lock()
	c.netFails = 0
	c.mu.Unlock()
}

// rediscover queries the alternate nodes for the zone's current owner
// and re-aims the endpoint at it. Returns true when the endpoint
// actually moved; the caller retries immediately instead of backing
// off against the dead address.
func (c *Client) rediscover(ctx context.Context) bool {
	zoneName := c.opts.Zone
	if zoneName == "" {
		zoneName = "default"
	}
	for _, alt := range c.opts.AltURLs {
		primary, ok := c.fetchPrimary(ctx, alt, zoneName)
		if !ok || primary == "" {
			continue
		}
		next := measurementsURL(primary, c.opts.Zone)
		c.mu.Lock()
		moved := c.endpoint != next
		if moved {
			c.endpoint = next
		}
		c.netFails = 0
		c.mu.Unlock()
		if moved {
			c.met.rediscoveries.Inc()
		}
		// First answering alt wins; its table is as learned as any.
		return moved
	}
	return false
}

// fetchPrimary reads one node's routing table and returns the primary
// it asserts for the zone.
func (c *Client) fetchPrimary(ctx context.Context, alt, zoneName string) (string, bool) {
	actx, cancel := c.opts.Clock.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet,
		strings.TrimSuffix(alt, "/")+"/cluster/routes", nil)
	if err != nil {
		return "", false
	}
	resp, err := c.opts.HTTP.RoundTrip(req)
	if err != nil {
		return "", false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return "", false
	}
	var table struct {
		Zones map[string]struct {
			Primary string `json:"primary"`
		} `json:"zones"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&table) != nil {
		return "", false
	}
	rt, ok := table.Zones[zoneName]
	return rt.Primary, ok
}
