package transport

import (
	"sync"
	"time"

	"radloc/internal/clock"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused locally until the cooldown
	// elapses — a struggling fusion center is not hammered.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request
	// is allowed through to test the waters.
	BreakerHalfOpen
)

// String returns the human-readable state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker is a three-state circuit breaker over an injected clock.
// Closed counts consecutive failures and trips open at the threshold;
// open refuses everything until the cooldown elapses; half-open admits
// a single probe whose outcome either closes the breaker or re-opens
// it for a fresh cooldown. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	clk clock.Clock

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped open
	probing  bool      // a half-open probe is in flight
	opens    uint64    // times the breaker tripped open
}

// NewBreaker builds a Breaker on clk.
func NewBreaker(cfg BreakerConfig, clk clock.Clock) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), clk: clk}
}

// Allow reports whether a request may proceed now. When it may not,
// wait is how long until the next half-open probe would be admitted.
// A true return from the open state means the caller holds THE
// half-open probe slot and must report Success or Failure.
func (b *Breaker) Allow() (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		elapsed := b.clk.Now().Sub(b.openedAt)
		if elapsed < b.cfg.Cooldown {
			return false, b.cfg.Cooldown - elapsed
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	default: // BreakerHalfOpen
		if b.probing {
			return false, b.cfg.Cooldown
		}
		b.probing = true
		return true, 0
	}
}

// Success records a successful request: the breaker closes and the
// failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Failure records a failed request. In the closed state it counts
// toward the threshold; a half-open probe failure re-opens for a
// fresh cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen:
		// A straggler failing after the trip changes nothing.
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.clk.Now()
	b.fails = 0
	b.probing = false
	b.opens++
}

// State returns the current position (open lazily becomes half-open
// only on Allow, so State may report open past the cooldown).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
