package transport

import (
	"testing"
	"time"

	"radloc/internal/rng"
)

func TestBackoffFullJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
	r := rng.NewNamed(1, "backoff-test")
	for attempt := 0; attempt < 20; attempt++ {
		ceil := 100 * time.Millisecond << uint(attempt)
		if ceil <= 0 || ceil > 2*time.Second {
			ceil = 2 * time.Second
		}
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt, r)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

// TestBackoffDeterministic: the same rng stream yields the same
// schedule — the property the chaos tests and incident replays rest
// on.
func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: 5 * time.Second}
	r1 := rng.NewNamed(7, "sched")
	r2 := rng.NewNamed(7, "sched")
	for attempt := 0; attempt < 50; attempt++ {
		if d1, d2 := b.Delay(attempt, r1), b.Delay(attempt, r2); d1 != d2 {
			t.Fatalf("attempt %d: %v vs %v", attempt, d1, d2)
		}
	}
}

func TestBackoffHugeAttemptDoesNotOverflow(t *testing.T) {
	b := Backoff{Base: time.Second, Cap: 10 * time.Second}
	r := rng.NewNamed(3, "overflow")
	for i := 0; i < 100; i++ {
		if d := b.Delay(400, r); d < 0 || d >= 10*time.Second {
			t.Fatalf("attempt 400: delay %v", d)
		}
	}
}
