package transport

import (
	"time"

	"radloc/internal/obs"
)

// clientMetrics is the client's registry wiring — one counter per
// Stats field (breaker opens come from the breaker itself via a
// CounterFunc) plus an attempt-latency histogram. These collectors
// are the client's only accounting; Stats() derives the wire struct
// from them, so the agent's SIGUSR1 dump and a scrape of the same
// registry can never disagree.
type clientMetrics struct {
	delivered, acceptedByServer         *obs.Counter
	duplicateByServer, rejectedByServer *obs.Counter
	dropped, attempts, retries          *obs.Counter
	backpressure429, retryAfterHonored  *obs.Counter
	serverErrors, netErrors             *obs.Counter
	breakerShortCircuits, oversized413  *obs.Counter
	redirects, rediscoveries            *obs.Counter
	attemptSeconds                      *obs.Histogram
}

// newClientMetrics registers the delivery counters on r (nil gets a
// private registry) and wires the breaker's trip count in as a
// CounterFunc so it needs no mirroring.
func newClientMetrics(r *obs.Registry, breaker *Breaker) *clientMetrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	r.CounterFunc("radloc_agent_breaker_opens_total",
		"Circuit-breaker trips (closed to open transitions).",
		func() uint64 { return breaker.Opens() })
	return &clientMetrics{
		delivered: r.Counter("radloc_agent_delivered_total",
			"Readings acknowledged by a 2xx response."),
		acceptedByServer: r.Counter("radloc_agent_accepted_by_server_total",
			"Delivered readings the server accounted as accepted."),
		duplicateByServer: r.Counter("radloc_agent_duplicate_by_server_total",
			"Delivered readings the server suppressed as redelivery."),
		rejectedByServer: r.Counter("radloc_agent_rejected_by_server_total",
			"Delivered readings the server refused for cause."),
		dropped: r.Counter("radloc_agent_dropped_total",
			"Readings given up on: attempts exhausted or a permanent 4xx refusal."),
		attempts: r.Counter("radloc_agent_attempts_total",
			"HTTP delivery requests issued."),
		retries: r.Counter("radloc_agent_retries_total",
			"Delivery requests after the first per batch."),
		backpressure429: r.Counter("radloc_agent_backpressure_429_total",
			"429 responses received (server shedding load)."),
		retryAfterHonored: r.Counter("radloc_agent_retry_after_honored_total",
			"429/503 responses whose Retry-After hint the client slept on."),
		serverErrors: r.Counter("radloc_agent_server_errors_total",
			"5xx responses received."),
		netErrors: r.Counter("radloc_agent_net_errors_total",
			"Transport-level request failures (dial, reset, dropped response)."),
		breakerShortCircuits: r.Counter("radloc_agent_breaker_short_circuits_total",
			"Delivery attempts refused locally while the breaker was open."),
		oversized413: r.Counter("radloc_agent_oversized_413_total",
			"413 responses received (client halves the batch and re-sends)."),
		redirects: r.Counter("radloc_agent_redirects_total",
			"307/308 responses followed to a new endpoint (zone ownership moved)."),
		rediscoveries: r.Counter("radloc_agent_rediscoveries_total",
			"Endpoint moves learned from an alternate node's routing table after the configured endpoint went dark."),
		attemptSeconds: r.Histogram("radloc_agent_attempt_seconds",
			"Wall-clock seconds per HTTP delivery attempt, success or not.", nil),
	}
}

// observeAttempt records one attempt's wall-clock latency.
func (m *clientMetrics) observeAttempt(d time.Duration) {
	m.attemptSeconds.Observe(d.Seconds())
}

// RegisterSpoolMetrics exposes the spool's occupancy and shed count on
// r as gauge/counter functions — the spool keeps its own bookkeeping
// (it predates the registry and must work without one) and the
// functions read it under the spool's lock at scrape time.
func RegisterSpoolMetrics(r *obs.Registry, s *Spool) {
	if r == nil || s == nil {
		return
	}
	r.GaugeFunc("radloc_agent_spool_pending",
		"Undelivered readings held in the on-disk spool.",
		func() float64 { return float64(s.Pending()) })
	r.GaugeFunc("radloc_agent_spool_acked",
		"Spool acknowledgement cursor: readings below it are known delivered.",
		func() float64 { return float64(s.Acked()) })
	r.GaugeFunc("radloc_agent_spool_bytes",
		"On-disk payload bytes held by the spool's WAL segments.",
		func() float64 { return float64(s.SizeBytes()) })
	r.CounterFunc("radloc_agent_spool_shed_total",
		"Readings discarded by a spool bound: newest refused at the pending bound, oldest segments dropped at the byte bound.",
		func() uint64 { return s.Shed() })
}
