package transport

import (
	"testing"
	"time"

	"radloc/internal/clock"
)

// TestBreakerTransitions drives the closed→open→half-open→{closed,
// open} machine through scripted event sequences on a virtual clock.
func TestBreakerTransitions(t *testing.T) {
	const (
		evFail    = "fail"
		evOK      = "ok"
		evAdvance = "advance" // move the clock past the cooldown
	)
	cfg := BreakerConfig{FailureThreshold: 3, Cooldown: 5 * time.Second}
	cases := []struct {
		name      string
		events    []string
		wantState BreakerState
		wantAllow bool
		wantOpens uint64
	}{
		{"fresh breaker allows", nil, BreakerClosed, true, 0},
		{"below threshold stays closed", []string{evFail, evFail}, BreakerClosed, true, 0},
		{"success resets the count", []string{evFail, evFail, evOK, evFail, evFail}, BreakerClosed, true, 0},
		{"threshold trips open", []string{evFail, evFail, evFail}, BreakerOpen, false, 1},
		{"open refuses before cooldown", []string{evFail, evFail, evFail, evFail}, BreakerOpen, false, 1},
		{"cooldown admits the probe", []string{evFail, evFail, evFail, evAdvance}, BreakerOpen, true, 1},
		{"probe success closes", []string{evFail, evFail, evFail, evAdvance, evOK}, BreakerClosed, true, 1},
		{"probe failure re-opens", []string{evFail, evFail, evFail, evAdvance, evFail}, BreakerOpen, false, 2},
		{"re-opened trip waits a fresh cooldown", []string{
			evFail, evFail, evFail, evAdvance, // half-open
			evFail,    // probe fails → open again (second trip)
			evAdvance, // fresh cooldown elapses
			evOK,      // probe succeeds
		}, BreakerClosed, true, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := clock.NewFake(time.Unix(0, 0))
			b := NewBreaker(cfg, clk)
			for _, ev := range tc.events {
				switch ev {
				case evFail:
					// Acquire the probe slot if one is pending so the
					// failure is attributed to the half-open probe.
					b.Allow()
					b.Failure()
				case evOK:
					b.Allow()
					b.Success()
				case evAdvance:
					clk.Advance(cfg.Cooldown)
				}
			}
			ok, _ := b.Allow()
			if ok != tc.wantAllow {
				t.Errorf("Allow() = %v, want %v", ok, tc.wantAllow)
			}
			// State is sampled before Allow may have promoted open →
			// half-open; re-derive from a fresh read for trip cases.
			if !tc.wantAllow && b.State() != tc.wantState {
				t.Errorf("State() = %v, want %v", b.State(), tc.wantState)
			}
			if b.Opens() != tc.wantOpens {
				t.Errorf("Opens() = %d, want %d", b.Opens(), tc.wantOpens)
			}
		})
	}
}

// TestBreakerHalfOpenSingleProbe: while one probe is in flight, other
// callers are refused.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second}, clk)
	b.Failure()
	if ok, wait := b.Allow(); ok || wait != time.Second {
		t.Fatalf("open breaker allowed (ok=%v wait=%v)", ok, wait)
	}
	clk.Advance(time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second concurrent probe allowed")
	}
	b.Success()
	if ok, _ := b.Allow(); !ok || b.State() != BreakerClosed {
		t.Fatalf("probe success did not close the breaker (state %v)", b.State())
	}
}

// TestBreakerOpenWaitShrinks: the reported wait shrinks as virtual
// time passes.
func TestBreakerOpenWaitShrinks(t *testing.T) {
	clk := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Second}, clk)
	b.Failure()
	clk.Advance(4 * time.Second)
	if _, wait := b.Allow(); wait != 6*time.Second {
		t.Errorf("wait = %v, want 6s", wait)
	}
}
