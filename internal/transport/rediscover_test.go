package transport

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// deadPrimaryRT models a crashed primary: requests to deadHost fail at
// the transport level, the alt node serves a routing table naming
// newHost as the zone's owner, and newHost accepts batches.
type deadPrimaryRT struct {
	mu       sync.Mutex
	deadHost string
	altHost  string
	newHost  string
	zone     string
	routeGot int // /cluster/routes requests served
	accepted int // readings accepted by the new primary
}

func (d *deadPrimaryRT) RoundTrip(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req.URL.Host {
	case d.deadHost:
		return nil, fmt.Errorf("dial %s: connection refused", d.deadHost)
	case d.altHost:
		if req.URL.Path != "/cluster/routes" {
			return nil, fmt.Errorf("alt node got unexpected path %s", req.URL.Path)
		}
		d.routeGot++
		body := fmt.Sprintf(`{"zones":{%q:{"primary":"http://%s","epoch":2}}}`, d.zone, d.newHost)
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader(body)),
		}, nil
	case d.newHost:
		var batch []Reading
		raw, _ := io.ReadAll(req.Body)
		_ = json.Unmarshal(raw, &batch)
		d.accepted += len(batch)
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader(fmt.Sprintf(`{"accepted":%d}`, len(batch)))),
		}, nil
	}
	return nil, fmt.Errorf("unknown host %q", req.URL.Host)
}

func TestClientRediscoversPrimaryAfterCrash(t *testing.T) {
	rt := &deadPrimaryRT{deadHost: "a.test", altHost: "b.test", newHost: "c.test", zone: "default"}
	c, clk := newTestClient(t, rt, func(o *Options) {
		o.URL = "http://a.test"
		o.AltURLs = []string{"http://b.test"}
		o.RediscoverAfter = 3
		// Keep the breaker out of the picture: this test pins the
		// rediscovery schedule, not the trip interplay.
		o.Breaker = BreakerConfig{FailureThreshold: 100, Cooldown: 0}
	})

	if err := c.Send(context.Background(), batchOf(4)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Delivered != 4 || st.NetErrors != 3 || st.Rediscoveries != 1 {
		t.Fatalf("stats = %+v, want 4 delivered after 3 net errors and 1 rediscovery", st)
	}
	if got := c.Endpoint(); got != "http://c.test/measurements" {
		t.Fatalf("endpoint = %q, want the learned primary", got)
	}
	// The rediscovery retry is immediate — only the pre-threshold
	// misses backed off.
	if slept := clk.Slept(); len(slept) != 2 {
		t.Fatalf("slept %d times (%v), want 2 (the first two misses)", len(slept), slept)
	}

	// Sticky: the next batch goes straight to the learned primary, no
	// further lookups.
	if err := c.Send(context.Background(), batchOf(2)); err != nil {
		t.Fatal(err)
	}
	rt.mu.Lock()
	routeGot, accepted := rt.routeGot, rt.accepted
	rt.mu.Unlock()
	if routeGot != 1 || accepted != 6 {
		t.Fatalf("routes asked %d times, %d readings accepted; want 1 and 6", routeGot, accepted)
	}
}

// TestClientRediscoverZoneScoped pins the zone-scoped path and the
// "default" key used for the legacy route.
func TestClientRediscoverZoneScoped(t *testing.T) {
	rt := &deadPrimaryRT{deadHost: "a.test", altHost: "b.test", newHost: "c.test", zone: "west"}
	c, _ := newTestClient(t, rt, func(o *Options) {
		o.URL = "http://a.test"
		o.Zone = "west"
		o.AltURLs = []string{"http://b.test"}
		o.RediscoverAfter = 2
	})
	if err := c.Send(context.Background(), batchOf(1)); err != nil {
		t.Fatal(err)
	}
	if got := c.Endpoint(); got != "http://c.test/zones/west/measurements" {
		t.Fatalf("endpoint = %q, want the zone-scoped learned primary", got)
	}
}

// TestClientRediscoverUnknownZoneKeepsTrying pins the failure mode: the
// alt's table does not know the zone, so the endpoint stays put and
// ordinary retries continue (here until MaxAttempts).
func TestClientRediscoverUnknownZoneKeepsTrying(t *testing.T) {
	rt := &deadPrimaryRT{deadHost: "a.test", altHost: "b.test", newHost: "c.test", zone: "other"}
	c, _ := newTestClient(t, rt, func(o *Options) {
		o.URL = "http://a.test"
		o.Zone = "west" // not in the alt's table
		o.AltURLs = []string{"http://b.test"}
		o.RediscoverAfter = 2
		o.MaxAttempts = 5
	})
	if err := c.Send(context.Background(), batchOf(1)); err == nil {
		t.Fatal("delivery succeeded against a dead endpoint and an ignorant alt")
	}
	if got := c.Endpoint(); got != "http://a.test/zones/west/measurements" {
		t.Fatalf("endpoint moved to %q on an ignorant alt", got)
	}
	if st := c.Stats(); st.Rediscoveries != 0 {
		t.Fatalf("stats = %+v, want 0 rediscoveries", st)
	}
}
