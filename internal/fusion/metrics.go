package fusion

import (
	"radloc/internal/obs"
)

// engineMetrics is the engine's registry wiring. These counters ARE
// the engine's accounting — Snapshot, ExportState and /statez all
// derive their DeliveryStats from the same collectors /metrics
// renders, so the two surfaces cannot disagree. An engine built
// without Config.Metrics gets a private registry, keeping tests and
// embedded uses isolated.
type engineMetrics struct {
	ingested  *obs.Counter
	rejected  *obs.Counter
	refreshes *obs.Counter

	refreshSeconds *obs.Histogram
	estimates      *obs.Gauge
	quarantined    *obs.Gauge
	journaled      *obs.Gauge

	// Sequence-gate (transport-facing) delivery counters.
	duplicates    *obs.Counter
	outOfOrder    *obs.Counter
	buffered      *obs.Counter
	late          *obs.Counter
	gapSkips      *obs.Counter
	forcedFlushes *obs.Counter
	unsequenced   *obs.Counter
	pending       *obs.Gauge
	releaseBatch  *obs.Histogram
}

// newEngineMetrics registers the engine families on r (nil r → a
// fresh private registry, so the counters always exist).
func newEngineMetrics(r *obs.Registry) *engineMetrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	return &engineMetrics{
		ingested: r.Counter("radloc_fusion_ingested_total",
			"Measurements folded into the particle filter."),
		rejected: r.Counter("radloc_fusion_rejected_total",
			"Measurements refused for cause (unknown sensor, impossible CPM, quarantine)."),
		refreshes: r.Counter("radloc_fusion_refreshes_total",
			"Estimate recomputations (mean-shift passes) completed."),
		refreshSeconds: r.Histogram("radloc_fusion_refresh_seconds",
			"Wall-clock seconds per estimate refresh (mean-shift + track update).", nil),
		estimates: r.Gauge("radloc_fusion_estimates",
			"Source estimates reported by the most recent refresh."),
		quarantined: r.Gauge("radloc_fusion_quarantined_sensors",
			"Sensors currently quarantined by the health monitor."),
		journaled: r.Gauge("radloc_fusion_journaled_records",
			"The engine's durable WAL offset: records appended to the write-ahead journal."),
		duplicates: r.Counter("radloc_transport_duplicates_total",
			"Readings suppressed by the sequence gate as at-least-once redelivery."),
		outOfOrder: r.Counter("radloc_transport_out_of_order_total",
			"Readings that arrived with a sequence number below the newest seen (observed reordering)."),
		buffered: r.Counter("radloc_transport_buffered_total",
			"Readings held in the reorder buffer pending their round's release."),
		late: r.Counter("radloc_transport_late_total",
			"Readings applied out of canonical order because their round had already been released."),
		gapSkips: r.Counter("radloc_transport_gap_skips_total",
			"Sequence numbers given up on — readings the transport apparently lost for good."),
		forcedFlushes: r.Counter("radloc_transport_forced_flushes_total",
			"Reorder-buffer overflows that forced releases ahead of the watermark."),
		unsequenced: r.Counter("radloc_transport_unsequenced_total",
			"Seq-0 readings that bypassed the dedup/reorder gate."),
		pending: r.Gauge("radloc_transport_reorder_pending",
			"Readings currently held in the reorder buffer."),
		releaseBatch: r.Histogram("radloc_transport_release_batch_size",
			"Readings applied per reorder-gate release.", obs.ExpBuckets(1, 2, 10)),
	}
}

// deliveryStats assembles the wire-format DeliveryStats from the
// registry counters. Pending is filled by the caller (it needs the
// engine lock).
func (m *engineMetrics) deliveryStats() DeliveryStats {
	return DeliveryStats{
		Duplicates:    m.duplicates.Value(),
		OutOfOrder:    m.outOfOrder.Value(),
		Buffered:      m.buffered.Value(),
		Late:          m.late.Value(),
		GapSkips:      m.gapSkips.Value(),
		ForcedFlushes: m.forcedFlushes.Value(),
		Unsequenced:   m.unsequenced.Value(),
	}
}

// restoreDelivery stores checkpointed delivery counters back into the
// registry — checkpoint recovery only.
func (m *engineMetrics) restoreDelivery(d DeliveryStats) {
	m.duplicates.Store(d.Duplicates)
	m.outOfOrder.Store(d.OutOfOrder)
	m.buffered.Store(d.Buffered)
	m.late.Store(d.Late)
	m.gapSkips.Store(d.GapSkips)
	m.forcedFlushes.Store(d.ForcedFlushes)
	m.unsequenced.Store(d.Unsequenced)
}
