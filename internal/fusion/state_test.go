package fusion

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestEngineStateRoundTrip is the checkpoint-correctness core: ingest
// half a stream, export → JSON → import into a fresh engine, continue
// both halves in lockstep — every snapshot field must match bitwise.
func TestEngineStateRoundTrip(t *testing.T) {
	orig, sc := seqEngine(t, 4)
	stream := seqStream(t, sc, 12, 9)
	half := len(stream) / 2

	for _, m := range stream[:half] {
		if _, err := orig.IngestSeq(m); err != nil {
			t.Fatal(err)
		}
	}

	st, err := orig.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 EngineState
	if err := json.Unmarshal(blob, &st2); err != nil {
		t.Fatal(err)
	}
	restored, _ := seqEngine(t, 4)
	if err := restored.ImportState(st2); err != nil {
		t.Fatal(err)
	}

	// The reorder buffer is intentionally not serialized; the transport
	// redelivers. Model that: the restored engine gets the tail plus
	// redelivery of everything the gate had in flight (duplicates of
	// applied records are shed by the cursors).
	redeliverFrom := half - (4+1)*len(sc.Sensors)
	if redeliverFrom < 0 {
		redeliverFrom = 0
	}
	for _, m := range stream[half:] {
		if _, err := orig.IngestSeq(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range stream[redeliverFrom:] {
		if _, err := restored.IngestSeq(m); err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
	}
	if _, err := orig.FlushPending(); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.FlushPending(); err != nil {
		t.Fatal(err)
	}

	os, rs := orig.Snapshot(), restored.Snapshot()
	if os.Ingested != rs.Ingested || os.Rejected != rs.Rejected {
		t.Fatalf("counters diverged: orig %d/%d, restored %d/%d", os.Ingested, os.Rejected, rs.Ingested, rs.Rejected)
	}
	if !reflect.DeepEqual(comparable(os), comparable(rs)) {
		t.Fatalf("state diverged after restore:\norig %+v\nrestored %+v", os, rs)
	}
}

func TestImportStateUnknownSensor(t *testing.T) {
	e, _ := seqEngine(t, 4)
	st, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	st.Health = append(st.Health, HealthState{SensorID: 99_999})
	if err := e.ImportState(st); err == nil {
		t.Fatal("import accepted health for an unregistered sensor")
	}
}
