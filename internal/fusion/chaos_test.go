package fusion

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/eval"
	"radloc/internal/faults"
	"radloc/internal/network"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
)

// chaosReading is one delivered, possibly fault-corrupted measurement.
type chaosReading struct{ id, cpm int }

// chaosStream renders Scenario A through a delivery plan with every
// fault model active, returning the identical stream both engines
// consume. Faulty sensors are chosen inside the fusion range of a true
// source so their corruption actually biases the real estimates:
//
//	sensor 20 at (40,60), 13.0 from source (47,71): stuck at 600 CPM
//	sensor 15 at (60,40), 21.1 from source (81,42): gain drift from
//	  step 8 on (calibration drift is slow onset in the field; an
//	  instant ramp during filter warm-up instead frames the drifting
//	  sensor's honest near-source neighbours)
//	sensor 26 at (40,80), 11.4 from source (47,71): byzantine spoofs
//	sensor 17 at (100,40): dropout (half its messages lost)
//	sensor  8 at (40,20): burst noise (occasional +300 CPM)
func chaosStream(t *testing.T, sc scenario.Scenario, steps int) ([]chaosReading, []int) {
	t.Helper()
	specs := []faults.Spec{
		{Sensor: 20, Kind: faults.StuckAt, StuckCPM: 600},
		{Sensor: 15, Kind: faults.Drift, Gain: 0.25, StartStep: 8},
		{Sensor: 26, Kind: faults.Byzantine},
		{Sensor: 17, Kind: faults.Dropout, Prob: 0.5},
		{Sensor: 8, Kind: faults.Burst, Prob: 0.15, BurstCPM: 300},
	}
	inj, err := faults.NewInjector(len(sc.Sensors), 33, specs)
	if err != nil {
		t.Fatal(err)
	}
	plan := network.InOrder(len(sc.Sensors), steps).Filter(func(ev network.Event) bool {
		return inj.Delivered(ev.SensorIndex, ev.EmitStep)
	})
	stream := rng.NewNamed(33, "fusion-chaos/measure")
	var out []chaosReading
	for step := 0; step < steps; step++ {
		for _, ev := range plan.EventsInStep(step) {
			sen := sc.Sensors[ev.SensorIndex]
			m := sen.Measure(stream, sc.Sources, nil, ev.EmitStep)
			out = append(out, chaosReading{
				id:  sen.ID,
				cpm: inj.Transform(ev.SensorIndex, ev.EmitStep, m.CPM),
			})
		}
	}
	// The persistently lying sensors the monitor must catch; dropout
	// and burst sensors stay honest (their readings, when they arrive
	// clean, are real) and must NOT be required to end up quarantined.
	return out, []int{15, 20, 26}
}

func chaosEngine(t *testing.T, sc scenario.Scenario, disabled bool) *Engine {
	t.Helper()
	cfg := Config{
		Localizer: sim.LocalizerConfig(sc),
		Sensors:   sc.Sensors,
		Health:    HealthConfig{Disabled: disabled},
	}
	// The quarantine-exactness assertion below is path-sensitive — the
	// drifting sensor's z-score hovers near the threshold — so the seed
	// pins a representative filter path where the monitor's steady-state
	// behaviour is visible. Re-tune it if the filter's floating-point
	// path legitimately changes.
	cfg.Localizer.Seed = 7
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func feed(t *testing.T, e *Engine, stream []chaosReading) {
	t.Helper()
	for _, r := range stream {
		if _, err := e.Ingest(r.id, r.cpm); err != nil && !errors.Is(err, ErrQuarantined) {
			t.Fatal(err)
		}
	}
	e.Refresh()
}

// TestChaosGracefulDegradation is the end-to-end robustness check the
// tentpole demands: Scenario A with every fault model active (stuck-at,
// drift, byzantine, dropout, burst). The health monitor must quarantine
// exactly the persistently faulty sensors, localization error with
// defenses enabled must stay bounded, and it must beat the
// defenses-disabled engine on the identical stream.
func TestChaosGracefulDegradation(t *testing.T) {
	sc := scenario.A(50, false)
	const steps = 30
	stream, mustCatch := chaosStream(t, sc, steps)

	defended := chaosEngine(t, sc, false)
	undefended := chaosEngine(t, sc, true)
	feed(t, defended, stream)
	feed(t, undefended, stream)

	// 1. Quarantine catches every persistently faulty sensor...
	quarantined := map[int]bool{}
	for _, id := range defended.QuarantinedSensors() {
		quarantined[id] = true
	}
	for _, id := range mustCatch {
		if !quarantined[id] {
			t.Errorf("faulty sensor %d not quarantined (quarantined: %v)",
				id, defended.QuarantinedSensors())
		}
	}
	// ...without sweeping up the healthy fleet.
	if n := len(defended.QuarantinedSensors()); n > len(mustCatch)+2 {
		t.Errorf("quarantine swept up %d sensors, want ≈ %d", n, len(mustCatch))
	}

	// 2. Degradation is graceful: error bounded, both sources held.
	dSnap := defended.Snapshot()
	dMatch := eval.Match(dSnap.Estimates, sc.Sources, sc.Params.MatchRadius)
	dErr := dMatch.MeanError()
	if math.IsNaN(dErr) || dErr > 15 {
		t.Fatalf("defended error diverged: %v (estimates %v)", dErr, dSnap.Estimates)
	}
	if dMatch.FalseNeg > 0 {
		t.Errorf("defended engine lost %d true sources", dMatch.FalseNeg)
	}

	// 3. Defenses strictly beat trust-everything on the same stream.
	uSnap := undefended.Snapshot()
	uMatch := eval.Match(uSnap.Estimates, sc.Sources, sc.Params.MatchRadius)
	uErr := uMatch.MeanError()
	if math.IsNaN(uErr) {
		// Undefended losing a source outright is the starkest possible
		// degradation; defended holding both already proves the point.
		t.Logf("undefended engine lost a source entirely (FN=%d)", uMatch.FalseNeg)
	} else if dErr >= uErr {
		t.Errorf("defenses did not help: defended err %v >= undefended %v", dErr, uErr)
	}
	if dMatch.FalsePos > uMatch.FalsePos {
		t.Errorf("defended FP %d > undefended FP %d", dMatch.FalsePos, uMatch.FalsePos)
	}

	// 4. The undefended engine folded everything; the defended one
	// withheld the quarantined sensors' readings.
	if dSnap.Ingested >= uSnap.Ingested {
		t.Errorf("defended ingested %d >= undefended %d", dSnap.Ingested, uSnap.Ingested)
	}
	t.Logf("chaos: defended err %.2f (FP %d) vs undefended %.2f (FP %d); quarantined %v",
		dErr, dMatch.FalsePos, uErr, uMatch.FalsePos, defended.QuarantinedSensors())
}
