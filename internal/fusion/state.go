package fusion

import (
	"fmt"
	"math"
	"sort"

	"radloc/internal/core"
	"radloc/internal/diagnose"
	"radloc/internal/track"
)

// EngineState is a serializable snapshot of the whole fusion engine —
// the contents of a recovery checkpoint. Together with the WAL suffix
// of readings journaled after Journaled, it reconstructs the engine
// exactly: counters, particle filter (including its RNG position),
// per-sensor health, tracker, and the sequence gate's dedup cursors.
// Reorder-buffer contents are deliberately NOT part of the state: a
// buffered reading has not been journaled yet, so it is not durable —
// the at-least-once transport redelivers it after recovery.
type EngineState struct {
	Ingested  uint64 `json:"ingested"`  // readings folded into the filter
	Rejected  uint64 `json:"rejected"`  // readings refused
	Refreshes uint64 `json:"refreshes"` // estimate recomputations so far
	SinceEst  int    `json:"sinceEst"`  // readings ingested since the last refresh
	TrackStep int    `json:"trackStep"` // tracker time steps advanced
	// Journaled is the WAL offset this state corresponds to: every
	// journaled record with index < Journaled is folded in, every
	// record ≥ Journaled must be replayed on recovery.
	Journaled uint64          `json:"journaled"`
	Estimates []core.Estimate `json:"estimates,omitempty"` // last published source estimates
	Localizer core.State      `json:"localizer"`           // particle filter state (incl. RNG position)
	Health    []HealthState   `json:"health,omitempty"`    // per-sensor health records, sorted by ID
	Tracker   *track.State    `json:"tracker,omitempty"`   // source tracker state; nil without tracking
	Seqs      []SeqCursor     `json:"seqs,omitempty"`      // sequence gate dedup cursors, sorted by ID
	// GateReleased is the reorder gate's release watermark: rounds ≤
	// it have been applied in canonical order.
	GateReleased uint64        `json:"gateReleased,omitempty"`
	Delivery     DeliveryStats `json:"delivery"` // dedup/reorder gate counters
}

// HealthState is the serializable form of one sensor's full health
// record (the streaks included — SensorHealth omits them).
type HealthState struct {
	SensorID    int      `json:"sensorId"`              // sensor this record describes
	Status      int      `json:"status"`                // HealthStatus as an integer
	BadStreak   int      `json:"badStreak,omitempty"`   // consecutive suspect readings
	GoodStreak  int      `json:"goodStreak,omitempty"`  // consecutive clean readings while quarantined
	LastZ       *float64 `json:"lastZ,omitempty"`       // nil encodes NaN (never scored)
	Seen        uint64   `json:"seen"`                  // readings received (any outcome)
	Dropped     uint64   `json:"dropped,omitempty"`     // readings withheld while quarantined
	Quarantines int      `json:"quarantines,omitempty"` // times the sensor entered quarantine
}

// SeqCursor is one sensor's dedup cursor: the highest sequence number
// consumed from it.
type SeqCursor struct {
	SensorID int    `json:"sensorId"` // sensor the cursor belongs to
	Applied  uint64 `json:"applied"`  // highest sequence number consumed
}

// ExportState captures the engine's resumable state. The reorder
// buffers are excluded (see EngineState); everything else round-trips
// exactly.
func (e *Engine) ExportState() (EngineState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	loc, err := e.loc.ExportState()
	if err != nil {
		return EngineState{}, err
	}
	st := EngineState{
		Ingested:  e.met.ingested.Value(),
		Rejected:  e.met.rejected.Value(),
		Refreshes: e.met.refreshes.Value(),
		SinceEst:  e.sinceEst,
		TrackStep: e.trackStep,
		Journaled: e.journaled,
		Estimates: append([]core.Estimate(nil), e.ests...),
		Localizer: loc,
		Delivery:  e.met.deliveryStats(),
	}
	for _, h := range e.health {
		hs := HealthState{
			SensorID:    h.id,
			Status:      int(h.status),
			BadStreak:   h.badStreak,
			GoodStreak:  h.goodStreak,
			Seen:        h.seen,
			Dropped:     h.dropped,
			Quarantines: h.quarantines,
		}
		if !math.IsNaN(h.lastZ) {
			z := h.lastZ
			hs.LastZ = &z
		}
		st.Health = append(st.Health, hs)
	}
	sort.Slice(st.Health, func(a, b int) bool { return st.Health[a].SensorID < st.Health[b].SensorID })
	for id, applied := range e.gate.cursor {
		if applied > 0 {
			st.Seqs = append(st.Seqs, SeqCursor{SensorID: id, Applied: applied})
		}
	}
	sort.Slice(st.Seqs, func(a, b int) bool { return st.Seqs[a].SensorID < st.Seqs[b].SensorID })
	st.GateReleased = e.gate.released
	if e.tracker != nil {
		ts := e.tracker.ExportState()
		st.Tracker = &ts
	}
	return st, nil
}

// SetJournalOffset aligns the engine's journal-offset counter with an
// external log position — recovery bookkeeping for when the engine's
// replay count and the log's record offsets differ (a pruned prefix or
// a hole left by tail truncation). Checkpoints built after this call
// carry WAL offsets, which is what recovery replays from.
func (e *Engine) SetJournalOffset(off uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journaled = off
	e.met.journaled.Set(float64(off))
}

// ImportState restores a snapshot captured by ExportState into an
// engine built with the same Config (same sensors, localizer
// parameters and tracking mode). Health records for sensors unknown
// to this engine are rejected; sensors added since the export keep
// their fresh zero records.
func (e *Engine) ImportState(st EngineState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, hs := range st.Health {
		if _, ok := e.health[hs.SensorID]; !ok {
			return fmt.Errorf("fusion: state has health for unknown sensor %d", hs.SensorID)
		}
	}
	if err := e.loc.ImportState(st.Localizer); err != nil {
		return err
	}
	e.met.ingested.Store(st.Ingested)
	e.met.rejected.Store(st.Rejected)
	e.met.refreshes.Store(st.Refreshes)
	e.sinceEst = st.SinceEst
	e.trackStep = st.TrackStep
	e.journaled = st.Journaled
	e.met.journaled.Set(float64(e.journaled))
	e.ests = append(e.ests[:0], st.Estimates...)
	e.met.estimates.Set(float64(len(e.ests)))
	e.predSources = diagnose.Sources(e.ests)
	restored := st.Delivery
	restored.Pending = 0
	e.met.restoreDelivery(restored)
	e.met.pending.Set(0)
	for _, hs := range st.Health {
		h := e.health[hs.SensorID]
		h.status = HealthStatus(hs.Status)
		h.badStreak = hs.BadStreak
		h.goodStreak = hs.GoodStreak
		h.lastZ = math.NaN()
		if hs.LastZ != nil {
			h.lastZ = *hs.LastZ
		}
		h.seen = hs.Seen
		h.dropped = hs.Dropped
		h.quarantines = hs.Quarantines
	}
	e.gate = newGate()
	for _, sc := range st.Seqs {
		e.gate.cursor[sc.SensorID] = sc.Applied
	}
	e.gate.released = st.GateReleased
	e.gate.maxSeq = st.GateReleased
	if e.tracker != nil && st.Tracker != nil {
		e.tracker.ImportState(*st.Tracker)
	}
	return nil
}
