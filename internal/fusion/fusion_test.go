package fusion

import (
	"errors"
	"sync"
	"testing"
	"time"

	"radloc/internal/core"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/track"
)

func testEngine(t *testing.T, withTracking bool) (*Engine, scenario.Scenario) {
	t.Helper()
	sc := scenario.A(50, false)
	cfg := Config{
		Localizer: sim.LocalizerConfig(sc),
		Sensors:   sc.Sensors,
	}
	cfg.Localizer.Seed = 5
	cfg.Localizer.Workers = 2
	if withTracking {
		cfg.Tracking = &track.Config{}
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, sc
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("no sensors accepted")
	}
	sc := scenario.A(50, false)
	dup := Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
	dup.Sensors = append(dup.Sensors, dup.Sensors[0])
	if _, err := NewEngine(dup); err == nil {
		t.Error("duplicate sensor IDs accepted")
	}
	bad := Config{Localizer: core.Config{}, Sensors: sc.Sensors}
	if _, err := NewEngine(bad); err == nil {
		t.Error("invalid localizer config accepted")
	}
}

func TestIngestValidation(t *testing.T) {
	e, _ := testEngine(t, false)
	if _, err := e.Ingest(999, 5); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("unknown sensor: %v", err)
	}
	if _, err := e.Ingest(0, -1); !errors.Is(err, ErrBadMeasurement) {
		t.Errorf("negative CPM: %v", err)
	}
	snap := e.Snapshot()
	if snap.Rejected != 2 || snap.Ingested != 0 {
		t.Errorf("counters: %+v", snap)
	}
}

func TestEngineLocalizesEndToEnd(t *testing.T) {
	e, sc := testEngine(t, false)
	stream := rng.NewNamed(5, "fusion/measure")
	for step := 0; step < 6; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			if _, err := e.Ingest(sen.ID, m.CPM); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := e.Snapshot()
	if snap.Ingested != uint64(6*len(sc.Sensors)) {
		t.Errorf("ingested = %d", snap.Ingested)
	}
	if len(snap.Estimates) == 0 {
		t.Fatal("no estimates after six sensor rounds")
	}
	for _, src := range sc.Sources {
		best := 1e18
		for _, est := range snap.Estimates {
			if d := est.Pos.Dist(src.Pos); d < best {
				best = d
			}
		}
		if best > 8 {
			t.Errorf("source %v estimate error %v", src.Pos, best)
		}
	}
	if snap.Tracks != nil {
		t.Error("tracks present without tracking enabled")
	}
}

func TestEngineTracking(t *testing.T) {
	e, sc := testEngine(t, true)
	stream := rng.NewNamed(6, "fusion/measure")
	for step := 0; step < 8; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			if _, err := e.Ingest(sen.ID, m.CPM); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := e.Snapshot()
	if len(snap.Tracks) < 2 {
		t.Fatalf("confirmed tracks = %d, want ≥ 2", len(snap.Tracks))
	}
	for _, src := range sc.Sources {
		best := 1e18
		for _, tr := range snap.Tracks {
			if d := tr.Pos.Dist(src.Pos); d < best {
				best = d
			}
		}
		if best > 8 {
			t.Errorf("no confirmed track near source %v (best %v)", src.Pos, best)
		}
	}
}

func TestRefreshForcesEstimates(t *testing.T) {
	e, sc := testEngine(t, false)
	stream := rng.NewNamed(7, "fusion/measure")
	// Fewer measurements than EstimateEvery: no estimates yet.
	for i := 0; i < 10; i++ {
		sen := sc.Sensors[i]
		m := sen.Measure(stream, sc.Sources, nil, 0)
		if _, err := e.Ingest(sen.ID, m.CPM); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Snapshot().Estimates) != 0 {
		t.Fatal("estimates computed before the configured interval")
	}
	e.Refresh()
	// After an explicit refresh there may be estimates (possibly empty
	// if mass is still uniform, but the call must be safe). Just check
	// the snapshot path.
	_ = e.Snapshot()
}

func TestEngineConcurrentIngest(t *testing.T) {
	e, sc := testEngine(t, true)
	stream := rng.NewNamed(8, "fusion/measure")
	// Pre-generate measurements so goroutines don't share the stream.
	type msg struct{ id, cpm int }
	var msgs []msg
	for step := 0; step < 6; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			msgs = append(msgs, msg{id: sen.ID, cpm: m.CPM})
		}
	}
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(msgs); i += workers {
				if _, err := e.Ingest(msgs[i].id, msgs[i].cpm); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := e.Snapshot()
	if snap.Ingested != uint64(len(msgs)) {
		t.Errorf("ingested = %d, want %d", snap.Ingested, len(msgs))
	}
	// Concurrent arrival order is arbitrary — exactly the paper's
	// out-of-order robustness — so the sources must still be found.
	found := 0
	for _, src := range sc.Sources {
		for _, est := range snap.Estimates {
			if est.Pos.Dist(src.Pos) < 10 {
				found++
				break
			}
		}
	}
	if found != 2 {
		t.Errorf("found %d/2 sources under concurrent ingest: %v", found, snap.Estimates)
	}
}

func TestSensorsCount(t *testing.T) {
	e, sc := testEngine(t, false)
	if e.Sensors() != len(sc.Sensors) {
		t.Errorf("Sensors() = %d", e.Sensors())
	}
}

// TestEngineConcurrentMixedOps hammers every public engine method from
// parallel goroutines — Ingest, Snapshot, Refresh, Sensors, and
// QuarantinedSensors — so `go test -race` exercises the full lock
// surface, not just the ingest path. Correctness assertions are
// deliberately loose; the point is that no interleaving races or
// deadlocks.
func TestEngineConcurrentMixedOps(t *testing.T) {
	e, sc := testEngine(t, true)
	stream := rng.NewNamed(9, "fusion/measure-mixed")
	type msg struct{ id, cpm int }
	var msgs []msg
	for step := 0; step < 4; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			msgs = append(msgs, msg{id: sen.ID, cpm: m.CPM})
		}
	}

	var wg sync.WaitGroup
	const ingesters = 4
	for w := 0; w < ingesters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(msgs); i += ingesters {
				if _, err := e.Ingest(msgs[i].id, msgs[i].cpm); err != nil && !errors.Is(err, ErrQuarantined) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(3)
	go func() { // snapshots
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
				snap := e.Snapshot()
				if snap.Ingested > uint64(len(msgs)) {
					t.Errorf("ingested overshot: %d", snap.Ingested)
					return
				}
				if len(snap.Health) != len(sc.Sensors) {
					t.Errorf("health records = %d", len(snap.Health))
					return
				}
			}
		}
	}()
	go func() { // forced refreshes
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
				e.Refresh()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	go func() { // registry and quarantine reads
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
				if e.Sensors() != len(sc.Sensors) {
					t.Error("sensor count changed")
					return
				}
				_ = e.QuarantinedSensors()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)
	readers.Wait()

	snap := e.Snapshot()
	if snap.Ingested+uint64(droppedTotal(snap)) != uint64(len(msgs)) {
		t.Errorf("ingested %d + dropped %d != sent %d", snap.Ingested, droppedTotal(snap), len(msgs))
	}
}

// droppedTotal sums quarantine-withheld readings across the fleet.
func droppedTotal(s Snapshot) uint64 {
	var n uint64
	for _, h := range s.Health {
		n += h.Dropped
	}
	return n
}
