// Package fusion wraps the localizer as a long-running, concurrency-
// safe fusion-center engine: measurements arrive from many network
// connections in any order (the deployment model of Section V — "the
// algorithm can proceed as soon as possible, without waiting for all
// the measurements"), estimates are recomputed at a bounded rate, and
// consumers snapshot the current source picture at any time.
package fusion

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"radloc/internal/core"
	"radloc/internal/diagnose"
	"radloc/internal/obs"
	"radloc/internal/radiation"
	"radloc/internal/sensor"
	"radloc/internal/track"
)

// Config assembles an Engine.
type Config struct {
	// Localizer configures the underlying filter.
	Localizer core.Config
	// Sensors is the calibrated sensor registry; measurements from
	// unknown sensor IDs are rejected.
	Sensors []sensor.Sensor
	// EstimateEvery recomputes estimates after this many ingested
	// measurements (default: one sensor round, i.e. len(Sensors)).
	EstimateEvery int
	// Tracking, when non-nil, maintains persistent tracks over the
	// periodic estimates.
	Tracking *track.Config
	// Health tunes the per-sensor health monitor; the zero value
	// enables it with defaults. Set Health.Disabled for the paper's
	// original trust-everything behavior.
	Health HealthConfig
	// Journal, when non-nil, receives every reading the ingest layer
	// accepts BEFORE it is applied to the filter (write-ahead). A
	// journal append error aborts the ingest: nothing unjournaled is
	// ever folded into the posterior.
	Journal Journal
	// ReorderWindow is the reorder buffer's watermark lag in sequence
	// rounds: a round of sequenced readings is held and released in
	// canonical order once a reading ReorderWindow rounds newer has
	// been seen, so deliveries scrambled within the window reduce to
	// the identical application order (default 4).
	ReorderWindow int
	// Metrics, when non-nil, is the registry the engine's counters live
	// on (ingest, delivery-gate, refresh timing). These collectors ARE
	// the engine's accounting — Snapshot and ExportState read them —
	// so /metrics and /statez can never disagree. nil gets a private
	// registry; the localizer's stage timings are configured separately
	// via Localizer.Metrics. Pass a zone-labeled view
	// (Registry.With("zone", name)) to distinguish engines sharing one
	// process.
	Metrics *obs.Registry
	// MaxSensors bounds the sensor registry and with it every per-sensor
	// map the engine keeps (health records, dedup cursors): one engine's
	// memory stays O(MaxSensors) no matter what IDs show up on the wire.
	// 0 means DefaultMaxSensors; registering more sensors fails with
	// ErrSensorLimit.
	MaxSensors int
}

// Engine is the fusion center. All methods are safe for concurrent
// use.
type Engine struct {
	mu        sync.Mutex
	loc       *core.Localizer
	sensors   map[int]sensor.Sensor
	every     int
	sinceEst  int
	ests      []core.Estimate
	tracker   *track.Manager
	trackStep int

	// met holds the engine's counters (ingested, rejected, delivery
	// gate, ...) — registry collectors are the single source of truth;
	// Snapshot/ExportState derive their numbers from them.
	met *engineMetrics

	// Health monitor state.
	hcfg        HealthConfig
	health      map[int]*sensorHealth
	predSources []radiation.Source // free-space prediction set from ests

	// Durability and delivery-robustness state (see ingress.go).
	journal   Journal
	journaled uint64 // records appended to the journal (the WAL offset)
	window    int    // reorder watermark lag, in sequence rounds
	gate      *gate
}

// ErrUnknownSensor is returned for measurements from unregistered
// sensor IDs.
var ErrUnknownSensor = errors.New("fusion: unknown sensor")

// ErrBadMeasurement is returned for physically impossible readings.
var ErrBadMeasurement = errors.New("fusion: bad measurement")

// ErrQuarantined is returned for readings from sensors the health
// monitor has quarantined; the reading is scored (it counts toward
// probation) but not folded into the filter.
var ErrQuarantined = errors.New("fusion: sensor quarantined")

// ErrSensorLimit is returned when a configuration registers more
// sensors than Config.MaxSensors allows — the typed signal that the
// engine's per-sensor bookkeeping cap was hit.
var ErrSensorLimit = errors.New("fusion: sensor limit exceeded")

// MaxCPM is the physical ceiling on a single reading. Geiger–Müller
// counters saturate orders of magnitude below this; anything larger is
// a corrupt or spoofed record, not a measurement.
const MaxCPM = 10_000_000

// DefaultMaxSensors is the sensor-registry cap applied when
// Config.MaxSensors is 0 — generous for any deployment in the paper
// (Scenario B uses 196) while keeping a zone's per-sensor maps bounded.
const DefaultMaxSensors = 4096

// NewEngine builds the engine.
func NewEngine(cfg Config) (*Engine, error) {
	if len(cfg.Sensors) == 0 {
		return nil, errors.New("fusion: no sensors registered")
	}
	maxSensors := cfg.MaxSensors
	if maxSensors <= 0 {
		maxSensors = DefaultMaxSensors
	}
	if len(cfg.Sensors) > maxSensors {
		return nil, fmt.Errorf("%w: %d sensors registered, cap %d", ErrSensorLimit, len(cfg.Sensors), maxSensors)
	}
	loc, err := core.NewLocalizer(cfg.Localizer)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		loc:     loc,
		sensors: make(map[int]sensor.Sensor, len(cfg.Sensors)),
		every:   cfg.EstimateEvery,
		met:     newEngineMetrics(cfg.Metrics),
		hcfg:    cfg.Health.withDefaults(),
		health:  make(map[int]*sensorHealth, len(cfg.Sensors)),
		journal: cfg.Journal,
		window:  cfg.ReorderWindow,
		gate:    newGate(),
	}
	if e.window <= 0 {
		e.window = 4
	}
	for _, s := range cfg.Sensors {
		if _, dup := e.sensors[s.ID]; dup {
			return nil, fmt.Errorf("fusion: duplicate sensor ID %d", s.ID)
		}
		e.sensors[s.ID] = s
		e.health[s.ID] = &sensorHealth{id: s.ID, lastZ: math.NaN()}
	}
	if e.every <= 0 {
		e.every = len(cfg.Sensors)
	}
	if cfg.Tracking != nil {
		e.tracker = track.NewManager(*cfg.Tracking)
	}
	return e, nil
}

// Ingest folds one measurement into the filter (the unsequenced,
// trust-the-transport path — for sequenced, deduplicated ingest see
// IngestSeq). It returns the number of measurements ingested so far.
func (e *Engine) Ingest(sensorID, cpm int) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := Meas{SensorID: sensorID, CPM: cpm}
	if err := e.journalLocked(m); err != nil {
		return e.met.ingested.Value(), err
	}
	return e.applyLocked(m)
}

// JournalError reports that the write-ahead journal refused an append
// — the reading was NOT applied and the caller still holds it. It is
// the storage layer showing through the ingest API: callers that can
// push back (the HTTP boundary, the zone mailbox) should answer "try
// again later, keep your copy" rather than "rejected", because unlike
// a malformed reading the data is fine — the disk is not.
type JournalError struct {
	// Err is the underlying storage error (ENOSPC, EIO, ...).
	Err error
}

// Error implements the error interface.
func (e *JournalError) Error() string { return "fusion: journal append: " + e.Err.Error() }

// Unwrap exposes the underlying storage error to errors.Is/As.
func (e *JournalError) Unwrap() error { return e.Err }

// journalLocked appends one accepted reading to the write-ahead
// journal, if one is configured. Callers hold e.mu. An error means the
// reading MUST NOT be applied: durability before visibility.
func (e *Engine) journalLocked(m Meas) error {
	if e.journal == nil {
		return nil
	}
	if err := e.journal.Append(m); err != nil {
		return &JournalError{Err: err}
	}
	e.journaled++
	e.met.journaled.Set(float64(e.journaled))
	return nil
}

// applyLocked folds one journaled measurement into the filter. Callers
// hold e.mu.
func (e *Engine) applyLocked(m Meas) (uint64, error) {
	if m.CPM < 0 || m.CPM > MaxCPM {
		e.met.rejected.Inc()
		return 0, fmt.Errorf("%w: CPM %d outside [0, %d]", ErrBadMeasurement, m.CPM, MaxCPM)
	}
	sen, ok := e.sensors[m.SensorID]
	if !ok {
		e.met.rejected.Inc()
		return 0, fmt.Errorf("%w: id %d", ErrUnknownSensor, m.SensorID)
	}
	h := e.health[m.SensorID]
	if !e.admitLocked(h, sen, m.CPM) {
		h.dropped++
		return e.met.ingested.Value(), fmt.Errorf("%w: id %d (last |z| %.1f)", ErrQuarantined, m.SensorID, math.Abs(h.lastZ))
	}
	e.loc.Ingest(sen, m.CPM)
	e.met.ingested.Inc()
	e.sinceEst++
	if e.sinceEst >= e.every {
		e.refreshLocked()
	}
	return e.met.ingested.Value(), nil
}

// refreshLocked recomputes estimates (and tracks). Callers hold e.mu.
func (e *Engine) refreshLocked() {
	t0 := time.Now()
	e.sinceEst = 0
	e.ests = e.loc.Estimates()
	e.predSources = diagnose.Sources(e.ests)
	e.met.refreshes.Inc()
	if e.tracker != nil {
		e.tracker.Update(e.trackStep, e.ests)
		e.trackStep++
	}
	e.met.refreshSeconds.Observe(time.Since(t0).Seconds())
	e.met.estimates.Set(float64(len(e.ests)))
	quarantined := 0
	for _, h := range e.health {
		if h.status == Quarantined {
			quarantined++
		}
	}
	e.met.quarantined.Set(float64(quarantined))
}

// Refresh forces an estimate recomputation now.
func (e *Engine) Refresh() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshLocked()
}

// Snapshot is the engine's externally visible state.
type Snapshot struct {
	Ingested  uint64          // readings folded into the filter
	Rejected  uint64          // readings refused (unknown sensor, quarantine, journal veto)
	Refreshes uint64          // estimate recomputations so far (readiness signal)
	Estimates []core.Estimate // current source estimates
	Tracks    []track.Track   // confirmed tracks; nil without tracking
	Health    []SensorHealth  // per-sensor health, sorted by sensor ID
	// Quarantined counts the sensors currently quarantined.
	Quarantined int
	// Delivery reports the sequence gate's dedup/reorder counters.
	Delivery DeliveryStats
	// Journaled is the number of records appended to the write-ahead
	// journal (0 without one) — the engine's durable WAL offset.
	Journaled uint64
}

// Snapshot returns the current source picture.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Snapshot{
		Ingested:  e.met.ingested.Value(),
		Rejected:  e.met.rejected.Value(),
		Refreshes: e.met.refreshes.Value(),
		Estimates: append([]core.Estimate(nil), e.ests...),
		Health:    e.healthSnapshotLocked(),
		Delivery:  e.met.deliveryStats(),
		Journaled: e.journaled,
	}
	out.Delivery.Pending = e.gate.heldN
	for _, h := range out.Health {
		if h.Status == Quarantined {
			out.Quarantined++
		}
	}
	if e.tracker != nil {
		out.Tracks = e.tracker.Confirmed()
	}
	return out
}

// Sensors returns the registered sensor count.
func (e *Engine) Sensors() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sensors)
}
