// Package fusion wraps the localizer as a long-running, concurrency-
// safe fusion-center engine: measurements arrive from many network
// connections in any order (the deployment model of Section V — "the
// algorithm can proceed as soon as possible, without waiting for all
// the measurements"), estimates are recomputed at a bounded rate, and
// consumers snapshot the current source picture at any time.
package fusion

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"radloc/internal/core"
	"radloc/internal/diagnose"
	"radloc/internal/radiation"
	"radloc/internal/sensor"
	"radloc/internal/track"
)

// Config assembles an Engine.
type Config struct {
	// Localizer configures the underlying filter.
	Localizer core.Config
	// Sensors is the calibrated sensor registry; measurements from
	// unknown sensor IDs are rejected.
	Sensors []sensor.Sensor
	// EstimateEvery recomputes estimates after this many ingested
	// measurements (default: one sensor round, i.e. len(Sensors)).
	EstimateEvery int
	// Tracking, when non-nil, maintains persistent tracks over the
	// periodic estimates.
	Tracking *track.Config
	// Health tunes the per-sensor health monitor; the zero value
	// enables it with defaults. Set Health.Disabled for the paper's
	// original trust-everything behavior.
	Health HealthConfig
}

// Engine is the fusion center. All methods are safe for concurrent
// use.
type Engine struct {
	mu        sync.Mutex
	loc       *core.Localizer
	sensors   map[int]sensor.Sensor
	every     int
	sinceEst  int
	ests      []core.Estimate
	tracker   *track.Manager
	trackStep int
	ingested  uint64
	rejected  uint64
	refreshes uint64

	// Health monitor state.
	hcfg        HealthConfig
	health      map[int]*sensorHealth
	predSources []radiation.Source // free-space prediction set from ests
}

// ErrUnknownSensor is returned for measurements from unregistered
// sensor IDs.
var ErrUnknownSensor = errors.New("fusion: unknown sensor")

// ErrBadMeasurement is returned for physically impossible readings.
var ErrBadMeasurement = errors.New("fusion: bad measurement")

// ErrQuarantined is returned for readings from sensors the health
// monitor has quarantined; the reading is scored (it counts toward
// probation) but not folded into the filter.
var ErrQuarantined = errors.New("fusion: sensor quarantined")

// MaxCPM is the physical ceiling on a single reading. Geiger–Müller
// counters saturate orders of magnitude below this; anything larger is
// a corrupt or spoofed record, not a measurement.
const MaxCPM = 10_000_000

// NewEngine builds the engine.
func NewEngine(cfg Config) (*Engine, error) {
	if len(cfg.Sensors) == 0 {
		return nil, errors.New("fusion: no sensors registered")
	}
	loc, err := core.NewLocalizer(cfg.Localizer)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		loc:     loc,
		sensors: make(map[int]sensor.Sensor, len(cfg.Sensors)),
		every:   cfg.EstimateEvery,
		hcfg:    cfg.Health.withDefaults(),
		health:  make(map[int]*sensorHealth, len(cfg.Sensors)),
	}
	for _, s := range cfg.Sensors {
		if _, dup := e.sensors[s.ID]; dup {
			return nil, fmt.Errorf("fusion: duplicate sensor ID %d", s.ID)
		}
		e.sensors[s.ID] = s
		e.health[s.ID] = &sensorHealth{id: s.ID, lastZ: math.NaN()}
	}
	if e.every <= 0 {
		e.every = len(cfg.Sensors)
	}
	if cfg.Tracking != nil {
		e.tracker = track.NewManager(*cfg.Tracking)
	}
	return e, nil
}

// Ingest folds one measurement into the filter. It returns the number
// of measurements ingested so far.
func (e *Engine) Ingest(sensorID, cpm int) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cpm < 0 || cpm > MaxCPM {
		e.rejected++
		return 0, fmt.Errorf("%w: CPM %d outside [0, %d]", ErrBadMeasurement, cpm, MaxCPM)
	}
	sen, ok := e.sensors[sensorID]
	if !ok {
		e.rejected++
		return 0, fmt.Errorf("%w: id %d", ErrUnknownSensor, sensorID)
	}
	h := e.health[sensorID]
	if !e.admitLocked(h, sen, cpm) {
		h.dropped++
		return e.ingested, fmt.Errorf("%w: id %d (last |z| %.1f)", ErrQuarantined, sensorID, math.Abs(h.lastZ))
	}
	e.loc.Ingest(sen, cpm)
	e.ingested++
	e.sinceEst++
	if e.sinceEst >= e.every {
		e.refreshLocked()
	}
	return e.ingested, nil
}

// refreshLocked recomputes estimates (and tracks). Callers hold e.mu.
func (e *Engine) refreshLocked() {
	e.sinceEst = 0
	e.ests = e.loc.Estimates()
	e.predSources = diagnose.Sources(e.ests)
	e.refreshes++
	if e.tracker != nil {
		e.tracker.Update(e.trackStep, e.ests)
		e.trackStep++
	}
}

// Refresh forces an estimate recomputation now.
func (e *Engine) Refresh() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshLocked()
}

// Snapshot is the engine's externally visible state.
type Snapshot struct {
	Ingested  uint64
	Rejected  uint64
	Refreshes uint64 // estimate recomputations so far (readiness signal)
	Estimates []core.Estimate
	Tracks    []track.Track  // confirmed tracks; nil without tracking
	Health    []SensorHealth // per-sensor health, sorted by sensor ID
	// Quarantined counts the sensors currently quarantined.
	Quarantined int
}

// Snapshot returns the current source picture.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Snapshot{
		Ingested:  e.ingested,
		Rejected:  e.rejected,
		Refreshes: e.refreshes,
		Estimates: append([]core.Estimate(nil), e.ests...),
		Health:    e.healthSnapshotLocked(),
	}
	for _, h := range out.Health {
		if h.Status == Quarantined {
			out.Quarantined++
		}
	}
	if e.tracker != nil {
		out.Tracks = e.tracker.Confirmed()
	}
	return out
}

// Sensors returns the registered sensor count.
func (e *Engine) Sensors() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sensors)
}
