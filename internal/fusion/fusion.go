// Package fusion wraps the localizer as a long-running, concurrency-
// safe fusion-center engine: measurements arrive from many network
// connections in any order (the deployment model of Section V — "the
// algorithm can proceed as soon as possible, without waiting for all
// the measurements"), estimates are recomputed at a bounded rate, and
// consumers snapshot the current source picture at any time.
package fusion

import (
	"errors"
	"fmt"
	"sync"

	"radloc/internal/core"
	"radloc/internal/sensor"
	"radloc/internal/track"
)

// Config assembles an Engine.
type Config struct {
	// Localizer configures the underlying filter.
	Localizer core.Config
	// Sensors is the calibrated sensor registry; measurements from
	// unknown sensor IDs are rejected.
	Sensors []sensor.Sensor
	// EstimateEvery recomputes estimates after this many ingested
	// measurements (default: one sensor round, i.e. len(Sensors)).
	EstimateEvery int
	// Tracking, when non-nil, maintains persistent tracks over the
	// periodic estimates.
	Tracking *track.Config
}

// Engine is the fusion center. All methods are safe for concurrent
// use.
type Engine struct {
	mu        sync.Mutex
	loc       *core.Localizer
	sensors   map[int]sensor.Sensor
	every     int
	sinceEst  int
	ests      []core.Estimate
	tracker   *track.Manager
	trackStep int
	ingested  uint64
	rejected  uint64
}

// ErrUnknownSensor is returned for measurements from unregistered
// sensor IDs.
var ErrUnknownSensor = errors.New("fusion: unknown sensor")

// ErrBadMeasurement is returned for physically impossible readings.
var ErrBadMeasurement = errors.New("fusion: bad measurement")

// NewEngine builds the engine.
func NewEngine(cfg Config) (*Engine, error) {
	if len(cfg.Sensors) == 0 {
		return nil, errors.New("fusion: no sensors registered")
	}
	loc, err := core.NewLocalizer(cfg.Localizer)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		loc:     loc,
		sensors: make(map[int]sensor.Sensor, len(cfg.Sensors)),
		every:   cfg.EstimateEvery,
	}
	for _, s := range cfg.Sensors {
		if _, dup := e.sensors[s.ID]; dup {
			return nil, fmt.Errorf("fusion: duplicate sensor ID %d", s.ID)
		}
		e.sensors[s.ID] = s
	}
	if e.every <= 0 {
		e.every = len(cfg.Sensors)
	}
	if cfg.Tracking != nil {
		e.tracker = track.NewManager(*cfg.Tracking)
	}
	return e, nil
}

// Ingest folds one measurement into the filter. It returns the number
// of measurements ingested so far.
func (e *Engine) Ingest(sensorID, cpm int) (uint64, error) {
	if cpm < 0 {
		e.mu.Lock()
		e.rejected++
		e.mu.Unlock()
		return 0, fmt.Errorf("%w: negative CPM %d", ErrBadMeasurement, cpm)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sen, ok := e.sensors[sensorID]
	if !ok {
		e.rejected++
		return 0, fmt.Errorf("%w: id %d", ErrUnknownSensor, sensorID)
	}
	e.loc.Ingest(sen, cpm)
	e.ingested++
	e.sinceEst++
	if e.sinceEst >= e.every {
		e.refreshLocked()
	}
	return e.ingested, nil
}

// refreshLocked recomputes estimates (and tracks). Callers hold e.mu.
func (e *Engine) refreshLocked() {
	e.sinceEst = 0
	e.ests = e.loc.Estimates()
	if e.tracker != nil {
		e.tracker.Update(e.trackStep, e.ests)
		e.trackStep++
	}
}

// Refresh forces an estimate recomputation now.
func (e *Engine) Refresh() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshLocked()
}

// Snapshot is the engine's externally visible state.
type Snapshot struct {
	Ingested  uint64
	Rejected  uint64
	Estimates []core.Estimate
	Tracks    []track.Track // confirmed tracks; nil without tracking
}

// Snapshot returns the current source picture.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Snapshot{
		Ingested:  e.ingested,
		Rejected:  e.rejected,
		Estimates: append([]core.Estimate(nil), e.ests...),
	}
	if e.tracker != nil {
		out.Tracks = e.tracker.Confirmed()
	}
	return out
}

// Sensors returns the registered sensor count.
func (e *Engine) Sensors() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sensors)
}
