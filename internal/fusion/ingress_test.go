package fusion

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/track"
)

// seqStream renders a sequence-stamped measurement stream for Scenario
// A: one reading per sensor per step, Seq = step+1.
func seqStream(t *testing.T, sc scenario.Scenario, steps int, seed uint64) []Meas {
	t.Helper()
	stream := rng.NewNamed(seed, "ingress-test/measure")
	var out []Meas
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			out = append(out, Meas{SensorID: sen.ID, CPM: m.CPM, Step: step, Seq: uint64(step + 1)})
		}
	}
	return out
}

func seqEngine(t *testing.T, window int) (*Engine, scenario.Scenario) {
	t.Helper()
	sc := scenario.A(50, false)
	cfg := Config{
		Localizer:     sim.LocalizerConfig(sc),
		Sensors:       sc.Sensors,
		Tracking:      &track.Config{},
		ReorderWindow: window,
	}
	cfg.Localizer.Seed = 5
	cfg.Localizer.Workers = 2
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, sc
}

// comparable strips the volatile delivery counters from a snapshot and
// canonicalizes NaN health residuals (NaN ≠ NaN under DeepEqual): the
// invariant under redelivery and reordering is that the FILTER state
// matches, while the gate's own counters necessarily differ.
func comparable(s Snapshot) Snapshot {
	s.Delivery = DeliveryStats{}
	s.Journaled = 0
	s.Health = append([]SensorHealth(nil), s.Health...)
	for i := range s.Health {
		if math.IsNaN(s.Health[i].LastZ) {
			s.Health[i].LastZ = math.Inf(-1)
		}
	}
	return s
}

// TestIngestSeqDuplicateAndReorderEquivalence is the delivery
// acceptance criterion: each record delivered twice, shuffled within
// the reorder window, must yield the exact engine state of exactly-
// once in-order delivery.
func TestIngestSeqDuplicateAndReorderEquivalence(t *testing.T) {
	clean, sc := seqEngine(t, 4)
	messy, _ := seqEngine(t, 4)
	stream := seqStream(t, sc, 10, 3)

	for _, m := range stream {
		if _, err := clean.IngestSeq(m); err != nil {
			t.Fatalf("clean ingest: %v", err)
		}
	}
	if _, err := clean.FlushPending(); err != nil {
		t.Fatal(err)
	}

	// Duplicate every record, then shuffle within a span much smaller
	// than one watermark window so order is always recoverable.
	doubled := make([]Meas, 0, 2*len(stream))
	for _, m := range stream {
		doubled = append(doubled, m, m)
	}
	shuffle := rng.NewNamed(17, "ingress-test/shuffle")
	const span = 10
	for i := range doubled {
		j := i + shuffle.IntN(span)
		if j >= len(doubled) {
			j = len(doubled) - 1
		}
		doubled[i], doubled[j] = doubled[j], doubled[i]
	}
	for _, m := range doubled {
		if _, err := messy.IngestSeq(m); err != nil && !errors.Is(err, ErrDuplicate) {
			t.Fatalf("messy ingest: %v", err)
		}
	}
	if _, err := messy.FlushPending(); err != nil {
		t.Fatal(err)
	}

	cs, ms := clean.Snapshot(), messy.Snapshot()
	if ms.Delivery.Duplicates != uint64(len(stream)) {
		t.Errorf("duplicates = %d, want %d", ms.Delivery.Duplicates, len(stream))
	}
	if ms.Delivery.OutOfOrder == 0 {
		t.Error("no out-of-order arrivals recorded despite shuffling")
	}
	if ms.Delivery.Pending != 0 || cs.Delivery.Pending != 0 {
		t.Errorf("pending after flush: clean %d, messy %d", cs.Delivery.Pending, ms.Delivery.Pending)
	}
	if cs.Ingested != uint64(len(stream)) {
		t.Errorf("clean ingested = %d, want %d", cs.Ingested, len(stream))
	}
	if !reflect.DeepEqual(comparable(cs), comparable(ms)) {
		t.Fatalf("engine state diverged under duplicate+reordered delivery:\nclean %+v\nmessy %+v", cs, ms)
	}
}

// TestIngestSeqDedup: the same sequence number is consumed exactly
// once, whether its first copy is already applied or still held.
func TestIngestSeqDedup(t *testing.T) {
	e, sc := seqEngine(t, 2)
	id := sc.Sensors[0].ID
	if n, err := e.IngestSeq(Meas{SensorID: id, CPM: 40, Seq: 1}); err != nil || n != 0 {
		t.Fatalf("first delivery buffered: n=%d err=%v", n, err)
	}
	// Redelivery while held.
	if _, err := e.IngestSeq(Meas{SensorID: id, CPM: 40, Seq: 1}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("held duplicate not suppressed: %v", err)
	}
	// Watermark passes round 1 (seq 3 with window 2), applying it.
	if n, err := e.IngestSeq(Meas{SensorID: id, CPM: 41, Seq: 3}); err != nil || n != 1 {
		t.Fatalf("watermark release: n=%d err=%v", n, err)
	}
	// Redelivery after application.
	for i := 0; i < 3; i++ {
		if _, err := e.IngestSeq(Meas{SensorID: id, CPM: 40, Seq: 1}); !errors.Is(err, ErrDuplicate) {
			t.Fatalf("applied duplicate %d not suppressed: %v", i, err)
		}
	}
	s := e.Snapshot()
	if s.Ingested != 1 || s.Delivery.Duplicates != 4 {
		t.Errorf("ingested=%d duplicates=%d, want 1 and 4", s.Ingested, s.Delivery.Duplicates)
	}
}

// TestIngestSeqWatermarkRelease: rounds are held until the watermark
// passes, then applied in (round, sensor) order; a final flush drains
// the tail.
func TestIngestSeqWatermarkRelease(t *testing.T) {
	e, sc := seqEngine(t, 4)
	a, b := sc.Sensors[0].ID, sc.Sensors[1].ID
	// Round 1 arrives sensor-b-first; canonical release must still be
	// a-then-b.
	if n, _ := e.IngestSeq(Meas{SensorID: b, CPM: 44, Seq: 1}); n != 0 {
		t.Fatal("round applied before watermark")
	}
	if n, _ := e.IngestSeq(Meas{SensorID: a, CPM: 43, Seq: 1}); n != 0 {
		t.Fatal("round applied before watermark")
	}
	if got := e.Snapshot().Delivery.Pending; got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	// Seq 6 > window 4 + round 1 → round 1 released.
	n, err := e.IngestSeq(Meas{SensorID: a, CPM: 45, Seq: 6})
	if err != nil || n != 2 {
		t.Fatalf("watermark advance applied n=%d err=%v, want 2", n, err)
	}
	s := e.Snapshot()
	if s.Ingested != 2 || s.Delivery.Pending != 1 {
		t.Errorf("after release: ingested=%d pending=%d", s.Ingested, s.Delivery.Pending)
	}
	if n, err := e.FlushPending(); err != nil || n != 1 {
		t.Fatalf("final flush n=%d err=%v", n, err)
	}
	// A straggler behind the watermark is admitted immediately (late),
	// not dropped.
	if n, err := e.IngestSeq(Meas{SensorID: b, CPM: 46, Seq: 2}); err != nil || n != 1 {
		t.Fatalf("late straggler: n=%d err=%v", n, err)
	}
	s = e.Snapshot()
	if s.Delivery.Late != 1 {
		t.Errorf("late = %d, want 1", s.Delivery.Late)
	}
	if s.Delivery.GapSkips == 0 {
		t.Error("sensor a jumped seq 1→6 with no gap accounting")
	}
}

// TestIngestSeqSpoofedFlood: a flood of unregistered sensor IDs is
// refused at the gate's door — it must not park readings in the
// reorder buffer, grow the dedup-cursor map, or touch the filter. This
// is the memory bound that lets one process host many zones: a zone's
// per-sensor state is O(registered sensors) no matter what the wire
// carries.
func TestIngestSeqSpoofedFlood(t *testing.T) {
	e, sc := seqEngine(t, 4)
	flood := (4 + 1) * (len(sc.Sensors) + 1) * 3
	for i := 0; i < flood; i++ {
		n, err := e.IngestSeq(Meas{SensorID: 10_000 + i, CPM: 5, Seq: uint64(2 + i)})
		if n != 0 || !errors.Is(err, ErrUnknownSensor) {
			t.Fatalf("spoofed reading %d: n=%d err=%v, want 0, ErrUnknownSensor", i, n, err)
		}
	}
	s := e.Snapshot()
	if s.Delivery.Pending != 0 || s.Delivery.Buffered != 0 {
		t.Errorf("spoofed flood reached the reorder buffer: %+v", s.Delivery)
	}
	if len(e.gate.cursor) != 0 {
		t.Errorf("cursor map grew to %d entries from spoofed IDs", len(e.gate.cursor))
	}
	if s.Ingested != 0 || s.Rejected != uint64(flood) {
		t.Errorf("flood accounting: ingested=%d rejected=%d, want 0, %d", s.Ingested, s.Rejected, flood)
	}
}

// TestMaxSensors: registering past Config.MaxSensors fails with the
// typed ErrSensorLimit.
func TestMaxSensors(t *testing.T) {
	sc := scenario.A(50, false)
	cfg := Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors, MaxSensors: len(sc.Sensors) - 1}
	if _, err := NewEngine(cfg); !errors.Is(err, ErrSensorLimit) {
		t.Fatalf("NewEngine over cap: err=%v, want ErrSensorLimit", err)
	}
	cfg.MaxSensors = len(sc.Sensors)
	if _, err := NewEngine(cfg); err != nil {
		t.Fatalf("NewEngine at cap: %v", err)
	}
}

// TestIngestSeqUnsequencedBypass: seq-0 readings keep the legacy
// trust-the-transport behavior.
func TestIngestSeqUnsequencedBypass(t *testing.T) {
	e, sc := seqEngine(t, 4)
	id := sc.Sensors[0].ID
	for i := 0; i < 3; i++ {
		if n, err := e.IngestSeq(Meas{SensorID: id, CPM: 40}); err != nil || n != 1 {
			t.Fatalf("unsequenced %d: n=%d err=%v", i, n, err)
		}
	}
	s := e.Snapshot()
	if s.Ingested != 3 || s.Delivery.Unsequenced != 3 {
		t.Errorf("unsequenced path: ingested=%d stats=%+v", s.Ingested, s.Delivery)
	}
}

// journalFunc adapts a func to the Journal interface.
type journalFunc func(Meas) error

func (f journalFunc) Append(m Meas) error { return f(m) }

// TestJournalWriteAhead: every applied reading hits the journal first,
// in application order, and a journal error vetoes application.
func TestJournalWriteAhead(t *testing.T) {
	sc := scenario.A(50, false)
	var logged []Meas
	fail := false
	cfg := Config{
		Localizer: sim.LocalizerConfig(sc),
		Sensors:   sc.Sensors,
		Journal: journalFunc(func(m Meas) error {
			if fail {
				return errors.New("disk full")
			}
			logged = append(logged, m)
			return nil
		}),
		ReorderWindow: 4,
	}
	cfg.Localizer.Seed = 5
	cfg.Localizer.Workers = 2
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sc.Sensors[0].ID, sc.Sensors[1].ID
	// Arrival order b,a within round 1: the journal must record the
	// canonical application order a,b.
	if _, err := e.IngestSeq(Meas{SensorID: b, CPM: 41, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestSeq(Meas{SensorID: a, CPM: 40, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if n, err := e.FlushPending(); err != nil || n != 2 {
		t.Fatalf("flush n=%d err=%v", n, err)
	}
	if len(logged) != 2 || logged[0].SensorID != a || logged[1].SensorID != b {
		t.Fatalf("journal order: %+v", logged)
	}
	if s := e.Snapshot(); s.Journaled != 2 {
		t.Errorf("journaled = %d, want 2", s.Journaled)
	}

	// Journal failure at release time: nothing may reach the filter,
	// and the reading stays held for a later retry.
	fail = true
	if _, err := e.IngestSeq(Meas{SensorID: a, CPM: 42, Seq: 2}); err != nil {
		t.Fatalf("buffering must not touch the journal: %v", err)
	}
	if _, err := e.FlushPending(); err == nil {
		t.Fatal("journal failure did not veto the flush")
	}
	if got := e.Snapshot(); got.Ingested != 2 || got.Journaled != 2 || got.Delivery.Pending != 1 {
		t.Errorf("unjournaled reading leaked: %+v", got)
	}
	fail = false
	if n, err := e.FlushPending(); err != nil || n != 1 {
		t.Fatalf("retry after journal recovery: n=%d err=%v", n, err)
	}
	if got := e.Snapshot(); got.Ingested != 3 || got.Journaled != 3 {
		t.Errorf("retry not applied: %+v", got)
	}
}
