package fusion

import (
	"math"
	"sort"

	"radloc/internal/diagnose"
	"radloc/internal/sensor"
)

// HealthStatus classifies a sensor's standing with the engine's health
// monitor.
type HealthStatus int

// Health states.
const (
	// Healthy sensors' readings are folded into the filter.
	Healthy HealthStatus = iota
	// Quarantined sensors' readings are scored but NOT folded into the
	// filter; a probation streak of plausible readings re-admits them.
	Quarantined
)

// String implements fmt.Stringer.
func (s HealthStatus) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Quarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// HealthConfig tunes the per-sensor health monitor. The monitor scores
// every reading against the filter's posterior-predictive expectation
// (the free-space CPM of the current estimates, via the same residual
// machinery as internal/diagnose): readings whose standardized residual
// keeps an implausibility streak of QuarantineAfter quarantine
// the sensor — its data is then scored but no longer trusted — and a
// probation streak of ProbationGood plausible readings re-admits it.
// The zero value enables the monitor with the defaults below.
type HealthConfig struct {
	// Disabled turns the monitor off: every reading is trusted, as in
	// the paper's original fusion model.
	Disabled bool
	// ZThreshold is the |z| at or above which a reading is implausible
	// (default 5; generous next to diagnose's 3 because streaming
	// estimates are noisier than converged ones).
	ZThreshold float64
	// QuarantineAfter is the implausibility streak at which a sensor is
	// quarantined (default 6). The streak grows by one per implausible
	// reading and decays by one per plausible reading, so only
	// persistently lying sensors reach it.
	QuarantineAfter int
	// ProbationGood is the number of consecutive plausible readings a
	// quarantined sensor must deliver to be re-admitted (default 12).
	ProbationGood int
	// Warmup is the number of readings per sensor ingested before
	// scoring starts, giving the filter time to converge (default 5).
	Warmup int
	// RelSlack inflates the predictive variance with a multiplicative
	// model-uncertainty term, Var = λ + (RelSlack·λ)², so sensors right
	// next to a source (whose λ is steeply sensitive to small estimate
	// errors) are not falsely flagged while the filter converges
	// (default 0.2).
	RelSlack float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ZThreshold <= 0 {
		c.ZThreshold = 5
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 6
	}
	if c.ProbationGood <= 0 {
		c.ProbationGood = 12
	}
	if c.Warmup <= 0 {
		c.Warmup = 5
	}
	if c.RelSlack <= 0 {
		c.RelSlack = 0.2
	}
	return c
}

// sensorHealth is the engine's mutable per-sensor record. Guarded by
// Engine.mu.
type sensorHealth struct {
	id          int
	status      HealthStatus
	badStreak   int     // leaky implausibility streak while healthy
	goodStreak  int     // consecutive plausible readings while quarantined
	lastZ       float64 // most recent standardized residual (NaN before scoring)
	seen        uint64  // readings received (any outcome)
	dropped     uint64  // readings withheld from the filter while quarantined
	quarantines int     // times the sensor entered quarantine
}

// SensorHealth is the externally visible form of one sensor's health.
type SensorHealth struct {
	SensorID    int          // sensor this record describes
	Status      HealthStatus // current health verdict
	LastZ       float64      // NaN until the monitor has scored a reading
	Seen        uint64       // readings received (any outcome)
	Dropped     uint64       // readings withheld from the filter while quarantined
	Quarantines int          // times the sensor entered quarantine
}

// admitLocked scores one reading and reports whether it should be
// folded into the filter. Callers hold e.mu.
func (e *Engine) admitLocked(h *sensorHealth, sen sensor.Sensor, cpm int) bool {
	h.seen++
	if e.hcfg.Disabled {
		return true
	}
	// Scoring needs a posterior to predict from: wait for the first
	// estimate refresh and a per-sensor warmup.
	if e.met.refreshes.Value() == 0 || h.seen <= uint64(e.hcfg.Warmup) {
		return h.status == Healthy
	}
	z := diagnose.ResidualZInflated(sen, cpm, e.predSources, e.hcfg.RelSlack)
	h.lastZ = z
	implausible := math.Abs(z) >= e.hcfg.ZThreshold
	switch h.status {
	case Healthy:
		if implausible {
			h.badStreak++
			if h.badStreak >= e.hcfg.QuarantineAfter {
				h.status = Quarantined
				h.goodStreak = 0
				h.quarantines++
				return false
			}
		} else if h.badStreak > 0 {
			// Leaky decay rather than a hard reset: a sensor lying hard
			// enough grows a phantom source at its own position, and
			// scored against that self-poisoned posterior the occasional
			// reading looks plausible again. A hard reset would let one
			// such blip erase the whole accumulated streak; decrementing
			// keeps persistent liars converging on quarantine while
			// genuinely intermittent sensors (alternating good and bad
			// readings) still never accumulate.
			h.badStreak--
		}
		return true
	case Quarantined:
		if implausible {
			h.goodStreak = 0
		} else {
			h.goodStreak++
			if h.goodStreak >= e.hcfg.ProbationGood {
				h.status = Healthy
				h.badStreak = 0
				return true
			}
		}
		return false
	}
	return true
}

// healthSnapshotLocked exports the per-sensor records sorted by ID.
// Callers hold e.mu.
func (e *Engine) healthSnapshotLocked() []SensorHealth {
	out := make([]SensorHealth, 0, len(e.health))
	for _, h := range e.health {
		out = append(out, SensorHealth{
			SensorID:    h.id,
			Status:      h.status,
			LastZ:       h.lastZ,
			Seen:        h.seen,
			Dropped:     h.dropped,
			Quarantines: h.quarantines,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SensorID < out[b].SensorID })
	return out
}

// QuarantinedSensors returns the IDs currently quarantined, sorted.
func (e *Engine) QuarantinedSensors() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []int
	for id, h := range e.health {
		if h.status == Quarantined {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
