package fusion

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
)

// healthTestEngine builds an engine over Scenario A with a fast-acting
// monitor so unit tests don't need long streams.
func healthTestEngine(t *testing.T, disabled bool) (*Engine, scenario.Scenario) {
	t.Helper()
	sc := scenario.A(50, false)
	cfg := Config{
		Localizer: sim.LocalizerConfig(sc),
		Sensors:   sc.Sensors,
		Health: HealthConfig{
			Disabled:        disabled,
			ZThreshold:      5,
			QuarantineAfter: 3,
			ProbationGood:   4,
			Warmup:          1,
		},
	}
	cfg.Localizer.Seed = 11
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, sc
}

// warmUp feeds `rounds` clean sensor rounds so the engine has a
// converged posterior to score against.
func warmUp(t *testing.T, e *Engine, sc scenario.Scenario, rounds int, seed uint64) {
	t.Helper()
	stream := rng.NewNamed(seed, "fusion-health/warmup")
	for step := 0; step < rounds; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			if _, err := e.Ingest(sen.ID, m.CPM); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCeilingRejected(t *testing.T) {
	e, _ := healthTestEngine(t, false)
	if _, err := e.Ingest(0, MaxCPM+1); !errors.Is(err, ErrBadMeasurement) {
		t.Errorf("absurd CPM: %v", err)
	}
	if _, err := e.Ingest(0, -1); !errors.Is(err, ErrBadMeasurement) {
		t.Errorf("negative CPM: %v", err)
	}
	if snap := e.Snapshot(); snap.Rejected != 2 || snap.Ingested != 0 {
		t.Errorf("counters after bad readings: ingested %d rejected %d", snap.Ingested, snap.Rejected)
	}
}

func TestQuarantineAndProbation(t *testing.T) {
	e, sc := healthTestEngine(t, false)
	warmUp(t, e, sc, 4, 21)

	// Sensor 0 sits at (0,0), far from both sources: expected ≈ 5 CPM
	// background. 5000 CPM is wildly implausible.
	const faulty = 0
	var lastErr error
	for i := 0; i < 3; i++ {
		_, lastErr = e.Ingest(faulty, 5000)
	}
	if !errors.Is(lastErr, ErrQuarantined) {
		t.Fatalf("after 3 implausible readings: %v", lastErr)
	}
	snap := e.Snapshot()
	if snap.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", snap.Quarantined)
	}
	var rec SensorHealth
	for _, h := range snap.Health {
		if h.SensorID == faulty {
			rec = h
		}
	}
	if rec.Status != Quarantined || rec.Quarantines != 1 || rec.Dropped == 0 {
		t.Errorf("faulty sensor record: %+v", rec)
	}
	if got := e.QuarantinedSensors(); len(got) != 1 || got[0] != faulty {
		t.Errorf("QuarantinedSensors() = %v", got)
	}

	// While quarantined, further wild readings stay out of the filter.
	before := e.Snapshot().Ingested
	if _, err := e.Ingest(faulty, 5000); !errors.Is(err, ErrQuarantined) {
		t.Errorf("quarantined reading: %v", err)
	}
	if e.Snapshot().Ingested != before {
		t.Error("quarantined reading was folded into the filter")
	}

	// Probation: plausible (≈ background) readings re-admit the sensor.
	for i := 0; i < 4; i++ {
		if _, err := e.Ingest(faulty, 5); i < 3 && !errors.Is(err, ErrQuarantined) {
			t.Errorf("probation reading %d: %v", i, err)
		}
	}
	if got := e.QuarantinedSensors(); len(got) != 0 {
		t.Errorf("sensor not re-admitted after probation: %v", got)
	}
	// Re-admitted sensors count into the filter again.
	before = e.Snapshot().Ingested
	if _, err := e.Ingest(faulty, 5); err != nil {
		t.Errorf("re-admitted reading: %v", err)
	}
	if e.Snapshot().Ingested != before+1 {
		t.Error("re-admitted reading not folded into the filter")
	}
}

func TestImplausibleStreakResets(t *testing.T) {
	e, sc := healthTestEngine(t, false)
	warmUp(t, e, sc, 4, 22)
	// Implausible readings interleaved with plausible ones never build
	// the consecutive streak, so the sensor stays healthy — burst noise
	// does not cost a sensor its seat. (Kept below one refresh interval
	// so the scored posterior stays fixed for the whole loop.)
	for i := 0; i < 5; i++ {
		if _, err := e.Ingest(0, 5000); err != nil {
			t.Fatalf("burst reading %d: %v", i, err)
		}
		if _, err := e.Ingest(0, 5); err != nil {
			t.Fatalf("clean reading %d: %v", i, err)
		}
	}
	if got := e.QuarantinedSensors(); len(got) != 0 {
		t.Errorf("intermittent bursts quarantined sensor: %v", got)
	}
}

// TestLeakyStreakSurvivesBlip: a sensor lying hard enough can grow a
// phantom source at its own position, making the occasional corrupt
// reading score as plausible against the self-poisoned posterior. One
// such blip must not erase the accumulated streak (it decays by one,
// not to zero), or persistent liars would evade quarantine forever.
func TestLeakyStreakSurvivesBlip(t *testing.T) {
	e, sc := healthTestEngine(t, false)
	warmUp(t, e, sc, 4, 25)
	// QuarantineAfter is 3: bad bad GOOD bad bad walks the streak
	// 1,2,1,2,3 and quarantines on the fifth reading.
	for i, cpm := range []int{5000, 5000, 5, 5000} {
		if _, err := e.Ingest(0, cpm); err != nil {
			t.Fatalf("reading %d: %v", i, err)
		}
	}
	if _, err := e.Ingest(0, 5000); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("fifth reading after blip: %v", err)
	}
	if got := e.QuarantinedSensors(); len(got) != 1 || got[0] != 0 {
		t.Errorf("QuarantinedSensors() = %v, want [0]", got)
	}
}

func TestHealthDisabledTrustsEverything(t *testing.T) {
	e, sc := healthTestEngine(t, true)
	warmUp(t, e, sc, 4, 23)
	for i := 0; i < 20; i++ {
		if _, err := e.Ingest(0, 5000); err != nil {
			t.Fatalf("disabled monitor rejected reading: %v", err)
		}
	}
	snap := e.Snapshot()
	if snap.Quarantined != 0 {
		t.Errorf("disabled monitor quarantined %d sensors", snap.Quarantined)
	}
	for _, h := range snap.Health {
		if h.SensorID == 0 && h.Seen == 0 {
			t.Error("health bookkeeping stopped while disabled")
		}
	}
}

func TestHealthStatusString(t *testing.T) {
	if Healthy.String() != "healthy" || Quarantined.String() != "quarantined" {
		t.Error("status names wrong")
	}
	if HealthStatus(9).String() != "unknown" {
		t.Error("unknown status string")
	}
}

func TestSnapshotHealthSortedAndNaN(t *testing.T) {
	e, sc := healthTestEngine(t, false)
	snap := e.Snapshot()
	if len(snap.Health) != len(sc.Sensors) {
		t.Fatalf("health records = %d, want %d", len(snap.Health), len(sc.Sensors))
	}
	for i, h := range snap.Health {
		if h.SensorID != i {
			t.Fatalf("health not sorted by ID: %v at %d", h.SensorID, i)
		}
		if !math.IsNaN(h.LastZ) {
			t.Errorf("sensor %d scored before any reading: z = %v", i, h.LastZ)
		}
	}
}
