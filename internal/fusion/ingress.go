package fusion

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Meas is one sequence-stamped measurement as it crosses the ingest
// boundary. Seq is a per-sensor monotone sequence number assigned at
// the source (sensors reporting in rounds share the rhythm: the k-th
// reading of every sensor carries Seq k); 0 means "unsequenced" and
// bypasses the dedup/reorder gate entirely.
type Meas struct {
	SensorID int    // reporting sensor's ID
	CPM      int    // measured counts per minute
	Step     int    // emission time step (0 when unknown)
	Seq      uint64 // per-sensor monotone sequence; 0 = unsequenced
}

// Journal receives accepted readings before they are applied to the
// filter — the write-ahead hook. Append is always called with the
// engine lock held, so appends are totally ordered exactly as the
// filter applies them; an error vetoes the application.
type Journal interface {
	// Append durably records one accepted reading before it is applied.
	Append(Meas) error
}

// ErrDuplicate is returned for readings whose sequence number has
// already been consumed or is currently held — at-least-once
// redelivery detected and suppressed — and for stale stragglers whose
// slot was given up on.
var ErrDuplicate = errors.New("fusion: duplicate delivery")

// DeliveryStats counts the sequence gate's work. All fields are
// monotone counters except Pending.
type DeliveryStats struct {
	// Duplicates counts redelivered or stale readings dropped by dedup.
	Duplicates uint64 `json:"duplicates"`
	// OutOfOrder counts readings that arrived with a sequence number
	// below the newest already seen — observed transport reordering.
	OutOfOrder uint64 `json:"outOfOrder"`
	// Buffered counts readings that entered the reorder buffer.
	Buffered uint64 `json:"buffered"`
	// Late counts readings applied out of canonical order because they
	// arrived after their round had already been released — reordering
	// beyond the window, admitted rather than dropped.
	Late uint64 `json:"late"`
	// GapSkips counts sequence numbers given up on: readings the
	// transport apparently lost for good.
	GapSkips uint64 `json:"gapSkips"`
	// ForcedFlushes counts buffer overflows that forced releases ahead
	// of the watermark.
	ForcedFlushes uint64 `json:"forcedFlushes"`
	// Unsequenced counts seq-0 readings that bypassed the gate.
	Unsequenced uint64 `json:"unsequenced"`
	// Pending is the number of readings currently held in the reorder
	// buffer (snapshot-time value, not a counter).
	Pending int `json:"pending"`
}

// IngressStats counts the HTTP ingest boundary's admission work —
// the transport-facing face of backpressure, served on /statez so an
// operator can see load being shed before it shows up as loss. All
// fields are monotone counters. The counters reconcile with a
// well-behaved agent's delivery stats: every reading the agent counts
// delivered is Accepted, Duplicates (redelivery suppressed) or
// Rejected here, and every agent retry prompted by the server shows
// up as Shed429 or RateLimited.
type IngressStats struct {
	// Requests counts POST /measurements requests that passed the
	// method and Content-Type checks.
	Requests uint64 `json:"requests"`
	// Accepted counts readings the engine took (applied or buffered in
	// the reorder gate).
	Accepted uint64 `json:"accepted"`
	// Duplicates counts readings the sequence gate suppressed as
	// redelivery — the at-least-once transport doing its job.
	Duplicates uint64 `json:"duplicates"`
	// Rejected counts readings refused for cause (unknown sensor,
	// impossible CPM, quarantine).
	Rejected uint64 `json:"rejected"`
	// Shed429 counts requests refused at the door because the
	// admission queue was full (HTTP 429 + Retry-After).
	Shed429 uint64 `json:"shed429"`
	// Shed507 counts requests refused because the zone's journal could
	// not be written — storage degraded (HTTP 507 + Retry-After). The
	// agent keeps its spooled copy and retries.
	Shed507 uint64 `json:"shed507"`
	// RateLimited counts readings refused by a per-sensor token bucket
	// (the request is answered 429 + Retry-After at the first refusal).
	RateLimited uint64 `json:"rateLimited"`
	// Oversized counts request bodies over the byte bound (HTTP 413).
	Oversized uint64 `json:"oversized"`
	// BadContentType counts requests with a non-JSON Content-Type
	// (HTTP 415).
	BadContentType uint64 `json:"badContentType"`
	// Malformed counts request bodies that did not parse (HTTP 400).
	Malformed uint64 `json:"malformed"`
}

// gate is the dedup/reorder front of the engine. Guarded by Engine.mu.
//
// Readings are staged per round (their Seq) and a round is released —
// journaled and applied in ascending sensor-ID order — once the
// watermark (newest Seq seen minus the window) passes it. Because the
// release order is a pure function of the readings' own stamps, any
// arrival order whose displacement stays within the window reduces to
// the identical application sequence, which is what makes "duplicate
// and shuffled redelivery ≡ exactly-once in-order" an exact statement
// rather than a statistical one.
type gate struct {
	cursor   map[int]uint64          // per-sensor highest applied seq (dedup)
	held     map[uint64]map[int]Meas // round → sensorID → reading
	heldN    int
	maxSeq   uint64 // newest sequence number seen
	released uint64 // rounds ≤ released have been released
}

func newGate() *gate {
	return &gate{
		cursor: make(map[int]uint64),
		held:   make(map[uint64]map[int]Meas),
	}
}

// IngestSeq feeds one sequence-stamped measurement through the
// dedup/reorder gate and applies whatever the gate releases. It
// returns the number of readings applied to the engine by this call
// (0 if the reading was deduplicated or buffered; possibly many when
// it advanced the watermark). The error reflects the offered
// reading's own outcome: ErrDuplicate for redelivery, nil otherwise
// (including "buffered, pending the watermark"); rejections of
// individual released readings are visible in the engine's counters,
// as on the unsequenced path.
func (e *Engine) IngestSeq(m Meas) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m.Seq == 0 {
		e.met.unsequenced.Inc()
		if err := e.journalLocked(m); err != nil {
			return 0, err
		}
		_, err := e.applyLocked(m)
		return 1, err
	}
	// Unknown sensors are refused before any gate state is touched: a
	// spoofed sensor ID must not grow the dedup cursor map or park
	// readings in the reorder buffer — that is the one per-sensor
	// surface an attacker controls, and it stays bounded by the
	// registry (see Config.MaxSensors).
	if _, ok := e.sensors[m.SensorID]; !ok {
		e.met.rejected.Inc()
		return 0, fmt.Errorf("%w: id %d", ErrUnknownSensor, m.SensorID)
	}
	g := e.gate
	if m.Seq < g.maxSeq {
		e.met.outOfOrder.Inc()
	}
	if m.Seq <= g.cursor[m.SensorID] {
		e.met.duplicates.Inc()
		return 0, ErrDuplicate
	}
	if _, dup := g.held[m.Seq][m.SensorID]; dup {
		e.met.duplicates.Inc()
		return 0, ErrDuplicate
	}
	if m.Seq <= g.released {
		// The round has sailed: apply immediately, out of canonical
		// order but admitted — shedding data over a bounded-window
		// violation would be worse.
		e.met.late.Inc()
		if err := e.journalLocked(m); err != nil {
			return 0, err
		}
		_, err := e.applyReleasedLocked(m)
		return 1, err
	}
	round := g.held[m.Seq]
	if round == nil {
		round = make(map[int]Meas)
		g.held[m.Seq] = round
	}
	round[m.SensorID] = m
	g.heldN++
	e.met.buffered.Inc()
	e.met.pending.Set(float64(g.heldN))
	if m.Seq > g.maxSeq {
		g.maxSeq = m.Seq
	}
	applied, err := e.drainLocked(false)
	if err != nil {
		return applied, err
	}
	// Overflow backstop: the organic bound is (window+1) rounds ×
	// sensor count, but nothing forces well-formed stamps, so cap the
	// buffer and release ahead of the watermark when it bursts.
	if g.heldN > e.maxHeld() {
		e.met.forcedFlushes.Inc()
		n, err := e.flushRoundsLocked(g.maxSeq)
		applied += n
		if err != nil {
			return applied, err
		}
	}
	return applied, nil
}

func (e *Engine) maxHeld() int {
	return (e.window + 1) * (len(e.sensors) + 1)
}

// drainLocked releases every round the watermark has passed — or, for
// final=true, every held round. Callers hold e.mu.
func (e *Engine) drainLocked(final bool) (int, error) {
	g := e.gate
	target := g.maxSeq
	if !final {
		if g.maxSeq <= uint64(e.window) {
			return 0, nil
		}
		target = g.maxSeq - uint64(e.window)
	}
	if target <= g.released {
		return 0, nil
	}
	return e.flushRoundsLocked(target)
}

// flushRoundsLocked releases all held rounds ≤ target in (round,
// sensor-ID) order and advances the release watermark to target.
// Callers hold e.mu.
func (e *Engine) flushRoundsLocked(target uint64) (int, error) {
	g := e.gate
	rounds := make([]uint64, 0, len(g.held))
	for s := range g.held {
		if s <= target {
			rounds = append(rounds, s)
		}
	}
	sort.Slice(rounds, func(a, b int) bool { return rounds[a] < rounds[b] })
	applied := 0
	defer func() {
		e.met.pending.Set(float64(g.heldN))
		if applied > 0 {
			e.met.releaseBatch.Observe(float64(applied))
		}
	}()
	for _, s := range rounds {
		round := g.held[s]
		ids := make([]int, 0, len(round))
		for id := range round {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			m := round[id]
			if err := e.journalLocked(m); err != nil {
				// Leave the unjournaled remainder held; released stays
				// behind so nothing is lost.
				return applied, err
			}
			delete(round, id)
			g.heldN--
			_, _ = e.applyReleasedLocked(m)
			applied++
		}
		delete(g.held, s)
		g.released = s
	}
	if target > g.released {
		g.released = target
	}
	return applied, nil
}

// applyReleasedLocked applies one gate-released (already journaled)
// reading: advances the sensor's dedup cursor, accounts for skipped
// sequence numbers, and folds the reading in. Callers hold e.mu.
func (e *Engine) applyReleasedLocked(m Meas) (uint64, error) {
	cur := e.gate.cursor[m.SensorID]
	if m.Seq > cur {
		if cur > 0 && m.Seq > cur+1 {
			e.met.gapSkips.Add(m.Seq - cur - 1)
		}
		e.gate.cursor[m.SensorID] = m.Seq
	}
	return e.applyLocked(m)
}

// BatchResult classifies the readings of one submitted batch by
// outcome. It is the unit of acknowledgement shared by the HTTP ingest
// boundary, the zone mailbox and the engine itself, so every layer
// reports delivery identically.
type BatchResult struct {
	// Accepted counts readings the engine took: applied to the filter
	// or buffered in the reorder gate pending their round's release.
	Accepted int `json:"accepted"`
	// Duplicate counts readings the sequence gate suppressed as
	// at-least-once redelivery.
	Duplicate int `json:"duplicate"`
	// Rejected counts readings refused for cause (unknown sensor,
	// impossible CPM, quarantine).
	Rejected int `json:"rejected"`
}

// Add accumulates another batch's outcome counts into r.
func (r *BatchResult) Add(o BatchResult) {
	r.Accepted += o.Accepted
	r.Duplicate += o.Duplicate
	r.Rejected += o.Rejected
}

// Submit feeds a batch of measurements through the sequenced ingest
// path, classifying each reading's outcome. It is the synchronous
// batch face of IngestSeq — the zone event loop and single-engine
// callers (tests, the legacy daemon path) share it, so a zone's
// single-writer application order is exactly the batch order. ctx is
// checked between readings; a cancellation returns the partial result.
func (e *Engine) Submit(ctx context.Context, ms []Meas) (BatchResult, error) {
	var res BatchResult
	for _, m := range ms {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		switch _, err := e.IngestSeq(m); {
		case err == nil:
			res.Accepted++
		case errors.Is(err, ErrDuplicate):
			res.Duplicate++
		default:
			var je *JournalError
			if errors.As(err, &je) {
				// Storage refused the append: nothing about the reading
				// is wrong, so don't count it rejected — abort the batch
				// and surface the fault so the transport keeps its copy.
				return res, err
			}
			res.Rejected++
		}
	}
	return res, nil
}

// FlushPending releases every held round in canonical order — for
// end-of-stream or shutdown, when no further watermark advance will
// come. Returns the number of readings applied.
func (e *Engine) FlushPending() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drainLocked(true)
}

// Replay re-applies one journaled reading during recovery: it bypasses
// both journal and gate (the record was journaled in application
// order, post-gate) but advances the gate's cursors and watermark so
// redelivery of already-recovered readings deduplicates, and advances
// the journal offset accounting — replayed records are already
// durable. Delivery counters advance exactly as the live path's did
// for the same record, so a replica (or a recovered node) reports the
// same delivery picture as the node that journaled it.
func (e *Engine) Replay(m Meas) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journaled++
	e.met.journaled.Set(float64(e.journaled))
	if m.Seq > 0 {
		g := e.gate
		if m.Seq > g.released {
			g.released = m.Seq
		}
		if m.Seq > g.maxSeq {
			g.maxSeq = m.Seq
		}
		_, _ = e.applyReleasedLocked(m)
		return
	}
	e.met.unsequenced.Inc()
	_, _ = e.applyLocked(m)
}
