// Package eval scores localizer output against ground truth using the
// paper's conventions (Section VI): each estimate may explain at most
// one source; a source with no estimate within the match radius
// (40 length units in the paper) is a false negative; an estimate that
// cannot be traced to any source is a false positive; the localization
// error of a matched source is its distance to the matched estimate.
package eval

import (
	"math"
	"sort"

	"radloc/internal/core"
	"radloc/internal/radiation"
)

// Matching is the outcome of associating estimates with true sources.
type Matching struct {
	// Err[i] is the localization error of source i, or NaN if the
	// source is a false negative.
	Err []float64
	// EstOf[i] is the index (into the estimate slice) matched to source
	// i, or -1.
	EstOf []int
	// FalsePos is the number of estimates not matched to any source.
	FalsePos int
	// FalseNeg is the number of sources with no matched estimate.
	FalseNeg int
}

// MeanError returns the mean error over matched sources, or NaN when
// nothing matched.
func (m Matching) MeanError() float64 {
	var sum float64
	n := 0
	for _, e := range m.Err {
		if !math.IsNaN(e) {
			sum += e
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Match associates estimates to sources one-to-one by greedy globally
// nearest pairing, accepting only pairs within radius.
func Match(estimates []core.Estimate, sources []radiation.Source, radius float64) Matching {
	m := Matching{
		Err:   make([]float64, len(sources)),
		EstOf: make([]int, len(sources)),
	}
	for i := range m.Err {
		m.Err[i] = math.NaN()
		m.EstOf[i] = -1
	}

	type pair struct {
		d   float64
		src int
		est int
	}
	var pairs []pair
	for si, src := range sources {
		for ei, est := range estimates {
			if d := est.Pos.Dist(src.Pos); d <= radius {
				pairs = append(pairs, pair{d: d, src: si, est: ei})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })

	srcUsed := make([]bool, len(sources))
	estUsed := make([]bool, len(estimates))
	for _, p := range pairs {
		if srcUsed[p.src] || estUsed[p.est] {
			continue
		}
		srcUsed[p.src] = true
		estUsed[p.est] = true
		m.Err[p.src] = p.d
		m.EstOf[p.src] = p.est
	}
	for _, used := range srcUsed {
		if !used {
			m.FalseNeg++
		}
	}
	for _, used := range estUsed {
		if !used {
			m.FalsePos++
		}
	}
	return m
}

// Series aggregates a per-step, per-trial metric into a per-step mean,
// ignoring NaN entries (unmatched sources). rows[t][r] is trial r's
// value at step t.
func Series(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for t, row := range rows {
		var sum float64
		n := 0
		for _, v := range row {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n == 0 {
			out[t] = math.NaN()
		} else {
			out[t] = sum / float64(n)
		}
	}
	return out
}

// Normalized divides base[i] by with[i] elementwise: the paper's
// normalized localization error (values > 1 mean obstacles improved
// accuracy when base is the no-obstacle error). NaN propagates; a zero
// denominator yields +Inf.
func Normalized(base, with []float64) []float64 {
	n := len(base)
	if len(with) < n {
		n = len(with)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = base[i] / with[i]
	}
	return out
}

// MeanOverWindow averages xs[from:to] ignoring NaNs (the paper averages
// time steps 5–29 for its per-source obstacle-benefit figures).
func MeanOverWindow(xs []float64, from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(xs) {
		to = len(xs)
	}
	var sum float64
	n := 0
	for i := from; i < to; i++ {
		if !math.IsNaN(xs[i]) {
			sum += xs[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
