package eval

import "math"

// Operational latency metrics over per-step series — the quantities a
// deployment cares about beyond the paper's per-step plots: how long
// until the picture is right, and does it stay right.

// TimeToLock returns the first step from which the error series stays
// at or below threshold for the remainder of the run (NaN entries,
// i.e. steps where the source was unmatched, break a lock). Returns
// -1 if the series never locks.
func TimeToLock(errs []float64, threshold float64) int {
	lock := -1
	for t, e := range errs {
		if math.IsNaN(e) || e > threshold {
			lock = -1
			continue
		}
		if lock < 0 {
			lock = t
		}
	}
	return lock
}

// TimeToClear returns the first step from which the count series (false
// positives or negatives) stays at or below threshold for the rest of
// the run, or -1.
func TimeToClear(counts []float64, threshold float64) int {
	clear := -1
	for t, c := range counts {
		if math.IsNaN(c) || c > threshold {
			clear = -1
			continue
		}
		if clear < 0 {
			clear = t
		}
	}
	return clear
}

// Availability returns the fraction of steps with error at or below
// threshold (NaN counts as unavailable). Empty input yields 0.
func Availability(errs []float64, threshold float64) float64 {
	if len(errs) == 0 {
		return 0
	}
	good := 0
	for _, e := range errs {
		if !math.IsNaN(e) && e <= threshold {
			good++
		}
	}
	return float64(good) / float64(len(errs))
}
