package eval

import (
	"math"
	"testing"
)

func TestTimeToLock(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		name string
		errs []float64
		th   float64
		want int
	}{
		{"locks-mid", []float64{9, 7, 3, 2, 1, 2}, 4, 2},
		{"never", []float64{9, 9, 9}, 4, -1},
		{"relock-after-dropout", []float64{3, 2, nan, 2, 1}, 4, 3},
		{"relock-after-spike", []float64{3, 2, 8, 2, 1}, 4, 3},
		{"immediate", []float64{1, 1}, 4, 0},
		{"ends-unlocked", []float64{1, 1, 9}, 4, -1},
		{"empty", nil, 4, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TimeToLock(tt.errs, tt.th); got != tt.want {
				t.Errorf("TimeToLock = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestTimeToClear(t *testing.T) {
	if got := TimeToClear([]float64{4, 2, 0.5, 0.2, 0}, 0.5); got != 2 {
		t.Errorf("TimeToClear = %d, want 2", got)
	}
	if got := TimeToClear([]float64{0, 0, 3}, 0.5); got != -1 {
		t.Errorf("ends dirty: %d, want -1", got)
	}
	if got := TimeToClear([]float64{math.NaN(), 0}, 0.5); got != 1 {
		t.Errorf("NaN breaks a clear: %d, want 1", got)
	}
}

func TestAvailability(t *testing.T) {
	nan := math.NaN()
	if got := Availability([]float64{1, 2, 9, nan, 3}, 4); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Availability = %v, want 0.6", got)
	}
	if got := Availability(nil, 4); got != 0 {
		t.Errorf("empty availability = %v", got)
	}
	if got := Availability([]float64{1}, 4); got != 1 {
		t.Errorf("full availability = %v", got)
	}
}
