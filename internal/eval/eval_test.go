package eval

import (
	"math"
	"testing"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/radiation"
)

func est(x, y float64) core.Estimate {
	return core.Estimate{Pos: geometry.V(x, y), Strength: 10, Mass: 0.1}
}

func src(x, y float64) radiation.Source {
	return radiation.Source{Pos: geometry.V(x, y), Strength: 10}
}

func TestMatchPerfect(t *testing.T) {
	m := Match(
		[]core.Estimate{est(47, 72), est(80, 42)},
		[]radiation.Source{src(47, 71), src(81, 42)},
		40,
	)
	if m.FalsePos != 0 || m.FalseNeg != 0 {
		t.Errorf("FP=%d FN=%d, want 0,0", m.FalsePos, m.FalseNeg)
	}
	if math.Abs(m.Err[0]-1) > 1e-9 || math.Abs(m.Err[1]-1) > 1e-9 {
		t.Errorf("errors = %v, want [1 1]", m.Err)
	}
	if m.EstOf[0] != 0 || m.EstOf[1] != 1 {
		t.Errorf("assignment = %v", m.EstOf)
	}
}

func TestMatchOneToOne(t *testing.T) {
	// One estimate near two sources: it may explain only one; the other
	// source is a false negative.
	m := Match(
		[]core.Estimate{est(50, 50)},
		[]radiation.Source{src(52, 50), src(46, 50)},
		40,
	)
	if m.FalseNeg != 1 {
		t.Errorf("FN = %d, want 1", m.FalseNeg)
	}
	if m.FalsePos != 0 {
		t.Errorf("FP = %d, want 0", m.FalsePos)
	}
	// The estimate goes to the closer source (distance 2, not 4).
	if math.IsNaN(m.Err[0]) || math.Abs(m.Err[0]-2) > 1e-9 {
		t.Errorf("matched error = %v, want 2", m.Err[0])
	}
	if !math.IsNaN(m.Err[1]) {
		t.Errorf("unmatched source has error %v, want NaN", m.Err[1])
	}
}

func TestMatchRadiusCutoff(t *testing.T) {
	m := Match(
		[]core.Estimate{est(0, 0)},
		[]radiation.Source{src(0, 41)},
		40,
	)
	if m.FalsePos != 1 || m.FalseNeg != 1 {
		t.Errorf("FP=%d FN=%d, want 1,1 (distance 41 > radius 40)", m.FalsePos, m.FalseNeg)
	}
}

func TestMatchGreedyGlobalOrder(t *testing.T) {
	// est0 is close to src0 (d=1) and src1 (d=3); est1 only near src0
	// (d=2). Greedy global pairing: (est0,src0,d=1), then est1 cannot
	// take src0, src1 takes est... est1 is at distance sqrt(5²+?)...
	// Construct so the naive per-source nearest would double-book est0.
	estimates := []core.Estimate{est(50, 50), est(48, 50)}
	sources := []radiation.Source{src(51, 50), src(53, 50)}
	m := Match(estimates, sources, 40)
	if m.FalsePos != 0 || m.FalseNeg != 0 {
		t.Fatalf("FP=%d FN=%d", m.FalsePos, m.FalseNeg)
	}
	// d(e0,s0)=1 wins first; then s1 must take e1 (d=5).
	if m.EstOf[0] != 0 || m.EstOf[1] != 1 {
		t.Errorf("assignment = %v, want [0 1]", m.EstOf)
	}
	if math.Abs(m.Err[1]-5) > 1e-9 {
		t.Errorf("err[1] = %v, want 5", m.Err[1])
	}
}

func TestMatchEmptyInputs(t *testing.T) {
	m := Match(nil, []radiation.Source{src(1, 1)}, 40)
	if m.FalseNeg != 1 || m.FalsePos != 0 {
		t.Errorf("no estimates: FP=%d FN=%d", m.FalsePos, m.FalseNeg)
	}
	m = Match([]core.Estimate{est(1, 1)}, nil, 40)
	if m.FalsePos != 1 || m.FalseNeg != 0 {
		t.Errorf("no sources: FP=%d FN=%d", m.FalsePos, m.FalseNeg)
	}
	m = Match(nil, nil, 40)
	if m.FalsePos != 0 || m.FalseNeg != 0 || len(m.Err) != 0 {
		t.Errorf("empty: %+v", m)
	}
}

func TestMeanError(t *testing.T) {
	m := Matching{Err: []float64{2, math.NaN(), 4}}
	if got := m.MeanError(); math.Abs(got-3) > 1e-12 {
		t.Errorf("MeanError = %v, want 3", got)
	}
	all := Matching{Err: []float64{math.NaN()}}
	if got := all.MeanError(); !math.IsNaN(got) {
		t.Errorf("all-NaN MeanError = %v, want NaN", got)
	}
}

func TestSeries(t *testing.T) {
	rows := [][]float64{
		{1, 3},
		{math.NaN(), 4},
		{math.NaN(), math.NaN()},
	}
	got := Series(rows)
	if math.Abs(got[0]-2) > 1e-12 {
		t.Errorf("step 0 = %v", got[0])
	}
	if math.Abs(got[1]-4) > 1e-12 {
		t.Errorf("step 1 = %v", got[1])
	}
	if !math.IsNaN(got[2]) {
		t.Errorf("step 2 = %v, want NaN", got[2])
	}
}

func TestNormalized(t *testing.T) {
	got := Normalized([]float64{10, 6, 4}, []float64{5, 6, 8})
	want := []float64{2, 1, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Normalized[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Mismatched lengths truncate; division by zero yields +Inf.
	got = Normalized([]float64{1, 2, 3}, []float64{0})
	if len(got) != 1 || !math.IsInf(got[0], 1) {
		t.Errorf("zero-denominator Normalized = %v", got)
	}
}

func TestMeanOverWindow(t *testing.T) {
	xs := []float64{100, 2, 4, math.NaN(), 6}
	if got := MeanOverWindow(xs, 1, 5); math.Abs(got-4) > 1e-12 {
		t.Errorf("window mean = %v, want 4", got)
	}
	if got := MeanOverWindow(xs, -5, 99); math.Abs(got-28) > 1e-12 {
		t.Errorf("clamped window mean = %v, want 28", got)
	}
	if got := MeanOverWindow([]float64{math.NaN()}, 0, 1); !math.IsNaN(got) {
		t.Errorf("all-NaN window = %v", got)
	}
}
