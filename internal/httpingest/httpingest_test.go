package httpingest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/fusion"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/zone"
)

func testEngine(t testing.TB, seed uint64) *fusion.Engine {
	t.Helper()
	sc := scenario.A(50, false)
	cfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
	cfg.Localizer.Seed = seed
	cfg.Localizer.NumParticles = 300
	e, err := fusion.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testManager(t testing.TB, opts zone.Options) *zone.Manager {
	t.Helper()
	if opts.Factory == nil {
		opts.Factory = func(name string) (zone.Resources, error) {
			return zone.Resources{Engine: testEngine(t, 7)}, nil
		}
	}
	m, err := zone.NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// zonedMux mounts the handler the way the daemon does: the legacy
// route plus the zone-scoped one.
func zonedMux(h *Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/measurements", h)
	mux.Handle("/zones/{zone}/measurements", h)
	return mux
}

func post(t *testing.T, mux http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func decodeCounts(t *testing.T, w *httptest.ResponseRecorder) map[string]int {
	t.Helper()
	var out map[string]int
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad response body %q: %v", w.Body.String(), err)
	}
	return out
}

func TestZoneRouteLandsInNamedZone(t *testing.T) {
	m := testManager(t, zone.Options{})
	mux := zonedMux(NewZoned(ManagerResolver(m), Options{}))

	w := post(t, mux, "/zones/east/measurements", `[{"sensorId":0,"cpm":9},{"sensorId":1,"cpm":7}]`)
	if w.Code != http.StatusOK {
		t.Fatalf("zone route = %d: %s", w.Code, w.Body.String())
	}
	if got := decodeCounts(t, w)["accepted"]; got != 2 {
		t.Fatalf("accepted = %d, want 2", got)
	}
	if _, ok := m.Lookup("east"); !ok {
		t.Fatal("zone east was not created")
	}
	if _, ok := m.Lookup(zone.DefaultZone); ok {
		t.Fatal("default zone conjured by a named-zone post")
	}

	// The legacy route is the default zone.
	w = post(t, mux, "/measurements", `{"sensorId":0,"cpm":9}`)
	if w.Code != http.StatusOK {
		t.Fatalf("legacy route = %d: %s", w.Code, w.Body.String())
	}
	if _, ok := m.Lookup(zone.DefaultZone); !ok {
		t.Fatal("legacy route did not land in the default zone")
	}
	if east, _ := m.Lookup("east"); east.Engine().Snapshot().Ingested != 2 {
		t.Fatal("legacy post leaked into zone east")
	}
}

func TestZoneMismatchRefused(t *testing.T) {
	m := testManager(t, zone.Options{})
	mux := zonedMux(NewZoned(ManagerResolver(m), Options{}))
	w := post(t, mux, "/zones/east/measurements",
		`[{"sensorId":0,"cpm":9,"seq":1},{"sensorId":1,"cpm":7,"seq":1,"zone":"west"}]`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("mismatched zone = %d, want 400", w.Code)
	}
	// The whole batch was refused, including the well-stamped reading.
	if z, ok := m.Lookup("east"); ok && z.Engine().Snapshot().Ingested != 0 {
		t.Fatal("part of a refused batch was applied")
	}
	// A matching stamp is fine.
	w = post(t, mux, "/zones/east/measurements", `{"sensorId":0,"cpm":9,"seq":1,"zone":"east"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("matching zone stamp = %d: %s", w.Code, w.Body.String())
	}
}

func TestBadZoneName(t *testing.T) {
	m := testManager(t, zone.Options{})
	mux := zonedMux(NewZoned(ManagerResolver(m), Options{}))
	w := post(t, mux, "/zones/NOPE/measurements", `{"sensorId":0,"cpm":9}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad zone name = %d, want 400", w.Code)
	}
}

func TestSingleZoneDeploymentUnknownZone404(t *testing.T) {
	h := New(testEngine(t, 1), Options{})
	mux := zonedMux(h)
	if w := post(t, mux, "/zones/east/measurements", `{"sensorId":0,"cpm":9}`); w.Code != http.StatusNotFound {
		t.Fatalf("unknown zone on single-engine deployment = %d, want 404", w.Code)
	}
	if w := post(t, mux, "/measurements", `{"sensorId":0,"cpm":9}`); w.Code != http.StatusOK {
		t.Fatalf("default zone on single-engine deployment = %d", w.Code)
	}
}

func TestZoneLimit503(t *testing.T) {
	m := testManager(t, zone.Options{MaxZones: 1})
	mux := zonedMux(NewZoned(ManagerResolver(m), Options{}))
	if w := post(t, mux, "/zones/a/measurements", `{"sensorId":0,"cpm":9}`); w.Code != http.StatusOK {
		t.Fatalf("first zone = %d", w.Code)
	}
	if w := post(t, mux, "/zones/b/measurements", `{"sensorId":0,"cpm":9}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("zone over limit = %d, want 503", w.Code)
	}
}

func TestZoneMailboxFull429(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	m := testManager(t, zone.Options{
		Mailbox: 1,
		Factory: func(name string) (zone.Resources, error) {
			return zone.Resources{
				Engine: testEngine(t, 7),
				AfterBatch: func() {
					select {
					case entered <- struct{}{}:
					default:
					}
					<-release
				},
			}, nil
		},
	})
	mux := zonedMux(NewZoned(ManagerResolver(m), Options{}))
	// Wedge the zone's event loop, then stuff the mailbox with posts
	// whose context is already cancelled: each either occupies mailbox
	// space (and returns as soon as the cancellation is seen) or finds
	// the mailbox full — no post can block on the wedged loop.
	go post(t, mux, "/zones/slow/measurements", `{"sensorId":0,"cpm":9}`)
	<-entered
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 10; i++ {
		req := httptest.NewRequest(http.MethodPost, "/zones/slow/measurements",
			strings.NewReader(`{"sensorId":0,"cpm":9}`)).WithContext(cancelled)
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code == http.StatusTooManyRequests {
			if w.Header().Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			return
		}
	}
	t.Fatal("mailbox never reported full")
}

func TestPerZoneTokenBuckets(t *testing.T) {
	m := testManager(t, zone.Options{})
	fc := clock.NewFake(time.Unix(0, 0))
	mux := zonedMux(NewZoned(ManagerResolver(m), Options{RatePerSec: 0.001, Burst: 2, Clock: fc}))

	body := `{"sensorId":0,"cpm":9}`
	for i := 0; i < 2; i++ {
		if w := post(t, mux, "/zones/east/measurements", body); w.Code != http.StatusOK {
			t.Fatalf("east burst reading %d = %d", i, w.Code)
		}
	}
	if w := post(t, mux, "/zones/east/measurements", body); w.Code != http.StatusTooManyRequests {
		t.Fatalf("east over burst = %d, want 429", w.Code)
	}
	// The same sensor ID in another zone has its own bucket.
	if w := post(t, mux, "/zones/west/measurements", body); w.Code != http.StatusOK {
		t.Fatalf("west first reading = %d, want 200 (buckets must be per-zone)", w.Code)
	}
}

func TestBucketLRUCap(t *testing.T) {
	m := testManager(t, zone.Options{})
	fc := clock.NewFake(time.Unix(0, 0))
	h := NewZoned(ManagerResolver(m), Options{RatePerSec: 0.001, Burst: 1, MaxBuckets: 4, Clock: fc})
	mux := zonedMux(h)

	// Sensor 0 burns its single token.
	if w := post(t, mux, "/zones/east/measurements", `{"sensorId":0,"cpm":9,"seq":1}`); w.Code != http.StatusOK {
		t.Fatalf("first reading = %d", w.Code)
	}
	if w := post(t, mux, "/zones/east/measurements", `{"sensorId":0,"cpm":9,"seq":1}`); w.Code != http.StatusTooManyRequests {
		t.Fatalf("second reading = %d, want 429", w.Code)
	}
	// Four other sensors push sensor 0's bucket out of the LRU cap...
	for id := 1; id <= 4; id++ {
		post(t, mux, "/zones/east/measurements", fmt.Sprintf(`{"sensorId":%d,"cpm":9,"seq":1}`, id))
	}
	h.mu.Lock()
	n := len(h.buckets)
	h.mu.Unlock()
	if n != 4 {
		t.Fatalf("live buckets = %d, want the cap 4", n)
	}
	// ...so it re-admits with a fresh bucket (the documented trade:
	// bounded memory over perfect fairness for evicted IDs).
	if w := post(t, mux, "/zones/east/measurements", `{"sensorId":0,"cpm":9,"seq":2}`); w.Code != http.StatusOK {
		t.Fatalf("evicted bucket did not reset: %d", w.Code)
	}
}

func TestDuplicateRefundPerZone(t *testing.T) {
	m := testManager(t, zone.Options{})
	fc := clock.NewFake(time.Unix(0, 0))
	mux := zonedMux(NewZoned(ManagerResolver(m), Options{RatePerSec: 0.001, Burst: 2, Clock: fc}))
	// Two identical sequenced readings: the duplicate refunds its
	// token, so a third (fresh) reading still fits the burst of 2.
	if w := post(t, mux, "/zones/east/measurements", `{"sensorId":0,"cpm":9,"seq":1}`); w.Code != http.StatusOK {
		t.Fatalf("first = %d", w.Code)
	}
	w := post(t, mux, "/zones/east/measurements", `{"sensorId":0,"cpm":9,"seq":1}`)
	if w.Code != http.StatusOK || decodeCounts(t, w)["duplicate"] != 1 {
		t.Fatalf("redelivery = %d %s, want 200 with one duplicate", w.Code, w.Body.String())
	}
	if w := post(t, mux, "/zones/east/measurements", `{"sensorId":0,"cpm":9,"seq":2}`); w.Code != http.StatusOK {
		t.Fatalf("post-refund reading = %d, want 200", w.Code)
	}
}
