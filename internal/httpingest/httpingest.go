// Package httpingest is the fusion center's HTTP ingest boundary with
// backpressure: a handler for POST /measurements that bounds request
// bodies (413), refuses non-JSON payloads (415), sheds load with 429 +
// Retry-After when its admission queue is full, rate-limits chatty
// sensors with per-sensor token buckets, and feeds everything admitted
// through the engine's idempotent sequenced ingest.
//
// It lives in its own package (rather than inside cmd/radlocd) so the
// daemon, the transport ablation and the chaos tests all exercise the
// exact same admission path.
package httpingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/fusion"
)

// Measurement is the wire form of one reading — a single object or an
// array of them per request. Seq 0 means "unsequenced" and bypasses
// the engine's dedup/reorder gate (legacy feeders).
type Measurement struct {
	SensorID int    `json:"sensorId"`
	CPM      int    `json:"cpm"`
	Step     int    `json:"step,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
}

// Meas converts to the engine's ingest type.
func (m Measurement) Meas() fusion.Meas {
	return fusion.Meas{SensorID: m.SensorID, CPM: m.CPM, Step: m.Step, Seq: m.Seq}
}

// Options tunes a Handler.
type Options struct {
	// QueueDepth bounds concurrently admitted requests; one more and
	// the request is shed with 429 + Retry-After (default 64).
	QueueDepth int
	// MaxBody bounds the request body in bytes; over it is 413
	// (default 1 MiB).
	MaxBody int64
	// RetryAfter is the hint returned with 429 responses (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// RatePerSec, when positive, caps each sensor's sustained reading
	// rate with a token bucket of Burst capacity. 0 disables rate
	// limiting.
	RatePerSec float64
	// Burst is the token bucket capacity (default 4× RatePerSec,
	// minimum 1).
	Burst float64
	// Clock drives the token buckets (default wall clock).
	Clock clock.Clock
	// AfterBatch, when non-nil, runs after each admitted batch — the
	// daemon hooks its checkpoint cadence here.
	AfterBatch func()
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Burst <= 0 {
		o.Burst = 4 * o.RatePerSec
	}
	if o.Burst < 1 {
		o.Burst = 1
	}
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	return o
}

// bucket is one sensor's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Handler serves POST /measurements with admission control. Safe for
// concurrent use.
type Handler struct {
	engine *fusion.Engine
	opts   Options
	slots  chan struct{}

	mu      sync.Mutex
	buckets map[int]*bucket
	stats   fusion.IngressStats
}

// New builds the ingest handler over engine.
func New(engine *fusion.Engine, opts Options) *Handler {
	opts = opts.withDefaults()
	return &Handler{
		engine:  engine,
		opts:    opts,
		slots:   make(chan struct{}, opts.QueueDepth),
		buckets: make(map[int]*bucket),
	}
}

// Stats returns a copy of the admission counters.
func (h *Handler) Stats() fusion.IngressStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

func (h *Handler) count(f func(*fusion.IngressStats)) {
	h.mu.Lock()
	f(&h.stats)
	h.mu.Unlock()
}

// allow takes one token from the sensor's bucket, refilling by
// elapsed time first. Rate limiting off ⇒ always true.
func (h *Handler) allow(sensorID int) bool {
	if h.opts.RatePerSec <= 0 {
		return true
	}
	now := h.opts.Clock.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.buckets[sensorID]
	if b == nil {
		b = &bucket{tokens: h.opts.Burst, last: now}
		h.buckets[sensorID] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * h.opts.RatePerSec
		if b.tokens > h.opts.Burst {
			b.tokens = h.opts.Burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund returns one token to the sensor's bucket — used when a
// reading turns out to be dedup-suppressed redelivery, so retrying a
// partially-applied batch converges instead of burning its budget on
// the already-applied prefix.
func (h *Handler) refund(sensorID int) {
	if h.opts.RatePerSec <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if b := h.buckets[sensorID]; b != nil && b.tokens < h.opts.Burst {
		b.tokens++
	}
}

// retryAfterSeconds renders the Retry-After hint (whole seconds,
// minimum 1 — the header has no sub-second form).
func (h *Handler) retryAfterSeconds() string {
	secs := int((h.opts.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (h *Handler) shed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", h.retryAfterSeconds())
	http.Error(w, msg, http.StatusTooManyRequests)
}

// jsonContentType accepts application/json (any parameters) and an
// absent header; anything else is a 415.
func jsonContentType(ct string) bool {
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json"
}

// ServeHTTP implements the POST /measurements contract:
//
//	405 non-POST · 415 non-JSON Content-Type · 429+Retry-After queue
//	full or sensor rate-limited · 413 body over MaxBody · 400 parse
//	failure · 200 {"accepted","duplicate","rejected"}
//
// On 429 nothing before the refusing reading is rolled back; the
// client retries the whole batch and the engine's sequence gate
// suppresses the replayed prefix — partial application plus dedup is
// what makes shed-and-retry loss-free.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !jsonContentType(r.Header.Get("Content-Type")) {
		h.count(func(s *fusion.IngressStats) { s.BadContentType++ })
		http.Error(w, "Content-Type must be application/json", http.StatusUnsupportedMediaType)
		return
	}
	select {
	case h.slots <- struct{}{}:
		defer func() { <-h.slots }()
	default:
		h.count(func(s *fusion.IngressStats) { s.Shed429++ })
		h.shed(w, "ingest queue full, retry later")
		return
	}
	h.count(func(s *fusion.IngressStats) { s.Requests++ })

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, h.opts.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.count(func(s *fusion.IngressStats) { s.Oversized++ })
			http.Error(w, fmt.Sprintf("body over %d bytes", h.opts.MaxBody), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var batch []Measurement
	if err := json.Unmarshal(body, &batch); err != nil {
		var one Measurement
		if err := json.Unmarshal(body, &one); err != nil {
			h.count(func(s *fusion.IngressStats) { s.Malformed++ })
			http.Error(w, "want a measurement object or array", http.StatusBadRequest)
			return
		}
		batch = []Measurement{one}
	}

	accepted, duplicate, rejected := 0, 0, 0
	for i, m := range batch {
		if !h.allow(m.SensorID) {
			// Stop at the first rate-limited reading: the client
			// retries the whole batch and dedup absorbs the replayed
			// prefix. Count every reading not admitted.
			h.count(func(s *fusion.IngressStats) {
				s.RateLimited += uint64(len(batch) - i)
				s.Accepted += uint64(accepted)
				s.Duplicates += uint64(duplicate)
				s.Rejected += uint64(rejected)
			})
			if h.opts.AfterBatch != nil && accepted > 0 {
				h.opts.AfterBatch()
			}
			h.shed(w, fmt.Sprintf("sensor %d over rate limit", m.SensorID))
			return
		}
		switch _, err := h.engine.IngestSeq(m.Meas()); {
		case err == nil:
			accepted++
		case errors.Is(err, fusion.ErrDuplicate):
			duplicate++
			h.refund(m.SensorID)
		default:
			rejected++
		}
	}
	h.count(func(s *fusion.IngressStats) {
		s.Accepted += uint64(accepted)
		s.Duplicates += uint64(duplicate)
		s.Rejected += uint64(rejected)
	})
	if h.opts.AfterBatch != nil {
		h.opts.AfterBatch()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{
		"accepted":  accepted,
		"duplicate": duplicate,
		"rejected":  rejected,
	})
}
