// Package httpingest is the fusion center's HTTP ingest boundary with
// backpressure: a handler for POST /measurements (and its zone-scoped
// form POST /zones/{zone}/measurements) that bounds request bodies
// (413), refuses non-JSON payloads (415), sheds load with 429 +
// Retry-After when its admission queue is full, rate-limits chatty
// sensors with per-(zone, sensor) token buckets, and feeds everything
// admitted through a Sink — a single fusion engine's idempotent
// sequenced ingest, or a zone manager routing to sharded engines.
//
// It lives in its own package (rather than inside cmd/radlocd) so the
// daemon, the transport ablation and the chaos tests all exercise the
// exact same admission path.
package httpingest

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/fusion"
	"radloc/internal/obs"
	"radloc/internal/zone"
)

// Measurement is the wire form of one reading — a single object or an
// array of them per request. Seq 0 means "unsequenced" and bypasses
// the engine's dedup/reorder gate (legacy feeders).
type Measurement struct {
	SensorID int    `json:"sensorId"`       // deployment index of the reporting sensor
	CPM      int    `json:"cpm"`            // Geiger counts per minute for this interval
	Step     int    `json:"step,omitempty"` // discrete time step of the reading
	Seq      uint64 `json:"seq,omitempty"`  // per-sensor monotone sequence number; 0 = unsequenced
	// Zone names the zone this reading belongs to ("" = the default
	// zone). On the zone-scoped HTTP route it must match the route's
	// zone or the request is a 400; in pipe mode it routes the record.
	Zone string `json:"zone,omitempty"`
}

// Sink is where admitted batches go: a *fusion.Engine (its Submit
// method satisfies this directly) or a zone's mailbox. The handler
// resolves one Sink per request from the request's zone.
type Sink interface {
	// Submit applies one batch, classifying each reading's outcome.
	Submit(ctx context.Context, ms []fusion.Meas) (fusion.BatchResult, error)
}

// Resolver maps a validated zone name to its Sink. Returning an error
// refuses the request: ErrNoSuchZone maps to 404, zone.ErrZoneLimit
// to 503, zone.ErrBadName to 400; anything else is a 500.
type Resolver func(zoneName string) (Sink, error)

// ErrNoSuchZone is returned by a Resolver that serves a fixed zone
// set (the single-engine deployment) for any other name — HTTP 404.
var ErrNoSuchZone = errors.New("httpingest: no such zone")

// ErrNotWritable is returned by a Sink whose zone stopped accepting
// writes on this node between request admission and the apply (for
// example, a cluster demotion mid-flight). It maps to 503 +
// Retry-After: the data is fine and the caller should keep its copy
// and retry — by then against the new primary.
var ErrNotWritable = errors.New("httpingest: zone not writable on this node")

// managerSink binds one zone name to a manager, deferring zone
// creation to the first submitted batch.
type managerSink struct {
	m    *zone.Manager
	name string
}

// Submit routes the batch through the manager, which creates or
// recreates the zone as needed.
func (s managerSink) Submit(ctx context.Context, ms []fusion.Meas) (fusion.BatchResult, error) {
	return s.m.Submit(ctx, s.name, ms)
}

// ManagerResolver adapts a zone manager into a Resolver: every valid
// zone name resolves, and the zone itself is created lazily when its
// first batch arrives.
func ManagerResolver(m *zone.Manager) Resolver {
	return func(name string) (Sink, error) {
		return managerSink{m: m, name: name}, nil
	}
}

// Meas converts to the engine's ingest type.
func (m Measurement) Meas() fusion.Meas {
	return fusion.Meas{SensorID: m.SensorID, CPM: m.CPM, Step: m.Step, Seq: m.Seq}
}

// Options tunes a Handler.
type Options struct {
	// QueueDepth bounds concurrently admitted requests; one more and
	// the request is shed with 429 + Retry-After (default 64).
	QueueDepth int
	// MaxBody bounds the request body in bytes; over it is 413
	// (default 1 MiB).
	MaxBody int64
	// RetryAfter is the hint returned with 429 responses (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// RatePerSec, when positive, caps each sensor's sustained reading
	// rate with a token bucket of Burst capacity, kept per (zone,
	// sensor) so one zone's chatter cannot starve another's quota. 0
	// disables rate limiting.
	RatePerSec float64
	// Burst is the token bucket capacity (default 4× RatePerSec,
	// minimum 1).
	Burst float64
	// MaxBuckets caps the live (zone, sensor) token buckets; the least
	// recently used is evicted past it (default 16384), so spoofed IDs
	// cannot grow the map without bound.
	MaxBuckets int
	// Clock drives the token buckets (default wall clock).
	Clock clock.Clock
	// AfterBatch, when non-nil, runs after each admitted batch — the
	// daemon hooks its checkpoint cadence here.
	AfterBatch func()
	// Metrics, when non-nil, is the registry the admission counters
	// live on (radloc_ingest_*). The counters ARE the handler's
	// accounting — Stats() reads them — so /metrics and /statez can
	// never disagree. nil gets a private registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Burst <= 0 {
		o.Burst = 4 * o.RatePerSec
	}
	if o.Burst < 1 {
		o.Burst = 1
	}
	if o.MaxBuckets <= 0 {
		o.MaxBuckets = 16384
	}
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	return o
}

// bucketKey identifies one token bucket: rate limits are scoped per
// zone so sensor IDs reused across zones stay independent.
type bucketKey struct {
	zone   string
	sensor int
}

// bucket is one (zone, sensor) pair's token bucket, threaded on the
// handler's LRU list.
type bucket struct {
	key    bucketKey
	tokens float64
	last   time.Time
}

// ingestMetrics is the handler's registry wiring — one counter per
// IngressStats field plus a queue-occupancy gauge and a request
// latency histogram. These collectors are the handler's only
// accounting; Stats() derives the wire struct from them.
type ingestMetrics struct {
	requests, accepted, duplicates, rejected *obs.Counter
	shed429, shed507, rateLimited, oversized *obs.Counter
	badContentType, malformed                *obs.Counter
	inflight                                 *obs.Gauge
	requestSeconds                           *obs.Histogram
}

func newIngestMetrics(r *obs.Registry) *ingestMetrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	return &ingestMetrics{
		requests: r.Counter("radloc_ingest_requests_total",
			"POST /measurements requests admitted past the method/Content-Type checks."),
		accepted: r.Counter("radloc_ingest_accepted_total",
			"Readings the engine took (applied or buffered in the reorder gate)."),
		duplicates: r.Counter("radloc_ingest_duplicates_total",
			"Readings the sequence gate suppressed as redelivery."),
		rejected: r.Counter("radloc_ingest_rejected_total",
			"Readings refused for cause (unknown sensor, impossible CPM, quarantine)."),
		shed429: r.Counter("radloc_ingest_shed_429_total",
			"Requests shed at the door because the admission queue was full (HTTP 429)."),
		shed507: r.Counter("radloc_ingest_shed_507_total",
			"Requests refused because the zone journal could not be written (HTTP 507)."),
		rateLimited: r.Counter("radloc_ingest_rate_limited_total",
			"Readings refused by a per-sensor token bucket (HTTP 429 + Retry-After)."),
		oversized: r.Counter("radloc_ingest_oversized_total",
			"Request bodies over the byte bound (HTTP 413)."),
		badContentType: r.Counter("radloc_ingest_bad_content_type_total",
			"Requests with a non-JSON Content-Type (HTTP 415)."),
		malformed: r.Counter("radloc_ingest_malformed_total",
			"Request bodies that did not parse (HTTP 400)."),
		inflight: r.Gauge("radloc_ingest_inflight_requests",
			"Requests currently holding an admission-queue slot."),
		requestSeconds: r.Histogram("radloc_ingest_request_seconds",
			"Wall-clock seconds per admitted POST /measurements request.", nil),
	}
}

// Handler serves POST /measurements (and the zone-scoped route) with
// admission control. Safe for concurrent use.
type Handler struct {
	resolve Resolver
	opts    Options
	slots   chan struct{}
	met     *ingestMetrics

	mu      sync.Mutex
	buckets map[bucketKey]*list.Element
	order   *list.List // LRU order: front = most recently used bucket
}

// New builds the ingest handler over a single engine: the classic
// one-zone deployment, where only the default zone exists and any
// other zone name is a 404.
func New(engine *fusion.Engine, opts Options) *Handler {
	return NewZoned(func(name string) (Sink, error) {
		if name != zone.DefaultZone {
			return nil, fmt.Errorf("%w: %q (single-zone deployment)", ErrNoSuchZone, name)
		}
		return engine, nil
	}, opts)
}

// NewZoned builds the ingest handler over a zone resolver — the
// sharded deployment, where the request's zone picks the engine.
func NewZoned(resolve Resolver, opts Options) *Handler {
	opts = opts.withDefaults()
	return &Handler{
		resolve: resolve,
		opts:    opts,
		slots:   make(chan struct{}, opts.QueueDepth),
		met:     newIngestMetrics(opts.Metrics),
		buckets: make(map[bucketKey]*list.Element),
		order:   list.New(),
	}
}

// Stats assembles the wire-format admission counters from the
// registry collectors — the same numbers GET /metrics renders.
func (h *Handler) Stats() fusion.IngressStats {
	m := h.met
	return fusion.IngressStats{
		Requests:       m.requests.Value(),
		Accepted:       m.accepted.Value(),
		Duplicates:     m.duplicates.Value(),
		Rejected:       m.rejected.Value(),
		Shed429:        m.shed429.Value(),
		Shed507:        m.shed507.Value(),
		RateLimited:    m.rateLimited.Value(),
		Oversized:      m.oversized.Value(),
		BadContentType: m.badContentType.Value(),
		Malformed:      m.malformed.Value(),
	}
}

// bucketFor returns the key's bucket, creating it (and evicting the
// least recently used one past MaxBuckets) as needed, and marks it
// most recently used. Callers hold h.mu.
func (h *Handler) bucketFor(key bucketKey, now time.Time) *bucket {
	if el, ok := h.buckets[key]; ok {
		h.order.MoveToFront(el)
		return el.Value.(*bucket)
	}
	if len(h.buckets) >= h.opts.MaxBuckets {
		oldest := h.order.Back()
		h.order.Remove(oldest)
		delete(h.buckets, oldest.Value.(*bucket).key)
	}
	b := &bucket{key: key, tokens: h.opts.Burst, last: now}
	h.buckets[key] = h.order.PushFront(b)
	return b
}

// allow takes one token from the (zone, sensor) bucket, refilling by
// elapsed time first. Rate limiting off ⇒ always true.
func (h *Handler) allow(zoneName string, sensorID int) bool {
	if h.opts.RatePerSec <= 0 {
		return true
	}
	now := h.opts.Clock.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.bucketFor(bucketKey{zone: zoneName, sensor: sensorID}, now)
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * h.opts.RatePerSec
		if b.tokens > h.opts.Burst {
			b.tokens = h.opts.Burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund returns one token to the (zone, sensor) bucket — used when a
// reading turns out to be dedup-suppressed redelivery, so retrying a
// partially-applied batch converges instead of burning its budget on
// the already-applied prefix.
func (h *Handler) refund(zoneName string, sensorID int) {
	if h.opts.RatePerSec <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.buckets[bucketKey{zone: zoneName, sensor: sensorID}]; ok {
		if b := el.Value.(*bucket); b.tokens < h.opts.Burst {
			b.tokens++
		}
	}
}

// retryAfterSeconds renders the Retry-After hint (whole seconds,
// minimum 1 — the header has no sub-second form).
func (h *Handler) retryAfterSeconds() string {
	secs := int((h.opts.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (h *Handler) shed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", h.retryAfterSeconds())
	http.Error(w, msg, http.StatusTooManyRequests)
}

// jsonContentType accepts application/json (any parameters) and an
// absent header; anything else is a 415.
func jsonContentType(ct string) bool {
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json"
}

// requestZone extracts the request's zone: the {zone} path value on
// the zone-scoped route, the default zone on the legacy one.
func requestZone(r *http.Request) string {
	if z := r.PathValue("zone"); z != "" {
		return z
	}
	return zone.DefaultZone
}

// sinkStatus maps a Resolver/Sink error to its HTTP status.
func sinkStatus(err error) int {
	var je *fusion.JournalError
	switch {
	case errors.Is(err, ErrNoSuchZone):
		return http.StatusNotFound
	case errors.Is(err, zone.ErrBadName):
		return http.StatusBadRequest
	case errors.Is(err, zone.ErrMailboxFull):
		return http.StatusTooManyRequests
	case errors.Is(err, zone.ErrZoneLimit), errors.Is(err, zone.ErrManagerClosed), errors.Is(err, zone.ErrZoneClosed),
		errors.Is(err, ErrNotWritable):
		return http.StatusServiceUnavailable
	case errors.As(err, &je):
		// The zone's write-ahead journal refused the append: the disk,
		// not the data, is the problem. 507 tells the agent its batch
		// was not lost to rejection — keep the spooled copy, retry.
		return http.StatusInsufficientStorage
	}
	return http.StatusInternalServerError
}

// failSink writes the response for a sink error. The shedding
// statuses — 429 (overload), 503 (shutting down / zone limit) and 507
// (storage degraded) — all carry Retry-After, so a well-behaved agent
// holds its spooled copy and retries instead of counting the batch
// lost; everything else is a plain error response.
func (h *Handler) failSink(w http.ResponseWriter, err error) {
	code := sinkStatus(err)
	switch code {
	case http.StatusTooManyRequests:
		h.shed(w, err.Error())
	case http.StatusServiceUnavailable, http.StatusInsufficientStorage:
		if code == http.StatusInsufficientStorage {
			h.met.shed507.Inc()
		}
		w.Header().Set("Retry-After", h.retryAfterSeconds())
		http.Error(w, err.Error(), code)
	default:
		http.Error(w, err.Error(), code)
	}
}

// ServeHTTP implements the POST /measurements contract, identically
// on the legacy route and the zone-scoped POST /zones/{zone}/
// measurements form (the legacy route IS the default zone):
//
//	405 non-POST · 415 non-JSON Content-Type · 429+Retry-After queue
//	full, zone mailbox full, or sensor rate-limited · 413 body over
//	MaxBody · 400 parse failure, bad zone name, or a reading whose
//	zone field contradicts the route · 404 unknown zone (fixed-zone
//	deployments) · 503 zone limit reached or shutting down ·
//	507+Retry-After zone journal unwritable (storage degraded; the
//	agent keeps its spooled copy) · 200 {"accepted","duplicate",
//	"rejected"}
//
// On 429 nothing before the refusing reading is rolled back; the
// client retries the whole batch and the engine's sequence gate
// suppresses the replayed prefix — partial application plus dedup is
// what makes shed-and-retry loss-free.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !jsonContentType(r.Header.Get("Content-Type")) {
		h.met.badContentType.Inc()
		http.Error(w, "Content-Type must be application/json", http.StatusUnsupportedMediaType)
		return
	}
	zoneName := requestZone(r)
	if err := zone.ValidateName(zoneName); err != nil {
		h.met.malformed.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case h.slots <- struct{}{}:
		h.met.inflight.Add(1)
		defer func() {
			h.met.inflight.Add(-1)
			<-h.slots
		}()
	default:
		h.met.shed429.Inc()
		h.shed(w, "ingest queue full, retry later")
		return
	}
	h.met.requests.Inc()
	t0 := time.Now()
	defer func() { h.met.requestSeconds.Observe(time.Since(t0).Seconds()) }()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, h.opts.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.met.oversized.Inc()
			http.Error(w, fmt.Sprintf("body over %d bytes", h.opts.MaxBody), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var batch []Measurement
	if err := json.Unmarshal(body, &batch); err != nil {
		var one Measurement
		if err := json.Unmarshal(body, &one); err != nil {
			h.met.malformed.Inc()
			http.Error(w, "want a measurement object or array", http.StatusBadRequest)
			return
		}
		batch = []Measurement{one}
	}
	for _, m := range batch {
		// A reading stamped for another zone must not be silently
		// folded into this one: refuse the whole batch before any of
		// it is applied.
		if m.Zone != "" && m.Zone != zoneName {
			h.met.malformed.Inc()
			http.Error(w, fmt.Sprintf("measurement zone %q contradicts request zone %q", m.Zone, zoneName),
				http.StatusBadRequest)
			return
		}
	}
	sink, err := h.resolve(zoneName)
	if err != nil {
		h.failSink(w, err)
		return
	}

	var res fusion.BatchResult
	if h.opts.RatePerSec > 0 {
		var handled bool
		res, handled = h.submitRateLimited(w, r.Context(), sink, zoneName, batch)
		if handled {
			return // response already written
		}
	} else {
		ms := make([]fusion.Meas, len(batch))
		for i, m := range batch {
			ms[i] = m.Meas()
		}
		res, err = sink.Submit(r.Context(), ms)
		if err != nil {
			h.record(res)
			h.failSink(w, err)
			return
		}
	}
	h.record(res)
	if h.opts.AfterBatch != nil {
		h.opts.AfterBatch()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{
		"accepted":  res.Accepted,
		"duplicate": res.Duplicate,
		"rejected":  res.Rejected,
	})
}

// record folds one batch outcome into the admission counters.
func (h *Handler) record(res fusion.BatchResult) {
	h.met.accepted.Add(uint64(res.Accepted))
	h.met.duplicates.Add(uint64(res.Duplicate))
	h.met.rejected.Add(uint64(res.Rejected))
}

// submitRateLimited is the rate-limited submission path: each reading
// pays a (zone, sensor) token before it is offered, readings are
// submitted one at a time so a duplicate can refund its exact bucket,
// and the first refused reading sheds the remainder with 429 (the
// client retries the whole batch; dedup absorbs the replayed prefix).
// handled=true means the response was already written.
func (h *Handler) submitRateLimited(w http.ResponseWriter, ctx context.Context, sink Sink, zoneName string, batch []Measurement) (res fusion.BatchResult, handled bool) {
	for i, m := range batch {
		if !h.allow(zoneName, m.SensorID) {
			h.met.rateLimited.Add(uint64(len(batch) - i))
			h.record(res)
			if h.opts.AfterBatch != nil && res.Accepted > 0 {
				h.opts.AfterBatch()
			}
			h.shed(w, fmt.Sprintf("sensor %d over rate limit", m.SensorID))
			return res, true
		}
		one, err := sink.Submit(ctx, []fusion.Meas{m.Meas()})
		if err != nil {
			h.record(res)
			h.failSink(w, err)
			return res, true
		}
		if one.Duplicate > 0 {
			h.refund(zoneName, m.SensorID)
		}
		res.Add(one)
	}
	return res, false
}
