// Package httpingest is the fusion center's HTTP ingest boundary with
// backpressure: a handler for POST /measurements that bounds request
// bodies (413), refuses non-JSON payloads (415), sheds load with 429 +
// Retry-After when its admission queue is full, rate-limits chatty
// sensors with per-sensor token buckets, and feeds everything admitted
// through the engine's idempotent sequenced ingest.
//
// It lives in its own package (rather than inside cmd/radlocd) so the
// daemon, the transport ablation and the chaos tests all exercise the
// exact same admission path.
package httpingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/fusion"
	"radloc/internal/obs"
)

// Measurement is the wire form of one reading — a single object or an
// array of them per request. Seq 0 means "unsequenced" and bypasses
// the engine's dedup/reorder gate (legacy feeders).
type Measurement struct {
	SensorID int    `json:"sensorId"`       // deployment index of the reporting sensor
	CPM      int    `json:"cpm"`            // Geiger counts per minute for this interval
	Step     int    `json:"step,omitempty"` // discrete time step of the reading
	Seq      uint64 `json:"seq,omitempty"`  // per-sensor monotone sequence number; 0 = unsequenced
}

// Meas converts to the engine's ingest type.
func (m Measurement) Meas() fusion.Meas {
	return fusion.Meas{SensorID: m.SensorID, CPM: m.CPM, Step: m.Step, Seq: m.Seq}
}

// Options tunes a Handler.
type Options struct {
	// QueueDepth bounds concurrently admitted requests; one more and
	// the request is shed with 429 + Retry-After (default 64).
	QueueDepth int
	// MaxBody bounds the request body in bytes; over it is 413
	// (default 1 MiB).
	MaxBody int64
	// RetryAfter is the hint returned with 429 responses (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// RatePerSec, when positive, caps each sensor's sustained reading
	// rate with a token bucket of Burst capacity. 0 disables rate
	// limiting.
	RatePerSec float64
	// Burst is the token bucket capacity (default 4× RatePerSec,
	// minimum 1).
	Burst float64
	// Clock drives the token buckets (default wall clock).
	Clock clock.Clock
	// AfterBatch, when non-nil, runs after each admitted batch — the
	// daemon hooks its checkpoint cadence here.
	AfterBatch func()
	// Metrics, when non-nil, is the registry the admission counters
	// live on (radloc_ingest_*). The counters ARE the handler's
	// accounting — Stats() reads them — so /metrics and /statez can
	// never disagree. nil gets a private registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Burst <= 0 {
		o.Burst = 4 * o.RatePerSec
	}
	if o.Burst < 1 {
		o.Burst = 1
	}
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	return o
}

// bucket is one sensor's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// ingestMetrics is the handler's registry wiring — one counter per
// IngressStats field plus a queue-occupancy gauge and a request
// latency histogram. These collectors are the handler's only
// accounting; Stats() derives the wire struct from them.
type ingestMetrics struct {
	requests, accepted, duplicates, rejected *obs.Counter
	shed429, rateLimited, oversized          *obs.Counter
	badContentType, malformed                *obs.Counter
	inflight                                 *obs.Gauge
	requestSeconds                           *obs.Histogram
}

func newIngestMetrics(r *obs.Registry) *ingestMetrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	return &ingestMetrics{
		requests: r.Counter("radloc_ingest_requests_total",
			"POST /measurements requests admitted past the method/Content-Type checks."),
		accepted: r.Counter("radloc_ingest_accepted_total",
			"Readings the engine took (applied or buffered in the reorder gate)."),
		duplicates: r.Counter("radloc_ingest_duplicates_total",
			"Readings the sequence gate suppressed as redelivery."),
		rejected: r.Counter("radloc_ingest_rejected_total",
			"Readings refused for cause (unknown sensor, impossible CPM, quarantine)."),
		shed429: r.Counter("radloc_ingest_shed_429_total",
			"Requests shed at the door because the admission queue was full (HTTP 429)."),
		rateLimited: r.Counter("radloc_ingest_rate_limited_total",
			"Readings refused by a per-sensor token bucket (HTTP 429 + Retry-After)."),
		oversized: r.Counter("radloc_ingest_oversized_total",
			"Request bodies over the byte bound (HTTP 413)."),
		badContentType: r.Counter("radloc_ingest_bad_content_type_total",
			"Requests with a non-JSON Content-Type (HTTP 415)."),
		malformed: r.Counter("radloc_ingest_malformed_total",
			"Request bodies that did not parse (HTTP 400)."),
		inflight: r.Gauge("radloc_ingest_inflight_requests",
			"Requests currently holding an admission-queue slot."),
		requestSeconds: r.Histogram("radloc_ingest_request_seconds",
			"Wall-clock seconds per admitted POST /measurements request.", nil),
	}
}

// Handler serves POST /measurements with admission control. Safe for
// concurrent use.
type Handler struct {
	engine *fusion.Engine
	opts   Options
	slots  chan struct{}
	met    *ingestMetrics

	mu      sync.Mutex
	buckets map[int]*bucket
}

// New builds the ingest handler over engine.
func New(engine *fusion.Engine, opts Options) *Handler {
	opts = opts.withDefaults()
	return &Handler{
		engine:  engine,
		opts:    opts,
		slots:   make(chan struct{}, opts.QueueDepth),
		met:     newIngestMetrics(opts.Metrics),
		buckets: make(map[int]*bucket),
	}
}

// Stats assembles the wire-format admission counters from the
// registry collectors — the same numbers GET /metrics renders.
func (h *Handler) Stats() fusion.IngressStats {
	m := h.met
	return fusion.IngressStats{
		Requests:       m.requests.Value(),
		Accepted:       m.accepted.Value(),
		Duplicates:     m.duplicates.Value(),
		Rejected:       m.rejected.Value(),
		Shed429:        m.shed429.Value(),
		RateLimited:    m.rateLimited.Value(),
		Oversized:      m.oversized.Value(),
		BadContentType: m.badContentType.Value(),
		Malformed:      m.malformed.Value(),
	}
}

// allow takes one token from the sensor's bucket, refilling by
// elapsed time first. Rate limiting off ⇒ always true.
func (h *Handler) allow(sensorID int) bool {
	if h.opts.RatePerSec <= 0 {
		return true
	}
	now := h.opts.Clock.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.buckets[sensorID]
	if b == nil {
		b = &bucket{tokens: h.opts.Burst, last: now}
		h.buckets[sensorID] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * h.opts.RatePerSec
		if b.tokens > h.opts.Burst {
			b.tokens = h.opts.Burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund returns one token to the sensor's bucket — used when a
// reading turns out to be dedup-suppressed redelivery, so retrying a
// partially-applied batch converges instead of burning its budget on
// the already-applied prefix.
func (h *Handler) refund(sensorID int) {
	if h.opts.RatePerSec <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if b := h.buckets[sensorID]; b != nil && b.tokens < h.opts.Burst {
		b.tokens++
	}
}

// retryAfterSeconds renders the Retry-After hint (whole seconds,
// minimum 1 — the header has no sub-second form).
func (h *Handler) retryAfterSeconds() string {
	secs := int((h.opts.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (h *Handler) shed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", h.retryAfterSeconds())
	http.Error(w, msg, http.StatusTooManyRequests)
}

// jsonContentType accepts application/json (any parameters) and an
// absent header; anything else is a 415.
func jsonContentType(ct string) bool {
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json"
}

// ServeHTTP implements the POST /measurements contract:
//
//	405 non-POST · 415 non-JSON Content-Type · 429+Retry-After queue
//	full or sensor rate-limited · 413 body over MaxBody · 400 parse
//	failure · 200 {"accepted","duplicate","rejected"}
//
// On 429 nothing before the refusing reading is rolled back; the
// client retries the whole batch and the engine's sequence gate
// suppresses the replayed prefix — partial application plus dedup is
// what makes shed-and-retry loss-free.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !jsonContentType(r.Header.Get("Content-Type")) {
		h.met.badContentType.Inc()
		http.Error(w, "Content-Type must be application/json", http.StatusUnsupportedMediaType)
		return
	}
	select {
	case h.slots <- struct{}{}:
		h.met.inflight.Add(1)
		defer func() {
			h.met.inflight.Add(-1)
			<-h.slots
		}()
	default:
		h.met.shed429.Inc()
		h.shed(w, "ingest queue full, retry later")
		return
	}
	h.met.requests.Inc()
	t0 := time.Now()
	defer func() { h.met.requestSeconds.Observe(time.Since(t0).Seconds()) }()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, h.opts.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.met.oversized.Inc()
			http.Error(w, fmt.Sprintf("body over %d bytes", h.opts.MaxBody), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var batch []Measurement
	if err := json.Unmarshal(body, &batch); err != nil {
		var one Measurement
		if err := json.Unmarshal(body, &one); err != nil {
			h.met.malformed.Inc()
			http.Error(w, "want a measurement object or array", http.StatusBadRequest)
			return
		}
		batch = []Measurement{one}
	}

	accepted, duplicate, rejected := 0, 0, 0
	for i, m := range batch {
		if !h.allow(m.SensorID) {
			// Stop at the first rate-limited reading: the client
			// retries the whole batch and dedup absorbs the replayed
			// prefix. Count every reading not admitted.
			h.met.rateLimited.Add(uint64(len(batch) - i))
			h.met.accepted.Add(uint64(accepted))
			h.met.duplicates.Add(uint64(duplicate))
			h.met.rejected.Add(uint64(rejected))
			if h.opts.AfterBatch != nil && accepted > 0 {
				h.opts.AfterBatch()
			}
			h.shed(w, fmt.Sprintf("sensor %d over rate limit", m.SensorID))
			return
		}
		switch _, err := h.engine.IngestSeq(m.Meas()); {
		case err == nil:
			accepted++
		case errors.Is(err, fusion.ErrDuplicate):
			duplicate++
			h.refund(m.SensorID)
		default:
			rejected++
		}
	}
	h.met.accepted.Add(uint64(accepted))
	h.met.duplicates.Add(uint64(duplicate))
	h.met.rejected.Add(uint64(rejected))
	if h.opts.AfterBatch != nil {
		h.opts.AfterBatch()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{
		"accepted":  accepted,
		"duplicate": duplicate,
		"rejected":  rejected,
	})
}
