// Package diagnose runs posterior-predictive checks on a finished
// localization: given the recovered source estimates, how well do the
// predicted sensor rates explain the observed counts?
//
// The filter's likelihood deliberately assumes free space (obstacle
// parameters are unknown, Section IV), so shielded sensors read LESS
// than the free-space prediction of the recovered sources. The
// per-sensor standardized residuals exposed here make that mismatch
// measurable: a strongly negative residual cluster between a source and
// a sensor is the signature of an unmodeled obstacle — turning the
// paper's "we don't need to know the obstacles" into a tool that can
// point at where they are.
package diagnose

import (
	"errors"
	"math"
	"sort"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/sensor"
)

// Reading aggregates one sensor's observations.
type Reading struct {
	Sensor   sensor.Sensor
	TotalCPM int // summed counts over Count intervals
	Count    int // number of one-minute intervals observed
}

// Residual is one sensor's posterior-predictive check.
type Residual struct {
	SensorID int
	Pos      geometry.Vec
	// Expected is the predicted mean CPM under the recovered sources
	// (free-space model); Observed is the empirical mean CPM.
	Expected float64
	Observed float64
	// Z is the standardized residual (Observed−Expected)/√(Expected/n):
	// |Z| ≳ 3 flags a sensor the model cannot explain.
	Z float64
}

// Report is the outcome of a Check.
type Report struct {
	Residuals []Residual // sorted by |Z| descending
	// RMSZ is the root-mean-square standardized residual; ≈ 1 means
	// the recovered sources explain the data at the Poisson noise
	// floor.
	RMSZ float64
	// Suspicious lists sensor IDs with |Z| ≥ the configured threshold.
	Suspicious []int
}

// ErrNoData is returned when there is nothing to check.
var ErrNoData = errors.New("diagnose: no readings")

// Check compares the observations against the estimates' free-space
// predictions. zThreshold ≤ 0 defaults to 3.
func Check(readings []Reading, estimates []core.Estimate, zThreshold float64) (Report, error) {
	if len(readings) == 0 {
		return Report{}, ErrNoData
	}
	if zThreshold <= 0 {
		zThreshold = 3
	}
	sources := Sources(estimates)

	rep := Report{Residuals: make([]Residual, 0, len(readings))}
	var sumZ2 float64
	for _, r := range readings {
		n := r.Count
		if n <= 0 {
			n = 1
		}
		expected := radiation.ExpectedCPM(r.Sensor.Pos, r.Sensor.Efficiency, r.Sensor.Background, sources, nil)
		observed := float64(r.TotalCPM) / float64(n)
		sd := math.Sqrt(math.Max(expected, 1e-9) / float64(n))
		z := (observed - expected) / sd
		rep.Residuals = append(rep.Residuals, Residual{
			SensorID: r.Sensor.ID,
			Pos:      r.Sensor.Pos,
			Expected: expected,
			Observed: observed,
			Z:        z,
		})
		sumZ2 += z * z
	}
	rep.RMSZ = math.Sqrt(sumZ2 / float64(len(rep.Residuals)))
	sort.Slice(rep.Residuals, func(a, b int) bool {
		return math.Abs(rep.Residuals[a].Z) > math.Abs(rep.Residuals[b].Z)
	})
	for _, res := range rep.Residuals {
		if math.Abs(res.Z) >= zThreshold {
			rep.Suspicious = append(rep.Suspicious, res.SensorID)
		}
	}
	return rep, nil
}

// Sources converts estimates into the hypothesized source set their
// free-space predictions are computed from.
func Sources(estimates []core.Estimate) []radiation.Source {
	out := make([]radiation.Source, len(estimates))
	for i, e := range estimates {
		out[i] = radiation.Source{Pos: e.Pos, Strength: e.Strength}
	}
	return out
}

// ResidualZ standardizes a single reading against the free-space
// prediction of the hypothesized sources: (observed − expected)/√expected.
// This is the one-reading form of Check's residual, shared with the
// fusion engine's per-sensor health monitor so streaming plausibility
// scoring and offline posterior-predictive checks agree.
func ResidualZ(sen sensor.Sensor, cpm int, sources []radiation.Source) float64 {
	return ResidualZInflated(sen, cpm, sources, 0)
}

// ResidualZInflated is ResidualZ with the predictive variance inflated
// by a multiplicative model-uncertainty term: Var = λ + (relSlack·λ)².
// Sensors very close to a source see λ change steeply with small
// source-position errors, so a pure-Poisson z explodes on perfectly
// healthy readings while the filter is still converging; the relative
// slack absorbs that without masking order-of-magnitude faults.
func ResidualZInflated(sen sensor.Sensor, cpm int, sources []radiation.Source, relSlack float64) float64 {
	expected := radiation.ExpectedCPM(sen.Pos, sen.Efficiency, sen.Background, sources, nil)
	variance := expected + (relSlack*expected)*(relSlack*expected)
	return (float64(cpm) - expected) / math.Sqrt(math.Max(variance, 1e-9))
}

// ShadowedSensors returns the suspicious sensors with strongly NEGATIVE
// residuals — the ones reading less than the sources should produce,
// i.e. the shadow an unmodeled obstacle casts.
func (r Report) ShadowedSensors(zThreshold float64) []Residual {
	if zThreshold <= 0 {
		zThreshold = 3
	}
	var out []Residual
	for _, res := range r.Residuals {
		if res.Z <= -zThreshold {
			out = append(out, res)
		}
	}
	return out
}
