package diagnose

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

// gather sums `steps` rounds of readings per sensor.
func gather(t *testing.T, sensors []sensor.Sensor, sources []radiation.Source, obstacles []radiation.Obstacle, steps int, seed uint64) []Reading {
	t.Helper()
	stream := rng.NewNamed(seed, "diagnose-test")
	out := make([]Reading, len(sensors))
	for i, sen := range sensors {
		out[i] = Reading{Sensor: sen, Count: steps}
		for step := 0; step < steps; step++ {
			out[i].TotalCPM += sen.Measure(stream, sources, obstacles, step).CPM
		}
	}
	return out
}

func estimatesFromSources(srcs []radiation.Source) []core.Estimate {
	out := make([]core.Estimate, len(srcs))
	for i, s := range srcs {
		out[i] = core.Estimate{Pos: s.Pos, Strength: s.Strength, Mass: 0.3}
	}
	return out
}

func grid36() []sensor.Sensor {
	b := geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
	return sensor.Grid(b, 6, 6, sensor.DefaultEfficiency, 5)
}

func TestCheckWellSpecifiedModel(t *testing.T) {
	sources := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	readings := gather(t, grid36(), sources, nil, 20, 1)
	rep, err := Check(readings, estimatesFromSources(sources), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect model: residuals at the Poisson noise floor.
	if rep.RMSZ > 1.6 {
		t.Errorf("RMSZ = %v for a correct model, want ≈1", rep.RMSZ)
	}
	if len(rep.Suspicious) > 1 {
		t.Errorf("suspicious sensors on a correct model: %v", rep.Suspicious)
	}
	if len(rep.Residuals) != 36 {
		t.Fatalf("residuals = %d", len(rep.Residuals))
	}
	// Sorted by |Z| descending.
	for i := 1; i < len(rep.Residuals); i++ {
		if math.Abs(rep.Residuals[i].Z) > math.Abs(rep.Residuals[i-1].Z)+1e-12 {
			t.Fatal("residuals not sorted by |Z|")
		}
	}
}

func TestCheckDetectsObstacleShadow(t *testing.T) {
	sources := []radiation.Source{{Pos: geometry.V(30, 50), Strength: 100}}
	// A thick wall east of the source shadows the sensors behind it.
	wall := radiation.Obstacle{
		Shape: geometry.NewRect(geometry.V(45, 20), geometry.V(50, 80)).Polygon(),
		Mu:    radiation.Concrete.MustMu(),
		Name:  "hidden wall",
	}
	readings := gather(t, grid36(), sources, []radiation.Obstacle{wall}, 20, 2)
	rep, err := Check(readings, estimatesFromSources(sources), 3)
	if err != nil {
		t.Fatal(err)
	}
	shadowed := rep.ShadowedSensors(3)
	if len(shadowed) == 0 {
		t.Fatal("no shadowed sensors found behind the hidden wall")
	}
	// Every strongly-negative residual must be east of the wall (the
	// shadow side).
	for _, res := range shadowed {
		if res.Pos.X < 50 {
			t.Errorf("sensor %d at %v flagged as shadowed but is not behind the wall (Z=%.1f)",
				res.SensorID, res.Pos, res.Z)
		}
	}
	if rep.RMSZ < 1.5 {
		t.Errorf("RMSZ = %v with a hidden obstacle, want clearly > 1", rep.RMSZ)
	}
}

func TestCheckDetectsMissedSource(t *testing.T) {
	sources := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	readings := gather(t, grid36(), sources, nil, 20, 3)
	// The model only explains the first source: sensors near the
	// second read far MORE than predicted (positive residuals).
	rep, err := Check(readings, estimatesFromSources(sources[:1]), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suspicious) == 0 {
		t.Fatal("missed source not flagged")
	}
	top := rep.Residuals[0]
	if top.Z < 3 {
		t.Errorf("top residual Z = %v, want strongly positive", top.Z)
	}
	if top.Pos.Dist(sources[1].Pos) > 30 {
		t.Errorf("top residual at %v is not near the missed source %v", top.Pos, sources[1].Pos)
	}
}

func TestCheckErrorsAndDefaults(t *testing.T) {
	if _, err := Check(nil, nil, 3); !errors.Is(err, ErrNoData) {
		t.Errorf("no data: %v", err)
	}
	// Count ≤ 0 is treated as one interval, not a division by zero.
	r := []Reading{{Sensor: grid36()[0], TotalCPM: 5, Count: 0}}
	rep, err := Check(r, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.Residuals[0].Z) || math.IsInf(rep.Residuals[0].Z, 0) {
		t.Errorf("degenerate count produced Z = %v", rep.Residuals[0].Z)
	}
}
