package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPoissonLogPMFKnownValues(t *testing.T) {
	tests := []struct {
		name   string
		k      int
		lambda float64
		want   float64 // P(K=k), linear scale
	}{
		{"k0-l1", 0, 1, math.Exp(-1)},
		{"k1-l1", 1, 1, math.Exp(-1)},
		{"k2-l3", 2, 3, 9.0 / 2 * math.Exp(-3)},
		{"k5-l5", 5, 5, math.Pow(5, 5) / 120 * math.Exp(-5)},
		{"k0-l0", 0, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := math.Exp(PoissonLogPMF(tt.k, tt.lambda))
			if !almostEq(got, tt.want, 1e-12*math.Max(1, tt.want)) {
				t.Errorf("exp(PoissonLogPMF(%d, %v)) = %v, want %v", tt.k, tt.lambda, got, tt.want)
			}
		})
	}
}

func TestPoissonLogPMFEdgeCases(t *testing.T) {
	if got := PoissonLogPMF(-1, 5); !math.IsInf(got, -1) {
		t.Errorf("negative k: %v, want -Inf", got)
	}
	if got := PoissonLogPMF(3, 0); !math.IsInf(got, -1) {
		t.Errorf("k>0, lambda=0: %v, want -Inf", got)
	}
	if got := PoissonLogPMF(3, math.NaN()); !math.IsInf(got, -1) {
		t.Errorf("NaN lambda: %v, want -Inf", got)
	}
	if got := PoissonLogPMF(3, -2); !math.IsInf(got, -1) {
		t.Errorf("negative lambda: %v, want -Inf", got)
	}
	// Large counts must not overflow.
	if got := PoissonLogPMF(1_000_000, 1_000_000); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("large k log-pmf = %v, want finite", got)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.5, 5, 50} {
		var sum float64
		for k := 0; k < 1000; k++ {
			sum += PoissonPMF(k, lambda)
		}
		if !almostEq(sum, 1, 1e-9) {
			t.Errorf("lambda=%v: pmf sum = %v, want 1", lambda, sum)
		}
	}
}

func TestPoissonCDF(t *testing.T) {
	if got := PoissonCDF(-1, 5); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
	if got := PoissonCDF(0, 2); !almostEq(got, math.Exp(-2), 1e-12) {
		t.Errorf("CDF(0;2) = %v, want e^-2", got)
	}
	if got := PoissonCDF(500, 5); !almostEq(got, 1, 1e-9) {
		t.Errorf("CDF(500;5) = %v, want ~1", got)
	}
}

// Property: the Poisson mode is at floor(lambda), i.e. pmf(floor(λ)) ≥
// pmf(k) for all k in a window.
func TestPoissonModeProperty(t *testing.T) {
	f := func(l uint8) bool {
		lambda := float64(l%100) + 0.5
		mode := int(math.Floor(lambda))
		pm := PoissonLogPMF(mode, lambda)
		for k := 0; k < 200; k++ {
			if PoissonLogPMF(k, lambda) > pm+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("empty: %v, want -Inf", got)
	}
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !almostEq(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	// Must survive values that would overflow exp().
	got = LogSumExp([]float64{1000, 1000})
	if !almostEq(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp overflow case = %v", got)
	}
	got = LogSumExp([]float64{math.Inf(-1), math.Inf(-1)})
	if !math.IsInf(got, -1) {
		t.Errorf("all -Inf: %v, want -Inf", got)
	}
}

func TestGaussianKernel(t *testing.T) {
	if got := GaussianKernel(0, 2); got != 1 {
		t.Errorf("K(0) = %v, want 1", got)
	}
	if got := GaussianKernel(8, 2); !almostEq(got, math.Exp(-1), 1e-12) {
		t.Errorf("K(d2=8,h=2) = %v, want e^-1", got)
	}
	if got := GaussianKernel(1, 0); got != 0 {
		t.Errorf("degenerate bandwidth: %v, want 0", got)
	}
	if got := GaussianKernel(0, 0); got != 1 {
		t.Errorf("degenerate bandwidth at 0: %v, want 1", got)
	}
}

func TestGaussianLogPDF(t *testing.T) {
	// Standard normal at 0: log(1/sqrt(2π)).
	want := -0.5 * math.Log(2*math.Pi)
	if got := GaussianLogPDF(0, 0, 1); !almostEq(got, want, 1e-12) {
		t.Errorf("logpdf = %v, want %v", got, want)
	}
	if got := GaussianLogPDF(1, 0, 0); !math.IsInf(got, -1) {
		t.Errorf("sigma=0: %v, want -Inf", got)
	}
}

func TestInformationCriteria(t *testing.T) {
	if got := AIC(3, -10); !almostEq(got, 26, 1e-12) {
		t.Errorf("AIC = %v, want 26", got)
	}
	if got := BIC(3, 100, -10); !almostEq(got, 3*math.Log(100)+20, 1e-12) {
		t.Errorf("BIC = %v", got)
	}
}

// TestLogFactorialMatchesLgamma demands bit-identity between the
// table and the Lgamma fallback across the table boundary — the
// property that lets PoissonLogPMF switch between them freely without
// perturbing the particle filter's deterministic trace.
func TestLogFactorialMatchesLgamma(t *testing.T) {
	ks := []int{0, 1, 2, 5, 17, 100, 1000, 4094, 4095, 4096, 4097, 10000}
	for _, k := range ks {
		want, _ := math.Lgamma(float64(k) + 1)
		if got := LogFactorial(k); got != want {
			t.Errorf("LogFactorial(%d) = %v, want exactly Lgamma(%d) = %v", k, got, k+1, want)
		}
	}
	if got := LogFactorial(-1); !math.IsInf(got, 1) {
		t.Errorf("LogFactorial(-1) = %v, want +Inf", got)
	}
	// Spot-check known values: log(0!) = 0, log(5!) = log(120).
	if got := LogFactorial(0); got != 0 {
		t.Errorf("LogFactorial(0) = %v, want 0", got)
	}
	if got, want := LogFactorial(5), math.Log(120); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogFactorial(5) = %v, want log(120) = %v", got, want)
	}
}
