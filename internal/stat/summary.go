package stat

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int     // sample size
	Mean   float64 // arithmetic mean
	Std    float64 // sample standard deviation (n−1 denominator)
	Min    float64 // smallest observation
	Max    float64 // largest observation
	Median float64 // 50th percentile (midpoint of the two central values for even N)
}

// Summarize computes descriptive statistics of xs. An empty sample
// returns the zero Summary (N = 0) with NaN-free fields.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input is not modified.
// An empty slice returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Accumulator tracks a running mean and variance using Welford's
// algorithm; the zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 before any samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the running sample variance (n−1 denominator), or 0 with
// fewer than two samples.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the running sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }
