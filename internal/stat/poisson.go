// Package stat provides the probability and summary-statistics routines
// used across the localizer: Poisson likelihoods in log space, Gaussian
// kernels, log-sum-exp, streaming summaries, and the AIC/BIC information
// criteria used by the model-selection baseline.
package stat

import (
	"errors"
	"math"
	"sync"
)

// ErrInvalidRate is returned for non-positive or non-finite Poisson
// rates where the distribution is undefined.
var ErrInvalidRate = errors.New("stat: invalid Poisson rate")

// PoissonLogPMF returns log P(K = k) for a Poisson distribution with
// mean lambda:
//
//	log P = k·log(λ) − λ − log(k!)
//
// computed via math.Lgamma so it is stable for the large counts a
// radiation sensor reports near a strong source. k < 0 or an invalid
// lambda yields -Inf.
func PoissonLogPMF(k int, lambda float64) float64 {
	if k < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
		return math.Inf(-1)
	}
	if lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return float64(k)*math.Log(lambda) - lambda - LogFactorial(k)
}

// logFactTableSize bounds the precomputed log-factorial table: 4096
// entries (32 KiB) cover every count a sensor plausibly reports per
// the paper's scenarios; larger k falls back to math.Lgamma.
const logFactTableSize = 4096

var (
	logFactOnce  sync.Once
	logFactTable []float64
)

// LogFactorial returns log(k!) = lgamma(k+1). Values for k <
// 4096 come from a table precomputed on first use (each entry is
// exactly math.Lgamma(k+1), so tabulated and fallback values agree
// bit-for-bit); larger k calls math.Lgamma directly. k < 0 yields
// +Inf, matching lgamma's pole at non-positive integers, so a Poisson
// log-PMF built from it is -Inf for impossible counts.
//
// The particle filter's weighting stage subtracts log(k!) once per
// *reading* — hoisted out of the per-particle loop, where the seed
// implementation paid a Lgamma call per particle.
func LogFactorial(k int) float64 {
	if k < 0 {
		return math.Inf(1)
	}
	if k < logFactTableSize {
		logFactOnce.Do(func() {
			t := make([]float64, logFactTableSize)
			for i := range t {
				t[i], _ = math.Lgamma(float64(i) + 1)
			}
			logFactTable = t
		})
		return logFactTable[k]
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return lg
}

// PoissonPMF returns P(K = k) for mean lambda.
func PoissonPMF(k int, lambda float64) float64 {
	return math.Exp(PoissonLogPMF(k, lambda))
}

// PoissonCDF returns P(K ≤ k) by direct summation. It is intended for
// the moderate k used in tests and calibration, not hot paths.
func PoissonCDF(k int, lambda float64) float64 {
	if k < 0 {
		return 0
	}
	var sum float64
	for i := 0; i <= k; i++ {
		sum += PoissonPMF(i, lambda)
	}
	return math.Min(1, sum)
}

// LogSumExp returns log(Σ exp(xs[i])) guarding against overflow. An
// empty slice yields -Inf.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - m)
	}
	return m + math.Log(sum)
}

// GaussianKernel returns exp(−d²/(2h²)), the unnormalized Gaussian
// kernel used by mean-shift. h must be positive; a non-positive h
// yields 0 for d ≠ 0 and 1 for d = 0 (a point mass).
func GaussianKernel(d2, h float64) float64 {
	if h <= 0 {
		if d2 == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(-d2 / (2 * h * h))
}

// GaussianLogPDF returns the log density of N(mu, sigma²) at x.
func GaussianLogPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.Inf(-1)
	}
	z := (x - mu) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// AIC returns Akaike's information criterion 2k − 2·logL for a model
// with k free parameters and maximized log-likelihood logL.
func AIC(k int, logL float64) float64 { return 2*float64(k) - 2*logL }

// BIC returns the Bayesian information criterion k·ln(n) − 2·logL for a
// model with k free parameters fitted to n observations.
func BIC(k, n int, logL float64) float64 {
	return float64(k)*math.Log(float64(n)) - 2*logL
}
