package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEq(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample std with n-1: variance = 32/7.
	if !almostEq(s.Std, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEq(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	z := Summarize(nil)
	if z.N != 0 || z.Mean != 0 || z.Std != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	one := Summarize([]float64{3})
	if one.N != 1 || one.Mean != 3 || one.Std != 0 || one.Median != 3 {
		t.Errorf("single summary = %+v", one)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {-0.5, 10}, {2, 40},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty Quantile = %v", got)
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	xs := []float64{1.5, -2, 7, 3.25, 0, 4}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	s := Summarize(xs)
	if acc.N() != s.N {
		t.Errorf("N = %d, want %d", acc.N(), s.N)
	}
	if !almostEq(acc.Mean(), s.Mean, 1e-12) {
		t.Errorf("Mean = %v, want %v", acc.Mean(), s.Mean)
	}
	if !almostEq(acc.Std(), s.Std, 1e-12) {
		t.Errorf("Std = %v, want %v", acc.Std(), s.Std)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.Var() != 0 || acc.Std() != 0 || acc.Mean() != 0 {
		t.Errorf("zero-value accumulator: %v %v %v", acc.Mean(), acc.Var(), acc.Std())
	}
	acc.Add(5)
	if acc.Var() != 0 {
		t.Errorf("single-sample variance = %v, want 0", acc.Var())
	}
}

// Property: mean lies within [min, max] and shifting the data shifts the
// mean while leaving the std unchanged.
func TestSummaryShiftProperty(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		shift := math.Mod(shiftRaw, 1e6)
		if math.IsNaN(shift) {
			shift = 1
		}
		s1 := Summarize(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		s2 := Summarize(shifted)
		tol := 1e-6 * (1 + math.Abs(s1.Mean) + math.Abs(shift))
		return s1.Mean >= s1.Min-1e-9 && s1.Mean <= s1.Max+1e-9 &&
			almostEq(s2.Mean, s1.Mean+shift, tol) &&
			almostEq(s2.Std, s1.Std, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
