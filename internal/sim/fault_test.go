package sim

import (
	"math"
	"strings"
	"testing"

	"radloc/internal/faults"
)

func TestFaultValidation(t *testing.T) {
	sc := quickScenario(50)
	tests := []struct {
		name  string
		fault Fault
	}{
		{"index-negative", Fault{SensorIndex: -1, Mode: FaultDead}},
		{"index-too-big", Fault{SensorIndex: 99, Mode: FaultDead}},
		{"bad-mode", Fault{SensorIndex: 0, Mode: 0}},
		{"negative-stuck", Fault{SensorIndex: 0, Mode: FaultStuck, StuckCPM: -5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(sc, Options{Seed: 1, Faults: []Fault{tt.fault}}); err == nil {
				t.Error("invalid fault accepted")
			}
		})
	}
}

func TestFaultModeString(t *testing.T) {
	if FaultDead.String() != "dead" || FaultStuck.String() != "stuck" {
		t.Error("fault mode names wrong")
	}
	if !strings.Contains(FaultMode(9).String(), "9") {
		t.Error("unknown mode string")
	}
}

// TestRobustToDeadSensors: the paper claims robustness against sensor
// malfunction. With 4 of 36 sensors dead the localizer must still find
// both sources with only mildly degraded accuracy.
func TestRobustToDeadSensors(t *testing.T) {
	sc := quickScenario(50)
	sc.Params.TimeSteps = 10

	healthy, err := Run(sc, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	faults := []Fault{
		{SensorIndex: 7, Mode: FaultDead},
		{SensorIndex: 14, Mode: FaultDead},
		{SensorIndex: 21, Mode: FaultDead},
		{SensorIndex: 28, Mode: FaultDead},
	}
	faulty, err := Run(sc, Options{Seed: 6, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	last := sc.Params.TimeSteps - 1
	if math.IsNaN(faulty.MeanErr[last]) {
		t.Fatal("sources lost with 4/36 dead sensors")
	}
	if faulty.MeanErr[last] > healthy.MeanErr[last]+8 {
		t.Errorf("dead sensors degrade error too much: %v vs %v",
			faulty.MeanErr[last], healthy.MeanErr[last])
	}
	if faulty.FalseNeg[last] > 1 {
		t.Errorf("false negatives with dead sensors: %v", faulty.FalseNeg[last])
	}
}

// TestRobustToStuckSensor: one sensor reporting a wild constant reading
// creates localized disturbance but must not destroy the other source's
// estimate.
func TestRobustToStuckSensor(t *testing.T) {
	sc := quickScenario(50)
	sc.Params.TimeSteps = 10
	// Sensor 0 sits at (0,0), far from both sources; it screams 500 CPM.
	faulty, err := Run(sc, Options{Seed: 8, Faults: []Fault{
		{SensorIndex: 0, Mode: FaultStuck, StuckCPM: 500},
	}})
	if err != nil {
		t.Fatal(err)
	}
	last := sc.Params.TimeSteps - 1
	// Both true sources still found...
	if faulty.FalseNeg[last] > 0.5 {
		t.Errorf("stuck sensor causes FN: %v", faulty.FalseNeg[last])
	}
	if math.IsNaN(faulty.MeanErr[last]) || faulty.MeanErr[last] > 10 {
		t.Errorf("stuck sensor degrades error: %v", faulty.MeanErr[last])
	}
	// ...though a phantom source near the stuck sensor is expected (it
	// honestly reports a huge rate). That is a false positive, not a
	// localization failure.
	if faulty.FalsePos[last] < 0.5 {
		t.Logf("note: no phantom near the stuck sensor (fine, fusion discs overlap)")
	}
}

// TestDeadSensorNeverIngested: a dead sensor must contribute zero
// iterations.
func TestDeadSensorNeverIngested(t *testing.T) {
	sc := quickScenario(50)
	sc.Params.TimeSteps = 4
	all := len(sc.Sensors) * sc.Params.TimeSteps

	res, err := Run(sc, Options{Seed: 2, Faults: []Fault{{SensorIndex: 3, Mode: FaultDead}}})
	if err != nil {
		t.Fatal(err)
	}
	// IterTime is averaged over ingested measurements; we can't observe
	// the count directly, but a dead sensor shows up as missing
	// events: verify via a scenario-level invariant instead — the run
	// completes with the correct number of steps.
	if len(res.Trials[0].Steps) != sc.Params.TimeSteps {
		t.Fatalf("steps = %d", len(res.Trials[0].Steps))
	}
	_ = all
}

func TestAllSensorsDeadStillRuns(t *testing.T) {
	sc := quickScenario(50)
	sc.Params.TimeSteps = 3
	faults := make([]Fault, len(sc.Sensors))
	for i := range faults {
		faults[i] = Fault{SensorIndex: i, Mode: FaultDead}
	}
	res, err := Run(sc, Options{Seed: 2, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing ingested: particles stay uniform; either no estimates or
	// random weak ones, but the harness must not crash and FN counts
	// both sources... (estimates may flicker; just check shape).
	if len(res.Trials[0].Steps) != 3 {
		t.Fatalf("steps = %d", len(res.Trials[0].Steps))
	}
}

// TestFaultSpecsEndToEnd drives the composable internal/faults models
// through a full simulation: with one sensor stuck hot, one drifting,
// and one dropping half its messages, the run must complete and both
// sources must survive (bounded error, no false negatives).
func TestFaultSpecsEndToEnd(t *testing.T) {
	sc := quickScenario(50)
	sc.Params.TimeSteps = 10
	res, err := Run(sc, Options{Seed: 4, FaultSpecs: []faults.Spec{
		{Sensor: 0, Kind: faults.StuckAt, StuckCPM: 400},
		{Sensor: 35, Kind: faults.Drift, Gain: 0.2},
		{Sensor: 17, Kind: faults.Dropout, Prob: 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	last := sc.Params.TimeSteps - 1
	if res.FalseNeg[last] > 0.5 {
		t.Errorf("false negatives under composable faults: %v", res.FalseNeg[last])
	}
	if math.IsNaN(res.MeanErr[last]) || res.MeanErr[last] > 12 {
		t.Errorf("error diverged under composable faults: %v", res.MeanErr[last])
	}
}

// TestFaultSpecValidationSurfacesInRun: a bad spec must fail Run before
// any trial executes.
func TestFaultSpecValidationSurfacesInRun(t *testing.T) {
	sc := quickScenario(50)
	if _, err := Run(sc, Options{Seed: 1, FaultSpecs: []faults.Spec{
		{Sensor: 999, Kind: faults.StuckAt},
	}}); err == nil {
		t.Error("out-of-range fault spec accepted")
	}
}

// TestLegacyFaultBridge: Fault.Spec maps the classic modes onto the
// composable representation.
func TestLegacyFaultBridge(t *testing.T) {
	dead := Fault{SensorIndex: 3, Mode: FaultDead}.Spec()
	if dead.Kind != faults.Dropout || dead.Prob != 1 || dead.Sensor != 3 {
		t.Errorf("dead bridge = %+v", dead)
	}
	stuck := Fault{SensorIndex: 5, Mode: FaultStuck, StuckCPM: 77}.Spec()
	if stuck.Kind != faults.StuckAt || stuck.StuckCPM != 77 || stuck.Sensor != 5 {
		t.Errorf("stuck bridge = %+v", stuck)
	}
}
