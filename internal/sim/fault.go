package sim

import (
	"fmt"

	"radloc/internal/faults"
)

// FaultMode classifies a simple sensor malfunction. The richer
// composable models (drift, burst noise, byzantine spoofing, partial
// dropout) live in internal/faults and are injected via
// Options.FaultSpecs; FaultMode is kept as the compact form for the
// paper's two classic robustness experiments.
type FaultMode int

// Fault modes.
const (
	// FaultDead drops every message from the sensor (battery death,
	// radio failure).
	FaultDead FaultMode = iota + 1
	// FaultStuck replaces every reading with StuckCPM (ADC failure,
	// saturated or shorted counter).
	FaultStuck
)

// String implements fmt.Stringer.
func (m FaultMode) String() string {
	switch m {
	case FaultDead:
		return "dead"
	case FaultStuck:
		return "stuck"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// Fault injects one sensor malfunction for the whole run — the paper
// claims robustness against "malfunctioning of unreliable sensors"
// (Section V), which these experiments quantify.
type Fault struct {
	SensorIndex int
	Mode        FaultMode
	// StuckCPM is the constant reading reported under FaultStuck.
	StuckCPM int
}

// Spec translates the legacy fault into its internal/faults form.
func (f Fault) Spec() faults.Spec {
	switch f.Mode {
	case FaultDead:
		return faults.Spec{Sensor: f.SensorIndex, Kind: faults.Dropout, Prob: 1}
	case FaultStuck:
		return faults.Spec{Sensor: f.SensorIndex, Kind: faults.StuckAt, StuckCPM: f.StuckCPM}
	default:
		// Invalid mode; surfaces as a validation error in the injector.
		return faults.Spec{Sensor: f.SensorIndex}
	}
}

// validateFaults checks fault specs against the sensor count.
func validateFaults(faults []Fault, numSensors int) error {
	for i, f := range faults {
		if f.SensorIndex < 0 || f.SensorIndex >= numSensors {
			return fmt.Errorf("sim: fault %d targets sensor %d of %d", i, f.SensorIndex, numSensors)
		}
		if f.Mode != FaultDead && f.Mode != FaultStuck {
			return fmt.Errorf("sim: fault %d has unknown mode %d", i, int(f.Mode))
		}
		if f.Mode == FaultStuck && f.StuckCPM < 0 {
			return fmt.Errorf("sim: fault %d has negative stuck CPM", i)
		}
	}
	return nil
}

// faultSpecs merges the legacy faults and the composable specs into the
// single list handed to the injector.
func faultSpecs(opts Options) []faults.Spec {
	if len(opts.Faults) == 0 && len(opts.FaultSpecs) == 0 {
		return nil
	}
	out := make([]faults.Spec, 0, len(opts.Faults)+len(opts.FaultSpecs))
	for _, f := range opts.Faults {
		out = append(out, f.Spec())
	}
	return append(out, opts.FaultSpecs...)
}
