package sim

import "fmt"

// FaultMode classifies a sensor malfunction.
type FaultMode int

// Fault modes.
const (
	// FaultDead drops every message from the sensor (battery death,
	// radio failure).
	FaultDead FaultMode = iota + 1
	// FaultStuck replaces every reading with StuckCPM (ADC failure,
	// saturated or shorted counter).
	FaultStuck
)

// String implements fmt.Stringer.
func (m FaultMode) String() string {
	switch m {
	case FaultDead:
		return "dead"
	case FaultStuck:
		return "stuck"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// Fault injects one sensor malfunction for the whole run — the paper
// claims robustness against "malfunctioning of unreliable sensors"
// (Section V), which these experiments quantify.
type Fault struct {
	SensorIndex int
	Mode        FaultMode
	// StuckCPM is the constant reading reported under FaultStuck.
	StuckCPM int
}

// validateFaults checks fault specs against the sensor count.
func validateFaults(faults []Fault, numSensors int) error {
	for i, f := range faults {
		if f.SensorIndex < 0 || f.SensorIndex >= numSensors {
			return fmt.Errorf("sim: fault %d targets sensor %d of %d", i, f.SensorIndex, numSensors)
		}
		if f.Mode != FaultDead && f.Mode != FaultStuck {
			return fmt.Errorf("sim: fault %d has unknown mode %d", i, int(f.Mode))
		}
		if f.Mode == FaultStuck && f.StuckCPM < 0 {
			return fmt.Errorf("sim: fault %d has negative stuck CPM", i)
		}
	}
	return nil
}

// faultTable indexes faults by sensor for the hot loop.
func faultTable(faults []Fault, numSensors int) []*Fault {
	if len(faults) == 0 {
		return nil
	}
	table := make([]*Fault, numSensors)
	for i := range faults {
		table[faults[i].SensorIndex] = &faults[i]
	}
	return table
}
