// Package sim drives complete experiments: it wires a scenario's
// sensors, sources and obstacles to a core.Localizer through a network
// delivery plan, advances time step by step (one step = every sensor
// reports once, Section VI), scores each step with eval.Match, and
// aggregates repeated trials — the loop behind every figure in the
// paper's evaluation.
package sim

import (
	"fmt"
	"sync"
	"time"

	"radloc/internal/core"
	"radloc/internal/eval"
	"radloc/internal/faults"
	"radloc/internal/network"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/scenario"
)

// Options configures a simulation run.
type Options struct {
	// Seed is the root seed; trial r derives all randomness from
	// (Seed, r).
	Seed uint64
	// Reps is the number of repeated trials averaged together (the
	// paper uses 10). Default 1.
	Reps int
	// TrialWorkers bounds how many trials run concurrently (default 1;
	// each trial's mean-shift still parallelizes internally unless
	// CoreWorkers is 1).
	TrialWorkers int
	// CoreWorkers overrides the localizer's internal worker count
	// (default: 1 when TrialWorkers > 1, else GOMAXPROCS via core).
	CoreWorkers int
	// SnapshotSteps lists time steps after which the particle
	// population of trial 0 is recorded (Fig. 4).
	SnapshotSteps []int
	// Faults injects sensor malfunctions (dead or stuck sensors) for
	// robustness experiments.
	Faults []Fault
	// FaultSpecs injects the composable fault models of internal/faults
	// (stuck-at, calibration drift, dropout, burst noise, byzantine
	// spoofing). Specs compose with Faults; randomness derives from the
	// trial seed so chaos runs stay reproducible.
	FaultSpecs []faults.Spec
	// Metrics, when non-nil, is the registry every trial's localizer
	// records its per-stage timings on (radloc_filter_*). Trials share
	// the registry — histograms and counters aggregate across them —
	// so pair it with Reps: 1 for a clean single-run profile. nil
	// disables instrumentation; measurements never change either way.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.TrialWorkers <= 0 {
		o.TrialWorkers = 1
	}
	if o.CoreWorkers <= 0 {
		if o.TrialWorkers > 1 {
			o.CoreWorkers = 1
		}
	}
	return o
}

// StepStat holds one trial's metrics at the end of one time step.
type StepStat struct {
	Step      int
	SourceErr []float64 // per-source localization error, NaN = false negative
	FalsePos  int
	FalseNeg  int
	Estimates int
}

// Trial is the outcome of one simulation run.
type Trial struct {
	Steps []StepStat
	// IterTime is the mean wall-clock time per filter iteration
	// (Ingest), and EstimateTime per Estimates() call.
	IterTime     time.Duration
	EstimateTime time.Duration
	// Snapshots holds particle populations recorded after the requested
	// steps (only on trial 0).
	Snapshots map[int][]core.Particle
	// FinalEstimates is the estimate set after the last step.
	FinalEstimates []core.Estimate
}

// Result aggregates all trials of a scenario.
type Result struct {
	Scenario scenario.Scenario
	Trials   []Trial

	// ErrBySource[s][t] is the mean (over trials, ignoring false
	// negatives) localization error of source s at step t.
	ErrBySource [][]float64
	// MeanErr[t] is the mean over sources of ErrBySource at step t.
	MeanErr []float64
	// FalsePos[t] and FalseNeg[t] are mean counts per step.
	FalsePos []float64
	FalseNeg []float64
}

// Run executes a scenario and aggregates the trials.
func Run(sc scenario.Scenario, opts Options) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	if err := validateFaults(opts.Faults, len(sc.Sensors)); err != nil {
		return Result{}, err
	}
	// Validate the composable specs up front so every trial sees the
	// same error instead of racing to report it.
	if specs := faultSpecs(opts); len(specs) > 0 {
		if _, err := faults.NewInjector(len(sc.Sensors), 0, specs); err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
	}
	opts = opts.withDefaults()

	trials := make([]Trial, opts.Reps)
	errs := make([]error, opts.Reps)

	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.TrialWorkers)
	for r := 0; r < opts.Reps; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var snaps []int
			if r == 0 {
				snaps = opts.SnapshotSteps
			}
			trials[r], errs[r] = runTrial(sc, opts, uint64(r), snaps)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	res := Result{Scenario: sc, Trials: trials}
	res.aggregate()
	return res, nil
}

// runTrial executes one end-to-end simulation.
func runTrial(sc scenario.Scenario, opts Options, rep uint64, snapshotSteps []int) (Trial, error) {
	seed := opts.Seed*1_000_003 + rep
	cfg := LocalizerConfig(sc)
	cfg.Seed = seed
	cfg.Metrics = opts.Metrics
	if opts.CoreWorkers > 0 {
		cfg.Workers = opts.CoreWorkers
	}
	loc, err := core.NewLocalizer(cfg)
	if err != nil {
		return Trial{}, fmt.Errorf("trial %d: %w", rep, err)
	}

	steps := sc.Params.TimeSteps
	var plan network.Plan
	if sc.OutOfOrder {
		plan = network.OutOfOrder(len(sc.Sensors), steps, rng.NewNamed(seed, "sim/delivery"), network.Options{
			MeanLatency: sc.MeanLatency,
		})
	} else {
		plan = network.InOrder(len(sc.Sensors), steps)
	}

	var inj *faults.Injector
	if specs := faultSpecs(opts); len(specs) > 0 {
		inj, err = faults.NewInjector(len(sc.Sensors), seed, specs)
		if err != nil {
			return Trial{}, fmt.Errorf("trial %d: %w", rep, err)
		}
		// Delivery-level faults (dropouts, dead sensors) are knocked out
		// of the network schedule itself; value-level faults transform
		// readings below.
		plan = plan.Filter(func(ev network.Event) bool {
			return inj.Delivered(ev.SensorIndex, ev.EmitStep)
		})
	}

	measure := rng.NewNamed(seed, "sim/measurements")
	snapWant := make(map[int]bool, len(snapshotSteps))
	for _, s := range snapshotSteps {
		snapWant[s] = true
	}

	tr := Trial{Steps: make([]StepStat, 0, steps)}
	if len(snapWant) > 0 {
		tr.Snapshots = make(map[int][]core.Particle, len(snapWant))
	}
	var iterTotal, estTotal time.Duration
	iterCount := 0

	for step := 0; step < steps; step++ {
		for _, ev := range plan.EventsInStep(step) {
			sen := sc.Sensors[ev.SensorIndex]
			m := sen.Measure(measure, sc.Sources, sc.Obstacles, ev.EmitStep)
			cpm := inj.Transform(ev.SensorIndex, ev.EmitStep, m.CPM)
			t0 := time.Now()
			loc.Ingest(sen, cpm)
			iterTotal += time.Since(t0)
			iterCount++
		}

		t0 := time.Now()
		ests := loc.Estimates()
		estTotal += time.Since(t0)

		match := eval.Match(ests, sc.Sources, sc.Params.MatchRadius)
		tr.Steps = append(tr.Steps, StepStat{
			Step:      step,
			SourceErr: match.Err,
			FalsePos:  match.FalsePos,
			FalseNeg:  match.FalseNeg,
			Estimates: len(ests),
		})
		if snapWant[step] {
			tr.Snapshots[step] = loc.Particles()
		}
		if step == steps-1 {
			tr.FinalEstimates = ests
		}
	}

	if iterCount > 0 {
		tr.IterTime = iterTotal / time.Duration(iterCount)
	}
	tr.EstimateTime = estTotal / time.Duration(steps)
	return tr, nil
}

// LocalizerConfig translates a scenario's parameter block into a core
// configuration (exported so examples and benchmarks can build the
// localizer directly).
func LocalizerConfig(sc scenario.Scenario) core.Config {
	return core.Config{
		Bounds:            sc.Bounds,
		NumParticles:      sc.Params.NumParticles,
		FusionRange:       sc.Params.FusionRange,
		ResampleNoise:     sc.Params.ResampleNoise,
		InjectionFrac:     sc.Params.InjectionFrac,
		StrengthMax:       sc.Params.MaxStrength,
		BandwidthXY:       sc.Params.BandwidthXY,
		BandwidthStr:      sc.Params.BandwidthStr,
		ModeMassMin:       sc.Params.ModeMassMin,
		MinSourceStrength: sc.Params.MinSourceStr,
		MaxSensorGap:      sc.Params.MaxSensorGap,
		MeanShiftStarts:   sc.Params.MeanShiftStarts,
	}
}

// aggregate fills the per-step aggregates from the trials.
func (r *Result) aggregate() {
	if len(r.Trials) == 0 {
		return
	}
	steps := len(r.Trials[0].Steps)
	numSources := len(r.Scenario.Sources)

	r.ErrBySource = make([][]float64, numSources)
	for s := 0; s < numSources; s++ {
		rows := make([][]float64, steps)
		for t := 0; t < steps; t++ {
			row := make([]float64, 0, len(r.Trials))
			for _, tr := range r.Trials {
				if t < len(tr.Steps) && s < len(tr.Steps[t].SourceErr) {
					row = append(row, tr.Steps[t].SourceErr[s])
				}
			}
			rows[t] = row
		}
		r.ErrBySource[s] = eval.Series(rows)
	}

	r.MeanErr = make([]float64, steps)
	for t := 0; t < steps; t++ {
		row := make([]float64, 0, numSources)
		for s := 0; s < numSources; s++ {
			row = append(row, r.ErrBySource[s][t])
		}
		r.MeanErr[t] = eval.MeanOverWindow(row, 0, len(row))
	}

	r.FalsePos = make([]float64, steps)
	r.FalseNeg = make([]float64, steps)
	for t := 0; t < steps; t++ {
		var fp, fn float64
		for _, tr := range r.Trials {
			fp += float64(tr.Steps[t].FalsePos)
			fn += float64(tr.Steps[t].FalseNeg)
		}
		r.FalsePos[t] = fp / float64(len(r.Trials))
		r.FalseNeg[t] = fn / float64(len(r.Trials))
	}
}
