package sim

import (
	"math"
	"testing"

	"radloc/internal/scenario"
)

func quickScenario(strength float64) scenario.Scenario {
	sc := scenario.A(strength, false)
	sc.Params.TimeSteps = 8
	return sc
}

func TestRunSingleTrial(t *testing.T) {
	res, err := Run(quickScenario(50), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 1 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	if len(res.Trials[0].Steps) != 8 {
		t.Fatalf("steps = %d", len(res.Trials[0].Steps))
	}
	if len(res.ErrBySource) != 2 || len(res.MeanErr) != 8 {
		t.Fatalf("aggregate shapes: %d sources, %d steps", len(res.ErrBySource), len(res.MeanErr))
	}
	// With 50 µCi sources the filter must be accurate by step 7.
	last := res.MeanErr[7]
	if math.IsNaN(last) || last > 10 {
		t.Errorf("final mean error = %v, want ≤ 10", last)
	}
	if res.Trials[0].IterTime <= 0 || res.Trials[0].EstimateTime <= 0 {
		t.Errorf("timings not recorded: %v %v", res.Trials[0].IterTime, res.Trials[0].EstimateTime)
	}
	if len(res.Trials[0].FinalEstimates) == 0 {
		t.Error("no final estimates recorded")
	}
}

func TestRunRepsAggregation(t *testing.T) {
	res, err := Run(quickScenario(50), Options{Seed: 2, Reps: 3, TrialWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	// Trials with different rep indices must differ (different seeds).
	a, b := res.Trials[0], res.Trials[1]
	same := true
	for i := range a.Steps {
		if a.Steps[i].Estimates != b.Steps[i].Estimates ||
			a.Steps[i].FalsePos != b.Steps[i].FalsePos {
			same = false
			break
		}
	}
	if same {
		sameErr := true
		for i := range a.Steps {
			for s := range a.Steps[i].SourceErr {
				if a.Steps[i].SourceErr[s] != b.Steps[i].SourceErr[s] &&
					!(math.IsNaN(a.Steps[i].SourceErr[s]) && math.IsNaN(b.Steps[i].SourceErr[s])) {
					sameErr = false
				}
			}
		}
		if sameErr {
			t.Error("trials 0 and 1 are identical — per-trial seeding broken")
		}
	}
	if len(res.FalsePos) != 8 || len(res.FalseNeg) != 8 {
		t.Fatalf("FP/FN series lengths: %d, %d", len(res.FalsePos), len(res.FalseNeg))
	}
	for tstep, fp := range res.FalsePos {
		if fp < 0 || math.IsNaN(fp) {
			t.Errorf("FalsePos[%d] = %v", tstep, fp)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		res, err := Run(quickScenario(10), Options{Seed: 7, Reps: 2, TrialWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	for tr := range r1.Trials {
		for st := range r1.Trials[tr].Steps {
			a, b := r1.Trials[tr].Steps[st], r2.Trials[tr].Steps[st]
			if a.FalsePos != b.FalsePos || a.FalseNeg != b.FalseNeg || a.Estimates != b.Estimates {
				t.Fatalf("trial %d step %d differs across identical runs", tr, st)
			}
		}
	}
}

func TestSnapshots(t *testing.T) {
	res, err := Run(quickScenario(50), Options{Seed: 3, SnapshotSteps: []int{0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	snaps := res.Trials[0].Snapshots
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	for _, step := range []int{0, 4} {
		if len(snaps[step]) != 2000 {
			t.Errorf("snapshot at step %d has %d particles", step, len(snaps[step]))
		}
	}
}

func TestOutOfOrderScenarioRuns(t *testing.T) {
	sc := quickScenario(50)
	sc.OutOfOrder = true
	sc.MeanLatency = 0.5
	res, err := Run(sc, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials[0].Steps) != 8 {
		t.Fatalf("steps = %d", len(res.Trials[0].Steps))
	}
	last := res.MeanErr[7]
	if math.IsNaN(last) || last > 15 {
		t.Errorf("out-of-order final mean error = %v", last)
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	sc := quickScenario(10)
	sc.Sensors = nil
	if _, err := Run(sc, Options{}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestObstacleScenarioRuns(t *testing.T) {
	sc := scenario.A(50, true)
	sc.Params.TimeSteps = 6
	res, err := Run(sc, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	last := res.MeanErr[5]
	if math.IsNaN(last) || last > 12 {
		t.Errorf("obstacle scenario final error = %v", last)
	}
}
