package baseline

import (
	"errors"
	"math"
	"sort"

	"radloc/internal/geometry"
	"radloc/internal/optimize"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/stat"
)

// ErrTooFewSensors is returned when a single-source method has fewer
// than three usable sensors.
var ErrTooFewSensors = errors.New("baseline: need at least three sensors with signal")

// SingleConfig configures the single-source estimators.
type SingleConfig struct {
	// Bounds constrains position estimates.
	Bounds geometry.Rect
	// StrengthMax bounds the strength estimate (default 1000 µCi).
	StrengthMax float64
	// MaxTriples bounds how many sensor triples are sampled for
	// MoE/ITP fusion (default 200).
	MaxTriples int
	// PruneFraction is the fraction of triple estimates ITP discards
	// per round (default 0.2); ITPRounds the number of rounds
	// (default 5).
	PruneFraction float64
	ITPRounds     int
}

func (c SingleConfig) withDefaults() SingleConfig {
	if c.StrengthMax == 0 {
		c.StrengthMax = 1000
	}
	if c.MaxTriples == 0 {
		c.MaxTriples = 200
	}
	if c.PruneFraction == 0 {
		c.PruneFraction = 0.2
	}
	if c.ITPRounds == 0 {
		c.ITPRounds = 5
	}
	return c
}

// SingleMLE fits one source to the readings by maximum likelihood — the
// classic estimator of Howse et al. [11] / Gunatilaka et al. [12].
func SingleMLE(readings []Reading, cfg SingleConfig, stream *rng.Stream) (radiation.Source, error) {
	if len(readings) == 0 {
		return radiation.Source{}, ErrNoReadings
	}
	cfg = cfg.withDefaults()
	p := optimize.Problem{
		F: func(x []float64) float64 {
			return -logLikelihood(readings, decodeSources(x))
		},
		Lower: []float64{cfg.Bounds.Min.X, cfg.Bounds.Min.Y, 0},
		Upper: []float64{cfg.Bounds.Max.X, cfg.Bounds.Max.Y, cfg.StrengthMax},
	}
	r, err := optimize.MultiStart(p, 10, stream, optimize.Options{MaxIter: 1500})
	if err != nil {
		return radiation.Source{}, err
	}
	return decodeSources(r.X)[0], nil
}

// tripleEstimate solves for one source position from three sensors'
// background-subtracted intensities using the log-ratio relations of
// Rao et al. [4]: for sensors a, b the measured ratio fixes
// (1+|x−S_b|²)/(1+|x−S_a|²), a circle in the plane; two ratios
// intersect at the source. We solve the 2-D system numerically.
func tripleEstimate(rs [3]Reading, cfg SingleConfig) (radiation.Source, bool) {
	var net [3]float64
	for i, r := range rs {
		net[i] = (float64(r.CPM) - r.Sensor.Background) / (radiation.CPMPerMicroCurie * r.Sensor.Efficiency)
		if net[i] <= 0 {
			return radiation.Source{}, false
		}
	}
	residual := func(x []float64) float64 {
		p := geometry.V(x[0], x[1])
		var res float64
		for i := 0; i < 3; i++ {
			j := (i + 1) % 3
			// log net_i − log net_j should equal
			// log(1+d_j²) − log(1+d_i²).
			lhs := math.Log(net[i]) - math.Log(net[j])
			rhs := math.Log(1+p.Dist2(rs[j].Sensor.Pos)) - math.Log(1+p.Dist2(rs[i].Sensor.Pos))
			d := lhs - rhs
			res += d * d
		}
		return res
	}
	p := optimize.Problem{
		F:     residual,
		Lower: []float64{cfg.Bounds.Min.X, cfg.Bounds.Min.Y},
		Upper: []float64{cfg.Bounds.Max.X, cfg.Bounds.Max.Y},
	}
	// Start from the intensity-weighted sensor centroid.
	var wx, wy, wsum float64
	for i, r := range rs {
		wx += net[i] * r.Sensor.Pos.X
		wy += net[i] * r.Sensor.Pos.Y
		wsum += net[i]
	}
	res, err := optimize.NelderMead(p, []float64{wx / wsum, wy / wsum}, optimize.Options{MaxIter: 600})
	if err != nil || res.F > 1e-2 {
		return radiation.Source{}, false
	}
	pos := geometry.V(res.X[0], res.X[1])
	// Strength from the three readings given the recovered position.
	var s float64
	for i, r := range rs {
		s += net[i] * (1 + pos.Dist2(r.Sensor.Pos))
	}
	return radiation.Source{Pos: pos, Strength: s / 3}, true
}

// tripleEstimates computes per-triple estimates over sampled sensor
// triples, skipping triples without clear signal.
func tripleEstimates(readings []Reading, cfg SingleConfig, stream *rng.Stream) []radiation.Source {
	// Use only sensors whose reading clears background noticeably.
	var hot []Reading
	for _, r := range readings {
		if float64(r.CPM) > r.Sensor.Background+3*math.Sqrt(r.Sensor.Background+1) {
			hot = append(hot, r)
		}
	}
	if len(hot) < 3 {
		return nil
	}
	var out []radiation.Source
	for t := 0; t < cfg.MaxTriples; t++ {
		i, j, k := stream.IntN(len(hot)), stream.IntN(len(hot)), stream.IntN(len(hot))
		if i == j || j == k || i == k {
			continue
		}
		if est, ok := tripleEstimate([3]Reading{hot[i], hot[j], hot[k]}, cfg); ok {
			out = append(out, est)
		}
	}
	return out
}

// MoE is the mean-of-estimators fusion of Rao et al. [14]: localize
// with every sampled sensor triple and average the per-triple results.
func MoE(readings []Reading, cfg SingleConfig, stream *rng.Stream) (radiation.Source, error) {
	cfg = cfg.withDefaults()
	ests := tripleEstimates(readings, cfg, stream)
	if len(ests) == 0 {
		return radiation.Source{}, ErrTooFewSensors
	}
	return meanSource(ests), nil
}

// ITP is the iterative-pruning fusion of Chin et al. [5]: repeatedly
// discard the triple estimates farthest from the current mean, then
// average the survivors.
func ITP(readings []Reading, cfg SingleConfig, stream *rng.Stream) (radiation.Source, error) {
	cfg = cfg.withDefaults()
	ests := tripleEstimates(readings, cfg, stream)
	if len(ests) == 0 {
		return radiation.Source{}, ErrTooFewSensors
	}
	for round := 0; round < cfg.ITPRounds && len(ests) > 3; round++ {
		mean := meanSource(ests)
		sort.Slice(ests, func(a, b int) bool {
			return ests[a].Pos.Dist2(mean.Pos) < ests[b].Pos.Dist2(mean.Pos)
		})
		keep := len(ests) - int(math.Ceil(cfg.PruneFraction*float64(len(ests))))
		if keep < 3 {
			keep = 3
		}
		ests = ests[:keep]
	}
	return meanSource(ests), nil
}

// meanSource averages positions and strengths (median strength guards
// against the heavy per-triple strength tail).
func meanSource(ests []radiation.Source) radiation.Source {
	var x, y float64
	strengths := make([]float64, len(ests))
	for i, e := range ests {
		x += e.Pos.X
		y += e.Pos.Y
		strengths[i] = e.Strength
	}
	n := float64(len(ests))
	return radiation.Source{
		Pos:      geometry.V(x/n, y/n),
		Strength: stat.Quantile(strengths, 0.5),
	}
}
