// Package baseline implements the comparison algorithms the paper
// positions itself against (Section II):
//
//   - MLE with AIC/BIC model selection: jointly fit the parameters of K
//     hypothesized sources by maximum likelihood for K = 0..KMax and
//     pick K with an information criterion (Morelande et al. [1,2],
//     Ding & Cheng [15]). The parameter space grows as 3K, which is
//     exactly the scaling failure the paper's constant-size filter
//     avoids.
//   - Grid decomposition: discretize the area and recover a
//     non-negative per-cell strength field (Cheng & Singh [16]).
//   - Single-source estimators: per-triple log-ratio localization
//     fused by mean-of-estimators (Rao et al. [14]) or iterative
//     pruning (Chin et al. [5]). These are fast but break down with
//     multiple sources.
//
// All baselines are batch estimators: they consume a set of readings
// (sensor, observed CPM) and return source parameter estimates.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"radloc/internal/geometry"
	"radloc/internal/optimize"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
	"radloc/internal/stat"
)

// Reading is one observed measurement used by the batch estimators.
type Reading struct {
	Sensor sensor.Sensor
	CPM    int
}

// ErrNoReadings is returned when an estimator receives no data.
var ErrNoReadings = errors.New("baseline: no readings")

// Criterion selects the model-selection rule for MLE.
type Criterion int

// Supported information criteria.
const (
	AIC Criterion = iota + 1
	BIC
)

// MLEConfig configures the joint maximum-likelihood estimator.
type MLEConfig struct {
	// Bounds is the search area for source positions.
	Bounds geometry.Rect
	// StrengthMax bounds source strengths (µCi); default 200.
	StrengthMax float64
	// KMax is the largest source count considered (default 4 — the
	// paper notes algorithms of this family "do not scale beyond four
	// sources").
	KMax int
	// Criterion picks AIC or BIC (default BIC).
	Criterion Criterion
	// Starts is the number of random restarts per K (default 12).
	Starts int
	// MaxIter bounds each Nelder–Mead run (default 400·3K).
	MaxIter int
}

func (c MLEConfig) withDefaults() MLEConfig {
	if c.StrengthMax == 0 {
		c.StrengthMax = 200
	}
	if c.KMax == 0 {
		c.KMax = 4
	}
	if c.Criterion == 0 {
		c.Criterion = BIC
	}
	if c.Starts == 0 {
		c.Starts = 12
	}
	return c
}

// MLEResult is the selected model.
type MLEResult struct {
	Sources   []radiation.Source
	K         int
	LogL      float64
	Criterion float64
	// PerK[k] is the best criterion value found for each candidate k
	// (diagnostic; index 0 = zero-source model).
	PerK []float64
}

// MLE jointly estimates the number of sources and their parameters by
// maximizing the Poisson log-likelihood of the readings under Eq. (4),
// selecting K with the configured information criterion.
func MLE(readings []Reading, cfg MLEConfig, stream *rng.Stream) (MLEResult, error) {
	if len(readings) == 0 {
		return MLEResult{}, ErrNoReadings
	}
	cfg = cfg.withDefaults()
	if cfg.Bounds.Width() <= 0 || cfg.Bounds.Height() <= 0 {
		return MLEResult{}, fmt.Errorf("baseline: empty MLE bounds")
	}

	best := MLEResult{K: -1, Criterion: math.Inf(1)}
	best.PerK = make([]float64, cfg.KMax+1)

	// K = 0: background-only model, no free parameters.
	logL0 := logLikelihood(readings, nil)
	crit0 := criterionValue(cfg.Criterion, 0, len(readings), logL0)
	best.PerK[0] = crit0
	best.K = 0
	best.LogL = logL0
	best.Criterion = crit0

	for k := 1; k <= cfg.KMax; k++ {
		srcs, logL, err := fitK(readings, cfg, k, stream)
		if err != nil {
			return MLEResult{}, err
		}
		crit := criterionValue(cfg.Criterion, 3*k, len(readings), logL)
		best.PerK[k] = crit
		if crit < best.Criterion {
			best.Criterion = crit
			best.K = k
			best.LogL = logL
			best.Sources = srcs
		}
	}
	return best, nil
}

// fitK maximizes the joint likelihood for exactly k sources.
func fitK(readings []Reading, cfg MLEConfig, k int, stream *rng.Stream) ([]radiation.Source, float64, error) {
	d := 3 * k
	lower := make([]float64, d)
	upper := make([]float64, d)
	for j := 0; j < k; j++ {
		lower[3*j] = cfg.Bounds.Min.X
		upper[3*j] = cfg.Bounds.Max.X
		lower[3*j+1] = cfg.Bounds.Min.Y
		upper[3*j+1] = cfg.Bounds.Max.Y
		lower[3*j+2] = 0
		upper[3*j+2] = cfg.StrengthMax
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 400 * d
	}
	p := optimize.Problem{
		F: func(x []float64) float64 {
			return -logLikelihood(readings, decodeSources(x))
		},
		Lower: lower,
		Upper: upper,
	}
	r, err := optimize.MultiStart(p, cfg.Starts, stream, optimize.Options{MaxIter: maxIter})
	if err != nil {
		return nil, 0, err
	}
	return decodeSources(r.X), -r.F, nil
}

// decodeSources unpacks a flat (x, y, s)×K parameter vector.
func decodeSources(x []float64) []radiation.Source {
	k := len(x) / 3
	out := make([]radiation.Source, k)
	for j := 0; j < k; j++ {
		out[j] = radiation.Source{
			Pos:      geometry.V(x[3*j], x[3*j+1]),
			Strength: x[3*j+2],
		}
	}
	return out
}

// logLikelihood evaluates Σ_i log Poisson(m_i | λ_i(sources)) under the
// free-space model (the baselines, like the paper's filter, do not know
// the obstacles).
func logLikelihood(readings []Reading, sources []radiation.Source) float64 {
	var ll float64
	for _, r := range readings {
		lambda := radiation.ExpectedCPM(r.Sensor.Pos, r.Sensor.Efficiency, r.Sensor.Background, sources, nil)
		ll += stat.PoissonLogPMF(r.CPM, lambda)
	}
	return ll
}

func criterionValue(c Criterion, params, n int, logL float64) float64 {
	if c == AIC {
		return stat.AIC(params, logL)
	}
	return stat.BIC(params, n, logL)
}
