package baseline

import (
	"fmt"
	"math"
	"sort"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
)

// GridConfig configures the grid-decomposition estimator of Cheng &
// Singh [16]: hypothesize one source per grid cell and recover the
// non-negative per-cell strength field that best explains the readings.
type GridConfig struct {
	// Bounds is the surveillance area.
	Bounds geometry.Rect
	// CellsX, CellsY set the discretization (defaults 10×10 — finer
	// grids make this inverse problem underdetermined with sparse
	// sensor coverage and smear mass onto sensor-adjacent cells). The
	// paper's [16] reports runtimes up to 209 s for fine grids — the
	// cost the particle filter avoids.
	CellsX, CellsY int
	// Iters is the number of multiplicative updates (default 1500).
	Iters int
	// MinStrength is the per-cell strength below which a cell is
	// considered empty when extracting sources (default 2 µCi).
	MinStrength float64
	// Sparsity is the ℓ1 penalty weight β added to the multiplicative
	// denominator; it plays the role of [16]'s sparse convex program,
	// concentrating mass into few cells instead of smearing it across
	// the sensor-adjacent cells of this underdetermined inverse problem
	// (default 0.5).
	Sparsity float64
}

func (c GridConfig) withDefaults() GridConfig {
	if c.CellsX == 0 {
		c.CellsX = 10
	}
	if c.CellsY == 0 {
		c.CellsY = 10
	}
	if c.Iters == 0 {
		c.Iters = 1500
	}
	if c.MinStrength == 0 {
		c.MinStrength = 2
	}
	if c.Sparsity == 0 {
		c.Sparsity = 0.5
	}
	return c
}

// GridResult is the recovered strength field plus extracted sources.
type GridResult struct {
	// Field[cy*CellsX+cx] is the estimated strength in each cell.
	Field  []float64
	CellsX int
	CellsY int
	// Sources are the local maxima of the field above MinStrength,
	// with strength aggregated over each maximum's neighbourhood.
	Sources []radiation.Source
}

// GridDecompose recovers a non-negative source-strength field on a grid
// from Poisson readings using ℓ1-regularized Richardson–Lucy
// multiplicative updates (the EM algorithm for the Poisson linear
// inverse problem, a stdlib-only stand-in for [16]'s sparse convex
// program):
//
//	a_c ← a_c · Σ_i g_ic m_i/λ_i / (Σ_i g_ic + β),  λ_i = B_i + Σ_c g_ic a_c
func GridDecompose(readings []Reading, cfg GridConfig) (GridResult, error) {
	if len(readings) == 0 {
		return GridResult{}, ErrNoReadings
	}
	cfg = cfg.withDefaults()
	if cfg.Bounds.Width() <= 0 || cfg.Bounds.Height() <= 0 {
		return GridResult{}, fmt.Errorf("baseline: empty grid bounds")
	}

	nc := cfg.CellsX * cfg.CellsY
	n := len(readings)

	// Response matrix g[i][c]: CPM per µCi placed at cell c's center,
	// observed by reading i's sensor.
	g := make([]float64, n*nc)
	colSum := make([]float64, nc)
	centers := make([]geometry.Vec, nc)
	for cy := 0; cy < cfg.CellsY; cy++ {
		for cx := 0; cx < cfg.CellsX; cx++ {
			c := cy*cfg.CellsX + cx
			centers[c] = geometry.V(
				cfg.Bounds.Min.X+(float64(cx)+0.5)*cfg.Bounds.Width()/float64(cfg.CellsX),
				cfg.Bounds.Min.Y+(float64(cy)+0.5)*cfg.Bounds.Height()/float64(cfg.CellsY),
			)
		}
	}
	for i, r := range readings {
		for c := 0; c < nc; c++ {
			unit := radiation.Source{Pos: centers[c], Strength: 1}
			v := radiation.CPMPerMicroCurie * r.Sensor.Efficiency *
				radiation.FreeSpaceIntensity(r.Sensor.Pos, unit)
			g[i*nc+c] = v
			colSum[c] += v
		}
	}

	// Multiplicative updates from a flat positive field.
	field := make([]float64, nc)
	for c := range field {
		field[c] = 1
	}
	lambda := make([]float64, n)
	num := make([]float64, nc)
	for it := 0; it < cfg.Iters; it++ {
		for i, r := range readings {
			l := r.Sensor.Background
			row := g[i*nc : (i+1)*nc]
			for c, a := range field {
				l += row[c] * a
			}
			lambda[i] = math.Max(l, 1e-12)
		}
		for c := range num {
			num[c] = 0
		}
		for i, r := range readings {
			ratio := float64(r.CPM) / lambda[i]
			row := g[i*nc : (i+1)*nc]
			for c := range num {
				num[c] += row[c] * ratio
			}
		}
		for c := range field {
			if colSum[c] > 0 {
				field[c] *= num[c] / (colSum[c] + cfg.Sparsity)
			}
		}
	}

	res := GridResult{Field: field, CellsX: cfg.CellsX, CellsY: cfg.CellsY}
	res.Sources = extractPeaks(field, centers, cfg)
	return res, nil
}

// extractPeaks finds local maxima of the field above the strength
// floor, aggregating each peak's 8-neighbourhood into one source.
func extractPeaks(field []float64, centers []geometry.Vec, cfg GridConfig) []radiation.Source {
	var out []radiation.Source
	at := func(cx, cy int) float64 {
		if cx < 0 || cy < 0 || cx >= cfg.CellsX || cy >= cfg.CellsY {
			return -1
		}
		return field[cy*cfg.CellsX+cx]
	}
	for cy := 0; cy < cfg.CellsY; cy++ {
		for cx := 0; cx < cfg.CellsX; cx++ {
			v := at(cx, cy)
			if v < cfg.MinStrength {
				continue
			}
			peak := true
			var cluster float64
			var wx, wy float64
			for dy := -1; dy <= 1 && peak; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nv := at(cx+dx, cy+dy)
					if nv > v || (nv == v && (dy < 0 || (dy == 0 && dx < 0))) {
						peak = false
						break
					}
					if nv > 0 {
						c := (cy+dy)*cfg.CellsX + (cx + dx)
						cluster += nv
						wx += nv * centers[c].X
						wy += nv * centers[c].Y
					}
				}
			}
			if peak && cluster > 0 {
				out = append(out, radiation.Source{
					Pos:      geometry.V(wx/cluster, wy/cluster),
					Strength: cluster,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Strength > out[b].Strength })
	return out
}
