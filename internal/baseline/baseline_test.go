package baseline

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func bounds100() geometry.Rect {
	return geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
}

// collect generates `steps` rounds of readings from a 6×6 grid.
func collect(t *testing.T, sources []radiation.Source, steps int, seed uint64) []Reading {
	t.Helper()
	sensors := sensor.Grid(bounds100(), 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(seed, "baseline-test/measure")
	var out []Reading
	for step := 0; step < steps; step++ {
		for _, sen := range sensors {
			m := sen.Measure(stream, sources, nil, step)
			out = append(out, Reading{Sensor: sen, CPM: m.CPM})
		}
	}
	return out
}

func TestMLESingleSource(t *testing.T) {
	truth := []radiation.Source{{Pos: geometry.V(62, 38), Strength: 50}}
	readings := collect(t, truth, 3, 1)
	res, err := MLE(readings, MLEConfig{Bounds: bounds100(), KMax: 2, Starts: 8}, rng.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("selected K = %d, want 1 (perK %v)", res.K, res.PerK)
	}
	d := res.Sources[0].Pos.Dist(truth[0].Pos)
	if d > 3 {
		t.Errorf("MLE position error = %v", d)
	}
	if math.Abs(res.Sources[0].Strength-50) > 10 {
		t.Errorf("MLE strength = %v, want ≈50", res.Sources[0].Strength)
	}
}

func TestMLETwoSources(t *testing.T) {
	truth := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	readings := collect(t, truth, 3, 2)
	res, err := MLE(readings, MLEConfig{Bounds: bounds100(), KMax: 3, Starts: 16}, rng.New(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("selected K = %d, want 2 (perK %v)", res.K, res.PerK)
	}
	for _, src := range truth {
		best := math.Inf(1)
		for _, e := range res.Sources {
			best = math.Min(best, e.Pos.Dist(src.Pos))
		}
		if best > 5 {
			t.Errorf("source %v recovered with error %v", src.Pos, best)
		}
	}
}

func TestMLENoSources(t *testing.T) {
	readings := collect(t, nil, 3, 3)
	res, err := MLE(readings, MLEConfig{Bounds: bounds100(), KMax: 2, Starts: 6}, rng.New(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 {
		t.Errorf("background-only data selected K = %d (perK %v)", res.K, res.PerK)
	}
}

func TestMLEErrors(t *testing.T) {
	if _, err := MLE(nil, MLEConfig{Bounds: bounds100()}, rng.New(1, 1)); !errors.Is(err, ErrNoReadings) {
		t.Errorf("no readings: %v", err)
	}
	readings := collect(t, nil, 1, 1)
	if _, err := MLE(readings, MLEConfig{}, rng.New(1, 1)); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestGridDecomposeSingleSource(t *testing.T) {
	truth := []radiation.Source{{Pos: geometry.V(62, 38), Strength: 50}}
	readings := collect(t, truth, 5, 7)
	res, err := GridDecompose(readings, GridConfig{Bounds: bounds100()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) == 0 {
		t.Fatal("no sources extracted")
	}
	// Strongest peak near the truth; 10×10 cells are 10 units wide, so
	// quantization alone allows several units of error.
	d := res.Sources[0].Pos.Dist(truth[0].Pos)
	if d > 10 {
		t.Errorf("grid peak error = %v (peak %v)", d, res.Sources[0])
	}
	if res.Sources[0].Strength < 15 || res.Sources[0].Strength > 300 {
		t.Errorf("grid strength = %v, want loosely ≈50", res.Sources[0].Strength)
	}
}

func TestGridDecomposeTwoSources(t *testing.T) {
	truth := []radiation.Source{
		{Pos: geometry.V(47, 71), Strength: 50},
		{Pos: geometry.V(81, 42), Strength: 50},
	}
	readings := collect(t, truth, 5, 8)
	res, err := GridDecompose(readings, GridConfig{Bounds: bounds100()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) < 2 {
		t.Fatalf("extracted %d sources, want ≥ 2", len(res.Sources))
	}
	for _, src := range truth {
		best := math.Inf(1)
		for _, e := range res.Sources {
			best = math.Min(best, e.Pos.Dist(src.Pos))
		}
		if best > 10 {
			t.Errorf("source %v recovered with error %v", src.Pos, best)
		}
	}
}

func TestGridDecomposeErrors(t *testing.T) {
	if _, err := GridDecompose(nil, GridConfig{Bounds: bounds100()}); !errors.Is(err, ErrNoReadings) {
		t.Errorf("no readings: %v", err)
	}
	readings := collect(t, nil, 1, 1)
	if _, err := GridDecompose(readings, GridConfig{}); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestSingleMLE(t *testing.T) {
	truth := []radiation.Source{{Pos: geometry.V(30, 60), Strength: 80}}
	readings := collect(t, truth, 3, 9)
	est, err := SingleMLE(readings, SingleConfig{Bounds: bounds100(), StrengthMax: 200}, rng.New(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	if d := est.Pos.Dist(truth[0].Pos); d > 3 {
		t.Errorf("SingleMLE error = %v", d)
	}
}

func TestMoEAndITPSingleSource(t *testing.T) {
	truth := []radiation.Source{{Pos: geometry.V(55, 45), Strength: 100}}
	readings := collect(t, truth, 10, 10)
	cfg := SingleConfig{Bounds: bounds100()}

	moe, err := MoE(readings, cfg, rng.New(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	if d := moe.Pos.Dist(truth[0].Pos); d > 10 {
		t.Errorf("MoE error = %v", d)
	}

	itp, err := ITP(readings, cfg, rng.New(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	dITP := itp.Pos.Dist(truth[0].Pos)
	if dITP > 10 {
		t.Errorf("ITP error = %v", dITP)
	}
}

func TestSingleSourceMethodsFailGracefullyOnBackground(t *testing.T) {
	readings := collect(t, nil, 2, 11)
	cfg := SingleConfig{Bounds: bounds100()}
	if _, err := MoE(readings, cfg, rng.New(1, 1)); !errors.Is(err, ErrTooFewSensors) {
		t.Errorf("MoE on background: %v", err)
	}
	if _, err := ITP(readings, cfg, rng.New(1, 1)); !errors.Is(err, ErrTooFewSensors) {
		t.Errorf("ITP on background: %v", err)
	}
	if _, err := SingleMLE(nil, cfg, rng.New(1, 1)); !errors.Is(err, ErrNoReadings) {
		t.Errorf("SingleMLE no readings: %v", err)
	}
}

// The motivating failure: single-source estimators pulled between two
// sources land near neither (cf. Section I).
func TestSingleSourceBreaksWithTwoSources(t *testing.T) {
	truth := []radiation.Source{
		{Pos: geometry.V(20, 80), Strength: 100},
		{Pos: geometry.V(80, 20), Strength: 100},
	}
	readings := collect(t, truth, 10, 12)
	est, err := MoE(readings, SingleConfig{Bounds: bounds100()}, rng.New(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	d0 := est.Pos.Dist(truth[0].Pos)
	d1 := est.Pos.Dist(truth[1].Pos)
	if d0 < 10 && d1 < 10 {
		t.Errorf("impossible: estimate near both sources (%v, %v)", d0, d1)
	}
	if math.Min(d0, d1) < 5 {
		t.Logf("note: MoE happened to lock onto one source (d=%v)", math.Min(d0, d1))
	}
}
