// Package wal is radlocd's crash-safe durability layer: a segmented,
// checksummed, append-only write-ahead log of accepted measurements,
// plus atomic checkpoints of the fusion engine's serialized state.
//
// The contract mirrors the classic database recipe. Every reading the
// engine accepts is appended (and, per the fsync policy, made durable)
// BEFORE it is folded into the filter; a checkpoint records the
// engine state after the first Applied records; recovery loads the
// newest valid checkpoint and replays the WAL suffix through the same
// ingest code path. Because the filter is a deterministic function of
// the accepted measurement sequence (including its RNG position,
// which the checkpoint captures), replay reconstructs the pre-crash
// posterior exactly.
//
// The on-disk format is line-oriented NDJSON so operators can inspect
// it with standard tools: each line is {"crc":<uint32>,"rec":{...}}
// where crc is CRC-32 (IEEE) over the raw rec bytes. Segments are
// named wal-%016x.ndjson by the offset (global record index) of their
// first record. Torn or corrupt tails are truncated on open, never
// fatal: crash-mid-write loses at most the records the fsync policy
// already allowed to be lost.
//
// All filesystem access goes through an injectable vfs.FS (Options.FS,
// default the real filesystem), and a failed append is transactional:
// the log truncates any partial bytes back out and reports the error,
// so the record is either fully durable or provably absent — the
// property radlocd's degraded read-only mode is built on. Probe
// retries a wedged log in place once the disk heals.
package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"radloc/internal/obs"
	"radloc/internal/vfs"
)

// Record is one journaled measurement. The field set matches the
// fusion engine's ingest boundary; wal stays import-free of the engine
// so the dependency points one way.
type Record struct {
	SensorID int    `json:"sensorId"`       // deployment index of the reporting sensor
	CPM      int    `json:"cpm"`            // Geiger counts per minute for this interval
	Step     int    `json:"step,omitempty"` // discrete time step of the reading
	Seq      uint64 `json:"seq,omitempty"`  // per-sensor monotone sequence number; 0 = unsequenced
}

// FsyncPolicy selects when appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no accepted reading is
	// ever lost, at per-record fsync cost.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch syncs on explicit Sync calls (the checkpointer and
	// shutdown path issue them) and on segment rotation. A crash can
	// lose the unsynced tail; recovery truncates it cleanly and the
	// at-least-once transport redelivers.
	FsyncBatch
	// FsyncNever never syncs (testing / throwaway replays).
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, batch or never)", s)
}

// String returns the flag-value spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options tunes a Log.
type Options struct {
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SegmentRecords rotates to a new segment after this many records
	// (default 4096).
	SegmentRecords int
	// Metrics, when non-nil, is the registry the log's counters and
	// timing histograms live on (radloc_wal_*). nil disables
	// instrumentation: appends pay one branch and never read the
	// clock.
	Metrics *obs.Registry
	// FS is the filesystem the log lives on. nil means the real
	// filesystem; tests and chaos runs inject vfs.Faulty here.
	FS vfs.FS
}

// RecoveryStats reports what opening an existing WAL directory found
// and repaired. Recovery never fails on bad data — it repairs and
// reports.
type RecoveryStats struct {
	// Segments is the number of valid segment files found.
	Segments int `json:"segments"`
	// Records is the number of valid records across them.
	Records uint64 `json:"records"`
	// TruncatedRecords counts corrupt or torn trailing records
	// discarded (CRC mismatch, malformed JSON, or a missing final
	// newline).
	TruncatedRecords uint64 `json:"truncatedRecords,omitempty"`
	// TruncatedBytes is the number of bytes cut from the log tail.
	TruncatedBytes int64 `json:"truncatedBytes,omitempty"`
	// DroppedSegments counts whole segment files discarded because
	// they sat beyond a corrupt tail or carried unparsable names.
	DroppedSegments int `json:"droppedSegments,omitempty"`
}

// Log is an append-only record log over one directory. Methods are not
// concurrency-safe; the fusion engine serializes appends under its own
// lock (which is what makes WAL order = application order).
type Log struct {
	dir      string
	fs       vfs.FS
	opts     Options
	segments []segment   // sorted by start; last one is the active tail
	next     uint64      // offset the next appended record will get
	retain   uint64      // Prune floor: records ≥ retain survive (replication)
	f        vfs.File    // active tail segment, opened for append
	dirty    bool        // unsynced appends outstanding
	wedged   bool        // a failed append left bytes we could not truncate away
	met      *walMetrics // nil when uninstrumented
}

type segment struct {
	start uint64 // offset of the first record
	count uint64 // valid records in the file
	bytes int64  // valid bytes in the file (the replayable prefix)
	path  string
}

const segPrefix, segSuffix = "wal-", ".ndjson"

func segmentPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix))
}

var crcTable = crc32.IEEETable

type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Open opens (creating if needed) the WAL in dir, validates every
// segment, truncates any torn or corrupt tail, and positions the log
// to append after the last valid record. Bad data is repaired and
// reported in RecoveryStats, never returned as an error; errors are
// reserved for the filesystem refusing to cooperate.
func Open(dir string, opts Options) (*Log, RecoveryStats, error) {
	if opts.SegmentRecords <= 0 {
		opts.SegmentRecords = 4096
	}
	fsys := vfs.Or(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryStats{}, err
	}
	l := &Log{dir: dir, fs: fsys, opts: opts, retain: ^uint64(0), met: newWALMetrics(opts.Metrics)}
	stats, err := l.recover()
	if err != nil {
		return nil, stats, err
	}
	if err := l.openTail(); err != nil {
		return nil, stats, err
	}
	l.met.recovered(stats)
	l.met.layout(len(l.segments), l.next)
	return l, stats, nil
}

// recover scans the directory, validates segments in offset order and
// truncates at the first invalid record, dropping everything after it.
func (l *Log) recover() (RecoveryStats, error) {
	var stats RecoveryStats
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return stats, err
	}
	var segs []segment
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		start, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil || segmentPath(l.dir, start) != filepath.Join(l.dir, name) {
			// Unparsable or non-canonical name: quarantine rather than
			// guess at an offset.
			stats.DroppedSegments++
			_ = l.fs.Rename(filepath.Join(l.dir, name), filepath.Join(l.dir, name+".bad"))
			continue
		}
		segs = append(segs, segment{start: start, path: filepath.Join(l.dir, name)})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].start < segs[b].start })

	var prevEnd uint64
	truncated := false
	for i := range segs {
		seg := &segs[i]
		if truncated || (i > 0 && seg.start < prevEnd) {
			// Beyond a corrupt tail, or overlapping the previous
			// segment's records: this data can't be trusted.
			stats.DroppedSegments++
			_ = l.fs.Remove(seg.path)
			seg.count = 0
			continue
		}
		count, goodBytes, badRecs, err := validateSegment(l.fs, seg.path)
		if err != nil {
			return stats, err
		}
		if badRecs > 0 {
			fi, statErr := l.fs.Stat(seg.path)
			if statErr == nil {
				stats.TruncatedBytes += fi.Size() - goodBytes
			}
			stats.TruncatedRecords += badRecs
			if err := l.fs.Truncate(seg.path, goodBytes); err != nil {
				return stats, err
			}
			truncated = true
		}
		if count == 0 && (badRecs > 0 || seg.start != 0) && i == len(segs)-1 {
			// Fully-torn tail segment: remove the empty husk unless it
			// is the sole genesis segment.
			if seg.start != 0 || len(segs) > 1 {
				_ = l.fs.Remove(seg.path)
				seg.count = 0
				if badRecs > 0 {
					stats.DroppedSegments++
				}
				continue
			}
		}
		seg.count = count
		seg.bytes = goodBytes
		prevEnd = seg.start + seg.count
		stats.Segments++
		stats.Records += count
	}
	for _, seg := range segs {
		if seg.count > 0 || (seg.start == 0 && len(segs) == 1) {
			l.segments = append(l.segments, seg)
		}
	}
	if n := len(l.segments); n > 0 {
		last := l.segments[n-1]
		l.next = last.start + last.count
	}
	return stats, nil
}

// validateSegment counts the valid prefix of one segment file:
// records, the byte length of that prefix, and how many invalid
// records follow it.
func validateSegment(fsys vfs.FS, path string) (records uint64, goodBytes int64, badRecs uint64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil {
			// EOF with a partial line = torn final write.
			if len(line) > 0 {
				badRecs++
			}
			return records, goodBytes, badRecs, nil
		}
		if _, ok := decodeLine(line); !ok {
			// First bad record: everything after it is suspect too.
			// Count the remaining lines as truncated.
			badRecs++
			for {
				more, rerr2 := r.ReadBytes('\n')
				if len(more) > 0 {
					badRecs++
				}
				if rerr2 != nil {
					return records, goodBytes, badRecs, nil
				}
				_ = more
			}
		}
		records++
		goodBytes += int64(len(line))
	}
}

// decodeLine parses and checksums one NDJSON line. Beyond the CRC it
// demands the envelope be byte-identical to what Append writes:
// encoding/json matches field names case-insensitively, so without
// the re-marshal comparison a single bit flip turning "rec" into
// "Rec" would decode cleanly with the CRC (computed over the
// untouched payload bytes) still matching — corruption the scrubber
// could never see.
func decodeLine(line []byte) (Record, bool) {
	line = bytes.TrimRight(line, "\n")
	if len(line) == 0 {
		return Record{}, false
	}
	var env envelope
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(&env); err != nil || dec.More() {
		return Record{}, false
	}
	if len(env.Rec) == 0 || crc32.Checksum(env.Rec, crcTable) != env.CRC {
		return Record{}, false
	}
	if canonical, err := json.Marshal(env); err != nil || !bytes.Equal(canonical, line) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// openTail opens the active segment for appending, creating the
// genesis segment if the directory is empty.
func (l *Log) openTail() error {
	if len(l.segments) == 0 {
		l.segments = append(l.segments, segment{start: l.next, path: segmentPath(l.dir, l.next)})
	}
	tail := &l.segments[len(l.segments)-1]
	f, err := l.fs.OpenFile(tail.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	return nil
}

// Offset is the global record index the next Append will receive —
// equivalently, the number of records ever appended (valid after
// recovery truncation).
func (l *Log) Offset() uint64 { return l.next }

// Oldest is the offset of the oldest record still on disk — the floor
// of what Replay can stream. A replica asking for anything below it
// must bootstrap from a checkpoint instead.
func (l *Log) Oldest() uint64 {
	if len(l.segments) == 0 {
		return l.next
	}
	return l.segments[0].start
}

// SizeBytes is the total valid bytes across all live segments — the
// log's on-disk footprint, excluding any torn suffix a failed append
// left pending repair. The agent spool's -max-spool-bytes bound reads
// this.
func (l *Log) SizeBytes() int64 {
	var n int64
	for _, seg := range l.segments {
		n += seg.bytes
	}
	return n
}

// Segments is the number of live segment files, the active tail
// included.
func (l *Log) Segments() int { return len(l.segments) }

// SetRetain installs a pruning floor: segments holding any record with
// offset ≥ off survive Prune regardless of the checkpoint watermark.
// The replication layer parks the floor at the shipped-and-acked
// replica watermark so a lagging standby never loses the suffix it
// still needs; ^uint64(0) (the initial value) disables the floor.
func (l *Log) SetRetain(off uint64) { l.retain = off }

// Append journals one record, making it durable per the fsync policy,
// and returns its offset. Append is transactional: on error the log
// holds exactly the records it held before — any partial bytes are
// truncated back out (or, if even that fails, the log wedges and
// every Append fails until Probe repairs it).
func (l *Log) Append(rec Record) (uint64, error) {
	if l.f == nil {
		return 0, errors.New("wal: log closed")
	}
	if l.wedged {
		if err := l.repairTail(); err != nil {
			return 0, fmt.Errorf("wal: wedged by earlier torn append: %w", err)
		}
	}
	t0 := l.met.now()
	tail := &l.segments[len(l.segments)-1]
	if tail.count >= uint64(l.opts.SegmentRecords) {
		if err := l.rotate(); err != nil {
			return 0, err
		}
		tail = &l.segments[len(l.segments)-1]
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	env := envelope{CRC: crc32.Checksum(raw, crcTable), Rec: raw}
	line, err := json.Marshal(env)
	if err != nil {
		return 0, err
	}
	line = append(line, '\n')
	if n, err := l.f.Write(line); err != nil {
		if n > 0 {
			// Torn write: cut the partial line back out so the file
			// ends at the last whole record.
			if rerr := l.repairTail(); rerr != nil {
				return 0, fmt.Errorf("wal: torn append (%w); tail repair failed: %v", err, rerr)
			}
		}
		return 0, err
	}
	l.dirty = true
	if l.opts.Fsync == FsyncAlways {
		if err := l.syncTail(); err != nil {
			// The line is written but not durable; remove it so the
			// error genuinely vetoes the record.
			if rerr := l.repairTail(); rerr != nil {
				return 0, fmt.Errorf("wal: append sync failed (%w); tail repair failed: %v", err, rerr)
			}
			return 0, err
		}
	}
	off := l.next
	l.next++
	tail.count++
	tail.bytes += int64(len(line))
	l.met.appended(t0, l.next)
	return off, nil
}

// repairTail truncates the tail file back to its last accounted byte,
// clearing any partial line a failed append left behind. Failure
// wedges the log; Probe (or the next Append) retries.
func (l *Log) repairTail() error {
	tail := &l.segments[len(l.segments)-1]
	if err := l.fs.Truncate(tail.path, tail.bytes); err != nil {
		l.wedged = true
		return err
	}
	l.wedged = false
	return nil
}

// Probe checks whether the log's directory accepts durable writes
// again: it repairs a wedged tail, then creates, syncs and removes a
// scratch file, and finally flushes any unsynced appends. A nil
// return means the disk took a full write+fsync round trip — the
// degraded-mode prober calls this on a jittered schedule and lifts
// read-only mode when it succeeds.
func (l *Log) Probe() error {
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	if l.wedged {
		if err := l.repairTail(); err != nil {
			return err
		}
	}
	path := filepath.Join(l.dir, ".probe")
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("probe\n"))
	var serr error
	if werr == nil {
		serr = f.Sync()
	}
	cerr := f.Close()
	_ = l.fs.Remove(path)
	if werr != nil {
		return werr
	}
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return cerr
	}
	return l.Sync()
}

// Sync flushes and (policy permitting) fsyncs outstanding appends. The
// checkpointer MUST call this before persisting a checkpoint that
// covers them: a checkpoint must never run ahead of the durable log.
func (l *Log) Sync() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	return l.syncTail()
}

func (l *Log) syncTail() error {
	t0 := l.met.now()
	if l.opts.Fsync != FsyncNever {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.met.synced(t0)
	}
	l.dirty = false
	return nil
}

// rotate seals the active segment and starts a new one at the current
// offset. Ordered so that any failure leaves the log consistent: the
// new segment is created and the directory synced before the old tail
// is released.
func (l *Log) rotate() error {
	if err := l.syncTail(); err != nil {
		return err
	}
	seg := segment{start: l.next, path: segmentPath(l.dir, l.next)}
	f, err := l.fs.OpenFile(seg.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if l.opts.Fsync != FsyncNever {
		if err := syncDirFS(l.fs, l.dir); err != nil {
			_ = f.Close()
			_ = l.fs.Remove(seg.path)
			return err
		}
	}
	closeErr := l.f.Close()
	l.segments = append(l.segments, seg)
	l.f = f
	l.met.rotated(len(l.segments))
	// The sealed segment was already synced; a failing close is still
	// a disk talking back and must reach the caller, not /dev/null.
	return closeErr
}

// AlignTo fast-forwards the append offset to at least off by sealing
// the tail and opening a fresh segment there. Used when a checkpoint
// is AHEAD of the surviving log (the log's tail was truncated by
// corruption after the checkpoint covered it): new records must not
// reuse offsets the checkpoint claims are already folded in.
func (l *Log) AlignTo(off uint64) error {
	if off <= l.next {
		return nil
	}
	if err := l.syncTail(); err != nil {
		return err
	}
	seg := segment{start: off, path: segmentPath(l.dir, off)}
	f, err := l.fs.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	closeErr := l.f.Close()
	// Drop a still-empty tail husk so the directory stays canonical.
	if tail := l.segments[len(l.segments)-1]; tail.count == 0 {
		_ = l.fs.Remove(tail.path)
		l.segments = l.segments[:len(l.segments)-1]
	}
	l.next = off
	l.segments = append(l.segments, seg)
	l.f = f
	return closeErr
}

// Replay streams every durable record with offset ≥ from, in order,
// to fn. Replay reads the files as recovered on Open; call it before
// appending.
func (l *Log) Replay(from uint64, fn func(off uint64, rec Record) error) error {
	if err := l.Sync(); err != nil {
		return err
	}
	t0 := l.met.now()
	var replayed uint64
	defer func() { l.met.replayDone(t0, replayed) }()
	for _, seg := range l.segments {
		if seg.start+seg.count <= from || seg.count == 0 {
			continue
		}
		f, err := l.fs.Open(seg.path)
		if err != nil {
			return err
		}
		r := bufio.NewReaderSize(f, 64<<10)
		off := seg.start
		for off < seg.start+seg.count {
			line, rerr := r.ReadBytes('\n')
			rec, ok := decodeLine(line)
			if !ok {
				_ = f.Close()
				return fmt.Errorf("wal: segment %s corrupt at offset %d after recovery", seg.path, off)
			}
			if off >= from {
				if err := fn(off, rec); err != nil {
					_ = f.Close()
					return err
				}
				replayed++
			}
			off++
			if rerr != nil {
				break
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Prune removes whole segments every record of which sits below
// keepFrom (they are covered by a checkpoint and will never be
// replayed) AND below the SetRetain floor (a replica may still need
// them). The active tail always survives. Segments a checkpoint has
// covered but the retain floor holds back are counted on the
// radloc_wal_retained_segments gauge.
func (l *Log) Prune(keepFrom uint64) error {
	effective := keepFrom
	if l.retain < effective {
		effective = l.retain
	}
	retained := 0
	kept := l.segments[:0]
	for i, seg := range l.segments {
		last := i == len(l.segments)-1
		if !last && seg.start+seg.count <= effective {
			if err := l.fs.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		if !last && seg.start+seg.count <= keepFrom {
			retained++
		}
		kept = append(kept, seg)
	}
	l.segments = kept
	l.met.layout(len(l.segments), l.next)
	l.met.retained(retained)
	return nil
}

// DropOldest removes the oldest sealed segment outright — records and
// all — and returns the offset range [start, end) it covered. This is
// the agent spool's byte-bound shedding primitive: when the spool
// exceeds -max-spool-bytes, the OLDEST data goes first (the newest
// readings are the ones still worth delivering). ok=false means only
// the active tail remains, which is never dropped. The retain floor
// is intentionally not consulted: shedding exists to free disk even
// when nothing downstream has acked.
func (l *Log) DropOldest() (start, end uint64, ok bool, err error) {
	if len(l.segments) < 2 {
		return 0, 0, false, nil
	}
	seg := l.segments[0]
	if err := l.fs.Remove(seg.path); err != nil && !os.IsNotExist(err) {
		return 0, 0, false, err
	}
	l.segments = append(l.segments[:0], l.segments[1:]...)
	l.met.layout(len(l.segments), l.next)
	return seg.start, seg.start + seg.count, true, nil
}

// Close flushes, syncs and closes the log.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.syncTail()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// syncDirFS fsyncs a directory through fsys so renames and creates in
// it are durable. Some filesystems refuse fsync on directories; that
// is their durability call to make, not a WAL failure, so sync errors
// on the read-only directory handle are tolerated.
func syncDirFS(fsys vfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
