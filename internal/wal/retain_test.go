package wal

import (
	"testing"
)

func TestRetainFloorBlocksPrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 5})
	appendN(t, l, 0, 17)

	// A replica acked through offset 7: pruning to the checkpoint at 15
	// may only drop segments wholly below 7 — the lagging replica still
	// needs [5,15).
	l.SetRetain(7)
	if err := l.Prune(15); err != nil {
		t.Fatal(err)
	}
	if got := l.Oldest(); got != 5 {
		t.Fatalf("oldest after retained prune = %d, want 5", got)
	}
	if got := replayAll(t, l, 5); len(got) != 12 {
		t.Fatalf("replay after retained prune: %d records, want 12", len(got))
	}

	// The replica catches up: the floor lifts and the same prune now
	// takes effect in full.
	l.SetRetain(17)
	if err := l.Prune(15); err != nil {
		t.Fatal(err)
	}
	if got := l.Oldest(); got != 15 {
		t.Fatalf("oldest after lifted floor = %d, want 15", got)
	}
	if got := replayAll(t, l, 15); len(got) != 2 {
		t.Fatalf("replay after full prune: %d records, want 2", len(got))
	}
	l.Close()
}

func TestRetainDefaultsUnbounded(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 5})
	appendN(t, l, 0, 12)
	// No replica registered: pruning behaves exactly as before the
	// retention floor existed.
	if err := l.Prune(10); err != nil {
		t.Fatal(err)
	}
	if got := l.Oldest(); got != 10 {
		t.Fatalf("oldest = %d, want 10", got)
	}
	l.Close()
}
