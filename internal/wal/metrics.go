package wal

import (
	"time"

	"radloc/internal/obs"
)

// walMetrics instruments one Log. All methods are nil-receiver safe so
// an uninstrumented log (Options.Metrics == nil) pays one branch and
// never reads the clock.
type walMetrics struct {
	appends, fsyncs, rotations *obs.Counter
	replayed                   *obs.Counter
	truncatedRecords           *obs.Counter
	droppedSegments            *obs.Counter
	appendSeconds              *obs.Histogram
	fsyncSeconds               *obs.Histogram
	replaySeconds              *obs.Histogram
	offset, segments           *obs.Gauge
	retainedSegments           *obs.Gauge
}

// newWALMetrics registers the log's collectors on r; nil r disables
// instrumentation entirely (nil walMetrics).
func newWALMetrics(r *obs.Registry) *walMetrics {
	if r == nil {
		return nil
	}
	return &walMetrics{
		appends: r.Counter("radloc_wal_appends_total",
			"Records appended to the write-ahead log."),
		fsyncs: r.Counter("radloc_wal_fsyncs_total",
			"fsync calls issued on the active segment."),
		rotations: r.Counter("radloc_wal_rotations_total",
			"Segment rotations (active tail sealed, new segment opened)."),
		replayed: r.Counter("radloc_wal_replayed_records_total",
			"Records streamed out by Replay (recovery and spool reads)."),
		truncatedRecords: r.Counter("radloc_wal_recovery_truncated_records_total",
			"Corrupt or torn records discarded by recovery on Open."),
		droppedSegments: r.Counter("radloc_wal_recovery_dropped_segments_total",
			"Whole segment files discarded by recovery on Open."),
		appendSeconds: r.Histogram("radloc_wal_append_seconds",
			"Wall-clock seconds per Append, including any per-record fsync.", nil),
		fsyncSeconds: r.Histogram("radloc_wal_fsync_seconds",
			"Wall-clock seconds per flush+fsync of the active segment.", nil),
		replaySeconds: r.Histogram("radloc_wal_replay_seconds",
			"Wall-clock seconds per Replay call.", nil),
		offset: r.Gauge("radloc_wal_offset",
			"Global record index the next append will receive."),
		segments: r.Gauge("radloc_wal_segments",
			"Live segment files, including the active tail."),
		retainedSegments: r.Gauge("radloc_wal_retained_segments",
			"Segments held past the checkpoint watermark because a lagging replica still needs them."),
	}
}

// now returns the wall clock when instrumented, zero otherwise.
func (m *walMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// observe records elapsed time since t0 into h; no-op when off.
func (m *walMetrics) observe(h *obs.Histogram, t0 time.Time) {
	if m == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// appended accounts one successful append at offset off+1.
func (m *walMetrics) appended(t0 time.Time, next uint64) {
	if m == nil {
		return
	}
	m.appends.Inc()
	m.offset.Set(float64(next))
	m.observe(m.appendSeconds, t0)
}

// synced accounts one flush+fsync.
func (m *walMetrics) synced(t0 time.Time) {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
	m.observe(m.fsyncSeconds, t0)
}

// layout refreshes the segment-count and offset gauges.
func (m *walMetrics) layout(segments int, next uint64) {
	if m == nil {
		return
	}
	m.segments.Set(float64(segments))
	m.offset.Set(float64(next))
}

// retained refreshes the replica-retention gauge after a Prune pass.
func (m *walMetrics) retained(n int) {
	if m == nil {
		return
	}
	m.retainedSegments.Set(float64(n))
}

// recovered folds one Open's recovery stats into the counters.
func (m *walMetrics) recovered(stats RecoveryStats) {
	if m == nil {
		return
	}
	m.truncatedRecords.Add(stats.TruncatedRecords)
	m.droppedSegments.Add(uint64(stats.DroppedSegments))
}

// rotated accounts one segment rotation.
func (m *walMetrics) rotated(segments int) {
	if m == nil {
		return
	}
	m.rotations.Inc()
	m.segments.Set(float64(segments))
}

// replayDone accounts one Replay call streaming n records.
func (m *walMetrics) replayDone(t0 time.Time, n uint64) {
	if m == nil {
		return
	}
	m.replayed.Add(n)
	m.observe(m.replaySeconds, t0)
}
