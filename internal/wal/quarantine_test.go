package wal

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// readQuarantined decodes every record in every segment file under
// dir, in file order, asserting the envelope format survived the move.
func readQuarantined(t *testing.T, dir string) []Record {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), segPrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []Record
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			rec, ok := decodeLine(append(sc.Bytes(), '\n'))
			if !ok {
				t.Fatalf("quarantined file %s has an undecodable line", name)
			}
			out = append(out, rec)
		}
		f.Close()
	}
	return out
}

func TestQuarantineSuffixMidSegment(t *testing.T) {
	dir := t.TempDir()
	div := filepath.Join(dir, "diverged")
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	appendN(t, l, 0, 10) // segments: [0..3], [4..7], [8..9]

	moved, err := l.QuarantineSuffix(6, div)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4 {
		t.Fatalf("moved = %d, want 4", moved)
	}
	if l.Offset() != 6 {
		t.Fatalf("offset after quarantine = %d, want 6", l.Offset())
	}

	// Replay serves exactly the kept prefix.
	recs := replayAll(t, l, 0)
	if len(recs) != 6 {
		t.Fatalf("replayed %d records, want 6", len(recs))
	}
	for i, rec := range recs {
		if rec.CPM != 30+i {
			t.Fatalf("replayed record %d has cpm %d, want %d", i, rec.CPM, 30+i)
		}
	}

	// The quarantined files hold exactly the moved suffix, decodable
	// with the live envelope format.
	qrecs := readQuarantined(t, div)
	if len(qrecs) != 4 {
		t.Fatalf("quarantined %d records, want 4", len(qrecs))
	}
	for i, rec := range qrecs {
		if rec.CPM != 30+6+i {
			t.Fatalf("quarantined record %d has cpm %d, want %d", i, rec.CPM, 30+6+i)
		}
	}

	// Appends continue at the floor, and a reopen recovers cleanly.
	off, err := l.Append(Record{SensorID: 1, CPM: 999})
	if err != nil {
		t.Fatal(err)
	}
	if off != 6 {
		t.Fatalf("append after quarantine got offset %d, want 6", off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, stats := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l2.Close()
	if stats.TruncatedRecords != 0 || stats.DroppedSegments != 0 {
		t.Fatalf("reopen after quarantine repaired something: %+v", stats)
	}
	if l2.Offset() != 7 {
		t.Fatalf("reopened offset = %d, want 7", l2.Offset())
	}
	if got := replayAll(t, l2, 6); len(got) != 1 || got[0].CPM != 999 {
		t.Fatalf("replay of post-quarantine append = %+v", got)
	}
}

func TestQuarantineSuffixWholeLog(t *testing.T) {
	dir := t.TempDir()
	div := filepath.Join(dir, "diverged")
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l.Close()
	appendN(t, l, 0, 6)

	moved, err := l.QuarantineSuffix(0, div)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 6 {
		t.Fatalf("moved = %d, want 6", moved)
	}
	if l.Offset() != 0 || l.Oldest() != 0 {
		t.Fatalf("offsets after full quarantine: next %d oldest %d, want 0 0", l.Offset(), l.Oldest())
	}
	if got := replayAll(t, l, 0); len(got) != 0 {
		t.Fatalf("replay after full quarantine returned %d records", len(got))
	}
	if got := readQuarantined(t, div); len(got) != 6 {
		t.Fatalf("quarantined %d records, want 6", len(got))
	}
}

func TestQuarantineSuffixNoopAndRepeats(t *testing.T) {
	dir := t.TempDir()
	div := filepath.Join(dir, "diverged")
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l.Close()
	appendN(t, l, 0, 4)

	// Floor at or above the head is a no-op.
	if moved, err := l.QuarantineSuffix(4, div); err != nil || moved != 0 {
		t.Fatalf("noop quarantine: moved %d, err %v", moved, err)
	}
	if _, err := os.Stat(div); !os.IsNotExist(err) {
		t.Fatal("noop quarantine created the diverged directory")
	}

	// Two quarantines landing on the same destination name must not
	// overwrite each other.
	if moved, err := l.QuarantineSuffix(2, div); err != nil || moved != 2 {
		t.Fatalf("first quarantine: moved %d, err %v", moved, err)
	}
	appendN(t, l, 2, 2)
	if moved, err := l.QuarantineSuffix(2, div); err != nil || moved != 2 {
		t.Fatalf("second quarantine: moved %d, err %v", moved, err)
	}
	if got := readQuarantined(t, div); len(got) != 4 {
		t.Fatalf("after two quarantines dir holds %d records, want 4", len(got))
	}
}
