package wal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint is one durable engine snapshot: the serialized engine
// state after applying the first Applied journaled records. Recovery
// loads the newest valid checkpoint and replays the WAL from Applied.
type Checkpoint struct {
	// Applied is the WAL offset this state corresponds to.
	Applied uint64 `json:"applied"`
	// State is the engine's opaque serialized state.
	State json.RawMessage `json:"state"`
}

const ckptPrefix, ckptSuffix = "checkpoint-", ".json"

func checkpointPath(dir string, applied uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, applied, ckptSuffix))
}

type ckptEnvelope struct {
	CRC     uint32          `json:"crc"`
	Applied uint64          `json:"applied"`
	State   json.RawMessage `json:"state"`
}

// WriteCheckpoint atomically persists a checkpoint into dir
// (write-to-temp, fsync, rename, fsync dir). The caller MUST have
// Sync'd the WAL through Applied first — a checkpoint that refers to
// records the log could still lose is a lie.
func WriteCheckpoint(dir string, ck Checkpoint) error {
	env := ckptEnvelope{
		CRC:     crc32.Checksum(ck.State, crcTable),
		Applied: ck.Applied,
		State:   ck.State,
	}
	blob, err := json.Marshal(env)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ckptPrefix+"tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, checkpointPath(dir, ck.Applied)); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadCheckpoint returns the newest valid checkpoint in dir. Corrupt
// or unreadable candidates are skipped (renamed aside), walking back
// to older ones; ok=false means no usable checkpoint exists — cold
// start from WAL offset 0.
func LoadCheckpoint(dir string) (ck Checkpoint, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return Checkpoint{}, false, nil
		}
		return Checkpoint{}, false, err
	}
	var candidates []uint64
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		applied, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil || checkpointPath(dir, applied) != filepath.Join(dir, name) {
			continue
		}
		candidates = append(candidates, applied)
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a] > candidates[b] })
	for _, applied := range candidates {
		path := checkpointPath(dir, applied)
		blob, rerr := os.ReadFile(path)
		if rerr != nil {
			continue
		}
		var env ckptEnvelope
		if json.Unmarshal(blob, &env) != nil ||
			env.Applied != applied ||
			crc32.Checksum(env.State, crcTable) != env.CRC {
			// Corrupt: move aside and fall back to the previous one.
			_ = os.Rename(path, path+".bad")
			continue
		}
		return Checkpoint{Applied: env.Applied, State: env.State}, true, nil
	}
	return Checkpoint{}, false, nil
}

// PruneCheckpoints removes all but the newest keep valid-looking
// checkpoints (by name; content is not re-validated).
func PruneCheckpoints(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var candidates []uint64
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		applied, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil || checkpointPath(dir, applied) != filepath.Join(dir, name) {
			continue
		}
		candidates = append(candidates, applied)
	}
	if len(candidates) <= keep {
		return nil
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a] > candidates[b] })
	for _, applied := range candidates[keep:] {
		if err := os.Remove(checkpointPath(dir, applied)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
