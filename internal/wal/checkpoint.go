package wal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"radloc/internal/vfs"
)

// Checkpoint is one durable engine snapshot: the serialized engine
// state after applying the first Applied journaled records. Recovery
// loads the newest valid checkpoint and replays the WAL from Applied.
type Checkpoint struct {
	// Applied is the WAL offset this state corresponds to.
	Applied uint64 `json:"applied"`
	// State is the engine's opaque serialized state.
	State json.RawMessage `json:"state"`
}

const ckptPrefix, ckptSuffix = "checkpoint-", ".json"

func checkpointPath(dir string, applied uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, applied, ckptSuffix))
}

type ckptEnvelope struct {
	CRC     uint32          `json:"crc"`
	Applied uint64          `json:"applied"`
	State   json.RawMessage `json:"state"`
}

// WriteCheckpoint atomically persists a checkpoint into dir on the
// real filesystem. See WriteCheckpointFS.
func WriteCheckpoint(dir string, ck Checkpoint) error {
	return WriteCheckpointFS(vfs.OS{}, dir, ck)
}

// WriteCheckpointFS atomically persists a checkpoint into dir
// (write-to-temp, fsync, rename, fsync dir) through fsys. The caller
// MUST have Sync'd the WAL through Applied first — a checkpoint that
// refers to records the log could still lose is a lie. Every error on
// the way — write, sync, close, rename — is propagated: a checkpoint
// either exists whole or reports why it does not.
func WriteCheckpointFS(fsys vfs.FS, dir string, ck Checkpoint) error {
	fsys = vfs.Or(fsys)
	env := ckptEnvelope{
		CRC:     crc32.Checksum(ck.State, crcTable),
		Applied: ck.Applied,
		State:   ck.State,
	}
	blob, err := json.Marshal(env)
	if err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, ckptPrefix+"tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmpName, checkpointPath(dir, ck.Applied)); err != nil {
		return err
	}
	return syncDirFS(fsys, dir)
}

// LoadCheckpoint returns the newest valid checkpoint in dir on the
// real filesystem. See LoadCheckpointFS.
func LoadCheckpoint(dir string) (ck Checkpoint, ok bool, err error) {
	return LoadCheckpointFS(vfs.OS{}, dir)
}

// LoadCheckpointFS returns the newest valid checkpoint in dir through
// fsys. Corrupt or unreadable candidates are skipped (renamed aside),
// walking back to older ones; ok=false means no usable checkpoint
// exists — cold start from WAL offset 0.
func LoadCheckpointFS(fsys vfs.FS, dir string) (ck Checkpoint, ok bool, err error) {
	fsys = vfs.Or(fsys)
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return Checkpoint{}, false, nil
		}
		return Checkpoint{}, false, err
	}
	var candidates []uint64
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		applied, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil || checkpointPath(dir, applied) != filepath.Join(dir, name) {
			continue
		}
		candidates = append(candidates, applied)
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a] > candidates[b] })
	for _, applied := range candidates {
		path := checkpointPath(dir, applied)
		blob, rerr := fsys.ReadFile(path)
		if rerr != nil {
			continue
		}
		var env ckptEnvelope
		if json.Unmarshal(blob, &env) != nil ||
			env.Applied != applied ||
			crc32.Checksum(env.State, crcTable) != env.CRC {
			// Corrupt: move aside and fall back to the previous one.
			_ = fsys.Rename(path, path+".bad")
			continue
		}
		return Checkpoint{Applied: env.Applied, State: env.State}, true, nil
	}
	return Checkpoint{}, false, nil
}

// VerifyCheckpoints re-validates every checkpoint file in dir through
// fsys, returning the applied offsets of the ones whose CRC envelope
// no longer checks out. Nothing is moved or repaired — this is the
// integrity scrubber's read-only detection pass; quarantine and
// repair are the caller's decisions.
func VerifyCheckpoints(fsys vfs.FS, dir string) (bad []uint64, err error) {
	fsys = vfs.Or(fsys)
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		applied, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil || checkpointPath(dir, applied) != filepath.Join(dir, name) {
			continue
		}
		blob, rerr := fsys.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			bad = append(bad, applied)
			continue
		}
		var env ckptEnvelope
		if json.Unmarshal(blob, &env) != nil ||
			env.Applied != applied ||
			crc32.Checksum(env.State, crcTable) != env.CRC {
			bad = append(bad, applied)
		}
	}
	sort.Slice(bad, func(a, b int) bool { return bad[a] < bad[b] })
	return bad, nil
}

// QuarantineCheckpoint renames the checkpoint at applied to a .bad
// sibling through fsys (collision-safe), so recovery stops trusting
// it without destroying the evidence. Used by the scrubber when a
// cold checkpoint fails re-verification.
func QuarantineCheckpoint(fsys vfs.FS, dir string, applied uint64) error {
	fsys = vfs.Or(fsys)
	path := checkpointPath(dir, applied)
	dst, err := uniquePath(fsys, dir, filepath.Base(path)+".bad")
	if err != nil {
		return err
	}
	return fsys.Rename(path, dst)
}

// PruneCheckpoints removes all but the newest keep valid-looking
// checkpoints in dir on the real filesystem. See PruneCheckpointsFS.
func PruneCheckpoints(dir string, keep int) error {
	return PruneCheckpointsFS(vfs.OS{}, dir, keep)
}

// PruneCheckpointsFS removes all but the newest keep valid-looking
// checkpoints (by name; content is not re-validated) through fsys.
func PruneCheckpointsFS(fsys vfs.FS, dir string, keep int) error {
	fsys = vfs.Or(fsys)
	if keep < 1 {
		keep = 1
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	var candidates []uint64
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		applied, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil || checkpointPath(dir, applied) != filepath.Join(dir, name) {
			continue
		}
		candidates = append(candidates, applied)
	}
	if len(candidates) <= keep {
		return nil
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a] > candidates[b] })
	for _, applied := range candidates[keep:] {
		if err := fsys.Remove(checkpointPath(dir, applied)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
