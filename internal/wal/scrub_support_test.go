package wal

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestQuarantineSuffixAtSegmentHead puts the floor exactly on a
// segment boundary: no file is split, the straddling-segment path is
// never entered, and whole segments move intact.
func TestQuarantineSuffixAtSegmentHead(t *testing.T) {
	dir := t.TempDir()
	div := filepath.Join(dir, "diverged")
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l.Close()
	appendN(t, l, 0, 10) // segments: [0..3], [4..7], [8..9]

	moved, err := l.QuarantineSuffix(4, div)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 6 {
		t.Fatalf("moved = %d, want 6", moved)
	}
	if l.Offset() != 4 || l.Oldest() != 0 {
		t.Fatalf("after boundary quarantine: next %d oldest %d, want 4 0", l.Offset(), l.Oldest())
	}
	// The kept segment was never rewritten: replay yields its exact
	// records, and no split temp artifacts exist in the live dir.
	recs := replayAll(t, l, 0)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("boundary quarantine left temp file %s", e.Name())
		}
	}
	if got := readQuarantined(t, div); len(got) != 6 {
		t.Fatalf("quarantined %d records, want 6", len(got))
	}
}

// TestQuarantineSuffixEmptyAboveHead covers the empty-suffix edges:
// a floor above the head and a floor exactly at the head both move
// nothing and leave the log untouched.
func TestQuarantineSuffixEmptyAboveHead(t *testing.T) {
	dir := t.TempDir()
	div := filepath.Join(dir, "diverged")
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l.Close()
	appendN(t, l, 0, 5)

	for _, floor := range []uint64{5, 6, 100} {
		if moved, err := l.QuarantineSuffix(floor, div); err != nil || moved != 0 {
			t.Fatalf("floor %d: moved %d, err %v", floor, moved, err)
		}
	}
	if got := replayAll(t, l, 0); len(got) != 5 {
		t.Fatalf("log changed under empty quarantines: %d records", len(got))
	}
	if _, err := os.Stat(div); !os.IsNotExist(err) {
		t.Fatal("empty quarantine created the diverged directory")
	}
}

// TestQuarantineRacingPrune interleaves checkpoint-style prunes with
// a divergence quarantine under the WAL's owner-lock discipline (the
// log itself is single-writer; walJournal.mu serializes it in the
// daemon). Run under -race this proves the lock protocol suffices and
// the log's bookkeeping stays consistent whichever side wins each
// segment.
func TestQuarantineRacingPrune(t *testing.T) {
	dir := t.TempDir()
	div := filepath.Join(dir, "diverged")
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l.Close()
	appendN(t, l, 0, 40)

	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := uint64(4); k <= 20; k += 4 {
			mu.Lock()
			if err := l.Prune(k); err != nil {
				t.Errorf("prune to %d: %v", k, err)
			}
			mu.Unlock()
		}
	}()
	mu.Lock()
	moved, err := l.QuarantineSuffix(30, div)
	mu.Unlock()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if moved != 10 {
		t.Fatalf("moved = %d, want 10", moved)
	}
	mu.Lock()
	defer mu.Unlock()
	if l.Offset() != 30 {
		t.Fatalf("offset = %d, want 30", l.Offset())
	}
	// Whatever the prune goroutine got to, the surviving window is a
	// contiguous [Oldest, 30) prefix that replays cleanly.
	oldest := l.Oldest()
	if got := replayAll(t, l, oldest); uint64(len(got)) != 30-oldest {
		t.Fatalf("replayed %d records from %d, want %d", len(got), oldest, 30-oldest)
	}
}

// TestSegmentInfosAndVerify exercises the scrubber's read surface:
// SegmentInfos marks exactly the tail unsealed, VerifySegment passes
// on clean cold segments and pinpoints a flipped byte.
func TestSegmentInfosAndVerify(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l.Close()
	appendN(t, l, 0, 10) // [0..3], [4..7], tail [8..9]

	infos := l.SegmentInfos()
	if len(infos) != 3 {
		t.Fatalf("SegmentInfos returned %d entries, want 3", len(infos))
	}
	for i, info := range infos {
		wantSealed := i != 2
		if info.Sealed != wantSealed {
			t.Fatalf("segment %d sealed = %v, want %v", i, info.Sealed, wantSealed)
		}
	}
	if infos[1].Start != 4 || infos[1].Count != 4 {
		t.Fatalf("segment 1 = %+v, want start 4 count 4", infos[1])
	}
	for _, info := range infos[:2] {
		if err := l.VerifySegment(info.Start); err != nil {
			t.Fatalf("clean segment@%d failed verification: %v", info.Start, err)
		}
	}

	// Flip one byte cold — after the write was durable and validated —
	// and the re-verify catches what recovery-time validation cannot.
	path := segmentPath(dir, 4)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.VerifySegment(4); err == nil {
		t.Fatal("VerifySegment missed a flipped byte")
	}
	if err := l.VerifySegment(0); err != nil {
		t.Fatalf("sibling segment failed verification: %v", err)
	}
}

// TestVerifySegmentDetectsEveryByteFlip flips every byte of a sealed
// segment, one at a time, and demands VerifySegment catch each one.
// The exhaustive sweep exists because of a real near-miss: a 0x20
// flip turning the envelope key "rec" into "Rec" decodes cleanly
// under encoding/json's case-insensitive field matching, and the CRC
// — computed over the untouched payload bytes — still matches. Only
// decodeLine's canonical re-marshal comparison sees it.
func TestVerifySegmentDetectsEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l.Close()
	appendN(t, l, 0, 6) // sealed [0..3], tail [4..5]

	path := segmentPath(dir, 0)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, mask := range []byte{0x20, 0x01, 0x80} {
		for i := range clean {
			raw := append([]byte(nil), clean...)
			raw[i] ^= mask
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := l.VerifySegment(0); err == nil {
				t.Fatalf("VerifySegment missed byte %d flipped by %#02x (%q -> %q)",
					i, mask, clean[i], raw[i])
			}
		}
	}
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.VerifySegment(0); err != nil {
		t.Fatalf("restored segment failed verification: %v", err)
	}
}

// TestQuarantineSegment covers the scrubber's removal path: a sealed
// segment moves out whole, the tail is refused, and the hole is
// visible in the log's bookkeeping.
func TestQuarantineSegment(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "corrupt")
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
	defer l.Close()
	appendN(t, l, 0, 10)

	if _, err := l.QuarantineSegment(8, bad); err == nil {
		t.Fatal("QuarantineSegment accepted the active tail")
	}
	if _, err := l.QuarantineSegment(5, bad); err == nil {
		t.Fatal("QuarantineSegment accepted a non-boundary offset")
	}
	removed, err := l.QuarantineSegment(4, bad)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Fatalf("removed = %d, want 4", removed)
	}
	if got := readQuarantined(t, bad); len(got) != 4 {
		t.Fatalf("quarantine dir holds %d records, want 4", len(got))
	}
	if got := len(l.SegmentInfos()); got != 2 {
		t.Fatalf("log still lists %d segments, want 2", got)
	}
	// Replay from the hole's end still works; appends continue at the
	// old head.
	if got := replayAll(t, l, 8); len(got) != 2 {
		t.Fatalf("replay past the hole returned %d records, want 2", len(got))
	}
	off, err := l.Append(Record{SensorID: 1, CPM: 999})
	if err != nil || off != 10 {
		t.Fatalf("append after quarantine: off %d err %v", off, err)
	}
}
