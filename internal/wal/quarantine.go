package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// QuarantineSuffix moves every record with offset ≥ floor out of the
// live log and into dstDir, truncating the log so its head becomes
// floor. The moved bytes keep their on-disk envelope format, so the
// quarantined files replay with the same tools as live segments. This
// is the divergence-repair primitive: a resurrected primary whose
// unshipped suffix conflicts with a newer epoch's history must not
// keep it in the replay path, but must not delete it either — an
// operator may want to inspect or re-ingest it.
//
// Whole segments at or above floor are renamed into dstDir; a segment
// straddling floor is split — its suffix copied into dstDir as a new
// wal-%016x.ndjson named by floor, its prefix kept via an atomic
// rewrite. Name collisions in dstDir get a numeric suffix, so repeated
// quarantines never overwrite earlier evidence. Returns the number of
// records moved.
//
// The caller is expected to re-seed state afterwards (Bootstrap /
// AlignTo): the log itself only guarantees that replay now stops at
// floor and new appends continue from it.
func (l *Log) QuarantineSuffix(floor uint64, dstDir string) (uint64, error) {
	if l.f == nil {
		return 0, fmt.Errorf("wal: log closed")
	}
	if floor >= l.next {
		return 0, nil
	}
	if err := l.syncTail(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	l.f, l.w = nil, nil
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return 0, err
	}

	var moved uint64
	var kept []segment
	for _, seg := range l.segments {
		end := seg.start + seg.count
		switch {
		case end <= floor:
			kept = append(kept, seg)
		case seg.start >= floor:
			// Entirely above the floor: move the whole file.
			dst, err := uniquePath(dstDir, filepath.Base(seg.path))
			if err != nil {
				return moved, err
			}
			if err := os.Rename(seg.path, dst); err != nil {
				return moved, err
			}
			moved += seg.count
		default:
			// Straddles the floor: copy the suffix out, rewrite the
			// prefix in place (tmp + rename, so a crash mid-split
			// leaves either the old file or the new one, never a torn
			// mix).
			n, err := splitSegment(seg, floor, dstDir)
			if err != nil {
				return moved, err
			}
			moved += n
			kept = append(kept, segment{start: seg.start, count: floor - seg.start, path: seg.path})
		}
	}
	if l.opts.Fsync != FsyncNever {
		if err := syncDir(dstDir); err != nil {
			return moved, err
		}
		if err := syncDir(l.dir); err != nil {
			return moved, err
		}
	}

	l.segments = kept
	if floor < l.next {
		l.next = floor
	}
	if err := l.openTail(); err != nil {
		return moved, err
	}
	l.met.layout(len(l.segments), l.next)
	return moved, nil
}

// splitSegment copies the records of seg with offset ≥ floor into a
// new segment file in dstDir and truncates seg's file to the prefix
// below floor. Returns the number of records copied out.
func splitSegment(seg segment, floor uint64, dstDir string) (uint64, error) {
	src, err := os.Open(seg.path)
	if err != nil {
		return 0, err
	}
	defer src.Close()

	dstName, err := uniquePath(dstDir, fmt.Sprintf("%s%016x%s", segPrefix, floor, segSuffix))
	if err != nil {
		return 0, err
	}
	dst, err := os.OpenFile(dstName, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	tmpName := seg.path + ".tmp"
	tmp, err := os.OpenFile(tmpName, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		dst.Close()
		return 0, err
	}

	r := bufio.NewReaderSize(src, 64<<10)
	dw := bufio.NewWriterSize(dst, 64<<10)
	tw := bufio.NewWriterSize(tmp, 64<<10)
	var movedRecs uint64
	fail := func(err error) (uint64, error) {
		dst.Close()
		tmp.Close()
		os.Remove(tmpName)
		return 0, err
	}
	for off := seg.start; off < seg.start+seg.count; off++ {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return fail(rerr)
		}
		if len(line) == 0 {
			return fail(fmt.Errorf("wal: segment %s short at offset %d", seg.path, off))
		}
		w := tw
		if off >= floor {
			w = dw
			movedRecs++
		}
		if _, err := w.Write(line); err != nil {
			return fail(err)
		}
	}
	if err := dw.Flush(); err != nil {
		return fail(err)
	}
	if err := dst.Sync(); err != nil {
		return fail(err)
	}
	if err := dst.Close(); err != nil {
		return fail(err)
	}
	if err := tw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, seg.path); err != nil {
		return fail(err)
	}
	return movedRecs, nil
}

// MoveCheckpoints moves every checkpoint in dir whose applied offset
// is above floor into dstDir and returns how many files moved. This is
// the checkpoint half of divergence repair: after QuarantineSuffix
// truncates the log to floor, any checkpoint covering more than floor
// records describes state that includes the quarantined suffix, and
// recovery must never re-seed from it. Like the quarantined segments,
// the files are preserved (renamed, collision-safe), not deleted.
func MoveCheckpoints(dir string, floor uint64, dstDir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	moved := 0
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		applied, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil || applied <= floor {
			continue
		}
		if moved == 0 {
			if err := os.MkdirAll(dstDir, 0o755); err != nil {
				return 0, err
			}
		}
		dst, err := uniquePath(dstDir, name)
		if err != nil {
			return moved, err
		}
		if err := os.Rename(filepath.Join(dir, name), dst); err != nil {
			return moved, err
		}
		moved++
	}
	if moved > 0 {
		if err := syncDir(dstDir); err != nil {
			return moved, err
		}
		if err := syncDir(dir); err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// uniquePath returns a path in dir based on name that does not exist
// yet, appending ".N" before giving up after 1000 tries.
func uniquePath(dir, name string) (string, error) {
	p := filepath.Join(dir, name)
	if _, err := os.Lstat(p); os.IsNotExist(err) {
		return p, nil
	}
	for i := 1; i < 1000; i++ {
		q := fmt.Sprintf("%s.%d", p, i)
		if _, err := os.Lstat(q); os.IsNotExist(err) {
			return q, nil
		}
	}
	return "", fmt.Errorf("wal: no free quarantine name for %s", p)
}
