package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"radloc/internal/vfs"
)

// QuarantineSuffix moves every record with offset ≥ floor out of the
// live log and into dstDir, truncating the log so its head becomes
// floor. The moved bytes keep their on-disk envelope format, so the
// quarantined files replay with the same tools as live segments. This
// is the divergence-repair primitive: a resurrected primary whose
// unshipped suffix conflicts with a newer epoch's history must not
// keep it in the replay path, but must not delete it either — an
// operator may want to inspect or re-ingest it.
//
// Whole segments at or above floor are renamed into dstDir; a segment
// straddling floor is split — its suffix copied into dstDir as a new
// wal-%016x.ndjson named by floor, its prefix kept via an atomic
// rewrite. Name collisions in dstDir get a numeric suffix, so repeated
// quarantines never overwrite earlier evidence. Returns the number of
// records moved.
//
// The caller is expected to re-seed state afterwards (Bootstrap /
// AlignTo): the log itself only guarantees that replay now stops at
// floor and new appends continue from it.
func (l *Log) QuarantineSuffix(floor uint64, dstDir string) (uint64, error) {
	if l.f == nil {
		return 0, fmt.Errorf("wal: log closed")
	}
	if floor >= l.next {
		return 0, nil
	}
	if err := l.syncTail(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	l.f = nil
	if err := l.fs.MkdirAll(dstDir, 0o755); err != nil {
		return 0, err
	}

	var moved uint64
	var kept []segment
	for _, seg := range l.segments {
		end := seg.start + seg.count
		switch {
		case end <= floor:
			kept = append(kept, seg)
		case seg.start >= floor:
			// Entirely above the floor: move the whole file.
			dst, err := uniquePath(l.fs, dstDir, filepath.Base(seg.path))
			if err != nil {
				return moved, err
			}
			if err := l.fs.Rename(seg.path, dst); err != nil {
				return moved, err
			}
			moved += seg.count
		default:
			// Straddles the floor: copy the suffix out, rewrite the
			// prefix in place (tmp + rename, so a crash mid-split
			// leaves either the old file or the new one, never a torn
			// mix).
			n, prefixBytes, err := splitSegment(l.fs, seg, floor, dstDir)
			if err != nil {
				return moved, err
			}
			moved += n
			kept = append(kept, segment{start: seg.start, count: floor - seg.start, bytes: prefixBytes, path: seg.path})
		}
	}
	if l.opts.Fsync != FsyncNever {
		if err := syncDirFS(l.fs, dstDir); err != nil {
			return moved, err
		}
		if err := syncDirFS(l.fs, l.dir); err != nil {
			return moved, err
		}
	}

	l.segments = kept
	if floor < l.next {
		l.next = floor
	}
	if err := l.openTail(); err != nil {
		return moved, err
	}
	l.met.layout(len(l.segments), l.next)
	return moved, nil
}

// splitSegment copies the records of seg with offset ≥ floor into a
// new segment file in dstDir and truncates seg's file to the prefix
// below floor. Returns the number of records copied out and the byte
// length of the kept prefix.
func splitSegment(fsys vfs.FS, seg segment, floor uint64, dstDir string) (uint64, int64, error) {
	src, err := fsys.Open(seg.path)
	if err != nil {
		return 0, 0, err
	}
	defer src.Close()

	dstName, err := uniquePath(fsys, dstDir, fmt.Sprintf("%s%016x%s", segPrefix, floor, segSuffix))
	if err != nil {
		return 0, 0, err
	}
	dst, err := fsys.OpenFile(dstName, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	tmpName := seg.path + ".tmp"
	tmp, err := fsys.OpenFile(tmpName, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		_ = dst.Close()
		return 0, 0, err
	}

	r := bufio.NewReaderSize(src, 64<<10)
	dw := bufio.NewWriterSize(dst, 64<<10)
	tw := bufio.NewWriterSize(tmp, 64<<10)
	var movedRecs uint64
	var prefixBytes int64
	fail := func(err error) (uint64, int64, error) {
		_ = dst.Close()
		_ = tmp.Close()
		_ = fsys.Remove(tmpName)
		return 0, 0, err
	}
	for off := seg.start; off < seg.start+seg.count; off++ {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return fail(rerr)
		}
		if len(line) == 0 {
			return fail(fmt.Errorf("wal: segment %s short at offset %d", seg.path, off))
		}
		w := tw
		if off >= floor {
			w = dw
			movedRecs++
		} else {
			prefixBytes += int64(len(line))
		}
		if _, err := w.Write(line); err != nil {
			return fail(err)
		}
	}
	if err := dw.Flush(); err != nil {
		return fail(err)
	}
	if err := dst.Sync(); err != nil {
		return fail(err)
	}
	if err := dst.Close(); err != nil {
		return fail(err)
	}
	if err := tw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := fsys.Rename(tmpName, seg.path); err != nil {
		return fail(err)
	}
	return movedRecs, prefixBytes, nil
}

// SegmentInfo describes one live segment for external inspection —
// the integrity scrubber's work list.
type SegmentInfo struct {
	// Start is the offset of the segment's first record.
	Start uint64 `json:"start"`
	// Count is the number of records in the segment.
	Count uint64 `json:"count"`
	// Bytes is the valid byte length of the file.
	Bytes int64 `json:"bytes"`
	// Sealed is false only for the active tail, which is still being
	// appended to and is not a scrub target.
	Sealed bool `json:"sealed"`
}

// SegmentInfos lists the live segments in offset order; the last
// entry is the active tail (Sealed=false).
func (l *Log) SegmentInfos() []SegmentInfo {
	out := make([]SegmentInfo, 0, len(l.segments))
	for i, seg := range l.segments {
		out = append(out, SegmentInfo{
			Start:  seg.start,
			Count:  seg.count,
			Bytes:  seg.bytes,
			Sealed: i != len(l.segments)-1,
		})
	}
	return out
}

// VerifySegment re-reads the segment whose first record sits at start
// and re-verifies every record's CRC envelope. A nil return means the
// segment still holds exactly its accounted records; an error names
// the first offset that no longer decodes — cold corruption (a
// bit-flip after the original durable write) that recovery-time
// validation can never see because the file was valid when opened.
func (l *Log) VerifySegment(start uint64) error {
	for _, seg := range l.segments {
		if seg.start != start {
			continue
		}
		count, goodBytes, badRecs, err := validateSegment(l.fs, seg.path)
		if err != nil {
			return err
		}
		if count < seg.count || badRecs > 0 {
			return fmt.Errorf("wal: segment %s corrupt at offset %d (%d of %d records verify, %d bad)",
				seg.path, seg.start+count, count, seg.count, badRecs)
		}
		_ = goodBytes
		return nil
	}
	return fmt.Errorf("wal: no segment starting at offset %d", start)
}

// QuarantineSegment renames the sealed segment starting at start into
// dstDir (collision-safe) and drops it from the log's bookkeeping.
// Replay of the covered range becomes impossible — Oldest moves past
// it — so the caller must immediately re-anchor recovery (write a
// fresh checkpoint at or past the segment's end, or re-seed from a
// replica). The active tail is refused. Returns the number of records
// set aside.
func (l *Log) QuarantineSegment(start uint64, dstDir string) (uint64, error) {
	for i, seg := range l.segments {
		if seg.start != start {
			continue
		}
		if i == len(l.segments)-1 {
			return 0, fmt.Errorf("wal: refusing to quarantine the active tail at offset %d", start)
		}
		if err := l.fs.MkdirAll(dstDir, 0o755); err != nil {
			return 0, err
		}
		dst, err := uniquePath(l.fs, dstDir, filepath.Base(seg.path))
		if err != nil {
			return 0, err
		}
		if err := l.fs.Rename(seg.path, dst); err != nil {
			return 0, err
		}
		if l.opts.Fsync != FsyncNever {
			if err := syncDirFS(l.fs, dstDir); err != nil {
				return seg.count, err
			}
			if err := syncDirFS(l.fs, l.dir); err != nil {
				return seg.count, err
			}
		}
		l.segments = append(l.segments[:i], l.segments[i+1:]...)
		l.met.layout(len(l.segments), l.next)
		return seg.count, nil
	}
	return 0, fmt.Errorf("wal: no segment starting at offset %d", start)
}

// MoveCheckpoints moves every checkpoint in dir on the real
// filesystem whose applied offset is above floor into dstDir. See
// MoveCheckpointsFS.
func MoveCheckpoints(dir string, floor uint64, dstDir string) (int, error) {
	return MoveCheckpointsFS(vfs.OS{}, dir, floor, dstDir)
}

// MoveCheckpointsFS moves every checkpoint in dir whose applied offset
// is above floor into dstDir through fsys and returns how many files
// moved. This is the checkpoint half of divergence repair: after
// QuarantineSuffix truncates the log to floor, any checkpoint covering
// more than floor records describes state that includes the
// quarantined suffix, and recovery must never re-seed from it. Like
// the quarantined segments, the files are preserved (renamed,
// collision-safe), not deleted.
func MoveCheckpointsFS(fsys vfs.FS, dir string, floor uint64, dstDir string) (int, error) {
	fsys = vfs.Or(fsys)
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	moved := 0
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		applied, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil || applied <= floor {
			continue
		}
		if moved == 0 {
			if err := fsys.MkdirAll(dstDir, 0o755); err != nil {
				return 0, err
			}
		}
		dst, err := uniquePath(fsys, dstDir, name)
		if err != nil {
			return moved, err
		}
		if err := fsys.Rename(filepath.Join(dir, name), dst); err != nil {
			return moved, err
		}
		moved++
	}
	if moved > 0 {
		if err := syncDirFS(fsys, dstDir); err != nil {
			return moved, err
		}
		if err := syncDirFS(fsys, dir); err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// uniquePath returns a path in dir based on name that does not exist
// yet, appending ".N" before giving up after 1000 tries.
func uniquePath(fsys vfs.FS, dir, name string) (string, error) {
	p := filepath.Join(dir, name)
	if _, err := fsys.Lstat(p); os.IsNotExist(err) {
		return p, nil
	}
	for i := 1; i < 1000; i++ {
		q := fmt.Sprintf("%s.%d", p, i)
		if _, err := fsys.Lstat(q); os.IsNotExist(err) {
			return q, nil
		}
	}
	return "", fmt.Errorf("wal: no free quarantine name for %s", p)
}
