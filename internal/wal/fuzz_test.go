package wal

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the recovery path as a WAL
// segment (plus a mutated copy as a second segment): Open must always
// succeed — truncating, never panicking, never looping — and the
// recovered prefix must itself replay cleanly and survive appends.
func FuzzWALReplay(f *testing.F) {
	valid := func(recs ...Record) []byte {
		var buf bytes.Buffer
		for _, r := range recs {
			raw, _ := json.Marshal(r)
			line, _ := json.Marshal(envelope{CRC: crc32.Checksum(raw, crcTable), Rec: raw})
			buf.Write(line)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(`{"crc":0,"rec":{"sensorId":1,"cpm":2}}` + "\n"))
	f.Add(valid(Record{SensorID: 1, CPM: 40, Seq: 1}, Record{SensorID: 2, CPM: 41, Seq: 1}))
	f.Add(append(valid(Record{SensorID: 1, CPM: 40, Seq: 1}), []byte(`{"crc":12,"rec"`)...))
	f.Add([]byte(`{"crc":1,"rec":{"seq":18446744073709551615}}` + "\n"))
	f.Add(bytes.Repeat([]byte("\n"), 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 0), data, 0o644); err != nil {
			t.Skip()
		}
		// A second segment whose start offset the fuzzer indirectly
		// controls via the first one's content.
		mut := append([]byte{}, data...)
		for i := range mut {
			mut[i] ^= byte(i)
		}
		if err := os.WriteFile(segmentPath(dir, 3), mut, 0o644); err != nil {
			t.Skip()
		}

		l, stats, err := Open(dir, Options{Fsync: FsyncNever, SegmentRecords: 4})
		if err != nil {
			t.Fatalf("Open must repair, not fail: %v", err)
		}
		if l.Offset() != stats.Records+3 && l.Offset() != stats.Records {
			// Records counts across surviving segments; with the hole at
			// [records0, 3) the offset is start-of-last + its count. Just
			// sanity-bound it.
			if l.Offset() > stats.Records+3 {
				t.Fatalf("offset %d beyond plausible range (stats %+v)", l.Offset(), stats)
			}
		}
		n := uint64(0)
		if err := l.Replay(0, func(off uint64, rec Record) error {
			n++
			return nil
		}); err != nil {
			t.Fatalf("recovered log must replay cleanly: %v", err)
		}
		if n != stats.Records {
			t.Fatalf("replayed %d records, recovery reported %d", n, stats.Records)
		}
		// The repaired log accepts appends and survives a second open
		// with no further truncation.
		if _, err := l.Append(Record{SensorID: 9, CPM: 50, Seq: 99}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, stats2, err := Open(dir, Options{SegmentRecords: 4})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if stats2.TruncatedRecords != 0 || stats2.Records != stats.Records+1 {
			t.Fatalf("second open not clean: %+v after %+v", stats2, stats)
		}
		l2.Close()

		// Checkpoint loader on the same arbitrary bytes.
		ckDir := t.TempDir()
		os.WriteFile(filepath.Join(ckDir, "checkpoint-0000000000000007.json"), data, 0o644)
		if _, _, err := LoadCheckpoint(ckDir); err != nil {
			t.Fatalf("LoadCheckpoint must skip garbage, not fail: %v", err)
		}
	})
}
