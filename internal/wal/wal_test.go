package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, RecoveryStats) {
	t.Helper()
	l, stats, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, stats
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		off, err := l.Append(Record{SensorID: i % 7, CPM: 30 + i, Step: i / 7, Seq: uint64(i/7 + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i) {
			t.Fatalf("append %d got offset %d", i, off)
		}
	}
}

func replayAll(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(from, func(off uint64, rec Record) error {
		if int(off) != int(from)+len(out) {
			t.Fatalf("replay offset %d, want %d", off, int(from)+len(out))
		}
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, stats := mustOpen(t, dir, Options{Fsync: FsyncBatch, SegmentRecords: 10})
	if stats.Records != 0 || stats.Segments > 1 {
		t.Fatalf("fresh dir stats: %+v", stats)
	}
	appendN(t, l, 0, 35) // spans 4 segments
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, stats2 := mustOpen(t, dir, Options{SegmentRecords: 10})
	if stats2.Records != 35 || stats2.Segments != 4 || stats2.TruncatedRecords != 0 {
		t.Fatalf("reopen stats: %+v", stats2)
	}
	if l2.Offset() != 35 {
		t.Fatalf("offset %d, want 35", l2.Offset())
	}
	recs := replayAll(t, l2, 0)
	if len(recs) != 35 || recs[34].CPM != 64 {
		t.Fatalf("replay: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
	if got := replayAll(t, l2, 30); len(got) != 5 || got[0].CPM != 60 {
		t.Fatalf("suffix replay: %+v", got)
	}
	// Appends continue at the recovered offset.
	appendN(t, l2, 35, 3)
	if got := replayAll(t, l2, 0); len(got) != 38 {
		t.Fatalf("post-reopen append: %d records", len(got))
	}
	l2.Close()
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 100})
	appendN(t, l, 0, 12)
	l.Close()

	// Tear the final record mid-line (crash between write and newline).
	path := segmentPath(dir, 0)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, stats := mustOpen(t, dir, Options{})
	if stats.Records != 11 || stats.TruncatedRecords != 1 || stats.TruncatedBytes == 0 {
		t.Fatalf("torn-tail stats: %+v", stats)
	}
	if l2.Offset() != 11 {
		t.Fatalf("offset after truncation: %d", l2.Offset())
	}
	if got := replayAll(t, l2, 0); len(got) != 11 {
		t.Fatalf("replay after truncation: %d records", len(got))
	}
	// The log is writable again and the torn slot is reused.
	appendN(t, l2, 11, 1)
	l2.Close()
}

func TestBitFlipTruncatesFromCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 5})
	appendN(t, l, 0, 14) // segments: [0,5) [5,10) [10,14)
	l.Close()

	// Flip one byte inside record 7's payload: records 7..9 die with
	// it (suffix-suspect), and the [10,14) segment is dropped whole.
	path := segmentPath(dir, 5)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(blob), "\n")
	mut := []byte(lines[2])
	mut[len(mut)/2] ^= 0x20
	lines[2] = string(mut)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, stats := mustOpen(t, dir, Options{SegmentRecords: 5})
	if stats.Records != 7 || stats.TruncatedRecords != 3 || stats.DroppedSegments != 1 {
		t.Fatalf("bit-flip stats: %+v", stats)
	}
	if l2.Offset() != 7 {
		t.Fatalf("offset %d, want 7", l2.Offset())
	}
	recs := replayAll(t, l2, 0)
	if len(recs) != 7 || recs[6].CPM != 36 {
		t.Fatalf("replay: %d records", len(recs))
	}
	l2.Close()
}

func TestCheckpointRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	state1, _ := json.Marshal(map[string]int{"gen": 1})
	state2, _ := json.Marshal(map[string]int{"gen": 2})
	if err := WriteCheckpoint(dir, Checkpoint{Applied: 100, State: state1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, Checkpoint{Applied: 250, State: state2}); err != nil {
		t.Fatal(err)
	}
	ck, ok, err := LoadCheckpoint(dir)
	if err != nil || !ok || ck.Applied != 250 || !reflect.DeepEqual([]byte(ck.State), state2) {
		t.Fatalf("load newest: ok=%v err=%v ck=%+v", ok, err, ck)
	}

	// Corrupt the newest: loader must fall back to the older one and
	// quarantine the bad file.
	path := checkpointPath(dir, 250)
	blob, _ := os.ReadFile(path)
	blob[len(blob)/2] ^= 0xff
	os.WriteFile(path, blob, 0o644)
	ck, ok, err = LoadCheckpoint(dir)
	if err != nil || !ok || ck.Applied != 100 {
		t.Fatalf("fallback: ok=%v err=%v ck.Applied=%d", ok, err, ck.Applied)
	}
	if _, serr := os.Stat(path + ".bad"); serr != nil {
		t.Error("corrupt checkpoint not quarantined")
	}

	// Prune keeps the newest surviving file.
	for _, applied := range []uint64{300, 400} {
		if err := WriteCheckpoint(dir, Checkpoint{Applied: applied, State: state1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneCheckpoints(dir, 1); err != nil {
		t.Fatal(err)
	}
	if _, serr := os.Stat(checkpointPath(dir, 100)); !os.IsNotExist(serr) {
		t.Error("old checkpoint survived pruning")
	}
	if ck, ok, _ := LoadCheckpoint(dir); !ok || ck.Applied != 400 {
		t.Fatalf("after prune: ok=%v applied=%d", ok, ck.Applied)
	}
}

func TestPruneSegmentsAndAlignTo(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentRecords: 5})
	appendN(t, l, 0, 17)
	if err := l.Prune(10); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segmentPath(dir, 0)); !os.IsNotExist(err) {
		t.Error("covered segment [0,5) survived pruning")
	}
	if got := replayAll(t, l, 10); len(got) != 7 {
		t.Fatalf("replay after prune: %d records", len(got))
	}

	// Checkpoint ahead of the log (tail truncated after a checkpoint):
	// AlignTo must open a fresh segment so offsets never collide.
	if err := l.AlignTo(40); err != nil {
		t.Fatal(err)
	}
	if l.Offset() != 40 {
		t.Fatalf("offset after align: %d", l.Offset())
	}
	appendN(t, l, 40, 2)
	l.Close()

	l2, stats := mustOpen(t, dir, Options{SegmentRecords: 5})
	if l2.Offset() != 42 {
		t.Fatalf("reopen offset %d, want 42 (stats %+v)", l2.Offset(), stats)
	}
	if got := replayAll(t, l2, 40); len(got) != 2 {
		t.Fatalf("replay across the hole: %d records", len(got))
	}
	l2.Close()
}

func TestForeignFilesQuarantined(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "wal-nothex.ndjson"), []byte("junk\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("operator notes"), 0o644)
	l, stats := mustOpen(t, dir, Options{})
	if stats.DroppedSegments != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	appendN(t, l, 0, 1)
	l.Close()
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Error("unrelated file touched")
	}
}
