package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/obs"
)

// Role is a zone's replication role on one node.
type Role string

const (
	// RolePrimary accepts writes for the zone and serves its WAL to
	// the standby.
	RolePrimary Role = "primary"
	// RoleStandby replicates from the primary and serves reads only.
	RoleStandby Role = "standby"
)

// ErrDraining is returned by AdmitWrite while a zone is draining
// ahead of a migration cutover: writes are refused (503 + Retry-After
// at the HTTP boundary) so the standby can reach the final head.
var ErrDraining = errors.New("cluster: zone draining")

// ErrStaleEpoch is returned when a request carries an epoch below the
// zone's current one — the sender was demoted (possibly without
// knowing it) and must not be obeyed.
var ErrStaleEpoch = errors.New("cluster: stale epoch")

// NotPrimaryError is returned by AdmitWrite when this node is standby
// for the zone. Primary, when known, is the base URL writes should be
// redirected to (307); empty means refuse with 503.
type NotPrimaryError struct {
	// Zone is the zone the write was addressed to.
	Zone string
	// Primary is the current write owner's base URL, if known.
	Primary string
}

// Error implements error.
func (e *NotPrimaryError) Error() string {
	if e.Primary == "" {
		return fmt.Sprintf("cluster: not primary for zone %q", e.Zone)
	}
	return fmt.Sprintf("cluster: not primary for zone %q (primary %s)", e.Zone, e.Primary)
}

// Options configures a Node.
type Options struct {
	// Self is this node's own base URL as peers reach it
	// ("http://host:port"). Used to recognize itself in the routing
	// table. Required.
	Self string
	// Token, when non-empty, is the bearer token required on every
	// /cluster endpoint and attached to every outgoing pull.
	Token string
	// Resolver finds the backend for a zone. Required.
	Resolver BackendResolver
	// Epochs persists per-zone fencing epochs (default MemEpochStore).
	Epochs EpochStore
	// HTTP performs the standby's pulls (default http.DefaultTransport).
	HTTP http.RoundTripper
	// Clock times replication lag (default the wall clock).
	Clock clock.Clock
	// PullInterval is the standby's idle poll period (default 500ms).
	// A pull that learns it is still behind loops again immediately.
	PullInterval time.Duration
	// PullBatch caps records per pull (default 4096).
	PullBatch int
	// Drop, when non-nil, releases a zone's local resources after its
	// ownership migrates away (the daemon closes the zone's engine).
	Drop func(zone string) error
	// Metrics, when non-nil, receives the node's radloc_repl_* and
	// radloc_cluster_* collectors.
	Metrics *obs.Registry
	// Log, when non-nil, receives role transitions and replication
	// errors.
	Log *log.Logger
}

// zoneState is one zone's replication state on this node. All fields
// are guarded by Node.mu.
type zoneState struct {
	name     string
	role     Role
	epoch    uint64
	draining bool

	// primaryURL is where writes should go when role is standby.
	primaryURL string

	// acked is the highest offset the replica has durably applied —
	// primary-side, learned from the from= of each pull.
	acked uint64

	// Standby-side pull progress.
	applied      uint64 // local WAL head after the last apply
	head         uint64 // primary's WAL head from the last hello/end
	caughtUp     bool
	lastCaughtUp time.Time
	lastErr      string

	cancel context.CancelFunc // stops the replica loop; nil when none runs
}

// Node is one radlocd's membership in the cluster: the set of zones
// it is primary or standby for, their epochs, and the replica
// goroutines pulling WAL for its standby zones. All methods are safe
// for concurrent use.
type Node struct {
	opts Options
	met  *nodeMetrics

	mu     sync.Mutex
	routes Routes
	zones  map[string]*zoneState
	closed bool

	wg sync.WaitGroup
}

// NewNode builds a node. Replication starts when SetRoutes assigns it
// a standby role for some zone.
func NewNode(opts Options) (*Node, error) {
	if opts.Self == "" {
		return nil, errors.New("cluster: Options.Self is required")
	}
	if opts.Resolver == nil {
		return nil, errors.New("cluster: Options.Resolver is required")
	}
	if opts.Epochs == nil {
		opts.Epochs = &MemEpochStore{}
	}
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultTransport
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.PullInterval <= 0 {
		opts.PullInterval = 500 * time.Millisecond
	}
	if opts.PullBatch <= 0 {
		opts.PullBatch = 4096
	}
	return &Node{
		opts:  opts,
		met:   newNodeMetrics(opts.Metrics),
		zones: make(map[string]*zoneState),
	}, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Log != nil {
		n.opts.Log.Printf(format, args...)
	}
}

// zoneFor returns (creating if needed) the zone's state. The routing
// table decides the initial role: primary when the route names Self
// (or there is no route — standalone zones are owned locally),
// standby when the route names another node. Caller must hold n.mu.
func (n *Node) zoneFor(name string) (*zoneState, error) {
	if zs, ok := n.zones[name]; ok {
		return zs, nil
	}
	epoch, err := n.opts.Epochs.Load(name)
	if err != nil {
		return nil, fmt.Errorf("cluster: load epoch for %q: %w", name, err)
	}
	if epoch == 0 {
		epoch = 1
	}
	zs := &zoneState{name: name, role: RolePrimary, epoch: epoch}
	if rt, ok := n.routes.Zones[name]; ok && rt.Primary != n.opts.Self {
		zs.role = RoleStandby
		zs.primaryURL = rt.Primary
		zs.lastCaughtUp = n.opts.Clock.Now()
	}
	n.zones[name] = zs
	n.met.roleChanged(name, zs.role == RolePrimary, zs.epoch)
	if zs.role == RoleStandby {
		n.startReplicaLocked(zs)
	}
	return zs, nil
}

// SetRoutes installs the routing table and instantiates state for
// every routed zone: standby zones start their replica loops
// immediately so they are warm before the first failover. Roles of
// zones that already exist locally are left alone — routes seed
// roles, they never demote a live primary (that is Demote's job, with
// its epoch check).
func (n *Node) SetRoutes(r Routes) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("cluster: node closed")
	}
	n.routes = r
	for _, name := range r.ZoneNames() {
		if _, err := n.zoneFor(name); err != nil {
			return err
		}
	}
	return nil
}

// Routes returns the current routing table.
func (n *Node) Routes() Routes {
	n.mu.Lock()
	defer n.mu.Unlock()
	cp := Routes{Zones: make(map[string]Route, len(n.routes.Zones))}
	for k, v := range n.routes.Zones {
		cp.Zones[k] = v
	}
	return cp
}

// AdmitWrite decides whether this node may accept a write for the
// zone right now: nil for a live primary, ErrDraining mid-cutover,
// NotPrimaryError (with redirect target when known) for a standby.
func (n *Node) AdmitWrite(zone string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		return err
	}
	if zs.role != RolePrimary {
		return &NotPrimaryError{Zone: zone, Primary: zs.primaryURL}
	}
	if zs.draining {
		return ErrDraining
	}
	return nil
}

// Promote makes this node primary for the zone: the replica loop (if
// any) stops, the epoch is bumped and persisted — fencing out the old
// primary — and a checkpoint seals the takeover. Idempotent on an
// already-primary zone (no epoch bump).
func (n *Node) Promote(zone string) (uint64, error) {
	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		n.mu.Unlock()
		return 0, err
	}
	if zs.role == RolePrimary {
		epoch := zs.epoch
		n.mu.Unlock()
		return epoch, nil
	}
	if zs.cancel != nil {
		zs.cancel()
		zs.cancel = nil
	}
	zs.role = RolePrimary
	zs.draining = false
	zs.primaryURL = ""
	zs.epoch++
	epoch := zs.epoch
	n.met.roleChanged(zone, true, epoch)
	n.mu.Unlock()

	if err := n.opts.Epochs.Save(zone, epoch); err != nil {
		return epoch, fmt.Errorf("cluster: persist epoch for %q: %w", zone, err)
	}
	b, err := n.opts.Resolver(zone)
	if err != nil {
		return epoch, err
	}
	if err := b.Checkpoint(); err != nil {
		n.logf("cluster: checkpoint after promoting %q: %v", zone, err)
	}
	n.logf("cluster: promoted to primary for zone %q at epoch %d", zone, epoch)
	return epoch, nil
}

// Demote makes this node standby for the zone at the given epoch,
// replicating from primaryURL (when non-empty). An epoch below the
// zone's current one is refused with ErrStaleEpoch — a partitioned
// old primary cannot talk this node out of a newer promotion.
func (n *Node) Demote(zone string, epoch uint64, primaryURL string) error {
	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	if epoch < zs.epoch {
		n.mu.Unlock()
		n.met.fenced()
		return fmt.Errorf("%w: zone %q at epoch %d, demote carries %d", ErrStaleEpoch, zone, zs.epoch, epoch)
	}
	zs.role = RoleStandby
	zs.draining = false
	zs.epoch = epoch
	zs.primaryURL = primaryURL
	zs.lastCaughtUp = n.opts.Clock.Now()
	zs.caughtUp = false
	n.met.roleChanged(zone, false, epoch)
	if primaryURL != "" && zs.cancel == nil {
		n.startReplicaLocked(zs)
	}
	n.mu.Unlock()
	if err := n.opts.Epochs.Save(zone, epoch); err != nil {
		return fmt.Errorf("cluster: persist epoch for %q: %w", zone, err)
	}
	n.logf("cluster: demoted to standby for zone %q at epoch %d (primary %q)", zone, epoch, primaryURL)
	return nil
}

// SetDraining marks a primary zone as draining (writes refused with
// Retry-After) or lifts the mark. Draining a standby is an error.
func (n *Node) SetDraining(zone string, draining bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		return err
	}
	if zs.role != RolePrimary {
		return &NotPrimaryError{Zone: zone, Primary: zs.primaryURL}
	}
	zs.draining = draining
	n.logf("cluster: zone %q draining=%v", zone, draining)
	return nil
}

// Release completes a migration on the old primary: the zone becomes
// standby pointing at its new owner and local resources are dropped
// via Options.Drop. Safe to skip when the old primary is dead — the
// standby's promotion already fenced it out.
func (n *Node) Release(zone string, to string) error {
	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	if zs.cancel != nil {
		zs.cancel()
		zs.cancel = nil
	}
	zs.role = RoleStandby
	zs.draining = false
	zs.primaryURL = to
	zs.caughtUp = false
	n.met.roleChanged(zone, false, zs.epoch)
	n.mu.Unlock()
	n.logf("cluster: released zone %q to %q", zone, to)
	if n.opts.Drop != nil {
		return n.opts.Drop(zone)
	}
	return nil
}

// recordAck notes the replica's durable watermark from a pull's from=
// parameter and parks the WAL retention floor there.
func (n *Node) recordAck(zone string, b Backend, from uint64) {
	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err == nil && from > zs.acked {
		zs.acked = from
	}
	n.mu.Unlock()
	if err == nil {
		n.met.acked(zone, from)
		b.SetRetainFloor(from)
	}
}

// ZoneStatus is one zone's replication status as reported by Status
// and the /cluster/status endpoint.
type ZoneStatus struct {
	// Zone is the zone name.
	Zone string `json:"zone"`
	// Role is primary or standby.
	Role Role `json:"role"`
	// Epoch is the zone's current fencing epoch.
	Epoch uint64 `json:"epoch"`
	// Draining reports a primary refusing writes ahead of cutover.
	Draining bool `json:"draining,omitempty"`
	// Primary is the write owner's URL when this node is standby.
	Primary string `json:"primary,omitempty"`
	// Head is the local WAL head (primary) or the remote head as of
	// the last pull (standby).
	Head uint64 `json:"head"`
	// Applied is the standby's local WAL head.
	Applied uint64 `json:"applied,omitempty"`
	// Acked is the replica's durable watermark as seen by a primary.
	Acked uint64 `json:"acked,omitempty"`
	// LagRecords is head - applied on a standby.
	LagRecords uint64 `json:"lagRecords,omitempty"`
	// LagSeconds is how long the standby has been behind.
	LagSeconds float64 `json:"lagSeconds,omitempty"`
	// CaughtUp reports applied == head as of the last pull.
	CaughtUp bool `json:"caughtUp"`
	// LastError is the most recent pull failure, cleared on success.
	LastError string `json:"lastError,omitempty"`
}

// Status reports every known zone's replication state, sorted by
// zone name.
func (n *Node) Status() []ZoneStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.opts.Clock.Now()
	out := make([]ZoneStatus, 0, len(n.zones))
	for _, zs := range n.zones {
		st := ZoneStatus{
			Zone:      zs.name,
			Role:      zs.role,
			Epoch:     zs.epoch,
			Draining:  zs.draining,
			Primary:   zs.primaryURL,
			CaughtUp:  zs.role == RolePrimary || zs.caughtUp,
			LastError: zs.lastErr,
		}
		if zs.role == RolePrimary {
			st.Acked = zs.acked
			if b, err := n.opts.Resolver(zs.name); err == nil {
				st.Head = b.Offset()
			}
		} else {
			st.Head = zs.head
			st.Applied = zs.applied
			if zs.head > zs.applied {
				st.LagRecords = zs.head - zs.applied
			}
			if !zs.caughtUp {
				st.LagSeconds = now.Sub(zs.lastCaughtUp).Seconds()
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Zone < out[b].Zone })
	return out
}

// Ready reports whether every standby zone with a live replica loop
// has caught up to its primary at least once — the readiness gate
// /readyz consults, so a freshly booted standby is not marked ready
// while it is still replaying a backlog.
func (n *Node) Ready() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, zs := range n.zones {
		if zs.role == RoleStandby && zs.cancel != nil && !zs.caughtUp {
			return false
		}
	}
	return true
}

// Close stops every replica loop and waits for them to exit.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, zs := range n.zones {
		if zs.cancel != nil {
			zs.cancel()
			zs.cancel = nil
		}
	}
	n.mu.Unlock()
	n.wg.Wait()
}
