package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/obs"
)

// Role is a zone's replication role on one node.
type Role string

const (
	// RolePrimary accepts writes for the zone and serves its WAL to
	// the standby.
	RolePrimary Role = "primary"
	// RoleStandby replicates from the primary and serves reads only.
	RoleStandby Role = "standby"
)

// ErrDraining is returned by AdmitWrite while a zone is draining
// ahead of a migration cutover: writes are refused (503 + Retry-After
// at the HTTP boundary) so the standby can reach the final head.
var ErrDraining = errors.New("cluster: zone draining")

// ErrStaleEpoch is returned when a request carries an epoch below the
// zone's current one — the sender was demoted (possibly without
// knowing it) and must not be obeyed.
var ErrStaleEpoch = errors.New("cluster: stale epoch")

// NotPrimaryError is returned by AdmitWrite when this node is standby
// for the zone. Primary, when known, is the base URL writes should be
// redirected to (307); empty means refuse with 503.
type NotPrimaryError struct {
	// Zone is the zone the write was addressed to.
	Zone string
	// Primary is the current write owner's base URL, if known.
	Primary string
}

// Error implements error.
func (e *NotPrimaryError) Error() string {
	if e.Primary == "" {
		return fmt.Sprintf("cluster: not primary for zone %q", e.Zone)
	}
	return fmt.Sprintf("cluster: not primary for zone %q (primary %s)", e.Zone, e.Primary)
}

// Options configures a Node.
type Options struct {
	// Self is this node's own base URL as peers reach it
	// ("http://host:port"). Used to recognize itself in the routing
	// table. Required.
	Self string
	// Token, when non-empty, is the bearer token required on every
	// /cluster endpoint and attached to every outgoing pull.
	Token string
	// Resolver finds the backend for a zone. Required.
	Resolver BackendResolver
	// Epochs persists per-zone fencing epochs (default MemEpochStore).
	Epochs EpochStore
	// RouteStore, when non-nil, persists the learned routing table so
	// a rebooted node remembers zone ownership without re-probing.
	RouteStore RouteStore
	// HTTP performs the standby's pulls (default http.DefaultTransport).
	HTTP http.RoundTripper
	// Clock times replication lag (default the wall clock).
	Clock clock.Clock
	// PullInterval is the standby's idle poll period (default 500ms).
	// A pull that learns it is still behind loops again immediately.
	PullInterval time.Duration
	// PullBatch caps records per pull (default 4096).
	PullBatch int
	// Drop, when non-nil, releases a zone's local resources after its
	// ownership migrates away (the daemon closes the zone's engine).
	Drop func(zone string) error
	// Metrics, when non-nil, receives the node's radloc_repl_* and
	// radloc_cluster_* collectors.
	Metrics *obs.Registry
	// Log, when non-nil, receives role transitions and replication
	// errors.
	Log *log.Logger
}

// zoneState is one zone's replication state on this node. All fields
// are guarded by Node.mu.
type zoneState struct {
	name     string
	role     Role
	epoch    uint64
	draining bool

	// starts is the known epoch-start history (ascending by epoch),
	// used to compute divergence floors for pullers at older epochs.
	// Every entry is at or below the true first offset of its epoch,
	// so floors derived from it only ever widen the quarantine.
	starts []EpochStart

	// primaryURL is where writes should go when role is standby.
	primaryURL string

	// acked is the highest offset the replica has durably applied —
	// primary-side, learned from the from= of each pull.
	acked uint64

	// Standby-side pull progress.
	applied      uint64 // local WAL head after the last apply
	head         uint64 // primary's WAL head from the last hello/end
	caughtUp     bool
	lastCaughtUp time.Time
	lastErr      string

	cancel context.CancelFunc // stops the replica loop; nil when none runs
}

// Node is one radlocd's membership in the cluster: the set of zones
// it is primary or standby for, their epochs, and the replica
// goroutines pulling WAL for its standby zones. All methods are safe
// for concurrent use.
type Node struct {
	opts Options
	met  *nodeMetrics

	mu      sync.Mutex
	routes  Routes
	zones   map[string]*zoneState
	peersFn func() []PeerView // failure detector's view; see SetPeersFunc
	closed  bool

	wg sync.WaitGroup
}

// NewNode builds a node. Replication starts when SetRoutes assigns it
// a standby role for some zone.
func NewNode(opts Options) (*Node, error) {
	if opts.Self == "" {
		return nil, errors.New("cluster: Options.Self is required")
	}
	if opts.Resolver == nil {
		return nil, errors.New("cluster: Options.Resolver is required")
	}
	if opts.Epochs == nil {
		opts.Epochs = &MemEpochStore{}
	}
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultTransport
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.PullInterval <= 0 {
		opts.PullInterval = 500 * time.Millisecond
	}
	if opts.PullBatch <= 0 {
		opts.PullBatch = 4096
	}
	return &Node{
		opts:  opts,
		met:   newNodeMetrics(opts.Metrics),
		zones: make(map[string]*zoneState),
	}, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Log != nil {
		n.opts.Log.Printf(format, args...)
	}
}

// zoneFor returns (creating if needed) the zone's state. The routing
// table decides the initial role: primary when the route names Self
// (or there is no route — standalone zones are owned locally),
// standby when the route names another node. Caller must hold n.mu.
func (n *Node) zoneFor(name string) (*zoneState, error) {
	if zs, ok := n.zones[name]; ok {
		return zs, nil
	}
	meta, err := n.opts.Epochs.Load(name)
	if err != nil {
		return nil, fmt.Errorf("cluster: load epoch for %q: %w", name, err)
	}
	if meta.Epoch == 0 {
		meta.Epoch = 1
	}
	zs := &zoneState{name: name, role: RolePrimary, epoch: meta.Epoch, starts: meta.Starts}
	if meta.Epoch > 1 && !hasStart(zs.starts, meta.Epoch) {
		// Legacy store without start history: anchor the current epoch
		// at offset 0 so divergence floors stay conservative (a puller
		// at an older epoch gets floor 0, i.e. a full re-seed) rather
		// than silently under-quarantining.
		zs.starts = recordStart(zs.starts, EpochStart{Epoch: meta.Epoch, Start: 0})
	}
	if rt, ok := n.routes.Zones[name]; ok && rt.Primary != n.opts.Self {
		zs.role = RoleStandby
		zs.primaryURL = rt.Primary
		zs.lastCaughtUp = n.opts.Clock.Now()
	}
	n.zones[name] = zs
	n.met.roleChanged(name, zs.role == RolePrimary, zs.epoch)
	if zs.role == RoleStandby {
		n.startReplicaLocked(zs)
	}
	return zs, nil
}

// maxEpochStarts bounds the persisted epoch-start history. When the
// list would grow past it, the two oldest entries merge into one
// carrying the lower start — floors for very old pullers stay
// conservative instead of losing coverage.
const maxEpochStarts = 16

// hasStart reports whether the history has an entry for epoch.
func hasStart(starts []EpochStart, epoch uint64) bool {
	for _, s := range starts {
		if s.Epoch == epoch {
			return true
		}
	}
	return false
}

// recordStart inserts an epoch-start entry, keeping the list sorted
// and unique by epoch. An existing entry is only ever lowered — a
// lower start is always at least as safe. Overflow merges the two
// oldest entries into the higher epoch with the lower start.
func recordStart(starts []EpochStart, e EpochStart) []EpochStart {
	for i, s := range starts {
		if s.Epoch == e.Epoch {
			if e.Start < s.Start {
				starts[i].Start = e.Start
			}
			return starts
		}
	}
	starts = append(starts, e)
	sort.Slice(starts, func(a, b int) bool { return starts[a].Epoch < starts[b].Epoch })
	for len(starts) > maxEpochStarts {
		if starts[1].Start > starts[0].Start {
			starts[1].Start = starts[0].Start
		}
		starts = starts[1:]
	}
	return starts
}

// divergenceFloorLocked computes the lowest offset that may carry
// writes from an epoch newer than reqEpoch. A puller still holding
// records at or above it has a diverged suffix. Unknown history
// degrades to floor 0 (full re-seed). Caller holds n.mu.
func (n *Node) divergenceFloorLocked(zs *zoneState, reqEpoch uint64) uint64 {
	if zs.epoch <= reqEpoch {
		return 0
	}
	floor, found := uint64(0), false
	for _, s := range zs.starts {
		if s.Epoch > reqEpoch && (!found || s.Start < floor) {
			floor, found = s.Start, true
		}
	}
	return floor
}

// epochMetaLocked snapshots a zone's persistable epoch state. Caller
// holds n.mu.
func epochMetaLocked(zs *zoneState) EpochMeta {
	return EpochMeta{Epoch: zs.epoch, Starts: append([]EpochStart(nil), zs.starts...)}
}

// saveRoutes persists the routing table snapshot when a store is
// configured. Failures are logged, not fatal — the table is
// re-learnable from peers.
func (n *Node) saveRoutes(r Routes) {
	if n.opts.RouteStore == nil {
		return
	}
	if err := n.opts.RouteStore.Save(r); err != nil {
		n.logf("cluster: persist routes: %v", err)
	}
}

// SetRoutes installs the routing table and instantiates state for
// every routed zone: standby zones start their replica loops
// immediately so they are warm before the first failover. Roles of
// zones that already exist locally are left alone — routes seed
// roles, they never demote a live primary (that is Demote's job, with
// its epoch check).
func (n *Node) SetRoutes(r Routes) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("cluster: node closed")
	}
	// Deep-copy: the node mutates its table on promotion and route
	// learning, and the caller's map must not see (or cause) that.
	n.routes = r.Clone()
	for _, name := range r.ZoneNames() {
		if _, err := n.zoneFor(name); err != nil {
			return err
		}
	}
	return nil
}

// Routes returns the current routing table, with this node's live
// primary zones asserted at their current epochs — so peers probing
// /cluster/routes learn ownership even for zones the static table
// never mentioned, and every promotion's epoch bump propagates.
func (n *Node) Routes() Routes {
	n.mu.Lock()
	defer n.mu.Unlock()
	cp := n.routes.Clone()
	for name, zs := range n.zones {
		if zs.role != RolePrimary {
			continue
		}
		cur, ok := cp.Zones[name]
		if ok && cur.Epoch >= zs.epoch && cur.Primary == n.opts.Self {
			continue
		}
		if ok && cur.Epoch >= zs.epoch {
			// A newer assertion names someone else; report the table's
			// view — this node is a stale primary about to be fenced.
			continue
		}
		st := ""
		if ok {
			if cur.Standby != "" && cur.Standby != n.opts.Self {
				st = cur.Standby
			} else if cur.Primary != n.opts.Self {
				st = cur.Primary
			}
		}
		cp.Zones[name] = Route{Primary: n.opts.Self, Standby: st, Epoch: zs.epoch}
	}
	return cp
}

// AdmitWrite decides whether this node may accept a write for the
// zone right now: nil for a live primary, ErrDraining mid-cutover,
// NotPrimaryError (with redirect target when known) for a standby.
func (n *Node) AdmitWrite(zone string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		return err
	}
	if zs.role != RolePrimary {
		return &NotPrimaryError{Zone: zone, Primary: zs.primaryURL}
	}
	if zs.draining {
		return ErrDraining
	}
	return nil
}

// Promote makes this node primary for the zone: the replica loop (if
// any) stops, the epoch is bumped and persisted — fencing out the old
// primary — the new epoch's WAL start offset is recorded for future
// divergence floors, the routing table asserts the new ownership, and
// a checkpoint seals the takeover. Idempotent on an already-primary
// zone (no epoch bump).
func (n *Node) Promote(zone string) (uint64, error) {
	b, berr := n.opts.Resolver(zone)

	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		n.mu.Unlock()
		return 0, err
	}
	if zs.role == RolePrimary {
		epoch := zs.epoch
		n.mu.Unlock()
		return epoch, nil
	}
	if zs.cancel != nil {
		zs.cancel()
		zs.cancel = nil
	}
	former := zs.primaryURL
	zs.role = RolePrimary
	zs.draining = false
	zs.primaryURL = ""
	zs.epoch++
	epoch := zs.epoch
	if berr == nil {
		// The local head at promotion is the first offset that can
		// carry this epoch's writes: everything below it replicated
		// from the old primary, everything at or above is new history.
		zs.starts = recordStart(zs.starts, EpochStart{Epoch: epoch, Start: b.Offset()})
	} else {
		zs.starts = recordStart(zs.starts, EpochStart{Epoch: epoch, Start: 0})
	}
	meta := epochMetaLocked(zs)
	if n.routes.Zones == nil {
		n.routes.Zones = make(map[string]Route)
	}
	n.routes.Zones[zone] = Route{Primary: n.opts.Self, Standby: former, Epoch: epoch}
	routesCp := n.routes.Clone()
	n.met.roleChanged(zone, true, epoch)
	n.mu.Unlock()

	n.saveRoutes(routesCp)
	if err := n.opts.Epochs.Save(zone, meta); err != nil {
		return epoch, fmt.Errorf("cluster: persist epoch for %q: %w", zone, err)
	}
	if berr != nil {
		return epoch, berr
	}
	if err := b.Checkpoint(); err != nil {
		n.logf("cluster: checkpoint after promoting %q: %v", zone, err)
	}
	n.logf("cluster: promoted to primary for zone %q at epoch %d", zone, epoch)
	return epoch, nil
}

// Demote makes this node standby for the zone at the given epoch,
// replicating from primaryURL (when non-empty). An epoch below the
// zone's current one is refused with ErrStaleEpoch — a partitioned
// old primary cannot talk this node out of a newer promotion. An
// epoch above the current one is adopted with a conservative start of
// 0 (the operator vouched for it; the node has not verified where the
// new history began).
func (n *Node) Demote(zone string, epoch uint64, primaryURL string) error {
	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	if epoch < zs.epoch {
		n.mu.Unlock()
		n.met.fenced()
		return fmt.Errorf("%w: zone %q at epoch %d, demote carries %d", ErrStaleEpoch, zone, zs.epoch, epoch)
	}
	zs.role = RoleStandby
	zs.draining = false
	if epoch > zs.epoch {
		zs.starts = recordStart(zs.starts, EpochStart{Epoch: epoch, Start: 0})
	}
	zs.epoch = epoch
	zs.primaryURL = primaryURL
	zs.lastCaughtUp = n.opts.Clock.Now()
	zs.caughtUp = false
	meta := epochMetaLocked(zs)
	var routesCp Routes
	if primaryURL != "" {
		if n.routes.Zones == nil {
			n.routes.Zones = make(map[string]Route)
		}
		n.routes.Zones[zone] = Route{Primary: primaryURL, Standby: n.opts.Self, Epoch: epoch}
		routesCp = n.routes.Clone()
	}
	n.met.roleChanged(zone, false, epoch)
	if primaryURL != "" && zs.cancel == nil {
		n.startReplicaLocked(zs)
	}
	n.mu.Unlock()
	if routesCp.Zones != nil {
		n.saveRoutes(routesCp)
	}
	if err := n.opts.Epochs.Save(zone, meta); err != nil {
		return fmt.Errorf("cluster: persist epoch for %q: %w", zone, err)
	}
	n.logf("cluster: demoted to standby for zone %q at epoch %d (primary %q)", zone, epoch, primaryURL)
	return nil
}

// stepDownLocked turns a primary into a standby without touching its
// epoch. This is the fencing path for a node that just learned it was
// superseded (a newer-epoch pull, a higher-epoch route assertion):
// the epoch must stay at its old value so the next pull still carries
// it and the new primary's divergence floor applies to whatever this
// node wrote while isolated. Caller holds n.mu.
func (n *Node) stepDownLocked(zs *zoneState, primaryURL string) {
	if zs.cancel != nil {
		zs.cancel()
		zs.cancel = nil
	}
	zs.role = RoleStandby
	zs.draining = false
	zs.primaryURL = primaryURL
	zs.caughtUp = false
	zs.lastCaughtUp = n.opts.Clock.Now()
	n.met.roleChanged(zs.name, false, zs.epoch)
	if primaryURL != "" {
		n.startReplicaLocked(zs)
	}
}

// stepDown is stepDownLocked for callers not holding n.mu.
func (n *Node) stepDown(zone, primaryURL string) {
	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		n.mu.Unlock()
		n.logf("cluster: step down %q: %v", zone, err)
		return
	}
	if zs.role == RolePrimary {
		n.stepDownLocked(zs, primaryURL)
	} else if primaryURL != "" && zs.primaryURL != primaryURL {
		zs.primaryURL = primaryURL
		if zs.cancel == nil {
			n.startReplicaLocked(zs)
		}
	}
	epoch := zs.epoch
	n.mu.Unlock()
	n.logf("cluster: stepped down for zone %q at epoch %d", zone, epoch)
}

// LearnRoutes merges per-zone route assertions into the node's table:
// for each zone, the assertion with the higher epoch wins (ties keep
// the current entry, so tables converge instead of thrashing). A
// learned entry naming another node as primary at a higher epoch than
// this node's own makes a local primary step down — keeping its epoch,
// so the divergence check runs before it adopts the new history — and
// re-aims a local standby's replica loop. Self-assertions never
// promote: promotion only happens through Promote's fencing path.
// Returns whether the table changed; changes are persisted.
func (n *Node) LearnRoutes(r Routes) bool {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return false
	}
	changed := false
	for name, rt := range r.Zones {
		if rt.Primary == "" {
			continue
		}
		if n.routes.Zones == nil {
			n.routes.Zones = make(map[string]Route)
		}
		cur, ok := n.routes.Zones[name]
		if ok && rt.Epoch <= cur.Epoch {
			continue
		}
		n.routes.Zones[name] = rt
		changed = true
		zs, live := n.zones[name]
		if !live || rt.Primary == n.opts.Self {
			continue
		}
		if zs.role == RolePrimary && rt.Epoch > zs.epoch {
			n.logf("cluster: zone %q superseded at epoch %d by %s (local epoch %d); stepping down",
				name, rt.Epoch, rt.Primary, zs.epoch)
			n.stepDownLocked(zs, rt.Primary)
		} else if zs.role == RoleStandby && zs.primaryURL != rt.Primary {
			zs.primaryURL = rt.Primary
			if zs.cancel == nil {
				n.startReplicaLocked(zs)
			}
		}
	}
	var routesCp Routes
	if changed {
		routesCp = n.routes.Clone()
	}
	n.mu.Unlock()
	if changed {
		n.saveRoutes(routesCp)
	}
	return changed
}

// SetDraining marks a primary zone as draining (writes refused with
// Retry-After) or lifts the mark. Draining a standby is an error.
func (n *Node) SetDraining(zone string, draining bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		return err
	}
	if zs.role != RolePrimary {
		return &NotPrimaryError{Zone: zone, Primary: zs.primaryURL}
	}
	zs.draining = draining
	n.logf("cluster: zone %q draining=%v", zone, draining)
	return nil
}

// Release completes a migration on the old primary: the zone becomes
// standby pointing at its new owner and local resources are dropped
// via Options.Drop. Safe to skip when the old primary is dead — the
// standby's promotion already fenced it out.
func (n *Node) Release(zone string, to string) error {
	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	if zs.cancel != nil {
		zs.cancel()
		zs.cancel = nil
	}
	zs.role = RoleStandby
	zs.draining = false
	zs.primaryURL = to
	zs.caughtUp = false
	n.met.roleChanged(zone, false, zs.epoch)
	var routesCp Routes
	if to != "" {
		if n.routes.Zones == nil {
			n.routes.Zones = make(map[string]Route)
		}
		n.routes.Zones[zone] = Route{Primary: to, Standby: n.opts.Self, Epoch: zs.epoch}
		routesCp = n.routes.Clone()
	}
	n.mu.Unlock()
	if routesCp.Zones != nil {
		n.saveRoutes(routesCp)
	}
	n.logf("cluster: released zone %q to %q", zone, to)
	if n.opts.Drop != nil {
		return n.opts.Drop(zone)
	}
	return nil
}

// recordAck notes the replica's durable watermark from a pull's from=
// parameter and parks the WAL retention floor there.
func (n *Node) recordAck(zone string, b Backend, from uint64) {
	n.mu.Lock()
	zs, err := n.zoneFor(zone)
	if err == nil && from > zs.acked {
		zs.acked = from
	}
	n.mu.Unlock()
	if err == nil {
		n.met.acked(zone, from)
		b.SetRetainFloor(from)
	}
}

// ZoneStatus is one zone's replication status as reported by Status
// and the /cluster/status endpoint.
type ZoneStatus struct {
	// Zone is the zone name.
	Zone string `json:"zone"`
	// Role is primary or standby.
	Role Role `json:"role"`
	// Epoch is the zone's current fencing epoch.
	Epoch uint64 `json:"epoch"`
	// Draining reports a primary refusing writes ahead of cutover.
	Draining bool `json:"draining,omitempty"`
	// Primary is the write owner's URL when this node is standby.
	Primary string `json:"primary,omitempty"`
	// Head is the local WAL head (primary) or the remote head as of
	// the last pull (standby).
	Head uint64 `json:"head"`
	// Applied is the standby's local WAL head.
	Applied uint64 `json:"applied,omitempty"`
	// Acked is the replica's durable watermark as seen by a primary.
	Acked uint64 `json:"acked,omitempty"`
	// LagRecords is head - applied on a standby.
	LagRecords uint64 `json:"lagRecords,omitempty"`
	// LagSeconds is how long the standby has been behind.
	LagSeconds float64 `json:"lagSeconds,omitempty"`
	// CaughtUp reports applied == head as of the last pull.
	CaughtUp bool `json:"caughtUp"`
	// LastError is the most recent pull failure, cleared on success.
	LastError string `json:"lastError,omitempty"`
}

// Status reports every known zone's replication state, sorted by
// zone name.
func (n *Node) Status() []ZoneStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.opts.Clock.Now()
	out := make([]ZoneStatus, 0, len(n.zones))
	for _, zs := range n.zones {
		st := ZoneStatus{
			Zone:      zs.name,
			Role:      zs.role,
			Epoch:     zs.epoch,
			Draining:  zs.draining,
			Primary:   zs.primaryURL,
			CaughtUp:  zs.role == RolePrimary || zs.caughtUp,
			LastError: zs.lastErr,
		}
		if zs.role == RolePrimary {
			st.Acked = zs.acked
			if b, err := n.opts.Resolver(zs.name); err == nil {
				st.Head = b.Offset()
			}
		} else {
			st.Head = zs.head
			st.Applied = zs.applied
			if zs.head > zs.applied {
				st.LagRecords = zs.head - zs.applied
			}
			if !zs.caughtUp {
				st.LagSeconds = now.Sub(zs.lastCaughtUp).Seconds()
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Zone < out[b].Zone })
	return out
}

// Ready reports whether every standby zone with a live replica loop
// has caught up to its primary at least once — the readiness gate
// /readyz consults, so a freshly booted standby is not marked ready
// while it is still replaying a backlog.
func (n *Node) Ready() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, zs := range n.zones {
		if zs.role == RoleStandby && zs.cancel != nil && !zs.caughtUp {
			return false
		}
	}
	return true
}

// Close stops every replica loop and waits for them to exit.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, zs := range n.zones {
		if zs.cancel != nil {
			zs.cancel()
			zs.cancel = nil
		}
	}
	n.mu.Unlock()
	n.wg.Wait()
}
