package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"radloc/internal/zone"
)

// Route names the nodes serving one zone: the primary accepts writes,
// the standby (optional) replicates and serves reads. Values are base
// URLs ("http://host:port").
type Route struct {
	// Primary is the write owner's base URL.
	Primary string `json:"primary"`
	// Standby is the replica's base URL; empty means unreplicated.
	Standby string `json:"standby,omitempty"`
	// Epoch is the fencing epoch this assertion was made at. When two
	// nodes disagree about a zone's primary, the higher epoch wins —
	// it reflects the more recent promotion. Zero (static seed tables)
	// loses to any learned assertion.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Routes is the zone→node routing table: seeded from a static file,
// then kept current by exchanging per-zone {primary, epoch}
// assertions between nodes (LearnRoutes). Zones absent from the table
// are owned by whichever node they first appear on (standalone
// behavior), so a single-node deployment needs no table at all.
type Routes struct {
	// Zones maps zone name to its route.
	Zones map[string]Route `json:"zones"`
}

// LoadRoutes reads and validates a routes file. Zone names follow the
// wire grammar; every route must name a primary.
func LoadRoutes(path string) (Routes, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Routes{}, err
	}
	return ParseRoutes(raw)
}

// ParseRoutes validates a JSON routing table.
func ParseRoutes(raw []byte) (Routes, error) {
	var r Routes
	if err := json.Unmarshal(raw, &r); err != nil {
		return Routes{}, fmt.Errorf("cluster: bad routes: %w", err)
	}
	for name, rt := range r.Zones {
		if err := zone.ValidateName(name); err != nil {
			return Routes{}, fmt.Errorf("cluster: routes: %w", err)
		}
		if rt.Primary == "" {
			return Routes{}, fmt.Errorf("cluster: routes: zone %q has no primary", name)
		}
	}
	return r, nil
}

// ZoneNames returns the routed zone names, sorted.
func (r Routes) ZoneNames() []string {
	out := make([]string, 0, len(r.Zones))
	for name := range r.Zones {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the table so callers can mutate or persist it
// without holding the node's lock.
func (r Routes) Clone() Routes {
	cp := Routes{Zones: make(map[string]Route, len(r.Zones))}
	for k, v := range r.Zones {
		cp.Zones[k] = v
	}
	return cp
}

// RouteStore persists the learned routing table across restarts, so a
// rebooted node remembers who owns each zone without waiting for the
// next probe round.
type RouteStore interface {
	// Load returns the stored table; an empty table if none was saved.
	Load() (Routes, error)
	// Save durably records the table.
	Save(Routes) error
}

// MemRouteStore is an in-memory RouteStore for tests and for nodes
// running without durability.
type MemRouteStore struct {
	mu sync.Mutex
	r  Routes
}

// Load implements RouteStore.
func (s *MemRouteStore) Load() (Routes, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Clone(), nil
}

// Save implements RouteStore.
func (s *MemRouteStore) Save(r Routes) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r = r.Clone()
	return nil
}
