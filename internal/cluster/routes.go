package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"radloc/internal/zone"
)

// Route names the nodes serving one zone: the primary accepts writes,
// the standby (optional) replicates and serves reads. Values are base
// URLs ("http://host:port").
type Route struct {
	// Primary is the write owner's base URL.
	Primary string `json:"primary"`
	// Standby is the replica's base URL; empty means unreplicated.
	Standby string `json:"standby,omitempty"`
}

// Routes is the static zone→node routing table. Zones absent from the
// table are owned by whichever node they first appear on (standalone
// behavior), so a single-node deployment needs no table at all.
type Routes struct {
	// Zones maps zone name to its route.
	Zones map[string]Route `json:"zones"`
}

// LoadRoutes reads and validates a routes file. Zone names follow the
// wire grammar; every route must name a primary.
func LoadRoutes(path string) (Routes, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Routes{}, err
	}
	return ParseRoutes(raw)
}

// ParseRoutes validates a JSON routing table.
func ParseRoutes(raw []byte) (Routes, error) {
	var r Routes
	if err := json.Unmarshal(raw, &r); err != nil {
		return Routes{}, fmt.Errorf("cluster: bad routes: %w", err)
	}
	for name, rt := range r.Zones {
		if err := zone.ValidateName(name); err != nil {
			return Routes{}, fmt.Errorf("cluster: routes: %w", err)
		}
		if rt.Primary == "" {
			return Routes{}, fmt.Errorf("cluster: routes: zone %q has no primary", name)
		}
	}
	return r, nil
}

// ZoneNames returns the routed zone names, sorted.
func (r Routes) ZoneNames() []string {
	out := make([]string, 0, len(r.Zones))
	for name := range r.Zones {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
