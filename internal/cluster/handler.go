package cluster

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"radloc/internal/wal"
	"radloc/internal/zone"
)

// Mount registers the /cluster endpoints on mux. Discovery endpoints
// (/cluster/routes, /cluster/status) are open; everything that moves
// state or data requires the bearer token when one is configured.
func (n *Node) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /cluster/routes", n.handleRoutes)
	mux.HandleFunc("GET /cluster/status", n.handleStatus)
	mux.HandleFunc("GET /cluster/wal/{zone}", n.auth(n.handleWAL))
	mux.HandleFunc("GET /cluster/state/{zone}", n.auth(n.handleState))
	mux.HandleFunc("POST /cluster/promote/{zone}", n.auth(n.handlePromote))
	mux.HandleFunc("POST /cluster/demote/{zone}", n.auth(n.handleDemote))
	mux.HandleFunc("POST /cluster/drain/{zone}", n.auth(n.handleDrain))
	mux.HandleFunc("POST /cluster/replicate/{zone}", n.auth(n.handleReplicate))
	mux.HandleFunc("POST /cluster/release/{zone}", n.auth(n.handleRelease))
}

// auth wraps a handler with constant-time bearer-token verification.
// No configured token means open endpoints (single-operator labs).
func (n *Node) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if n.opts.Token != "" {
			got := r.Header.Get("Authorization")
			want := "Bearer " + n.opts.Token
			if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
				http.Error(w, "unauthorized", http.StatusUnauthorized)
				return
			}
		}
		h(w, r)
	}
}

// reqZone validates the {zone} path segment; a bad name 404s.
func reqZone(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("zone")
	if err := zone.ValidateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return "", false
	}
	return name, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (n *Node) handleRoutes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, n.Routes())
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Self  string       `json:"self"`
		Zones []ZoneStatus `json:"zones"`
		Peers []PeerView   `json:"peers,omitempty"`
	}{Self: n.opts.Self, Zones: n.Status(), Peers: n.peerViews()})
}

// handleWAL streams the zone's WAL suffix [from, from+max) as NDJSON
// frames: hello, records, end. The from parameter doubles as the
// replica's durable ack — everything below it is applied on the
// standby — so it advances the retention floor before any bytes ship.
func (n *Node) handleWAL(w http.ResponseWriter, r *http.Request) {
	name, ok := reqZone(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad from", http.StatusBadRequest)
		return
	}
	reqEpoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
	if err != nil {
		http.Error(w, "bad epoch", http.StatusBadRequest)
		return
	}
	max := n.opts.PullBatch
	if s := q.Get("max"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 && v <= 1<<16 {
			max = v
		}
	}

	n.mu.Lock()
	zs, zerr := n.zoneFor(name)
	var epoch, floor uint64
	if zerr == nil {
		epoch = zs.epoch
		floor = n.divergenceFloorLocked(zs, reqEpoch)
	}
	n.mu.Unlock()
	if zerr != nil {
		http.Error(w, zerr.Error(), http.StatusInternalServerError)
		return
	}
	if reqEpoch > epoch {
		// The puller was promoted past us: we are the stale side. Step
		// down so we stop accepting writes — keeping our old epoch, so
		// our own next pull carries it and the new primary's
		// divergence floor gets to judge whatever we wrote while
		// isolated — and refuse the pull: the new primary has nothing
		// to learn from us.
		n.met.fenced()
		n.stepDown(name, "")
		http.Error(w, "stale primary epoch", http.StatusConflict)
		return
	}

	b, err := n.opts.Resolver(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if from < b.Oldest() {
		http.Error(w, "offset pruned; bootstrap from /cluster/state", http.StatusGone)
		return
	}
	n.recordAck(name, b, from)

	head := b.Offset()
	w.Header().Set("Content-Type", "application/x-ndjson")
	line, err := EncodeControl(FrameHello, epoch, head, floor)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(line); err != nil {
		return
	}
	var sent uint64
	err = b.ReadWAL(from, max, func(off uint64, rec wal.Record) error {
		line, err := EncodeRecord(off, rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		sent++
		return nil
	})
	n.met.servedRecords(sent)
	if err != nil {
		// Headers are gone; a torn write is exactly what the standby's
		// prefix-safe decoder expects. Just stop.
		n.logf("cluster: serve wal %q: %v", name, err)
		return
	}
	if line, err := EncodeControl(FrameEnd, epoch, head, 0); err == nil {
		w.Write(line)
	}
}

// handleState exports the zone's full serialized state for replica
// bootstrap and migration checkpoint-shipping.
func (n *Node) handleState(w http.ResponseWriter, r *http.Request) {
	name, ok := reqZone(w, r)
	if !ok {
		return
	}
	b, err := n.opts.Resolver(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	state, applied, err := b.ExportState()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n.mu.Lock()
	var epoch uint64
	if zs, zerr := n.zoneFor(name); zerr == nil {
		epoch = zs.epoch
	}
	n.mu.Unlock()
	writeJSON(w, stateSnapshot{Applied: applied, Epoch: epoch, State: state})
}

func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	name, ok := reqZone(w, r)
	if !ok {
		return
	}
	epoch, err := n.Promote(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]uint64{"epoch": epoch})
}

func (n *Node) handleDemote(w http.ResponseWriter, r *http.Request) {
	name, ok := reqZone(w, r)
	if !ok {
		return
	}
	var body struct {
		Epoch   uint64 `json:"epoch"`
		Primary string `json:"primary"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	if err := n.Demote(name, body.Epoch, body.Primary); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrStaleEpoch) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleDrain(w http.ResponseWriter, r *http.Request) {
	name, ok := reqZone(w, r)
	if !ok {
		return
	}
	draining := true
	var body struct {
		Draining *bool `json:"draining"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err == nil && body.Draining != nil {
		draining = *body.Draining
	}
	if err := n.SetDraining(name, draining); err != nil {
		var np *NotPrimaryError
		if errors.As(err, &np) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b, err := n.opts.Resolver(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"draining": draining, "head": b.Offset()})
}

func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	name, ok := reqZone(w, r)
	if !ok {
		return
	}
	var body struct {
		From string `json:"from"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.From == "" {
		http.Error(w, "bad body: want {\"from\":\"http://...\"}", http.StatusBadRequest)
		return
	}
	if err := n.Replicate(name, body.From); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleRelease(w http.ResponseWriter, r *http.Request) {
	name, ok := reqZone(w, r)
	if !ok {
		return
	}
	var body struct {
		To string `json:"to"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	if err := n.Release(name, body.To); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
