package cluster

import (
	"encoding/json"
	"errors"
	"sync"

	"radloc/internal/wal"
)

// RecordAt pairs a WAL record with its global offset for transfer
// between the stream decoder and the backend's apply path.
type RecordAt struct {
	// Off is the record's global WAL offset.
	Off uint64
	// Rec is the journaled measurement.
	Rec wal.Record
}

// ErrPruned is returned by Backend.ReadWAL when the requested offset
// has been pruned from disk — the replica is too far behind to catch
// up from the log and must bootstrap from a state snapshot instead.
// The HTTP boundary maps it to 410 Gone.
var ErrPruned = errors.New("cluster: offset pruned from wal")

// Backend is the per-zone durability surface the cluster layer
// replicates through. cmd/radlocd implements it over the zone's WAL +
// checkpoint machinery; tests implement it in memory. Implementations
// must be safe for concurrent use — the node calls them from HTTP
// handlers and replica goroutines.
type Backend interface {
	// Offset is the zone's WAL head: the offset the next accepted
	// record will get. Everything below it has been applied.
	Offset() uint64
	// Oldest is the oldest offset still readable from the local log;
	// ReadWAL below it fails with ErrPruned.
	Oldest() uint64
	// ReadWAL streams records [from, from+max) in offset order through
	// fn, stopping early on fn error. from below Oldest fails with
	// ErrPruned; from at or above the head streams nothing.
	ReadWAL(from uint64, max int, fn func(off uint64, rec wal.Record) error) error
	// SetRetainFloor parks the WAL pruning floor at off: records at or
	// above it survive pruning for a lagging replica's benefit.
	SetRetainFloor(off uint64)
	// ApplyRecords journals and applies replicated records in order.
	// Each record's offset must equal the local head — a gap means the
	// stream and local state diverged, which is an error, never a
	// silent skip.
	ApplyRecords(recs []RecordAt) error
	// ExportState serializes the engine state and the WAL offset it
	// covers, for bootstrapping a replica that is beyond log repair.
	ExportState() (state json.RawMessage, applied uint64, err error)
	// Bootstrap replaces local state with a shipped snapshot and
	// aligns the local log to applied, discarding whatever was there.
	Bootstrap(state json.RawMessage, applied uint64) error
	// Checkpoint forces a durable checkpoint now — promotion seals the
	// takeover so a crash right after it recovers into the new role's
	// state.
	Checkpoint() error
}

// BackendResolver finds (creating if needed) the backend for a zone.
// cmd/radlocd routes this through the zone manager so replication
// targets lazily instantiate exactly like write targets do.
type BackendResolver func(zone string) (Backend, error)

// EpochStore persists per-zone epochs across restarts. Epochs fence
// split-brain: a node that crashes and restarts must not forget it
// was demoted.
type EpochStore interface {
	// Load returns the stored epoch for a zone, 0 if none.
	Load(zone string) (uint64, error)
	// Save durably records the zone's epoch.
	Save(zone string, epoch uint64) error
}

// MemEpochStore is an in-memory EpochStore for tests and for nodes
// running without durability (where a restart loses engine state
// anyway, so losing the epoch with it is consistent).
type MemEpochStore struct {
	mu sync.Mutex
	m  map[string]uint64
}

// Load implements EpochStore.
func (s *MemEpochStore) Load(zone string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[zone], nil
}

// Save implements EpochStore.
func (s *MemEpochStore) Save(zone string, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]uint64)
	}
	s.m[zone] = epoch
	return nil
}
