package cluster

import (
	"encoding/json"
	"errors"
	"sync"

	"radloc/internal/wal"
)

// RecordAt pairs a WAL record with its global offset for transfer
// between the stream decoder and the backend's apply path.
type RecordAt struct {
	// Off is the record's global WAL offset.
	Off uint64
	// Rec is the journaled measurement.
	Rec wal.Record
}

// ErrPruned is returned by Backend.ReadWAL when the requested offset
// has been pruned from disk — the replica is too far behind to catch
// up from the log and must bootstrap from a state snapshot instead.
// The HTTP boundary maps it to 410 Gone.
var ErrPruned = errors.New("cluster: offset pruned from wal")

// Backend is the per-zone durability surface the cluster layer
// replicates through. cmd/radlocd implements it over the zone's WAL +
// checkpoint machinery; tests implement it in memory. Implementations
// must be safe for concurrent use — the node calls them from HTTP
// handlers and replica goroutines.
type Backend interface {
	// Offset is the zone's WAL head: the offset the next accepted
	// record will get. Everything below it has been applied.
	Offset() uint64
	// Oldest is the oldest offset still readable from the local log;
	// ReadWAL below it fails with ErrPruned.
	Oldest() uint64
	// ReadWAL streams records [from, from+max) in offset order through
	// fn, stopping early on fn error. from below Oldest fails with
	// ErrPruned; from at or above the head streams nothing.
	ReadWAL(from uint64, max int, fn func(off uint64, rec wal.Record) error) error
	// SetRetainFloor parks the WAL pruning floor at off: records at or
	// above it survive pruning for a lagging replica's benefit.
	SetRetainFloor(off uint64)
	// ApplyRecords journals and applies replicated records in order.
	// Each record's offset must equal the local head — a gap means the
	// stream and local state diverged, which is an error, never a
	// silent skip.
	ApplyRecords(recs []RecordAt) error
	// ExportState serializes the engine state and the WAL offset it
	// covers, for bootstrapping a replica that is beyond log repair.
	ExportState() (state json.RawMessage, applied uint64, err error)
	// Bootstrap replaces local state with a shipped snapshot and
	// aligns the local log to applied, discarding whatever was there.
	Bootstrap(state json.RawMessage, applied uint64) error
	// Checkpoint forces a durable checkpoint now — promotion seals the
	// takeover so a crash right after it recovers into the new role's
	// state.
	Checkpoint() error
	// QuarantineDiverged moves every local WAL record at or above
	// floor — plus any checkpoint covering them — into a diverged/
	// directory instead of deleting it, and truncates the local log to
	// floor. It is the repair path for a resurrected primary whose
	// unshipped suffix conflicts with the new primary's history: the
	// data is preserved for operator inspection, never silently
	// dropped. Returns the number of records quarantined.
	QuarantineDiverged(floor uint64) (uint64, error)
}

// BackendResolver finds (creating if needed) the backend for a zone.
// cmd/radlocd routes this through the zone manager so replication
// targets lazily instantiate exactly like write targets do.
type BackendResolver func(zone string) (Backend, error)

// EpochStart records the first WAL offset that can hold data written
// under an epoch. The list of starts a node has witnessed is what lets
// a primary compute the divergence floor for a resurrected node stuck
// at an older epoch: everything the old node holds at or above
// min(Start of newer epochs) was never shipped and conflicts with the
// new history.
type EpochStart struct {
	// Epoch is the fencing epoch the start belongs to.
	Epoch uint64 `json:"epoch"`
	// Start is the lowest WAL offset that may carry this epoch's
	// writes. A conservative (lower) value is always safe — it only
	// widens the quarantined suffix.
	Start uint64 `json:"start"`
}

// EpochMeta is everything the epoch store persists for one zone: the
// current fencing epoch plus the known epoch-start history used for
// divergence floors. Legacy stores that only recorded the epoch load
// with an empty Starts list, which degrades to a conservative floor
// of zero (full re-seed) — safe, just less surgical.
type EpochMeta struct {
	// Epoch is the zone's current fencing epoch.
	Epoch uint64 `json:"epoch"`
	// Starts is the known epoch-start history, ascending by epoch.
	Starts []EpochStart `json:"starts,omitempty"`
}

// EpochStore persists per-zone epoch metadata across restarts. Epochs
// fence split-brain: a node that crashes and restarts must not forget
// it was demoted, nor the offsets at which newer epochs began.
type EpochStore interface {
	// Load returns the stored metadata for a zone, zero if none.
	Load(zone string) (EpochMeta, error)
	// Save durably records the zone's epoch metadata.
	Save(zone string, meta EpochMeta) error
}

// MemEpochStore is an in-memory EpochStore for tests and for nodes
// running without durability (where a restart loses engine state
// anyway, so losing the epoch with it is consistent).
type MemEpochStore struct {
	mu sync.Mutex
	m  map[string]EpochMeta
}

// Load implements EpochStore.
func (s *MemEpochStore) Load(zone string) (EpochMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[zone], nil
}

// Save implements EpochStore.
func (s *MemEpochStore) Save(zone string, meta EpochMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]EpochMeta)
	}
	cp := meta
	cp.Starts = append([]EpochStart(nil), meta.Starts...)
	s.m[zone] = cp
	return nil
}
