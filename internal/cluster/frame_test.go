package cluster

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"radloc/internal/wal"
)

func TestFrameRecordRoundTrip(t *testing.T) {
	rec := wal.Record{SensorID: 7, CPM: 42, Step: 3, Seq: 9}
	line, err := EncodeRecord(123, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(line, []byte("\n")) {
		t.Fatalf("encoded frame not newline-terminated: %q", line)
	}
	f, err := DecodeFrame(line)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameRecord || f.Off != 123 || f.Rec != rec {
		t.Fatalf("round trip mangled frame: %+v", f)
	}
}

func TestFrameControlRoundTrip(t *testing.T) {
	for _, typ := range []string{FrameHello, FrameEnd} {
		start := uint64(0)
		if typ == FrameHello {
			start = 7
		}
		line, err := EncodeControl(typ, 5, 999, start)
		if err != nil {
			t.Fatal(err)
		}
		f, err := DecodeFrame(line)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != typ || f.Epoch != 5 || f.Head != 999 || f.Start != start {
			t.Fatalf("%s round trip mangled frame: %+v", typ, f)
		}
	}
	if _, err := EncodeControl("record", 1, 1, 0); err == nil {
		t.Fatal("EncodeControl accepted a non-control type")
	}
	if _, err := EncodeControl(FrameEnd, 1, 1, 9); err == nil {
		t.Fatal("EncodeControl accepted an end frame with a start offset")
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	good, _ := EncodeRecord(1, wal.Record{SensorID: 1, CPM: 10})
	cases := map[string]string{
		"empty":          "",
		"whitespace":     "   ",
		"not json":       "nonsense",
		"wrong type":     `{"type":"gift","head":1}`,
		"trailing data":  strings.TrimSuffix(string(good), "\n") + `{"x":1}`,
		"no rec":         `{"off":1,"crc":0}`,
		"control w/ rec": `{"type":"hello","epoch":1,"head":1,"off":2,"crc":3,"rec":{}}`,
		"record w/ head": `{"off":1,"crc":0,"head":9,"rec":{"sensorId":1,"cpm":10}}`,
		"unknown field":  `{"off":1,"crc":0,"rec":{"sensorId":1,"cpm":10},"extra":true}`,
		"bad rec fields": `{"off":1,"crc":1405647756,"rec":{"sensorId":"one","cpm":10}}`,
	}
	for name, in := range cases {
		if _, err := DecodeFrame([]byte(in)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", name, err)
		}
	}
}

func TestDecodeFrameCatchesBitFlips(t *testing.T) {
	line, err := EncodeRecord(55, wal.Record{SensorID: 3, CPM: 17, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the rec payload: the CRC must catch it.
	idx := bytes.Index(line, []byte(`"cpm":17`))
	if idx < 0 {
		t.Fatalf("payload not found in %q", line)
	}
	mut := append([]byte(nil), line...)
	mut[idx+7] = '9'
	if _, err := DecodeFrame(mut); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bit flip not caught: %v", err)
	}
}

func TestParseRoutes(t *testing.T) {
	r, err := ParseRoutes([]byte(`{"zones":{"default":{"primary":"http://a:1","standby":"http://b:2"}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Zones["default"].Primary; got != "http://a:1" {
		t.Fatalf("primary = %q", got)
	}
	if names := r.ZoneNames(); len(names) != 1 || names[0] != "default" {
		t.Fatalf("ZoneNames = %v", names)
	}
	for name, in := range map[string]string{
		"bad json":   `{`,
		"bad zone":   `{"zones":{"NOT/valid":{"primary":"http://a"}}}`,
		"no primary": `{"zones":{"ok":{"standby":"http://b"}}}`,
	} {
		if _, err := ParseRoutes([]byte(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
