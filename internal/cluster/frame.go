// Package cluster is radlocd's replication and failover layer. A
// primary node streams each zone's write-ahead log over an
// authenticated HTTP/NDJSON endpoint to one standby, which replays
// the suffix through the same deterministic recovery path a reboot
// uses; because the fusion engine is a pure function of its applied
// record sequence, a caught-up standby holds state bit-identical to
// the primary's. Replication is pull-based — the standby drives, and
// the offset it asks for doubles as its durable ack, which in turn
// parks the primary's WAL pruning floor so a lagging replica never
// loses the suffix it still needs. Split-brain is fenced by a
// monotonic per-zone epoch checked on both ends of every pull, and
// ownership moves between nodes with a checkpoint-ship + tail-stream
// + cutover migration sequence driven by `radloc ctl`.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"radloc/internal/wal"
)

// Frame types carried on the replication stream. A stream is NDJSON:
// one hello frame, zero or more record frames in strictly increasing
// offset order, and one end frame.
const (
	// FrameHello opens a stream: it carries the primary's current
	// epoch for the zone and its WAL head. A standby seeing an epoch
	// below its own refuses the whole stream (stale primary).
	FrameHello = "hello"
	// FrameRecord carries one WAL record with its global offset and
	// the same CRC-32 (IEEE) the on-disk log uses.
	FrameRecord = "record"
	// FrameEnd closes a stream and repeats the WAL head so the
	// standby can compute its lag even when no records shipped.
	FrameEnd = "end"
)

// Frame is one decoded replication stream line.
type Frame struct {
	// Type is FrameHello, FrameRecord or FrameEnd.
	Type string
	// Off is the record's global WAL offset (record frames only).
	Off uint64
	// Epoch is the sender's zone epoch (hello frames only).
	Epoch uint64
	// Head is the sender's WAL head — the offset the next append
	// will get (hello and end frames).
	Head uint64
	// Start is the divergence floor for the puller's epoch (hello
	// frames only): the lowest WAL offset that may carry writes from
	// an epoch newer than the one the puller asked with. A standby
	// holding records at or above it under an older epoch has a
	// diverged suffix that must be quarantined, not replayed over.
	Start uint64
	// Rec is the journaled measurement (record frames only).
	Rec wal.Record
}

// wireFrame is the JSON shape of every stream line. Record frames
// omit type; control frames omit off/crc/rec.
type wireFrame struct {
	Type  string          `json:"type,omitempty"`
	Epoch uint64          `json:"epoch,omitempty"`
	Head  uint64          `json:"head"`
	Start uint64          `json:"start,omitempty"`
	Off   uint64          `json:"off"`
	CRC   uint32          `json:"crc"`
	Rec   json.RawMessage `json:"rec,omitempty"`
}

// ErrBadFrame is wrapped by every DecodeFrame failure: torn lines,
// CRC mismatches, unknown types, garbage JSON. Callers stop applying
// the stream at the first bad frame — everything before it is intact
// (the prefix-safety the WAL's own recovery relies on).
var ErrBadFrame = errors.New("cluster: bad replication frame")

// EncodeRecord encodes one WAL record frame, newline-terminated. The
// CRC covers the raw rec bytes exactly as the on-disk log's does, so
// a bit flip anywhere between the primary's disk and the standby's
// decoder is caught by the same checksum discipline.
func EncodeRecord(off uint64, rec wal.Record) ([]byte, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(wireFrame{Off: off, CRC: crc32.ChecksumIEEE(raw), Rec: raw})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// EncodeControl encodes a hello or end frame, newline-terminated.
// start is the divergence floor a hello carries; end frames must pass
// zero.
func EncodeControl(typ string, epoch, head, start uint64) ([]byte, error) {
	if typ != FrameHello && typ != FrameEnd {
		return nil, fmt.Errorf("cluster: not a control frame type: %q", typ)
	}
	if typ == FrameEnd && start != 0 {
		return nil, fmt.Errorf("cluster: end frame cannot carry a start offset")
	}
	line, err := json.Marshal(wireFrame{Type: typ, Epoch: epoch, Head: head, Start: start})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// DecodeFrame parses one stream line (without trailing newline).
// Every failure wraps ErrBadFrame; no input panics. Record frames are
// CRC-checked before the record is unmarshalled, so a frame that
// decodes cleanly is byte-authentic.
func DecodeFrame(line []byte) (Frame, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return Frame{}, fmt.Errorf("%w: empty line", ErrBadFrame)
	}
	var wf wireFrame
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wf); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if dec.More() {
		return Frame{}, fmt.Errorf("%w: trailing data after frame", ErrBadFrame)
	}
	switch wf.Type {
	case FrameHello, FrameEnd:
		if wf.Rec != nil || wf.CRC != 0 || wf.Off != 0 {
			return Frame{}, fmt.Errorf("%w: control frame with record fields", ErrBadFrame)
		}
		if wf.Type == FrameEnd && wf.Start != 0 {
			return Frame{}, fmt.Errorf("%w: end frame with start offset", ErrBadFrame)
		}
		return Frame{Type: wf.Type, Epoch: wf.Epoch, Head: wf.Head, Start: wf.Start}, nil
	case "":
		if wf.Rec == nil {
			return Frame{}, fmt.Errorf("%w: record frame without rec", ErrBadFrame)
		}
		if wf.Epoch != 0 || wf.Head != 0 || wf.Start != 0 {
			return Frame{}, fmt.Errorf("%w: record frame with control fields", ErrBadFrame)
		}
		if crc32.ChecksumIEEE(wf.Rec) != wf.CRC {
			return Frame{}, fmt.Errorf("%w: crc mismatch at off %d", ErrBadFrame, wf.Off)
		}
		var rec wal.Record
		rdec := json.NewDecoder(bytes.NewReader(wf.Rec))
		rdec.DisallowUnknownFields()
		if err := rdec.Decode(&rec); err != nil {
			return Frame{}, fmt.Errorf("%w: bad record at off %d: %v", ErrBadFrame, wf.Off, err)
		}
		return Frame{Type: FrameRecord, Off: wf.Off, Rec: rec}, nil
	default:
		return Frame{}, fmt.Errorf("%w: unknown type %q", ErrBadFrame, wf.Type)
	}
}
