package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"radloc/internal/wal"
)

// memBackend is an in-memory Backend with the same contract as the
// daemon's WAL-backed one: contiguous records, prunable prefix,
// snapshot export/bootstrap.
type memBackend struct {
	mu     sync.Mutex
	base   uint64 // offset of recs[0]
	recs   []wal.Record
	retain   uint64
	boots    int
	ckpts    int
	diverged []wal.Record
}

func newMemBackend(n int) *memBackend {
	b := &memBackend{retain: ^uint64(0)}
	for i := 0; i < n; i++ {
		b.append()
	}
	return b
}

func (b *memBackend) append() {
	b.mu.Lock()
	defer b.mu.Unlock()
	off := b.base + uint64(len(b.recs))
	b.recs = append(b.recs, wal.Record{SensorID: int(off % 7), CPM: 10 + int(off), Seq: off})
}

func (b *memBackend) prune(keep uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if keep > b.retain {
		keep = b.retain
	}
	for b.base < keep && len(b.recs) > 0 {
		b.recs = b.recs[1:]
		b.base++
	}
}

func (b *memBackend) Offset() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.base + uint64(len(b.recs))
}

func (b *memBackend) Oldest() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.base
}

func (b *memBackend) ReadWAL(from uint64, max int, fn func(off uint64, rec wal.Record) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < b.base {
		return ErrPruned
	}
	head := b.base + uint64(len(b.recs))
	for off := from; off < head && max > 0; off++ {
		if err := fn(off, b.recs[off-b.base]); err != nil {
			return err
		}
		max--
	}
	return nil
}

func (b *memBackend) SetRetainFloor(off uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retain = off
}

func (b *memBackend) retainFloor() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retain
}

func (b *memBackend) ApplyRecords(recs []RecordAt) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ra := range recs {
		if want := b.base + uint64(len(b.recs)); ra.Off != want {
			return fmt.Errorf("memBackend: offset gap: got %d, want %d", ra.Off, want)
		}
		b.recs = append(b.recs, ra.Rec)
	}
	return nil
}

type memSnapshot struct {
	Base uint64       `json:"base"`
	Recs []wal.Record `json:"recs"`
}

func (b *memBackend) ExportState() (json.RawMessage, uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	blob, err := json.Marshal(memSnapshot{Base: b.base, Recs: append([]wal.Record(nil), b.recs...)})
	return blob, b.base + uint64(len(b.recs)), err
}

func (b *memBackend) Bootstrap(state json.RawMessage, applied uint64) error {
	var snap memSnapshot
	if err := json.Unmarshal(state, &snap); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if snap.Base+uint64(len(snap.Recs)) != applied {
		return fmt.Errorf("memBackend: snapshot covers %d, applied says %d", snap.Base+uint64(len(snap.Recs)), applied)
	}
	b.base, b.recs = snap.Base, snap.Recs
	b.boots++
	return nil
}

func (b *memBackend) Checkpoint() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ckpts++
	return nil
}

func (b *memBackend) QuarantineDiverged(floor uint64) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	head := b.base + uint64(len(b.recs))
	if floor >= head {
		return 0, nil
	}
	if floor < b.base {
		floor = b.base
	}
	moved := head - floor
	b.diverged = append(b.diverged, b.recs[floor-b.base:]...)
	b.recs = b.recs[:floor-b.base]
	return moved, nil
}

// divergedRecs returns a copy of the quarantined records.
func (b *memBackend) divergedRecs() []wal.Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]wal.Record(nil), b.diverged...)
}

// records returns a copy of the live record window.
func (b *memBackend) records() []wal.Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]wal.Record(nil), b.recs...)
}

// fabric dispatches requests to in-process handlers by URL host, with
// per-host partitions — a deterministic two-node network.
type fabric struct {
	mu    sync.Mutex
	hosts map[string]http.Handler
	down  map[string]bool
}

func newFabric() *fabric {
	return &fabric{hosts: make(map[string]http.Handler), down: make(map[string]bool)}
}

func (f *fabric) partition(host string, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[host] = cut
}

func (f *fabric) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	h, down := f.hosts[req.URL.Host], f.down[req.URL.Host]
	f.mu.Unlock()
	if h == nil || down {
		return nil, fmt.Errorf("fabric: host %q unreachable", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// testPair wires a primary node "a" and a standby node "b" for one
// zone over a fabric.
type testPair struct {
	fab          *fabric
	backA, backB *memBackend
	nodeA, nodeB *Node
	muxA, muxB   *http.ServeMux
}

func newTestPair(t *testing.T, zoneName string, seedRecords int) *testPair {
	t.Helper()
	p := &testPair{fab: newFabric(), backA: newMemBackend(seedRecords), backB: newMemBackend(0)}
	var err error
	p.nodeA, err = NewNode(Options{
		Self:     "http://a",
		Resolver: func(string) (Backend, error) { return p.backA, nil },
		HTTP:     p.fab, PullInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.nodeB, err = NewNode(Options{
		Self:     "http://b",
		Resolver: func(string) (Backend, error) { return p.backB, nil },
		HTTP:     p.fab, PullInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.muxA, p.muxB = http.NewServeMux(), http.NewServeMux()
	p.nodeA.Mount(p.muxA)
	p.nodeB.Mount(p.muxB)
	p.fab.hosts["a"], p.fab.hosts["b"] = p.muxA, p.muxB
	t.Cleanup(p.nodeA.Close)
	t.Cleanup(p.nodeB.Close)
	routes := Routes{Zones: map[string]Route{zoneName: {Primary: "http://a", Standby: "http://b"}}}
	if err := p.nodeA.SetRoutes(routes); err != nil {
		t.Fatal(err)
	}
	if err := p.nodeB.SetRoutes(routes); err != nil {
		t.Fatal(err)
	}
	return p
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func zoneStatus(n *Node, zone string) (ZoneStatus, bool) {
	for _, st := range n.Status() {
		if st.Zone == zone {
			return st, true
		}
	}
	return ZoneStatus{}, false
}

func sameRecords(a, b []wal.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReplicationCatchUpAndAck(t *testing.T) {
	p := newTestPair(t, "z1", 25)

	waitFor(t, "standby to replay the seed", func() bool { return p.backB.Offset() == 25 })
	for i := 0; i < 10; i++ {
		p.backA.append()
	}
	waitFor(t, "standby to follow the live tail", func() bool { return p.backB.Offset() == 35 })
	if !sameRecords(p.backA.records(), p.backB.records()) {
		t.Fatal("standby records differ from primary")
	}

	// The pull's from= doubles as the ack watermark: the primary's
	// retention floor must eventually park at the replica's head.
	waitFor(t, "ack watermark to advance", func() bool { return p.backA.retainFloor() >= 25 })

	waitFor(t, "standby readiness", p.nodeB.Ready)
	st, ok := zoneStatus(p.nodeB, "z1")
	if !ok || st.Role != RoleStandby || !st.CaughtUp {
		t.Fatalf("standby status = %+v", st)
	}
	if err := p.nodeA.AdmitWrite("z1"); err != nil {
		t.Fatalf("primary refused a write: %v", err)
	}
	var np *NotPrimaryError
	if err := p.nodeB.AdmitWrite("z1"); !errors.As(err, &np) || np.Primary != "http://a" {
		t.Fatalf("standby AdmitWrite = %v, want NotPrimaryError with redirect", err)
	}
}

func TestPromoteFencesOldPrimary(t *testing.T) {
	p := newTestPair(t, "z1", 10)
	waitFor(t, "standby sync", func() bool { return p.backB.Offset() == 10 })

	epoch, err := p.nodeB.Promote("z1")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promote epoch = %d, want 2", epoch)
	}
	if err := p.nodeB.AdmitWrite("z1"); err != nil {
		t.Fatalf("new primary refused a write: %v", err)
	}
	// Promotion is idempotent: no second epoch bump.
	if again, _ := p.nodeB.Promote("z1"); again != 2 {
		t.Fatalf("re-promote epoch = %d, want 2", again)
	}

	// A demotion carrying a stale epoch must be refused: a partitioned
	// old primary cannot talk the new one out of its promotion.
	if err := p.nodeB.Demote("z1", 1, ""); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale demote = %v, want ErrStaleEpoch", err)
	}

	// A pull carrying the new epoch forces the stale primary to step
	// down: 409 on the wire, standby role locally.
	req := httptest.NewRequest(http.MethodGet, "http://a/cluster/wal/z1?from=0&epoch=2", nil)
	rec := httptest.NewRecorder()
	p.muxA.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale primary served a newer-epoch pull: HTTP %d", rec.Code)
	}
	var npe *NotPrimaryError
	if err := p.nodeA.AdmitWrite("z1"); !errors.As(err, &npe) {
		t.Fatalf("fenced primary still admits writes: %v", err)
	}
}

func TestBootstrapAfterPrune(t *testing.T) {
	p := newTestPair(t, "z1", 0)
	// Build the primary's history before the standby exists, then
	// prune past what a cold replica would need.
	p.nodeB.Close()
	for i := 0; i < 40; i++ {
		p.backA.append()
	}
	p.backA.SetRetainFloor(30)
	p.backA.prune(30)
	if p.backA.Oldest() != 30 {
		t.Fatalf("prune left oldest = %d", p.backA.Oldest())
	}

	backC := newMemBackend(0)
	nodeC, err := NewNode(Options{
		Self:     "http://c",
		Resolver: func(string) (Backend, error) { return backC, nil },
		HTTP:     p.fab, PullInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeC.Close()
	if err := nodeC.Replicate("z1", "http://a"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "snapshot bootstrap + catch-up", func() bool { return backC.Offset() == 40 })
	backC.mu.Lock()
	boots := backC.boots
	backC.mu.Unlock()
	if boots != 1 {
		t.Fatalf("bootstraps = %d, want 1", boots)
	}
	// The live tail streams normally after the bootstrap.
	for i := 0; i < 5; i++ {
		p.backA.append()
	}
	waitFor(t, "post-bootstrap tail", func() bool { return backC.Offset() == 45 })
	if backC.Oldest() != 30 || !sameRecords(p.backA.records(), backC.records()) {
		t.Fatal("bootstrapped replica diverged from primary window")
	}
}

func TestPartitionedStandbyDegradesGracefully(t *testing.T) {
	p := newTestPair(t, "z1", 5)
	waitFor(t, "standby sync", func() bool { return p.backB.Offset() == 5 })

	p.fab.partition("a", true)
	for i := 0; i < 8; i++ {
		p.backA.append()
	}
	waitFor(t, "standby to notice the partition", func() bool {
		st, ok := zoneStatus(p.nodeB, "z1")
		return ok && !st.CaughtUp && st.LastError != ""
	})
	// Writes keep flowing on the primary; the standby refuses them.
	if err := p.nodeA.AdmitWrite("z1"); err != nil {
		t.Fatalf("partitioned primary refused a write: %v", err)
	}
	if err := p.nodeB.AdmitWrite("z1"); err == nil {
		t.Fatal("partitioned standby admitted a write (split brain)")
	}
	if p.nodeB.Ready() {
		t.Fatal("lagging standby reports ready")
	}

	p.fab.partition("a", false)
	waitFor(t, "catch-up after heal", func() bool {
		st, ok := zoneStatus(p.nodeB, "z1")
		return ok && st.CaughtUp && p.backB.Offset() == 13
	})
	if !sameRecords(p.backA.records(), p.backB.records()) {
		t.Fatal("healed standby diverged")
	}
}

func TestMigrationHandoff(t *testing.T) {
	p := newTestPair(t, "z1", 12)
	waitFor(t, "standby sync", func() bool { return p.backB.Offset() == 12 })

	if err := p.nodeA.SetDraining("z1", true); err != nil {
		t.Fatal(err)
	}
	if err := p.nodeA.AdmitWrite("z1"); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining primary AdmitWrite = %v, want ErrDraining", err)
	}
	if err := p.nodeB.SetDraining("z1", true); err == nil {
		t.Fatal("draining a standby should fail")
	}

	if _, err := p.nodeB.Promote("z1"); err != nil {
		t.Fatal(err)
	}
	var dropped []string
	p.nodeA.opts.Drop = func(zone string) error { dropped = append(dropped, zone); return nil }
	if err := p.nodeA.Release("z1", "http://b"); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0] != "z1" {
		t.Fatalf("Drop calls = %v", dropped)
	}
	var npe *NotPrimaryError
	if err := p.nodeA.AdmitWrite("z1"); !errors.As(err, &npe) || npe.Primary != "http://b" {
		t.Fatalf("released node AdmitWrite = %v, want redirect to http://b", err)
	}
}

func TestApplyStreamGuards(t *testing.T) {
	n, err := NewNode(Options{Self: "http://x", Resolver: func(string) (Backend, error) { return nil, errors.New("unused") }})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Demote("z", 2, ""); err != nil {
		t.Fatal(err)
	}
	rec := func(off uint64) string {
		line, err := EncodeRecord(off, wal.Record{SensorID: 1, CPM: int(off)})
		if err != nil {
			t.Fatal(err)
		}
		return string(line)
	}
	hello := func(epoch, head uint64) string {
		line, _ := EncodeControl(FrameHello, epoch, head, 0)
		return string(line)
	}

	// A hello below the standby's epoch is a stale primary: refused,
	// nothing applied.
	b := newMemBackend(0)
	_, _, err = n.applyStream("z", b, 2, strings.NewReader(hello(1, 5)+rec(0)))
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale hello err = %v", err)
	}
	if b.Offset() != 0 {
		t.Fatal("stale stream applied records")
	}

	// A higher hello epoch is adopted.
	b = newMemBackend(0)
	end, _ := EncodeControl(FrameEnd, 3, 1, 0)
	if _, _, err = n.applyStream("z", b, 2, strings.NewReader(hello(3, 1)+rec(0)+string(end))); err != nil {
		t.Fatal(err)
	}
	if st, _ := zoneStatus(n, "z"); st.Epoch != 3 {
		t.Fatalf("epoch after higher hello = %d, want 3", st.Epoch)
	}

	// A torn stream keeps its valid prefix and reports the tear.
	b = newMemBackend(0)
	applied, _, err := n.applyStream("z", b, 3, strings.NewReader(hello(3, 5)+rec(0)+rec(1)+rec(2)+`{"garbage`))
	if err == nil {
		t.Fatal("torn stream decoded cleanly")
	}
	if applied != 3 || b.Offset() != 3 {
		t.Fatalf("torn stream prefix: applied %d, offset %d, want 3", applied, b.Offset())
	}

	// An offset gap stops the stream before the gap.
	b = newMemBackend(0)
	applied, _, err = n.applyStream("z", b, 3, strings.NewReader(hello(3, 5)+rec(0)+rec(2)))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("offset gap err = %v", err)
	}
	if applied != 1 || b.Offset() != 1 {
		t.Fatalf("gap prefix: applied %d, offset %d, want 1", applied, b.Offset())
	}
}

func TestClusterEndpointAuth(t *testing.T) {
	back := newMemBackend(3)
	n, err := NewNode(Options{
		Self:     "http://a",
		Token:    "hunter2",
		Resolver: func(string) (Backend, error) { return back, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	mux := http.NewServeMux()
	n.Mount(mux)

	get := func(path, token string) int {
		req := httptest.NewRequest(http.MethodGet, "http://a"+path, nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := get("/cluster/wal/z1?from=0&epoch=1", ""); code != http.StatusUnauthorized {
		t.Fatalf("tokenless WAL pull: HTTP %d, want 401", code)
	}
	if code := get("/cluster/wal/z1?from=0&epoch=1", "wrong"); code != http.StatusUnauthorized {
		t.Fatalf("bad-token WAL pull: HTTP %d, want 401", code)
	}
	if code := get("/cluster/wal/z1?from=0&epoch=1", "hunter2"); code != http.StatusOK {
		t.Fatalf("authed WAL pull: HTTP %d, want 200", code)
	}
	// Discovery endpoints stay open.
	if code := get("/cluster/status", ""); code != http.StatusOK {
		t.Fatalf("status: HTTP %d, want 200", code)
	}
	// Bad zone names 404 before touching any backend.
	if code := get("/cluster/wal/Not%2FValid?from=0&epoch=1", "hunter2"); code != http.StatusNotFound {
		t.Fatalf("bad zone: HTTP %d, want 404", code)
	}
}
