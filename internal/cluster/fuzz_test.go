package cluster

import (
	"bytes"
	"errors"
	"testing"

	"radloc/internal/wal"
)

// FuzzReplicationFrame throws arbitrary bytes at the replication
// decoder — first as a single frame, then as a whole pull stream.
// Torn frames, CRC flips and truncated tails must never panic, and a
// stream that fails mid-way must leave the backend with a valid
// contiguous prefix only (memBackend.ApplyRecords rejects gaps).
func FuzzReplicationFrame(f *testing.F) {
	hello, _ := EncodeControl(FrameHello, 1, 3, 0)
	end, _ := EncodeControl(FrameEnd, 1, 3, 0)
	var recs []byte
	for off := uint64(0); off < 3; off++ {
		line, _ := EncodeRecord(off, wal.Record{SensorID: int(off), CPM: 10 + int(off), Seq: off})
		recs = append(recs, line...)
	}
	valid := append(append(append([]byte{}, hello...), recs...), end...)

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                            // truncated tail
	f.Add(bytes.Replace(valid, []byte(`"cpm":10`), []byte(`"cpm":99`), 1)) // CRC flip
	f.Add(append(append([]byte{}, recs...), end...))                       // no hello
	f.Add([]byte(`{"type":"hello","epoch":0,"head":1}` + "\n"))
	f.Add([]byte("{\"garbage\n\x00\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Single-frame decode: never panics; a frame that decodes must
		// re-encode and decode back to itself (CRC included).
		if fr, err := DecodeFrame(data); err == nil {
			var line []byte
			var eerr error
			switch fr.Type {
			case FrameRecord:
				line, eerr = EncodeRecord(fr.Off, fr.Rec)
			case FrameHello, FrameEnd:
				line, eerr = EncodeControl(fr.Type, fr.Epoch, fr.Head, fr.Start)
			default:
				t.Fatalf("decoder produced unknown frame type %q", fr.Type)
			}
			if eerr != nil {
				t.Fatalf("re-encode of decoded frame failed: %v", eerr)
			}
			back, derr := DecodeFrame(line)
			if derr != nil {
				t.Fatalf("re-encoded frame does not decode: %v", derr)
			}
			if back != fr {
				t.Fatalf("round trip changed frame: %+v != %+v", back, fr)
			}
		}

		// Whole-stream apply: never panics, never applies a gapped or
		// corrupt record (the backend enforces contiguity, the CRC
		// guards content).
		n, err := NewNode(Options{Self: "http://x", Resolver: func(string) (Backend, error) { return nil, errors.New("unused") }})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if err := n.Demote("z", 1, ""); err != nil {
			t.Fatal(err)
		}
		b := newMemBackend(0)
		applied, _, err := n.applyStream("z", b, 1, bytes.NewReader(data))
		if applied != b.Offset() {
			t.Fatalf("applied %d records but backend holds %d", applied, b.Offset())
		}
		if err == nil {
			// A clean stream must open with a decodable hello frame.
			first := data
			if i := bytes.IndexByte(data, '\n'); i >= 0 {
				first = data[:i+1]
			}
			fr, derr := DecodeFrame(first)
			if derr != nil || fr.Type != FrameHello {
				t.Fatalf("stream without a leading hello decoded cleanly: %q", data)
			}
		}
	})
}
