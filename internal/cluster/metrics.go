package cluster

import "radloc/internal/obs"

// nodeMetrics instruments one Node. All methods are nil-receiver safe
// so an unmetered node (Options.Metrics == nil) pays one branch.
type nodeMetrics struct {
	lagSeconds, lagRecords *obs.GaugeFamily
	epoch, isPrimary       *obs.GaugeFamily
	ackedOffset            *obs.GaugeFamily
	pulls, pullErrors      *obs.Counter
	shipped, applied       *obs.Counter
	bootstraps             *obs.Counter
	fencedPulls            *obs.Counter
	divergenceRepairs      *obs.Counter
	divergedRecords        *obs.Counter
}

// newNodeMetrics registers the node's collectors on r; nil r disables
// instrumentation entirely (nil nodeMetrics).
func newNodeMetrics(r *obs.Registry) *nodeMetrics {
	if r == nil {
		return nil
	}
	return &nodeMetrics{
		lagSeconds: r.GaugeFamily("radloc_repl_lag_seconds",
			"Seconds since this standby was last caught up to its primary's WAL head.", "zone"),
		lagRecords: r.GaugeFamily("radloc_repl_lag_records",
			"Records between the primary's WAL head and this standby's applied offset.", "zone"),
		epoch: r.GaugeFamily("radloc_cluster_epoch",
			"Monotonic per-zone fencing epoch; bumped by every promotion.", "zone"),
		isPrimary: r.GaugeFamily("radloc_cluster_is_primary",
			"1 when this node owns writes for the zone, 0 when standby.", "zone"),
		ackedOffset: r.GaugeFamily("radloc_repl_acked_offset",
			"Highest WAL offset the zone's replica has durably acknowledged.", "zone"),
		pulls: r.Counter("radloc_repl_pulls_total",
			"Replication pulls attempted by this node's standby zones."),
		pullErrors: r.Counter("radloc_repl_pull_errors_total",
			"Replication pulls that failed (network, decode, or fencing)."),
		shipped: r.Counter("radloc_repl_shipped_records_total",
			"WAL records streamed out to replicas by this node."),
		applied: r.Counter("radloc_repl_applied_records_total",
			"Replicated records journaled and applied by this node."),
		bootstraps: r.Counter("radloc_repl_bootstraps_total",
			"Full state-snapshot bootstraps performed because the needed WAL suffix was pruned."),
		fencedPulls: r.Counter("radloc_repl_fenced_total",
			"Replication requests refused because of a stale epoch (split-brain fence)."),
		divergenceRepairs: r.Counter("radloc_repl_divergence_repairs_total",
			"Divergence repairs: a resurrected node quarantined an unshipped WAL suffix and re-seeded."),
		divergedRecords: r.Counter("radloc_repl_diverged_records_total",
			"WAL records moved to diverged/ quarantine during divergence repairs."),
	}
}

// roleChanged refreshes a zone's role and epoch gauges.
func (m *nodeMetrics) roleChanged(zone string, primary bool, epoch uint64) {
	if m == nil {
		return
	}
	v := 0.0
	if primary {
		v = 1.0
	}
	m.isPrimary.With(zone).Set(v)
	m.epoch.With(zone).Set(float64(epoch))
}

// lag refreshes a standby zone's lag gauges.
func (m *nodeMetrics) lag(zone string, seconds float64, records uint64) {
	if m == nil {
		return
	}
	m.lagSeconds.With(zone).Set(seconds)
	m.lagRecords.With(zone).Set(float64(records))
}

// acked refreshes the primary-side replica watermark gauge.
func (m *nodeMetrics) acked(zone string, off uint64) {
	if m == nil {
		return
	}
	m.ackedOffset.With(zone).Set(float64(off))
}

// pulled accounts one pull attempt and n applied records.
func (m *nodeMetrics) pulled(err bool, n uint64) {
	if m == nil {
		return
	}
	m.pulls.Inc()
	if err {
		m.pullErrors.Inc()
	}
	m.applied.Add(n)
}

// servedRecords accounts records streamed out to a replica.
func (m *nodeMetrics) servedRecords(n uint64) {
	if m == nil {
		return
	}
	m.shipped.Add(n)
}

// bootstrapped accounts one full snapshot bootstrap.
func (m *nodeMetrics) bootstrapped() {
	if m == nil {
		return
	}
	m.bootstraps.Inc()
}

// diverged accounts one divergence repair and its quarantined records.
func (m *nodeMetrics) diverged(records uint64) {
	if m == nil {
		return
	}
	m.divergenceRepairs.Inc()
	m.divergedRecords.Add(records)
}

// fenced accounts one epoch-fenced refusal.
func (m *nodeMetrics) fenced() {
	if m == nil {
		return
	}
	m.fencedPulls.Inc()
}
