package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// applyChunk is how many decoded records are buffered before they are
// handed to the backend — bounds memory while keeping the stream's
// prefix-safety: records applied in earlier chunks survive a torn
// frame later in the same response.
const applyChunk = 512

// startReplicaLocked spawns the zone's pull loop. Caller holds n.mu.
func (n *Node) startReplicaLocked(zs *zoneState) {
	if zs.cancel != nil || n.closed {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	zs.cancel = cancel
	n.wg.Add(1)
	go n.replicaLoop(ctx, zs.name)
	n.logf("cluster: replicating zone %q from %q", zs.name, zs.primaryURL)
}

// Replicate makes this node a standby for the zone, pulling from the
// given primary URL. Unlike Demote it leaves the epoch alone — it is
// the first step of a migration, where the target warms up against
// the still-live owner.
func (n *Node) Replicate(zone, from string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	zs, err := n.zoneFor(zone)
	if err != nil {
		return err
	}
	zs.role = RoleStandby
	zs.draining = false
	zs.primaryURL = from
	zs.caughtUp = false
	zs.lastCaughtUp = n.opts.Clock.Now()
	n.met.roleChanged(zone, false, zs.epoch)
	n.startReplicaLocked(zs)
	return nil
}

// replicaLoop pulls WAL for one standby zone until cancelled. A pull
// that learns it is still behind loops again immediately; a caught-up
// or failed pull waits PullInterval first. The wait is context-aware —
// Close must not block behind a long pull interval.
func (n *Node) replicaLoop(ctx context.Context, zone string) {
	defer n.wg.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		behind := n.pullOnce(ctx, zone)
		if ctx.Err() != nil {
			return
		}
		if !behind {
			wait, cancel := n.opts.Clock.WithTimeout(ctx, n.opts.PullInterval)
			<-wait.Done()
			cancel()
		}
	}
}

// pullOnce performs one replication pull for the zone and reports
// whether the standby is still behind (caller should loop without
// sleeping). All lag bookkeeping — success or failure — happens here.
func (n *Node) pullOnce(ctx context.Context, zone string) bool {
	n.mu.Lock()
	zs, ok := n.zones[zone]
	if !ok || zs.role != RoleStandby || zs.primaryURL == "" {
		n.mu.Unlock()
		return false
	}
	primary := zs.primaryURL
	epoch := zs.epoch
	n.mu.Unlock()

	b, err := n.opts.Resolver(zone)
	if err != nil {
		n.finishPull(zone, 0, 0, 0, err)
		return false
	}
	from := b.Offset()

	u := fmt.Sprintf("%s/cluster/wal/%s?from=%d&epoch=%d&max=%d",
		primary, url.PathEscape(zone), from, epoch, n.opts.PullBatch)
	resp, err := n.get(ctx, u)
	if err != nil {
		n.finishPull(zone, 0, from, 0, err)
		return false
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The suffix we need was pruned: bootstrap from a snapshot,
		// then report behind so the next pull resumes from the new
		// offset immediately.
		io.Copy(io.Discard, resp.Body)
		if err := n.bootstrap(ctx, zone, b, primary); err != nil {
			n.finishPull(zone, 0, from, 0, err)
			return false
		}
		n.finishPull(zone, 0, b.Offset(), b.Offset(), nil)
		return true
	case http.StatusConflict:
		io.Copy(io.Discard, resp.Body)
		n.met.fenced()
		n.finishPull(zone, 0, from, 0, fmt.Errorf("%w: primary refused pull at epoch %d", ErrStaleEpoch, epoch))
		return false
	default:
		io.Copy(io.Discard, resp.Body)
		n.finishPull(zone, 0, from, 0, fmt.Errorf("cluster: pull %s: status %d", zone, resp.StatusCode))
		return false
	}

	applied, head, err := n.applyStream(zone, b, epoch, resp.Body)
	var div *divergedError
	if errors.As(err, &div) {
		if rerr := n.repairDivergence(ctx, zone, b, primary, div); rerr != nil {
			n.finishPull(zone, applied, b.Offset(), head, rerr)
			return false
		}
		n.finishPull(zone, applied, b.Offset(), b.Offset(), nil)
		return true
	}
	n.finishPull(zone, applied, b.Offset(), head, err)
	return err == nil && b.Offset() < head
}

// repairDivergence handles a resurrected node whose local WAL suffix
// was never shipped before a newer epoch took over: the suffix (and
// any checkpoint covering it) is quarantined to the backend's
// diverged/ directory — preserved for inspection, never dropped —
// then the node re-seeds from the current primary's snapshot and
// rejoins as a clean standby.
func (n *Node) repairDivergence(ctx context.Context, zone string, b Backend, primary string, div *divergedError) error {
	n.logf("cluster: zone %q diverged: local head %d above floor %d of epoch %d; quarantining suffix",
		zone, div.Local, div.Floor, div.Epoch)
	moved, err := b.QuarantineDiverged(div.Floor)
	if err != nil {
		return fmt.Errorf("cluster: quarantine diverged suffix of %q: %w", zone, err)
	}
	n.met.diverged(moved)
	n.logf("cluster: zone %q: quarantined %d diverged records", zone, moved)
	if err := n.bootstrap(ctx, zone, b, primary); err != nil {
		return err
	}
	return nil
}

// divergedError reports that the local WAL holds records above the
// divergence floor of a newer epoch — an unshipped suffix that
// conflicts with the cluster's current history.
type divergedError struct {
	// Zone is the diverged zone.
	Zone string
	// Floor is the lowest offset the newer history may occupy.
	Floor uint64
	// Local is this node's WAL head.
	Local uint64
	// Epoch is the newer epoch observed from the primary.
	Epoch uint64
}

// Error implements error.
func (e *divergedError) Error() string {
	return fmt.Sprintf("cluster: zone %q diverged: local head %d above epoch-%d floor %d",
		e.Zone, e.Local, e.Epoch, e.Floor)
}

// get issues one authenticated GET through the node's transport.
func (n *Node) get(ctx context.Context, u string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if n.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+n.opts.Token)
	}
	return n.opts.HTTP.RoundTrip(req)
}

// applyStream decodes one pull response and applies its records in
// offset order. It is prefix-safe: a torn or corrupt frame stops the
// stream with an error, but every chunk applied before it is kept —
// exactly the discipline WAL-tail recovery uses. Returns the number
// of records applied and the primary's head.
func (n *Node) applyStream(zone string, b Backend, epoch uint64, body io.Reader) (applied uint64, head uint64, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	if !sc.Scan() {
		return 0, 0, fmt.Errorf("%w: stream ended before hello", ErrBadFrame)
	}
	hello, err := DecodeFrame(sc.Bytes())
	if err != nil {
		return 0, 0, err
	}
	if hello.Type != FrameHello {
		return 0, 0, fmt.Errorf("%w: first frame is %q, want hello", ErrBadFrame, hello.Type)
	}
	if hello.Epoch < epoch {
		n.met.fenced()
		return 0, 0, fmt.Errorf("%w: hello at epoch %d, zone at %d", ErrStaleEpoch, hello.Epoch, epoch)
	}
	if hello.Epoch > epoch {
		// The primary is ahead of us by at least one promotion. Before
		// adopting its epoch, check the divergence floor it sent: any
		// local records at or above it were written under our old
		// epoch but never shipped — replaying the new history over
		// them would silently fork state. Refuse the stream and let
		// the pull loop quarantine + re-seed.
		if local := b.Offset(); local > hello.Start {
			return 0, 0, &divergedError{Zone: zone, Floor: hello.Start, Local: local, Epoch: hello.Epoch}
		}
		n.adoptEpoch(zone, hello.Epoch, hello.Start)
	}
	head = hello.Head

	var chunk []RecordAt
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if err := b.ApplyRecords(chunk); err != nil {
			return err
		}
		applied += uint64(len(chunk))
		chunk = chunk[:0]
		return nil
	}
	want := b.Offset()
	for sc.Scan() {
		f, err := DecodeFrame(sc.Bytes())
		if err != nil {
			ferr := flush()
			if ferr != nil {
				return applied, head, ferr
			}
			return applied, head, err
		}
		switch f.Type {
		case FrameRecord:
			if f.Off != want {
				ferr := flush()
				if ferr != nil {
					return applied, head, ferr
				}
				return applied, head, fmt.Errorf("%w: offset gap: got %d, want %d", ErrBadFrame, f.Off, want)
			}
			want++
			chunk = append(chunk, RecordAt{Off: f.Off, Rec: f.Rec})
			if len(chunk) >= applyChunk {
				if err := flush(); err != nil {
					return applied, head, err
				}
			}
		case FrameEnd:
			if err := flush(); err != nil {
				return applied, head, err
			}
			if f.Head > head {
				head = f.Head
			}
			return applied, head, nil
		default:
			ferr := flush()
			if ferr != nil {
				return applied, head, ferr
			}
			return applied, head, fmt.Errorf("%w: unexpected %q frame mid-stream", ErrBadFrame, f.Type)
		}
	}
	if err := flush(); err != nil {
		return applied, head, err
	}
	if scerr := sc.Err(); scerr != nil {
		return applied, head, scerr
	}
	return applied, head, fmt.Errorf("%w: stream ended without end frame", ErrBadFrame)
}

// bootstrap replaces the zone's local state with a snapshot fetched
// from the primary — the catch-up path when the needed WAL suffix has
// been pruned.
func (n *Node) bootstrap(ctx context.Context, zone string, b Backend, primary string) error {
	resp, err := n.get(ctx, primary+"/cluster/state/"+url.PathEscape(zone))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("cluster: bootstrap %s: status %d", zone, resp.StatusCode)
	}
	var snap stateSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&snap); err != nil {
		return fmt.Errorf("cluster: bootstrap %s: %w", zone, err)
	}
	n.mu.Lock()
	epoch := uint64(0)
	if zs, ok := n.zones[zone]; ok {
		epoch = zs.epoch
	}
	n.mu.Unlock()
	if snap.Epoch < epoch {
		n.met.fenced()
		return fmt.Errorf("%w: snapshot at epoch %d, zone at %d", ErrStaleEpoch, snap.Epoch, epoch)
	}
	if snap.Epoch > epoch {
		// Start 0 is conservative: the snapshot does not say where the
		// new epoch's history began, only that it covers snap.Applied.
		n.adoptEpoch(zone, snap.Epoch, 0)
	}
	if err := b.Bootstrap(snap.State, snap.Applied); err != nil {
		return err
	}
	n.met.bootstrapped()
	n.logf("cluster: bootstrapped zone %q from %q at offset %d", zone, primary, snap.Applied)
	return nil
}

// adoptEpoch raises the zone's epoch to a higher one observed from
// its primary — after the divergence check has cleared the local
// prefix — and persists it. start is the lowest offset the new
// history may occupy as reported by the primary; it seeds this node's
// own floor computations should it be promoted later.
func (n *Node) adoptEpoch(zone string, epoch, start uint64) {
	n.mu.Lock()
	zs, ok := n.zones[zone]
	var meta EpochMeta
	if ok && epoch > zs.epoch {
		zs.starts = recordStart(zs.starts, EpochStart{Epoch: epoch, Start: start})
		zs.epoch = epoch
		n.met.roleChanged(zone, zs.role == RolePrimary, epoch)
	}
	if ok {
		meta = epochMetaLocked(zs)
	} else {
		meta = EpochMeta{Epoch: epoch}
	}
	n.mu.Unlock()
	if err := n.opts.Epochs.Save(zone, meta); err != nil {
		n.logf("cluster: persist adopted epoch for %q: %v", zone, err)
	}
}

// finishPull folds one pull's outcome into the zone's lag state and
// gauges. applied counts records journaled this pull; local is the
// local head afterwards; head is the primary's head (0 when unknown).
func (n *Node) finishPull(zone string, applied, local, head uint64, err error) {
	now := n.opts.Clock.Now()
	n.mu.Lock()
	zs, ok := n.zones[zone]
	if !ok {
		n.mu.Unlock()
		return
	}
	zs.applied = local
	if head > 0 || err == nil {
		zs.head = head
	}
	if err != nil {
		zs.lastErr = err.Error()
		zs.caughtUp = false
	} else {
		zs.lastErr = ""
		if local >= zs.head {
			zs.caughtUp = true
			zs.lastCaughtUp = now
		} else {
			zs.caughtUp = false
		}
	}
	var lagSec float64
	if !zs.caughtUp {
		lagSec = now.Sub(zs.lastCaughtUp).Seconds()
	}
	var lagRec uint64
	if zs.head > local {
		lagRec = zs.head - local
	}
	n.mu.Unlock()
	n.met.lag(zone, lagSec, lagRec)
	n.met.pulled(err != nil, applied)
	if err != nil && !errors.Is(err, context.Canceled) {
		n.logf("cluster: pull %q: %v", zone, err)
	}
}

// stateSnapshot is the /cluster/state/{zone} payload: a serialized
// engine state, the WAL offset it covers, and the owner's epoch.
type stateSnapshot struct {
	// Applied is the WAL offset the state covers.
	Applied uint64 `json:"applied"`
	// Epoch is the exporting node's zone epoch.
	Epoch uint64 `json:"epoch"`
	// State is the fusion engine's serialized state.
	State json.RawMessage `json:"state"`
}
