package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// PeerView is one probed peer's liveness as the failure detector sees
// it, published on /cluster/status so an operator (or radloc ctl) can
// read the promoter's world-view instead of inferring it from logs.
// The detector (internal/failover) produces these; the cluster node
// only relays them — SetPeersFunc keeps the dependency pointing
// failover → cluster, not both ways.
type PeerView struct {
	// URL is the peer's base URL as probed.
	URL string `json:"url"`
	// Up reports the last probe succeeded.
	Up bool `json:"up"`
	// Misses is the current consecutive probe-failure count.
	Misses int `json:"misses"`
	// Dead reports the peer has exhausted its hold-down and the
	// detector considers it gone.
	Dead bool `json:"dead,omitempty"`
	// LastProbe is when the detector last probed this peer (zero when
	// it has not been probed yet).
	LastProbe time.Time `json:"lastProbe,omitempty"`
	// DownForSeconds is how long the peer has been failing probes.
	DownForSeconds float64 `json:"downForSeconds,omitempty"`
	// HoldDownRemainingSeconds is how much flap-damping time is left
	// before a suspected peer is declared dead (0 once dead or up).
	HoldDownRemainingSeconds float64 `json:"holdDownRemainingSeconds,omitempty"`
}

// SetPeersFunc installs the failure detector's peer-view snapshot
// function; /cluster/status calls it per request. fn must be safe for
// concurrent use. nil uninstalls.
func (n *Node) SetPeersFunc(fn func() []PeerView) {
	n.mu.Lock()
	n.peersFn = fn
	n.mu.Unlock()
}

// peerViews snapshots the installed detector's view, nil when no
// detector is wired.
func (n *Node) peerViews() []PeerView {
	n.mu.Lock()
	fn := n.peersFn
	n.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// RepairSource returns the URL of a replica able to re-seed this
// zone's state, and the offset it is known to have durably applied.
// Requirements: this node is the zone's primary, the routing table
// names a standby that is not this node, and the standby has acked at
// least one pull (proof it holds a usable copy). ok=false means the
// zone has no independent copy — scrub repair must fall back to the
// local in-memory state.
func (n *Node) RepairSource(zone string) (peerURL string, acked uint64, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	zs, found := n.zones[zone]
	if !found || zs.role != RolePrimary || zs.acked == 0 {
		return "", 0, false
	}
	rt, found := n.routes.Zones[zone]
	if !found || rt.Standby == "" || rt.Standby == n.opts.Self {
		return "", 0, false
	}
	return rt.Standby, zs.acked, true
}

// FetchState fetches peer's exported state snapshot for zone through
// the node's authenticated transport — the scrubber's repair-from-
// replica path, the same wire exchange as a standby's bootstrap but
// in the opposite direction: a primary whose cold storage failed
// re-verification pulls an independent copy back from its replica.
func (n *Node) FetchState(ctx context.Context, peer, zone string) (applied, epoch uint64, state json.RawMessage, err error) {
	resp, err := n.get(ctx, peer+"/cluster/state/"+url.PathEscape(zone))
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, 0, nil, fmt.Errorf("cluster: fetch state %s from %s: status %d", zone, peer, resp.StatusCode)
	}
	var snap stateSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&snap); err != nil {
		return 0, 0, nil, fmt.Errorf("cluster: fetch state %s from %s: %w", zone, peer, err)
	}
	return snap.Applied, snap.Epoch, snap.State, nil
}
